/**
 * @file
 * Ablation for the Section 3.3 floating-point optimisation: dropping FP
 * compute instructions during runahead frees FP queues/registers/units
 * without hurting the prefetch benefit (addresses are integer work).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Ablation — FP-drop in runahead on/off (Section 3.3)",
           "throughput with FP-drop should match (or exceed) execution "
           "of FP work in runahead, since effective addresses only need "
           "the integer pipeline");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    sim::TechniqueSpec no_drop = sim::ratSpec();
    no_drop.label = "RaT-execFP";
    no_drop.rat.dropFpInRunahead = false;

    std::printf("\n%-8s %14s %14s %10s\n", "group", "RaT(drop FP)",
                "RaT(exec FP)", "delta(%)");
    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const double drop =
            runner.runGroup(g, sim::ratSpec()).meanThroughput;
        const double exec = runner.runGroup(g, no_drop).meanThroughput;
        std::printf("%-8s %14.3f %14.3f %+9.1f%%\n", sim::groupName(g),
                    drop, exec, pct(drop, exec));
    }
    return 0;
}
