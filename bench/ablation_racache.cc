/**
 * @file
 * Ablation for the Section 3.3 claim: "using the runahead cache does
 * not have significant impact on performance in our SMT model". Runs
 * the MEM groups under RaT with and without the runahead cache.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Ablation — runahead cache on/off (Section 3.3)",
           "difference should be insignificant (the paper omits the "
           "runahead cache from RaT based on this result)");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    sim::TechniqueSpec with_rc = sim::ratSpec();
    with_rc.label = "RaT+RAcache";
    with_rc.rat.useRunaheadCache = true;

    std::printf("\n%-8s %14s %14s %10s\n", "group", "RaT", "RaT+RAcache",
                "delta(%)");
    double worst = 0.0;
    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const double base =
            runner.runGroup(g, sim::ratSpec()).meanThroughput;
        const double rc = runner.runGroup(g, with_rc).meanThroughput;
        const double d = pct(rc, base);
        worst = std::max(worst, std::abs(d));
        std::printf("%-8s %14.3f %14.3f %+9.1f%%\n", sim::groupName(g),
                    base, rc, d);
    }
    std::printf("\nlargest group-level |delta|: %.1f%% (paper: "
                "insignificant)\n", worst);
    return 0;
}
