/**
 * @file
 * Ablation over the runahead efficiency variants (`--ra-variant`):
 * runs a memory-bound MEM2 mix set under RaT with each variant and
 * reports the executed-runahead-instruction cost against the
 * harmonic-mean IPC, the tradeoff the efficient-runahead literature
 * (Mutlu et al. [10], MLP/distance-capped runahead) optimizes.
 *
 * Expected shape: `capped` trades IPC for bounded episodes;
 * `useless-filter` cuts runahead-executed instructions with a
 * harmonic-mean IPC change within ~1% of `classic`.
 *
 * Episode usefulness is a small, noisy signal, so this bench defaults
 * to a longer measured window (240k cycles) than the other benches;
 * RATSIM_MEASURE still overrides it (the ctest smoke runs at 2k).
 */

#include <vector>

#include "bench/bench_util.hh"
#include "runahead/variant.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"

namespace {

using namespace rat;

struct VariantTotals {
    double hmeanIpcSum = 0.0; ///< sum over mixes of per-mix hmean IPC
    std::uint64_t raExecuted = 0;
    std::uint64_t pseudoRetired = 0;
    std::uint64_t episodes = 0;
    std::uint64_t drainEpisodes = 0;
};

} // namespace

int
main()
{
    using namespace rat::bench;

    banner("Ablation — runahead efficiency variants (--ra-variant)",
           "useless-filter cuts runahead-executed instructions at <=~1% "
           "harmonic-mean IPC vs classic; capped bounds episode length");

    // Memory-bound MEM2 mixes where runahead episodes (and their
    // waste) dominate.
    const std::vector<std::vector<std::string>> mixes = {
        {"art", "mcf"}, {"swim", "mcf"}, {"mcf", "twolf"}};

    sim::SimConfig base = benchConfig();
    if (!std::getenv("RATSIM_MEASURE"))
        base.measureCycles = 240000;
    base.core.policy = core::PolicyKind::Rat;

    // The variant lineup: the three runtime defaults plus an
    // aggressive filter point (sticky suppression, sparse re-probes)
    // that shows the far end of the work-vs-IPC tradeoff curve.
    struct VariantPoint {
        const char *label;
        runahead::RaVariant variant;
        unsigned filterThreshold; ///< 0 = keep the config default
        unsigned filterReprobe = 0;
    };
    const std::vector<VariantPoint> variants = {
        {"classic", runahead::RaVariant::Classic, 0},
        {"capped", runahead::RaVariant::Capped, 0},
        {"useless-filter", runahead::RaVariant::UselessFilter, 0},
        {"filter-aggro", runahead::RaVariant::UselessFilter, 2, 16},
    };

    std::map<std::string, std::vector<double>> ipc_rows, work_rows;
    std::vector<std::string> labels, mix_names;
    std::vector<VariantTotals> totals(variants.size());

    for (std::size_t v = 0; v < variants.size(); ++v) {
        labels.emplace_back(variants[v].label);
        for (const auto &mix : mixes) {
            sim::SimConfig cfg = base;
            cfg.core.numThreads = static_cast<unsigned>(mix.size());
            cfg.core.rat.variant = variants[v].variant;
            if (variants[v].filterThreshold) {
                cfg.core.rat.uselessFilterThreshold =
                    variants[v].filterThreshold;
                cfg.core.rat.uselessFilterReprobe =
                    variants[v].filterReprobe;
            }
            sim::Simulator simulator(cfg, mix);
            const sim::SimResult r = simulator.run();
            const runahead::EngineStats &es =
                simulator.smtCore().runaheadEngine().stats();

            std::string name;
            for (const auto &p : mix)
                name += (name.empty() ? "" : ",") + p;
            if (v == 0)
                mix_names.push_back(name);
            ipc_rows[name].push_back(hmeanIpc(r));
            work_rows[name].push_back(
                static_cast<double>(es.executedInRunahead));

            VariantTotals &t = totals[v];
            t.hmeanIpcSum += hmeanIpc(r);
            t.raExecuted += es.executedInRunahead;
            t.episodes += es.episodes;
            t.drainEpisodes += es.drainEpisodes;
            for (const sim::ThreadResult &thread : r.threads)
                t.pseudoRetired += thread.core.pseudoRetired;
        }
    }

    printGroupTable("harmonic-mean IPC per mix", labels, ipc_rows,
                    mix_names);
    printGroupTable("runahead-executed instructions per mix", labels,
                    work_rows, mix_names);

    BenchReport report("ravariant");
    report.addGroupTable("harmonic-mean IPC per mix", labels, ipc_rows,
                         mix_names);
    report.addGroupTable("runahead-executed instructions per mix",
                         labels, work_rows, mix_names);

    std::printf("\n%-16s %12s %14s %14s %10s %10s\n", "variant",
                "hmean IPC", "RA executed", "pseudo-ret", "episodes",
                "drained");
    const VariantTotals &classic = totals[0];
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const VariantTotals &t = totals[v];
        std::printf("%-16s %12.4f %14llu %14llu %10llu %10llu\n",
                    labels[v].c_str(),
                    t.hmeanIpcSum / static_cast<double>(mixes.size()),
                    static_cast<unsigned long long>(t.raExecuted),
                    static_cast<unsigned long long>(t.pseudoRetired),
                    static_cast<unsigned long long>(t.episodes),
                    static_cast<unsigned long long>(t.drainEpisodes));
        if (v > 0) {
            const double ipc_delta =
                pct(t.hmeanIpcSum, classic.hmeanIpcSum);
            const double work_delta =
                pct(static_cast<double>(t.raExecuted),
                    static_cast<double>(classic.raExecuted));
            std::printf("%-16s %11.2f%% %13.1f%%\n", "  vs classic",
                        ipc_delta, work_delta);
            report.addHeadline(labels[v] + " hmean-IPC delta vs classic (%)",
                               ipc_delta);
            report.addHeadline(
                labels[v] + " RA-executed-inst delta vs classic (%)",
                work_delta);
        }
    }

    report.write();
    return 0;
}
