/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: default
 * configuration with environment-variable scaling, tabular output
 * helpers that print the same rows/series the paper reports, and a
 * BenchReport collector that mirrors those tables into a structured
 * `BENCH_<name>.json` artifact through the report layer.
 *
 * Environment knobs:
 *   RATSIM_WARMUP      warm-up cycles per run         (default 15000)
 *   RATSIM_MEASURE     measured cycles per run        (default 60000)
 *   RATSIM_PREWARM     functional warm-up insts/thread (default 1M)
 *   RATSIM_JOBS        parallel simulations           (default: hw threads)
 *   RATSIM_REPORT_DIR  where BENCH_*.json artifacts go (default ".")
 */

#ifndef RAT_BENCH_BENCH_UTIL_HH
#define RAT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/parse.hh"
#include "report/json.hh"
#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "sim/workloads.hh"

namespace rat::bench {

/** Read an unsigned environment knob with a default; garbage values
 * are a fatal configuration error, not a silent zero. */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return parseU64(v, name);
}

/** Bench-default simulation config (Table 1 core, scaled windows). */
inline sim::SimConfig
benchConfig()
{
    sim::SimConfig cfg;
    cfg.warmupCycles = envU64("RATSIM_WARMUP", 15000);
    cfg.measureCycles = envU64("RATSIM_MEASURE", 60000);
    cfg.prewarmInsts = envU64("RATSIM_PREWARM", cfg.prewarmInsts);
    return cfg;
}

/** Apply the RATSIM_JOBS override to a runner. */
inline void
applyJobs(sim::ExperimentRunner &runner)
{
    const std::uint64_t jobs = envU64("RATSIM_JOBS", 0);
    if (jobs > 0)
        runner.setParallelism(static_cast<unsigned>(jobs));
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *paper_claim)
{
    std::printf("==============================================================="
                "=========\n");
    std::printf("%s\n", experiment);
    std::printf("paper: Runahead Threads to Improve SMT Performance (HPCA"
                " 2008)\n");
    std::printf("expected shape: %s\n", paper_claim);
    std::printf("==============================================================="
                "=========\n");
}

/** One metric table: groups as rows, techniques as columns. */
inline void
printGroupTable(const char *title,
                const std::vector<std::string> &technique_labels,
                const std::map<std::string,
                               std::vector<double>> &rows_by_group,
                const std::vector<std::string> &group_order)
{
    std::printf("\n%s\n", title);
    std::printf("%-8s", "group");
    for (const auto &label : technique_labels)
        std::printf(" %12s", label.c_str());
    std::printf("\n");
    for (const auto &group : group_order) {
        std::printf("%-8s", group.c_str());
        for (const double v : rows_by_group.at(group))
            std::printf(" %12.3f", v);
        std::printf("\n");
    }
    // Column means ("Avg" bar of the paper's figures).
    std::printf("%-8s", "AVG");
    const std::size_t cols = technique_labels.size();
    for (std::size_t c = 0; c < cols; ++c) {
        double sum = 0.0;
        for (const auto &group : group_order)
            sum += rows_by_group.at(group)[c];
        std::printf(" %12.3f",
                    sum / static_cast<double>(group_order.size()));
    }
    std::printf("\n");
}

/** Relative improvement in percent. */
inline double
pct(double v, double base)
{
    return base > 0.0 ? 100.0 * (v / base - 1.0) : 0.0;
}

/**
 * Structured mirror of a bench's printed tables. Collect tables and
 * headline scalars while the bench runs, then write() emits
 * `BENCH_<name>.json` into RATSIM_REPORT_DIR through the report layer.
 */
class BenchReport
{
  public:
    explicit BenchReport(const char *bench_name)
        : name_(bench_name)
    {
        doc_["schema"] = report::Json("ratsim-bench-v1");
        doc_["bench"] = report::Json(name_);
        doc_["paper"] =
            report::Json("Runahead Threads to improve SMT performance "
                         "(HPCA 2008)");
        doc_["tables"] = report::Json::array();
        doc_["headlines"] = report::Json::array();
    }

    /** Record the same table printGroupTable prints. */
    void
    addGroupTable(const char *title,
                  const std::vector<std::string> &technique_labels,
                  const std::map<std::string,
                                 std::vector<double>> &rows_by_group,
                  const std::vector<std::string> &group_order)
    {
        report::Json table = report::Json::object();
        table["title"] = report::Json(title);
        report::Json cols = report::Json::array();
        for (const auto &label : technique_labels)
            cols.push(report::Json(label));
        table["columns"] = std::move(cols);
        report::Json rows = report::Json::array();
        for (const auto &group : group_order) {
            report::Json row = report::Json::object();
            row["group"] = report::Json(group);
            report::Json values = report::Json::array();
            for (const double v : rows_by_group.at(group))
                values.push(report::Json(v));
            row["values"] = std::move(values);
            rows.push(std::move(row));
        }
        table["rows"] = std::move(rows);
        doc_["tables"].push(std::move(table));
    }

    /** Record one headline comparison ("RaT vs DCRA, MEM2", +75.0). */
    void
    addHeadline(const std::string &label, double value)
    {
        report::Json h = report::Json::object();
        h["label"] = report::Json(label);
        h["value"] = report::Json(value);
        doc_["headlines"].push(std::move(h));
    }

    /** Write BENCH_<name>.json; returns the path written. */
    std::string
    write() const
    {
        const char *dir = std::getenv("RATSIM_REPORT_DIR");
        std::string path = (dir && *dir) ? dir : ".";
        path += "/BENCH_" + name_ + ".json";
        std::ofstream out(path);
        if (!out)
            fatal("cannot write bench report '%s'", path.c_str());
        out << doc_.dump(2);
        std::printf("\nwrote %s\n", path.c_str());
        return path;
    }

  private:
    std::string name_;
    report::Json doc_ = report::Json::object();
};

} // namespace rat::bench

#endif // RAT_BENCH_BENCH_UTIL_HH
