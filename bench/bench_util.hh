/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: default
 * configuration with environment-variable scaling, and tabular output
 * helpers that print the same rows/series the paper reports.
 *
 * Environment knobs:
 *   RATSIM_WARMUP   warm-up cycles per run         (default 15000)
 *   RATSIM_MEASURE  measured cycles per run        (default 60000)
 *   RATSIM_PREWARM  functional warm-up insts/thread (default 1M)
 *   RATSIM_JOBS     parallel simulations           (default: hw threads)
 */

#ifndef RAT_BENCH_BENCH_UTIL_HH
#define RAT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "sim/workloads.hh"

namespace rat::bench {

/** Read an unsigned environment knob with a default. */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

/** Bench-default simulation config (Table 1 core, scaled windows). */
inline sim::SimConfig
benchConfig()
{
    sim::SimConfig cfg;
    cfg.warmupCycles = envU64("RATSIM_WARMUP", 15000);
    cfg.measureCycles = envU64("RATSIM_MEASURE", 60000);
    cfg.prewarmInsts = envU64("RATSIM_PREWARM", cfg.prewarmInsts);
    return cfg;
}

/** Apply the RATSIM_JOBS override to a runner. */
inline void
applyJobs(sim::ExperimentRunner &runner)
{
    const std::uint64_t jobs = envU64("RATSIM_JOBS", 0);
    if (jobs > 0)
        runner.setParallelism(static_cast<unsigned>(jobs));
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *paper_claim)
{
    std::printf("==============================================================="
                "=========\n");
    std::printf("%s\n", experiment);
    std::printf("paper: Runahead Threads to Improve SMT Performance (HPCA"
                " 2008)\n");
    std::printf("expected shape: %s\n", paper_claim);
    std::printf("==============================================================="
                "=========\n");
}

/** One metric table: groups as rows, techniques as columns. */
inline void
printGroupTable(const char *title,
                const std::vector<std::string> &technique_labels,
                const std::map<std::string,
                               std::vector<double>> &rows_by_group,
                const std::vector<std::string> &group_order)
{
    std::printf("\n%s\n", title);
    std::printf("%-8s", "group");
    for (const auto &label : technique_labels)
        std::printf(" %12s", label.c_str());
    std::printf("\n");
    for (const auto &group : group_order) {
        std::printf("%-8s", group.c_str());
        for (const double v : rows_by_group.at(group))
            std::printf(" %12.3f", v);
        std::printf("\n");
    }
    // Column means ("Avg" bar of the paper's figures).
    std::printf("%-8s", "AVG");
    const std::size_t cols = technique_labels.size();
    for (std::size_t c = 0; c < cols; ++c) {
        double sum = 0.0;
        for (const auto &group : group_order)
            sum += rows_by_group.at(group)[c];
        std::printf(" %12.3f",
                    sum / static_cast<double>(group_order.size()));
    }
    std::printf("\n");
}

/** Relative improvement in percent. */
inline double
pct(double v, double base)
{
    return base > 0.0 ? 100.0 * (v / base - 1.0) : 0.0;
}

} // namespace rat::bench

#endif // RAT_BENCH_BENCH_UTIL_HH
