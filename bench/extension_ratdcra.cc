/**
 * @file
 * Extension experiment — the hybrid the paper names as future work in
 * Section 5.2: Runahead Threads combined with DCRA resource caps. RaT
 * alone has no direct knowledge of resource allocation; DCRA gates
 * threads that over-consume, which can matter when a runahead thread's
 * speculative work competes with normal threads.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Extension — RaT + DCRA hybrid (Section 5.2 future work)",
           "the hybrid should track plain RaT closely; any gain shows up "
           "where speculative runahead work would otherwise crowd out "
           "normal threads");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    const sim::TechniqueSpec hybrid{"RaT+DCRA",
                                    core::PolicyKind::RatDcra,
                                    core::RatConfig{}};

    std::printf("\n%-8s %12s %12s %12s %10s\n", "group", "DCRA", "RaT",
                "RaT+DCRA", "vs RaT");
    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const double dcra =
            runner.runGroup(g, sim::dcraSpec()).meanThroughput;
        const double rat =
            runner.runGroup(g, sim::ratSpec()).meanThroughput;
        const double both = runner.runGroup(g, hybrid).meanThroughput;
        std::printf("%-8s %12.3f %12.3f %12.3f %+9.1f%%\n",
                    sim::groupName(g), dcra, rat, both, pct(both, rat));
    }
    return 0;
}
