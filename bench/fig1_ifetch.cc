/**
 * @file
 * Reproduces Figure 1: throughput (a) and fairness (b) of the static
 * I-fetch policies ICOUNT / STALL / FLUSH versus Runahead Threads over
 * the six Table 2 workload groups.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Figure 1 — I-fetch policies vs RaT (throughput & fairness)",
           "FLUSH > STALL > ICOUNT on MEM; RaT clearly ahead of all, "
           "biggest gap on MEM2/MEM4 (~+83%/+70% vs FLUSH in the paper)");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    const std::vector<sim::TechniqueSpec> lineup = {
        sim::icountSpec(), sim::stallSpec(), sim::flushSpec(),
        sim::ratSpec()};
    std::vector<std::string> labels;
    for (const auto &t : lineup)
        labels.push_back(t.label);

    std::map<std::string, std::vector<double>> thr_rows, fair_rows;
    std::vector<std::string> group_order;

    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const std::string gname = sim::groupName(g);
        group_order.push_back(gname);
        for (const auto &tech : lineup) {
            const sim::GroupMetrics gm = runner.runGroup(g, tech);
            thr_rows[gname].push_back(gm.meanThroughput);
            fair_rows[gname].push_back(gm.meanFairness);
        }
    }

    printGroupTable("Fig. 1(a) Throughput (Eq. 1 IPC)", labels, thr_rows,
                    group_order);
    printGroupTable("Fig. 1(b) Fairness (Eq. 2 harmonic mean)", labels,
                    fair_rows, group_order);

    // Headline deltas the paper quotes.
    const auto delta = [&](const char *g, unsigned tech_a,
                           unsigned tech_b) {
        return pct(thr_rows.at(g)[tech_a], thr_rows.at(g)[tech_b]);
    };
    std::printf("\nheadline (throughput): paper vs measured\n");
    std::printf("  RaT vs FLUSH, MEM2: paper +83%%, measured %+.0f%%\n",
                delta("MEM2", 3, 2));
    std::printf("  RaT vs FLUSH, MEM4: paper +70%%, measured %+.0f%%\n",
                delta("MEM4", 3, 2));
    const auto fdelta = [&](const char *g) {
        return pct(fair_rows.at(g)[3], fair_rows.at(g)[2]);
    };
    std::printf("headline (fairness):\n");
    std::printf("  RaT vs FLUSH, MEM2: paper +55%%, measured %+.0f%%\n",
                fdelta("MEM2"));
    std::printf("  RaT vs FLUSH, MEM4: paper +63%%, measured %+.0f%%\n",
                fdelta("MEM4"));
    return 0;
}
