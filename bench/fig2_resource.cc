/**
 * @file
 * Reproduces Figure 2: throughput (a) and fairness (b) of the dynamic
 * resource-control policies DCRA / Hill Climbing versus ICOUNT and
 * Runahead Threads over the Table 2 workload groups.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Figure 2 — resource-control policies vs RaT",
           "DCRA >= HillClimbing on ILP, HillClimbing > DCRA on MIX; "
           "RaT above both everywhere, biggest on MEM (~+75%/+53% vs "
           "DCRA/HillClimbing in the paper)");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    const std::vector<sim::TechniqueSpec> lineup = {
        sim::icountSpec(), sim::dcraSpec(), sim::hillClimbingSpec(),
        sim::ratSpec()};
    std::vector<std::string> labels;
    for (const auto &t : lineup)
        labels.push_back(t.label);

    std::map<std::string, std::vector<double>> thr_rows, fair_rows;
    std::vector<std::string> group_order;

    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const std::string gname = sim::groupName(g);
        group_order.push_back(gname);
        for (const auto &tech : lineup) {
            const sim::GroupMetrics gm = runner.runGroup(g, tech);
            thr_rows[gname].push_back(gm.meanThroughput);
            fair_rows[gname].push_back(gm.meanFairness);
        }
    }

    printGroupTable("Fig. 2(a) Throughput (Eq. 1 IPC)", labels, thr_rows,
                    group_order);
    printGroupTable("Fig. 2(b) Fairness (Eq. 2 harmonic mean)", labels,
                    fair_rows, group_order);

    BenchReport report("fig2_resource");
    report.addGroupTable("Fig. 2(a) Throughput (Eq. 1 IPC)", labels,
                         thr_rows, group_order);
    report.addGroupTable("Fig. 2(b) Fairness (Eq. 2 harmonic mean)",
                         labels, fair_rows, group_order);

    const struct {
        const char *label;
        double measured;
    } headlines[] = {
        {"RaT vs DCRA, MEM2 (%)",
         pct(thr_rows.at("MEM2")[3], thr_rows.at("MEM2")[1])},
        {"RaT vs DCRA, MEM4 (%)",
         pct(thr_rows.at("MEM4")[3], thr_rows.at("MEM4")[1])},
        {"RaT vs HillClimbing, MEM2 (%)",
         pct(thr_rows.at("MEM2")[3], thr_rows.at("MEM2")[2])},
        {"RaT vs HillClimbing, MEM4 (%)",
         pct(thr_rows.at("MEM4")[3], thr_rows.at("MEM4")[2])},
    };
    for (const auto &h : headlines)
        report.addHeadline(h.label, h.measured);

    std::printf("\nheadline (throughput): paper vs measured\n");
    std::printf("  RaT vs DCRA, MEM2: paper +75%%, measured %+.0f%%\n",
                headlines[0].measured);
    std::printf("  RaT vs DCRA, MEM4: paper +74%%, measured %+.0f%%\n",
                headlines[1].measured);
    std::printf("  RaT vs HillClimbing, MEM2: paper +53%%, measured "
                "%+.0f%%\n",
                headlines[2].measured);
    std::printf("  RaT vs HillClimbing, MEM4: paper +58%%, measured "
                "%+.0f%%\n",
                headlines[3].measured);

    report.write();
    return 0;
}
