/**
 * @file
 * Reproduces Figure 3: Energy-Delay^2 of each technique normalized to
 * ICOUNT per workload group (lower is better; Section 5.3's model
 * counts every executed instruction as one energy unit).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Figure 3 — Energy-Delay^2 normalized to ICOUNT",
           "RaT < 1.0 on average (~0.6 for 2-thread, ~0.78 for 4-thread "
           "in the paper) despite executing extra instructions; FLUSH "
           "~0.78");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    const std::vector<sim::TechniqueSpec> lineup = {
        sim::stallSpec(), sim::flushSpec(), sim::dcraSpec(),
        sim::hillClimbingSpec(), sim::ratSpec()};
    std::vector<std::string> labels;
    for (const auto &t : lineup)
        labels.push_back(t.label);

    std::map<std::string, std::vector<double>> rows;
    std::vector<std::string> group_order;

    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const std::string gname = sim::groupName(g);
        group_order.push_back(gname);
        const sim::GroupMetrics base =
            runner.runGroup(g, sim::icountSpec());
        for (const auto &tech : lineup) {
            const sim::GroupMetrics gm = runner.runGroup(g, tech);
            // Normalize workload-by-workload, then average (matching
            // the paper's per-group normalized bars).
            double sum = 0.0;
            for (std::size_t i = 0; i < gm.results.size(); ++i) {
                const double b = sim::ed2(base.results[i]);
                const double v = sim::ed2(gm.results[i]);
                sum += (b > 0.0) ? v / b : 0.0;
            }
            rows[gname].push_back(sum /
                                  static_cast<double>(gm.results.size()));
        }
    }

    printGroupTable("Fig. 3 ED^2 relative to ICOUNT (lower = better)",
                    labels, rows, group_order);

    double rat2 = 0.0, rat4 = 0.0, flush_all = 0.0;
    rat2 = (rows.at("ILP2")[4] + rows.at("MIX2")[4] + rows.at("MEM2")[4]) /
           3.0;
    rat4 = (rows.at("ILP4")[4] + rows.at("MIX4")[4] + rows.at("MEM4")[4]) /
           3.0;
    for (const auto &g : group_order)
        flush_all += rows.at(g)[1];
    flush_all /= static_cast<double>(group_order.size());

    std::printf("\nheadline: paper vs measured\n");
    std::printf("  RaT ED^2, 2-thread groups: paper 0.60, measured "
                "%.2f\n", rat2);
    std::printf("  RaT ED^2, 4-thread groups: paper 0.78, measured "
                "%.2f\n", rat4);
    std::printf("  FLUSH ED^2 overall: paper 0.78, measured %.2f\n",
                flush_all);
    return 0;
}
