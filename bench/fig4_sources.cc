/**
 * @file
 * Reproduces Figure 4: isolating the two sources of RaT's improvement
 * plus its raw overhead (Section 6.1):
 *   - Prefetching: RaT vs RaT-with-prefetching-disabled (runahead
 *     episodes preserved, no lines fetched).
 *   - Resource availability: RaT-without-fetch-in-runahead vs STALL.
 *     Both stop fetching on a long-latency miss; the difference is the
 *     early release of already-held resources (INV folding and
 *     pseudo-retirement) — the paper's "early resource release" bar.
 *   - Overhead: degradation of the *co-running ILP threads* when a
 *     thread executes useless runahead episodes (no prefetch) instead
 *     of stalling quietly. The paper reports ~4% worst case.
 */

#include "bench/bench_util.hh"
#include "trace/profile.hh"

namespace {

using namespace rat;

/** ILP-class program by profile shape (no chasing, no heavy streaming). */
bool
isIlpProgram(const std::string &name)
{
    const trace::BenchmarkProfile &p = trace::spec2000(name);
    return p.chasePeriod == 0 && p.pStream < 0.2;
}

/** Mean IPC of the ILP-class threads across a group's results. */
double
ilpCoRunnerIpc(const sim::GroupMetrics &gm)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const sim::SimResult &r : gm.results) {
        for (const sim::ThreadResult &t : r.threads) {
            if (isIlpProgram(t.program)) {
                sum += t.ipc;
                ++n;
            }
        }
    }
    return n ? sum / n : 0.0;
}

} // namespace

int
main()
{
    using namespace rat::bench;

    banner("Figure 4 — sources of RaT improvement",
           "prefetching dominates (~58% avg, most on MIX/MEM ~56%/109%); "
           "resource availability small (~3% avg, ~22% on MIX); "
           "co-runner overhead negligible (~4%)");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    sim::TechniqueSpec rat_nopf = sim::ratSpec();
    rat_nopf.label = "RaT-noPF";
    rat_nopf.rat.disablePrefetch = true;

    sim::TechniqueSpec rat_nofetch = sim::ratSpec();
    rat_nofetch.label = "RaT-noFetch";
    rat_nofetch.rat.noFetchInRunahead = true;

    std::printf("\n%-8s %14s %18s %16s\n", "group", "prefetch(%)",
                "resource-avail(%)", "overhead(%)");

    double sum_pf = 0.0, sum_ra = 0.0, sum_ov = 0.0;
    unsigned n_ov = 0;
    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const sim::GroupMetrics m_stall =
            runner.runGroup(g, sim::stallSpec());
        const sim::GroupMetrics m_rat =
            runner.runGroup(g, sim::ratSpec());
        const sim::GroupMetrics m_nopf = runner.runGroup(g, rat_nopf);
        const sim::GroupMetrics m_nofetch =
            runner.runGroup(g, rat_nofetch);

        // Prefetching contribution: full RaT over prefetch-less RaT.
        const double prefetch =
            pct(m_rat.meanThroughput, m_nopf.meanThroughput);
        // Early resource release: no-extra-fetch RaT over STALL (both
        // stop fetching; only RaT releases held resources early).
        const double resource =
            pct(m_nofetch.meanThroughput, m_stall.meanThroughput);
        // Overhead: ILP co-runners next to useless runahead episodes
        // versus next to a quietly stalled thread.
        const double co_nopf = ilpCoRunnerIpc(m_nopf);
        const double co_stall = ilpCoRunnerIpc(m_stall);
        const bool has_ilp = co_stall > 0.0;
        const double overhead = has_ilp ? pct(co_nopf, co_stall) : 0.0;

        if (has_ilp) {
            std::printf("%-8s %14.1f %18.1f %16.1f\n", sim::groupName(g),
                        prefetch, resource, overhead);
            sum_ov += overhead;
            ++n_ov;
        } else {
            std::printf("%-8s %14.1f %18.1f %16s\n", sim::groupName(g),
                        prefetch, resource, "n/a");
        }
        sum_pf += prefetch;
        sum_ra += resource;
    }
    const double n = static_cast<double>(sim::allGroups().size());
    std::printf("%-8s %14.1f %18.1f %16.1f\n", "AVG", sum_pf / n,
                sum_ra / n, n_ov ? sum_ov / n_ov : 0.0);

    std::printf("\npaper: prefetch ~58%% avg (MIX 56%%, MEM 109%%); "
                "resource availability ~3%% avg (MIX 22%%);\n"
                "overhead ~4%% worst-case degradation of co-runners\n");
    return 0;
}
