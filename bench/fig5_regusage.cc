/**
 * @file
 * Reproduces Figure 5: average physical (renaming) registers allocated
 * per cycle in normal mode versus runahead mode, per workload group,
 * under Runahead Threads.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Figure 5 — registers allocated per cycle: normal vs runahead",
           "runahead mode holds markedly fewer registers; on MEM "
           "workloads less than half of normal mode");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    std::printf("\n%-8s %14s %16s %10s\n", "group", "normal-mode",
                "runahead-mode", "ratio");

    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const sim::GroupMetrics gm = runner.runGroup(g, sim::ratSpec());
        // Per-thread average register occupancy, aggregated over all
        // threads of all workloads in the group, weighted by cycles.
        double normal_reg_cycles = 0.0, normal_cycles = 0.0;
        double ra_reg_cycles = 0.0, ra_cycles = 0.0;
        for (const sim::SimResult &r : gm.results) {
            for (const sim::ThreadResult &t : r.threads) {
                normal_reg_cycles +=
                    static_cast<double>(t.core.normalRegCycles);
                normal_cycles +=
                    static_cast<double>(t.core.normalCycles);
                ra_reg_cycles +=
                    static_cast<double>(t.core.runaheadRegCycles);
                ra_cycles += static_cast<double>(t.core.runaheadCycles);
            }
        }
        const double avg_normal =
            normal_cycles > 0 ? normal_reg_cycles / normal_cycles : 0.0;
        const double avg_ra =
            ra_cycles > 0 ? ra_reg_cycles / ra_cycles : 0.0;
        std::printf("%-8s %14.1f %16.1f %9.2fx\n", sim::groupName(g),
                    avg_normal, avg_ra,
                    avg_normal > 0 ? avg_ra / avg_normal : 0.0);
    }

    std::printf("\npaper: runahead-mode register usage is well below "
                "normal mode; for MEM workloads\nless than half "
                "(Section 6.2, Fig. 5)\n");
    return 0;
}
