/**
 * @file
 * Reproduces Figure 6: throughput as a function of the renaming
 * register-file size (64..320) for FLUSH versus RaT, separately for
 * the 2-thread (a) and 4-thread (b) workload groups.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Figure 6 — throughput vs register-file size (FLUSH vs RaT)",
           "throughput falls as registers shrink, but far less with RaT;"
           " RaT@128 >= FLUSH@320 for MIX/MEM (the paper's 60% register"
           " reduction claim)");

    const unsigned sizes[] = {64, 128, 192, 256, 320};

    // rows[group][technique-size column]
    std::map<std::string, std::vector<double>> rows;
    std::vector<std::string> labels;
    for (const char *tech : {"FLUSH", "RaT"}) {
        for (const unsigned s : sizes)
            labels.push_back(std::string(tech) + "@" +
                             std::to_string(s));
    }

    std::vector<std::string> group_order;
    for (const sim::WorkloadGroup g : sim::allGroups())
        group_order.push_back(sim::groupName(g));

    for (const unsigned size : sizes) {
        sim::SimConfig cfg = benchConfig();
        cfg.core.intRegs = size;
        cfg.core.fpRegs = size;
        sim::ExperimentRunner runner(cfg);
        applyJobs(runner);
        for (const sim::WorkloadGroup g : sim::allGroups()) {
            const std::string gname = sim::groupName(g);
            rows[gname].push_back(
                runner.runGroup(g, sim::flushSpec()).meanThroughput);
        }
    }
    for (const unsigned size : sizes) {
        sim::SimConfig cfg = benchConfig();
        cfg.core.intRegs = size;
        cfg.core.fpRegs = size;
        sim::ExperimentRunner runner(cfg);
        applyJobs(runner);
        for (const sim::WorkloadGroup g : sim::allGroups()) {
            const std::string gname = sim::groupName(g);
            rows[gname].push_back(
                runner.runGroup(g, sim::ratSpec()).meanThroughput);
        }
    }

    printGroupTable("Fig. 6 Throughput (Eq. 1 IPC) by register-file size",
                    labels, rows, group_order);

    BenchReport report("fig6_regfile");
    report.addGroupTable(
        "Fig. 6 Throughput (Eq. 1 IPC) by register-file size", labels,
        rows, group_order);

    // The paper's Section 6.2 headline comparisons.
    const auto col = [&](bool rat, unsigned size_idx) {
        return (rat ? 5u : 0u) + size_idx;
    };
    std::printf("\nheadline: RaT@128 vs FLUSH@320 (throughput ratio; "
                "paper: +4/20/85%% for 2T ILP/MIX/MEM,\n"
                "+0.2/21/92%% for 4T):\n");
    for (const auto &g : group_order) {
        const double rat128 = rows.at(g)[col(true, 1)];
        const double flush320 = rows.at(g)[col(false, 4)];
        const double gain = pct(rat128, flush320);
        report.addHeadline("RaT@128 vs FLUSH@320, " + g + " (%)", gain);
        std::printf("  %-6s %+7.1f%%\n", g.c_str(), gain);
    }
    std::printf("\nslowdown 320->64 (paper MEM4: FLUSH -27%%, RaT "
                "-15%%):\n");
    for (const auto &g : group_order) {
        const double f =
            pct(rows.at(g)[col(false, 0)], rows.at(g)[col(false, 4)]);
        const double r =
            pct(rows.at(g)[col(true, 0)], rows.at(g)[col(true, 4)]);
        report.addHeadline("slowdown 320->64 FLUSH, " + g + " (%)", f);
        report.addHeadline("slowdown 320->64 RaT, " + g + " (%)", r);
        std::printf("  %-6s FLUSH %+6.1f%%   RaT %+6.1f%%\n", g.c_str(),
                    f, r);
    }

    report.write();
    return 0;
}
