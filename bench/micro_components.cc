/**
 * @file
 * Google-benchmark micro-benchmarks of the simulator's hot components
 * (engineering health, not a paper figure): cache access, perceptron
 * prediction, trace synthesis, and whole-core cycle throughput.
 */

#include <benchmark/benchmark.h>

#include "branch/perceptron.hh"
#include "core/smt_core.hh"
#include "mem/hierarchy.hh"
#include "policy/factory.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace {

using namespace rat;

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.ways = 4;
    mem::Cache cache(cfg);
    Addr evicted = 0;
    for (Addr a = 0; a < 64 * 1024; a += 64)
        cache.install(a, 0, 0, evicted);
    Addr a = 0;
    Cycle now = 1;
    for (auto _ : state) {
        Cycle ready = 0;
        benchmark::DoNotOptimize(cache.access(a & 0xFFFF, ++now, ready));
        a += 64;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyColdMiss(benchmark::State &state)
{
    mem::MemoryHierarchy h{mem::MemConfig{}};
    Addr a = 0;
    Cycle now = 0;
    for (auto _ : state) {
        now += 500; // let MSHRs drain
        benchmark::DoNotOptimize(h.readData(0, a, now));
        a += 4096; // fresh set each time: worst case walk
    }
}
BENCHMARK(BM_HierarchyColdMiss);

void
BM_PerceptronPredict(benchmark::State &state)
{
    branch::PerceptronPredictor p;
    Addr pc = 0x1000;
    for (auto _ : state) {
        const auto out = p.predict(0, pc);
        p.update(0, pc, (pc >> 4) & 1, out);
        pc += 4;
    }
}
BENCHMARK(BM_PerceptronPredict);

void
BM_TraceGenerate(benchmark::State &state)
{
    const trace::TraceGenerator gen(trace::spec2000("gcc"), 1,
                                    Addr{1} << 40);
    InstSeq i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.at(++i));
}
BENCHMARK(BM_TraceGenerate);

void
BM_CoreCycle(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    core::CoreConfig cfg;
    cfg.numThreads = threads;
    cfg.policy = core::PolicyKind::Rat;
    mem::MemoryHierarchy memory{mem::MemConfig{}};
    const char *programs[] = {"art", "gzip", "mcf", "swim"};
    std::vector<std::unique_ptr<trace::TraceGenerator>> gens;
    std::vector<const trace::TraceSource *> streams;
    for (unsigned t = 0; t < threads; ++t) {
        gens.push_back(std::make_unique<trace::TraceGenerator>(
            trace::spec2000(programs[t]), t + 1,
            (static_cast<Addr>(t) + 1) << 40));
        streams.push_back(gens.back().get());
    }
    auto policy = policy::makePolicy(core::PolicyKind::Rat);
    core::SmtCore smt(cfg, memory, *policy, std::move(streams));
    smt.run(5000); // get past cold start
    for (auto _ : state)
        smt.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreCycle)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
