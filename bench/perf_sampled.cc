/**
 * perf_sampled: speedup and accuracy of phase-sampled simulation
 * (`--sampled`, DESIGN.md "Sampled simulation") against full detailed
 * runs.
 *
 * Grid: the pinned operating point's MIX2 pair under all nine
 * scheduling policies, plus a 4-thread MIX4 mix under the headline
 * policies — exactly the sweep shape sampling exists to accelerate.
 * For every cell the bench runs the full measured window and the
 * sampled estimate, then reports:
 *
 *   - per-policy hmean-IPC error of the estimate (deterministic — the
 *     simulator has no host randomness, so these numbers are stable
 *     across runs and machines),
 *   - the detailed-work reduction (full warmup+measure cycles vs the
 *     sum of per-sample detailed cycles), also deterministic,
 *   - wall-clock speedup of the whole sweep, where the one-off
 *     profiling + checkpoint-walk cost amortizes across policies.
 *
 * With RATSIM_SAMPLED_STRICT=1 (CI) the bench pins the contract at the
 * pinned operating point: detailed-work reduction >= 5x and worst
 * hmean-IPC error <= 2%, else it exits non-zero. Strict mode ignores
 * the RATSIM_WARMUP/RATSIM_MEASURE smoke scaling — the contract is
 * only meaningful at the operating point's own windows.
 *
 * Output: tables on stdout plus BENCH_sampled.json via BenchReport.
 */

#include <chrono>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "policy/factory.hh"
#include "sim/sampled.hh"
#include "sim/simulator.hh"

namespace {

using namespace rat;

/**
 * The pinned operating point (see tests/sim/test_sampled.cc, which
 * pins the same numbers): MIX2 mcf,eon at seed 6, 4 phases of
 * 8192-inst windows over a 48-window span, 2k + 23.25k detailed
 * cycles per sample against a 5k + 500k-cycle full window — an
 * exactly 5x detailed-work reduction at 0.80% worst-policy error.
 */
constexpr unsigned kPhases = 4;
constexpr unsigned kPhaseWindow = 8192;
constexpr unsigned kPhaseSpan = 48;
constexpr std::uint64_t kSampleWarmup = 2000;
constexpr std::uint64_t kSampleMeasure = 23250;
constexpr std::uint64_t kFullWarmup = 5000;
constexpr std::uint64_t kFullMeasure = 500000;
constexpr std::uint64_t kPrewarm = 100000;
constexpr std::uint64_t kSeed = 6;

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

sim::SimConfig
cellConfig(const std::vector<std::string> &mix, core::PolicyKind policy,
           bool sampled, bool strict)
{
    sim::SimConfig cfg;
    cfg.core.numThreads = static_cast<unsigned>(mix.size());
    cfg.core.policy = policy;
    if (strict) {
        cfg.seed = kSeed;
        cfg.prewarmInsts = kPrewarm;
        cfg.warmupCycles = kFullWarmup;
        cfg.measureCycles = kFullMeasure;
    } else {
        cfg = rat::bench::benchConfig();
        cfg.core.numThreads = static_cast<unsigned>(mix.size());
        cfg.core.policy = policy;
    }
    if (sampled) {
        cfg.sampled = true;
        cfg.samplePhases = kPhases;
        cfg.phaseWindow = kPhaseWindow;
        cfg.phaseSpanWindows = kPhaseSpan;
        cfg.sampleWarmupCycles = kSampleWarmup;
        cfg.sampleMeasureCycles =
            strict ? kSampleMeasure
                   : std::max<std::uint64_t>(cfg.measureCycles / 8, 500);
    }
    return cfg;
}

} // namespace

int
main()
{
    using namespace rat::bench;

    const bool strict = []() {
        const char *v = std::getenv("RATSIM_SAMPLED_STRICT");
        return v && *v && *v != '0';
    }();

    banner("perf_sampled — phase-sampled simulation vs full detailed runs",
           ">=5x detailed-work reduction at <=2% worst-policy hmean-IPC "
           "error (strict mode pins both)");

    const std::vector<std::string> mix2 = {"mcf", "eon"};
    const std::vector<std::string> mix4 = {"art", "mcf", "gzip", "crafty"};
    const std::vector<core::PolicyKind> mix2Policies = {
        core::PolicyKind::RoundRobin, core::PolicyKind::Icount,
        core::PolicyKind::Stall,      core::PolicyKind::Flush,
        core::PolicyKind::Dcra,       core::PolicyKind::HillClimbing,
        core::PolicyKind::Rat,        core::PolicyKind::RatDcra,
        core::PolicyKind::MlpAware,
    };
    const std::vector<core::PolicyKind> mix4Policies = {
        core::PolicyKind::Icount, core::PolicyKind::Flush,
        core::PolicyKind::Rat};

    struct SweepRow {
        std::string label;
        double fullHmean = 0.0;
        double sampledHmean = 0.0;
        double errorPct = 0.0;
    };
    std::vector<SweepRow> rows;
    double fullSeconds = 0.0, sampledSeconds = 0.0;
    double worstMix2Error = 0.0, worstMix4Error = 0.0;
    double reduction = 0.0;

    const auto sweep = [&](const std::vector<std::string> &mix,
                           const std::vector<core::PolicyKind> &policies,
                           double &worstError) {
        std::string mixName;
        for (const auto &p : mix)
            mixName += (mixName.empty() ? "" : ",") + p;
        for (const core::PolicyKind policy : policies) {
            const sim::SimConfig fullCfg =
                cellConfig(mix, policy, false, strict);
            const sim::SimConfig sampCfg =
                cellConfig(mix, policy, true, strict);

            auto t0 = std::chrono::steady_clock::now();
            sim::Simulator full(fullCfg, mix);
            const sim::SimResult fr = full.run();
            fullSeconds += wallSeconds(t0);

            t0 = std::chrono::steady_clock::now();
            const sim::SimResult sr = sim::simulateCell(sampCfg, mix);
            sampledSeconds += wallSeconds(t0);

            SweepRow row;
            row.label =
                mixName + " / " + core::policyName(policy);
            row.fullHmean = sim::hmeanIpc(fr);
            row.sampledHmean = sim::hmeanIpc(sr);
            row.errorPct =
                row.fullHmean > 0.0
                    ? 100.0 *
                          std::abs(row.sampledHmean - row.fullHmean) /
                          row.fullHmean
                    : 0.0;
            worstError = std::max(worstError, row.errorPct);
            rows.push_back(row);

            if (reduction == 0.0) {
                const trace::PhaseProfile &plan =
                    sim::samplePlanFor(sampCfg, mix);
                const double detailed =
                    static_cast<double>(plan.samples.size()) *
                    static_cast<double>(sampCfg.sampleWarmupCycles +
                                        sampCfg.sampleMeasureCycles);
                reduction =
                    static_cast<double>(fullCfg.warmupCycles +
                                        fullCfg.measureCycles) /
                    detailed;
            }
        }
    };

    sweep(mix2, mix2Policies, worstMix2Error);
    sweep(mix4, mix4Policies, worstMix4Error);

    std::printf("\n%-28s %12s %12s %10s\n", "cell", "full hmean",
                "sampled", "error %");
    for (const SweepRow &row : rows)
        std::printf("%-28s %12.4f %12.4f %10.2f\n", row.label.c_str(),
                    row.fullHmean, row.sampledHmean, row.errorPct);

    const double speedup =
        sampledSeconds > 0.0 ? fullSeconds / sampledSeconds : 0.0;
    std::printf("\nfull sweep wall:     %8.2fs\n", fullSeconds);
    std::printf("sampled sweep wall:  %8.2fs  (profiling + checkpoint "
                "walk amortized across policies)\n",
                sampledSeconds);
    std::printf("wall-clock speedup:  %8.2fx\n", speedup);
    std::printf("detailed-work reduction: %.2fx (deterministic)\n",
                reduction);
    std::printf("worst hmean-IPC error: MIX2 %.2f%%, MIX4 %.2f%% "
                "(deterministic)\n",
                worstMix2Error, worstMix4Error);

    BenchReport report("sampled");
    {
        std::map<std::string, std::vector<double>> table;
        std::vector<std::string> order;
        for (const SweepRow &row : rows) {
            table[row.label] = {row.fullHmean, row.sampledHmean,
                                row.errorPct};
            order.push_back(row.label);
        }
        report.addGroupTable("full vs sampled hmean IPC",
                             {"full", "sampled", "error%"}, table,
                             order);
    }
    report.addHeadline("wall-clock speedup (x)", speedup);
    report.addHeadline("detailed-work reduction (x)", reduction);
    report.addHeadline("worst MIX2 hmean-IPC error (%)", worstMix2Error);
    report.addHeadline("worst MIX4 hmean-IPC error (%)", worstMix4Error);
    report.addHeadline("strict mode", strict ? 1.0 : 0.0);
    report.write();

    if (strict) {
        bool ok = true;
        if (reduction < 5.0) {
            std::printf("STRICT FAIL: detailed-work reduction %.2fx "
                        "< 5x\n",
                        reduction);
            ok = false;
        }
        if (worstMix2Error > 2.0) {
            std::printf("STRICT FAIL: worst MIX2 hmean-IPC error "
                        "%.2f%% > 2%%\n",
                        worstMix2Error);
            ok = false;
        }
        if (!ok)
            return 1;
        std::printf("\nstrict contract met: %.2fx reduction, worst "
                    "MIX2 error %.2f%%\n",
                    reduction, worstMix2Error);
    }
    return 0;
}
