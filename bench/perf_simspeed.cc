/**
 * perf_simspeed: wall-clock simulator throughput of the event-driven
 * scheduler against the broadcast reference it replaced (DESIGN.md,
 * "Event-driven wakeup").
 *
 * Every paper figure is a sweep over techniques x workloads x resource
 * sizes, so simulated-MIPS is the budget that bounds how many scenarios
 * a campaign can explore. This bench runs the paper's 4-thread MIX
 * workloads under RaT twice per workload — once with the pre-refactor
 * broadcast scans (`CoreConfig::broadcastScheduler`), once with the
 * event-driven waiter lists — verifies the results are bit-identical,
 * and reports simulated MIPS (measured-window committed instructions
 * per wall second of that window) and simulated Kcycles/sec over the
 * same window (prewarm and warmup are identical in both modes and
 * reported separately in the totals).
 *
 * Output: the usual table on stdout plus BENCH_simspeed.json through
 * BenchReport (before/after series and the headline speedup).
 *
 * Extra env knobs (on top of bench_util.hh):
 *   RATSIM_SPEED_WORKLOADS  cap on MIX4 workloads timed (default: all 8)
 */

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "report/serialize.hh"
#include "sim/simulator.hh"

namespace {

using namespace rat;

struct ModeSample {
    double seconds = 0.0;     ///< measured-window wall seconds
    double mips = 0.0;        ///< committed Minsts / measured second
    double kcps = 0.0;        ///< simulated Kcycles / measured second
    double prewarmSec = 0.0;  ///< untimed phases (prewarm + warmup)
    std::string resultJson;   ///< full serialized SimResult
    std::uint64_t committed = 0;
};

ModeSample
timeOne(const sim::SimConfig &base, const sim::Workload &w, bool broadcast)
{
    sim::SimConfig cfg = base;
    cfg.core.policy = core::PolicyKind::Rat;
    cfg.core.broadcastScheduler = broadcast;

    sim::Simulator simulator(cfg, w.programs);
    sim::PhaseTiming t;
    const sim::SimResult r = simulator.run(&t);

    // Throughput over the measured window only: SimResult's committed
    // counts cover exactly that window (stats reset after warmup), so
    // numerator and denominator describe the same cycles.
    ModeSample s;
    s.seconds = t.measureSeconds;
    s.prewarmSec = t.prewarmSeconds + t.warmupSeconds;
    s.committed = r.committedTotal();
    if (s.seconds > 0.0) {
        s.mips = static_cast<double>(s.committed) / 1e6 / s.seconds;
        s.kcps = static_cast<double>(r.cycles) / 1e3 / s.seconds;
    }
    s.resultJson = report::toJson(r).dump();
    return s;
}

} // namespace

int
main()
{
    using namespace rat;

    bench::banner(
        "perf_simspeed: event-driven vs broadcast scheduler throughput",
        "event-driven wakeup well above 1.5x simulated MIPS (in-tree "
        "reference; a lower bound on the PR-2 seed gap, see DESIGN.md), "
        "bit-identical results");

    const sim::SimConfig base = bench::benchConfig();
    const auto &mix4 = sim::workloadsOf(sim::WorkloadGroup::MIX4);
    const std::uint64_t cap =
        bench::envU64("RATSIM_SPEED_WORKLOADS", mix4.size());
    const std::size_t count =
        std::min<std::size_t>(mix4.size(), static_cast<std::size_t>(cap));
    if (count < mix4.size()) {
        std::printf("note: timing %zu of %zu MIX4 workloads "
                    "(RATSIM_SPEED_WORKLOADS)\n",
                    count, mix4.size());
    }

    const std::vector<std::string> labels = {"bcast MIPS", "event MIPS",
                                             "speedup"};
    const std::vector<std::string> cycle_labels = {"bcast Kc/s",
                                                   "event Kc/s"};
    std::map<std::string, std::vector<double>> rows;
    std::map<std::string, std::vector<double>> cycle_rows;
    std::vector<std::string> order;

    bench::BenchReport bench_report("simspeed");
    double sum_bcast_sec = 0.0, sum_event_sec = 0.0;
    double sum_prewarm_sec = 0.0;
    std::uint64_t sum_committed = 0;

    for (std::size_t i = 0; i < count; ++i) {
        const sim::Workload &w = mix4[i];
        // Broadcast (before) first, then event-driven (after).
        const ModeSample before = timeOne(base, w, /*broadcast=*/true);
        const ModeSample after = timeOne(base, w, /*broadcast=*/false);

        // The refactor's contract: same simulation, only faster.
        if (before.resultJson != after.resultJson) {
            fatal("scheduler results diverged on workload '%s'",
                  w.name.c_str());
        }

        const double speedup =
            before.mips > 0.0 ? after.mips / before.mips : 0.0;
        rows[w.name] = {before.mips, after.mips, speedup};
        cycle_rows[w.name] = {before.kcps, after.kcps};
        order.push_back(w.name);
        sum_bcast_sec += before.seconds;
        sum_event_sec += after.seconds;
        sum_prewarm_sec += before.prewarmSec + after.prewarmSec;
        sum_committed += after.committed;
    }

    bench::printGroupTable("RaT on MIX4: simulated MIPS by scheduler",
                           labels, rows, order);
    bench::printGroupTable("RaT on MIX4: simulated Kcycles/sec by "
                           "scheduler",
                           cycle_labels, cycle_rows, order);
    bench_report.addGroupTable(
        "RaT on MIX4: simulated MIPS by scheduler (before=broadcast, "
        "after=event)",
        labels, rows, order);
    bench_report.addGroupTable(
        "RaT on MIX4: simulated Kcycles/sec by scheduler "
        "(before=broadcast, after=event)",
        cycle_labels, cycle_rows, order);

    const double total_mips_bcast =
        sum_bcast_sec > 0.0
            ? static_cast<double>(sum_committed) / 1e6 / sum_bcast_sec
            : 0.0;
    const double total_mips_event =
        sum_event_sec > 0.0
            ? static_cast<double>(sum_committed) / 1e6 / sum_event_sec
            : 0.0;
    const double total_speedup =
        total_mips_bcast > 0.0 ? total_mips_event / total_mips_bcast : 0.0;

    std::printf("\nsweep totals (measured windows): broadcast %.2fs, "
                "event %.2fs, untimed prewarm+warmup %.2fs\n",
                sum_bcast_sec, sum_event_sec, sum_prewarm_sec);
    std::printf("simulated MIPS: broadcast %.3f -> event %.3f "
                "(speedup %.2fx)\n",
                total_mips_bcast, total_mips_event, total_speedup);

    bench_report.addHeadline("simulated MIPS, broadcast (before)",
                             total_mips_bcast);
    bench_report.addHeadline("simulated MIPS, event-driven (after)",
                             total_mips_event);
    bench_report.addHeadline("speedup (event vs broadcast)",
                             total_speedup);
    bench_report.write();
    return 0;
}
