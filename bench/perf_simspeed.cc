/**
 * perf_simspeed: wall-clock simulator throughput of the host-side
 * execution modes — the event-driven scheduler vs the broadcast
 * reference (PR 3, DESIGN.md "Event-driven wakeup") and quiescence-aware
 * cycle skipping vs per-cycle ticking (DESIGN.md "Cycle skipping &
 * quiescence invariants").
 *
 * Every paper figure is a sweep over techniques x workloads x resource
 * sizes, so simulated-MIPS is the budget that bounds how many scenarios
 * a campaign can explore. Two sweeps:
 *
 *  1. RaT on the 4-thread MIX workloads across the full 2x2 mode grid
 *     (scheduler mode x skip mode). All four cells must produce
 *     byte-identical serialized results — the bench aborts (and the
 *     bench smoke ctest fails) on any divergence.
 *  2. The MEM-dominated 2-thread group (Table 2 MEM2) under the
 *     baseline long-latency policies (ICOUNT, STALL, DCRA), skip vs
 *     ticked. These are the workloads whose dead cycles skipping
 *     elides; per-phase skipped-cycle counts are reported alongside
 *     the speedup.
 *  3. Event-tracer overhead: the fastest mode with tracing off vs all
 *     categories streaming to /dev/null. The off row guards the
 *     zero-cost-when-off claim; traced runs must serialize identical
 *     results (observation only) or the bench aborts.
 *
 * Output: the usual tables on stdout plus BENCH_simspeed.json through
 * BenchReport (per-cell series and the headline speedups).
 *
 * Extra env knobs (on top of bench_util.hh):
 *   RATSIM_SPEED_WORKLOADS  cap on MIX4 workloads timed (default: all 8)
 *   RATSIM_SKIP_WORKLOADS   cap on MEM2 workloads timed (default: all 10)
 *   RATSIM_TRACE_WORKLOADS  cap on tracer-overhead workloads (default 2)
 */

#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "report/serialize.hh"
#include "sim/simulator.hh"

namespace {

using namespace rat;

struct ModeSample {
    double seconds = 0.0;     ///< measured-window wall seconds
    double mips = 0.0;        ///< committed Minsts / measured second
    double prewarmSec = 0.0;  ///< untimed phases (prewarm + warmup)
    std::string resultJson;   ///< full serialized SimResult
    std::uint64_t committed = 0;
    std::uint64_t warmupSkipped = 0;  ///< warmup cycles fast-forwarded
    std::uint64_t measureSkipped = 0; ///< measured cycles fast-forwarded
};

ModeSample
timeOne(const sim::SimConfig &base, const sim::Workload &w,
        core::PolicyKind policy, bool broadcast, bool skip,
        const std::string &trace_out = {})
{
    sim::SimConfig cfg = base;
    cfg.core.policy = policy;
    cfg.core.broadcastScheduler = broadcast;
    cfg.core.cycleSkipping = skip;
    cfg.traceOut = trace_out;

    sim::Simulator simulator(cfg, w.programs);
    sim::PhaseTiming t;
    const sim::SimResult r = simulator.run(&t);

    // Throughput over the measured window only: SimResult's committed
    // counts cover exactly that window (stats reset after warmup), so
    // numerator and denominator describe the same cycles.
    ModeSample s;
    s.seconds = t.measureSeconds;
    s.prewarmSec = t.prewarmSeconds + t.warmupSeconds;
    s.committed = r.committedTotal();
    s.warmupSkipped = t.warmupSkippedCycles;
    s.measureSkipped = t.measureSkippedCycles;
    if (s.seconds > 0.0)
        s.mips = static_cast<double>(s.committed) / 1e6 / s.seconds;
    s.resultJson = report::toJson(r).dump();
    return s;
}

std::size_t
cappedCount(const char *env, std::size_t all)
{
    const std::uint64_t cap = bench::envU64(env, all);
    return std::min<std::size_t>(all, static_cast<std::size_t>(cap));
}

} // namespace

int
main()
{
    using namespace rat;

    // The tracing sweep's "wrote trace" inform lines would interleave
    // with the tables on a merged stdout/stderr capture.
    setLogLevel(LogLevel::Warn);

    bench::banner(
        "perf_simspeed: scheduler x cycle-skip execution-mode grid",
        "all four mode cells bit-identical; cycle skipping well above "
        "1.5x simulated MIPS on MEM-dominated mixes under the baseline "
        "policies, on top of the event-driven scheduler's gain");

    const sim::SimConfig base = bench::benchConfig();
    bench::BenchReport bench_report("simspeed");

    // ---- sweep 1: RaT on MIX4, full 2x2 (scheduler x skip) grid ----------
    const auto &mix4 = sim::workloadsOf(sim::WorkloadGroup::MIX4);
    const std::size_t mix4_count =
        cappedCount("RATSIM_SPEED_WORKLOADS", mix4.size());
    if (mix4_count < mix4.size()) {
        std::printf("note: timing %zu of %zu MIX4 workloads "
                    "(RATSIM_SPEED_WORKLOADS)\n",
                    mix4_count, mix4.size());
    }

    const std::vector<std::string> grid_labels = {
        "bc+tick", "bc+skip", "ev+tick", "ev+skip", "sched x", "skip x"};
    std::map<std::string, std::vector<double>> grid_rows;
    std::vector<std::string> grid_order;

    double sum_bcast_sec = 0.0, sum_event_sec = 0.0;
    double sum_skip_sec = 0.0, sum_prewarm_sec = 0.0;
    std::uint64_t sum_committed = 0;

    for (std::size_t i = 0; i < mix4_count; ++i) {
        const sim::Workload &w = mix4[i];
        // Cell order: the seed-most mode first, the fastest mode last.
        const ModeSample bc_tick =
            timeOne(base, w, core::PolicyKind::Rat, true, false);
        const ModeSample bc_skip =
            timeOne(base, w, core::PolicyKind::Rat, true, true);
        const ModeSample ev_tick =
            timeOne(base, w, core::PolicyKind::Rat, false, false);
        const ModeSample ev_skip =
            timeOne(base, w, core::PolicyKind::Rat, false, true);

        // The mode contract: same simulation, only faster. Any
        // divergence across the four cells aborts the bench (and the
        // bench smoke ctest).
        for (const ModeSample *s : {&bc_skip, &ev_tick, &ev_skip}) {
            if (s->resultJson != bc_tick.resultJson) {
                fatal("execution modes diverged on workload '%s'",
                      w.name.c_str());
            }
        }

        const double sched_x =
            bc_tick.mips > 0.0 ? ev_tick.mips / bc_tick.mips : 0.0;
        const double skip_x =
            ev_tick.mips > 0.0 ? ev_skip.mips / ev_tick.mips : 0.0;
        grid_rows[w.name] = {bc_tick.mips, bc_skip.mips, ev_tick.mips,
                             ev_skip.mips, sched_x, skip_x};
        grid_order.push_back(w.name);

        sum_bcast_sec += bc_tick.seconds;
        sum_event_sec += ev_tick.seconds;
        sum_skip_sec += ev_skip.seconds;
        sum_prewarm_sec += bc_tick.prewarmSec + bc_skip.prewarmSec +
                           ev_tick.prewarmSec + ev_skip.prewarmSec;
        sum_committed += ev_skip.committed;
    }

    bench::printGroupTable(
        "RaT on MIX4: simulated MIPS by execution mode "
        "(bc=broadcast, ev=event)",
        grid_labels, grid_rows, grid_order);
    bench_report.addGroupTable(
        "RaT on MIX4: simulated MIPS by execution mode (scheduler x "
        "cycle-skip grid; sched x = ev+tick/bc+tick, skip x = "
        "ev+skip/ev+tick)",
        grid_labels, grid_rows, grid_order);

    // ---- sweep 2: MEM-dominated mixes, skip on vs off --------------------
    const auto &mem2 = sim::workloadsOf(sim::WorkloadGroup::MEM2);
    const std::size_t mem2_count =
        cappedCount("RATSIM_SKIP_WORKLOADS", mem2.size());
    if (mem2_count < mem2.size()) {
        std::printf("\nnote: timing %zu of %zu MEM2 workloads "
                    "(RATSIM_SKIP_WORKLOADS)\n",
                    mem2_count, mem2.size());
    }

    const std::vector<core::PolicyKind> skip_policies = {
        core::PolicyKind::Icount, core::PolicyKind::Stall,
        core::PolicyKind::Dcra};

    const std::vector<std::string> skip_labels = {
        "tick MIPS", "skip MIPS", "speedup", "skip% warm", "skip% meas"};
    double best_speedup = 0.0;
    std::string best_cell;

    for (const core::PolicyKind policy : skip_policies) {
        std::map<std::string, std::vector<double>> rows;
        std::vector<std::string> order;
        double tick_sec = 0.0, skip_sec = 0.0;
        std::uint64_t committed = 0;

        for (std::size_t i = 0; i < mem2_count; ++i) {
            const sim::Workload &w = mem2[i];
            const ModeSample ticked =
                timeOne(base, w, policy, false, false);
            const ModeSample skipped =
                timeOne(base, w, policy, false, true);
            if (skipped.resultJson != ticked.resultJson) {
                fatal("cycle skipping diverged on '%s' under %s",
                      w.name.c_str(), core::policyName(policy));
            }
            const double speedup =
                ticked.mips > 0.0 ? skipped.mips / ticked.mips : 0.0;
            const auto skip_pct = [](std::uint64_t cycles, Cycle phase) {
                return phase > 0 ? 100.0 * static_cast<double>(cycles) /
                                       static_cast<double>(phase)
                                 : 0.0;
            };
            rows[w.name] = {
                ticked.mips, skipped.mips, speedup,
                skip_pct(skipped.warmupSkipped, base.warmupCycles),
                skip_pct(skipped.measureSkipped, base.measureCycles)};
            order.push_back(w.name);
            tick_sec += ticked.seconds;
            skip_sec += skipped.seconds;
            committed += skipped.committed;
            if (speedup > best_speedup) {
                best_speedup = speedup;
                best_cell = std::string(core::policyName(policy)) + " " +
                            w.name;
            }
        }

        const std::string title =
            std::string("MEM2 under ") + core::policyName(policy) +
            ": cycle skipping vs ticking (event scheduler)";
        bench::printGroupTable(title.c_str(), skip_labels, rows, order);
        bench_report.addGroupTable(title.c_str(), skip_labels, rows,
                                   order);

        const double tick_mips =
            tick_sec > 0.0
                ? static_cast<double>(committed) / 1e6 / tick_sec
                : 0.0;
        const double skip_mips =
            skip_sec > 0.0
                ? static_cast<double>(committed) / 1e6 / skip_sec
                : 0.0;
        bench_report.addHeadline(
            std::string("simulated MIPS, MEM2 sweep total, ticked (") +
                core::policyName(policy) + ")",
            tick_mips);
        bench_report.addHeadline(
            std::string("simulated MIPS, MEM2 sweep total, skipping (") +
                core::policyName(policy) + ")",
            skip_mips);
        std::printf("MEM2 %s sweep: ticked %.3f MIPS -> skipping %.3f "
                    "MIPS (%.2fx)\n\n",
                    core::policyName(policy), tick_mips, skip_mips,
                    tick_mips > 0.0 ? skip_mips / tick_mips : 0.0);
    }

    // ---- sweep 3: event-tracer overhead, off vs on -----------------------
    //
    // "Off" is the shipping configuration: the instrumentation sites
    // are compiled in but gated on a cached zero mask, so this row
    // doubles as the zero-cost-when-off guard (it must track the
    // ev+skip grid numbers above within noise, target < 1%). "On"
    // streams every category into the ring buffers and exports to
    // /dev/null; target < 15% overhead.
    const std::size_t trace_count =
        cappedCount("RATSIM_TRACE_WORKLOADS", std::min<std::size_t>(
                                                  mix4_count, 2));
    const std::vector<std::string> trace_labels = {
        "off MIPS", "on MIPS", "overhead%"};
    std::map<std::string, std::vector<double>> trace_rows;
    std::vector<std::string> trace_order;
    double trace_off_sec = 0.0, trace_on_sec = 0.0;
    std::uint64_t trace_committed = 0;

    for (std::size_t i = 0; i < trace_count; ++i) {
        const sim::Workload &w = mix4[i];
        const ModeSample off =
            timeOne(base, w, core::PolicyKind::Rat, false, true);
        const ModeSample on = timeOne(base, w, core::PolicyKind::Rat,
                                      false, true, "/dev/null");
        // Observation only: a traced run must serialize the exact same
        // result as the untraced one.
        if (on.resultJson != off.resultJson)
            fatal("tracing perturbed the result on workload '%s'",
                  w.name.c_str());
        const double overhead =
            on.mips > 0.0 ? 100.0 * (off.mips / on.mips - 1.0) : 0.0;
        trace_rows[w.name] = {off.mips, on.mips, overhead};
        trace_order.push_back(w.name);
        trace_off_sec += off.seconds;
        trace_on_sec += on.seconds;
        trace_committed += off.committed;
    }
    bench::printGroupTable(
        "RaT on MIX4: event-tracer overhead (ev+skip, all categories, "
        "export to /dev/null)",
        trace_labels, trace_rows, trace_order);
    bench_report.addGroupTable(
        "RaT on MIX4: event-tracer overhead (ev+skip, all categories, "
        "export to /dev/null)",
        trace_labels, trace_rows, trace_order);
    const double trace_off_mips =
        trace_off_sec > 0.0
            ? static_cast<double>(trace_committed) / 1e6 / trace_off_sec
            : 0.0;
    const double trace_on_mips =
        trace_on_sec > 0.0
            ? static_cast<double>(trace_committed) / 1e6 / trace_on_sec
            : 0.0;
    bench_report.addHeadline("simulated MIPS, tracing off (ev+skip)",
                             trace_off_mips);
    bench_report.addHeadline("simulated MIPS, tracing on (ev+skip)",
                             trace_on_mips);
    bench_report.addHeadline(
        "tracing overhead % (target < 15)",
        trace_on_mips > 0.0
            ? 100.0 * (trace_off_mips / trace_on_mips - 1.0)
            : 0.0);
    std::printf("tracing overhead: off %.3f MIPS -> on %.3f MIPS "
                "(%.1f%%)\n\n",
                trace_off_mips, trace_on_mips,
                trace_on_mips > 0.0
                    ? 100.0 * (trace_off_mips / trace_on_mips - 1.0)
                    : 0.0);

    // ---- totals ----------------------------------------------------------
    const double total_mips_bcast =
        sum_bcast_sec > 0.0
            ? static_cast<double>(sum_committed) / 1e6 / sum_bcast_sec
            : 0.0;
    const double total_mips_event =
        sum_event_sec > 0.0
            ? static_cast<double>(sum_committed) / 1e6 / sum_event_sec
            : 0.0;
    const double total_mips_skip =
        sum_skip_sec > 0.0
            ? static_cast<double>(sum_committed) / 1e6 / sum_skip_sec
            : 0.0;

    std::printf("MIX4 sweep totals (measured windows): broadcast %.2fs, "
                "event %.2fs, event+skip %.2fs, untimed prewarm+warmup "
                "%.2fs\n",
                sum_bcast_sec, sum_event_sec, sum_skip_sec,
                sum_prewarm_sec);
    std::printf("simulated MIPS on MIX4/RaT: broadcast %.3f -> event "
                "%.3f -> event+skip %.3f\n",
                total_mips_bcast, total_mips_event, total_mips_skip);
    std::printf("best MEM-dominated skip speedup: %.2fx (%s)\n",
                best_speedup, best_cell.c_str());

    bench_report.addHeadline("simulated MIPS, MIX4/RaT broadcast+tick",
                             total_mips_bcast);
    bench_report.addHeadline("simulated MIPS, MIX4/RaT event+tick",
                             total_mips_event);
    bench_report.addHeadline("simulated MIPS, MIX4/RaT event+skip",
                             total_mips_skip);
    bench_report.addHeadline("speedup (event vs broadcast, MIX4/RaT)",
                             total_mips_bcast > 0.0
                                 ? total_mips_event / total_mips_bcast
                                 : 0.0);
    bench_report.addHeadline("best MEM-dominated skip speedup",
                             best_speedup);
    bench_report.write();
    return 0;
}
