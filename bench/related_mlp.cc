/**
 * @file
 * Related-work comparison (Section 2): RaT versus the MLP-aware fetch
 * policy of Eyerman & Eeckhout [15]. The paper argues the MLP window's
 * hardware bound ("the long-latency shift register size") leaves
 * distant memory-level parallelism unexploited, while runahead keeps
 * going for the whole miss; this bench quantifies that argument.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Related work — MLP-aware fetch policy [15] vs RaT",
           "MLP-aware sits between STALL and RaT; RaT wins most where "
           "MLP extends beyond the bounded window (streaming MEM "
           "workloads)");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    const sim::TechniqueSpec mlp{"MLP", core::PolicyKind::MlpAware,
                                 core::RatConfig{}};

    std::printf("\n%-8s %12s %12s %12s %12s\n", "group", "STALL", "MLP",
                "RaT", "RaT vs MLP");
    for (const sim::WorkloadGroup g : sim::allGroups()) {
        const double stall =
            runner.runGroup(g, sim::stallSpec()).meanThroughput;
        const double mlp_thr = runner.runGroup(g, mlp).meanThroughput;
        const double rat =
            runner.runGroup(g, sim::ratSpec()).meanThroughput;
        std::printf("%-8s %12.3f %12.3f %12.3f %+11.1f%%\n",
                    sim::groupName(g), stall, mlp_thr, rat,
                    pct(rat, mlp_thr));
    }
    return 0;
}
