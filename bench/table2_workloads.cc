/**
 * @file
 * Reproduces the Table 2 methodology (Section 4): characterize each
 * SPEC2000 program by its single-threaded L2 cache miss rate, classify
 * ILP vs MEM, and print the resulting 2- and 4-thread workload table.
 */

#include <algorithm>

#include "bench/bench_util.hh"
#include "sim/simulator.hh"
#include "trace/profile.hh"

int
main()
{
    using namespace rat;
    using namespace rat::bench;

    banner("Table 2 — workload characterization and classification",
           "mcf/art/swim/twolf/vpr/parser/equake/lucas/applu/ammp are "
           "memory-bound; gzip/gcc/eon/... are ILP; MIX pairs one of "
           "each");

    sim::ExperimentRunner runner(benchConfig());
    applyJobs(runner);

    struct Row {
        std::string name;
        double ipc;
        double mpki;
    };
    std::vector<Row> rows;

    // Characterize every program in a single-threaded processor, the
    // paper's methodology for building Table 2.
    for (const std::string &prog : sim::allPrograms()) {
        sim::Simulator s(runner.configFor(sim::icountSpec(), 1), {prog});
        const sim::SimResult r = s.run();
        rows.push_back({prog, r.threads[0].ipc, r.threads[0].l2Mpki});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.mpki > b.mpki; });

    constexpr double kMemThresholdMpki = 5.0;
    std::printf("\n%-10s %8s %10s %8s\n", "program", "ST IPC", "L2 MPKI",
                "class");
    for (const Row &r : rows) {
        std::printf("%-10s %8.3f %10.2f %8s\n", r.name.c_str(), r.ipc,
                    r.mpki, r.mpki > kMemThresholdMpki ? "MEM" : "ILP");
    }

    std::printf("\nTable 2 workloads (verbatim from the paper):\n");
    for (const sim::WorkloadGroup g : sim::allGroups()) {
        std::printf("\n%s:\n", sim::groupName(g));
        for (const sim::Workload &w : sim::workloadsOf(g))
            std::printf("  %s\n", w.name.c_str());
    }
    return 0;
}
