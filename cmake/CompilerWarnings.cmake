# Warning interface targets.
#
#   ratsim::warnings        strict warning set, no -Werror
#   ratsim::warnings_error  the same set promoted to errors
#
# First-party code under src/ links ratsim::warnings_error; tests,
# benches and examples link ratsim::warnings so a new compiler's fresh
# diagnostics can't brick the whole suite over a test-side nit.

add_library(ratsim_warnings INTERFACE)
add_library(ratsim::warnings ALIAS ratsim_warnings)

target_compile_options(ratsim_warnings INTERFACE
  $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:
    -Wall
    -Wextra
    -Wshadow
    -Wnon-virtual-dtor
    -Wcast-align
    -Woverloaded-virtual>
  $<$<CXX_COMPILER_ID:MSVC>:/W4>)

add_library(ratsim_warnings_error INTERFACE)
add_library(ratsim::warnings_error ALIAS ratsim_warnings_error)
target_link_libraries(ratsim_warnings_error INTERFACE ratsim_warnings)
target_compile_options(ratsim_warnings_error INTERFACE
  $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Werror>
  $<$<CXX_COMPILER_ID:MSVC>:/WX>)
