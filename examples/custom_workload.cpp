/**
 * @file
 * Build a *custom* benchmark profile against the lower-level core API —
 * how a user would study a program class the SPEC2000 registry does not
 * model. Defines a synthetic "graphdb" pointer-chasing profile and a
 * "dsp" streaming profile, classifies them by single-thread L2 MPKI
 * (the paper's Section 4 methodology), and runs them together under
 * ICOUNT and RaT.
 */

#include <cstdio>
#include <memory>

#include "core/smt_core.hh"
#include "mem/hierarchy.hh"
#include "policy/factory.hh"
#include "trace/generator.hh"

using namespace rat;

namespace {

/** A pointer-chasing in-memory graph workload. */
trace::BenchmarkProfile
graphdbProfile()
{
    trace::BenchmarkProfile p;
    p.name = "graphdb";
    p.fLoad = 0.33;
    p.fStore = 0.08;
    p.fBranch = 0.16;
    p.codeBytes = 64 * 1024;
    p.pHot = 0.66;
    p.pWarm = 0.18;
    p.pStream = 0.0;
    p.coldBytes = 96ULL << 20;
    p.chasePeriod = 14; // dependent loads every ~14 instructions
    p.chaseBytes = 64ULL << 20;
    p.pEasyBranch = 0.82;
    p.pPatternBranch = 0.08;
    return p;
}

/** A streaming DSP kernel. */
trace::BenchmarkProfile
dspProfile()
{
    trace::BenchmarkProfile p;
    p.name = "dsp";
    p.fLoad = 0.30;
    p.fStore = 0.10;
    p.fBranch = 0.04;
    p.fFpAdd = 0.20;
    p.fFpMul = 0.18;
    p.fpMemShare = 0.9;
    p.codeBytes = 8 * 1024;
    p.pHot = 0.40;
    p.pWarm = 0.05;
    p.pStream = 0.53;
    p.streamBytesPerInst = 3.0;
    p.coldBytes = 64ULL << 20;
    p.pEasyBranch = 0.97;
    p.pPatternBranch = 0.02;
    return p;
}

struct RunOutput {
    double ipc[2];
    std::uint64_t raEntries[2];
};

RunOutput
run(core::PolicyKind kind, const trace::BenchmarkProfile &a,
    const trace::BenchmarkProfile &b)
{
    core::CoreConfig cfg; // Table 1 defaults
    cfg.numThreads = 2;
    cfg.policy = kind;

    mem::MemoryHierarchy memory{mem::MemConfig{}};
    trace::TraceGenerator ga(a, 11, Addr{1} << 40);
    trace::TraceGenerator gb(b, 13, Addr{2} << 40);
    auto policy = policy::makePolicy(kind);
    core::SmtCore smt(cfg, memory, *policy, {&ga, &gb});

    smt.run(20000); // warm-up
    smt.resetStats();
    memory.resetStats();
    const Cycle start = smt.cycle();
    smt.run(100000);
    const Cycle cycles = smt.cycle() - start;

    RunOutput out{};
    for (ThreadId t = 0; t < 2; ++t) {
        out.ipc[t] = static_cast<double>(
                         smt.threadStats(t).committedInsts) /
                     static_cast<double>(cycles);
        out.raEntries[t] = smt.threadStats(t).runaheadEntries;
    }
    return out;
}

/** Single-thread L2 MPKI — the paper's workload-classification metric. */
double
classify(const trace::BenchmarkProfile &p)
{
    core::CoreConfig cfg;
    cfg.numThreads = 1;
    mem::MemoryHierarchy memory{mem::MemConfig{}};
    trace::TraceGenerator gen(p, 17, Addr{1} << 40);
    auto policy = policy::makePolicy(core::PolicyKind::Icount);
    core::SmtCore smt(cfg, memory, *policy, {&gen});
    smt.run(20000);
    smt.resetStats();
    memory.resetStats();
    smt.run(80000);
    const auto committed = smt.threadStats(0).committedInsts;
    const auto misses = memory.threadStats(0).l2DemandMisses;
    return committed ? 1000.0 * static_cast<double>(misses) /
                           static_cast<double>(committed)
                     : 0.0;
}

} // namespace

int
main()
{
    const auto graphdb = graphdbProfile();
    const auto dsp = dspProfile();

    std::printf("classification (single-thread L2 MPKI, Section 4"
                " methodology):\n");
    std::printf("  graphdb: %6.1f MPKI -> %s\n", classify(graphdb),
                classify(graphdb) > 5 ? "MEM" : "ILP");
    std::printf("  dsp:     %6.1f MPKI -> %s\n\n", classify(dsp),
                classify(dsp) > 5 ? "MEM" : "ILP");

    const RunOutput icount =
        run(core::PolicyKind::Icount, graphdb, dsp);
    const RunOutput rat = run(core::PolicyKind::Rat, graphdb, dsp);

    std::printf("%-10s %12s %12s\n", "", "ICOUNT", "RaT");
    std::printf("%-10s %12.3f %12.3f\n", "graphdb", icount.ipc[0],
                rat.ipc[0]);
    std::printf("%-10s %12.3f %12.3f\n", "dsp", icount.ipc[1],
                rat.ipc[1]);
    const double t_icount = (icount.ipc[0] + icount.ipc[1]) / 2;
    const double t_rat = (rat.ipc[0] + rat.ipc[1]) / 2;
    std::printf("%-10s %12.3f %12.3f  (%+.1f%%)\n", "throughput",
                t_icount, t_rat, 100.0 * (t_rat / t_icount - 1.0));
    std::printf("\nRaT episodes: graphdb=%llu dsp=%llu\n",
                static_cast<unsigned long long>(rat.raEntries[0]),
                static_cast<unsigned long long>(rat.raEntries[1]));
    return 0;
}
