/**
 * @file
 * Compare all six scheduling techniques on a chosen multiprogrammed
 * workload — the experiment the paper's Figures 1 and 2 run at scale.
 *
 * Usage:
 *   policy_faceoff [prog1 prog2 [prog3 prog4]]
 * Default workload: art,mcf (a MEM2 pair where RaT shines).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/profile.hh"

int
main(int argc, char **argv)
{
    using namespace rat;

    std::vector<std::string> programs;
    for (int i = 1; i < argc; ++i) {
        if (!trace::isSpec2000(argv[i])) {
            std::fprintf(stderr, "unknown program '%s'; known: ",
                         argv[i]);
            for (const auto &n : trace::spec2000Names())
                std::fprintf(stderr, "%s ", n.c_str());
            std::fprintf(stderr, "\n");
            return 1;
        }
        programs.emplace_back(argv[i]);
    }
    if (programs.empty())
        programs = {"art", "mcf"};

    sim::SimConfig cfg;
    cfg.warmupCycles = 20000;
    cfg.measureCycles = 100000;
    sim::ExperimentRunner runner(cfg);

    sim::Workload w;
    w.programs = programs;
    for (const auto &p : programs)
        w.name += (w.name.empty() ? "" : ",") + p;

    const auto base = runner.baselinesFor(w);
    std::printf("workload: %s\n\n", w.name.c_str());
    std::printf("%-14s %12s %10s %14s\n", "technique", "throughput",
                "fairness", "per-thread IPC");

    const std::vector<sim::TechniqueSpec> lineup = {
        sim::icountSpec(),       sim::stallSpec(), sim::flushSpec(),
        sim::dcraSpec(),         sim::hillClimbingSpec(),
        sim::ratSpec(),
    };
    for (const auto &tech : lineup) {
        const sim::SimResult r = runner.runWorkload(w, tech);
        std::string ipcs;
        for (const auto &t : r.threads) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%s%.2f",
                          ipcs.empty() ? "" : "/", t.ipc);
            ipcs += buf;
        }
        std::printf("%-14s %12.3f %10.3f %14s\n", tech.label.c_str(),
                    sim::throughput(r), sim::fairness(r, base),
                    ipcs.c_str());
    }

    std::printf("\nsingle-thread baselines: ");
    for (const auto &[prog, ipc] : base)
        std::printf("%s=%.2f ", prog.c_str(), ipc);
    std::printf("\n");
    return 0;
}
