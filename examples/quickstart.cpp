/**
 * @file
 * Quickstart: simulate a 2-thread SMT workload (one streaming
 * memory-bound program, one ILP program) under Runahead Threads and
 * print the headline statistics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"

int
main()
{
    using namespace rat;

    // 1. Configure the paper's Table 1 processor, with RaT enabled.
    sim::SimConfig cfg;
    cfg.core.policy = core::PolicyKind::Rat;
    cfg.warmupCycles = 20000;
    cfg.measureCycles = 100000;

    // 2. Pick a workload: art (memory-bound streamer) + gzip (ILP).
    sim::Simulator simulator(cfg, {"art", "gzip"});

    // 3. Run warm-up plus the measured window.
    const sim::SimResult result = simulator.run();

    // 4. Report.
    std::printf("Runahead Threads quickstart (%llu measured cycles)\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("%-8s %10s %12s %10s %12s %12s\n", "thread", "IPC",
                "committed", "L2 MPKI", "RA episodes", "RA cycles");
    for (const sim::ThreadResult &t : result.threads) {
        std::printf("%-8s %10.3f %12llu %10.2f %12llu %12llu\n",
                    t.program.c_str(), t.ipc,
                    static_cast<unsigned long long>(
                        t.core.committedInsts),
                    t.l2Mpki,
                    static_cast<unsigned long long>(
                        t.core.runaheadEntries),
                    static_cast<unsigned long long>(
                        t.core.runaheadCycles));
    }
    std::printf("\nthroughput (Eq.1 average IPC): %.3f\n",
                result.throughputEq1());
    std::printf("total IPC:                     %.3f\n",
                result.totalIpc());

    // 5. Compare against the ICOUNT baseline in one call.
    sim::ExperimentRunner runner(cfg);
    const sim::Workload w{"art,gzip", {"art", "gzip"}};
    const double base =
        sim::throughput(runner.runWorkload(w, sim::icountSpec()));
    const double rat = result.throughputEq1();
    std::printf("\nICOUNT baseline throughput:    %.3f\n", base);
    std::printf("RaT improvement:               %+.1f%%\n",
                100.0 * (rat / base - 1.0));
    return 0;
}
