/**
 * @file
 * Register-file sizing study (the Section 6.2 / Figure 6 experiment)
 * on a user-chosen workload: sweep the renaming-register count and
 * compare FLUSH against Runahead Threads.
 *
 * Usage:
 *   regfile_explorer [prog1 prog2 ...]   (default: art,mcf)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/profile.hh"

int
main(int argc, char **argv)
{
    using namespace rat;

    std::vector<std::string> programs;
    for (int i = 1; i < argc; ++i) {
        if (!trace::isSpec2000(argv[i])) {
            std::fprintf(stderr, "unknown program '%s'\n", argv[i]);
            return 1;
        }
        programs.emplace_back(argv[i]);
    }
    if (programs.empty())
        programs = {"art", "mcf"};

    sim::Workload w;
    w.programs = programs;
    for (const auto &p : programs)
        w.name += (w.name.empty() ? "" : ",") + p;

    const unsigned sizes[] = {64, 128, 192, 256, 320};

    std::printf("workload: %s\n\n", w.name.c_str());
    std::printf("%8s %12s %12s %12s\n", "regs", "FLUSH", "RaT",
                "RaT/FLUSH");
    for (const unsigned regs : sizes) {
        sim::SimConfig cfg;
        cfg.warmupCycles = 15000;
        cfg.measureCycles = 60000;
        cfg.core.intRegs = regs;
        cfg.core.fpRegs = regs;
        sim::ExperimentRunner runner(cfg);
        const double flush =
            sim::throughput(runner.runWorkload(w, sim::flushSpec()));
        const double rat =
            sim::throughput(runner.runWorkload(w, sim::ratSpec()));
        std::printf("%8u %12.3f %12.3f %11.2fx\n", regs, flush, rat,
                    flush > 0 ? rat / flush : 0.0);
    }
    std::printf("\nPaper's claim (Section 6.2): RaT with small register"
                " files stays close to (or above)\nFLUSH with the full"
                " 320-register file on memory-bound workloads.\n");
    return 0;
}
