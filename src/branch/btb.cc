#include "branch/btb.hh"

#include "common/logging.hh"

namespace rat::branch {

Btb::Btb(const BtbConfig &config) : config_(config)
{
    if (config_.sets == 0 || config_.ways == 0)
        fatal("BTB needs non-zero sets and ways");
    entries_.resize(static_cast<std::size_t>(config_.sets) * config_.ways);
}

bool
Btb::lookup(Addr pc, Addr &target)
{
    ++lookups_;
    Entry *set = &entries_[static_cast<std::size_t>(setOf(pc)) *
                           config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            set[w].lastUse = ++useClock_;
            target = set[w].target;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    Entry *set = &entries_[static_cast<std::size_t>(setOf(pc)) *
                           config_.ways];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            set[w].target = target;
            set[w].lastUse = ++useClock_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
        } else if (victim->valid && set[w].lastUse < victim->lastUse) {
            victim = &set[w];
        }
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = ++useClock_;
}

void
Btb::resetStats()
{
    lookups_ = 0;
    misses_ = 0;
}

void
ReturnAddressStack::push(Addr ret_addr)
{
    if (stack_.size() == depth_)
        stack_.erase(stack_.begin());
    stack_.push_back(ret_addr);
}

bool
ReturnAddressStack::pop(Addr &target)
{
    if (stack_.empty())
        return false;
    target = stack_.back();
    stack_.pop_back();
    return true;
}

} // namespace rat::branch
