/**
 * @file
 * Branch target buffer and per-thread return-address stack.
 *
 * The BTB is a set-associative, LRU, thread-shared structure holding
 * branch targets. A BTB miss on a taken branch costs a short front-end
 * redirect bubble rather than a full mispredict (the decoder discovers
 * the target). The RAS supplies return targets; over/underflow makes a
 * return behave like a BTB miss.
 */

#ifndef RAT_BRANCH_BTB_HH
#define RAT_BRANCH_BTB_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rat::branch {

/** BTB geometry. */
struct BtbConfig {
    unsigned sets = 512;
    unsigned ways = 4;
};

/** Set-associative branch target buffer. */
class Btb
{
  public:
    explicit Btb(const BtbConfig &config = {});

    /**
     * Look up the target of the branch at @p pc.
     * @return true and sets @p target on hit.
     */
    bool lookup(Addr pc, Addr &target);

    /** Install/refresh the resolved target of the branch at @p pc. */
    void update(Addr pc, Addr target);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t misses() const { return misses_; }
    void resetStats();

  private:
    struct Entry {
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned setOf(Addr pc) const
    {
        return static_cast<unsigned>(((pc >> 2) ^ (pc >> 12)) %
                                     config_.sets);
    }

    BtbConfig config_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t misses_ = 0;
};

/** Fixed-depth per-thread return address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 16) : depth_(depth)
    {
        stack_.reserve(depth);
    }

    /** Push a return address (call). Oldest entry drops on overflow. */
    void push(Addr ret_addr);

    /**
     * Pop the predicted return target.
     * @return true and sets @p target when the stack was non-empty.
     */
    bool pop(Addr &target);

    /** Current depth. */
    unsigned size() const { return static_cast<unsigned>(stack_.size()); }

    /** Empty the stack (context squash). */
    void clear() { stack_.clear(); }

  private:
    unsigned depth_;
    std::vector<Addr> stack_;
};

} // namespace rat::branch

#endif // RAT_BRANCH_BTB_HH
