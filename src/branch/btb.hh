/**
 * @file
 * Branch target buffer and per-thread return-address stack.
 *
 * The BTB is a set-associative, LRU, thread-shared structure holding
 * branch targets. A BTB miss on a taken branch costs a short front-end
 * redirect bubble rather than a full mispredict (the decoder discovers
 * the target). The RAS supplies return targets; over/underflow makes a
 * return behave like a BTB miss.
 */

#ifndef RAT_BRANCH_BTB_HH
#define RAT_BRANCH_BTB_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rat::branch {

/** BTB geometry. */
struct BtbConfig {
    unsigned sets = 512;
    unsigned ways = 4;
};

/** Set-associative branch target buffer. */
class Btb
{
  public:
    explicit Btb(const BtbConfig &config = {});

    /**
     * Look up the target of the branch at @p pc.
     * @return true and sets @p target on hit.
     */
    bool lookup(Addr pc, Addr &target);

    /** Install/refresh the resolved target of the branch at @p pc. */
    void update(Addr pc, Addr target);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t misses() const { return misses_; }
    void resetStats();

    /**
     * Checkpoint enumeration (sim/checkpoint.hh): one template drives
     * both encode and decode — every entry, the LRU use clock and the
     * statistics counters. The size marker turns a geometry mismatch
     * into a decode error.
     */
    template <typename IO>
    void
    ckptVisit(IO &io)
    {
        io.size(entries_.size());
        for (Entry &e : entries_) {
            io.scalar(e.tag);
            io.scalar(e.target);
            io.scalar(e.lastUse);
            io.scalar(e.valid);
        }
        io.scalar(useClock_);
        io.scalar(lookups_);
        io.scalar(misses_);
    }

  private:
    struct Entry {
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned setOf(Addr pc) const
    {
        return static_cast<unsigned>(((pc >> 2) ^ (pc >> 12)) %
                                     config_.sets);
    }

    BtbConfig config_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t misses_ = 0;
};

/** Fixed-depth per-thread return address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 16) : depth_(depth)
    {
        stack_.reserve(depth);
    }

    /** Push a return address (call). Oldest entry drops on overflow. */
    void push(Addr ret_addr);

    /**
     * Pop the predicted return target.
     * @return true and sets @p target when the stack was non-empty.
     */
    bool pop(Addr &target);

    /** Current depth. */
    unsigned size() const { return static_cast<unsigned>(stack_.size()); }

    /** Empty the stack (context squash). */
    void clear() { stack_.clear(); }

    /**
     * Checkpoint enumeration (sim/checkpoint.hh). The stack is the
     * only variable-length structure in a checkpoint, so its length is
     * serialized explicitly and validated against the fixed depth on
     * decode (io.fail() rejects a corrupt length).
     */
    template <typename IO>
    void
    ckptVisit(IO &io)
    {
        std::uint64_t n = stack_.size();
        io.scalar(n);
        if (n > depth_) {
            io.fail();
            return;
        }
        stack_.resize(static_cast<std::size_t>(n));
        for (Addr &a : stack_)
            io.scalar(a);
    }

  private:
    unsigned depth_;
    std::vector<Addr> stack_;
};

} // namespace rat::branch

#endif // RAT_BRANCH_BTB_HH
