#include "branch/perceptron.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rat::branch {

PerceptronPredictor::PerceptronPredictor(const PerceptronConfig &config)
    : config_(config)
{
    if (config_.historyBits == 0 || config_.historyBits > 63)
        fatal("perceptron history length %u out of range [1,63]",
              config_.historyBits);
    if (config_.tableEntries == 0)
        fatal("perceptron table must have entries");
    theta_ = static_cast<int>(1.93 * config_.historyBits + 14);
    historyMaskBits_ = config_.historyBits;
    weights_.assign(static_cast<std::size_t>(config_.tableEntries) *
                        (config_.historyBits + 1),
                    0);
}

unsigned
PerceptronPredictor::indexOf(Addr pc) const
{
    // Branch PCs are word-aligned; fold high bits in to spread indices.
    const std::uint64_t h = (pc >> 2) ^ (pc >> 13);
    return static_cast<unsigned>(h % config_.tableEntries);
}

std::int32_t
PerceptronPredictor::dot(const std::int8_t *w, std::uint64_t hist) const
{
    std::int32_t y = w[0]; // bias weight
    for (unsigned i = 0; i < historyMaskBits_; ++i) {
        const bool bit = (hist >> i) & 1;
        y += bit ? w[i + 1] : -w[i + 1];
    }
    return y;
}

PerceptronOutput
PerceptronPredictor::predict(ThreadId tid, Addr pc)
{
    RAT_ASSERT(tid < kMaxThreads, "bad thread id %u", tid);
    const std::int8_t *w =
        &weights_[static_cast<std::size_t>(indexOf(pc)) *
                  (historyMaskBits_ + 1)];
    PerceptronOutput out;
    out.historyBefore = history_[tid];
    out.sum = dot(w, out.historyBefore);
    out.taken = out.sum >= 0;
    // Speculative history update with the *predicted* direction.
    history_[tid] = ((history_[tid] << 1) | (out.taken ? 1 : 0)) &
                    ((std::uint64_t{1} << historyMaskBits_) - 1);
    ++lookups_;
    return out;
}

void
PerceptronPredictor::update(ThreadId tid, Addr pc, bool taken,
                            const PerceptronOutput &out)
{
    RAT_ASSERT(tid < kMaxThreads, "bad thread id %u", tid);
    if (taken != out.taken) {
        ++mispredicts_;
        // Repair the speculative history: re-apply with the real outcome.
        history_[tid] = ((out.historyBefore << 1) | (taken ? 1 : 0)) &
                        ((std::uint64_t{1} << historyMaskBits_) - 1);
    }

    const bool needs_training =
        taken != out.taken || std::abs(out.sum) <= theta_;
    if (!needs_training)
        return;

    std::int8_t *w = &weights_[static_cast<std::size_t>(indexOf(pc)) *
                               (historyMaskBits_ + 1)];
    const int t = taken ? 1 : -1;
    const auto clamp = [this](int v) {
        return static_cast<std::int8_t>(
            std::clamp(v, -config_.weightLimit, config_.weightLimit));
    };
    w[0] = clamp(w[0] + t);
    for (unsigned i = 0; i < historyMaskBits_; ++i) {
        const bool bit = (out.historyBefore >> i) & 1;
        const int x = bit ? 1 : -1;
        w[i + 1] = clamp(w[i + 1] + t * x);
    }
}

void
PerceptronPredictor::restoreHistory(ThreadId tid, std::uint64_t history)
{
    RAT_ASSERT(tid < kMaxThreads, "bad thread id %u", tid);
    history_[tid] = history & ((std::uint64_t{1} << historyMaskBits_) - 1);
}

void
PerceptronPredictor::resetStats()
{
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace rat::branch
