/**
 * @file
 * Perceptron conditional-branch predictor (Jimenez & Lin, HPCA 2001),
 * the predictor named in the paper's Table 1 configuration.
 *
 * A shared table of perceptrons is indexed by PC; each hardware thread
 * keeps its own global history register. Predictions return the history
 * snapshot used, so the core can restore a thread's history on squash
 * (runahead exit restores the checkpointed history the same way).
 */

#ifndef RAT_BRANCH_PERCEPTRON_HH
#define RAT_BRANCH_PERCEPTRON_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rat::branch {

/** Configuration for the perceptron predictor. */
struct PerceptronConfig {
    /**
     * Number of perceptrons in the (thread-shared) table. The synthetic
     * traces spread branches over the whole code footprint, so the
     * table is sized to keep destructive aliasing low.
     */
    unsigned tableEntries = 4096;
    /** Global history length (bits), max 63. */
    unsigned historyBits = 28;
    /** Saturation magnitude of each weight. */
    int weightLimit = 127;
};

/** Outcome of one prediction, echoed back for training. */
struct PerceptronOutput {
    bool taken = false;
    /** Dot-product output (needed for the training threshold). */
    std::int32_t sum = 0;
    /** Thread's history register value before speculative update. */
    std::uint64_t historyBefore = 0;
};

/**
 * The predictor. Thread-shared weights, per-thread history.
 */
class PerceptronPredictor
{
  public:
    explicit PerceptronPredictor(const PerceptronConfig &config = {});

    /**
     * Predict the direction of the branch at @p pc for thread @p tid and
     * speculatively update that thread's history with the prediction.
     */
    PerceptronOutput predict(ThreadId tid, Addr pc);

    /**
     * Train with the resolved outcome. @p out must be the value returned
     * by the corresponding predict() call. Also repairs the thread's
     * speculative history if the prediction was wrong.
     */
    void update(ThreadId tid, Addr pc, bool taken,
                const PerceptronOutput &out);

    /** Restore a thread's history register (squash / runahead exit). */
    void restoreHistory(ThreadId tid, std::uint64_t history);

    /** Current history register of a thread. */
    std::uint64_t history(ThreadId tid) const { return history_[tid]; }

    /** Training threshold theta = 1.93 * h + 14 (from the paper). */
    int theta() const { return theta_; }

    // --- statistics ------------------------------------------------------
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    /** Reset statistics only. */
    void resetStats();

    /**
     * Checkpoint enumeration (sim/checkpoint.hh): one template drives
     * both encode and decode — weight table, per-thread histories and
     * the statistics counters. The size marker turns a table-geometry
     * mismatch into a decode error.
     */
    template <typename IO>
    void
    ckptVisit(IO &io)
    {
        io.size(weights_.size());
        for (std::int8_t &w : weights_)
            io.scalar(w);
        for (std::uint64_t &h : history_)
            io.scalar(h);
        io.scalar(lookups_);
        io.scalar(mispredicts_);
    }

  private:
    std::int32_t dot(const std::int8_t *w, std::uint64_t hist) const;
    unsigned indexOf(Addr pc) const;

    PerceptronConfig config_;
    int theta_;
    unsigned historyMaskBits_;
    /** tableEntries x (historyBits + 1 bias) weights, row-major. */
    std::vector<std::int8_t> weights_;
    std::array<std::uint64_t, kMaxThreads> history_{};

    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace rat::branch

#endif // RAT_BRANCH_PERCEPTRON_HH
