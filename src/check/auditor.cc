#include "check/auditor.hh"

#include <sstream>
#include <vector>

#include "core/smt_core.hh"
#include "runahead/racache.hh"
#include "trace/microop.hh"

namespace rat::check {

namespace {

void
fail(AuditReport &report, Cycle cycle, int tid, const char *structure,
     std::string detail)
{
    report.failures.push_back(
        {cycle, tid, structure, std::move(detail)});
}

const char *
statusName(core::InstStatus s)
{
    switch (s) {
      case core::InstStatus::InFetchQueue: return "InFetchQueue";
      case core::InstStatus::InQueue: return "InQueue";
      case core::InstStatus::Executing: return "Executing";
      case core::InstStatus::Complete: return "Complete";
      case core::InstStatus::Retired: return "Retired";
    }
    return "?";
}

} // namespace

std::string
AuditReport::format() const
{
    std::ostringstream os;
    for (const AuditFailure &f : failures) {
        os << "cycle " << f.cycle << " tid " << f.tid << " ["
           << f.structure << "] " << f.detail << "\n";
    }
    return os.str();
}

void
Auditor::auditRob(const core::SmtCore &core, AuditReport &report)
{
    const Cycle now = core.cycle_;
    unsigned total = 0;
    for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
        unsigned walked = 0;
        std::uint64_t prev_uid = 0;
        for (const core::DynInst *inst = core.rob_.head(tid); inst;
             inst = inst->seqNext) {
            ++walked;
            if (inst->tid != tid) {
                std::ostringstream os;
                os << "entry uid " << inst->uid << " belongs to tid "
                   << int{inst->tid} << " but sits on tid " << int{tid}
                   << "'s list";
                fail(report, now, tid, "rob", os.str());
                break;
            }
            if (inst->uid <= prev_uid) {
                std::ostringstream os;
                os << "age order violated: uid " << inst->uid
                   << " follows uid " << prev_uid;
                fail(report, now, tid, "rob", os.str());
                break;
            }
            prev_uid = inst->uid;
            if (inst->status == core::InstStatus::InFetchQueue ||
                inst->status == core::InstStatus::Retired) {
                std::ostringstream os;
                os << "entry uid " << inst->uid << " has status "
                   << statusName(inst->status);
                fail(report, now, tid, "rob", os.str());
            }
        }
        if (walked != core.rob_.threadCount(tid)) {
            std::ostringstream os;
            os << "list walk found " << walked
               << " entries but threadCount says "
               << core.rob_.threadCount(tid);
            fail(report, now, tid, "rob", os.str());
        }
        total += walked;
    }
    if (total != core.rob_.used() ||
        core.rob_.used() > core.rob_.capacity()) {
        std::ostringstream os;
        os << "per-thread lists hold " << total << " entries, used() says "
           << core.rob_.used() << " (capacity " << core.rob_.capacity()
           << ")";
        fail(report, now, -1, "rob", os.str());
    }
}

void
Auditor::auditOccupancy(const core::SmtCore &core, AuditReport &report)
{
    const Cycle now = core.cycle_;

    // Recompute every per-thread tally from the instruction lists.
    unsigned iq_by_thread[kMaxThreads][core::kNumIqClasses] = {};
    for (unsigned cls = 0; cls < core::kNumIqClasses; ++cls) {
        for (const core::DynInst *inst : core.iqs_[cls].entries())
            ++iq_by_thread[inst->tid][cls];
    }

    std::size_t live_listed = 0;
    for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
        const auto &t = core.threads_[tid];
        unsigned in_queues = 0;
        for (unsigned cls = 0; cls < core::kNumIqClasses; ++cls) {
            in_queues += t.iqCount[cls];
            if (t.iqCount[cls] != iq_by_thread[tid][cls]) {
                std::ostringstream os;
                os << "iqCount[" << cls << "] = " << t.iqCount[cls]
                   << " but queue " << cls << " holds "
                   << iq_by_thread[tid][cls] << " of this thread's insts";
                fail(report, now, tid, "occupancy", os.str());
            }
        }
        if (t.icount != t.fetchQueue.size() + in_queues) {
            std::ostringstream os;
            os << "icount = " << t.icount << " but fetch queue ("
               << t.fetchQueue.size() << ") + issue queues (" << in_queues
               << ") = " << t.fetchQueue.size() + in_queues;
            fail(report, now, tid, "occupancy", os.str());
        }

        unsigned l2_counted = 0;
        for (const core::DynInst *inst = t.fetchQueue.head(); inst;
             inst = inst->seqNext) {
            ++live_listed;
            if (inst->countedL2Miss)
                ++l2_counted;
        }
        for (const core::DynInst *inst = core.rob_.head(tid); inst;
             inst = inst->seqNext) {
            ++live_listed;
            if (inst->countedL2Miss)
                ++l2_counted;
        }
        if (t.pendingL2Misses != l2_counted) {
            std::ostringstream os;
            os << "pendingL2Misses = " << t.pendingL2Misses << " but "
               << l2_counted << " live insts are flagged countedL2Miss";
            fail(report, now, tid, "occupancy", os.str());
        }
    }

    // Every live pooled instruction is on exactly one thread list
    // (fetch queue before rename, ROB after); a mismatch means a leak
    // or a double-listing.
    if (live_listed != core.pool_.liveCount()) {
        std::ostringstream os;
        os << "thread lists carry " << live_listed
           << " insts but the pool has " << core.pool_.liveCount()
           << " live";
        fail(report, now, -1, "pool", os.str());
    }
}

void
Auditor::auditRegisters(const core::SmtCore &core, AuditReport &report)
{
    const Cycle now = core.cycle_;

    for (int fp = 0; fp < 2; ++fp) {
        const core::PhysRegFile &file =
            fp ? core.fpRegs_ : core.intRegs_;
        const char *cls = fp ? "fp" : "int";

        unsigned held = 0;
        for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
            held += fp ? core.threads_[tid].fpRegsHeld
                       : core.threads_[tid].intRegsHeld;
        }
        if (held != file.allocatedCount()) {
            std::ostringstream os;
            os << cls << " regsHeld over threads = " << held
               << " but the file has " << file.allocatedCount()
               << " allocated of " << file.size();
            fail(report, now, -1, "regfile", os.str());
        }

        // No duplicate renaming register across the per-thread maps of
        // one class, and no map entry naming a free register.
        std::vector<int> owner(file.size(), -1);
        for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
            const core::RenameMap &map =
                fp ? core.threads_[tid].fpMap : core.threads_[tid].intMap;
            for (ArchReg a = 0; a < kNumArchRegs; ++a) {
                const core::MapEntry e = map.get(a);
                if (!core::isPhysEntry(e))
                    continue;
                if (e >= file.size() || !file.isAllocated(e)) {
                    std::ostringstream os;
                    os << cls << " map[" << unsigned{a}
                       << "] names register " << e
                       << " which is not allocated (use-after-free)";
                    fail(report, now, tid, "map", os.str());
                    continue;
                }
                if (owner[e] != -1) {
                    std::ostringstream os;
                    os << cls << " register " << e
                       << " mapped twice (also by tid " << owner[e] << ")";
                    fail(report, now, tid, "map", os.str());
                }
                owner[e] = tid;
            }
        }
    }

    // Live instructions must reference only allocated registers: the
    // held destination, and the tag of every still-waiting source.
    for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
        for (const core::DynInst *inst = core.rob_.head(tid); inst;
             inst = inst->seqNext) {
            if (inst->hasDstReg) {
                const core::PhysRegFile &file =
                    inst->dstIsFp ? core.fpRegs_ : core.intRegs_;
                if (inst->dstPhys >= file.size() ||
                    !file.isAllocated(inst->dstPhys)) {
                    std::ostringstream os;
                    os << "uid " << inst->uid << " holds dst register "
                       << inst->dstPhys
                       << " which is not allocated (use-after-free)";
                    fail(report, now, tid, "regfile", os.str());
                }
            }
            // Source tags matter only while the instruction still sits
            // in an issue queue: a folded (runahead-INV) instruction
            // keeps stale Waiting srcStates — the wake path skips
            // non-InQueue waiters — after its producer's register was
            // legally freed early (Section 3.3 register control).
            if (inst->status != core::InstStatus::InQueue)
                continue;
            for (unsigned s = 0; s < inst->numSrcs; ++s) {
                if (inst->srcState[s] != core::SrcState::Waiting)
                    continue;
                const core::PhysRegFile &file =
                    inst->srcIsFp[s] ? core.fpRegs_ : core.intRegs_;
                if (inst->srcTag[s] >= file.size() ||
                    !file.isAllocated(inst->srcTag[s])) {
                    std::ostringstream os;
                    os << "uid " << inst->uid << " src " << s
                       << " waits on register " << inst->srcTag[s]
                       << " which is not allocated (use-after-free)";
                    fail(report, now, tid, "regfile", os.str());
                }
            }
        }
    }
}

void
Auditor::auditLsq(const core::SmtCore &core, AuditReport &report)
{
    const Cycle now = core.cycle_;
    unsigned total = 0;
    for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
        unsigned walked = 0;
        std::uint64_t prev_uid = 0;
        std::vector<const core::DynInst *> stores;
        bool chain_ok = true;
        for (const core::DynInst *inst = core.lsq_.head(tid); inst;
             inst = inst->lsqNext) {
            ++walked;
            if (!inst->inLsq || inst->tid != tid) {
                std::ostringstream os;
                os << "chain entry uid " << inst->uid << " has inLsq="
                   << inst->inLsq << " tid=" << int{inst->tid};
                fail(report, now, tid, "lsq", os.str());
                chain_ok = false;
                break;
            }
            if (inst->uid <= prev_uid) {
                std::ostringstream os;
                os << "program order violated: uid " << inst->uid
                   << " follows uid " << prev_uid;
                fail(report, now, tid, "lsq", os.str());
                chain_ok = false;
                break;
            }
            prev_uid = inst->uid;
            if (trace::isStoreOp(inst->op.op))
                stores.push_back(inst);
        }
        if (!chain_ok)
            continue;
        if (walked != core.lsq_.threadCount(tid)) {
            std::ostringstream os;
            os << "chain walk found " << walked
               << " entries but threadCount says "
               << core.lsq_.threadCount(tid);
            fail(report, now, tid, "lsq", os.str());
        }
        total += walked;

        // The stores-only chain must be exactly the store subsequence
        // of the main chain, in the same order.
        std::size_t i = 0;
        const core::DynInst *s = core.lsq_.storeHead(tid);
        for (; s && i < stores.size() && s == stores[i];
             s = s->lsqStoreNext, ++i) {
        }
        if (s || i != stores.size()) {
            std::ostringstream os;
            os << "stores chain diverges from the store subsequence at "
               << "position " << i << " (main chain has " << stores.size()
               << " stores)";
            fail(report, now, tid, "lsq", os.str());
        }
        if (core.lsq_.storeCount(tid) != stores.size()) {
            std::ostringstream os;
            os << "storeCount = " << core.lsq_.storeCount(tid)
               << " but the chain holds " << stores.size() << " stores";
            fail(report, now, tid, "lsq", os.str());
        }
    }
    if (total != core.lsq_.used() ||
        core.lsq_.used() > core.lsq_.capacity()) {
        std::ostringstream os;
        os << "per-thread chains hold " << total << " entries, used() says "
           << core.lsq_.used() << " (capacity " << core.lsq_.capacity()
           << ")";
        fail(report, now, -1, "lsq", os.str());
    }
}

void
Auditor::auditIssueQueues(const core::SmtCore &core, AuditReport &report)
{
    const Cycle now = core.cycle_;
    for (unsigned cls = 0; cls < core::kNumIqClasses; ++cls) {
        const auto &entries = core.iqs_[cls].entries();
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(entries.size()); ++i) {
            const core::DynInst *inst = entries[i];
            if (inst->iqPos != i) {
                std::ostringstream os;
                os << "queue " << cls << " slot " << i << " holds uid "
                   << inst->uid << " whose iqPos back-pointer says "
                   << inst->iqPos;
                fail(report, now, inst->tid, "iq", os.str());
            }
            if (inst->status != core::InstStatus::InQueue) {
                std::ostringstream os;
                os << "queue " << cls << " slot " << i << " holds uid "
                   << inst->uid << " with status "
                   << statusName(inst->status);
                fail(report, now, inst->tid, "iq", os.str());
            }
            if (static_cast<unsigned>(
                    core::iqClassOf(inst->op.op)) != cls) {
                std::ostringstream os;
                os << "queue " << cls << " slot " << i << " holds uid "
                   << inst->uid << " of the wrong op class";
                fail(report, now, inst->tid, "iq", os.str());
            }

            // schedLinkMask summary bits must mirror the actual links.
            const bool any_waiter =
                inst->onWaiterList[0] || inst->onWaiterList[1] ||
                inst->onWaiterList[2] || inst->onWaiterList[3];
            const bool mask_waiter =
                (inst->schedLinkMask & core::DynInst::kWaiterLinks) != 0;
            const bool mask_dep =
                (inst->schedLinkMask & core::DynInst::kDepLink) != 0;
            const bool mask_head =
                (inst->schedLinkMask & core::DynInst::kDepHead) != 0;
            if (mask_waiter != any_waiter || mask_dep != inst->onDepList ||
                mask_head != (inst->depHead != nullptr)) {
                std::ostringstream os;
                os << "uid " << inst->uid << " schedLinkMask "
                   << unsigned{inst->schedLinkMask}
                   << " disagrees with its links (waiter=" << any_waiter
                   << " dep=" << inst->onDepList
                   << " head=" << (inst->depHead != nullptr) << ")";
                fail(report, now, inst->tid, "sched", os.str());
            }
        }
    }
}

void
Auditor::auditMshrs(const core::SmtCore &core, AuditReport &report)
{
    const Cycle now = core.cycle_;
    const struct {
        const char *name;
        const mem::MshrFile &file;
    } files[] = {
        {"L1I", core.mem_.l1iMshrs()},
        {"L1D", core.mem_.l1dMshrs()},
        {"L2", core.mem_.l2Mshrs()},
    };
    for (const auto &f : files) {
        std::string why;
        if (!f.file.auditIndexConsistent(&why))
            fail(report, now, -1, "mshr",
                 std::string(f.name) + ": " + why);
    }
}

void
Auditor::auditRunahead(const core::SmtCore &core, AuditReport &report)
{
    const Cycle now = core.cycle_;
    for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
        const auto v = core.raEngine_.episodeView(tid);
        if (v.drainOnly && !v.active) {
            fail(report, now, tid, "runahead",
                 "episode marked drainOnly while inactive");
        }
        if (v.active && v.resumeSeq > core.threads_[tid].nextSeq) {
            std::ostringstream os;
            os << "episode resumeSeq " << v.resumeSeq
               << " is ahead of the fetch cursor "
               << core.threads_[tid].nextSeq;
            fail(report, now, tid, "runahead", os.str());
        }
        if (!v.active) {
            // Outside an episode nothing speculative may survive: no
            // live runahead-flagged instruction, and an empty runahead
            // cache (cleared at exit).
            unsigned speculative = 0;
            for (const core::DynInst *inst =
                     core.threads_[tid].fetchQueue.head();
                 inst; inst = inst->seqNext) {
                if (inst->runahead)
                    ++speculative;
            }
            for (const core::DynInst *inst = core.rob_.head(tid); inst;
                 inst = inst->seqNext) {
                if (inst->runahead)
                    ++speculative;
            }
            if (speculative) {
                std::ostringstream os;
                os << speculative << " runahead-flagged insts survive "
                   << "outside an episode";
                fail(report, now, tid, "runahead", os.str());
            }
            if (core.raEngine_.cache().occupancy(tid)) {
                std::ostringstream os;
                os << "runahead cache holds "
                   << core.raEngine_.cache().occupancy(tid)
                   << " lines outside an episode";
                fail(report, now, tid, "runahead", os.str());
            }
        }
    }
}

AuditReport
Auditor::audit(const core::SmtCore &core)
{
    AuditReport report;
    auditRob(core, report);
    auditOccupancy(core, report);
    auditRegisters(core, report);
    auditLsq(core, report);
    auditIssueQueues(core, report);
    auditMshrs(core, report);
    auditRunahead(core, report);
    return report;
}

} // namespace rat::check
