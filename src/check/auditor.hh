/**
 * @file
 * Runtime invariant auditor: the read-only cross-checker behind
 * `--check-level`. At a tick boundary every redundant encoding the
 * core maintains for speed — occupancy counters, free-list counts,
 * intrusive list links, back-pointer indices, the MSHR line index,
 * the engine's episode state — must agree with the ground truth it
 * summarizes. The auditor walks the ground truth (the ROB, the rename
 * maps, the pipeline lists) and recomputes each summary; any mismatch
 * becomes a structured AuditFailure naming the cycle, thread and
 * structure, instead of a silently wrong number thousands of cycles
 * later.
 *
 * The audit never mutates simulator state (it is `const` all the way
 * down and calls no lazily-mutating accessors), so enabling it cannot
 * perturb results — checked runs are bit-identical to unchecked runs.
 */

#ifndef RAT_CHECK_AUDITOR_HH
#define RAT_CHECK_AUDITOR_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace rat::core {
class SmtCore;
}

namespace rat::check {

/** One invariant violation, localized for a bug report. */
struct AuditFailure {
    /** Cycle the audit ran at. */
    Cycle cycle = 0;
    /** Offending thread, or -1 for core-wide structures. */
    int tid = -1;
    /**
     * Structure tag, one of: "rob", "occupancy", "regfile", "map",
     * "lsq", "iq", "mshr", "runahead", "pool", "sched".
     */
    std::string structure;
    /** Human-readable diagnostic with the mismatching values. */
    std::string detail;
};

/** The result of one audit pass. */
struct AuditReport {
    std::vector<AuditFailure> failures;

    bool ok() const { return failures.empty(); }
    /** All failures formatted one per line. */
    std::string format() const;
};

/**
 * The auditor itself is stateless; it is a class (not free functions)
 * only to be nameable as a friend of the structures it inspects.
 */
class Auditor
{
  public:
    /** Run every invariant check against @p core's current state. */
    static AuditReport audit(const core::SmtCore &core);

  private:
    static void auditRob(const core::SmtCore &core, AuditReport &report);
    static void auditOccupancy(const core::SmtCore &core,
                               AuditReport &report);
    static void auditRegisters(const core::SmtCore &core,
                               AuditReport &report);
    static void auditLsq(const core::SmtCore &core, AuditReport &report);
    static void auditIssueQueues(const core::SmtCore &core,
                                 AuditReport &report);
    static void auditMshrs(const core::SmtCore &core, AuditReport &report);
    static void auditRunahead(const core::SmtCore &core,
                              AuditReport &report);
};

} // namespace rat::check

#endif // RAT_CHECK_AUDITOR_HH
