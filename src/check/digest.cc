#include "check/digest.hh"

#include <sstream>

#include "check/fnv.hh"
#include "core/smt_core.hh"
#include "runahead/racache.hh"

namespace rat::check {

namespace {

/**
 * Sink adapters: the one enumeration below feeds either the hasher or
 * the textual dump, so the digest and the bisector's state dumps can
 * never drift apart.
 */
struct HashSink {
    Fnv64 h;
    void field(const char *, std::uint64_t v) { h.u64(v); }
    void section(const char *) {}
};

struct TextSink {
    std::ostringstream os;
    void
    field(const char *name, std::uint64_t v)
    {
        os << "  " << name << " = " << v << "\n";
    }
    void section(const char *name) { os << name << ":\n"; }
};

/**
 * One live instruction's mode-invariant fields. Deliberately omitted:
 * uid and depStoreUid (allocation-order artifacts), iqPos (queue slot
 * assignment), physical register numbers (free-list order), scheduler
 * links (event-mode only).
 */
template <typename Sink>
void
visitInst(Sink &sink, const core::DynInst &inst)
{
    sink.field("seq", inst.op.seq);
    sink.field("op", static_cast<std::uint64_t>(inst.op.op));
    sink.field("status", static_cast<std::uint64_t>(inst.status));
    sink.field("inv", inst.inv);
    sink.field("runahead", inst.runahead);
    sink.field("folded", inst.folded);
    sink.field("renamed", inst.renamed);
    sink.field("hasDstReg", inst.hasDstReg);
    sink.field("memIssued", inst.memIssued);
    sink.field("longLatency", inst.longLatency);
    sink.field("forwarded", inst.forwarded);
    sink.field("countedL2Miss", inst.countedL2Miss);
    sink.field("inLsq", inst.inLsq);
    sink.field("predTaken", inst.predTaken);
    sink.field("mispredicted", inst.mispredicted);
    sink.field("completeAt", inst.completeAt);
    sink.field("numSrcs", inst.numSrcs);
    for (unsigned s = 0; s < inst.numSrcs; ++s)
        sink.field("srcState",
                   static_cast<std::uint64_t>(inst.srcState[s]));
}

template <typename Sink>
void
visitMap(Sink &sink, const core::RenameMap &map,
         const core::PhysRegFile &file)
{
    for (ArchReg a = 0; a < kNumArchRegs; ++a) {
        const core::MapEntry e = map.get(a);
        // Entry kind + producer readiness, never the register number.
        if (e == core::kMapArch) {
            sink.field("map.arch", 0);
        } else if (e == core::kMapInv) {
            sink.field("map.inv", 1);
        } else {
            sink.field("map.phys",
                       2 + (file.isAllocated(e) && file.isReady(e)));
        }
    }
}

} // namespace

template <typename Sink>
void
StateHasher::visit(Sink &sink, const core::SmtCore &core)
{
    const Cycle now = core.cycle_;

    sink.section("core");
    sink.field("robUsed", core.rob_.used());
    sink.field("lsqUsed", core.lsq_.used());
    for (unsigned cls = 0; cls < core::kNumIqClasses; ++cls)
        sink.field("iqSize", core.iqs_[cls].size());
    sink.field("intFree", core.intRegs_.freeCount());
    sink.field("intAllocated", core.intRegs_.allocatedCount());
    sink.field("fpFree", core.fpRegs_.freeCount());
    sink.field("fpAllocated", core.fpRegs_.allocatedCount());

    for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
        const auto &t = core.threads_[tid];
        sink.section("thread");
        sink.field("nextSeq", t.nextSeq);
        sink.field("fetchBlockedUntil", t.fetchBlockedUntil);
        sink.field("waitingBranch", t.waitingBranch);
        sink.field("lastFetchLine", t.lastFetchLine);
        sink.field("icount", t.icount);
        for (unsigned cls = 0; cls < core::kNumIqClasses; ++cls)
            sink.field("iqCount", t.iqCount[cls]);
        sink.field("intRegsHeld", t.intRegsHeld);
        sink.field("fpRegsHeld", t.fpRegsHeld);
        sink.field("pendingL2Misses", t.pendingL2Misses);
        sink.field("lastFpIssue", t.lastFpIssue);
        sink.field("lsqCount", core.lsq_.threadCount(tid));
        sink.field("lsqStores", core.lsq_.storeCount(tid));
        sink.field("predictorHistory", core.predictor_.history(tid));

        sink.section("thread.stats");
        const core::ThreadStats &st = core.stats_[tid];
        sink.field("committed", st.committedInsts);
        sink.field("executed", st.executedInsts);
        sink.field("fetched", st.fetchedInsts);
        sink.field("pseudoRetired", st.pseudoRetired);
        sink.field("invalidInsts", st.invalidInsts);
        sink.field("runaheadEntries", st.runaheadEntries);
        sink.field("uselessEpisodes", st.uselessRunaheadEpisodes);
        sink.field("branches", st.branches);
        sink.field("branchMispredicts", st.branchMispredicts);
        sink.field("squashed", st.squashedInsts);
        // normalCycles/runaheadCycles and the reg-cycle integrals are
        // deliberately absent: skipTo() integrates them span-at-once
        // before the boundary loop, so their value at an interior
        // boundary is a host-mode artifact. Any real divergence they
        // could witness stems from digested instantaneous state.

        sink.section("thread.mem");
        const mem::ThreadMemStats &ms = core.mem_.threadStats(tid);
        sink.field("loads", ms.loads);
        sink.field("stores", ms.stores);
        sink.field("l1dMisses", ms.l1dMisses);
        sink.field("l2DemandMisses", ms.l2DemandMisses);
        sink.field("ifetchL1Misses", ms.ifetchL1Misses);
        sink.field("ifetchL2Misses", ms.ifetchL2Misses);
        sink.field("ifetchPrefetches", ms.ifetchPrefetches);
        sink.field("raMemPrefetches", ms.raMemPrefetches);
        sink.field("raL2Prefetches", ms.raL2Prefetches);

        sink.section("thread.maps");
        visitMap(sink, t.intMap, core.intRegs_);
        visitMap(sink, t.fpMap, core.fpRegs_);

        sink.section("thread.fetchq");
        for (const core::DynInst *inst = t.fetchQueue.head(); inst;
             inst = inst->seqNext)
            visitInst(sink, *inst);
        sink.section("thread.rob");
        for (const core::DynInst *inst = core.rob_.head(tid); inst;
             inst = inst->seqNext)
            visitInst(sink, *inst);

        sink.section("thread.runahead");
        const auto v = core.raEngine_.episodeView(tid);
        sink.field("active", v.active);
        sink.field("drainOnly", v.drainOnly);
        sink.field("pendingDrain", v.pendingDrain);
        sink.field("exitAt", v.active ? v.exitAt : 0);
        sink.field("fillAt", v.active ? v.fillAt : 0);
        sink.field("resumeSeq", v.active ? v.resumeSeq : 0);
        sink.field("entryPc", v.active ? v.entryPc : 0);
        sink.field("histCheckpoint", v.active ? v.histCheckpoint : 0);
        sink.field("prefetchSnapshot", v.active ? v.prefetchSnapshot : 0);
        sink.field("suppressedLoads", v.suppressedLoads);
        sink.field("suppressedHash", v.suppressedHash);
        sink.field("raCacheLines", core.raEngine_.cache().occupancy(tid));
    }

    sink.section("engine.stats");
    const runahead::EngineStats &es = core.raEngine_.stats();
    sink.field("episodes", es.episodes);
    sink.field("uselessEpisodes", es.uselessEpisodes);
    sink.field("suppressedEntries", es.suppressedEntries);
    sink.field("drainEpisodes", es.drainEpisodes);
    sink.field("cappedExits", es.cappedExits);
    sink.field("executedInRunahead", es.executedInRunahead);

    sink.section("mem");
    const struct {
        const char *occ;
        const char *fill;
        const mem::MshrFile &file;
    } mshrs[] = {
        {"l1iMshrOcc", "l1iMshrFill", core.mem_.l1iMshrs()},
        {"l1dMshrOcc", "l1dMshrFill", core.mem_.l1dMshrs()},
        {"l2MshrOcc", "l2MshrFill", core.mem_.l2Mshrs()},
    };
    for (const auto &m : mshrs) {
        sink.field(m.occ, m.file.occupancy(now));
        sink.field(m.fill, m.file.earliestCompletion(now));
    }
    sink.field("l1iHits", core.mem_.l1i().hits());
    sink.field("l1iMisses", core.mem_.l1i().misses());
    sink.field("l1iEvictions", core.mem_.l1i().evictions());
    sink.field("l1dHits", core.mem_.l1d().hits());
    sink.field("l1dMisses", core.mem_.l1d().misses());
    sink.field("l1dEvictions", core.mem_.l1d().evictions());
    sink.field("l2Hits", core.mem_.l2().hits());
    sink.field("l2Misses", core.mem_.l2().misses());
    sink.field("l2Evictions", core.mem_.l2().evictions());
}

std::uint64_t
StateHasher::digest(const core::SmtCore &core)
{
    HashSink sink;
    visit(sink, core);
    return sink.h.value();
}

std::string
StateHasher::describe(const core::SmtCore &core)
{
    TextSink sink;
    visit(sink, core);
    return sink.os.str();
}

void
DigestCollector::sampleAt(const core::SmtCore &core)
{
    obs::DigestSample s;
    s.cycle = nextAt_;
    s.digest = StateHasher::digest(core);
    track_.samples.push_back(s);
    if (nextAt_ == captureAt_)
        capturedDump_ = StateHasher::describe(core);
    nextAt_ += window_;
}

} // namespace rat::check
