/**
 * @file
 * Deterministic state digests: an incremental FNV-1a hash over a
 * canonical enumeration of the core's architectural and key
 * microarchitectural state, sampled every `--digest-window` cycles
 * into the obs telemetry stream.
 *
 * The enumeration is *mode-invariant by construction*: it visits only
 * state that is bit-identical across the host-side implementation grid
 * (cycle-skip on/off x event/broadcast scheduler) at matched window
 * boundaries. That means no host-clock values (a skipped span samples
 * with the clock still at the span start), no physical-register
 * *numbers* (free-list order may legally differ between schedulers —
 * the maps are digested by entry kind and producer readiness instead),
 * no per-cycle integrals (skipTo integrates them span-at-once), and no
 * issue-queue slot indices. Two runs of the same configuration in any
 * mode must therefore produce byte-identical digest streams — and
 * `ratsim verify` bisects the first window where they do not.
 */

#ifndef RAT_CHECK_DIGEST_HH
#define RAT_CHECK_DIGEST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "obs/sampler.hh"

namespace rat::core {
class SmtCore;
}

namespace rat::check {

/**
 * The canonical state enumeration. A class (not free functions) so it
 * can be a friend of SmtCore; stateless.
 */
class StateHasher
{
  public:
    /** FNV-1a digest of the core's current canonical state. */
    static std::uint64_t digest(const core::SmtCore &core);

    /**
     * The same enumeration rendered as labelled text, one field per
     * line — the state dump `ratsim verify` prints for both sides of
     * the first divergent cycle.
     */
    static std::string describe(const core::SmtCore &core);

  private:
    /**
     * The single enumeration both entry points share (friendship with
     * SmtCore covers member templates). Instantiated only in
     * digest.cc, once per sink type.
     */
    template <typename Sink>
    static void visit(Sink &sink, const core::SmtCore &core);
};

/**
 * Collects a digest stream during the measured window. Driven by the
 * core exactly like the telemetry WindowSampler: `nextAt()` names the
 * next window-end boundary, `sampleAt()` records the digest when the
 * clock reaches (or skips across) it.
 */
class DigestCollector
{
  public:
    explicit DigestCollector(Cycle window) : window_(window) {}

    /** Arm at the start cycle of the measured window. */
    void
    reset(Cycle start)
    {
        nextAt_ = window_ ? start + window_ : kNoCycle;
        track_ = obs::DigestTrack{};
        track_.window = window_;
        capturedDump_.clear();
    }

    /** The next boundary at which a digest is due (kNoCycle if off). */
    Cycle nextAt() const { return nextAt_; }

    /** Digest the core for the window ending at nextAt(). */
    void sampleAt(const core::SmtCore &core);

    /**
     * Also capture a full state dump at the boundary @p cycle (the
     * bisector's final pass). kNoCycle disables.
     */
    void setCaptureAt(Cycle cycle) { captureAt_ = cycle; }
    const std::string &capturedDump() const { return capturedDump_; }

    /** The accumulated digest stream (copied into SimResult). */
    const obs::DigestTrack &track() const { return track_; }

  private:
    Cycle window_;
    Cycle nextAt_ = kNoCycle;
    Cycle captureAt_ = kNoCycle;
    obs::DigestTrack track_;
    std::string capturedDump_;
};

} // namespace rat::check

#endif // RAT_CHECK_DIGEST_HH
