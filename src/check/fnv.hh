/**
 * @file
 * Incremental 64-bit FNV-1a hasher for the self-checking subsystem's
 * state digests. The same constants as report::fnv1a64 (the cache-key
 * hash), but fed field-by-field: every value is decomposed into its 8
 * little-endian bytes, so a digest is a pure function of the visited
 * value sequence — independent of struct padding, host endianness and
 * compiler layout.
 */

#ifndef RAT_CHECK_FNV_HH
#define RAT_CHECK_FNV_HH

#include <cstdint>

namespace rat::check {

class Fnv64
{
  public:
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;

    /** Fold one 64-bit value, little-endian byte by byte. */
    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xFF;
            hash_ *= kPrime;
        }
    }

    void b(bool v) { u64(v ? 1 : 0); }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = kOffsetBasis;
};

} // namespace rat::check

#endif // RAT_CHECK_FNV_HH
