#include "check/mutate.hh"

#include "core/smt_core.hh"

namespace rat::check {

const char *
Mutator::kindName(Kind kind)
{
    switch (kind) {
      case Kind::RobOrder: return "rob-order";
      case Kind::Icount: return "icount";
      case Kind::RegsHeld: return "regs-held";
      case Kind::MapFreeReg: return "map-free-reg";
      case Kind::LsqChain: return "lsq-chain";
      case Kind::IqPos: return "iq-pos";
      case Kind::MshrMin: return "mshr-min";
      case Kind::RunaheadFlag: return "runahead-flag";
      case Kind::PoolLeak: return "pool-leak";
    }
    return "?";
}

const char *
Mutator::structureOf(Kind kind)
{
    switch (kind) {
      case Kind::RobOrder: return "rob";
      case Kind::Icount: return "occupancy";
      case Kind::RegsHeld: return "regfile";
      case Kind::MapFreeReg: return "map";
      case Kind::LsqChain: return "lsq";
      case Kind::IqPos: return "iq";
      case Kind::MshrMin: return "mshr";
      case Kind::RunaheadFlag: return "runahead";
      case Kind::PoolLeak: return "pool";
    }
    return "?";
}

bool
Mutator::apply(core::SmtCore &core, Kind kind)
{
    switch (kind) {
      case Kind::RobOrder:
        for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
            core::DynInst *head = core.rob_.head(tid);
            if (head && head->seqNext) {
                head->uid = head->seqNext->uid + 1;
                return true;
            }
        }
        return false;

      case Kind::Icount:
        core.threads_[0].icount += 1;
        return true;

      case Kind::RegsHeld:
        core.threads_[0].intRegsHeld += 1;
        return true;

      case Kind::MapFreeReg:
        for (PhysReg r = 0; r < core.intRegs_.size(); ++r) {
            if (!core.intRegs_.isAllocated(r)) {
                core.threads_[0].intMap.set(
                    0, static_cast<core::MapEntry>(r));
                return true;
            }
        }
        return false;

      case Kind::LsqChain:
        for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
            if (core::DynInst *head = core.lsq_.head(tid)) {
                head->inLsq = false;
                return true;
            }
        }
        return false;

      case Kind::IqPos:
        for (auto &iq : core.iqs_) {
            if (!iq.entries().empty()) {
                iq.entries().front()->iqPos += 1;
                return true;
            }
        }
        return false;

      case Kind::MshrMin: {
        mem::MshrFile &file = core.mem_.l1dMshrs_;
        if (file.active_.empty())
            file.minComplete_ = 12345;
        else
            file.minComplete_ += 1;
        return true;
      }

      case Kind::RunaheadFlag:
        for (ThreadId tid = 0; tid < core.config_.numThreads; ++tid) {
            if (core.raEngine_.inRunahead(tid))
                continue;
            if (core::DynInst *head = core.rob_.head(tid)) {
                head->runahead = true;
                return true;
            }
        }
        return false;

      case Kind::PoolLeak:
        core.pool_.alloc(0);
        return true;
    }
    return false;
}

} // namespace rat::check
