/**
 * @file
 * Seeded fault injection for the self-checking subsystem's own tests:
 * each Kind deliberately corrupts one redundant encoding the auditor
 * cross-checks (ROB order, occupancy tallies, free-list conservation,
 * rename-map entries, LSQ chains, iqPos back-pointers, the MSHR index,
 * runahead episode state, pool conservation). The MutationCheck suite
 * applies every kind to a warmed-up core and asserts the auditor
 * reports a failure tagged with exactly `structureOf(kind)` — no
 * false negatives.
 *
 * Strictly a test hook: nothing in the simulator calls this.
 */

#ifndef RAT_CHECK_MUTATE_HH
#define RAT_CHECK_MUTATE_HH

namespace rat::core {
class SmtCore;
}

namespace rat::check {

class Mutator
{
  public:
    enum class Kind {
        RobOrder,     ///< break ROB age ordering
        Icount,       ///< desync a thread's icount tally
        RegsHeld,     ///< break regsHeld vs free-list conservation
        MapFreeReg,   ///< point a rename-map entry at a free register
        LsqChain,     ///< corrupt a LSQ chain membership flag
        IqPos,        ///< break an iqPos back-pointer
        MshrMin,      ///< corrupt the MSHR tracked minimum
        RunaheadFlag, ///< leak a runahead flag outside an episode
        PoolLeak,     ///< allocate a pooled inst onto no list
    };
    static constexpr unsigned kNumKinds = 9;

    static const char *kindName(Kind kind);

    /** Structure tag the auditor must report for this kind. */
    static const char *structureOf(Kind kind);

    /**
     * Corrupt @p core. Returns false (core untouched) when the state
     * the mutation needs is not currently present — callers run the
     * core further and retry.
     */
    static bool apply(core::SmtCore &core, Kind kind);
};

} // namespace rat::check

#endif // RAT_CHECK_MUTATE_HH
