#include "check/verify.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "runahead/variant.hh"

namespace rat::check {

namespace {

/** Host-side mode settings of one leg. */
struct LegSpec {
    const char *name;
    bool cycleSkip;
    bool broadcast;
    Cycle checkpointEvery; ///< save/restore leg only
};

/**
 * Run one leg: the base config with this leg's host modes, a digest
 * stream, and (optionally) a seeded mutation or a state capture.
 */
sim::SimResult
runLeg(const VerifyOptions &options, runahead::RaVariant variant,
       const LegSpec &leg, Cycle digest_window, Cycle mutate_at,
       Cycle capture_at)
{
    sim::SimConfig cfg = options.base;
    cfg.core.rat.variant = variant;
    cfg.core.cycleSkipping = leg.cycleSkip;
    cfg.core.broadcastScheduler = leg.broadcast;
    cfg.digestWindow = digest_window;
    cfg.engineCheckpointEvery = leg.checkpointEvery;
    cfg.mutateAtCycle = mutate_at;
    cfg.captureStateAtCycle = capture_at;
    sim::Simulator simulator(cfg, options.programs);
    return simulator.run();
}

/**
 * First cycle at which two digest streams disagree (kNoCycle when
 * identical). A length mismatch counts as divergence at the first
 * missing boundary — it cannot happen between equal-length measured
 * windows, but a truncated stream must never read as "consistent".
 */
Cycle
firstDivergence(const obs::DigestTrack &ref, const obs::DigestTrack &leg)
{
    const std::size_t n = std::min(ref.samples.size(),
                                   leg.samples.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (!(ref.samples[i] == leg.samples[i]))
            return std::min(ref.samples[i].cycle, leg.samples[i].cycle);
    }
    if (ref.samples.size() != leg.samples.size()) {
        const auto &longer =
            ref.samples.size() > n ? ref.samples : leg.samples;
        return longer[n].cycle;
    }
    return kNoCycle;
}

/**
 * Narrow a coarse divergence down to the exact boundary: re-run both
 * legs at digest window 1 (every boundary between the coarse windows
 * is now sampled), locate the first mismatch, then re-run once more
 * capturing a full state dump of each side at that cycle.
 */
Divergence
bisect(const VerifyOptions &options, runahead::RaVariant variant,
       const LegSpec &reference, const LegSpec &leg, Cycle leg_mutate,
       Cycle coarse_cycle)
{
    Divergence d;
    d.leg = leg.name;
    d.variant = runahead::raVariantName(variant);
    d.window = coarse_cycle;

    inform("verify: narrowing %s/%s divergence at window boundary %llu",
           d.variant.c_str(), leg.name,
           static_cast<unsigned long long>(coarse_cycle));
    const sim::SimResult fine_ref =
        runLeg(options, variant, reference, 1, 0, 0);
    const sim::SimResult fine_leg =
        runLeg(options, variant, leg, 1, leg_mutate, 0);
    d.cycle = firstDivergence(fine_ref.digest, fine_leg.digest);
    if (d.cycle == kNoCycle) {
        // Divergent at the coarse window but not at window 1: should
        // be impossible (window 1 samples a superset of boundaries).
        // Report the coarse boundary rather than pretending success.
        d.cycle = coarse_cycle;
        return d;
    }

    const sim::SimResult dump_ref =
        runLeg(options, variant, reference, 1, 0, d.cycle);
    const sim::SimResult dump_leg =
        runLeg(options, variant, leg, 1, leg_mutate, d.cycle);
    d.referenceDump = dump_ref.stateDump;
    d.divergentDump = dump_leg.stateDump;
    return d;
}

} // namespace

VerifyOutcome
runVerify(const VerifyOptions &options)
{
    // The reference leg is the production default: cycle skipping on,
    // event-driven scheduler. Every other leg must match it.
    const LegSpec reference{"skip+event", true, false, 0};
    const LegSpec grid[] = {
        {"noskip+event", false, false, 0},
        {"skip+broadcast", true, true, 0},
        {"noskip+broadcast", false, true, 0},
        {"save-restore", true, false, options.checkpointEvery},
    };

    std::vector<runahead::RaVariant> variants;
    if (core::runaheadEnabled(options.base.core.policy)) {
        variants = {runahead::RaVariant::Classic,
                    runahead::RaVariant::Capped,
                    runahead::RaVariant::UselessFilter};
    } else {
        variants = {options.base.core.rat.variant};
    }

    VerifyOutcome outcome;
    for (const runahead::RaVariant variant : variants) {
        const char *vname = runahead::raVariantName(variant);
        inform("verify: variant %s: reference leg (%s)", vname,
               reference.name);
        const sim::SimResult ref = runLeg(options, variant, reference,
                                          options.digestWindow, 0, 0);

        for (const LegSpec &leg : grid) {
            inform("verify: variant %s: leg %s", vname, leg.name);
            const sim::SimResult res = runLeg(
                options, variant, leg, options.digestWindow, 0, 0);
            ++outcome.legsCompared;
            const Cycle at = firstDivergence(ref.digest, res.digest);
            if (at == kNoCycle)
                continue;
            outcome.gridConsistent = false;
            outcome.divergences.push_back(bisect(
                options, variant, reference, leg, 0, at));
        }

        // The fault-injection leg runs only for the first variant: it
        // audits the digest's sensitivity, not the variant grid.
        if (options.mutateAt && variant == variants.front()) {
            const LegSpec mutated{"mutated", true, false, 0};
            inform("verify: variant %s: seeded-mutation leg "
                   "(mutate-at %llu)",
                   vname,
                   static_cast<unsigned long long>(options.mutateAt));
            const sim::SimResult res =
                runLeg(options, variant, mutated, options.digestWindow,
                       options.mutateAt, 0);
            ++outcome.legsCompared;
            const Cycle at = firstDivergence(ref.digest, res.digest);
            if (at != kNoCycle) {
                outcome.mutationDetected = true;
                outcome.mutation =
                    bisect(options, variant, reference, mutated,
                           options.mutateAt, at);
            }
        }
    }
    return outcome;
}

std::string
formatDivergence(const Divergence &divergence)
{
    std::ostringstream os;
    os << "leg " << divergence.leg << " (ra-variant "
       << divergence.variant << ") diverges from skip+event\n"
       << "  first divergent window boundary: cycle "
       << divergence.window << "\n"
       << "  exact first divergent cycle:     cycle "
       << divergence.cycle << "\n";
    if (!divergence.referenceDump.empty()) {
        os << "--- reference state at cycle " << divergence.cycle
           << " ---\n"
           << divergence.referenceDump;
        os << "--- divergent state at cycle " << divergence.cycle
           << " ---\n"
           << divergence.divergentDump;
    }
    return os.str();
}

} // namespace rat::check
