/**
 * @file
 * `ratsim verify`: the self-checking determinism audit. Runs one
 * configuration across the full host-side mode grid — cycle-skip
 * on/off x event/broadcast scheduler, and every runahead variant when
 * the policy is runahead-capable — plus a save/restore leg that
 * round-trips the engine's episode checkpoints every few cycles. All
 * legs must produce byte-identical state-digest streams (see
 * digest.hh for why that is the right equivalence).
 *
 * On divergence (or with a deliberately seeded `--mutate-at` fault)
 * the driver narrows the coarse digest window down to the exact first
 * divergent cycle by re-running both legs at window 1, then captures
 * a full state dump of each side at that boundary.
 */

#ifndef RAT_CHECK_VERIFY_HH
#define RAT_CHECK_VERIFY_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/simulator.hh"

namespace rat::check {

/** What `runVerify` should execute. */
struct VerifyOptions {
    /**
     * Base configuration; its cycleSkipping / broadcastScheduler /
     * digestWindow members are overridden per leg.
     */
    sim::SimConfig base;
    /** Programs to co-run (the workload under audit). */
    std::vector<std::string> programs;
    /** Coarse digest window for the grid legs. */
    Cycle digestWindow = 256;
    /**
     * When non-zero, also run a fault-injected leg: a single-bit state
     * mutation at this cycle offset into the measured window. Verify
     * must detect it and bisect to the first divergent boundary.
     */
    Cycle mutateAt = 0;
    /** Episode-checkpoint round-trip interval of the save/restore leg. */
    Cycle checkpointEvery = 61;
};

/** One located divergence, bisected to the exact boundary. */
struct Divergence {
    std::string leg;     ///< which leg diverged from the reference
    std::string variant; ///< ra-variant of the leg pair
    /** First divergent coarse window boundary (absolute cycle). */
    Cycle window = kNoCycle;
    /** Exact first divergent boundary at window 1 (absolute cycle). */
    Cycle cycle = kNoCycle;
    std::string referenceDump; ///< reference-leg state at `cycle`
    std::string divergentDump; ///< diverging-leg state at `cycle`
};

/** Everything `runVerify` learned. */
struct VerifyOutcome {
    /** Mode-grid + save/restore legs all matched the reference. */
    bool gridConsistent = true;
    /** Legs compared against a reference (across all variants). */
    unsigned legsCompared = 0;
    /** Grid divergences (empty when gridConsistent). */
    std::vector<Divergence> divergences;
    /** The seeded-mutation leg diverged as it must (when requested). */
    bool mutationDetected = false;
    /** Bisection of the seeded mutation (when detected). */
    Divergence mutation;
};

/** Run the audit. Progress is reported via inform(). */
VerifyOutcome runVerify(const VerifyOptions &options);

/** Human-readable report of one divergence (multi-line). */
std::string formatDivergence(const Divergence &divergence);

} // namespace rat::check

#endif // RAT_CHECK_VERIFY_HH
