#include "common/fault.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/parse.hh"
#include "common/rng.hh"

namespace rat {

namespace {

const char *const kKindNames[kFaultKindCount] = {
    "kill", "hang", "garbage-frame", "torn-store", "slow", "spawn",
};

/** Per-kind salt so e.g. kill and hang decisions at the same
 * coordinates are independent draws. */
std::uint64_t
kindSalt(FaultKind kind)
{
    return splitmix64(0xfa17c0deULL + static_cast<unsigned>(kind));
}

std::uint64_t
decisionHash(std::uint64_t seed, FaultKind kind, std::uint64_t cell,
             std::uint64_t attempt, std::uint64_t subseq)
{
    std::uint64_t h = hashCombine(seed, kindSalt(kind));
    h = hashCombine(h, cell);
    h = hashCombine(h, attempt);
    h = hashCombine(h, subseq);
    return h;
}

std::optional<FaultKind>
kindFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kFaultKindCount; ++i)
        if (name == kKindNames[i])
            return static_cast<FaultKind>(i);
    return std::nullopt;
}

bool
parseProbability(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    if (value < 0.0 || value > 1.0)
        return false;
    *out = value;
    return true;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

bool
parseInto(FaultSchedule &sched, const std::string &text,
          std::string *error)
{
    sched.spec = text;
    // Mandatory leading "seed=<u64>".
    const std::size_t colon = text.find(':');
    const std::string head = text.substr(0, colon);
    if (head.rfind("seed=", 0) != 0)
        return fail(error, "fault spec must start with 'seed=<N>'");
    const auto seed = tryParseU64(head.c_str() + 5);
    if (!seed)
        return fail(error,
                    "fault spec: bad seed '" + head.substr(5) + "'");
    sched.seed = *seed;
    if (colon == std::string::npos)
        return true; // "seed=N" alone: armed but no rules
    for (const std::string &item :
         splitList(text.substr(colon + 1), ',')) {
        const std::size_t at = item.find('@');
        if (at == std::string::npos || at == 0 ||
            at + 1 >= item.size())
            return fail(error, "fault rule '" + item +
                                   "': expected <kind>@<form>");
        const auto kind = kindFromName(item.substr(0, at));
        if (!kind)
            return fail(error, "fault rule '" + item +
                                   "': unknown kind '" +
                                   item.substr(0, at) + "'");
        FaultRule &rule = sched.rules[static_cast<unsigned>(*kind)];
        if (rule.form != FaultRule::Form::None)
            return fail(error, "fault rule '" + item +
                                   "': kind scheduled twice");
        const char form = item[at + 1];
        const std::string arg = item.substr(at + 2);
        switch (form) {
          case 'p':
            if (!parseProbability(arg, &rule.probability))
                return fail(error,
                            "fault rule '" + item +
                                "': expected p<float in [0,1]>");
            rule.form = FaultRule::Form::Probability;
            break;
          case 'c': {
            const auto n = tryParseU64(arg.c_str());
            if (!n || *n == 0)
                return fail(error, "fault rule '" + item +
                                       "': expected c<N>, N >= 1");
            rule.form = FaultRule::Form::Nth;
            rule.n = *n;
            break;
          }
          case 'x': {
            const auto n = tryParseU64(arg.c_str());
            if (!n)
                return fail(error,
                            "fault rule '" + item + "': expected x<N>");
            rule.form = FaultRule::Form::Cell;
            rule.n = *n;
            break;
          }
          default:
            return fail(error, "fault rule '" + item +
                                   "': form must be p/c/x");
        }
    }
    return true;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    return kKindNames[static_cast<unsigned>(kind)];
}

bool
FaultSchedule::wouldFire(FaultKind kind, std::uint64_t cell,
                         std::uint64_t attempt,
                         std::uint64_t subseq) const
{
    const FaultRule &rule = rules[static_cast<unsigned>(kind)];
    switch (rule.form) {
      case FaultRule::Form::Probability: {
        if (rule.probability >= 1.0)
            return true;
        const std::uint64_t h =
            decisionHash(seed, kind, cell, attempt, subseq);
        // Compare against the threshold in the integer domain so the
        // predicate is bit-exact across compilers.
        const auto threshold = static_cast<std::uint64_t>(
            rule.probability * 18446744073709551615.0);
        return h < threshold;
      }
      case FaultRule::Form::Cell:
        return cell == rule.n;
      case FaultRule::Form::Nth: // process-sequence dependent
      case FaultRule::Form::None:
        return false;
    }
    return false;
}

std::uint64_t
FaultSchedule::parameterDraw(FaultKind kind, std::uint64_t cell,
                             std::uint64_t attempt) const
{
    // Offset the subseq space so parameters never correlate with the
    // firing decisions at the same coordinates.
    return decisionHash(seed, kind, cell, attempt,
                        0x9a7aULL /* 'para' */);
}

std::optional<FaultSchedule>
FaultSchedule::parse(const std::string &text, std::string *error)
{
    FaultSchedule sched;
    if (!parseInto(sched, text, error))
        return std::nullopt;
    return sched;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultSchedule &schedule)
{
    schedule_ = schedule;
    armed_ = true;
    hasContext_ = false;
    subseq_.fill(0);
    decisions_.fill(0);
}

void
FaultInjector::disarm()
{
    armed_ = false;
    hasContext_ = false;
}

bool
FaultInjector::armFromEnv()
{
    const char *spec = std::getenv("RATSIM_FAULT");
    if (!spec || !*spec) {
        disarm();
        return false;
    }
    std::string error;
    const auto sched = FaultSchedule::parse(spec, &error);
    if (!sched)
        fatal("RATSIM_FAULT: %s", error.c_str());
    arm(*sched);
    return true;
}

void
FaultInjector::setContext(std::uint64_t cell, std::uint64_t attempt)
{
    cell_ = cell;
    attempt_ = attempt;
    hasContext_ = true;
    subseq_.fill(0);
}

void
FaultInjector::clearContext()
{
    hasContext_ = false;
}

bool
FaultInjector::fire(FaultKind kind)
{
    if (!armed_ || !hasContext_)
        return false;
    const unsigned k = static_cast<unsigned>(kind);
    const FaultRule &rule = schedule_.rules[k];
    if (rule.form == FaultRule::Form::None)
        return false;
    const std::uint64_t subseq = subseq_[k]++;
    if (rule.form == FaultRule::Form::Nth)
        return ++decisions_[k] == rule.n;
    return schedule_.wouldFire(kind, cell_, attempt_, subseq);
}

std::chrono::milliseconds
FaultInjector::slowDelay() const
{
    const std::uint64_t draw =
        schedule_.parameterDraw(FaultKind::Slow, cell_, attempt_);
    return std::chrono::milliseconds(1 + draw % 50);
}

std::uint64_t
FaultInjector::parameterDraw(FaultKind kind) const
{
    return schedule_.parameterDraw(kind, cell_, attempt_);
}

} // namespace rat
