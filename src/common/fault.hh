/**
 * @file
 * Seeded, deterministic fault injection for chaos testing.
 *
 * A fault schedule is an operator-supplied spec (the `RATSIM_FAULT`
 * environment variable) of the shape
 *
 *     seed=7:kill@p0.02,hang@p0.01,garbage-frame@p0.005,
 *            torn-store@p0.01,slow@p0.05,spawn@c1
 *
 * Each rule names a fault kind and a firing form:
 *
 *   - `p<float>`  fire with that probability per decision, derived by
 *                 hashing (seed, kind, cell, attempt, subsequence) —
 *                 NOT by a stateful RNG — so whether a given decision
 *                 fires is a pure function of the schedule and the
 *                 decision's coordinates, independent of scheduling
 *                 races. A chaos failure is therefore replayable from
 *                 the seed alone, and tests can *predict* the exact
 *                 firing pattern (FaultSchedule::wouldFire).
 *   - `c<N>`      fire exactly on the Nth decision of that kind in
 *                 this process (1-based), once. Sequence-dependent;
 *                 meant for targeted single-worker tests.
 *   - `x<N>`      fire on every decision whose context cell is N —
 *                 the "poisoned cell" form: cell N misbehaves on every
 *                 attempt, which is what the farm's retry budget and
 *                 quarantine exist to contain.
 *
 * Fault kinds and their injection points:
 *
 *   kill          worker loop: raise SIGKILL on job receipt
 *   hang          worker loop: sleep forever (exercises --job-timeout)
 *   garbage-frame report::writeFrame: emit an unframeable byte burst
 *                 instead of the real frame, then report success
 *   torn-store    ResultCache::store: publish a truncated cell as if
 *                 the write had succeeded (bit-rot in place)
 *   slow          worker loop: sleep a deterministic 1-50 ms
 *   spawn         farm coordinator: fail the fork of a worker slot
 *
 * Decisions only fire while a *context* is set (setContext). Worker
 * processes set the context to (cell index, attempt) around each job;
 * the coordinator sets it to (slot, respawn count) around each spawn
 * and never otherwise, so e.g. job frames written by the coordinator
 * are never garbage-framed. An unset RATSIM_FAULT disarms everything;
 * all fire() paths then cost one branch.
 */

#ifndef RAT_COMMON_FAULT_HH
#define RAT_COMMON_FAULT_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace rat {

enum class FaultKind : unsigned {
    Kill = 0,
    Hang,
    GarbageFrame,
    TornStore,
    Slow,
    SpawnFail,
};
constexpr std::size_t kFaultKindCount = 6;

/** Spec spelling of a kind ("kill", "garbage-frame", ...). */
const char *faultKindName(FaultKind kind);

/** One kind's firing rule. */
struct FaultRule {
    enum class Form : unsigned {
        None = 0,    ///< not scheduled
        Probability, ///< p<float>: hash-thresholded per decision
        Nth,         ///< c<N>: the Nth decision of this kind, once
        Cell,        ///< x<N>: every decision with context cell == N
    };
    Form form = Form::None;
    double probability = 0.0; ///< Probability form
    std::uint64_t n = 0;      ///< Nth / Cell forms
};

/** A parsed fault schedule. */
struct FaultSchedule {
    std::uint64_t seed = 0;
    std::string spec; ///< original text, for diagnostics
    std::array<FaultRule, kFaultKindCount> rules{};

    bool scheduled(FaultKind kind) const
    {
        return rules[static_cast<unsigned>(kind)].form !=
               FaultRule::Form::None;
    }

    /**
     * Pure firing predicate for the Probability and Cell forms: would
     * the decision at (cell, attempt, subseq) fire? `subseq` numbers
     * the decisions of one kind within one context, starting at 0
     * (e.g. a worker's progress frame is garbage-frame decision 0 and
     * its reply frame decision 1). Nth-form rules depend on a process-
     * local counter and always return false here.
     */
    bool wouldFire(FaultKind kind, std::uint64_t cell,
                   std::uint64_t attempt, std::uint64_t subseq) const;

    /** Deterministic 64-bit draw for fault *parameters* (slow delay,
     * torn-store shape), independent of the firing decisions. */
    std::uint64_t parameterDraw(FaultKind kind, std::uint64_t cell,
                                std::uint64_t attempt) const;

    /**
     * Parse a spec. Returns std::nullopt on malformed input with a
     * diagnostic in @p error (when non-null). The leading `seed=N` is
     * mandatory; rules are optional (`seed=7` alone arms a no-op
     * schedule).
     */
    static std::optional<FaultSchedule>
    parse(const std::string &text, std::string *error = nullptr);
};

/**
 * Process-wide injector: a schedule plus the mutable decision state
 * (context, per-kind subsequence and absolute counters). Not thread-
 * safe while a context is set — contexts are only ever set by the
 * single-threaded farm worker loop and coordinator spawn path; fire()
 * from other threads (e.g. in-process sweep workers hitting
 * ResultCache::store) is safe because it returns before touching any
 * state when no context is set.
 */
class FaultInjector
{
  public:
    static FaultInjector &global();

    void arm(const FaultSchedule &schedule);
    void disarm();

    /**
     * Arm from the RATSIM_FAULT environment variable, replacing any
     * previous schedule; unset/empty disarms. fatal()s on a malformed
     * spec. Returns armed().
     */
    bool armFromEnv();

    bool armed() const { return armed_; }
    const FaultSchedule &schedule() const { return schedule_; }

    /** Enter a decision context; resets the per-context subsequence
     * counters. Workers use (cell, attempt); the coordinator uses
     * (slot, respawn count) around spawns. */
    void setContext(std::uint64_t cell, std::uint64_t attempt);
    void clearContext();
    bool hasContext() const { return hasContext_; }

    /**
     * Take one firing decision for @p kind. False when disarmed, when
     * no context is set, or when the kind is unscheduled; otherwise
     * per the rule's form. Advances this kind's subsequence counter.
     */
    bool fire(FaultKind kind);

    /** Deterministic slow-fault delay for the current context. */
    std::chrono::milliseconds slowDelay() const;

    /** Deterministic 64-bit parameter draw for the current context
     * (e.g. the torn-store corruption shape). */
    std::uint64_t parameterDraw(FaultKind kind) const;

  private:
    bool armed_ = false;
    FaultSchedule schedule_{};
    bool hasContext_ = false;
    std::uint64_t cell_ = 0;
    std::uint64_t attempt_ = 0;
    std::array<std::uint64_t, kFaultKindCount> subseq_{};
    std::array<std::uint64_t, kFaultKindCount> decisions_{};
};

} // namespace rat

#endif // RAT_COMMON_FAULT_HH
