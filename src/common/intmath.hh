/**
 * @file
 * Small integer-math helpers used by cache indexing and sizing code.
 */

#ifndef RAT_COMMON_INTMATH_HH
#define RAT_COMMON_INTMATH_HH

#include <cstdint>

namespace rat {

/** True iff @p n is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); n must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned p = 0;
    while (n >>= 1)
        ++p;
    return p;
}

/** Ceiling of integer division a/b; b must be non-zero. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace rat

#endif // RAT_COMMON_INTMATH_HH
