#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rat {

namespace {

LogLevel g_level = LogLevel::Info;
std::string g_prefix;
void (*g_preLine)() = nullptr;

void
vreport(const char *severity, const char *fmt, va_list args)
{
    if (g_preLine)
        g_preLine();
    std::fprintf(stderr, "%s%s: ", g_prefix.c_str(), severity);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevelFromEnv()
{
    const char *value = std::getenv("RATSIM_LOG_LEVEL");
    if (!value || value[0] == '\0')
        return;
    if (std::strcmp(value, "error") == 0) {
        g_level = LogLevel::Error;
    } else if (std::strcmp(value, "warn") == 0) {
        g_level = LogLevel::Warn;
    } else if (std::strcmp(value, "info") == 0) {
        g_level = LogLevel::Info;
    } else {
        warn("RATSIM_LOG_LEVEL: unknown level '%s' "
             "(expected error|warn|info)",
             value);
    }
}

void
setLogPrefix(const std::string &prefix)
{
    g_prefix = prefix;
}

void
setLogPreLineHook(void (*hook)())
{
    g_preLine = hook;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    if (g_preLine)
        g_preLine();
    std::fprintf(stderr, "%spanic: assertion '%s' failed at %s:%d",
                 g_prefix.c_str(), cond, file, line);
    if (fmt && fmt[0] != '\0') {
        std::fprintf(stderr, ": ");
        va_list args;
        va_start(args, fmt);
        std::vfprintf(stderr, fmt, args);
        va_end(args);
    }
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

} // namespace rat
