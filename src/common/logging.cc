#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace rat {

namespace {

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d",
                 cond, file, line);
    if (fmt && fmt[0] != '\0') {
        std::fprintf(stderr, ": ");
        va_list args;
        va_start(args, fmt);
        std::vfprintf(stderr, fmt, args);
        va_end(args);
    }
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

} // namespace rat
