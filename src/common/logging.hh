/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * `panic()` is for conditions that indicate a bug in the simulator itself
 * (aborts). `fatal()` is for user configuration errors (clean exit(1)).
 * `warn()` and `inform()` print advisory messages and continue.
 */

#ifndef RAT_COMMON_LOGGING_HH
#define RAT_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rat {

/**
 * Verbosity of the advisory channels. `panic`/`fatal`/assertions
 * always print — only `warn()` and `inform()` are gated.
 */
enum class LogLevel {
    Error = 0, ///< advisory output off
    Warn = 1,  ///< warn() only
    Info = 2,  ///< warn() + inform() (the default)
};

/** Set the advisory verbosity. */
void setLogLevel(LogLevel level);
/** Current advisory verbosity. */
LogLevel logLevel();

/**
 * Read RATSIM_LOG_LEVEL ("error" | "warn" | "info") from the
 * environment, if set. Unknown values warn and keep the default. The
 * farm worker entry point calls this so `RATSIM_LOG_LEVEL=warn ratsim
 * farm ...` quiets every forked worker (the environment is inherited
 * across fork/exec).
 */
void setLogLevelFromEnv();

/**
 * Prefix prepended to every log line (before the severity tag), e.g.
 * "[w3] " so interleaved farm-worker stderr is attributable. Empty by
 * default.
 */
void setLogPrefix(const std::string &prefix);

/**
 * Hook invoked immediately before any log line is printed (every
 * severity, assertion failures included). The farm's `--progress`
 * display registers one that erases its in-place live line, so
 * advisory output never lands mid-way through a half-repainted
 * progress line. nullptr (the default) disables the hook.
 */
void setLogPreLineHook(void (*hook)());

/** Print a formatted bug message and abort(). Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted user-error message and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted informational message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Implementation helper for RAT_ASSERT; formats and aborts. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Assert a simulator invariant; on failure, panic with location info and
 * an optional printf-style message. Enabled in all build types: internal
 * consistency matters more than the last few percent of simulation speed.
 */
#define RAT_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            _Pragma("GCC diagnostic push")                                  \
            _Pragma("GCC diagnostic ignored \"-Wformat-zero-length\"")      \
            ::rat::panicAssert(#cond, __FILE__, __LINE__, "" __VA_ARGS__);  \
            _Pragma("GCC diagnostic pop")                                   \
        }                                                                   \
    } while (0)

} // namespace rat

#endif // RAT_COMMON_LOGGING_HH
