/**
 * @file
 * Checked numeric parsing shared by the CLI and the bench env knobs.
 * `std::strtoull` silently maps garbage to 0 and ignores trailing
 * junk; these helpers reject both instead of mis-configuring a run.
 */

#ifndef RAT_COMMON_PARSE_HH
#define RAT_COMMON_PARSE_HH

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace rat {

/**
 * Parse a non-negative decimal integer. The whole string must be
 * consumed; leading whitespace, signs, empty input, trailing junk and
 * overflow all yield std::nullopt.
 */
inline std::optional<std::uint64_t>
tryParseU64(const char *text)
{
    if (!text || !*text ||
        !std::isdigit(static_cast<unsigned char>(*text)))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno == ERANGE || !end || *end != '\0')
        return std::nullopt;
    return static_cast<std::uint64_t>(value);
}

/** Checked parse that fatal()s on garbage, naming the offending
 * option/variable in the diagnostic. */
inline std::uint64_t
parseU64(const char *text, const char *what)
{
    const auto value = tryParseU64(text);
    if (!value)
        fatal("%s: expected an unsigned integer, got '%s'", what,
              text ? text : "");
    return *value;
}

/** parseU64 with a range check for `unsigned`-typed config fields. */
inline unsigned
parseUnsigned(const char *text, const char *what)
{
    const std::uint64_t value = parseU64(text, what);
    if (value > std::numeric_limits<unsigned>::max())
        fatal("%s: value %llu out of range", what,
              static_cast<unsigned long long>(value));
    return static_cast<unsigned>(value);
}

/** Split on a delimiter, dropping empty items ("a,,b" -> {a, b}). */
inline std::vector<std::string>
splitList(const std::string &list, char delimiter)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t pos = list.find(delimiter, start);
        const std::string item =
            list.substr(start, pos == std::string::npos
                                   ? std::string::npos
                                   : pos - start);
        if (!item.empty())
            items.push_back(item);
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return items;
}

/** Parse a comma-separated list of unsigned integers ("64,128,320"). */
inline std::vector<std::uint64_t>
parseU64List(const std::string &list, const char *what)
{
    std::vector<std::uint64_t> values;
    for (const std::string &item : splitList(list, ','))
        values.push_back(parseU64(item.c_str(), what));
    if (values.empty())
        fatal("%s: expected a comma-separated list of unsigned "
              "integers, got '%s'",
              what, list.c_str());
    return values;
}

} // namespace rat

#endif // RAT_COMMON_PARSE_HH
