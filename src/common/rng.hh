/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The trace substrate requires that every thread's instruction stream be a
 * *pure function* of (profile, seed, instruction index) so that runahead
 * rollback can rewind and regenerate identical instructions. SplitMix64
 * provides stateless hashing of indices; Xoshiro256** provides a fast
 * sequential stream for stateful generators.
 */

#ifndef RAT_COMMON_RNG_HH
#define RAT_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace rat {

/**
 * Stateless 64-bit mix function (SplitMix64 finalizer).
 *
 * Maps any 64-bit value to a well-distributed 64-bit value; used to derive
 * per-index random draws without maintaining generator state.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one well-mixed hash. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return splitmix64(a ^ (splitmix64(b) + 0x9e3779b97f4a7c15ULL));
}

/**
 * Xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, 256-bit state.
 */
class Xoshiro256
{
  public:
    /** Seed the four state words from a single 64-bit seed via SplitMix64. */
    explicit Xoshiro256(std::uint64_t seed = 0x2545f4914f6cdd1dULL)
    {
        std::uint64_t s = seed;
        for (auto &word : state_) {
            s = splitmix64(s);
            word = s | 1; // never all-zero state
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound). bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Multiply-shift mapping; bias is negligible for simulator use.
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p) { return nextDouble() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace rat

#endif // RAT_COMMON_RNG_HH
