#include "common/stats.hh"

#include <cstdio>

#include "common/logging.hh"

namespace rat {

Histogram::Histogram(std::uint64_t bucket_width, unsigned num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    RAT_ASSERT(bucket_width > 0, "histogram bucket width must be > 0");
    RAT_ASSERT(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t v)
{
    const std::uint64_t idx = v / bucketWidth_;
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
    ++total_;
    sumD_ += static_cast<double>(v);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    total_ = 0;
    sumD_ = 0.0;
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

} // namespace rat
