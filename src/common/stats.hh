/**
 * @file
 * Lightweight statistics primitives: counters, running means, and
 * fixed-bucket histograms, plus formatting helpers for bench output.
 *
 * These deliberately avoid any global registry: each simulator component
 * owns its stats and exposes them through accessors, which keeps multiple
 * simulator instances (e.g. parameter sweeps in one process) independent.
 */

#ifndef RAT_COMMON_STATS_HH
#define RAT_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rat {

/**
 * Running mean/min/max accumulator over double-valued samples.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Arithmetic mean, or 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /** Smallest sample, or 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest sample, or 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Discard all samples. */
    void reset() { *this = RunningStat(); }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over uint64 samples with uniform-width buckets plus an
 * overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (must be > 0).
     * @param num_buckets  Number of regular buckets before overflow.
     */
    Histogram(std::uint64_t bucket_width, unsigned num_buckets);

    /** Record one sample. */
    void sample(std::uint64_t v);

    /** Count in regular bucket @p i. */
    std::uint64_t bucketCount(unsigned i) const { return buckets_.at(i); }
    /** Count of samples beyond the last regular bucket. */
    std::uint64_t overflowCount() const { return overflow_; }
    /** Total samples recorded. */
    std::uint64_t totalCount() const { return total_; }
    /** Number of regular buckets. */
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    /** Mean of all recorded samples (exact, tracked separately). */
    double mean() const { return total_ ? sumD_ / total_ : 0.0; }

    /** Discard all samples. */
    void reset();

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sumD_ = 0.0;
};

/**
 * Harmonic mean of a set of positive ratios; returns 0 for an empty set
 * or if any ratio is non-positive. Used by the fairness metric (Eq. 2).
 */
double harmonicMean(const std::vector<double> &values);

/** Format a double with fixed precision into a std::string. */
std::string formatDouble(double v, int precision = 3);

} // namespace rat

#endif // RAT_COMMON_STATS_HH
