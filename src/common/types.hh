/**
 * @file
 * Fundamental scalar types shared by every ratsim module.
 *
 * The simulator models discrete processor cycles; all time is expressed in
 * units of `Cycle`. Memory addresses are byte addresses in a flat 64-bit
 * space. Hardware thread contexts are identified by a small dense integer.
 */

#ifndef RAT_COMMON_TYPES_HH
#define RAT_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace rat {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated flat 64-bit address space. */
using Addr = std::uint64_t;

/** Hardware thread (context) identifier, dense starting at 0. */
using ThreadId = std::uint8_t;

/** Architectural register index within one register class (0..31). */
using ArchReg = std::uint8_t;

/** Physical register index within one register class's file. */
using PhysReg = std::uint16_t;

/** Monotonic per-thread dynamic instruction sequence number. */
using InstSeq = std::uint64_t;

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for an unmapped / invalid physical register. */
inline constexpr PhysReg kNoPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel for an invalid thread. */
inline constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();

/** Number of architectural registers per class (INT or FP), Alpha-like. */
inline constexpr unsigned kNumArchRegs = 32;

/** Maximum number of hardware threads the core supports. */
inline constexpr unsigned kMaxThreads = 8;

} // namespace rat

#endif // RAT_COMMON_TYPES_HH
