/**
 * @file
 * SMT core configuration. Defaults reproduce the paper's Table 1:
 * 10-stage, 8-wide, 512-entry shared ROB, 64-entry issue queues,
 * 320 INT + 320 FP rename registers, 6/3/4 INT/FP/LdSt units.
 */

#ifndef RAT_CORE_CONFIG_HH
#define RAT_CORE_CONFIG_HH

#include "branch/perceptron.hh"
#include "common/types.hh"
#include "runahead/variant.hh"

namespace rat::core {

/**
 * How aggressively the self-checking auditor (src/check/auditor.hh)
 * runs at tick boundaries. `Off` costs one predicted branch per tick;
 * `Sampled` audits every `checkInterval` cycles (cheap enough for
 * sweeps); `Full` audits every tick (tests / bug hunts).
 */
enum class CheckLevel : std::uint8_t {
    Off,
    Sampled,
    Full,
};

/** Canonical check-level name ("off" / "sampled" / "full"). */
const char *checkLevelName(CheckLevel level);

/** Which long-latency-load handling scheme the core runs. */
enum class PolicyKind : std::uint8_t {
    RoundRobin,   ///< round-robin fetch, no long-latency handling
    Icount,       ///< ICOUNT fetch priority only (the baseline)
    Stall,        ///< ICOUNT + fetch-stall on L2 miss [17]
    Flush,        ///< ICOUNT + flush-and-stall on L2 miss [17]
    Dcra,         ///< dynamic resource caps [1]
    HillClimbing, ///< learning-based partitioning [3]
    Rat,          ///< Runahead Threads (this paper)
    /**
     * Runahead Threads combined with DCRA resource caps — the hybrid
     * the paper names as future work in Section 5.2 ("it is possible
     * to incorporate an additional resource control mechanism").
     */
    RatDcra,
    /**
     * MLP-aware fetch policy (Eyerman & Eeckhout [15]) — the related
     * work the paper contrasts in Section 2: exposes a *bounded*
     * window of memory-level parallelism after a miss, then stalls.
     */
    MlpAware,
};

/** Human-readable policy name. */
const char *policyName(PolicyKind kind);

/** True when the policy kind runs the runahead mechanism in the core. */
constexpr bool
runaheadEnabled(PolicyKind kind)
{
    return kind == PolicyKind::Rat || kind == PolicyKind::RatDcra;
}

/** Runahead Threads feature flags (Section 3.3 + Fig. 4 ablations). */
struct RatConfig {
    /**
     * Episode policy the RunaheadEngine runs (src/runahead/): `classic`
     * is the paper's mechanism, `capped` throttles episode length,
     * `useless-filter` suppresses loads with a history of useless
     * episodes. Selectable at runtime via `--ra-variant`.
     */
    runahead::RaVariant variant = runahead::RaVariant::Classic;
    /** `capped` variant: max cycles an episode may run past entry. */
    unsigned cappedMaxCycles = 128;
    /**
     * `useless-filter` variant: consecutive zero-prefetch full episodes
     * of a PC region before its loads switch to fetch-gated DrainOnly
     * episodes (a useful full episode resets its region to 0). The
     * 2-bit counters saturate at 3, so the value is clamped to [1, 3].
     */
    unsigned uselessFilterThreshold = 3;
    /**
     * `useless-filter` variant: every Nth suppressed (distinct) load of
     * a filtered PC region runs a full probe episode anyway, so a
     * region whose loads become prefetchable again recovers quickly.
     * Episode usefulness is near-random on the synthetic traces, so the
     * dense default (every 2nd) is what keeps the filter's IPC cost
     * within ~1% — see DESIGN.md. 0 disables re-probing.
     */
    unsigned uselessFilterReprobe = 2;
    /**
     * Drop FP compute instructions during runahead so they use no FP
     * resources (Section 3.3, "Floating-point resources"). FP loads and
     * stores still execute as prefetches through the integer pipeline.
     */
    bool dropFpInRunahead = true;
    /**
     * Model the runahead cache of Mutlu et al. for store-to-load INV
     * communication past pseudo-retirement. The paper measured it
     * insignificant and omits it; off by default (Section 3.3).
     */
    bool useRunaheadCache = false;
    /** Runahead-cache line capacity per thread (when enabled). */
    unsigned runaheadCacheLines = 64;
    /**
     * Fig. 4 ablation "RaT without prefetching": runahead loads that miss
     * L1 are invalidated without accessing L2/memory, and loads observed
     * to be L2 misses during such a runahead episode do not re-trigger
     * runahead after recovery (keeps episode lengths identical).
     */
    bool disablePrefetch = false;
    /**
     * Fig. 4 ablation "resource availability only": a thread entering
     * runahead stops fetching; already-fetched instructions drain as
     * runahead instructions and release their resources early.
     */
    bool noFetchInRunahead = false;
};

/** Full core configuration (defaults = Table 1). */
struct CoreConfig {
    unsigned numThreads = 2;

    // Widths and depth.
    unsigned fetchWidth = 8;
    unsigned fetchThreads = 2; ///< ICOUNT.2.8
    unsigned renameWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    /** Cycles between fetch and rename (models the 10-stage depth). */
    unsigned frontendDelay = 5;

    // Shared structures.
    unsigned robEntries = 512;
    unsigned intIqEntries = 64;
    unsigned fpIqEntries = 64;
    unsigned lsIqEntries = 64;
    /** Load/store queue entries (address/forwarding tracking). */
    unsigned lsqEntries = 64;
    /** INT / FP rename (renaming) registers. */
    unsigned intRegs = 320;
    unsigned fpRegs = 320;

    // Functional units.
    unsigned intUnits = 6;
    unsigned fpUnits = 3;
    unsigned memUnits = 4;

    // Per-thread front end.
    unsigned fetchQueueEntries = 32;
    /** Redirect bubble when a taken branch misses in the BTB. */
    unsigned btbMissPenalty = 2;
    /** Extra redirect cycles after a mispredicted branch resolves. */
    unsigned mispredictRedirect = 2;
    /** Sequential I-stream prefetch depth (stream-buffer lines). */
    unsigned ifetchPrefetchLines = 3;

    // Long-latency handling.
    PolicyKind policy = PolicyKind::Icount;
    RatConfig rat{};

    /**
     * Run the pre-event-driven broadcast scheduler: full issue-queue
     * scans on every register/store wakeup and a per-cycle ready-list
     * rescan, instead of the event-driven waiter lists (DESIGN.md,
     * "Event-driven wakeup"). Results are bit-identical in both modes;
     * this reference implementation exists for the perf_simspeed
     * before/after bench and the scheduler-equivalence tests. Host-side
     * implementation choice only, so it is deliberately NOT part of the
     * serialized configuration (it cannot affect results or cache keys).
     */
    bool broadcastScheduler = false;

    /**
     * Quiescence-aware cycle skipping: when a tick ends provably idle
     * (no event processed, nothing issuable/renameable/fetchable/
     * committable), `SmtCore::run` fast-forwards the clock to the next
     * event instead of ticking through the dead cycles (DESIGN.md,
     * "Cycle skipping & quiescence invariants"). Bit-identical by
     * construction — skipped cycles are exactly the ticks that would
     * have changed nothing, and per-cycle accumulators are integrated
     * analytically over the span. Like `broadcastScheduler` this is a
     * host-side implementation choice: deliberately NOT part of the
     * serialized configuration (it cannot affect results or cache
     * keys).
     */
    bool cycleSkipping = true;

    /**
     * Runtime invariant audits (src/check/): `Off` by default. Like
     * `broadcastScheduler` and `cycleSkipping` this is a host-side
     * observation knob — audits either pass (no state change) or abort
     * the run, so it is deliberately NOT part of the serialized
     * configuration (it cannot affect results or cache keys).
     */
    CheckLevel checkLevel = CheckLevel::Off;
    /** Cycles between audits at CheckLevel::Sampled. */
    unsigned checkInterval = 64;

    branch::PerceptronConfig predictor{};
};

} // namespace rat::core

#endif // RAT_CORE_CONFIG_HH
