/**
 * @file
 * Dynamic (in-flight) instruction record and the generation-checked
 * arena that owns all of them.
 *
 * Handles are (slot, generation) pairs: any stale reference — e.g. a
 * completion event for an instruction that was squashed — fails the
 * generation check and is ignored. This is what makes squash (branch
 * flush, FLUSH policy, runahead exit) safe without hunting down every
 * outstanding reference.
 */

#ifndef RAT_CORE_DYNINST_HH
#define RAT_CORE_DYNINST_HH

#include <cstdint>
#include <vector>

#include "branch/perceptron.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "trace/microop.hh"

namespace rat::core {

/** Rename-map entry encoding: a physical register or a sentinel. */
using MapEntry = std::uint16_t;
/** Value committed to the architectural file (no rename reg held). */
inline constexpr MapEntry kMapArch = 0xFFFE;
/** Value is runahead-invalid (INV); no rename reg held. */
inline constexpr MapEntry kMapInv = 0xFFFD;

/** True if the map entry names a real physical register. */
constexpr bool
isPhysEntry(MapEntry e)
{
    return e != kMapArch && e != kMapInv;
}

/** Lifecycle of a dynamic instruction. */
enum class InstStatus : std::uint8_t {
    InFetchQueue, ///< fetched, waiting for rename eligibility
    InQueue,      ///< renamed, waiting in an issue queue
    Executing,    ///< issued to a functional unit / memory
    Complete,     ///< result produced (or folded INV), awaiting retire
    Retired,      ///< committed or pseudo-retired (slot about to free)
};

/** Readiness state of one renamed source operand. */
enum class SrcState : std::uint8_t {
    Ready,   ///< value available
    Waiting, ///< waiting on a physical register tag
    Invalid, ///< runahead INV operand
};

/** Generation-checked reference to a pooled DynInst. */
struct InstHandle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;

    bool operator==(const InstHandle &o) const
    {
        return slot == o.slot && gen == o.gen;
    }
    bool operator!=(const InstHandle &o) const { return !(*this == o); }
};

/** One in-flight instruction. */
struct DynInst {
    // Identity.
    std::uint64_t uid = 0; ///< global age order (monotonic)
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
    ThreadId tid = 0;
    trace::MicroOp op;

    InstStatus status = InstStatus::InFetchQueue;
    /** Runahead-invalid: folded, result meaningless. */
    bool inv = false;
    /** Fetched while the thread was in runahead mode. */
    bool runahead = false;
    /** Never entered an issue queue (folded at rename or wakeup). */
    bool folded = false;

    // Rename state.
    bool renamed = false;
    bool dstIsFp = false;
    MapEntry dstPhys = kMapInv;  ///< allocated rename reg (if any)
    bool hasDstReg = false;      ///< dstPhys holds a live rename reg
    MapEntry prevMap = kMapArch; ///< map entry this instruction replaced
    /** Allocation generation of prevMap when it names a register. */
    std::uint16_t prevMapGen = 0;

    // Source operands after rename. srcIsFp tells which file a tag
    // belongs to.
    static constexpr unsigned kMaxSrcs = 4;
    MapEntry srcTag[kMaxSrcs] = {};
    SrcState srcState[kMaxSrcs] = {};
    bool srcIsFp[kMaxSrcs] = {};
    std::uint8_t numSrcs = 0;

    // Memory state.
    bool memIssued = false;
    mem::HitLevel memLevel = mem::HitLevel::L1;
    /** Store this load waits on for forwarding (0 = none). */
    std::uint64_t depStoreUid = 0;
    bool forwarded = false;
    /** Counted in the thread's pending-L2-miss tally. */
    bool countedL2Miss = false;
    /**
     * The access is long-latency: a fresh L2 miss or a merge with an
     * in-flight fill that completes far in the future. Long-latency
     * loads trigger/fold under runahead and count as pending misses.
     */
    bool longLatency = false;

    // Branch state.
    bool predTaken = false;
    bool mispredicted = false;
    branch::PerceptronOutput pred{};

    // Timing.
    Cycle fetchedAt = 0;
    Cycle renameReadyAt = 0; ///< when it may leave the fetch queue
    Cycle issuedAt = 0;      ///< when it started executing (telemetry)
    Cycle completeAt = kNoCycle;

    /** Current slot in the owning issue queue (O(1) removal). */
    std::uint32_t iqPos = 0;

    /**
     * Summary of the rare scheduler links below (kWaiterLinks set when
     * any onWaiterList[i] is, kDepLink mirroring onDepList, kDepHead
     * mirroring depHead != nullptr). Lives in the hot region so the
     * release path of a cleanly committed instruction (the common case)
     * can skip the link cache lines entirely.
     */
    std::uint8_t schedLinkMask = 0;
    static constexpr std::uint8_t kWaiterLinks = 1;
    static constexpr std::uint8_t kDepLink = 2;
    static constexpr std::uint8_t kDepHead = 4;

    // Intrusive program-order list links, used first for the thread's
    // fetch queue and then (after rename) for its ROB list — an
    // instruction is on at most one of the two at any time. Touched
    // several times per instruction, so they stay in the hot region.
    DynInst *seqNext = nullptr;
    DynInst *seqPrev = nullptr;

    // Intrusive LSQ membership (per-thread program-ordered list), plus
    // a parallel stores-only chain so store-to-load forwarding walks
    // only actual stores.
    DynInst *lsqNext = nullptr;
    DynInst *lsqPrev = nullptr;
    DynInst *lsqStoreNext = nullptr;
    DynInst *lsqStorePrev = nullptr;
    bool inLsq = false;

    // --- rarely-touched event-scheduler links (DESIGN.md,
    // "Event-driven wakeup") ------------------------------------------
    //
    // Deliberately last: only touched on actual dependence edges, so
    // the per-stage hot fields above stay packed in the record's first
    // cache lines.
    //
    // Raw pointers are safe in all link families because of the release
    // invariant: every node is unlinked (or its list consumed) before
    // the owning instruction returns to the pool, and the pool's slot
    // array never reallocates.

    // Waiter-list node per source operand: a doubly-linked chain of
    // (instruction, source-index) nodes anchored at the producing
    // physical register. Linked at dispatch while the source is
    // Waiting; consumed wholesale when the producer wakes the register,
    // or unlinked one node at a time on squash/release.
    DynInst *wakeNext[kMaxSrcs] = {};
    DynInst *wakePrev[kMaxSrcs] = {};
    std::uint8_t wakeNextSrc[kMaxSrcs] = {};
    std::uint8_t wakePrevSrc[kMaxSrcs] = {};
    bool onWaiterList[kMaxSrcs] = {};

    // Store-dependence chain: loads blocked on an older in-flight store
    // (depStoreUid above) link into that store's dependent list so the
    // store's completion/fold wakes only its actual dependents.
    DynInst *depHead = nullptr;  ///< stores: first dependent load
    DynInst *depNext = nullptr;  ///< loads: chain links
    DynInst *depPrev = nullptr;  ///< loads: chain links
    DynInst *depStore = nullptr; ///< loads: the store depended on
    bool onDepList = false;      ///< loads: linked on depStore's chain

    /** Handle to this instruction. */
    InstHandle handle() const { return {slot, gen}; }

    /**
     * Reset the semantic fields for reuse from the pool (hot path: one
     * call per fetched instruction). Deliberately NOT reset:
     *  - the intrusive link families (wake-, dep-, lsq-, seq-): the
     *    release invariant guarantees they are already null/unlinked
     *    when the slot returns to the free list, and skipping them
     *    keeps allocation from rewriting ~40% of the record;
     *  - `op` and `pred`: fully assigned at fetch before any read;
     *  - `iqPos`: assigned at issue-queue insert;
     *  - `slot`/`gen`/`uid`/`tid`: managed by InstPool::alloc.
     */
    void
    resetForAlloc()
    {
        status = InstStatus::InFetchQueue;
        inv = false;
        runahead = false;
        folded = false;
        renamed = false;
        dstIsFp = false;
        dstPhys = kMapInv;
        hasDstReg = false;
        prevMap = kMapArch;
        prevMapGen = 0;
        numSrcs = 0;
        memIssued = false;
        memLevel = mem::HitLevel::L1;
        depStoreUid = 0;
        forwarded = false;
        countedL2Miss = false;
        longLatency = false;
        predTaken = false;
        mispredicted = false;
        fetchedAt = 0;
        renameReadyAt = 0;
        issuedAt = 0;
        completeAt = kNoCycle;
        schedLinkMask = 0;
    }

    /** All sources ready (none waiting, none invalid)? */
    bool
    allSrcsReady() const
    {
        for (unsigned i = 0; i < numSrcs; ++i) {
            if (srcState[i] != SrcState::Ready)
                return false;
        }
        return depStoreUid == 0;
    }

    /** Any source invalid? */
    bool
    anySrcInvalid() const
    {
        for (unsigned i = 0; i < numSrcs; ++i) {
            if (srcState[i] == SrcState::Invalid)
                return true;
        }
        return false;
    }
};

/**
 * Fixed-capacity arena of DynInst with generation-checked handles.
 */
class InstPool
{
  public:
    explicit InstPool(std::size_t capacity)
    {
        slots_.resize(capacity);
        freeList_.reserve(capacity);
        for (std::size_t i = capacity; i-- > 0;)
            freeList_.push_back(static_cast<std::uint32_t>(i));
        for (std::size_t i = 0; i < capacity; ++i) {
            slots_[i].slot = static_cast<std::uint32_t>(i);
            slots_[i].gen = 1;
        }
    }

    /** Allocate a fresh instruction; panics if the pool is exhausted. */
    DynInst *
    alloc(ThreadId tid)
    {
        RAT_ASSERT(!freeList_.empty(), "instruction pool exhausted");
        const std::uint32_t slot = freeList_.back();
        freeList_.pop_back();
        DynInst &inst = slots_[slot];
        inst.resetForAlloc();
        ++inst.gen; // distinct from every handle of the prior occupant
        inst.uid = ++nextUid_;
        inst.tid = tid;
        return &inst;
    }

    /** Return an instruction to the pool; its handles become stale. */
    void
    release(DynInst *inst)
    {
        RAT_ASSERT(inst != nullptr, "releasing null instruction");
        ++inst->gen; // invalidate outstanding handles
        freeList_.push_back(inst->slot);
    }

    /** Resolve a handle; nullptr if stale. */
    DynInst *
    get(InstHandle h)
    {
        if (h.slot >= slots_.size())
            return nullptr;
        DynInst &inst = slots_[h.slot];
        return inst.gen == h.gen ? &inst : nullptr;
    }

    /** Number of live instructions. */
    std::size_t
    liveCount() const
    {
        return slots_.size() - freeList_.size();
    }

    /** Total capacity. */
    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<DynInst> slots_;
    std::vector<std::uint32_t> freeList_;
    std::uint64_t nextUid_ = 0;
};

} // namespace rat::core

#endif // RAT_CORE_DYNINST_HH
