/**
 * @file
 * Dynamic (in-flight) instruction record and the generation-checked
 * arena that owns all of them.
 *
 * Handles are (slot, generation) pairs: any stale reference — e.g. a
 * completion event for an instruction that was squashed — fails the
 * generation check and is ignored. This is what makes squash (branch
 * flush, FLUSH policy, runahead exit) safe without hunting down every
 * outstanding reference.
 */

#ifndef RAT_CORE_DYNINST_HH
#define RAT_CORE_DYNINST_HH

#include <cstdint>
#include <vector>

#include "branch/perceptron.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "trace/microop.hh"

namespace rat::core {

/** Rename-map entry encoding: a physical register or a sentinel. */
using MapEntry = std::uint16_t;
/** Value committed to the architectural file (no rename reg held). */
inline constexpr MapEntry kMapArch = 0xFFFE;
/** Value is runahead-invalid (INV); no rename reg held. */
inline constexpr MapEntry kMapInv = 0xFFFD;

/** True if the map entry names a real physical register. */
constexpr bool
isPhysEntry(MapEntry e)
{
    return e != kMapArch && e != kMapInv;
}

/** Lifecycle of a dynamic instruction. */
enum class InstStatus : std::uint8_t {
    InFetchQueue, ///< fetched, waiting for rename eligibility
    InQueue,      ///< renamed, waiting in an issue queue
    Executing,    ///< issued to a functional unit / memory
    Complete,     ///< result produced (or folded INV), awaiting retire
    Retired,      ///< committed or pseudo-retired (slot about to free)
};

/** Readiness state of one renamed source operand. */
enum class SrcState : std::uint8_t {
    Ready,   ///< value available
    Waiting, ///< waiting on a physical register tag
    Invalid, ///< runahead INV operand
};

/** Generation-checked reference to a pooled DynInst. */
struct InstHandle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;

    bool operator==(const InstHandle &o) const
    {
        return slot == o.slot && gen == o.gen;
    }
    bool operator!=(const InstHandle &o) const { return !(*this == o); }
};

/** One in-flight instruction. */
struct DynInst {
    // Identity.
    std::uint64_t uid = 0; ///< global age order (monotonic)
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
    ThreadId tid = 0;
    trace::MicroOp op;

    InstStatus status = InstStatus::InFetchQueue;
    /** Runahead-invalid: folded, result meaningless. */
    bool inv = false;
    /** Fetched while the thread was in runahead mode. */
    bool runahead = false;
    /** Never entered an issue queue (folded at rename or wakeup). */
    bool folded = false;

    // Rename state.
    bool renamed = false;
    bool dstIsFp = false;
    MapEntry dstPhys = kMapInv;  ///< allocated rename reg (if any)
    bool hasDstReg = false;      ///< dstPhys holds a live rename reg
    MapEntry prevMap = kMapArch; ///< map entry this instruction replaced
    /** Allocation generation of prevMap when it names a register. */
    std::uint16_t prevMapGen = 0;

    // Source operands after rename. srcIsFp tells which file a tag
    // belongs to.
    static constexpr unsigned kMaxSrcs = 4;
    MapEntry srcTag[kMaxSrcs] = {};
    SrcState srcState[kMaxSrcs] = {};
    bool srcIsFp[kMaxSrcs] = {};
    std::uint8_t numSrcs = 0;

    // Memory state.
    bool memIssued = false;
    mem::HitLevel memLevel = mem::HitLevel::L1;
    /** Store this load waits on for forwarding (0 = none). */
    std::uint64_t depStoreUid = 0;
    bool forwarded = false;
    /** Counted in the thread's pending-L2-miss tally. */
    bool countedL2Miss = false;
    /**
     * The access is long-latency: a fresh L2 miss or a merge with an
     * in-flight fill that completes far in the future. Long-latency
     * loads trigger/fold under runahead and count as pending misses.
     */
    bool longLatency = false;

    // Branch state.
    bool predTaken = false;
    bool mispredicted = false;
    branch::PerceptronOutput pred{};

    // Timing.
    Cycle fetchedAt = 0;
    Cycle renameReadyAt = 0; ///< when it may leave the fetch queue
    Cycle completeAt = kNoCycle;

    /** Handle to this instruction. */
    InstHandle handle() const { return {slot, gen}; }

    /** All sources ready (none waiting, none invalid)? */
    bool
    allSrcsReady() const
    {
        for (unsigned i = 0; i < numSrcs; ++i) {
            if (srcState[i] != SrcState::Ready)
                return false;
        }
        return depStoreUid == 0;
    }

    /** Any source invalid? */
    bool
    anySrcInvalid() const
    {
        for (unsigned i = 0; i < numSrcs; ++i) {
            if (srcState[i] == SrcState::Invalid)
                return true;
        }
        return false;
    }
};

/**
 * Fixed-capacity arena of DynInst with generation-checked handles.
 */
class InstPool
{
  public:
    explicit InstPool(std::size_t capacity)
    {
        slots_.resize(capacity);
        freeList_.reserve(capacity);
        for (std::size_t i = capacity; i-- > 0;)
            freeList_.push_back(static_cast<std::uint32_t>(i));
        for (std::size_t i = 0; i < capacity; ++i) {
            slots_[i].slot = static_cast<std::uint32_t>(i);
            slots_[i].gen = 1;
        }
    }

    /** Allocate a fresh instruction; panics if the pool is exhausted. */
    DynInst *
    alloc(ThreadId tid)
    {
        RAT_ASSERT(!freeList_.empty(), "instruction pool exhausted");
        const std::uint32_t slot = freeList_.back();
        freeList_.pop_back();
        DynInst &inst = slots_[slot];
        const std::uint32_t gen = inst.gen + 1;
        inst = DynInst{};
        inst.slot = slot;
        inst.gen = gen;
        inst.uid = ++nextUid_;
        inst.tid = tid;
        return &inst;
    }

    /** Return an instruction to the pool; its handles become stale. */
    void
    release(DynInst *inst)
    {
        RAT_ASSERT(inst != nullptr, "releasing null instruction");
        ++inst->gen; // invalidate outstanding handles
        freeList_.push_back(inst->slot);
    }

    /** Resolve a handle; nullptr if stale. */
    DynInst *
    get(InstHandle h)
    {
        if (h.slot >= slots_.size())
            return nullptr;
        DynInst &inst = slots_[h.slot];
        return inst.gen == h.gen ? &inst : nullptr;
    }

    /** Number of live instructions. */
    std::size_t
    liveCount() const
    {
        return slots_.size() - freeList_.size();
    }

    /** Total capacity. */
    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<DynInst> slots_;
    std::vector<std::uint32_t> freeList_;
    std::uint64_t nextUid_ = 0;
};

} // namespace rat::core

#endif // RAT_CORE_DYNINST_HH
