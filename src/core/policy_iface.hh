/**
 * @file
 * Abstract interface between the SMT core and the fetch / resource
 * scheduling policies (ICOUNT, STALL, FLUSH, DCRA, Hill Climbing).
 *
 * The core calls the policy once per cycle for the fetch priority order,
 * consults per-thread gating, and delivers long-latency-load events at
 * their detection time (one L2-lookup latency after issue, matching the
 * trigger the STALL/FLUSH paper uses).
 */

#ifndef RAT_CORE_POLICY_IFACE_HH
#define RAT_CORE_POLICY_IFACE_HH

#include <vector>

#include "common/types.hh"

namespace rat::core {

class SmtCore;
struct DynInst;

/**
 * Base class of all scheduling policies. Stateless policies only
 * implement fetchOrder(); resource-control policies add gating and
 * event handling.
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Called once when the core is constructed or reset. */
    virtual void reset(const SmtCore &core) { (void)core; }

    /** Called at the start of every cycle, before any stage runs. */
    virtual void beginCycle(SmtCore &core) { (void)core; }

    /**
     * Produce the fetch priority order (highest priority first). The
     * core then skips unfetchable threads itself.
     */
    virtual void fetchOrder(const SmtCore &core,
                            std::vector<ThreadId> &order) = 0;

    /** Per-thread fetch gate (resource caps, stall-on-miss, ...). */
    virtual bool
    mayFetch(const SmtCore &core, ThreadId tid)
    {
        (void)core;
        (void)tid;
        return true;
    }

    /**
     * A demand load of @p tid has been identified as an L2 miss (fired
     * one L2 latency after issue). FLUSH reacts by squashing.
     */
    virtual void
    onL2MissDetected(SmtCore &core, ThreadId tid, const DynInst &inst)
    {
        (void)core;
        (void)tid;
        (void)inst;
    }

    // --- cycle-skipping contract (DESIGN.md, "Cycle skipping") -------------

    /**
     * Earliest future cycle at which the *passage of time alone* can
     * change this policy's behaviour — a beginCycle() epoch boundary,
     * an activity-window expiry, a sampling interval — assuming no core
     * event (completion, commit, fetch, squash) happens before it. The
     * core clamps quiescent fast-forwards to this horizon so the policy
     * observes every such boundary at exactly the cycle it would have
     * under per-cycle ticking. Return kNoCycle when behaviour depends
     * only on core events (ICOUNT, RR, STALL, FLUSH, MLP).
     *
     * Contract for overriders: between @p now and the returned cycle,
     * given unchanged core state, beginCycle() must be a no-op and
     * fetchOrder()/mayFetch() must keep returning the same answers.
     */
    virtual Cycle
    quiescentUntil(const SmtCore &core, Cycle now) const
    {
        (void)core;
        (void)now;
        return kNoCycle;
    }

    /**
     * @p skipped provably-idle cycles were elided by the core: advance
     * any per-invocation counters (round-robin cursors, tiebreaks)
     * exactly as if beginCycle() + fetchOrder() had been called once
     * per skipped cycle, so the policy's state is bit-identical to the
     * ticked execution when simulation resumes.
     */
    virtual void
    onCyclesSkipped(const SmtCore &core, Cycle skipped)
    {
        (void)core;
        (void)skipped;
    }

    /** Policy display name. */
    virtual const char *name() const = 0;
};

} // namespace rat::core

#endif // RAT_CORE_POLICY_IFACE_HH
