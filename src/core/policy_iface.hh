/**
 * @file
 * Abstract interface between the SMT core and the fetch / resource
 * scheduling policies (ICOUNT, STALL, FLUSH, DCRA, Hill Climbing).
 *
 * The core calls the policy once per cycle for the fetch priority order,
 * consults per-thread gating, and delivers long-latency-load events at
 * their detection time (one L2-lookup latency after issue, matching the
 * trigger the STALL/FLUSH paper uses).
 */

#ifndef RAT_CORE_POLICY_IFACE_HH
#define RAT_CORE_POLICY_IFACE_HH

#include <vector>

#include "common/types.hh"

namespace rat::core {

class SmtCore;
struct DynInst;

/**
 * Base class of all scheduling policies. Stateless policies only
 * implement fetchOrder(); resource-control policies add gating and
 * event handling.
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Called once when the core is constructed or reset. */
    virtual void reset(const SmtCore &core) { (void)core; }

    /** Called at the start of every cycle, before any stage runs. */
    virtual void beginCycle(SmtCore &core) { (void)core; }

    /**
     * Produce the fetch priority order (highest priority first). The
     * core then skips unfetchable threads itself.
     */
    virtual void fetchOrder(const SmtCore &core,
                            std::vector<ThreadId> &order) = 0;

    /** Per-thread fetch gate (resource caps, stall-on-miss, ...). */
    virtual bool
    mayFetch(const SmtCore &core, ThreadId tid)
    {
        (void)core;
        (void)tid;
        return true;
    }

    /**
     * A demand load of @p tid has been identified as an L2 miss (fired
     * one L2 latency after issue). FLUSH reacts by squashing.
     */
    virtual void
    onL2MissDetected(SmtCore &core, ThreadId tid, const DynInst &inst)
    {
        (void)core;
        (void)tid;
        (void)inst;
    }

    /** Policy display name. */
    virtual const char *name() const = 0;
};

} // namespace rat::core

#endif // RAT_CORE_POLICY_IFACE_HH
