/**
 * @file
 * Physical (rename) register file and per-thread rename maps.
 *
 * The register model follows the rename-buffer organisation implied by
 * the paper's Section 6.2: each thread's 32+32 architectural values live
 * in per-context architectural state, while the INT/FP "registers" of
 * Table 1 (320/320) are the *renaming* registers shared by all threads.
 * A renaming register is held from rename until the owning instruction
 * commits (value moves to architectural state) — or, under Runahead
 * Threads, until the instruction is invalidated or pseudo-retired, which
 * is the early-release property Figures 5 and 6 measure.
 */

#ifndef RAT_CORE_REGFILE_HH
#define RAT_CORE_REGFILE_HH

#include <array>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/dyninst.hh"

namespace rat::core {

/**
 * One waiter-list node reference: a consuming instruction plus which of
 * its source operands waits on the register (see DESIGN.md,
 * "Event-driven wakeup").
 */
struct RegWaiter {
    DynInst *inst = nullptr;
    std::uint8_t src = 0;
};

/**
 * One class (INT or FP) of shared renaming registers.
 */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned num_regs) : regs_(num_regs)
    {
        freeList_.reserve(num_regs);
        for (unsigned i = num_regs; i-- > 0;)
            freeList_.push_back(static_cast<PhysReg>(i));
    }

    /** Number of registers not currently allocated. */
    unsigned freeCount() const
    {
        return static_cast<unsigned>(freeList_.size());
    }

    /** Number currently allocated (Fig. 5 occupancy). */
    unsigned allocatedCount() const
    {
        return static_cast<unsigned>(regs_.size() - freeList_.size());
    }

    /** Total size of this file. */
    unsigned size() const { return static_cast<unsigned>(regs_.size()); }

    /** Allocate one register (not-ready). Caller must check freeCount. */
    PhysReg
    allocate()
    {
        RAT_ASSERT(!freeList_.empty(), "rename register underflow");
        const PhysReg r = freeList_.back();
        freeList_.pop_back();
        regs_[r].allocated = true;
        regs_[r].ready = false;
        ++regs_[r].gen;
        return r;
    }

    /** Is the register currently allocated? */
    bool
    isAllocated(PhysReg r) const
    {
        RAT_ASSERT(r < regs_.size(), "bad register %u", r);
        return regs_[r].allocated;
    }

    /**
     * Allocation generation of a register. A saved mapping is only
     * restorable while the register still holds the same allocation;
     * squash-walk restores compare generations to detect mappings whose
     * producer has committed (and the register been recycled) — those
     * restore to architecturally-backed state instead.
     */
    std::uint16_t
    allocGen(PhysReg r) const
    {
        RAT_ASSERT(r < regs_.size(), "bad register %u", r);
        return regs_[r].gen;
    }

    /** Release a register back to the free list. */
    void
    release(PhysReg r)
    {
        RAT_ASSERT(r < regs_.size() && regs_[r].allocated,
                   "releasing free register %u", r);
        // Waiters are consumed at wakeup or unlinked at squash before
        // the producing instruction can release its register; a live
        // waiter here would dangle across reallocation.
        RAT_ASSERT(regs_[r].waiter.inst == nullptr,
                   "releasing register %u with live waiters", r);
        regs_[r].allocated = false;
        freeList_.push_back(r);
    }

    // --- consumer waiter lists (event-driven wakeup) -------------------

    /** Head of the register's consumer waiter list. */
    RegWaiter
    waiterHead(PhysReg r) const
    {
        RAT_ASSERT(r < regs_.size(), "bad register %u", r);
        return regs_[r].waiter;
    }

    /** Overwrite the waiter-list head (unlink of the first node). */
    void
    setWaiterHead(PhysReg r, RegWaiter w)
    {
        RAT_ASSERT(r < regs_.size(), "bad register %u", r);
        regs_[r].waiter = w;
    }

    /** Detach and return the whole waiter list (wakeup consumes it). */
    RegWaiter
    takeWaiters(PhysReg r)
    {
        RAT_ASSERT(r < regs_.size(), "bad register %u", r);
        const RegWaiter w = regs_[r].waiter;
        regs_[r].waiter = {};
        return w;
    }

    /** Value availability of an allocated register. */
    bool
    isReady(PhysReg r) const
    {
        RAT_ASSERT(r < regs_.size(), "bad register %u", r);
        return regs_[r].ready;
    }

    /** Mark a register's value produced. */
    void
    setReady(PhysReg r)
    {
        RAT_ASSERT(r < regs_.size() && regs_[r].allocated,
                   "setReady on free register %u", r);
        regs_[r].ready = true;
    }

  private:
    struct Reg {
        bool allocated = false;
        bool ready = false;
        std::uint16_t gen = 0;
        /** First (inst, src) node waiting on this register's value. */
        RegWaiter waiter{};
    };

    std::vector<Reg> regs_;
    std::vector<PhysReg> freeList_;
};

/**
 * Per-thread rename map for one register class: architectural register →
 * MapEntry (renaming register, architectural backing, or runahead-INV).
 */
class RenameMap
{
  public:
    RenameMap() { reset(); }

    /** All entries back to committed architectural state. */
    void
    reset()
    {
        map_.fill(kMapArch);
    }

    /** Current mapping of @p arch. */
    MapEntry get(ArchReg arch) const { return map_[arch]; }

    /** Overwrite the mapping, returning the previous entry. */
    MapEntry
    set(ArchReg arch, MapEntry entry)
    {
        const MapEntry prev = map_[arch];
        map_[arch] = entry;
        return prev;
    }

    /** Number of entries currently naming renaming registers. */
    unsigned
    livePhysCount() const
    {
        unsigned n = 0;
        for (MapEntry e : map_) {
            if (isPhysEntry(e))
                ++n;
        }
        return n;
    }

  private:
    std::array<MapEntry, kNumArchRegs> map_;
};

} // namespace rat::core

#endif // RAT_CORE_REGFILE_HH
