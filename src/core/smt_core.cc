#include "core/smt_core.hh"

#include <algorithm>
#include <cstdio>

#include "check/auditor.hh"
#include "check/digest.hh"
#include "common/logging.hh"

namespace rat::core {

const char *
checkLevelName(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off:
        return "off";
      case CheckLevel::Sampled:
        return "sampled";
      case CheckLevel::Full:
        return "full";
    }
    return "?";
}

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::RoundRobin:
        return "RR";
      case PolicyKind::Icount:
        return "ICOUNT";
      case PolicyKind::Stall:
        return "STALL";
      case PolicyKind::Flush:
        return "FLUSH";
      case PolicyKind::Dcra:
        return "DCRA";
      case PolicyKind::HillClimbing:
        return "HillClimbing";
      case PolicyKind::Rat:
        return "RaT";
      case PolicyKind::RatDcra:
        return "RaT+DCRA";
      case PolicyKind::MlpAware:
        return "MLP";
    }
    return "?";
}

SmtCore::SmtCore(const CoreConfig &config, mem::MemoryHierarchy &mem,
                 SchedulingPolicy &policy,
                 std::vector<const trace::TraceSource *> streams)
    : config_(config), mem_(mem), policy_(policy),
      pool_(config.robEntries +
            static_cast<std::size_t>(config.numThreads) *
                config.fetchQueueEntries +
            64),
      rob_(config.robEntries),
      iqs_{IssueQueue{"intIQ", config.intIqEntries,
                      config.broadcastScheduler},
           IssueQueue{"lsIQ", config.lsIqEntries,
                      config.broadcastScheduler},
           IssueQueue{"fpIQ", config.fpIqEntries,
                      config.broadcastScheduler}},
      lsq_(config.lsqEntries, config.broadcastScheduler),
      intRegs_(config.intRegs),
      fpRegs_(config.fpRegs), intUnits_("intFU", config.intUnits),
      fpUnits_("fpFU", config.fpUnits), memUnits_("memFU", config.memUnits),
      predictor_(config.predictor), btb_(), raEngine_(config.rat)
{
    if (config.numThreads == 0 || config.numThreads > kMaxThreads)
        fatal("numThreads %u out of range [1,%u]", config.numThreads,
              kMaxThreads);
    if (streams.size() != config.numThreads)
        fatal("need %u trace streams, got %zu", config.numThreads,
              streams.size());
    threads_.resize(config.numThreads);
    for (unsigned t = 0; t < config.numThreads; ++t) {
        RAT_ASSERT(streams[t] != nullptr, "null trace stream");
        threads_[t].gen = streams[t];
        if (!config_.broadcastScheduler)
            threads_[t].traceMemo.resize(kTraceMemoSize);
    }
    policy_.reset(*this);
}

unsigned
SmtCore::opLatency(trace::OpClass op)
{
    using trace::OpClass;
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Return:
      case OpClass::Lock:
      case OpClass::Unlock:
        return 1;
      case OpClass::IntMul:
        return 3;
      case OpClass::IntDiv:
        return 20;
      case OpClass::FpAdd:
        return 2;
      case OpClass::FpMul:
        return 4;
      case OpClass::FpDiv:
        return 12;
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::FpLoad:
      case OpClass::FpStore:
        return 1; // AGU; cache latency added by the hierarchy
      case OpClass::NumClasses:
        break;
    }
    panic("opLatency on invalid op class");
}

unsigned
SmtCore::fuOccupancy(trace::OpClass op)
{
    // Divides are unpipelined and hold their unit for the full latency.
    if (op == trace::OpClass::IntDiv || op == trace::OpClass::FpDiv)
        return opLatency(op);
    return 1;
}

FuncUnitPool &
SmtCore::poolOf(trace::OpClass op)
{
    if (trace::isMemOp(op))
        return memUnits_;
    if (trace::isFpComputeOp(op))
        return fpUnits_;
    return intUnits_;
}

void
SmtCore::run(Cycle n)
{
    const Cycle end = cycle_ + n;
    if (!config_.cycleSkipping) {
        while (cycle_ < end)
            tick();
        return;
    }

    // Quiescence-aware fast path: after a tick that did no work, every
    // cycle up to (but excluding) the next event is provably a no-op —
    // skip straight to it. The run boundary clamps the skip, so a
    // caller-visible phase boundary (e.g. the simulator's
    // warmup→measure resetStats) is never crossed.
    while (cycle_ < end) {
        tick();
        if (tickActivity_ || cycle_ >= end)
            continue;
        const Cycle next = nextEventCycle();
        const Cycle target = next < end ? next : end;
        if (target > cycle_)
            skipTo(target);
    }
}

Cycle
SmtCore::nextEventCycle() const
{
    Cycle next = kNoCycle;
    const auto clamp = [&next](Cycle at) {
        if (at < next)
            next = at;
    };

    // Timed events already scheduled. Stale heap entries (folded or
    // squashed instructions) only make this conservative: the tick at
    // their time pops them, does nothing, and skipping resumes.
    if (!completions_.empty())
        clamp(completions_.top().at);
    if (!l2Detections_.empty())
        clamp(l2Detections_.top().at);

    // Earliest outstanding line fill. Strictly a subset of the cases
    // above would suffice (every access that can unblock the core has a
    // completion event or a per-thread horizon), but fills also retire
    // MSHR entries that gate rejected accesses, so clamp on them too —
    // a too-early stop is only a wasted no-op tick, never wrong.
    clamp(mem_.nextFillCompletion(cycle_));

    const bool rob_full = rob_.full();
    for (unsigned tid = 0; tid < config_.numThreads; ++tid) {
        const ThreadState &t = threads_[tid];
        const bool in_ra = raEngine_.inRunahead(static_cast<ThreadId>(tid));
        // Runahead exit fires the first cycle >= the engine's horizon.
        if (in_ra)
            clamp(raEngine_.exitAt(static_cast<ThreadId>(tid)));
        // Fetch re-enables the first cycle >= fetchBlockedUntil — but
        // only when time is what blocks it. A thread gated by an
        // unresolved branch, a full fetch queue or the no-fetch
        // ablation can only be released by a core event, and the
        // releasing tick is active, so quiescence is re-evaluated (and
        // this clamp re-applied) before any skip could overshoot.
        const bool fetch_event_gated =
            t.waitingBranch ||
            t.fetchQueue.size() >= config_.fetchQueueEntries ||
            (config_.rat.noFetchInRunahead && in_ra) ||
            raEngine_.fetchSuppressed(static_cast<ThreadId>(tid));
        if (!fetch_event_gated && t.fetchBlockedUntil >= cycle_)
            clamp(t.fetchBlockedUntil);
        // The fetch-queue head becomes renameable at renameReadyAt.
        // With the ROB full, rename (including the runahead fold path,
        // which also allocates a ROB slot) stays blocked until a commit
        // frees an entry — an event, so no time clamp is needed.
        if (!rob_full) {
            if (const DynInst *head = t.fetchQueue.head()) {
                if (head->renameReadyAt >= cycle_)
                    clamp(head->renameReadyAt);
            }
        }
    }

    // Policy-imposed horizon (epoch boundaries, activity windows).
    clamp(policy_.quiescentUntil(*this, cycle_));
    return next;
}

void
SmtCore::skipTo(Cycle target)
{
    RAT_ASSERT(target > cycle_, "skipTo must move the clock forward");
    const Cycle span = target - cycle_;
    const unsigned n = config_.numThreads;

    // Analytic integration of sampleCycle() over the span: per-thread
    // mode and register occupancy are constant while quiescent.
    for (unsigned tid = 0; tid < n; ++tid) {
        const ThreadState &t = threads_[tid];
        ThreadStats &s = stats_[tid];
        const unsigned held = t.intRegsHeld + t.fpRegsHeld;
        if (raEngine_.inRunahead(static_cast<ThreadId>(tid))) {
            s.runaheadCycles += span;
            s.runaheadRegCycles += span * held;
        } else {
            s.normalCycles += span;
            s.normalRegCycles += span * held;
        }
    }

    // Per-cycle rotation cursors advance once per tick regardless of
    // work; replay the elided ticks' increments in closed form.
    renameRR_ = static_cast<unsigned>((renameRR_ + span) % n);
    commitRR_ = static_cast<unsigned>((commitRR_ + span) % n);

    // The broadcast reference rescans every issue-queue entry each
    // cycle even when none is ready; integrate its visit counter so the
    // reference's work accounting stays bit-identical to ticking.
    if (config_.broadcastScheduler) {
        std::uint64_t per_cycle = 0;
        for (const auto &iq : iqs_)
            per_cycle += iq.size();
        sched_.readySelectVisits += span * per_cycle;
    }

    policy_.onCyclesSkipped(*this, span);

    // Window boundaries crossed by the span: every counter and
    // occupancy the sampler reads is constant while quiescent, so the
    // samples a ticked run would have taken at each boundary are
    // exactly the current values.
    while (sampler_ && sampler_->nextAt() <= target)
        takeTelemetrySample();

    // Digest boundaries crossed by the span. The enumeration the
    // digest hashes excludes everything skipTo changed above (the
    // per-cycle integrals, cursors and scan counters are host-mode
    // artifacts), so the digest a ticked run would have produced at
    // each boundary is exactly the current state's. The armed fault
    // injection replays with tick semantics: a boundary B reflects the
    // mutation iff a tick at cycle B-1 would have applied it.
    while (digests_ && digests_->nextAt() <= target) {
        if (mutateAt_ != kNoCycle && mutateAt_ < digests_->nextAt())
            applyMutation();
        digests_->sampleAt(*this);
    }
    if (mutateAt_ != kNoCycle && mutateAt_ < target)
        applyMutation();

    if (traceMask_ & obs::kCatSched)
        tracer_->recordCore(obs::EventKind::CycleSkip, cycle_, target);

    skip_.skippedCycles += span;
    ++skip_.skipSpans;
    cycle_ = target;
}

void
SmtCore::prewarm(InstSeq insts)
{
    mem::Cache &l1i = mem_.l1i();
    mem::Cache &l1d = mem_.l1d();
    mem::Cache &l2 = mem_.l2();
    Addr evicted = 0;

    for (InstSeq i = 0; i < insts; ++i) {
        // Interleave threads so the shared L2's replacement state sees
        // the same competition it will see during timing simulation.
        for (unsigned t = 0; t < config_.numThreads; ++t) {
            ThreadState &ts = threads_[t];
            const trace::MicroOp op = ts.gen->at(ts.nextSeq + i);
            const Cycle pseudo_now =
                static_cast<Cycle>(prewarmedInsts_) + i;

            l1i.install(l1i.lineAlign(op.pc), pseudo_now, pseudo_now,
                        evicted);
            l2.install(l2.lineAlign(op.pc), pseudo_now, pseudo_now,
                       evicted);
            if (trace::isMemOp(op.op)) {
                l1d.install(l1d.lineAlign(op.effAddr), pseudo_now,
                            pseudo_now, evicted);
                l2.install(l2.lineAlign(op.effAddr), pseudo_now,
                           pseudo_now, evicted);
            }
            if (op.op == trace::OpClass::Branch) {
                const auto out = predictor_.predict(
                    static_cast<ThreadId>(t), op.pc);
                predictor_.update(static_cast<ThreadId>(t), op.pc,
                                  op.taken, out);
            }
            if (op.taken && (op.op == trace::OpClass::Branch ||
                             op.op == trace::OpClass::Call)) {
                btb_.update(op.pc, op.target);
            }
        }
    }
    for (unsigned t = 0; t < config_.numThreads; ++t)
        threads_[t].nextSeq += insts;
    prewarmedInsts_ += insts;

    // The pseudo-time used for LRU stamps must lie in the past of all
    // timing cycles, so fast-forward the core clock past it.
    cycle_ = std::max(cycle_, static_cast<Cycle>(prewarmedInsts_) + 1);
}

void
SmtCore::tick()
{
    // Verify-mode hooks (both disarmed in normal runs): the fault
    // injection fires at the first tick at or after its cycle, and the
    // save/restore leg round-trips the engine's episode checkpoint.
    if (mutateAt_ != kNoCycle && cycle_ >= mutateAt_)
        applyMutation();
    if (ckptEvery_ && cycle_ % ckptEvery_ == 0) {
        const bool ok =
            raEngine_.decodeEpisodes(raEngine_.encodeEpisodes());
        RAT_ASSERT(ok, "episode checkpoint blob failed to decode");
    }

    tickActivity_ = false;
    policy_.beginCycle(*this);
    processCompletions();
    checkRunaheadTransitions();
    commitStage();
    issueStage();
    renameStage();
    fetchStage();
    sampleCycle();
    if (auditDue())
        runAudit();
    ++cycle_;
}

void
SmtCore::runAudit()
{
    const check::AuditReport report = check::Auditor::audit(*this);
    if (report.ok())
        return;
    fatal("invariant audit failed at cycle %llu "
          "(%zu violation%s):\n%s",
          static_cast<unsigned long long>(cycle_),
          report.failures.size(),
          report.failures.size() == 1 ? "" : "s",
          report.format().c_str());
}

void
SmtCore::applyMutation()
{
    // Single-bit and behaviour-neutral by construction: the committed
    // counter feeds results and digests, never a scheduling decision,
    // so the injected fault is visible to `ratsim verify` alone.
    stats_[0].committedInsts ^= 1;
    mutateAt_ = kNoCycle;
}

void
SmtCore::setDigestCollector(check::DigestCollector *collector)
{
    digests_ = collector;
}

void
SmtCore::resetStats()
{
    stats_ = {};
    sched_ = {};
    skip_ = {};
    predictor_.resetStats();
    btb_.resetStats();
    raEngine_.resetStats();
}

// ---------------------------------------------------------------------------
// Completion / writeback
// ---------------------------------------------------------------------------

void
SmtCore::processCompletions()
{
    while (!completions_.empty() && completions_.top().at <= cycle_) {
        const InstHandle h = completions_.top().inst;
        completions_.pop();
        tickActivity_ = true;
        DynInst *inst = pool_.get(h);
        if (!inst || inst->status != InstStatus::Executing)
            continue; // squashed or folded since scheduling
        completeInst(*inst);
    }

    // Long-latency detection events for the policies (STALL/FLUSH/DCRA
    // learn about an L2 miss one L2 lookup after issue).
    while (!l2Detections_.empty() && l2Detections_.top().at <= cycle_) {
        const InstHandle h = l2Detections_.top().inst;
        l2Detections_.pop();
        tickActivity_ = true;
        DynInst *inst = pool_.get(h);
        if (!inst || !inst->countedL2Miss)
            continue;
        if (raEngine_.inRunahead(inst->tid))
            continue;
        policy_.onL2MissDetected(*this, inst->tid, *inst);
    }

    // Drain any INV cascade started by the wakeups above.
    drainFolds();
}

void
SmtCore::drainFolds()
{
    if (!foldQueue_.empty())
        tickActivity_ = true;
    while (!foldQueue_.empty()) {
        const InstHandle h = foldQueue_.back();
        foldQueue_.pop_back();
        if (DynInst *inst = pool_.get(h))
            foldInst(*inst);
    }
}

void
SmtCore::completeInst(DynInst &inst)
{
    ThreadState &t = threads_[inst.tid];
    inst.status = InstStatus::Complete;

    if (inst.countedL2Miss) {
        RAT_ASSERT(t.pendingL2Misses > 0, "pending L2 miss underflow");
        --t.pendingL2Misses;
        inst.countedL2Miss = false;
    }

    if (inst.hasDstReg) {
        fileOf(inst.dstIsFp).setReady(inst.dstPhys);
        wakeConsumers(inst.dstIsFp, inst.dstPhys, /*inv=*/false);
    }

    if (trace::isStoreOp(inst.op.op))
        wakeStoreDependents(inst, /*inv=*/false);

    if (trace::isControlOp(inst.op.op))
        resolveControl(inst);

    // Drain the INV cascade possibly started by the wakeups.
    drainFolds();
}

void
SmtCore::resolveControl(DynInst &inst)
{
    ThreadState &t = threads_[inst.tid];
    if (inst.op.op == trace::OpClass::Branch) {
        ++stats_[inst.tid].branches;
        if (inst.mispredicted)
            ++stats_[inst.tid].branchMispredicts;
        predictor_.update(inst.tid, inst.op.pc, inst.op.taken, inst.pred);
    }
    if (inst.op.taken && (inst.op.op == trace::OpClass::Branch ||
                          inst.op.op == trace::OpClass::Call)) {
        btb_.update(inst.op.pc, inst.op.target);
    }
    if (inst.mispredicted && t.waitingBranch &&
        t.blockingBranch == inst.handle()) {
        t.waitingBranch = false;
        t.fetchBlockedUntil = std::max(
            t.fetchBlockedUntil, cycle_ + Cycle{config_.mispredictRedirect});
    }
}

void
SmtCore::wakeConsumers(bool is_fp, MapEntry tag, bool inv)
{
    if (config_.broadcastScheduler) {
        wakeConsumersBroadcast(is_fp, tag, inv);
        return;
    }

    // Event-driven: the register carries the exact list of waiting
    // (instruction, source) nodes; consume it wholesale. Nodes of
    // instructions folded since they linked are skipped — they retire
    // later and unlink any remaining nodes then.
    RegWaiter w = fileOf(is_fp).takeWaiters(static_cast<PhysReg>(tag));
    while (w.inst) {
        ++sched_.regWakeVisits;
        DynInst *c = w.inst;
        const unsigned src = w.src;
        w = {c->wakeNext[src], c->wakeNextSrc[src]};
        c->wakeNext[src] = c->wakePrev[src] = nullptr;
        c->onWaiterList[src] = false;
        refreshWaiterMask(*c);
        RAT_ASSERT(c->srcIsFp[src] == is_fp && c->srcTag[src] == tag,
                   "waiter node on the wrong register list");
        if (c->status != InstStatus::InQueue)
            continue; // folded since it linked
        RAT_ASSERT(c->srcState[src] == SrcState::Waiting,
                   "linked source no longer waiting");
        c->srcState[src] = inv ? SrcState::Invalid : SrcState::Ready;
        if (inv)
            foldQueue_.push_back(c->handle());
        else
            pushReady(*c);
    }
}

void
SmtCore::wakeConsumersBroadcast(bool is_fp, MapEntry tag, bool inv)
{
    // The seed implementation, verbatim: scan every entry of every
    // issue queue through a generation-checked handle on each register
    // writeback.
    for (auto &iq : iqs_) {
        for (const InstHandle h : iq.legacyHandles()) {
            ++sched_.regWakeVisits;
            DynInst *c = pool_.get(h);
            if (!c || c->status != InstStatus::InQueue)
                continue;
            for (unsigned i = 0; i < c->numSrcs; ++i) {
                if (c->srcState[i] == SrcState::Waiting &&
                    c->srcIsFp[i] == is_fp && c->srcTag[i] == tag) {
                    c->srcState[i] =
                        inv ? SrcState::Invalid : SrcState::Ready;
                    if (inv)
                        foldQueue_.push_back(h);
                }
            }
        }
    }
}

void
SmtCore::wakeStoreDependents(DynInst &store, bool inv)
{
    if (config_.broadcastScheduler) {
        wakeStoreDependentsBroadcast(store, inv);
        return;
    }

    DynInst *c = store.depHead;
    store.depHead = nullptr;
    store.schedLinkMask &= static_cast<std::uint8_t>(~DynInst::kDepHead);
    while (c) {
        ++sched_.storeWakeVisits;
        DynInst *next = c->depNext;
        c->depNext = c->depPrev = nullptr;
        c->depStore = nullptr;
        c->onDepList = false;
        c->schedLinkMask &= static_cast<std::uint8_t>(~DynInst::kDepLink);
        // Loads folded since they linked keep their stale dependence
        // tag, exactly like the broadcast scan (which no longer saw
        // them once they left the memory IQ).
        if (c->status == InstStatus::InQueue &&
            c->depStoreUid == store.uid) {
            c->depStoreUid = 0;
            if (inv)
                foldQueue_.push_back(c->handle());
            else
                pushReady(*c);
        }
        c = next;
    }
}

DynInst *
SmtCore::legacyStoreForwardMatch(const DynInst &load, Addr line)
{
    // Seed walk: the whole per-thread memory-op deque, handle-checked.
    DynInst *match = nullptr;
    for (const InstHandle h : lsq_.legacyThreadList(load.tid)) {
        DynInst *other = pool_.get(h);
        if (!other || other->uid >= load.uid)
            break; // program-ordered: done once we reach self
        if (trace::isStoreOp(other->op.op) &&
            mem_.l1d().lineAlign(other->op.effAddr) == line) {
            match = other;
        }
    }
    return match;
}

void
SmtCore::wakeStoreDependentsBroadcast(const DynInst &store, bool inv)
{
    IssueQueue &mem_iq = queueOf(IqClass::Mem);
    for (const InstHandle h : mem_iq.legacyHandles()) {
        ++sched_.storeWakeVisits;
        DynInst *c = pool_.get(h);
        if (!c || c->depStoreUid != store.uid)
            continue;
        c->depStoreUid = 0;
        if (inv)
            foldQueue_.push_back(h);
    }
}

// ---------------------------------------------------------------------------
// Event-driven scheduler plumbing (DESIGN.md, "Event-driven wakeup")
// ---------------------------------------------------------------------------

void
SmtCore::pushReady(DynInst &inst)
{
    if (inst.status == InstStatus::InQueue && inst.allSrcsReady())
        readyQ_.push({inst.uid, inst.handle()});
}

void
SmtCore::linkWaiter(DynInst &inst, unsigned src)
{
    PhysRegFile &file = fileOf(inst.srcIsFp[src]);
    const auto r = static_cast<PhysReg>(inst.srcTag[src]);
    const RegWaiter head = file.waiterHead(r);
    inst.wakeNext[src] = head.inst;
    inst.wakeNextSrc[src] = head.src;
    inst.wakePrev[src] = nullptr;
    inst.wakePrevSrc[src] = 0;
    if (head.inst) {
        head.inst->wakePrev[head.src] = &inst;
        head.inst->wakePrevSrc[head.src] = static_cast<std::uint8_t>(src);
    }
    file.setWaiterHead(r, {&inst, static_cast<std::uint8_t>(src)});
    inst.onWaiterList[src] = true;
    inst.schedLinkMask |= DynInst::kWaiterLinks;
}

void
SmtCore::refreshWaiterMask(DynInst &inst)
{
    for (unsigned i = 0; i < inst.numSrcs; ++i) {
        if (inst.onWaiterList[i])
            return;
    }
    inst.schedLinkMask &=
        static_cast<std::uint8_t>(~DynInst::kWaiterLinks);
}

void
SmtCore::unlinkWaiter(DynInst &inst, unsigned src)
{
    if (!inst.onWaiterList[src])
        return;
    DynInst *next = inst.wakeNext[src];
    const std::uint8_t next_src = inst.wakeNextSrc[src];
    if (inst.wakePrev[src]) {
        inst.wakePrev[src]->wakeNext[inst.wakePrevSrc[src]] = next;
        inst.wakePrev[src]->wakeNextSrc[inst.wakePrevSrc[src]] = next_src;
    } else {
        fileOf(inst.srcIsFp[src])
            .setWaiterHead(static_cast<PhysReg>(inst.srcTag[src]),
                           {next, next_src});
    }
    if (next) {
        next->wakePrev[next_src] = inst.wakePrev[src];
        next->wakePrevSrc[next_src] = inst.wakePrevSrc[src];
    }
    inst.wakeNext[src] = inst.wakePrev[src] = nullptr;
    inst.onWaiterList[src] = false;
    refreshWaiterMask(inst);
}

void
SmtCore::linkStoreDependent(DynInst &store, DynInst &load)
{
    RAT_ASSERT(!load.onDepList, "load already on a dependent chain");
    load.depNext = store.depHead;
    load.depPrev = nullptr;
    if (store.depHead)
        store.depHead->depPrev = &load;
    store.depHead = &load;
    load.depStore = &store;
    load.onDepList = true;
    load.schedLinkMask |= DynInst::kDepLink;
    store.schedLinkMask |= DynInst::kDepHead;
}

void
SmtCore::unlinkStoreDependent(DynInst &load)
{
    if (!load.onDepList)
        return;
    if (load.depPrev) {
        load.depPrev->depNext = load.depNext;
    } else {
        RAT_ASSERT(load.depStore && load.depStore->depHead == &load,
                   "dependent chain head mismatch");
        load.depStore->depHead = load.depNext;
        if (!load.depNext) {
            load.depStore->schedLinkMask &=
                static_cast<std::uint8_t>(~DynInst::kDepHead);
        }
    }
    if (load.depNext)
        load.depNext->depPrev = load.depPrev;
    load.depNext = load.depPrev = nullptr;
    load.depStore = nullptr;
    load.onDepList = false;
    load.schedLinkMask &= static_cast<std::uint8_t>(~DynInst::kDepLink);
}

void
SmtCore::unlinkSched(DynInst &inst)
{
    if (inst.schedLinkMask == 0)
        return; // cleanly completed (the common case): nothing linked
    for (unsigned i = 0; i < inst.numSrcs; ++i)
        unlinkWaiter(inst, i);
    unlinkStoreDependent(inst);
    RAT_ASSERT(inst.depHead == nullptr,
               "releasing a store with live dependents");
    RAT_ASSERT(inst.schedLinkMask == 0,
               "scheduler link mask out of sync");
}

// ---------------------------------------------------------------------------
// Runahead (Section 3)
// ---------------------------------------------------------------------------

void
SmtCore::releaseDest(DynInst &inst, bool make_inv)
{
    if (!inst.hasDstReg)
        return;
    ThreadState &t = threads_[inst.tid];
    RenameMap &map = mapOf(inst.tid, inst.dstIsFp);
    if (map.get(inst.op.dst) == inst.dstPhys)
        map.set(inst.op.dst, make_inv ? kMapInv : kMapArch);
    fileOf(inst.dstIsFp).release(inst.dstPhys);
    if (inst.dstIsFp)
        --t.fpRegsHeld;
    else
        --t.intRegsHeld;
    inst.hasDstReg = false;
}

void
SmtCore::foldInst(DynInst &inst)
{
    if (inst.inv || inst.status == InstStatus::Retired)
        return;
    ThreadState &t = threads_[inst.tid];

    if (inst.status == InstStatus::InQueue) {
        queueOf(iqClassOf(inst.op.op)).remove(inst);
        --t.iqCount[static_cast<unsigned>(iqClassOf(inst.op.op))];
        RAT_ASSERT(t.icount > 0, "icount underflow on fold");
        --t.icount;
    }
    // Executing instructions can be folded at runahead entry (the
    // blocking load). Their in-flight completion event goes stale.

    inst.inv = true;
    inst.folded = true;
    inst.status = InstStatus::Complete;
    ++stats_[inst.tid].invalidInsts;

    if (inst.countedL2Miss) {
        RAT_ASSERT(t.pendingL2Misses > 0, "pending L2 miss underflow");
        --t.pendingL2Misses;
        inst.countedL2Miss = false;
    }

    // Propagate INV through the register file: wake consumers first
    // (they inherit INV), then release the register early — this is the
    // "invalid registers can be freed and used by the rest of the
    // threads" property (Section 3.3, Register control).
    if (inst.hasDstReg) {
        wakeConsumers(inst.dstIsFp, inst.dstPhys, /*inv=*/true);
        releaseDest(inst, /*make_inv=*/true);
    } else if (inst.op.hasDst && inst.renamed) {
        // Destination was never backed by a register (folded at rename);
        // the map already holds kMapInv.
    }

    if (trace::isStoreOp(inst.op.op))
        wakeStoreDependents(inst, /*inv=*/true);

    // An INV branch cannot be detected as mispredicted; the thread
    // continues past it (on the trace path — see DESIGN.md limitations).
    if (trace::isControlOp(inst.op.op) && t.waitingBranch &&
        t.blockingBranch == inst.handle()) {
        t.waitingBranch = false;
        t.fetchBlockedUntil =
            std::max(t.fetchBlockedUntil, cycle_ + Cycle{1});
    }
}

void
SmtCore::enterRunahead(ThreadId tid, DynInst &blocking_load)
{
    RAT_ASSERT(blocking_load.completeAt != kNoCycle,
               "blocking load has no completion time");

    // The engine records the checkpoint (resume point, predictor
    // history, prefetch snapshot) and lets the selected variant pick
    // the exit horizon.
    raEngine_.enter(tid, blocking_load.op, cycle_,
                    blocking_load.completeAt, predictor_.history(tid),
                    mem_.threadStats(tid).raMemPrefetches +
                        mem_.threadStats(tid).raL2Prefetches);
    ++stats_[tid].runaheadEntries;

    // Episode-entry record for the exit-time span event and the
    // episode-length histogram (cheap enough to keep unconditionally).
    raTrace_[tid] = {cycle_, blocking_load.op.pc,
                     stats_[tid].pseudoRetired};

    // The blocking load's destination becomes INV (bogus value); the
    // load pseudo-retires from the ROB head on the next commit pass.
    foldInst(blocking_load);

    // "Other long-latency loads are also invalidated just like the load
    // that started the runahead mode" (Section 3.2): every in-flight
    // L2-missing load of this thread folds now; its fill continues in
    // the hierarchy as a prefetch. Without this, runahead progress would
    // serialize behind the very misses it is meant to overlap.
    // Folding never changes LSQ membership, so the intrusive list can
    // be walked in place; the legacy reference keeps the seed's
    // defensive heap snapshot of the whole thread list.
    if (!config_.broadcastScheduler) {
        for (DynInst *inst = lsq_.head(tid); inst != nullptr;) {
            DynInst *next = inst->lsqNext;
            if (trace::isLoadOp(inst->op.op) &&
                inst->status == InstStatus::Executing && inst->memIssued &&
                inst->longLatency) {
                foldInst(*inst);
            }
            inst = next;
        }
    } else {
        const std::vector<InstHandle> mem_ops(
            lsq_.legacyThreadList(tid).begin(),
            lsq_.legacyThreadList(tid).end());
        for (const InstHandle h : mem_ops) {
            DynInst *inst = pool_.get(h);
            if (inst && trace::isLoadOp(inst->op.op) &&
                inst->status == InstStatus::Executing && inst->memIssued &&
                inst->longLatency) {
                foldInst(*inst);
            }
        }
    }

    // Drain the INV cascade now so dependants fold promptly.
    drainFolds();
}

void
SmtCore::checkRunaheadTransitions()
{
    for (unsigned tid = 0; tid < config_.numThreads; ++tid) {
        const auto t = static_cast<ThreadId>(tid);
        if (raEngine_.inRunahead(t) && cycle_ >= raEngine_.exitAt(t)) {
            tickActivity_ = true;
            exitRunahead(t);
        }
    }
}

void
SmtCore::exitRunahead(ThreadId tid)
{
    ThreadState &t = threads_[tid];

    // Squash the whole speculative window: front-end queue first, then
    // the ROB from the tail. The checkpointed architectural state covers
    // every register, so maps are bulk-restored rather than walked.
    while (!t.fetchQueue.empty()) {
        DynInst *inst = t.fetchQueue.tail();
        t.fetchQueue.pop_back();
        scrubInst(*inst, /*restore_map=*/false);
    }
    while (!rob_.empty(tid)) {
        DynInst *inst = rob_.tail(tid);
        rob_.popTail(tid);
        scrubInst(*inst, /*restore_map=*/false);
    }

    t.intMap.reset();
    t.fpMap.reset();
    RAT_ASSERT(t.intRegsHeld == 0 && t.fpRegsHeld == 0,
               "registers leaked across runahead exit");
    RAT_ASSERT(t.icount == 0, "icount leaked across runahead exit");
    t.pendingL2Misses = 0;

    // The engine ends the episode (variant training, runahead-cache
    // clear, useless-episode classification) and hands the checkpoint
    // back for the core to restore.
    const runahead::RunaheadEngine::ExitOutcome out = raEngine_.exit(
        tid, mem_.threadStats(tid).raMemPrefetches +
                 mem_.threadStats(tid).raL2Prefetches);
    if (out.useless)
        ++stats_[tid].uselessRunaheadEpisodes;
    predictor_.restoreHistory(tid, out.histCheckpoint);

    // Observability: the finished episode as an annotated span plus a
    // length-histogram sample. Entry during warmup is fine: cycle_ is
    // monotonic across the stats reset, so the length stays exact.
    if (sampler_)
        sampler_->noteEpisode(cycle_ - raTrace_[tid].enteredAt);
    if (traceMask_ & obs::kCatRunahead) {
        // Saturate: the stats reset at the warmup->measure boundary can
        // land inside an episode, making the entry snapshot larger.
        const std::uint64_t entry = raTrace_[tid].pseudoRetiredAtEntry;
        const std::uint64_t now = stats_[tid].pseudoRetired;
        tracer_->record(tid, obs::EventKind::RunaheadEpisode,
                        raTrace_[tid].enteredAt, cycle_,
                        raTrace_[tid].triggerPc,
                        now >= entry ? now - entry : now,
                        out.useless ? 1 : 0);
    }

    t.waitingBranch = false;
    t.nextSeq = out.resumeSeq;
    t.lastFetchLine = ~Addr{0};
    t.fetchBlockedUntil = cycle_ + config_.mispredictRedirect;
}

void
SmtCore::dumpThreadHead(ThreadId tid) const
{
    const ThreadState &t = threads_[tid];
    if (rob_.empty(tid)) {
        std::fprintf(stderr,
                     "[t%u] ROB empty; nextSeq=%llu blockedUntil=%llu "
                     "waitingBranch=%d fetchQ=%u\n",
                     tid, static_cast<unsigned long long>(t.nextSeq),
                     static_cast<unsigned long long>(t.fetchBlockedUntil),
                     t.waitingBranch, t.fetchQueue.size());
        return;
    }
    const DynInst *h = rob_.head(tid);
    std::fprintf(
        stderr,
        "[t%u] head seq=%llu op=%u status=%u inv=%d memIssued=%d "
        "longLat=%d depStore=%llu completeAt=%llu srcs=[",
        tid, static_cast<unsigned long long>(h->op.seq),
        static_cast<unsigned>(h->op.op),
        static_cast<unsigned>(h->status), h->inv, h->memIssued,
        h->longLatency,
        static_cast<unsigned long long>(h->depStoreUid),
        static_cast<unsigned long long>(h->completeAt));
    for (unsigned i = 0; i < h->numSrcs; ++i) {
        std::fprintf(stderr, "%u:%u ", static_cast<unsigned>(h->srcTag[i]),
                     static_cast<unsigned>(h->srcState[i]));
    }
    std::fprintf(stderr, "] cycle=%llu\n",
                 static_cast<unsigned long long>(cycle_));
}

// ---------------------------------------------------------------------------
// Squash machinery
// ---------------------------------------------------------------------------

void
SmtCore::scrubInst(DynInst &inst, bool restore_map)
{
    ThreadState &t = threads_[inst.tid];

    switch (inst.status) {
      case InstStatus::InFetchQueue:
        RAT_ASSERT(t.icount > 0, "icount underflow on scrub");
        --t.icount;
        break;
      case InstStatus::InQueue:
        queueOf(iqClassOf(inst.op.op)).remove(inst);
        --t.iqCount[static_cast<unsigned>(iqClassOf(inst.op.op))];
        RAT_ASSERT(t.icount > 0, "icount underflow on scrub");
        --t.icount;
        break;
      case InstStatus::Executing:
      case InstStatus::Complete:
        break;
      case InstStatus::Retired:
        panic("scrubbing a retired instruction");
    }

    if (inst.renamed && trace::isMemOp(inst.op.op))
        lsq_.remove(inst);

    if (inst.countedL2Miss) {
        RAT_ASSERT(t.pendingL2Misses > 0, "pending L2 miss underflow");
        --t.pendingL2Misses;
        inst.countedL2Miss = false;
    }

    if (restore_map && inst.renamed && inst.op.hasDst) {
        // Reverse-order walk restore (FLUSH path). A saved mapping is
        // only valid while that register still holds the same
        // allocation; if the previous producer committed since, its
        // value lives in the architectural backing instead.
        MapEntry restore = inst.prevMap;
        if (isPhysEntry(restore)) {
            const auto r = static_cast<PhysReg>(restore);
            PhysRegFile &file = fileOf(inst.dstIsFp);
            if (!file.isAllocated(r) ||
                file.allocGen(r) != inst.prevMapGen) {
                restore = kMapArch;
            }
        }
        mapOf(inst.tid, inst.dstIsFp).set(inst.op.dst, restore);
    }
    if (inst.hasDstReg) {
        fileOf(inst.dstIsFp).release(inst.dstPhys);
        if (inst.dstIsFp)
            --t.fpRegsHeld;
        else
            --t.intRegsHeld;
        inst.hasDstReg = false;
    }

    if (t.waitingBranch && t.blockingBranch == inst.handle())
        t.waitingBranch = false;

    ++stats_[inst.tid].squashedInsts;
    inst.status = InstStatus::Retired;
    unlinkSched(inst);
    pool_.release(&inst);
}

void
SmtCore::squashYoungerThan(ThreadId tid, InstSeq seq)
{
    ThreadState &t = threads_[tid];

    while (!t.fetchQueue.empty()) {
        DynInst *inst = t.fetchQueue.tail();
        if (inst->op.seq <= seq)
            break;
        t.fetchQueue.pop_back();
        scrubInst(*inst, /*restore_map=*/true);
    }
    while (!rob_.empty(tid)) {
        DynInst *inst = rob_.tail(tid);
        if (inst->op.seq <= seq)
            break;
        rob_.popTail(tid);
        scrubInst(*inst, /*restore_map=*/true);
    }

    t.nextSeq = seq + 1;
    t.lastFetchLine = ~Addr{0};
    t.fetchBlockedUntil = std::max(t.fetchBlockedUntil, cycle_ + Cycle{1});
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

bool
SmtCore::retireHead(ThreadId tid)
{
    DynInst *head = rob_.head(tid);
    if (!head)
        return false;

    if (raEngine_.inRunahead(tid)) {
        if (head->status != InstStatus::Complete)
            return false;
        // Pseudo-retire (Section 3.1): no architectural or memory update.
        if (trace::isStoreOp(head->op.op) && config_.rat.useRunaheadCache &&
            head->renamed) {
            raEngine_.notePseudoRetiredStore(
                tid, mem_.l1d().lineAlign(head->op.effAddr),
                /*data_valid=*/!head->inv);
        }
        releaseDest(*head, /*make_inv=*/head->inv);
        if (trace::isMemOp(head->op.op))
            lsq_.remove(*head);
        rob_.popHead(tid);
        ++stats_[tid].pseudoRetired;
        head->status = InstStatus::Retired;
        unlinkSched(*head); // folded heads may still hold waiter nodes
        pool_.release(head);
        return true;
    }

    if (head->status == InstStatus::Complete) {
        if (trace::isStoreOp(head->op.op)) {
            const auto res =
                mem_.writeData(tid, head->op.effAddr, cycle_);
            if (res.rejected) {
                // Write-buffer/MSHR pressure stalls commit. The retry
                // still walked the caches (LRU/stat updates), so this
                // cycle did work and may not be skipped.
                tickActivity_ = true;
                return false;
            }
        }
        if (sampler_ && head->issuedAt)
            sampler_->noteIssueToRetire(cycle_ - head->issuedAt);
        if (traceMask_ & obs::kCatSched) {
            tracer_->record(tid, obs::EventKind::Retire, cycle_, cycle_,
                            head->op.pc);
        }
        releaseDest(*head, /*make_inv=*/false);
        if (trace::isMemOp(head->op.op))
            lsq_.remove(*head);
        rob_.popHead(tid);
        ++stats_[tid].committedInsts;
        head->status = InstStatus::Retired;
        unlinkSched(*head); // no-op for committed insts; keeps invariant
        pool_.release(head);
        return true;
    }

    // Head not complete. A long-latency load blocking the head is the
    // runahead entry trigger (Section 3.1), gated by the engine (the
    // Fig. 4 suppression set plus the selected variant's entry veto).
    if (runaheadEnabled(config_.policy) &&
        trace::isLoadOp(head->op.op) && head->memIssued &&
        head->longLatency && raEngine_.mayEnter(tid, head->op)) {
        enterRunahead(tid, *head);
        return true; // consumed a commit slot taking the checkpoint
    }
    return false;
}

void
SmtCore::commitStage()
{
    unsigned budget = config_.commitWidth;
    const unsigned n = config_.numThreads;
    unsigned slot = commitRR_;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        const auto tid = static_cast<ThreadId>(slot);
        if (++slot >= n)
            slot = 0;
        while (budget > 0 && retireHead(tid)) {
            --budget;
            tickActivity_ = true;
        }
    }
    commitRR_ = commitRR_ + 1 >= n ? 0 : commitRR_ + 1;
}

// ---------------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------------

bool
SmtCore::tryIssueInst(DynInst &inst)
{
    ThreadState &t = threads_[inst.tid];
    const trace::OpClass op = inst.op.op;
    const bool in_ra = raEngine_.inRunahead(inst.tid);

    auto start_execution = [&](Cycle complete_at) {
        ++stats_[inst.tid].executedInsts;
        if (in_ra)
            raEngine_.noteExecutedInRunahead();
        queueOf(iqClassOf(op)).remove(inst);
        --t.iqCount[static_cast<unsigned>(iqClassOf(op))];
        RAT_ASSERT(t.icount > 0, "icount underflow on issue");
        --t.icount;
        inst.status = InstStatus::Executing;
        inst.issuedAt = cycle_;
        if (traceMask_ & obs::kCatSched) {
            tracer_->record(inst.tid, obs::EventKind::Issue, cycle_,
                            complete_at, inst.op.pc);
        }
        inst.completeAt = complete_at;
        completions_.push({complete_at, inst.handle()});
    };

    if (trace::isLoadOp(op)) {
        const Addr line = mem_.l1d().lineAlign(inst.op.effAddr);

        // In-flight store-to-load communication (same thread): walk
        // only the thread's in-flight stores, oldest to youngest,
        // stopping at program order (self). The legacy reference walks
        // the seed's full per-thread memory-op deque instead.
        DynInst *match = nullptr;
        if (!config_.broadcastScheduler) {
            for (DynInst *other = lsq_.storeHead(inst.tid);
                 other != nullptr && other->uid < inst.uid;
                 other = other->lsqStoreNext) {
                if (mem_.l1d().lineAlign(other->op.effAddr) == line)
                    match = other; // keep youngest older match
            }
        } else {
            match = legacyStoreForwardMatch(inst, line);
        }
        if (match) {
            if (match->inv) {
                foldInst(inst); // INV store data propagates to the load
                return false;
            }
            if (match->status != InstStatus::Complete) {
                // Pending or executing: wait for the store's data.
                inst.depStoreUid = match->uid;
                if (!config_.broadcastScheduler)
                    linkStoreDependent(*match, inst);
                return false;
            }
            // Forward from the completed store.
            if (!memUnits_.tryIssue(cycle_, 1))
                return false;
            start_execution(cycle_ + 1);
            inst.forwarded = true;
            return true;
        }

        // Communication from pseudo-retired runahead stores (the
        // runahead cache, Section 3.3).
        if (in_ra && config_.rat.useRunaheadCache) {
            bool data_valid = false;
            if (raEngine_.lookupStoreLine(inst.tid, line, data_valid)) {
                if (!data_valid) {
                    foldInst(inst);
                    return false;
                }
                if (!memUnits_.tryIssue(cycle_, 1))
                    return false;
                start_execution(cycle_ + 1);
                inst.forwarded = true;
                return true;
            }
        }

        // Fig. 4 "no prefetch" ablation: runahead loads may not touch
        // the L2 or memory; would-be L2 misses fold without prefetching
        // and are barred from re-triggering runahead after recovery.
        if (in_ra && config_.rat.disablePrefetch) {
            const auto level = mem_.probe(inst.op.effAddr, cycle_);
            if (level != mem::HitLevel::L1) {
                raEngine_.suppressLoad(inst.tid, inst.op.seq);
                foldInst(inst);
                return false;
            }
        }

        if (!memUnits_.tryIssue(cycle_, 1))
            return false;
        const auto res = mem_.readData(inst.tid, inst.op.effAddr, cycle_,
                                       /*speculative=*/in_ra);
        if (res.rejected)
            return true; // port burned; retry next cycle
        inst.memIssued = true;
        inst.memLevel = res.level;
        // Long-latency = fresh L2 miss, or a merge with an in-flight
        // fill whose data is still far away. Both behave as "the L2
        // missed" for runahead and the long-latency policies.
        inst.longLatency =
            res.level == mem::HitLevel::Memory ||
            res.completeAt > cycle_ + Cycle{mem_.l1d().latency() +
                                            mem_.l2().latency() + 2};

        if (in_ra && inst.longLatency) {
            // The access already installed/merged the line fill: that is
            // the prefetch. The load itself is invalidated (Section 3.2).
            ++stats_[inst.tid].executedInsts; // the AGU + access ran
            raEngine_.noteExecutedInRunahead();
            foldInst(inst);
            return true;
        }
        start_execution(res.completeAt);
        if (!in_ra && inst.longLatency) {
            if (sampler_)
                sampler_->noteMissLatency(res.completeAt - cycle_);
            inst.countedL2Miss = true;
            ++t.pendingL2Misses;
            l2Detections_.push(
                {cycle_ + mem_.l1d().latency() + mem_.l2().latency(),
                 inst.handle()});
        }
        return true;
    }

    if (trace::isStoreOp(op)) {
        if (!memUnits_.tryIssue(cycle_, 1))
            return false;
        inst.memIssued = true;
        start_execution(cycle_ + 1); // AGU; memory written at commit
        return true;
    }

    FuncUnitPool &pool = poolOf(op);
    if (!pool.tryIssue(cycle_, fuOccupancy(op)))
        return false;
    if (trace::isFpComputeOp(op))
        t.lastFpIssue = cycle_;
    start_execution(cycle_ + opLatency(op));
    return true;
}

void
SmtCore::issueStage()
{
    if (config_.broadcastScheduler) {
        issueStageBroadcast();
        return;
    }

    // Event-driven: pop oldest-first from the incrementally maintained
    // ready queue. Entries are validated lazily — instructions folded
    // or squashed since insertion are dropped here; instructions that
    // stay ready but lose arbitration (port/FU conflicts) are re-queued
    // for the next cycle.
    // Any queued candidate — even a stale or arbitration-blocked one —
    // means this cycle examined scheduler state and the next may too.
    if (!readyQ_.empty())
        tickActivity_ = true;

    unsigned budget = config_.issueWidth;
    readyPutback_.clear();
    while (budget > 0 && !readyQ_.empty()) {
        const ReadyEntry e = readyQ_.top();
        readyQ_.pop();
        ++sched_.readySelectVisits;
        DynInst *inst = pool_.get(e.inst);
        if (!inst || inst->uid != e.uid)
            continue; // squashed (and possibly recycled) since insertion
        if (inst->status != InstStatus::InQueue || !inst->allSrcsReady())
            continue; // folded since insertion
        if (tryIssueInst(*inst))
            --budget;
        if (inst->status == InstStatus::InQueue && inst->allSrcsReady())
            readyPutback_.push_back(e); // lost arbitration: still ready
    }
    for (const ReadyEntry &e : readyPutback_)
        readyQ_.push(e);

    // Drain INV cascades started by at-issue folding.
    drainFolds();
}

void
SmtCore::issueStageBroadcast()
{
    readyScratch_.clear();
    for (const auto &iq : iqs_) {
        for (const InstHandle h : iq.legacyHandles()) {
            ++sched_.readySelectVisits;
            const DynInst *inst = pool_.get(h);
            if (inst && inst->status == InstStatus::InQueue &&
                inst->allSrcsReady()) {
                readyScratch_.push_back(h);
            }
        }
    }
    // A non-empty ready list means work was (attempted to be) issued
    // this cycle and the losers retry next cycle: not quiescent.
    if (!readyScratch_.empty())
        tickActivity_ = true;

    std::sort(readyScratch_.begin(), readyScratch_.end(),
              [this](InstHandle a, InstHandle b) {
                  const DynInst *ia = pool_.get(a);
                  const DynInst *ib = pool_.get(b);
                  return ia->uid < ib->uid; // oldest first
              });

    unsigned budget = config_.issueWidth;
    for (const InstHandle h : readyScratch_) {
        if (budget == 0)
            break;
        DynInst *inst = pool_.get(h);
        if (!inst || inst->status != InstStatus::InQueue)
            continue; // folded by an earlier issue this cycle
        if (!inst->allSrcsReady())
            continue; // acquired a store dependence this cycle
        if (tryIssueInst(*inst))
            --budget;
    }

    // Drain INV cascades started by at-issue folding.
    drainFolds();
}

// ---------------------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------------------

bool
SmtCore::renameOne(ThreadId tid)
{
    ThreadState &t = threads_[tid];
    DynInst *inst = t.fetchQueue.head();
    if (!inst)
        return false;
    if (inst->renameReadyAt > cycle_)
        return false;
    if (rob_.full())
        return false;

    const trace::OpClass op = inst->op.op;
    const IqClass cls = iqClassOf(op);

    // Resolve source mappings (also needed to decide runahead folding).
    inst->numSrcs = 0;
    bool any_src_inv = false;
    auto add_src = [&](ArchReg r, bool fp) {
        const MapEntry e = mapOf(tid, fp).get(r);
        const unsigned i = inst->numSrcs++;
        inst->srcIsFp[i] = fp;
        if (e == kMapArch) {
            inst->srcState[i] = SrcState::Ready;
        } else if (e == kMapInv) {
            inst->srcState[i] = SrcState::Invalid;
            any_src_inv = true;
        } else {
            inst->srcTag[i] = e;
            inst->srcState[i] = fileOf(fp).isReady(static_cast<PhysReg>(e))
                                    ? SrcState::Ready
                                    : SrcState::Waiting;
        }
    };
    for (unsigned i = 0; i < inst->op.numSrcInt; ++i)
        add_src(inst->op.srcInt[i], false);
    for (unsigned i = 0; i < inst->op.numSrcFp; ++i)
        add_src(inst->op.srcFp[i], true);

    // Runahead folding decision (Section 3.3): INV sources, FP compute
    // under the FP-drop optimisation, and synchronization ops all fold.
    const bool in_ra = raEngine_.inRunahead(tid);
    bool fold = false;
    if (in_ra) {
        fold = any_src_inv ||
               (config_.rat.dropFpInRunahead &&
                trace::isFpComputeOp(op)) ||
               op == trace::OpClass::Lock || op == trace::OpClass::Unlock;
    } else {
        RAT_ASSERT(!any_src_inv, "INV mapping outside runahead");
    }

    // FP loads under FP-drop still execute for their prefetch effect but
    // take no FP destination register (Section 3.3).
    const bool prefetch_only =
        in_ra && config_.rat.dropFpInRunahead && !fold &&
        op == trace::OpClass::FpLoad;
    const bool needs_dst_reg = inst->op.hasDst && !fold && !prefetch_only;

    if (!fold) {
        if (queueOf(cls).full())
            return false;
        if (trace::isMemOp(op) && lsq_.full())
            return false;
        if (needs_dst_reg && fileOf(inst->op.dstIsFp).freeCount() == 0)
            return false;
    }

    // Commit the rename.
    t.fetchQueue.pop_front();
    inst->renamed = true;
    inst->runahead = in_ra;
    inst->dstIsFp = inst->op.dstIsFp;
    if (traceMask_ & obs::kCatSched) {
        tracer_->record(tid, obs::EventKind::Rename, cycle_, cycle_,
                        inst->op.pc);
    }

    if (fold) {
        inst->inv = true;
        inst->folded = true;
        inst->status = InstStatus::Complete;
        ++stats_[tid].invalidInsts;
        RAT_ASSERT(t.icount > 0, "icount underflow on rename fold");
        --t.icount;
        if (inst->op.hasDst) {
            inst->prevMap =
                mapOf(tid, inst->op.dstIsFp).set(inst->op.dst, kMapInv);
            if (isPhysEntry(inst->prevMap)) {
                inst->prevMapGen = fileOf(inst->op.dstIsFp).allocGen(
                    static_cast<PhysReg>(inst->prevMap));
            }
        }
        if (trace::isControlOp(op) && t.waitingBranch &&
            t.blockingBranch == inst->handle()) {
            t.waitingBranch = false;
            t.fetchBlockedUntil =
                std::max(t.fetchBlockedUntil, cycle_ + Cycle{1});
        }
        rob_.push(*inst);
        return true;
    }

    if (inst->op.hasDst) {
        if (needs_dst_reg) {
            const PhysReg r = fileOf(inst->op.dstIsFp).allocate();
            inst->dstPhys = r;
            inst->hasDstReg = true;
            if (inst->op.dstIsFp)
                ++t.fpRegsHeld;
            else
                ++t.intRegsHeld;
            inst->prevMap =
                mapOf(tid, inst->op.dstIsFp).set(inst->op.dst, r);
        } else {
            // prefetch-only FP load: consumers see INV.
            inst->prevMap =
                mapOf(tid, inst->op.dstIsFp).set(inst->op.dst, kMapInv);
        }
        if (isPhysEntry(inst->prevMap)) {
            inst->prevMapGen = fileOf(inst->op.dstIsFp).allocGen(
                static_cast<PhysReg>(inst->prevMap));
        }
    }

    rob_.push(*inst);
    if (trace::isMemOp(op))
        lsq_.insert(*inst);
    queueOf(cls).insert(*inst);
    ++t.iqCount[static_cast<unsigned>(cls)];
    inst->status = InstStatus::InQueue;

    // Event-driven dispatch: register each still-waiting source on its
    // producer's waiter list; instructions arriving fully ready go
    // straight onto the ready queue.
    if (!config_.broadcastScheduler) {
        for (unsigned i = 0; i < inst->numSrcs; ++i) {
            if (inst->srcState[i] == SrcState::Waiting)
                linkWaiter(*inst, i);
        }
        pushReady(*inst);
    }
    return true;
}

void
SmtCore::renameStage()
{
    const unsigned n = config_.numThreads;
    unsigned budget = config_.renameWidth;
    bool stalled[kMaxThreads] = {};
    unsigned stalled_count = 0;

    unsigned rr = renameRR_ % n;
    while (budget > 0 && stalled_count < n) {
        const auto tid = static_cast<ThreadId>(rr);
        if (++rr >= n)
            rr = 0;
        if (stalled[tid])
            continue;
        if (renameOne(tid)) {
            --budget;
            tickActivity_ = true;
        } else {
            stalled[tid] = true;
            ++stalled_count;
        }
    }
    renameRR_ = renameRR_ + 1 >= n ? 0 : renameRR_ + 1;
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

trace::MicroOp
SmtCore::traceAt(ThreadState &t, InstSeq seq)
{
    if (config_.broadcastScheduler)
        return t.gen->at(seq); // legacy: regenerate, as the seed did
    ThreadState::TraceMemoEntry &e =
        t.traceMemo[seq & (kTraceMemoSize - 1)];
    if (e.seq != seq) {
        e.seq = seq;
        e.op = t.gen->at(seq);
    }
    return e.op;
}

void
SmtCore::fetchThread(ThreadId tid, unsigned &budget)
{
    ThreadState &t = threads_[tid];
    Addr group_pc = 0;
    unsigned group_ops = 0;
    while (budget > 0 &&
           t.fetchQueue.size() < config_.fetchQueueEntries) {
        const trace::MicroOp op = traceAt(t, t.nextSeq);

        // Instruction-cache access on line crossings, with a
        // stream-buffer-style sequential prefetch of the next lines.
        const Addr line = mem_.l1i().lineAlign(op.pc);
        if (line != t.lastFetchLine) {
            const auto res = mem_.fetchInst(tid, op.pc, cycle_);
            if (res.rejected) {
                t.fetchBlockedUntil = cycle_ + 1;
                break;
            }
            t.lastFetchLine = line;
            const unsigned line_bytes = mem_.l1i().lineBytes();
            for (unsigned i = 1; i <= config_.ifetchPrefetchLines; ++i)
                mem_.prefetchInst(tid, line + i * line_bytes, cycle_);
            if (res.completeAt > cycle_ + Cycle{mem_.l1i().latency()}) {
                t.fetchBlockedUntil = res.completeAt;
                break;
            }
        }

        DynInst *inst = pool_.alloc(tid);
        inst->op = op;
        inst->fetchedAt = cycle_;
        inst->renameReadyAt = cycle_ + config_.frontendDelay;
        inst->status = InstStatus::InFetchQueue;

        bool stop = false;
        if (trace::isControlOp(op.op)) {
            Addr predicted_target = 0;
            bool target_known = false;
            switch (op.op) {
              case trace::OpClass::Branch:
                inst->pred = predictor_.predict(tid, op.pc);
                inst->predTaken = inst->pred.taken;
                break;
              case trace::OpClass::Call:
                inst->predTaken = true;
                t.ras.push(op.pc + 4);
                break;
              case trace::OpClass::Return:
                inst->predTaken = true;
                target_known = t.ras.pop(predicted_target);
                break;
              default:
                break;
            }
            if (inst->predTaken) {
                if (op.op != trace::OpClass::Return)
                    target_known = btb_.lookup(op.pc, predicted_target);
                if (!target_known) {
                    // Decode-time redirect bubble.
                    t.fetchBlockedUntil =
                        cycle_ + config_.btbMissPenalty;
                }
                stop = true; // taken control flow ends the fetch group
            }
            if (op.op == trace::OpClass::Branch &&
                inst->predTaken != op.taken) {
                inst->mispredicted = true;
                t.waitingBranch = true;
                t.blockingBranch = inst->handle();
                stop = true;
            }
        }

        t.fetchQueue.push_back(*inst);
        ++t.icount;
        ++stats_[tid].fetchedInsts;
        ++t.nextSeq;
        --budget;
        if (group_ops++ == 0)
            group_pc = op.pc;
        if (stop)
            break;
    }
    if ((traceMask_ & obs::kCatFetch) && group_ops) {
        tracer_->record(tid, obs::EventKind::FetchGroup, cycle_, cycle_,
                        group_pc, group_ops);
    }
}

void
SmtCore::fetchStage()
{
    fetchOrder_.clear();
    policy_.fetchOrder(*this, fetchOrder_);

    unsigned budget = config_.fetchWidth;
    unsigned threads_used = 0;
    for (const ThreadId tid : fetchOrder_) {
        if (budget == 0 || threads_used >= config_.fetchThreads)
            break;
        ThreadState &t = threads_[tid];
        if (t.waitingBranch || t.fetchBlockedUntil > cycle_)
            continue;
        if (t.fetchQueue.size() >= config_.fetchQueueEntries)
            continue;
        if (config_.rat.noFetchInRunahead && raEngine_.inRunahead(tid))
            continue; // Fig. 4 resource-availability ablation
        if (raEngine_.fetchSuppressed(tid))
            continue; // variant-gated DrainOnly episode
        if (!policy_.mayFetch(*this, tid))
            continue;
        // Entering fetchThread always does work: it either fetches or
        // probes the I-cache (LRU/stat updates) before blocking.
        tickActivity_ = true;
        const unsigned before = budget;
        fetchThread(tid, budget);
        if (budget < before)
            ++threads_used;
    }
}

// ---------------------------------------------------------------------------
// Per-cycle sampling
// ---------------------------------------------------------------------------

void
SmtCore::sampleCycle()
{
    for (unsigned tid = 0; tid < config_.numThreads; ++tid) {
        ThreadState &t = threads_[tid];
        ThreadStats &s = stats_[tid];
        const unsigned held = t.intRegsHeld + t.fpRegsHeld;
        if (raEngine_.inRunahead(static_cast<ThreadId>(tid))) {
            ++s.runaheadCycles;
            s.runaheadRegCycles += held;
        } else {
            ++s.normalCycles;
            s.normalRegCycles += held;
        }
    }

    // Telemetry window boundary: cycle_ + 1 == nextAt means the window
    // ending at nextAt is fully simulated once this tick retires.
    if (sampler_ && cycle_ + 1 >= sampler_->nextAt())
        takeTelemetrySample();
    if (digests_ && cycle_ + 1 >= digests_->nextAt())
        digests_->sampleAt(*this);
}

void
SmtCore::takeTelemetrySample()
{
    std::uint64_t committed = 0, executed = 0;
    std::uint64_t rob = 0, iq = 0, lsq = 0;
    for (unsigned t = 0; t < config_.numThreads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        committed += stats_[t].committedInsts;
        executed += stats_[t].executedInsts;
        rob += robOccupancy(tid);
        lsq += lsqOccupancy(tid);
        for (unsigned cls = 0; cls < kNumIqClasses; ++cls)
            iq += iqOccupancy(static_cast<IqClass>(cls), tid);
    }
    sampler_->sampleAt(committed, executed,
                       raEngine_.stats().executedInRunahead, rob, iq,
                       lsq);
}

} // namespace rat::core
