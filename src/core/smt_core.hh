/**
 * @file
 * The simultaneous-multithreaded out-of-order core. The Runahead
 * Threads mechanism it hosts lives in its own subsystem — the
 * `runahead::RunaheadEngine` owns episode state, checkpoints, the
 * runahead cache and the runtime-selected efficiency variant; this
 * core owns the pipeline machinery episodes ride on (INV folding and
 * its cascade, pseudo-retirement, the exit squash) and talks to the
 * engine through its narrow trigger/horizon/hook interface (see
 * runahead/engine.hh and DESIGN.md, "RunaheadEngine extraction &
 * variant interface").
 *
 * Pipeline model (evaluated oldest-stage-first each cycle):
 *   1. completions  — writeback: wake consumers, resolve branches
 *   2. runahead exit — the engine's exit horizon passed: squash the
 *                     speculative window, restore the engine's
 *                     checkpoint
 *   3. commit       — per-thread in-order retire / pseudo-retire; the
 *                     runahead *entry* trigger fires here (L2-miss
 *                     load at the thread's ROB head, gated by
 *                     RunaheadEngine::mayEnter)
 *   4. issue        — oldest-first select from the event-driven ready
 *                     queue (or a full-IQ rescan in the legacy
 *                     broadcast reference mode; DESIGN.md,
 *                     "Event-driven wakeup")
 *   5. rename       — round-robin over threads, shared width; runahead
 *                     INV folding happens here; waiting sources link
 *                     onto their producer registers' waiter lists
 *   6. fetch        — policy-ordered ICOUNT.2.8 style fetch
 *   7. sampling     — statistics and policy end-of-cycle work
 *
 * Branch handling is the standard trace-driven bubble model: a detected
 * misprediction stalls the thread's fetch until the branch resolves and
 * then charges a redirect penalty; wrong-path instructions are not
 * fetched (documented in DESIGN.md).
 */

#ifndef RAT_CORE_SMT_CORE_HH
#define RAT_CORE_SMT_CORE_HH

#include <array>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "branch/btb.hh"
#include "branch/perceptron.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/dyninst.hh"
#include "core/policy_iface.hh"
#include "core/regfile.hh"
#include "core/stats.hh"
#include "core/structures.hh"
#include "mem/hierarchy.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "runahead/engine.hh"
#include "trace/generator.hh"
#include "trace/source.hh"

namespace rat::check {
class Auditor;
class DigestCollector;
class Mutator;
class StateHasher;
}

namespace rat::sim {
class CheckpointCodec;
}

namespace rat::core {

/**
 * The SMT processor core.
 */
class SmtCore
{
  public:
    /**
     * @param config  Core configuration (Table 1 defaults).
     * @param mem     Shared memory hierarchy (not owned).
     * @param policy  Scheduling policy (not owned).
     * @param streams One trace generator per hardware thread (not owned);
     *                size must equal config.numThreads.
     */
    SmtCore(const CoreConfig &config, mem::MemoryHierarchy &mem,
            SchedulingPolicy &policy,
            std::vector<const trace::TraceSource *> streams);

    /** Advance one cycle. */
    void tick();

    /** Advance @p n cycles. */
    void run(Cycle n);

    /**
     * Functional warm-up: walk @p insts instructions of every thread's
     * trace with zero-latency cache installs and predictor/BTB training,
     * then start timing simulation at that trace position. This is the
     * standard trace-driven substitute for the long cache-warming phase
     * of execution-driven methodology (see DESIGN.md).
     */
    void prewarm(InstSeq insts);

    /** Current cycle. */
    Cycle cycle() const { return cycle_; }

    /** Reset statistics (state, caches and progress are preserved). */
    void resetStats();

    // --- introspection (policies, tests, benches) ------------------------

    const CoreConfig &config() const { return config_; }
    unsigned numThreads() const { return config_.numThreads; }
    const ThreadStats &threadStats(ThreadId tid) const
    {
        return stats_[tid];
    }
    /** ICOUNT value: in-flight front-end + issue-queue instructions. */
    unsigned icount(ThreadId tid) const { return threads_[tid].icount; }
    /** Thread's ROB occupancy. */
    unsigned robOccupancy(ThreadId tid) const
    {
        return rob_.threadCount(tid);
    }
    /** Shared-ROB free entries. */
    unsigned robFree() const { return rob_.freeEntries(); }
    /** Thread's issue-queue occupancy for one class. */
    unsigned iqOccupancy(IqClass cls, ThreadId tid) const
    {
        return threads_[tid].iqCount[static_cast<unsigned>(cls)];
    }
    /** Thread's held renaming registers in one class. */
    unsigned regsHeld(ThreadId tid, bool fp) const
    {
        return fp ? threads_[tid].fpRegsHeld : threads_[tid].intRegsHeld;
    }
    /** Thread's LSQ occupancy. */
    unsigned lsqOccupancy(ThreadId tid) const
    {
        return lsq_.threadCount(tid);
    }
    /** Is the thread in runahead mode? */
    bool inRunahead(ThreadId tid) const
    {
        return raEngine_.inRunahead(tid);
    }
    /** The runahead subsystem (variant stats, tests, benches). */
    const runahead::RunaheadEngine &runaheadEngine() const
    {
        return raEngine_;
    }
    /** Does the thread have an outstanding demand L2 miss? */
    bool hasPendingL2Miss(ThreadId tid) const
    {
        return threads_[tid].pendingL2Misses > 0;
    }
    /** Has the thread issued an FP op recently (DCRA activity)? */
    Cycle lastFpIssue(ThreadId tid) const
    {
        return threads_[tid].lastFpIssue;
    }
    /** Next trace index to fetch. */
    InstSeq nextFetchSeq(ThreadId tid) const
    {
        return threads_[tid].nextSeq;
    }
    /** The branch predictor (shared). */
    const branch::PerceptronPredictor &predictor() const
    {
        return predictor_;
    }
    /** Allocated renaming registers in a class across threads. */
    unsigned allocatedRegs(bool fp) const
    {
        return fp ? fpRegs_.allocatedCount() : intRegs_.allocatedCount();
    }

    /**
     * Scheduler hot-path work counters (reset by resetStats). Each
     * "visit" is one candidate examined: in the event-driven scheduler
     * that is one actual dependence edge or ready instruction, in the
     * broadcast reference mode one scanned issue-queue entry. The
     * scheduler-equivalence tests pin the O(actual dependents) claim of
     * DESIGN.md "Event-driven wakeup" on these.
     */
    struct SchedCounters {
        /** Candidates examined by wakeConsumers. */
        std::uint64_t regWakeVisits = 0;
        /** Candidates examined by wakeStoreDependents. */
        std::uint64_t storeWakeVisits = 0;
        /** Issue candidates examined by issueStage. */
        std::uint64_t readySelectVisits = 0;
    };
    const SchedCounters &schedCounters() const { return sched_; }

    /**
     * Quiescence-aware cycle-skipping counters (reset by resetStats).
     * A "span" is one fast-forward of the clock from a provably idle
     * tick to the next cycle at which any state can change; skipped
     * cycles are the ticks elided that way. Zero both when
     * CoreConfig::cycleSkipping is off or the core never goes idle.
     */
    struct SkipStats {
        /** Cycles elided by fast-forwarding (never ticked). */
        std::uint64_t skippedCycles = 0;
        /** Fast-forward spans taken. */
        std::uint64_t skipSpans = 0;
    };
    const SkipStats &skipStats() const { return skip_; }

    // --- observability (obs/): observation only, never feedback ----------

    /**
     * Attach/detach the event tracer (nullptr = off). The enabled
     * category mask is cached in `traceMask_`, so every disabled
     * instrumentation site costs one always-not-taken test of a hot
     * register — attaching no tracer is the branch-predicted no-op the
     * perf_simspeed tracing guard pins.
     */
    void
    setTracer(obs::Tracer *tracer)
    {
        tracer_ = tracer;
        traceMask_ = tracer ? tracer->mask() : 0;
    }

    /** Attach/detach the windowed counter sampler (nullptr = off). */
    void
    setSampler(obs::WindowSampler *sampler)
    {
        sampler_ = sampler;
    }

    // --- self-checking (src/check/): observation & verify hooks -----------

    /**
     * Attach/detach the state-digest collector (nullptr = off). Driven
     * at the same window boundaries as the telemetry sampler, in both
     * ticked and skipped spans, so digest streams line up cycle-exact
     * across the host-side mode grid.
     */
    void setDigestCollector(check::DigestCollector *collector);

    /**
     * Verify-mode fault injection: flip one bit of serialized state
     * (ThreadStats) at the first tick boundary at or after @p at.
     * Behaviour-neutral by construction — it perturbs only a counter —
     * so the *only* observable effect is a digest divergence, which
     * `ratsim verify --mutate-at` must bisect to this exact window.
     */
    void armMutationAt(Cycle at) { mutateAt_ = at; }

    /**
     * Verify-mode save/restore leg: every @p n cycles, round-trip the
     * runahead engine's episode state through encode/decodeEpisodes().
     * A lossless codec makes this a perfect no-op (digest streams stay
     * identical to an untouched run); any dropped state shows up as a
     * bisected divergence. 0 disables.
     */
    void setEngineCheckpointInterval(Cycle n) { ckptEvery_ = n; }

    /**
     * Print a one-line diagnostic description of a thread's ROB head to
     * stderr (debugging aid; stable API for tooling and tests).
     */
    void dumpThreadHead(ThreadId tid) const;

    // --- actions available to policies ------------------------------------

    /**
     * Squash all of @p tid's instructions younger than @p seq (the FLUSH
     * policy action). The trace cursor rewinds to seq + 1.
     */
    void squashYoungerThan(ThreadId tid, InstSeq seq);

  private:
    // The self-checking subsystem (src/check/) enumerates and audits
    // private core state read-only; the Mutator is the MutationCheck
    // test hook that deliberately corrupts it.
    friend class ::rat::check::Auditor;
    friend class ::rat::check::StateHasher;
    friend class ::rat::check::Mutator;
    // The sampled-simulation checkpoint codec (sim/checkpoint.hh)
    // saves/restores the functional post-prewarm state.
    friend class ::rat::sim::CheckpointCodec;

    // Per-thread microarchitectural state.
    struct ThreadState {
        const trace::TraceSource *gen = nullptr;
        InstSeq nextSeq = 0;

        // Front end.
        InstList fetchQueue;
        Cycle fetchBlockedUntil = 0;
        bool waitingBranch = false;
        InstHandle blockingBranch{};
        Addr lastFetchLine = ~Addr{0};
        branch::ReturnAddressStack ras{16};

        // Rename state.
        RenameMap intMap;
        RenameMap fpMap;

        // Occupancy counters.
        unsigned icount = 0;
        unsigned iqCount[kNumIqClasses] = {0, 0, 0};
        unsigned intRegsHeld = 0;
        unsigned fpRegsHeld = 0;

        // Long-latency tracking.
        unsigned pendingL2Misses = 0;
        Cycle lastFpIssue = 0;

        /**
         * Trace memoization (event-driven mode only): runahead exit and
         * branch redirects rewind nextSeq and refetch the same trace
         * window — under RaT, well over half of all fetches are
         * refetches. TraceGenerator::at is purely functional in
         * (seed, seq), so a direct-mapped memo turns those refetches
         * into array hits. The legacy scheduler mode bypasses it and
         * regenerates every micro-op, like the seed implementation.
         */
        struct TraceMemoEntry {
            InstSeq seq = ~InstSeq{0};
            trace::MicroOp op{};
        };
        std::vector<TraceMemoEntry> traceMemo;

        // Per-thread runahead state (episode checkpoint, exit horizon,
        // suppression sets) lives in the RunaheadEngine, not here.
    };

    // Timed event referencing a pooled instruction.
    struct InstEvent {
        Cycle at;
        InstHandle inst;
        bool operator>(const InstEvent &o) const { return at > o.at; }
    };

    using EventQueue =
        std::priority_queue<InstEvent, std::vector<InstEvent>,
                            std::greater<InstEvent>>;

    /**
     * One entry of the incrementally maintained ready queue: pushed the
     * moment an instruction's last source turns Ready, popped
     * oldest-first (by uid) at issue. Entries are lazily validated at
     * pop time — an instruction folded or squashed after insertion
     * leaves a stale entry behind, detected by the pool generation
     * check plus the uid match.
     */
    struct ReadyEntry {
        std::uint64_t uid;
        InstHandle inst;
        bool operator>(const ReadyEntry &o) const { return uid > o.uid; }
    };

    using ReadyQueue =
        std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                            std::greater<ReadyEntry>>;

    // --- pipeline stages --------------------------------------------------
    void processCompletions();
    void checkRunaheadTransitions();
    void commitStage();
    void issueStage();
    void renameStage();
    void fetchStage();
    void sampleCycle();

    // --- helpers ----------------------------------------------------------
    /** Trace-memo capacity per thread (power of two, covers the fetch
     * window of one runahead episode). */
    static constexpr std::size_t kTraceMemoSize = 1024;
    /** Micro-op at @p seq of @p t's trace, memoized in event mode. */
    trace::MicroOp traceAt(ThreadState &t, InstSeq seq);
    void fetchThread(ThreadId tid, unsigned &budget);
    bool renameOne(ThreadId tid);
    bool tryIssueInst(DynInst &inst);
    void completeInst(DynInst &inst);
    void resolveControl(DynInst &inst);

    /** Fold an instruction as runahead-INV; cascades to consumers. */
    void foldInst(DynInst &inst);
    /** Release the renaming register and fix the map after retire/fold. */
    void releaseDest(DynInst &inst, bool make_inv);
    /** Wake issue-queue consumers of a completed/INV register. */
    void wakeConsumers(bool is_fp, MapEntry tag, bool inv);
    /** Wake loads waiting on a completed/INV store. */
    void wakeStoreDependents(DynInst &store, bool inv);
    /** Drain the INV cascade worklist. */
    void drainFolds();

    // --- event-driven scheduler plumbing (DESIGN.md) ----------------------

    /** Link a Waiting source onto its producer register's waiter list. */
    void linkWaiter(DynInst &inst, unsigned src);
    /** Unlink one waiter node (squash/release path), O(1). */
    void unlinkWaiter(DynInst &inst, unsigned src);
    /** Drop kWaiterLinks from the mask once no source is linked. */
    void refreshWaiterMask(DynInst &inst);
    /** Link a blocked load onto @p store's dependent chain. */
    void linkStoreDependent(DynInst &store, DynInst &load);
    /** Unlink a load from its store's dependent chain, O(1). */
    void unlinkStoreDependent(DynInst &load);
    /** Detach every scheduler link; required before pool release. */
    void unlinkSched(DynInst &inst);
    /** Enqueue @p inst for issue if it is in-queue and fully ready. */
    void pushReady(DynInst &inst);

    // Broadcast reference implementations (config_.broadcastScheduler):
    // the original full-scan scheduler, kept for the before/after
    // perf_simspeed bench and the equivalence tests.
    void wakeConsumersBroadcast(bool is_fp, MapEntry tag, bool inv);
    void wakeStoreDependentsBroadcast(const DynInst &store, bool inv);
    void issueStageBroadcast();
    /** Seed store-forward scan over the legacy LSQ deque. */
    DynInst *legacyStoreForwardMatch(const DynInst &load, Addr line);

    /** Start an episode: engine checkpoint + fold of in-flight misses. */
    void enterRunahead(ThreadId tid, DynInst &blocking_load);
    /** End an episode: squash the window, restore the checkpoint. */
    void exitRunahead(ThreadId tid);
    /** Retire one instruction (commit or pseudo-retire). */
    bool retireHead(ThreadId tid);

    /** Remove an instruction from all structures and release it. */
    void scrubInst(DynInst &inst, bool restore_map);

    // --- quiescence-aware cycle skipping (DESIGN.md) -----------------------

    /**
     * Earliest cycle at which *any* state can change, given the tick
     * that just ended was fully quiescent: the completion and
     * L2-detection heap heads, the earliest outstanding MSHR fill, the
     * runahead engine's earliest exit horizon, fetch-unblock and
     * rename-ready times, and the policy's time horizon. kNoCycle when
     * nothing is pending.
     */
    Cycle nextEventCycle() const;

    /**
     * Fast-forward the clock from the current (quiescent) cycle to
     * @p target without ticking: integrate the sampleCycle()
     * accumulators analytically over the span (occupancy is constant
     * while quiescent, so multiply instead of loop), advance the
     * per-cycle rotation cursors and the broadcast-mode scan counters
     * exactly as the elided ticks would have, and notify the policy.
     */
    void skipTo(Cycle target);

    RenameMap &mapOf(ThreadId tid, bool fp)
    {
        return fp ? threads_[tid].fpMap : threads_[tid].intMap;
    }
    PhysRegFile &fileOf(bool fp) { return fp ? fpRegs_ : intRegs_; }
    IssueQueue &queueOf(IqClass cls)
    {
        return iqs_[static_cast<unsigned>(cls)];
    }

    /** Latency of an op class. */
    static unsigned opLatency(trace::OpClass op);
    /** Occupancy of the functional unit (latency if unpipelined). */
    static unsigned fuOccupancy(trace::OpClass op);
    FuncUnitPool &poolOf(trace::OpClass op);

    // --- observability plumbing (obs/) ------------------------------------

    /**
     * Feed the sampler the window sample due at its current boundary:
     * cumulative committed/executed/RA-executed counters plus the
     * instantaneous ROB/IQ/LSQ occupancies (summed over threads).
     * Values are read-only snapshots — sampling cannot perturb the
     * simulation.
     */
    void takeTelemetrySample();

    // --- self-checking plumbing (src/check/) ------------------------------

    /**
     * Run the invariant auditor and abort with its structured
     * diagnostics on any violation. Called from tick() under the
     * CheckLevel gate; out of line so smt_core.hh need not see the
     * auditor's definition.
     */
    void runAudit();
    /** True when the CheckLevel gate fires for the tick just ended. */
    bool
    auditDue() const
    {
        if (config_.checkLevel == CheckLevel::Off)
            return false;
        return config_.checkLevel == CheckLevel::Full ||
               config_.checkInterval == 0 ||
               cycle_ % config_.checkInterval == 0;
    }
    /** Apply the armed single-bit mutation (verify fault injection). */
    void applyMutation();

    // --- members ----------------------------------------------------------
    CoreConfig config_;
    mem::MemoryHierarchy &mem_;
    SchedulingPolicy &policy_;

    Cycle cycle_ = 0;
    /**
     * Instructions functionally walked by prewarm() so far (per
     * thread). Makes prewarm incremental: the pseudo-time LRU stamps of
     * a second call continue where the first stopped, so walking N
     * instructions in any number of calls leaves state bit-identical
     * to one prewarm(N) — the property the checkpoint walker relies
     * on. A single call from reset is unchanged (the counter starts
     * at zero).
     */
    InstSeq prewarmedInsts_ = 0;

    InstPool pool_;
    Rob rob_;
    std::array<IssueQueue, kNumIqClasses> iqs_;
    Lsq lsq_;
    PhysRegFile intRegs_;
    PhysRegFile fpRegs_;
    FuncUnitPool intUnits_;
    FuncUnitPool fpUnits_;
    FuncUnitPool memUnits_;

    branch::PerceptronPredictor predictor_;
    branch::Btb btb_;
    runahead::RunaheadEngine raEngine_;

    std::vector<ThreadState> threads_;
    std::array<ThreadStats, kMaxThreads> stats_{};

    EventQueue completions_;
    EventQueue l2Detections_;

    ReadyQueue readyQ_; ///< age-ordered ready instructions (event mode)
    SchedCounters sched_;
    SkipStats skip_;

    /**
     * Did the last tick() do any work? Set by every stage on any state
     * change a skipped cycle could not reproduce: an event popped, a
     * fold, a retire (or a rejected store-commit memory access), a
     * ready-queue candidate, a rename, a fetch attempt. A tick that
     * ends with this false is fully quiescent: re-running it (or any
     * later cycle before nextEventCycle()) would change nothing, which
     * is what makes fast-forwarding bit-identical.
     */
    bool tickActivity_ = false;

    unsigned renameRR_ = 0;
    unsigned commitRR_ = 0;

    // Observability (obs/). traceMask_ is 0 when no tracer is attached,
    // making every instrumentation site a single predictable branch.
    obs::Tracer *tracer_ = nullptr;
    unsigned traceMask_ = 0;
    obs::WindowSampler *sampler_ = nullptr;

    // Self-checking (src/check/). The collector pointer is driven at
    // sampler boundaries; mutateAt_/ckptEvery_ are verify-mode hooks
    // (kNoCycle / 0 = disarmed, each one predictable branch per tick).
    check::DigestCollector *digests_ = nullptr;
    Cycle mutateAt_ = kNoCycle;
    Cycle ckptEvery_ = 0;
    /** Episode-entry records for runahead span events + histograms. */
    struct EpisodeTraceEntry {
        Cycle enteredAt = 0;
        Addr triggerPc = 0;
        std::uint64_t pseudoRetiredAtEntry = 0;
    };
    std::array<EpisodeTraceEntry, kMaxThreads> raTrace_{};

    std::vector<ThreadId> fetchOrder_; // scratch
    std::vector<InstHandle> readyScratch_; // broadcast-mode scratch
    std::vector<ReadyEntry> readyPutback_; // un-issued ready re-queue
    std::vector<InstHandle> foldQueue_; // INV cascade worklist
};

} // namespace rat::core

#endif // RAT_CORE_SMT_CORE_HH
