/**
 * @file
 * Per-thread execution statistics collected by the SMT core.
 */

#ifndef RAT_CORE_STATS_HH
#define RAT_CORE_STATS_HH

#include <cstdint>

namespace rat::core {

/** Counters for one hardware thread. */
struct ThreadStats {
    /** Architecturally committed instructions (IPC numerator). */
    std::uint64_t committedInsts = 0;
    /**
     * Instructions actually executed (issued to a functional unit or
     * the memory system), in normal or runahead mode, including work
     * re-executed after a FLUSH squash or a runahead exit. Folded
     * (runahead-INV) instructions never execute and are not counted.
     * This is the ED^2 energy proxy of Section 5.3.
     */
    std::uint64_t executedInsts = 0;
    /** Instructions fetched. */
    std::uint64_t fetchedInsts = 0;
    /** Runahead pseudo-retired instructions. */
    std::uint64_t pseudoRetired = 0;
    /** Runahead-invalid (folded) instructions. */
    std::uint64_t invalidInsts = 0;
    /** Runahead episodes entered. */
    std::uint64_t runaheadEntries = 0;
    /**
     * Runahead episodes that issued no memory prefetch at all — pure
     * overhead (the efficiency concern Mutlu et al. [10] address).
     * Chasers (mcf-like) produce many; streamers few.
     */
    std::uint64_t uselessRunaheadEpisodes = 0;
    /** Cycles spent in runahead mode. */
    std::uint64_t runaheadCycles = 0;
    /** Cycles spent in normal mode. */
    std::uint64_t normalCycles = 0;
    /** Conditional branches resolved. */
    std::uint64_t branches = 0;
    /** Conditional branches mispredicted. */
    std::uint64_t branchMispredicts = 0;
    /** Loads squashed by the FLUSH policy or runahead exit. */
    std::uint64_t squashedInsts = 0;

    // Register-occupancy sampling for Fig. 5: sum over cycles of the
    // renaming registers this thread held, split by mode.
    std::uint64_t normalRegCycles = 0;
    std::uint64_t runaheadRegCycles = 0;

    /** Mean renaming registers held per normal-mode cycle. */
    double
    avgRegsNormal() const
    {
        return normalCycles
                   ? static_cast<double>(normalRegCycles) / normalCycles
                   : 0.0;
    }

    /** Mean renaming registers held per runahead-mode cycle. */
    double
    avgRegsRunahead() const
    {
        return runaheadCycles
                   ? static_cast<double>(runaheadRegCycles) /
                         runaheadCycles
                   : 0.0;
    }
};

} // namespace rat::core

#endif // RAT_CORE_STATS_HH
