/**
 * @file
 * Shared pipeline structures: issue queues, load/store queue, reorder
 * buffer, functional-unit pools, and the optional runahead cache.
 *
 * All capacity is shared among hardware threads (the paper's
 * complete-resource-sharing organisation, Section 4); per-thread
 * occupancy is tracked for the resource-control policies.
 */

#ifndef RAT_CORE_STRUCTURES_HH
#define RAT_CORE_STRUCTURES_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/dyninst.hh"

namespace rat::core {

/** Issue-queue class (Table 1: separate INT / FP / LS queues). */
enum class IqClass : std::uint8_t { Int = 0, Mem = 1, Fp = 2 };

/** Number of issue-queue classes. */
inline constexpr unsigned kNumIqClasses = 3;

/** Issue-queue class an op dispatches to. */
constexpr IqClass
iqClassOf(trace::OpClass op)
{
    if (trace::isMemOp(op))
        return IqClass::Mem;
    if (trace::isFpComputeOp(op))
        return IqClass::Fp;
    return IqClass::Int;
}

/**
 * One issue queue: unordered slots holding handles; selection and wakeup
 * scan the (small, <= 64-entry) array.
 */
class IssueQueue
{
  public:
    IssueQueue(std::string name, unsigned capacity)
        : name_(std::move(name)), capacity_(capacity)
    {
        entries_.reserve(capacity);
    }

    bool full() const { return entries_.size() >= capacity_; }
    unsigned size() const { return static_cast<unsigned>(entries_.size()); }
    unsigned capacity() const { return capacity_; }
    const std::string &name() const { return name_; }

    /** Insert a renamed instruction. Caller must check full(). */
    void
    insert(InstHandle h)
    {
        RAT_ASSERT(entries_.size() < capacity_, "%s overflow",
                   name_.c_str());
        entries_.push_back(h);
    }

    /** Remove by handle (swap-with-back). */
    void
    remove(InstHandle h)
    {
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i] == h) {
                entries_[i] = entries_.back();
                entries_.pop_back();
                return;
            }
        }
    }

    /** All current entries (for scans by the core). */
    const std::vector<InstHandle> &entries() const { return entries_; }

  private:
    std::string name_;
    unsigned capacity_;
    std::vector<InstHandle> entries_;
};

/**
 * Load/store queue: shared capacity, per-thread program-ordered lists
 * used for store-to-load forwarding and INV propagation through memory.
 */
class Lsq
{
  public:
    explicit Lsq(unsigned capacity) : capacity_(capacity) {}

    bool full() const { return used_ >= capacity_; }
    unsigned used() const { return used_; }
    unsigned capacity() const { return capacity_; }

    /** Append a memory op in program order. Caller must check full(). */
    void
    insert(const DynInst &inst)
    {
        RAT_ASSERT(used_ < capacity_, "LSQ overflow");
        lists_[inst.tid].push_back(inst.handle());
        ++used_;
    }

    /** Remove a retiring or squashed memory op. */
    void
    remove(const DynInst &inst)
    {
        auto &list = lists_[inst.tid];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i] == inst.handle()) {
                list.erase(list.begin() +
                           static_cast<std::ptrdiff_t>(i));
                --used_;
                return;
            }
        }
    }

    /** Program-ordered handles of one thread's in-flight memory ops. */
    const std::deque<InstHandle> &threadList(ThreadId tid) const
    {
        return lists_[tid];
    }

    /** Per-thread occupancy (for resource policies). */
    unsigned
    threadCount(ThreadId tid) const
    {
        return static_cast<unsigned>(lists_[tid].size());
    }

  private:
    unsigned capacity_;
    unsigned used_ = 0;
    std::array<std::deque<InstHandle>, kMaxThreads> lists_{};
};

/**
 * Reorder buffer: shared entry pool with per-thread in-order lists.
 * Allocation competes across threads (the contention the paper studies);
 * each thread retires its own stream in order.
 */
class Rob
{
  public:
    explicit Rob(unsigned capacity) : capacity_(capacity) {}

    bool full() const { return used_ >= capacity_; }
    unsigned used() const { return used_; }
    unsigned freeEntries() const { return capacity_ - used_; }
    unsigned capacity() const { return capacity_; }

    void
    push(const DynInst &inst)
    {
        RAT_ASSERT(used_ < capacity_, "ROB overflow");
        lists_[inst.tid].push_back(inst.handle());
        ++used_;
    }

    /** Oldest instruction of a thread; nullopt-like empty handle check
     * via empty(). */
    InstHandle head(ThreadId tid) const { return lists_[tid].front(); }

    bool empty(ThreadId tid) const { return lists_[tid].empty(); }

    void
    popHead(ThreadId tid)
    {
        RAT_ASSERT(!lists_[tid].empty(), "ROB underflow");
        lists_[tid].pop_front();
        --used_;
    }

    /** Youngest instruction of a thread. */
    InstHandle tail(ThreadId tid) const { return lists_[tid].back(); }

    void
    popTail(ThreadId tid)
    {
        RAT_ASSERT(!lists_[tid].empty(), "ROB underflow");
        lists_[tid].pop_back();
        --used_;
    }

    unsigned
    threadCount(ThreadId tid) const
    {
        return static_cast<unsigned>(lists_[tid].size());
    }

  private:
    unsigned capacity_;
    unsigned used_ = 0;
    std::array<std::deque<InstHandle>, kMaxThreads> lists_{};
};

/**
 * A pool of identical functional units. Pipelined ops occupy a unit for
 * one cycle; unpipelined ops (divides) hold it for their full latency.
 */
class FuncUnitPool
{
  public:
    FuncUnitPool(std::string name, unsigned units)
        : name_(std::move(name)), busyUntil_(units, 0)
    {
    }

    /** Try to claim a unit at @p now for @p occupy cycles. */
    bool
    tryIssue(Cycle now, unsigned occupy)
    {
        for (Cycle &b : busyUntil_) {
            if (b <= now) {
                b = now + occupy;
                return true;
            }
        }
        return false;
    }

    /** Units free at @p now. */
    unsigned
    freeUnits(Cycle now) const
    {
        unsigned n = 0;
        for (Cycle b : busyUntil_) {
            if (b <= now)
                ++n;
        }
        return n;
    }

    unsigned size() const
    {
        return static_cast<unsigned>(busyUntil_.size());
    }

  private:
    std::string name_;
    std::vector<Cycle> busyUntil_;
};

/**
 * Optional runahead cache (Mutlu et al. [11], discussed and measured
 * insignificant in Section 3.3): tracks, per thread, the INV status of
 * lines written by pseudo-retired runahead stores so that later runahead
 * loads can inherit it. Bounded, FIFO-evicted, cleared at runahead exit.
 */
class RunaheadCache
{
  public:
    explicit RunaheadCache(unsigned lines_per_thread)
        : capacity_(lines_per_thread)
    {
    }

    /** Record the status of a line written by a pseudo-retired store. */
    void
    write(ThreadId tid, Addr line, bool data_valid)
    {
        auto &entries = entries_[tid];
        for (auto &e : entries) {
            if (e.line == line) {
                e.valid = data_valid;
                return;
            }
        }
        if (entries.size() >= capacity_)
            entries.pop_front();
        entries.push_back({line, data_valid});
    }

    /**
     * Look up a line. @return true if present, with the stored data
     * validity in @p data_valid.
     */
    bool
    lookup(ThreadId tid, Addr line, bool &data_valid) const
    {
        for (const auto &e : entries_[tid]) {
            if (e.line == line) {
                data_valid = e.valid;
                return true;
            }
        }
        return false;
    }

    /** Drop a thread's entries (runahead exit). */
    void clear(ThreadId tid) { entries_[tid].clear(); }

  private:
    struct Entry {
        Addr line;
        bool valid;
    };

    unsigned capacity_;
    std::array<std::deque<Entry>, kMaxThreads> entries_{};
};

} // namespace rat::core

#endif // RAT_CORE_STRUCTURES_HH
