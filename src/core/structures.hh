/**
 * @file
 * Shared pipeline structures: issue queues, load/store queue, reorder
 * buffer, and functional-unit pools. (The runahead cache lives with the
 * rest of the runahead machinery in src/runahead/.)
 *
 * All capacity is shared among hardware threads (the paper's
 * complete-resource-sharing organisation, Section 4); per-thread
 * occupancy is tracked for the resource-control policies.
 */

#ifndef RAT_CORE_STRUCTURES_HH
#define RAT_CORE_STRUCTURES_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/dyninst.hh"

namespace rat::core {

/** Issue-queue class (Table 1: separate INT / FP / LS queues). */
enum class IqClass : std::uint8_t { Int = 0, Mem = 1, Fp = 2 };

/** Number of issue-queue classes. */
inline constexpr unsigned kNumIqClasses = 3;

/** Issue-queue class an op dispatches to. */
constexpr IqClass
iqClassOf(trace::OpClass op)
{
    if (trace::isMemOp(op))
        return IqClass::Mem;
    if (trace::isFpComputeOp(op))
        return IqClass::Fp;
    return IqClass::Int;
}

/**
 * One issue queue: unordered slots holding live instructions. Members
 * track their own slot index (DynInst::iqPos), so removal is O(1)
 * swap-with-back; the event-driven scheduler never scans the queue.
 *
 * When constructed in legacy mode the queue additionally mirrors the
 * seed implementation's handle vector (insert = push_back, remove =
 * linear scan + swap-with-back) so the broadcast reference scheduler
 * reproduces the pre-refactor wakeup scans — cost profile included
 * (generation-checked handle dereference per scanned entry). The two
 * vectors see the identical operation sequence, so they stay
 * element-aligned and scan order is the seed's.
 */
class IssueQueue
{
  public:
    IssueQueue(std::string name, unsigned capacity, bool legacy = false)
        : name_(std::move(name)), capacity_(capacity), legacy_(legacy)
    {
        entries_.reserve(capacity);
        if (legacy_)
            handles_.reserve(capacity);
    }

    bool full() const { return entries_.size() >= capacity_; }
    unsigned size() const { return static_cast<unsigned>(entries_.size()); }
    unsigned capacity() const { return capacity_; }
    const std::string &name() const { return name_; }

    /** Insert a renamed instruction. Caller must check full(). */
    void
    insert(DynInst &inst)
    {
        RAT_ASSERT(entries_.size() < capacity_, "%s overflow",
                   name_.c_str());
        inst.iqPos = static_cast<std::uint32_t>(entries_.size());
        entries_.push_back(&inst);
        if (legacy_)
            handles_.push_back(inst.handle());
    }

    /** Remove a member in O(1) (swap-with-back via iqPos). */
    void
    remove(DynInst &inst)
    {
        RAT_ASSERT(inst.iqPos < entries_.size() &&
                       entries_[inst.iqPos] == &inst,
                   "%s: removing a non-member", name_.c_str());
        DynInst *back = entries_.back();
        entries_[inst.iqPos] = back;
        back->iqPos = inst.iqPos;
        entries_.pop_back();
        if (legacy_) {
            // Seed removal: scan for the handle, swap with back.
            const InstHandle h = inst.handle();
            for (std::size_t i = 0; i < handles_.size(); ++i) {
                if (handles_[i] == h) {
                    handles_[i] = handles_.back();
                    handles_.pop_back();
                    break;
                }
            }
        }
    }

    /** All current entries (introspection and structure tests). */
    const std::vector<DynInst *> &entries() const { return entries_; }

    /** Seed-layout handles (legacy broadcast scans only). */
    const std::vector<InstHandle> &
    legacyHandles() const
    {
        RAT_ASSERT(legacy_, "%s: legacy handle mirror disabled",
                   name_.c_str());
        return handles_;
    }

  private:
    std::string name_;
    unsigned capacity_;
    bool legacy_;
    std::vector<DynInst *> entries_;
    std::vector<InstHandle> handles_;
};

/**
 * Intrusive program-ordered instruction list through
 * DynInst::seqPrev/seqNext. Used for the per-thread fetch queues and
 * the per-thread ROB lists; an instruction moves from the fetch queue
 * to the ROB at rename and is never on both. Members are always live:
 * every owner pops an instruction before releasing it to the pool.
 */
class InstList
{
  public:
    DynInst *head() const { return head_; }
    DynInst *tail() const { return tail_; }
    bool empty() const { return head_ == nullptr; }
    unsigned size() const { return count_; }

    void
    push_back(DynInst &inst)
    {
        inst.seqPrev = tail_;
        inst.seqNext = nullptr;
        if (tail_)
            tail_->seqNext = &inst;
        else
            head_ = &inst;
        tail_ = &inst;
        ++count_;
    }

    void
    pop_front()
    {
        RAT_ASSERT(head_ != nullptr, "pop_front on empty InstList");
        DynInst *inst = head_;
        head_ = inst->seqNext;
        if (head_)
            head_->seqPrev = nullptr;
        else
            tail_ = nullptr;
        inst->seqNext = inst->seqPrev = nullptr;
        --count_;
    }

    void
    pop_back()
    {
        RAT_ASSERT(tail_ != nullptr, "pop_back on empty InstList");
        DynInst *inst = tail_;
        tail_ = inst->seqPrev;
        if (tail_)
            tail_->seqNext = nullptr;
        else
            head_ = nullptr;
        inst->seqNext = inst->seqPrev = nullptr;
        --count_;
    }

  private:
    DynInst *head_ = nullptr;
    DynInst *tail_ = nullptr;
    unsigned count_ = 0;
};

/**
 * Load/store queue: shared capacity, per-thread program-ordered lists
 * used for store-to-load forwarding and INV propagation through memory.
 *
 * The per-thread lists are intrusive doubly-linked chains through
 * DynInst::lsqPrev/lsqNext, so retire and squash removal are O(1)
 * regardless of position (commits remove from the front, branch and
 * runahead squashes from the back, but nothing here depends on that).
 * Members are always live instructions: every path removes a memory op
 * from the LSQ before releasing it to the pool.
 *
 * In legacy mode the per-thread handle deques of the seed
 * implementation are mirrored as well (O(n) middle-of-deque erase on
 * removal), so the broadcast reference scheduler walks and pays for
 * exactly the structure the refactor replaced.
 */
class Lsq
{
  public:
    explicit Lsq(unsigned capacity, bool legacy = false)
        : capacity_(capacity), legacy_(legacy)
    {
    }

    bool full() const { return used_ >= capacity_; }
    unsigned used() const { return used_; }
    unsigned capacity() const { return capacity_; }

    /** Append a memory op in program order. Caller must check full(). */
    void
    insert(DynInst &inst)
    {
        RAT_ASSERT(used_ < capacity_, "LSQ overflow");
        RAT_ASSERT(!inst.inLsq, "double LSQ insert");
        Thread &t = lists_[inst.tid];
        inst.lsqPrev = t.tail;
        inst.lsqNext = nullptr;
        if (t.tail)
            t.tail->lsqNext = &inst;
        else
            t.head = &inst;
        t.tail = &inst;
        if (trace::isStoreOp(inst.op.op)) {
            inst.lsqStorePrev = t.storeTail;
            inst.lsqStoreNext = nullptr;
            if (t.storeTail)
                t.storeTail->lsqStoreNext = &inst;
            else
                t.storeHead = &inst;
            t.storeTail = &inst;
            ++t.storeCount;
        }
        inst.inLsq = true;
        ++t.count;
        ++used_;
        if (legacy_)
            legacyLists_[inst.tid].push_back(inst.handle());
    }

    /**
     * Remove a retiring or squashed memory op in O(1). No-op when the
     * op never entered the LSQ (folded at rename).
     */
    void
    remove(DynInst &inst)
    {
        if (!inst.inLsq)
            return;
        Thread &t = lists_[inst.tid];
        if (inst.lsqPrev)
            inst.lsqPrev->lsqNext = inst.lsqNext;
        else
            t.head = inst.lsqNext;
        if (inst.lsqNext)
            inst.lsqNext->lsqPrev = inst.lsqPrev;
        else
            t.tail = inst.lsqPrev;
        inst.lsqPrev = inst.lsqNext = nullptr;
        if (trace::isStoreOp(inst.op.op)) {
            if (inst.lsqStorePrev)
                inst.lsqStorePrev->lsqStoreNext = inst.lsqStoreNext;
            else
                t.storeHead = inst.lsqStoreNext;
            if (inst.lsqStoreNext)
                inst.lsqStoreNext->lsqStorePrev = inst.lsqStorePrev;
            else
                t.storeTail = inst.lsqStorePrev;
            inst.lsqStorePrev = inst.lsqStoreNext = nullptr;
            RAT_ASSERT(t.storeCount > 0, "LSQ store count underflow");
            --t.storeCount;
        }
        inst.inLsq = false;
        --t.count;
        --used_;
        if (legacy_) {
            // Seed removal: O(n) scan + middle-of-deque erase.
            auto &list = legacyLists_[inst.tid];
            for (std::size_t i = 0; i < list.size(); ++i) {
                if (list[i] == inst.handle()) {
                    list.erase(list.begin() +
                               static_cast<std::ptrdiff_t>(i));
                    break;
                }
            }
        }
    }

    /**
     * Oldest in-flight memory op of a thread; walk in program order via
     * DynInst::lsqNext. nullptr when empty.
     */
    DynInst *head(ThreadId tid) const { return lists_[tid].head; }

    /**
     * Oldest in-flight *store* of a thread (walk via lsqStoreNext):
     * store-to-load forwarding scans only actual stores.
     */
    DynInst *storeHead(ThreadId tid) const { return lists_[tid].storeHead; }

    /** Per-thread occupancy (for resource policies). */
    unsigned threadCount(ThreadId tid) const { return lists_[tid].count; }

    /** Per-thread in-flight stores. */
    unsigned storeCount(ThreadId tid) const
    {
        return lists_[tid].storeCount;
    }

    /** Seed-layout per-thread handles (legacy reference mode only). */
    const std::deque<InstHandle> &
    legacyThreadList(ThreadId tid) const
    {
        RAT_ASSERT(legacy_, "legacy LSQ mirror disabled");
        return legacyLists_[tid];
    }

  private:
    struct Thread {
        DynInst *head = nullptr;
        DynInst *tail = nullptr;
        DynInst *storeHead = nullptr;
        DynInst *storeTail = nullptr;
        unsigned count = 0;
        unsigned storeCount = 0;
    };

    unsigned capacity_;
    bool legacy_;
    unsigned used_ = 0;
    std::array<Thread, kMaxThreads> lists_{};
    std::array<std::deque<InstHandle>, kMaxThreads> legacyLists_{};
};

/**
 * Reorder buffer: shared entry pool with per-thread in-order lists.
 * Allocation competes across threads (the contention the paper studies);
 * each thread retires its own stream in order. The lists are intrusive
 * (InstList over DynInst::seqPrev/seqNext), so the commit hot path
 * reaches the head instruction without a handle indirection.
 */
class Rob
{
  public:
    explicit Rob(unsigned capacity) : capacity_(capacity) {}

    bool full() const { return used_ >= capacity_; }
    unsigned used() const { return used_; }
    unsigned freeEntries() const { return capacity_ - used_; }
    unsigned capacity() const { return capacity_; }

    void
    push(DynInst &inst)
    {
        RAT_ASSERT(used_ < capacity_, "ROB overflow");
        lists_[inst.tid].push_back(inst);
        ++used_;
    }

    /** Oldest instruction of a thread; nullptr when empty. */
    DynInst *head(ThreadId tid) const { return lists_[tid].head(); }

    bool empty(ThreadId tid) const { return lists_[tid].empty(); }

    void
    popHead(ThreadId tid)
    {
        RAT_ASSERT(!lists_[tid].empty(), "ROB underflow");
        lists_[tid].pop_front();
        --used_;
    }

    /** Youngest instruction of a thread; nullptr when empty. */
    DynInst *tail(ThreadId tid) const { return lists_[tid].tail(); }

    void
    popTail(ThreadId tid)
    {
        RAT_ASSERT(!lists_[tid].empty(), "ROB underflow");
        lists_[tid].pop_back();
        --used_;
    }

    unsigned threadCount(ThreadId tid) const { return lists_[tid].size(); }

  private:
    unsigned capacity_;
    unsigned used_ = 0;
    std::array<InstList, kMaxThreads> lists_{};
};

/**
 * A pool of identical functional units. Pipelined ops occupy a unit for
 * one cycle; unpipelined ops (divides) hold it for their full latency.
 */
class FuncUnitPool
{
  public:
    FuncUnitPool(std::string name, unsigned units)
        : name_(std::move(name)), busyUntil_(units, 0)
    {
    }

    /** Try to claim a unit at @p now for @p occupy cycles. */
    bool
    tryIssue(Cycle now, unsigned occupy)
    {
        for (Cycle &b : busyUntil_) {
            if (b <= now) {
                b = now + occupy;
                return true;
            }
        }
        return false;
    }

    /** Units free at @p now. */
    unsigned
    freeUnits(Cycle now) const
    {
        unsigned n = 0;
        for (Cycle b : busyUntil_) {
            if (b <= now)
                ++n;
        }
        return n;
    }

    unsigned size() const
    {
        return static_cast<unsigned>(busyUntil_.size());
    }

  private:
    std::string name_;
    std::vector<Cycle> busyUntil_;
};

} // namespace rat::core

#endif // RAT_CORE_STRUCTURES_HH
