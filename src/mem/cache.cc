#include "mem/cache.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace rat::mem {

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (!isPowerOf2(config.lineBytes))
        fatal("cache '%s': line size %u not a power of two",
              config.name.c_str(), config.lineBytes);
    if (config.ways == 0 || config.sizeBytes == 0)
        fatal("cache '%s': zero ways or size", config.name.c_str());
    const std::uint64_t num_lines = config.sizeBytes / config.lineBytes;
    if (num_lines % config.ways != 0)
        fatal("cache '%s': %llu lines not divisible by %u ways",
              config.name.c_str(),
              static_cast<unsigned long long>(num_lines), config.ways);
    numSets_ = static_cast<unsigned>(num_lines / config.ways);
    if (!isPowerOf2(numSets_))
        fatal("cache '%s': %u sets not a power of two", config.name.c_str(),
              numSets_);
    lineShift_ = floorLog2(config.lineBytes);
    lineMask_ = config.lineBytes - 1;
    setMask_ = numSets_ - 1;
    lines_.resize(static_cast<std::size_t>(numSets_) * config.ways);
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    const Addr tag = tagOf(addr);
    const Line *set = setBase(addr);
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    // Safe const_cast direction: *this is non-const here, so shedding
    // the const the delegated-to overload added is well-defined.
    return const_cast<Line *>(std::as_const(*this).findLine(addr));
}

LookupResult
Cache::probe(Addr addr, Cycle now) const
{
    const Line *line = findLine(addr);
    if (!line)
        return LookupResult::Miss;
    return line->readyAt > now ? LookupResult::HitPending
                               : LookupResult::Hit;
}

LookupResult
Cache::access(Addr addr, Cycle now, Cycle &ready_at)
{
    Line *line = findLine(addr);
    if (!line) {
        ++misses_;
        return LookupResult::Miss;
    }
    line->lastUse = now;
    if (line->readyAt > now) {
        ready_at = line->readyAt;
        // A merged access is neither a fresh miss nor a clean hit; count
        // it as a hit for hit-rate purposes (it found the line present).
        ++hits_;
        return LookupResult::HitPending;
    }
    ready_at = now;
    ++hits_;
    return LookupResult::Hit;
}

bool
Cache::install(Addr addr, Cycle now, Cycle ready_at, Addr &evicted)
{
    // Single way-walk over the set: find a present line and track the
    // replacement victim (first invalid way, else LRU) in one pass, so
    // the set base and tag are computed once per install.
    const Addr tag = tagOf(addr);
    Line *set = setBase(addr);
    Line *invalid = nullptr;
    Line *lru = &set[0];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &l = set[w];
        if (l.valid && l.tag == tag) {
            // Re-install of a present line (e.g. refresh): update fill
            // time only if it makes the line available earlier.
            l.lastUse = now;
            l.readyAt = std::min(l.readyAt, ready_at);
            return false;
        }
        if (!l.valid) {
            if (!invalid)
                invalid = &l;
        } else if (l.lastUse < lru->lastUse) {
            lru = &l;
        }
    }
    Line *victim = invalid ? invalid : lru;
    const bool had_victim = victim->valid;
    if (had_victim) {
        ++evictions_;
        evicted = victim->tag << lineShift_;
    }
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lastUse = now;
    victim->readyAt = ready_at;
    return had_victim;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
Cache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

MshrFile::MshrFile(unsigned entries) : entries_(entries)
{
    RAT_ASSERT(entries > 0, "MSHR file needs at least one entry");
    active_.reserve(entries);
    // Power-of-two index at most half full keeps probe chains short.
    tableSize_ = 8;
    while (tableSize_ < 2 * entries_)
        tableSize_ *= 2;
    table_.assign(tableSize_, kEmptySlot);
}

std::uint32_t
MshrFile::findSlot(Addr line_addr) const
{
    std::uint64_t h = line_addr * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    std::uint32_t i = static_cast<std::uint32_t>(h & (tableSize_ - 1));
    while (table_[i] != kEmptySlot &&
           active_[table_[i]].lineAddr != line_addr) {
        i = (i + 1) & (tableSize_ - 1);
    }
    return i;
}

void
MshrFile::reindex() const
{
    std::fill(table_.begin(), table_.end(), kEmptySlot);
    minComplete_ = kNoCycle;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(active_.size()); ++i) {
        minComplete_ = std::min(minComplete_, active_[i].completeAt);
        const std::uint32_t slot = findSlot(active_[i].lineAddr);
        if (table_[slot] == kEmptySlot)
            table_[slot] = i; // keep the oldest record of a line
    }
}

void
MshrFile::expire(Cycle now) const
{
    // Fast path: nothing can have completed before the tracked minimum.
    if (minComplete_ > now)
        return;
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [now](const Entry &e) {
                                     return e.completeAt <= now;
                                 }),
                  active_.end());
    reindex();
}

bool
MshrFile::isOutstanding(Addr line_addr, Cycle now) const
{
    return completionOf(line_addr, now) != kNoCycle;
}

Cycle
MshrFile::completionOf(Addr line_addr, Cycle now) const
{
    expire(now);
    const std::uint32_t slot = findSlot(line_addr);
    return table_[slot] == kEmptySlot ? kNoCycle
                                      : active_[table_[slot]].completeAt;
}

bool
MshrFile::canAllocate(Cycle now) const
{
    expire(now);
    return active_.size() < entries_;
}

void
MshrFile::allocate(Addr line_addr, Cycle now, Cycle complete_at)
{
    expire(now);
    RAT_ASSERT(active_.size() < entries_, "MSHR overflow");
    const std::uint32_t slot = findSlot(line_addr);
    if (table_[slot] == kEmptySlot) {
        table_[slot] = static_cast<std::uint32_t>(active_.size());
    }
    // else: a live record for the line exists (evicted-while-pending
    // re-miss); the index keeps pointing at the oldest one.
    active_.push_back({line_addr, complete_at});
    minComplete_ = std::min(minComplete_, complete_at);
}

unsigned
MshrFile::occupancy(Cycle now) const
{
    expire(now);
    return static_cast<unsigned>(active_.size());
}

Cycle
MshrFile::earliestCompletion(Cycle now) const
{
    expire(now);
    return active_.empty() ? kNoCycle : minComplete_;
}

bool
MshrFile::auditIndexConsistent(std::string *why) const
{
    // Deliberately does not expire(): lazily-unexpired entries are
    // legal state, and every invariant below holds at all times.
    const auto fail = [why](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    if (active_.size() > entries_) {
        std::ostringstream os;
        os << "mshr: " << active_.size() << " live fills exceed capacity "
           << entries_;
        return fail(os.str());
    }

    Cycle min = kNoCycle;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(active_.size()); ++i) {
        const Entry &e = active_[i];
        min = std::min(min, e.completeAt);
        const std::uint32_t slot = findSlot(e.lineAddr);
        if (table_[slot] == kEmptySlot) {
            std::ostringstream os;
            os << "mshr: live fill #" << i << " (line 0x" << std::hex
               << e.lineAddr << ") unreachable through the line index";
            return fail(os.str());
        }
        // The index must name the oldest live record of the line.
        std::uint32_t oldest = i;
        for (std::uint32_t j = 0; j < i; ++j) {
            if (active_[j].lineAddr == e.lineAddr) {
                oldest = j;
                break;
            }
        }
        if (table_[slot] != oldest) {
            std::ostringstream os;
            os << "mshr: index slot " << slot << " for line 0x" << std::hex
               << e.lineAddr << std::dec << " points at record "
               << table_[slot] << ", expected oldest record " << oldest;
            return fail(os.str());
        }
    }
    if (min != minComplete_) {
        std::ostringstream os;
        os << "mshr: tracked min completion " << minComplete_
           << " != actual min " << min << " over " << active_.size()
           << " live fills";
        return fail(os.str());
    }

    for (std::uint32_t slot = 0; slot < tableSize_; ++slot) {
        const std::uint32_t idx = table_[slot];
        if (idx == kEmptySlot)
            continue;
        if (idx >= active_.size()) {
            std::ostringstream os;
            os << "mshr: index slot " << slot << " points at record " << idx
               << " beyond the " << active_.size() << " live fills";
            return fail(os.str());
        }
        if (findSlot(active_[idx].lineAddr) != slot) {
            std::ostringstream os;
            os << "mshr: index slot " << slot << " not on line 0x"
               << std::hex << active_[idx].lineAddr << "'s probe chain";
            return fail(os.str());
        }
    }
    return true;
}

} // namespace rat::mem
