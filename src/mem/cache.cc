#include "mem/cache.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace rat::mem {

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (!isPowerOf2(config.lineBytes))
        fatal("cache '%s': line size %u not a power of two",
              config.name.c_str(), config.lineBytes);
    if (config.ways == 0 || config.sizeBytes == 0)
        fatal("cache '%s': zero ways or size", config.name.c_str());
    const std::uint64_t num_lines = config.sizeBytes / config.lineBytes;
    if (num_lines % config.ways != 0)
        fatal("cache '%s': %llu lines not divisible by %u ways",
              config.name.c_str(),
              static_cast<unsigned long long>(num_lines), config.ways);
    numSets_ = static_cast<unsigned>(num_lines / config.ways);
    if (!isPowerOf2(numSets_))
        fatal("cache '%s': %u sets not a power of two", config.name.c_str(),
              numSets_);
    lineShift_ = floorLog2(config.lineBytes);
    lineMask_ = config.lineBytes - 1;
    setMask_ = numSets_ - 1;
    lines_.resize(static_cast<std::size_t>(numSets_) * config.ways);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const Addr tag = tagOf(addr);
    Line *set = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                        config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

LookupResult
Cache::probe(Addr addr, Cycle now) const
{
    const Line *line = findLine(addr);
    if (!line)
        return LookupResult::Miss;
    return line->readyAt > now ? LookupResult::HitPending
                               : LookupResult::Hit;
}

LookupResult
Cache::access(Addr addr, Cycle now, Cycle &ready_at)
{
    Line *line = findLine(addr);
    if (!line) {
        ++misses_;
        return LookupResult::Miss;
    }
    line->lastUse = now;
    if (line->readyAt > now) {
        ready_at = line->readyAt;
        // A merged access is neither a fresh miss nor a clean hit; count
        // it as a hit for hit-rate purposes (it found the line present).
        ++hits_;
        return LookupResult::HitPending;
    }
    ready_at = now;
    ++hits_;
    return LookupResult::Hit;
}

bool
Cache::install(Addr addr, Cycle now, Cycle ready_at, Addr &evicted)
{
    if (Line *line = findLine(addr)) {
        // Re-install of a present line (e.g. refresh): update fill time
        // only if it makes the line available earlier.
        line->lastUse = now;
        line->readyAt = std::min(line->readyAt, ready_at);
        return false;
    }
    Line *set = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                        config_.ways];
    Line *victim = &set[0];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    const bool had_victim = victim->valid;
    if (had_victim) {
        ++evictions_;
        evicted = victim->tag << lineShift_;
    }
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lastUse = now;
    victim->readyAt = ready_at;
    return had_victim;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
Cache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

MshrFile::MshrFile(unsigned entries) : entries_(entries)
{
    RAT_ASSERT(entries > 0, "MSHR file needs at least one entry");
    active_.reserve(entries);
}

void
MshrFile::expire(Cycle now) const
{
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [now](const Entry &e) {
                                     return e.completeAt <= now;
                                 }),
                  active_.end());
}

bool
MshrFile::isOutstanding(Addr line_addr, Cycle now) const
{
    return completionOf(line_addr, now) != kNoCycle;
}

Cycle
MshrFile::completionOf(Addr line_addr, Cycle now) const
{
    expire(now);
    for (const Entry &e : active_) {
        if (e.lineAddr == line_addr)
            return e.completeAt;
    }
    return kNoCycle;
}

bool
MshrFile::canAllocate(Cycle now) const
{
    expire(now);
    return active_.size() < entries_;
}

void
MshrFile::allocate(Addr line_addr, Cycle now, Cycle complete_at)
{
    expire(now);
    RAT_ASSERT(active_.size() < entries_, "MSHR overflow");
    active_.push_back({line_addr, complete_at});
}

unsigned
MshrFile::occupancy(Cycle now) const
{
    expire(now);
    return static_cast<unsigned>(active_.size());
}

} // namespace rat::mem
