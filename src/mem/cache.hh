/**
 * @file
 * Set-associative cache model with true-LRU replacement and
 * fill-latency-aware lines.
 *
 * The hierarchy is queried functionally at access time: an access walks
 * the levels, determines where it hits, installs lines on the way back,
 * and returns the completion cycle. Outstanding-fill merging is modelled
 * through each line's `readyAt` cycle — an access to a line that is still
 * being filled completes when the fill does, which is exactly MSHR
 * merge behaviour. A separate MshrFile bounds the number of distinct
 * outstanding line fills per cache (structural back-pressure).
 */

#ifndef RAT_MEM_CACHE_HH
#define RAT_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rat::check {
class Mutator;
}

namespace rat::mem {

/** Geometry and timing of one cache level. */
struct CacheConfig {
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned ways = 4;
    unsigned lineBytes = 64;
    /** Access (hit) latency in cycles. */
    unsigned latency = 1;
    /** Maximum distinct outstanding line fills. */
    unsigned mshrs = 32;
};

/** Result of a single-level lookup. */
enum class LookupResult : std::uint8_t {
    Hit,        ///< present and filled
    HitPending, ///< present but still being filled (merge with fill)
    Miss        ///< not present
};

/**
 * One cache level. Tag/LRU state only; no data storage (the simulator is
 * timing-only).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Probe for a line without modifying replacement state.
     * @param addr Byte address.
     * @param now  Current cycle (classifies Hit vs HitPending).
     */
    LookupResult probe(Addr addr, Cycle now) const;

    /**
     * Access a line: on presence, update LRU and return Hit/HitPending
     * with the fill-completion cycle in @p ready_at (now for plain hits).
     * On a miss, no state changes; callers install the line explicitly.
     */
    LookupResult access(Addr addr, Cycle now, Cycle &ready_at);

    /**
     * Install a line that will finish filling at @p ready_at, evicting the
     * LRU way of its set if needed. Returns the evicted line address in
     * @p evicted (valid iff the return value is true).
     */
    bool install(Addr addr, Cycle now, Cycle ready_at, Addr &evicted);

    /** Invalidate a line if present (backing store for eviction tests). */
    void invalidate(Addr addr);

    /** Remove all lines. */
    void flushAll();

    /** Line-aligned address. */
    Addr lineAlign(Addr addr) const { return addr & ~Addr{lineMask_}; }

    /** Number of sets. */
    unsigned numSets() const { return numSets_; }
    /** Associativity. */
    unsigned numWays() const { return config_.ways; }
    /** Hit latency. */
    unsigned latency() const { return config_.latency; }
    /** Line size in bytes. */
    unsigned lineBytes() const { return config_.lineBytes; }
    /** Config this cache was built from. */
    const CacheConfig &config() const { return config_; }

    // --- statistics ------------------------------------------------------
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    /** Reset statistics (not contents). */
    void resetStats();

    /**
     * Checkpoint enumeration (sim/checkpoint.hh): the one template
     * below drives both encode (the IO reads every field) and decode
     * (the IO assigns it), so the two directions cannot drift apart.
     * Covers the full replacement state plus the statistics counters —
     * a restored cache is indistinguishable from the walked original,
     * including in state digests. The leading size marker makes a
     * geometry mismatch a decode error instead of silent corruption.
     */
    template <typename IO>
    void
    ckptVisit(IO &io)
    {
        io.size(lines_.size());
        for (Line &l : lines_) {
            io.scalar(l.tag);
            io.scalar(l.valid);
            io.scalar(l.lastUse);
            io.scalar(l.readyAt);
        }
        io.scalar(hits_);
        io.scalar(misses_);
        io.scalar(evictions_);
    }

  private:
    struct Line {
        Addr tag = 0;
        bool valid = false;
        Cycle lastUse = 0;
        Cycle readyAt = 0;
    };

    unsigned setIndex(Addr addr) const
    {
        return static_cast<unsigned>((addr >> lineShift_) & setMask_);
    }
    Addr tagOf(Addr addr) const { return addr >> lineShift_; }

    /** First line of the set @p addr maps to (way-walk base). */
    const Line *setBase(Addr addr) const
    {
        return &lines_[static_cast<std::size_t>(setIndex(addr)) *
                       config_.ways];
    }
    Line *setBase(Addr addr)
    {
        return &lines_[static_cast<std::size_t>(setIndex(addr)) *
                       config_.ways];
    }

    const Line *findLine(Addr addr) const;
    Line *findLine(Addr addr);

    CacheConfig config_;
    unsigned numSets_;
    unsigned lineShift_;
    std::uint64_t lineMask_;
    std::uint64_t setMask_;
    std::vector<Line> lines_; // numSets_ * ways, set-major

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

/**
 * Bounded set of outstanding line fills (miss status holding registers).
 *
 * Tracks outstanding line addresses with their completion cycles;
 * accesses to an already-outstanding line merge. Full MSHRs reject new
 * misses, which the core turns into issue back-pressure.
 *
 * Implementation: an insertion-ordered entry list (bounded by the
 * capacity) with the minimum completion cycle tracked incrementally,
 * plus an open-addressed line-address index for O(1) lookups. Expiry is
 * lazy but O(1) in the common case — nothing can have expired while
 * `now` is before the tracked minimum, which replaces the former
 * remove_if scan on every query. The minimum also feeds the core's
 * `nextEventCycle()` (earliest cycle a fill can unblock anything).
 *
 * Semantics are pinned by the cache/MSHR tests and must match the
 * original list exactly, including the corner where the same line is
 * allocated twice (an L1 line evicted while its fill is in flight, then
 * re-missed): both records count toward occupancy and expire on their
 * own completion cycles, and lookups return the oldest surviving
 * record.
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries);

    /** True if a fill for this line is outstanding at @p now. */
    bool isOutstanding(Addr line_addr, Cycle now) const;

    /** Completion cycle of an outstanding fill; kNoCycle if none. */
    Cycle completionOf(Addr line_addr, Cycle now) const;

    /** True if a new fill can be accepted at @p now. */
    bool canAllocate(Cycle now) const;

    /** Record a new outstanding fill. Caller must check canAllocate. */
    void allocate(Addr line_addr, Cycle now, Cycle complete_at);

    /** Capacity. */
    unsigned entries() const { return entries_; }

    /** Outstanding fills at @p now (lazy expiry). */
    unsigned occupancy(Cycle now) const;

    /**
     * Completion cycle of the earliest outstanding fill at @p now;
     * kNoCycle when none are outstanding.
     */
    Cycle earliestCompletion(Cycle now) const;

    /**
     * Self-check: the line-address index, the entry list and the
     * tracked minimum must agree — every occupied table slot points at
     * the oldest live record of its line, every live record is
     * reachable through the index, and `minComplete_` is exactly the
     * minimum completion cycle (kNoCycle when empty). Returns false
     * and fills @p why with a diagnostic on the first violation.
     */
    bool auditIndexConsistent(std::string *why) const;

  private:
    /** Test hook (MutationCheck) — corrupts index/minimum state. */
    friend class ::rat::check::Mutator;
    void expire(Cycle now) const;
    /** Rebuild the line index and tracked minimum from active_. */
    void reindex() const;
    /** Probe slot of @p line: its entry, or the empty slot to fill. */
    std::uint32_t findSlot(Addr line_addr) const;

    struct Entry {
        Addr lineAddr;
        Cycle completeAt;
    };

    static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

    unsigned entries_;
    std::uint32_t tableSize_; ///< power-of-two, >= 2 * entries_
    mutable std::vector<Entry> active_; ///< live fills, insertion order
    /** line address -> index in active_ of its oldest live record. */
    mutable std::vector<std::uint32_t> table_;
    mutable Cycle minComplete_ = kNoCycle;
};

} // namespace rat::mem

#endif // RAT_MEM_CACHE_HH
