#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rat::mem {

MemoryHierarchy::MemoryHierarchy(const MemConfig &config)
    : l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2),
      l1iMshrs_(config.l1i.mshrs), l1dMshrs_(config.l1d.mshrs),
      l2Mshrs_(config.l2.mshrs), memLatency_(config.memLatency)
{
}

AccessResult
MemoryHierarchy::accessThrough(Cache &l1, MshrFile &mshr1, Addr addr,
                               Cycle now)
{
    AccessResult res;
    const Addr line = l1.lineAlign(addr);

    Cycle l1_ready = 0;
    switch (l1.access(line, now, l1_ready)) {
      case LookupResult::Hit:
        res.completeAt = now + l1.latency();
        res.level = HitLevel::L1;
        return res;
      case LookupResult::HitPending:
        // Merge with the in-flight fill; the original requester already
        // holds the MSHR, so no new allocation is needed.
        res.completeAt = std::max(l1_ready, now + Cycle{l1.latency()});
        res.level = HitLevel::L1;
        return res;
      case LookupResult::Miss:
        break;
    }

    if (!mshr1.canAllocate(now)) {
        res.rejected = true;
        return res;
    }

    // L2 lookup. The L2 may itself have the line pending (fill racing in
    // from memory for another requester).
    Cycle l2_ready = 0;
    const Addr l2_line = l2_.lineAlign(addr);
    switch (l2_.access(l2_line, now, l2_ready)) {
      case LookupResult::Hit: {
        const Cycle done = now + l2_.latency();
        Addr evicted = 0;
        l1.install(line, now, done, evicted);
        mshr1.allocate(line, now, done);
        res.completeAt = done;
        res.level = HitLevel::L2;
        return res;
      }
      case LookupResult::HitPending: {
        const Cycle done = std::max(l2_ready, now + Cycle{l2_.latency()});
        Addr evicted = 0;
        l1.install(line, now, done, evicted);
        mshr1.allocate(line, now, done);
        res.completeAt = done;
        res.level = HitLevel::L2;
        return res;
      }
      case LookupResult::Miss:
        break;
    }

    if (!l2Mshrs_.canAllocate(now)) {
        res.rejected = true;
        return res;
    }

    const Cycle done = now + memLatency_;
    Addr evicted = 0;
    l2_.install(l2_line, now, done, evicted);
    l1.install(line, now, done, evicted);
    l2Mshrs_.allocate(l2_line, now, done);
    mshr1.allocate(line, now, done);
    res.completeAt = done;
    res.level = HitLevel::Memory;
    return res;
}

void
MemoryHierarchy::traceMiss(ThreadId tid, Addr addr, Cycle now,
                           const AccessResult &result)
{
    // Called only on the (already rare) miss path with the mask known
    // non-zero; the duration event spans access to fill completion.
    tracer_->record(tid, obs::EventKind::MemMiss, now, result.completeAt,
                    l1d_.lineAlign(addr),
                    static_cast<std::uint64_t>(result.level));
    tracer_->recordCore(obs::EventKind::MshrOccupancy, now, now,
                        l1iMshrs_.occupancy(now), l1dMshrs_.occupancy(now),
                        l2Mshrs_.occupancy(now));
}

AccessResult
MemoryHierarchy::readData(ThreadId tid, Addr addr, Cycle now,
                          bool speculative)
{
    RAT_ASSERT(tid < kMaxThreads, "bad thread id %u", tid);
    AccessResult res = accessThrough(l1d_, l1dMshrs_, addr, now);
    if (res.rejected)
        return res;
    if (traceMask_ && res.level != HitLevel::L1)
        traceMiss(tid, addr, now, res);

    ThreadMemStats &s = stats_[tid];
    if (speculative) {
        if (res.level == HitLevel::Memory)
            ++s.raMemPrefetches;
        else if (res.level == HitLevel::L2)
            ++s.raL2Prefetches;
    } else {
        ++s.loads;
        if (res.level != HitLevel::L1)
            ++s.l1dMisses;
        if (res.level == HitLevel::Memory)
            ++s.l2DemandMisses;
    }
    return res;
}

AccessResult
MemoryHierarchy::writeData(ThreadId tid, Addr addr, Cycle now)
{
    RAT_ASSERT(tid < kMaxThreads, "bad thread id %u", tid);
    AccessResult res = accessThrough(l1d_, l1dMshrs_, addr, now);
    if (res.rejected)
        return res;
    if (traceMask_ && res.level != HitLevel::L1)
        traceMiss(tid, addr, now, res);
    ThreadMemStats &s = stats_[tid];
    ++s.stores;
    if (res.level != HitLevel::L1)
        ++s.l1dMisses;
    if (res.level == HitLevel::Memory)
        ++s.l2DemandMisses;
    return res;
}

AccessResult
MemoryHierarchy::fetchInst(ThreadId tid, Addr pc, Cycle now)
{
    RAT_ASSERT(tid < kMaxThreads, "bad thread id %u", tid);
    AccessResult res = accessThrough(l1i_, l1iMshrs_, pc, now);
    if (res.rejected)
        return res;
    if (traceMask_ && res.level != HitLevel::L1)
        traceMiss(tid, pc, now, res);
    ThreadMemStats &s = stats_[tid];
    if (res.level != HitLevel::L1)
        ++s.ifetchL1Misses;
    if (res.level == HitLevel::Memory)
        ++s.ifetchL2Misses;
    return res;
}

void
MemoryHierarchy::prefetchInst(ThreadId tid, Addr pc, Cycle now)
{
    RAT_ASSERT(tid < kMaxThreads, "bad thread id %u", tid);
    const Addr line = l1i_.lineAlign(pc);
    if (l1i_.probe(line, now) != LookupResult::Miss)
        return;
    if (!l1iMshrs_.canAllocate(now))
        return;
    const AccessResult res = accessThrough(l1i_, l1iMshrs_, line, now);
    if (!res.rejected)
        ++stats_[tid].ifetchPrefetches;
}

HitLevel
MemoryHierarchy::probe(Addr addr, Cycle now) const
{
    if (l1d_.probe(l1d_.lineAlign(addr), now) != LookupResult::Miss)
        return HitLevel::L1;
    if (l2_.probe(l2_.lineAlign(addr), now) != LookupResult::Miss)
        return HitLevel::L2;
    return HitLevel::Memory;
}

Cycle
MemoryHierarchy::nextFillCompletion(Cycle now) const
{
    const Cycle l1i = l1iMshrs_.earliestCompletion(now);
    const Cycle l1d = l1dMshrs_.earliestCompletion(now);
    const Cycle l2 = l2Mshrs_.earliestCompletion(now);
    return std::min(l1i, std::min(l1d, l2));
}

void
MemoryHierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
    stats_ = {};
}

} // namespace rat::mem
