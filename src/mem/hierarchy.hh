/**
 * @file
 * Three-level memory hierarchy: split L1I/L1D, unified shared L2, fixed
 * main-memory latency — the Table 1 configuration of the paper.
 *
 * The hierarchy is functionally queried at access time and returns the
 * completion cycle. Runahead accesses use the same path flagged
 * speculative: they install lines (that is the prefetch) and are counted
 * separately. The Fig. 4 "no prefetch" ablation is served by
 * `probe()`, which classifies where an access would hit without touching
 * any state.
 */

#ifndef RAT_MEM_HIERARCHY_HH
#define RAT_MEM_HIERARCHY_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "mem/cache.hh"
#include "obs/trace.hh"

namespace rat::mem {

/** Hierarchy-wide configuration (defaults = paper Table 1). */
struct MemConfig {
    CacheConfig l1i{"L1I", 64 * 1024, 4, 64, 1, 8};
    CacheConfig l1d{"L1D", 64 * 1024, 4, 64, 3, 64};
    CacheConfig l2{"L2", 1024 * 1024, 8, 64, 20, 128};
    /** Full L2-miss service latency in cycles. */
    unsigned memLatency = 400;
};

/** Where an access was (or would be) satisfied. */
enum class HitLevel : std::uint8_t { L1, L2, Memory };

/** Outcome of one hierarchy access. */
struct AccessResult {
    /** Cycle at which the data is available to the core. */
    Cycle completeAt = 0;
    /** Deepest level the access had to reach. */
    HitLevel level = HitLevel::L1;
    /** True if the access could not be started (MSHRs full); retry. */
    bool rejected = false;
};

/** Per-thread memory statistics. */
struct ThreadMemStats {
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2DemandMisses = 0;
    std::uint64_t ifetchL1Misses = 0;
    std::uint64_t ifetchL2Misses = 0;
    /** Next-line instruction prefetches actually issued. */
    std::uint64_t ifetchPrefetches = 0;
    /** Runahead (speculative) accesses that reached main memory. */
    std::uint64_t raMemPrefetches = 0;
    /** Runahead accesses satisfied by L2 (warm L1 only). */
    std::uint64_t raL2Prefetches = 0;
};

/**
 * The full memory system seen by the SMT core. All hardware threads share
 * every level (the paper's complete-resource-sharing organisation).
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemConfig &config);

    /**
     * Data read (load or runahead load).
     * @param tid         Requesting thread (for statistics).
     * @param addr        Byte address.
     * @param now         Current cycle.
     * @param speculative True for runahead-mode accesses (prefetches).
     */
    AccessResult readData(ThreadId tid, Addr addr, Cycle now,
                          bool speculative = false);

    /**
     * Data write at store commit. Write-allocate; the core does not wait
     * for the returned completion (write-buffer semantics), but rejection
     * back-pressures commit.
     */
    AccessResult writeData(ThreadId tid, Addr addr, Cycle now);

    /** Instruction fetch of the line containing @p pc. */
    AccessResult fetchInst(ThreadId tid, Addr pc, Cycle now);

    /**
     * Best-effort next-line instruction prefetch (stream-buffer style).
     * Skips silently when the line is present or MSHRs are busy.
     */
    void prefetchInst(ThreadId tid, Addr pc, Cycle now);

    /**
     * Classify where a read would hit, with no state change. Used by the
     * Fig. 4 no-prefetch ablation and by tests.
     */
    HitLevel probe(Addr addr, Cycle now) const;

    /** L1 data cache (tests and occupancy inspection). */
    Cache &l1d() { return l1d_; }
    /** L1 instruction cache. */
    Cache &l1i() { return l1i_; }
    /** Unified L2. */
    Cache &l2() { return l2_; }

    /** MSHR files (self-checking audits and digests; read-only). */
    const MshrFile &l1iMshrs() const { return l1iMshrs_; }
    const MshrFile &l1dMshrs() const { return l1dMshrs_; }
    const MshrFile &l2Mshrs() const { return l2Mshrs_; }

    /** Per-thread statistics. */
    const ThreadMemStats &threadStats(ThreadId tid) const
    {
        return stats_[tid];
    }

    /** Reset all statistics (cache contents are preserved). */
    void resetStats();

    /**
     * Completion cycle of the earliest outstanding line fill across
     * the three MSHR files (kNoCycle when nothing is in flight). Feeds
     * the core's quiescence horizon: no memory-side state the core can
     * observe changes before this cycle.
     */
    Cycle nextFillCompletion(Cycle now) const;

    /** Configured full-miss latency. */
    unsigned memLatency() const { return memLatency_; }

    /**
     * Attach/detach the event tracer (nullptr = off). Observation
     * only: misses are recorded as duration events and MSHR occupancy
     * as counters, with no effect on access outcomes. The enabled
     * category mask is cached so the detached fast path is a single
     * register test.
     */
    void
    setTracer(obs::Tracer *tracer)
    {
        tracer_ = tracer;
        traceMask_ = tracer ? (tracer->mask() & obs::kCatMem) : 0;
    }

  private:
    /** Test hook (MutationCheck) — corrupts MSHR index state. */
    friend class ::rat::check::Mutator;

    /** Record a miss-duration event plus the MSHR occupancy counter. */
    void traceMiss(ThreadId tid, Addr addr, Cycle now,
                   const AccessResult &result);

    /**
     * Common access path through one L1 plus the shared L2.
     * @param l1    Which L1 to use.
     * @param mshr1 That L1's MSHR file.
     */
    AccessResult accessThrough(Cache &l1, MshrFile &mshr1, Addr addr,
                               Cycle now);

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    MshrFile l1iMshrs_;
    MshrFile l1dMshrs_;
    MshrFile l2Mshrs_;
    unsigned memLatency_;
    obs::Tracer *tracer_ = nullptr;
    unsigned traceMask_ = 0;

    std::array<ThreadMemStats, kMaxThreads> stats_{};
};

} // namespace rat::mem

#endif // RAT_MEM_HIERARCHY_HH
