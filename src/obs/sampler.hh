/**
 * @file
 * Windowed counter sampler: every N cycles of the measured window,
 * snapshot the core's headline counters and occupancies into a
 * time-series, and accumulate log2-scaled latency histograms.
 *
 * Unlike the event tracer (obs/trace.hh) this data is *part of the
 * result*: `SimResult::telemetry` round-trips exactly through
 * report::toJson/fromJson (all fields are integers), so sweeps and
 * the farm's result cache carry it. A SimConfig with a non-zero
 * `sampleWindow` therefore serializes the window — telemetry-bearing
 * cells get their own cache keys, and cached cells replay the same
 * telemetry a fresh simulation would produce.
 */

#ifndef RAT_OBS_SAMPLER_HH
#define RAT_OBS_SAMPLER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rat::obs {

/**
 * Histogram over uint64 samples with power-of-two buckets: bucket i
 * counts values v with 2^i <= v < 2^(i+1) (v = 0 lands in bucket 0,
 * values beyond the last bucket clamp into it). Log scaling fits the
 * long-tailed latency distributions this records (miss latency,
 * episode length, issue-to-retire).
 */
class Log2Histogram
{
  public:
    static constexpr unsigned kBuckets = 24;

    void
    sample(std::uint64_t v)
    {
        unsigned bucket = 0;
        while (bucket + 1 < kBuckets && (v >> (bucket + 1)) != 0)
            ++bucket;
        ++buckets_[bucket];
        ++total_;
        sum_ += v;
    }

    std::uint64_t bucketCount(unsigned i) const { return buckets_[i]; }
    std::uint64_t totalCount() const { return total_; }
    std::uint64_t sum() const { return sum_; }
    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    bool
    operator==(const Log2Histogram &o) const
    {
        return buckets_ == o.buckets_ && total_ == o.total_ &&
               sum_ == o.sum_;
    }

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/** One window snapshot. All counters are core-wide (summed threads). */
struct WindowSample {
    /** Window end cycle (exclusive); covers [cycle-window, cycle). */
    Cycle cycle = 0;
    /** Instructions committed during the window. */
    std::uint64_t committed = 0;
    /** Instructions executed during the window. */
    std::uint64_t executed = 0;
    /** Runahead-executed instructions during the window. */
    std::uint64_t raExecuted = 0;
    /** ROB / issue-queue / LSQ occupancy at the window boundary. */
    std::uint64_t rob = 0;
    std::uint64_t iq = 0;
    std::uint64_t lsq = 0;

    bool
    operator==(const WindowSample &o) const
    {
        return cycle == o.cycle && committed == o.committed &&
               executed == o.executed && raExecuted == o.raExecuted &&
               rob == o.rob && iq == o.iq && lsq == o.lsq;
    }
};

/** The telemetry block carried inside SimResult. */
struct TelemetryResult {
    /** False when sampling was off — then nothing serializes. */
    bool enabled = false;
    /** The configured sampling window, in cycles. */
    Cycle window = 0;
    std::vector<WindowSample> samples;
    /** Runahead episode lengths, in cycles. */
    Log2Histogram episodeCycles;
    /** Demand L2/memory miss latencies (issue to fill), in cycles. */
    Log2Histogram missLatency;
    /** Issue-to-retire latency of committed instructions, in cycles. */
    Log2Histogram issueToRetire;

    bool
    operator==(const TelemetryResult &o) const
    {
        return enabled == o.enabled && window == o.window &&
               samples == o.samples && episodeCycles == o.episodeCycles &&
               missLatency == o.missLatency &&
               issueToRetire == o.issueToRetire;
    }
};

/**
 * One state-digest sample: the FNV-1a digest of the core's canonical
 * state enumeration (src/check/digest.hh) at a window boundary. Like
 * WindowSample, `cycle` is the window end (exclusive).
 */
struct DigestSample {
    Cycle cycle = 0;
    std::uint64_t digest = 0;

    bool
    operator==(const DigestSample &o) const
    {
        return cycle == o.cycle && digest == o.digest;
    }
};

/**
 * The digest stream carried inside SimResult when `digestWindow` is
 * non-zero. Serialized alongside telemetry (digests change the result
 * payload, so — exactly like `sampleWindow` — a digest-bearing config
 * serializes its window and gets its own cache key). `ratsim verify`
 * compares these streams across the host-side mode grid.
 */
struct DigestTrack {
    /** The configured digest window, in cycles (0 = disabled). */
    Cycle window = 0;
    std::vector<DigestSample> samples;

    bool enabled() const { return window != 0; }

    bool
    operator==(const DigestTrack &o) const
    {
        return window == o.window && samples == o.samples;
    }
};

/**
 * The sampler the core drives during the measured window. The core
 * calls `boundary()` to learn the next window-end cycle, and
 * `sampleAt()` with its current cumulative counters when the clock
 * reaches (or skips across) that boundary; the sampler turns the
 * cumulative values into per-window deltas.
 */
class WindowSampler
{
  public:
    explicit WindowSampler(Cycle window) : window_(window) {}

    /** Arm the sampler at the start cycle of the measured window. */
    void
    reset(Cycle start)
    {
        nextAt_ = window_ ? start + window_ : kNoCycle;
        prevCommitted_ = prevExecuted_ = prevRaExecuted_ = 0;
        result_ = TelemetryResult{};
        result_.enabled = window_ != 0;
        result_.window = window_;
    }

    /** The next cycle at which a sample is due (kNoCycle when off). */
    Cycle nextAt() const { return nextAt_; }

    /**
     * Record the sample for the window ending at nextAt(). The counter
     * arguments are cumulative since reset(); occupancies are
     * instantaneous.
     */
    void
    sampleAt(std::uint64_t committed, std::uint64_t executed,
             std::uint64_t ra_executed, std::uint64_t rob,
             std::uint64_t iq, std::uint64_t lsq)
    {
        WindowSample s;
        s.cycle = nextAt_;
        s.committed = committed - prevCommitted_;
        s.executed = executed - prevExecuted_;
        s.raExecuted = ra_executed - prevRaExecuted_;
        s.rob = rob;
        s.iq = iq;
        s.lsq = lsq;
        result_.samples.push_back(s);
        prevCommitted_ = committed;
        prevExecuted_ = executed;
        prevRaExecuted_ = ra_executed;
        nextAt_ += window_;
    }

    void noteEpisode(std::uint64_t cycles)
    {
        result_.episodeCycles.sample(cycles);
    }
    void noteMissLatency(std::uint64_t cycles)
    {
        result_.missLatency.sample(cycles);
    }
    void noteIssueToRetire(std::uint64_t cycles)
    {
        result_.issueToRetire.sample(cycles);
    }

    /** The accumulated telemetry (copied into SimResult). */
    const TelemetryResult &result() const { return result_; }

  private:
    Cycle window_;
    Cycle nextAt_ = kNoCycle;
    std::uint64_t prevCommitted_ = 0;
    std::uint64_t prevExecuted_ = 0;
    std::uint64_t prevRaExecuted_ = 0;
    TelemetryResult result_;
};

} // namespace rat::obs

#endif // RAT_OBS_SAMPLER_HH
