#include "obs/trace.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace rat::obs {

bool
parseTraceCategories(const std::string &text, unsigned &mask)
{
    unsigned out = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string name = text.substr(pos, comma - pos);
        if (name == "fetch") {
            out |= kCatFetch;
        } else if (name == "sched") {
            out |= kCatSched;
        } else if (name == "mem") {
            out |= kCatMem;
        } else if (name == "runahead") {
            out |= kCatRunahead;
        } else if (name == "all") {
            out |= kCatAll;
        } else {
            return false;
        }
        pos = comma + 1;
    }
    mask = out;
    return true;
}

const char *
traceCategoryNames()
{
    return "fetch,sched,mem,runahead,all";
}

Tracer::Tracer(unsigned categories, unsigned num_threads,
               std::size_t ring_capacity)
    : mask_(categories), coreRing_(ring_capacity)
{
    threadRings_.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t)
        threadRings_.emplace_back(ring_capacity);
}

void
Tracer::clear()
{
    for (EventRing &ring : threadRings_)
        ring.clear();
    coreRing_.clear();
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::uint64_t sum = coreRing_.dropped();
    for (const EventRing &ring : threadRings_)
        sum += ring.dropped();
    return sum;
}

std::uint64_t
Tracer::retainedEvents() const
{
    std::uint64_t sum = coreRing_.size();
    for (const EventRing &ring : threadRings_)
        sum += ring.size();
    return sum;
}

namespace {

// Track ids in the exported trace: hardware threads are 0..N-1; the
// core-level tracks sit far above any thread id.
constexpr unsigned kMshrTrack = 100;
constexpr unsigned kSkipTrack = 101;

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0)
        out.append(buf, static_cast<std::size_t>(
                            n < static_cast<int>(sizeof(buf))
                                ? n
                                : static_cast<int>(sizeof(buf)) - 1));
}

void
appendMeta(std::string &out, unsigned track, const char *name)
{
    appendf(out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
            "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
            track, name);
}

const char *
levelName(std::uint64_t level)
{
    switch (level) {
      case 1:
        return "L2";
      case 2:
        return "Memory";
      default:
        return "L1";
    }
}

void
appendEvent(std::string &out, const TraceEvent &e)
{
    const unsigned long long ts = e.begin;
    const unsigned long long dur = e.end > e.begin ? e.end - e.begin : 1;
    switch (e.kind) {
      case EventKind::FetchGroup:
        appendf(out,
                "{\"name\":\"fetch\",\"cat\":\"fetch\",\"ph\":\"X\","
                "\"pid\":0,\"tid\":%u,\"ts\":%llu,\"dur\":%llu,"
                "\"args\":{\"pc\":\"0x%llx\",\"ops\":%llu}}",
                e.tid, ts, dur, (unsigned long long)e.a,
                (unsigned long long)e.b);
        break;
      case EventKind::Rename:
        appendf(out,
                "{\"name\":\"rename\",\"cat\":\"sched\",\"ph\":\"i\","
                "\"s\":\"t\",\"pid\":0,\"tid\":%u,\"ts\":%llu,"
                "\"args\":{\"pc\":\"0x%llx\"}}",
                e.tid, ts, (unsigned long long)e.a);
        break;
      case EventKind::Issue:
        appendf(out,
                "{\"name\":\"issue\",\"cat\":\"sched\",\"ph\":\"X\","
                "\"pid\":0,\"tid\":%u,\"ts\":%llu,\"dur\":%llu,"
                "\"args\":{\"pc\":\"0x%llx\"}}",
                e.tid, ts, dur, (unsigned long long)e.a);
        break;
      case EventKind::Retire:
        appendf(out,
                "{\"name\":\"retire\",\"cat\":\"sched\",\"ph\":\"i\","
                "\"s\":\"t\",\"pid\":0,\"tid\":%u,\"ts\":%llu,"
                "\"args\":{\"pc\":\"0x%llx\"}}",
                e.tid, ts, (unsigned long long)e.a);
        break;
      case EventKind::MemMiss:
        appendf(out,
                "{\"name\":\"miss\",\"cat\":\"mem\",\"ph\":\"X\","
                "\"pid\":0,\"tid\":%u,\"ts\":%llu,\"dur\":%llu,"
                "\"args\":{\"line\":\"0x%llx\",\"level\":\"%s\"}}",
                e.tid, ts, dur, (unsigned long long)e.a,
                levelName(e.b));
        break;
      case EventKind::MshrOccupancy:
        appendf(out,
                "{\"name\":\"mshr\",\"cat\":\"mem\",\"ph\":\"C\","
                "\"pid\":0,\"tid\":%u,\"ts\":%llu,"
                "\"args\":{\"l1i\":%llu,\"l1d\":%llu,\"l2\":%llu}}",
                kMshrTrack, ts, (unsigned long long)e.a,
                (unsigned long long)e.b, (unsigned long long)e.c);
        break;
      case EventKind::RunaheadEpisode:
        appendf(out,
                "{\"name\":\"runahead episode\",\"cat\":\"runahead\","
                "\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"ts\":%llu,"
                "\"dur\":%llu,\"args\":{\"triggerPc\":\"0x%llx\","
                "\"pseudoRetired\":%llu,\"useless\":%s}}",
                e.tid, ts, dur, (unsigned long long)e.a,
                (unsigned long long)e.b, e.c ? "true" : "false");
        break;
      case EventKind::CycleSkip:
        appendf(out,
                "{\"name\":\"cycle skip\",\"cat\":\"sched\","
                "\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"ts\":%llu,"
                "\"dur\":%llu,\"args\":{\"cycles\":%llu}}",
                kSkipTrack, ts, dur, dur);
        break;
    }
}

} // namespace

std::string
Tracer::toChromeJson() const
{
    std::string out;
    out.reserve(128 * (retainedEvents() + 8));
    out += "{\"traceEvents\":[";

    appendMeta(out, kMshrTrack, "MSHR occupancy");
    out += ",";
    appendMeta(out, kSkipTrack, "cycle skip");
    for (unsigned t = 0; t < numThreads(); ++t) {
        char name[32];
        std::snprintf(name, sizeof(name), "hw thread %u", t);
        out += ",";
        appendMeta(out, t, name);
    }

    for (unsigned t = 0; t < numThreads(); ++t) {
        const EventRing &ring = threadRings_[t];
        for (std::size_t i = 0; i < ring.size(); ++i) {
            out += ",";
            appendEvent(out, ring.at(i));
        }
    }
    for (std::size_t i = 0; i < coreRing_.size(); ++i) {
        out += ",";
        appendEvent(out, coreRing_.at(i));
    }

    appendf(out,
            "],\"displayTimeUnit\":\"ms\","
            "\"otherData\":{\"droppedEvents\":%llu}}\n",
            (unsigned long long)droppedEvents());
    return out;
}

bool
Tracer::writeTo(const std::string &path, std::string *error) const
{
    const std::string text = toChromeJson();
    if (path == "-") {
        std::cout << text;
        return true;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    out << text;
    out.flush();
    if (!out) {
        if (error)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

} // namespace rat::obs
