/**
 * @file
 * Low-overhead event tracer for cycle-level timelines.
 *
 * Design constraints (DESIGN.md "Observability"):
 *  - Observation only: recording an event must never feed back into
 *    simulation state. The tracer has no reference to the core; the
 *    instrumented components push plain integers into it.
 *  - Near-zero cost when off: every instrumentation site is gated on a
 *    category mask the component caches locally (0 when no tracer is
 *    attached), so the disabled path is one always-not-taken test of a
 *    hot register against an immediate.
 *  - Bounded memory: each track is a fixed-capacity ring that
 *    overwrites its oldest event; a long run keeps the *newest* window
 *    of activity and reports how much it dropped.
 *
 * Export is the Chrome trace-event JSON format (the `traceEvents`
 * array form), loadable in Perfetto / chrome://tracing. One timeline
 * track per hardware thread, plus a counter track for MSHR occupancy
 * and a track for cycle-skip spans. Timestamps map 1 simulated cycle
 * to 1 microsecond.
 */

#ifndef RAT_OBS_TRACE_HH
#define RAT_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rat::obs {

/** Trace categories (bitmask). */
enum Category : unsigned {
    kCatFetch = 1u << 0,    ///< fetch groups
    kCatSched = 1u << 1,    ///< rename/issue/retire + cycle-skip spans
    kCatMem = 1u << 2,      ///< cache-miss durations + MSHR occupancy
    kCatRunahead = 1u << 3, ///< runahead episodes
    kCatAll = kCatFetch | kCatSched | kCatMem | kCatRunahead,
};

/**
 * Parse a comma-separated category list ("fetch,sched,mem,runahead",
 * or "all") into a mask. Returns false on an unknown name (leaving
 * @p mask untouched).
 */
bool parseTraceCategories(const std::string &text, unsigned &mask);

/** The category names accepted by parseTraceCategories, for usage(). */
const char *traceCategoryNames();

/** What an event records; determines its exported name and args. */
enum class EventKind : std::uint8_t {
    FetchGroup,      ///< span, a = first pc, b = ops fetched
    Rename,          ///< instant, a = pc
    Issue,           ///< span issue->writeback, a = pc
    Retire,          ///< instant, a = pc
    MemMiss,         ///< span access->fill, a = line addr, b = level
    MshrOccupancy,   ///< counter, a/b/c = L1I/L1D/L2 occupancy
    RunaheadEpisode, ///< span enter->exit, a = trigger pc,
                     ///< b = pseudo-retired, c = useless verdict
    CycleSkip,       ///< span of fast-forwarded quiescent cycles
};

/** One recorded event. Compact and POD: rings copy these around. */
struct TraceEvent {
    Cycle begin = 0;
    Cycle end = 0; ///< == begin for instants and counters
    EventKind kind = EventKind::FetchGroup;
    std::uint8_t tid = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
};

/** Fixed-capacity overwrite-oldest event ring. */
class EventRing
{
  public:
    explicit EventRing(std::size_t capacity) : cap_(capacity)
    {
        buf_.reserve(capacity);
    }

    void
    push(const TraceEvent &e)
    {
        if (buf_.size() < cap_) {
            buf_.push_back(e);
        } else {
            buf_[static_cast<std::size_t>(pushed_ % cap_)] = e;
        }
        ++pushed_;
    }

    /** Events currently held (≤ capacity). */
    std::size_t size() const { return buf_.size(); }
    /** Total events ever pushed. */
    std::uint64_t pushed() const { return pushed_; }
    /** Events lost to overwrite. */
    std::uint64_t
    dropped() const
    {
        return pushed_ > buf_.size() ? pushed_ - buf_.size() : 0;
    }

    /**
     * @p i-th surviving event in record order (0 = oldest surviving).
     */
    const TraceEvent &
    at(std::size_t i) const
    {
        const std::size_t start =
            buf_.size() < cap_ ? 0
                               : static_cast<std::size_t>(pushed_ % cap_);
        return buf_[(start + i) % buf_.size()];
    }

    void
    clear()
    {
        buf_.clear();
        pushed_ = 0;
    }

  private:
    std::size_t cap_;
    std::vector<TraceEvent> buf_;
    std::uint64_t pushed_ = 0;
};

/**
 * The tracer: one ring per hardware-thread track plus one shared ring
 * for the core-level tracks (MSHR counters, cycle-skip spans).
 */
class Tracer
{
  public:
    /**
     * @param categories    Mask of Category bits to record.
     * @param num_threads   Hardware threads (one track each).
     * @param ring_capacity Events retained per track.
     */
    Tracer(unsigned categories, unsigned num_threads,
           std::size_t ring_capacity = kDefaultRingCapacity);

    /** Enabled-category mask; components cache this. */
    unsigned mask() const { return mask_; }

    /** Record onto thread @p tid's track. */
    void
    record(ThreadId tid, EventKind kind, Cycle begin, Cycle end,
           std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0)
    {
        threadRings_[tid].push(TraceEvent{begin, end, kind, tid, a, b, c});
    }

    /** Record onto the core-level track (counters, skip spans). */
    void
    recordCore(EventKind kind, Cycle begin, Cycle end,
               std::uint64_t a = 0, std::uint64_t b = 0,
               std::uint64_t c = 0)
    {
        coreRing_.push(TraceEvent{begin, end, kind, 0, a, b, c});
    }

    /** Drop everything recorded so far (the warmup→measure boundary). */
    void clear();

    /** Events lost to ring overwrite, across all tracks. */
    std::uint64_t droppedEvents() const;
    /** Events currently retained, across all tracks. */
    std::uint64_t retainedEvents() const;

    const EventRing &threadRing(ThreadId tid) const
    {
        return threadRings_[tid];
    }
    const EventRing &coreRing() const { return coreRing_; }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threadRings_.size());
    }

    /** Serialize everything as Chrome trace-event JSON. */
    std::string toChromeJson() const;

    /**
     * Write toChromeJson() to @p path ("-" = stdout). Returns false
     * and fills @p error on I/O failure.
     */
    bool writeTo(const std::string &path, std::string *error) const;

    static constexpr std::size_t kDefaultRingCapacity = 1u << 15;

  private:
    unsigned mask_;
    std::vector<EventRing> threadRings_;
    EventRing coreRing_;
};

} // namespace rat::obs

#endif // RAT_OBS_TRACE_HH
