#include "policy/dcra.hh"

#include <algorithm>

namespace rat::policy {

void
DcraPolicy::beginCycle(core::SmtCore &core)
{
    const unsigned n = core.numThreads();
    const auto &cfg = core.config();
    const Cycle now = core.cycle();

    // Classify threads.
    bool slow[kMaxThreads] = {};
    bool fp_active[kMaxThreads] = {};
    for (unsigned t = 0; t < n; ++t) {
        slow[t] = core.hasPendingL2Miss(static_cast<ThreadId>(t)) ||
                  core.inRunahead(static_cast<ThreadId>(t));
        const Cycle last = core.lastFpIssue(static_cast<ThreadId>(t));
        fp_active[t] =
            last + config_.fpActivityWindow >= now && last != 0;
    }

    // Per-resource totals.
    const double totals[kNumResources] = {
        static_cast<double>(cfg.intIqEntries),
        static_cast<double>(cfg.lsIqEntries),
        static_cast<double>(cfg.fpIqEntries),
        static_cast<double>(cfg.intRegs),
        static_cast<double>(cfg.fpRegs),
    };

    for (unsigned r = 0; r < kNumResources; ++r) {
        const bool fp_resource = (r == kFpIq || r == kFpRegs);
        double weight_sum = 0.0;
        double weights[kMaxThreads] = {};
        for (unsigned t = 0; t < n; ++t) {
            const bool active = !fp_resource || fp_active[t];
            weights[t] = !active ? config_.inactiveWeight
                         : slow[t] ? config_.slowBoost
                                   : 1.0;
            weight_sum += weights[t];
        }
        for (unsigned t = 0; t < n; ++t)
            caps_[t][r] = totals[r] * weights[t] / weight_sum;
    }
}

Cycle
DcraPolicy::quiescentUntil(const core::SmtCore &core, Cycle now) const
{
    // The slow/fast split moves only on core events (L2-miss counts,
    // runahead transitions), but FP-activity classification expires by
    // time alone: a thread stops being FP-active the first cycle where
    // lastFpIssue + fpActivityWindow < now. Caps recompute then, so a
    // fast-forward must stop at the earliest such reclassification.
    // The boundary cycle itself (last + window + 1, the first cycle
    // classified inactive) must still clamp: its beginCycle is the one
    // that recomputes the caps, so it may not be skipped over.
    Cycle horizon = kNoCycle;
    for (unsigned t = 0; t < core.numThreads(); ++t) {
        const Cycle last = core.lastFpIssue(static_cast<ThreadId>(t));
        if (last == 0 || last + config_.fpActivityWindow + 1 < now)
            continue; // never issued FP / reclassification already ran
        horizon = std::min(horizon, last + config_.fpActivityWindow + 1);
    }
    return horizon;
}

bool
DcraPolicy::mayFetch(const core::SmtCore &core, ThreadId tid)
{
    using core::IqClass;
    const double usage[kNumResources] = {
        static_cast<double>(core.iqOccupancy(IqClass::Int, tid)),
        static_cast<double>(core.iqOccupancy(IqClass::Mem, tid)),
        static_cast<double>(core.iqOccupancy(IqClass::Fp, tid)),
        static_cast<double>(core.regsHeld(tid, /*fp=*/false)),
        static_cast<double>(core.regsHeld(tid, /*fp=*/true)),
    };
    for (unsigned r = 0; r < kNumResources; ++r) {
        if (usage[r] > caps_[tid][r])
            return false;
    }
    return true;
}

} // namespace rat::policy
