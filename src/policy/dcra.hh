/**
 * @file
 * DCRA — Dynamically Controlled Resource Allocation (Cazorla et al.,
 * MICRO-37 [1]).
 *
 * Threads are classified per cycle as *slow* (outstanding L2 miss) or
 * *fast*, and per resource as *active* (recently using it) or
 * *inactive*. Each monitored resource (INT/FP/LS issue queues, INT/FP
 * renaming registers) is partitioned: active slow threads receive a
 * boosted share so memory-bound threads can expose MLP, inactive threads
 * keep a small reserve. A thread whose usage of any monitored resource
 * exceeds its cap is fetch-gated until it drops back under.
 *
 * The share formula follows the paper's sharing model with the boost
 * expressed as a single configurable factor (documented in DESIGN.md as
 * a calibrated approximation of the original's C constant).
 */

#ifndef RAT_POLICY_DCRA_HH
#define RAT_POLICY_DCRA_HH

#include <array>

#include "core/policy_iface.hh"
#include "core/smt_core.hh"
#include "policy/fetch_policies.hh"

namespace rat::policy {

/** Tunables for DCRA. */
struct DcraConfig {
    /** Share weight of an active slow thread (fast threads weigh 1). */
    double slowBoost = 2.0;
    /** Share weight of an inactive thread (its reserve). */
    double inactiveWeight = 0.25;
    /** A thread is FP-active if it issued FP work this recently. */
    Cycle fpActivityWindow = 4096;
};

/** The DCRA resource-control policy. */
class DcraPolicy : public IcountPolicy
{
  public:
    explicit DcraPolicy(const DcraConfig &config = {}) : config_(config) {}

    void beginCycle(core::SmtCore &core) override;
    bool mayFetch(const core::SmtCore &core, ThreadId tid) override;
    Cycle quiescentUntil(const core::SmtCore &core,
                         Cycle now) const override;
    const char *name() const override { return "DCRA"; }

    /** Computed cap for a resource (exposed for tests). */
    double capOf(ThreadId tid, unsigned resource) const
    {
        return caps_[tid][resource];
    }

    /** Monitored resource indices. */
    enum Resource : unsigned {
        kIntIq = 0,
        kLsIq,
        kFpIq,
        kIntRegs,
        kFpRegs,
        kNumResources
    };

  private:
    DcraConfig config_;
    std::array<std::array<double, kNumResources>, kMaxThreads> caps_{};
};

} // namespace rat::policy

#endif // RAT_POLICY_DCRA_HH
