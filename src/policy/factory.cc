#include "policy/factory.hh"

#include "common/logging.hh"
#include "policy/dcra.hh"
#include "policy/fetch_policies.hh"
#include "policy/hill_climbing.hh"
#include "policy/mlp_aware.hh"

namespace rat::policy {

std::unique_ptr<core::SchedulingPolicy>
makePolicy(core::PolicyKind kind)
{
    using core::PolicyKind;
    switch (kind) {
      case PolicyKind::RoundRobin:
        return std::make_unique<RoundRobinPolicy>();
      case PolicyKind::Icount:
      case PolicyKind::Rat: // RaT uses ICOUNT priority (Section 3)
        return std::make_unique<IcountPolicy>();
      case PolicyKind::Stall:
        return std::make_unique<StallPolicy>();
      case PolicyKind::Flush:
        return std::make_unique<FlushPolicy>();
      case PolicyKind::Dcra:
        return std::make_unique<DcraPolicy>();
      case PolicyKind::RatDcra:
        // The future-work hybrid of Section 5.2: the core runs runahead
        // while DCRA gates over-consuming threads.
        return std::make_unique<DcraPolicy>();
      case PolicyKind::HillClimbing:
        return std::make_unique<HillClimbingPolicy>();
      case PolicyKind::MlpAware:
        return std::make_unique<MlpAwarePolicy>();
    }
    panic("unknown policy kind");
}

std::optional<core::PolicyKind>
parsePolicyKind(const std::string &name)
{
    using core::PolicyKind;
    if (name == "RR")
        return PolicyKind::RoundRobin;
    if (name == "ICOUNT")
        return PolicyKind::Icount;
    if (name == "STALL")
        return PolicyKind::Stall;
    if (name == "FLUSH")
        return PolicyKind::Flush;
    if (name == "DCRA")
        return PolicyKind::Dcra;
    if (name == "HillClimbing" || name == "HC")
        return PolicyKind::HillClimbing;
    if (name == "RaT" || name == "RAT")
        return PolicyKind::Rat;
    if (name == "RaT+DCRA" || name == "RATDCRA")
        return PolicyKind::RatDcra;
    if (name == "MLP")
        return PolicyKind::MlpAware;
    return std::nullopt;
}

const char *
policyKindName(core::PolicyKind kind)
{
    // The canonical CLI spellings are exactly the core's display names.
    return core::policyName(kind);
}

std::vector<std::string>
policyKindNames()
{
    using core::PolicyKind;
    std::vector<std::string> names;
    for (const PolicyKind kind :
         {PolicyKind::RoundRobin, PolicyKind::Icount, PolicyKind::Stall,
          PolicyKind::Flush, PolicyKind::Dcra, PolicyKind::HillClimbing,
          PolicyKind::Rat, PolicyKind::RatDcra, PolicyKind::MlpAware})
        names.emplace_back(policyKindName(kind));
    return names;
}

} // namespace rat::policy
