#include "policy/factory.hh"

#include "common/logging.hh"
#include "policy/dcra.hh"
#include "policy/fetch_policies.hh"
#include "policy/hill_climbing.hh"
#include "policy/mlp_aware.hh"

namespace rat::policy {

std::unique_ptr<core::SchedulingPolicy>
makePolicy(core::PolicyKind kind)
{
    using core::PolicyKind;
    switch (kind) {
      case PolicyKind::RoundRobin:
        return std::make_unique<RoundRobinPolicy>();
      case PolicyKind::Icount:
      case PolicyKind::Rat: // RaT uses ICOUNT priority (Section 3)
        return std::make_unique<IcountPolicy>();
      case PolicyKind::Stall:
        return std::make_unique<StallPolicy>();
      case PolicyKind::Flush:
        return std::make_unique<FlushPolicy>();
      case PolicyKind::Dcra:
        return std::make_unique<DcraPolicy>();
      case PolicyKind::RatDcra:
        // The future-work hybrid of Section 5.2: the core runs runahead
        // while DCRA gates over-consuming threads.
        return std::make_unique<DcraPolicy>();
      case PolicyKind::HillClimbing:
        return std::make_unique<HillClimbingPolicy>();
      case PolicyKind::MlpAware:
        return std::make_unique<MlpAwarePolicy>();
    }
    panic("unknown policy kind");
}

} // namespace rat::policy
