/**
 * @file
 * Factory mapping a PolicyKind to a concrete scheduling-policy object.
 *
 * Note that Runahead Threads is not itself a fetch policy: RaT runs on
 * top of plain ICOUNT priority (the core performs the mode switching),
 * so PolicyKind::Rat maps to an IcountPolicy instance.
 */

#ifndef RAT_POLICY_FACTORY_HH
#define RAT_POLICY_FACTORY_HH

#include <memory>

#include "core/config.hh"
#include "core/policy_iface.hh"

namespace rat::policy {

/** Create the scheduling policy object for @p kind. */
std::unique_ptr<core::SchedulingPolicy> makePolicy(core::PolicyKind kind);

} // namespace rat::policy

#endif // RAT_POLICY_FACTORY_HH
