/**
 * @file
 * Factory mapping a PolicyKind to a concrete scheduling-policy object.
 *
 * Note that Runahead Threads is not itself a fetch policy: RaT runs on
 * top of plain ICOUNT priority (the core performs the mode switching),
 * so PolicyKind::Rat maps to an IcountPolicy instance.
 */

#ifndef RAT_POLICY_FACTORY_HH
#define RAT_POLICY_FACTORY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/policy_iface.hh"

namespace rat::policy {

/** Create the scheduling policy object for @p kind. */
std::unique_ptr<core::SchedulingPolicy> makePolicy(core::PolicyKind kind);

/**
 * Parse a technique name as accepted by `ratsim --policy` (ICOUNT,
 * STALL, FLUSH, DCRA, HillClimbing/HC, RaT/RAT, RaT+DCRA/RATDCRA, MLP,
 * RR). Returns std::nullopt for unknown names.
 */
std::optional<core::PolicyKind> parsePolicyKind(const std::string &name);

/** Canonical CLI spelling of @p kind (round-trips via parsePolicyKind). */
const char *policyKindName(core::PolicyKind kind);

/** Canonical names of every technique, in PolicyKind order. */
std::vector<std::string> policyKindNames();

} // namespace rat::policy

#endif // RAT_POLICY_FACTORY_HH
