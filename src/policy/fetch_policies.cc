#include "policy/fetch_policies.hh"

#include <algorithm>

namespace rat::policy {

void
RoundRobinPolicy::fetchOrder(const core::SmtCore &core,
                             std::vector<ThreadId> &order)
{
    const unsigned n = core.numThreads();
    order.clear();
    for (unsigned i = 0; i < n; ++i)
        order.push_back(static_cast<ThreadId>((next_ + i) % n));
    next_ = (next_ + 1) % n;
}

void
RoundRobinPolicy::onCyclesSkipped(const core::SmtCore &core, Cycle skipped)
{
    // fetchOrder advances the cursor once per cycle; elided idle cycles
    // must advance it the same way so the rotation stays bit-identical.
    next_ = static_cast<unsigned>((next_ + skipped) % core.numThreads());
}

void
IcountPolicy::fetchOrder(const core::SmtCore &core,
                         std::vector<ThreadId> &order)
{
    const unsigned n = core.numThreads();
    order.clear();
    for (unsigned i = 0; i < n; ++i)
        order.push_back(static_cast<ThreadId>((tiebreak_ + i) % n));
    if (core.config().broadcastScheduler) {
        // Legacy reference path: the seed implementation's per-cycle
        // std::stable_sort (which allocates its merge buffer).
        std::stable_sort(order.begin(), order.end(),
                         [&core](ThreadId a, ThreadId b) {
                             return core.icount(a) < core.icount(b);
                         });
    } else {
        // n <= kMaxThreads = 8: a stable insertion sort orders the few
        // thread ids without the per-cycle allocation of stable_sort.
        for (std::size_t i = 1; i < order.size(); ++i) {
            const ThreadId v = order[i];
            const unsigned key = core.icount(v);
            std::size_t j = i;
            while (j > 0 && core.icount(order[j - 1]) > key) {
                order[j] = order[j - 1];
                --j;
            }
            order[j] = v;
        }
    }
    tiebreak_ = (tiebreak_ + 1) % n;
}

void
IcountPolicy::onCyclesSkipped(const core::SmtCore &core, Cycle skipped)
{
    // The per-cycle tiebreak rotation must account for elided cycles
    // (every ICOUNT-derived policy inherits this).
    tiebreak_ =
        static_cast<unsigned>((tiebreak_ + skipped) % core.numThreads());
}

bool
StallPolicy::mayFetch(const core::SmtCore &core, ThreadId tid)
{
    return !core.hasPendingL2Miss(tid);
}

bool
FlushPolicy::mayFetch(const core::SmtCore &core, ThreadId tid)
{
    return !core.hasPendingL2Miss(tid);
}

void
FlushPolicy::onL2MissDetected(core::SmtCore &core, ThreadId tid,
                              const core::DynInst &inst)
{
    // Squash everything younger than the missing load; fetch stays gated
    // (mayFetch) until the miss completes, then the thread re-fetches.
    core.squashYoungerThan(tid, inst.op.seq);
}

} // namespace rat::policy
