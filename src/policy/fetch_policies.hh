/**
 * @file
 * Static instruction-fetch policies: Round Robin and ICOUNT [18], plus
 * the long-latency-load handling schemes STALL and FLUSH [17] built on
 * top of ICOUNT, exactly the comparison set of the paper's Section 5.1.
 */

#ifndef RAT_POLICY_FETCH_POLICIES_HH
#define RAT_POLICY_FETCH_POLICIES_HH

#include <vector>

#include "core/policy_iface.hh"
#include "core/smt_core.hh"

namespace rat::policy {

/** Simple rotating fetch priority; no resource awareness. */
class RoundRobinPolicy : public core::SchedulingPolicy
{
  public:
    void fetchOrder(const core::SmtCore &core,
                    std::vector<ThreadId> &order) override;
    void onCyclesSkipped(const core::SmtCore &core,
                         Cycle skipped) override;
    const char *name() const override { return "RR"; }

  private:
    unsigned next_ = 0;
};

/**
 * ICOUNT [18]: prioritize the threads with the fewest instructions in
 * the front end and issue queues. The paper's reference baseline.
 */
class IcountPolicy : public core::SchedulingPolicy
{
  public:
    void fetchOrder(const core::SmtCore &core,
                    std::vector<ThreadId> &order) override;
    void onCyclesSkipped(const core::SmtCore &core,
                         Cycle skipped) override;
    const char *name() const override { return "ICOUNT"; }

  private:
    unsigned tiebreak_ = 0;
};

/**
 * STALL [17]: ICOUNT priority; a thread with a detected outstanding L2
 * miss stops fetching until the miss is serviced. Its already-allocated
 * resources are held throughout.
 */
class StallPolicy : public IcountPolicy
{
  public:
    bool mayFetch(const core::SmtCore &core, ThreadId tid) override;
    const char *name() const override { return "STALL"; }
};

/**
 * FLUSH [17]: like STALL, but on detection the thread's instructions
 * younger than the missing load are squashed, releasing its resources
 * at the cost of re-fetching them later.
 */
class FlushPolicy : public IcountPolicy
{
  public:
    bool mayFetch(const core::SmtCore &core, ThreadId tid) override;
    void onL2MissDetected(core::SmtCore &core, ThreadId tid,
                          const core::DynInst &inst) override;
    const char *name() const override { return "FLUSH"; }
};

} // namespace rat::policy

#endif // RAT_POLICY_FETCH_POLICIES_HH
