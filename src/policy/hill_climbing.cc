#include "policy/hill_climbing.hh"

#include <algorithm>

namespace rat::policy {

void
HillClimbingPolicy::reset(const core::SmtCore &core)
{
    numThreads_ = core.numThreads();
    const double even = 1.0 / numThreads_;
    base_.fill(0.0);
    current_.fill(0.0);
    for (unsigned t = 0; t < numThreads_; ++t) {
        base_[t] = even;
        current_[t] = even;
    }
    epochStart_ = 0;
    epochStartInsts_ = 0;
    trialIndex_ = 0;
    inRound_ = false;
    trialScore_.fill(0.0);
}

std::uint64_t
HillClimbingPolicy::totalCommitted(const core::SmtCore &core) const
{
    std::uint64_t sum = 0;
    for (unsigned t = 0; t < numThreads_; ++t)
        sum += core.threadStats(static_cast<ThreadId>(t)).committedInsts;
    return sum;
}

void
HillClimbingPolicy::clampAndNormalize(
    std::array<double, kMaxThreads> &shares) const
{
    double sum = 0.0;
    for (unsigned t = 0; t < numThreads_; ++t) {
        shares[t] = std::max(shares[t], config_.minShare);
        sum += shares[t];
    }
    for (unsigned t = 0; t < numThreads_; ++t)
        shares[t] /= sum;
}

void
HillClimbingPolicy::applyTrial(unsigned trial_thread)
{
    current_ = base_;
    if (numThreads_ < 2)
        return;
    const double give = config_.delta / (numThreads_ - 1);
    for (unsigned t = 0; t < numThreads_; ++t) {
        current_[t] += (t == trial_thread) ? config_.delta : -give;
    }
    clampAndNormalize(current_);
}

void
HillClimbingPolicy::beginCycle(core::SmtCore &core)
{
    if (numThreads_ < 2)
        return; // nothing to partition

    const Cycle now = core.cycle();
    if (now < epochStart_ + config_.epochLength)
        return;

    // Epoch boundary: score the epoch that just ended.
    const std::uint64_t committed = totalCommitted(core);
    const double score =
        static_cast<double>(committed - epochStartInsts_);

    if (inRound_) {
        trialScore_[trialIndex_] = score;
        ++trialIndex_;
        if (trialIndex_ >= numThreads_) {
            // Round complete: adopt the best trial as the new base.
            unsigned best = 0;
            for (unsigned t = 1; t < numThreads_; ++t) {
                if (trialScore_[t] > trialScore_[best])
                    best = t;
            }
            applyTrial(best);
            base_ = current_;
            inRound_ = false;
            trialIndex_ = 0;
        } else {
            applyTrial(trialIndex_);
        }
    } else {
        // Start a new round of trials.
        inRound_ = true;
        trialIndex_ = 0;
        applyTrial(0);
    }

    epochStart_ = now;
    epochStartInsts_ = committed;
}

Cycle
HillClimbingPolicy::quiescentUntil(const core::SmtCore &core,
                                   Cycle now) const
{
    (void)core;
    (void)now;
    if (numThreads_ < 2)
        return kNoCycle; // beginCycle is a no-op: nothing to partition
    // The epoch state machine must observe every boundary at exactly
    // epochStart_ + epochLength (it rebases epochStart_ to the cycle it
    // fires on), so a fast-forward may never overshoot it.
    return epochStart_ + config_.epochLength;
}

bool
HillClimbingPolicy::mayFetch(const core::SmtCore &core, ThreadId tid)
{
    if (numThreads_ < 2)
        return true;
    using core::IqClass;
    const auto &cfg = core.config();
    const double share = current_[tid];
    if (core.robOccupancy(tid) > share * cfg.robEntries)
        return false;
    if (core.regsHeld(tid, false) > share * cfg.intRegs)
        return false;
    if (core.regsHeld(tid, true) > share * cfg.fpRegs)
        return false;
    if (core.iqOccupancy(IqClass::Int, tid) > share * cfg.intIqEntries)
        return false;
    if (core.iqOccupancy(IqClass::Mem, tid) > share * cfg.lsIqEntries)
        return false;
    if (core.iqOccupancy(IqClass::Fp, tid) > share * cfg.fpIqEntries)
        return false;
    return true;
}

} // namespace rat::policy
