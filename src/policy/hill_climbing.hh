/**
 * @file
 * Hill Climbing resource distribution (Choi & Yeung, ISCA-33 [3]),
 * Hill-Thru variant: the performance function is raw throughput, the
 * only variant the paper evaluates (Section 5.2 explains why).
 *
 * Per-thread shares partition the ROB, issue queues and renaming
 * registers. Learning is epoch-based gradient descent: each round runs
 * one trial epoch per thread, shifting that thread's share up by delta
 * (others down equally); after all trials the best-performing shift is
 * adopted as the new base allocation.
 */

#ifndef RAT_POLICY_HILL_CLIMBING_HH
#define RAT_POLICY_HILL_CLIMBING_HH

#include <array>
#include <cstdint>

#include "core/policy_iface.hh"
#include "core/smt_core.hh"
#include "policy/fetch_policies.hh"

namespace rat::policy {

/** Tunables for Hill Climbing. */
struct HillClimbingConfig {
    /** Cycles per measurement epoch. */
    Cycle epochLength = 4096;
    /** Share shift applied to the trial thread in each trial epoch. */
    double delta = 0.04;
    /** Minimum share any thread may hold. */
    double minShare = 0.05;
};

/** The Hill Climbing resource-control policy. */
class HillClimbingPolicy : public IcountPolicy
{
  public:
    explicit HillClimbingPolicy(const HillClimbingConfig &config = {})
        : config_(config)
    {
    }

    void reset(const core::SmtCore &core) override;
    void beginCycle(core::SmtCore &core) override;
    bool mayFetch(const core::SmtCore &core, ThreadId tid) override;
    Cycle quiescentUntil(const core::SmtCore &core,
                         Cycle now) const override;
    const char *name() const override { return "HillClimbing"; }

    /** Current base share of a thread (exposed for tests). */
    double share(ThreadId tid) const { return base_[tid]; }

  private:
    /** Shares in effect during the current epoch. */
    void applyTrial(unsigned trial_thread);
    void clampAndNormalize(std::array<double, kMaxThreads> &shares) const;
    std::uint64_t totalCommitted(const core::SmtCore &core) const;

    HillClimbingConfig config_;
    unsigned numThreads_ = 1;

    std::array<double, kMaxThreads> base_{};
    std::array<double, kMaxThreads> current_{};

    // Epoch state machine.
    Cycle epochStart_ = 0;
    std::uint64_t epochStartInsts_ = 0;
    unsigned trialIndex_ = 0; ///< which thread's boost is being tried
    bool inRound_ = false;
    std::array<double, kMaxThreads> trialScore_{};
};

} // namespace rat::policy

#endif // RAT_POLICY_HILL_CLIMBING_HH
