#include "policy/mlp_aware.hh"

#include <algorithm>

namespace rat::policy {

void
MlpAwarePolicy::beginCycle(core::SmtCore &core)
{
    // Episode bookkeeping: when a thread's pending misses drain, the
    // episode ends and the MLP predictor trains on what was observed.
    for (unsigned t = 0; t < core.numThreads(); ++t) {
        EpisodeState &es = state_[t];
        if (!es.active)
            continue;
        if (!core.hasPendingL2Miss(static_cast<ThreadId>(t))) {
            // Train: next time, fetch as far as the farthest extra miss
            // we found this episode (bounded by hardware).
            const InstSeq span =
                es.farthestMiss > es.episodeStart
                    ? es.farthestMiss - es.episodeStart
                    : config_.minWindow;
            predicted_[t] = std::clamp<unsigned>(
                static_cast<unsigned>(span), config_.minWindow,
                config_.maxWindow);
            es = {};
        }
    }
}

bool
MlpAwarePolicy::mayFetch(const core::SmtCore &core, ThreadId tid)
{
    EpisodeState &es = state_[tid];
    if (!es.active)
        return true;
    if (core.nextFetchSeq(tid) <= es.fetchLimit)
        return true; // still exposing MLP inside the predicted window
    es.stopped = true;
    return false; // window exhausted: stall until the miss resolves
}

void
MlpAwarePolicy::onL2MissDetected(core::SmtCore &core, ThreadId tid,
                                 const core::DynInst &inst)
{
    EpisodeState &es = state_[tid];
    if (!es.active) {
        es.active = true;
        es.stopped = false;
        es.episodeStart = inst.op.seq;
        es.fetchLimit = inst.op.seq + predicted_[tid];
        es.farthestMiss = inst.op.seq;
        return;
    }
    // An additional long-latency load inside the episode: remember how
    // far it was (the long-latency shift register's job).
    es.farthestMiss = std::max(es.farthestMiss, inst.op.seq);
    if (config_.flushOnStop && es.stopped) {
        // Flush variant: release everything beyond the window.
        core.squashYoungerThan(tid, es.fetchLimit);
    }
}

} // namespace rat::policy
