/**
 * @file
 * MLP-aware fetch policy (Eyerman & Eeckhout, HPCA-13 [15]) — the
 * related-work technique the paper contrasts RaT against in Section 2.
 *
 * On detecting a long-latency load, the thread is allowed to fetch a
 * bounded number of *extra* instructions — enough to expose the
 * memory-level parallelism an MLP predictor expects within that window
 * — and is then stalled (or flushed) until the miss resolves. The
 * hardware bound on the window is exactly the limitation the paper
 * points out: "not all distant MLP can be exploited", which unbounded
 * runahead does not suffer from.
 *
 * The MLP predictor is modelled after the paper's long-latency shift
 * register: per thread it remembers, over recent miss episodes, the
 * farthest instruction distance at which an additional long-latency
 * load was found, saturating at the configured window size.
 */

#ifndef RAT_POLICY_MLP_AWARE_HH
#define RAT_POLICY_MLP_AWARE_HH

#include <array>

#include "core/policy_iface.hh"
#include "core/smt_core.hh"
#include "policy/fetch_policies.hh"

namespace rat::policy {

/** Tunables for the MLP-aware policy. */
struct MlpConfig {
    /** Hardware bound of the MLP window (shift-register length). */
    unsigned maxWindow = 256;
    /** Initial / minimum predicted window. */
    unsigned minWindow = 32;
    /** Flush (instead of stall) once the window is exhausted. */
    bool flushOnStop = false;
};

/** The MLP-aware fetch policy. */
class MlpAwarePolicy : public IcountPolicy
{
  public:
    explicit MlpAwarePolicy(const MlpConfig &config = {})
        : config_(config)
    {
        predicted_.fill(config.minWindow);
        state_ = {};
    }

    void beginCycle(core::SmtCore &core) override;
    bool mayFetch(const core::SmtCore &core, ThreadId tid) override;
    void onL2MissDetected(core::SmtCore &core, ThreadId tid,
                          const core::DynInst &inst) override;
    const char *name() const override { return "MLP"; }

    /** Current predicted MLP window of a thread (for tests). */
    unsigned predictedWindow(ThreadId tid) const
    {
        return predicted_[tid];
    }

    /** Is the thread currently in a bounded MLP episode? */
    bool inEpisode(ThreadId tid) const { return state_[tid].active; }

  private:
    struct EpisodeState {
        bool active = false;       ///< episode in progress
        bool stopped = false;      ///< window exhausted, fetch gated
        InstSeq episodeStart = 0;  ///< seq of the triggering load
        InstSeq fetchLimit = 0;    ///< last seq the thread may fetch
        InstSeq farthestMiss = 0;  ///< farthest extra miss observed
    };

    MlpConfig config_;
    std::array<unsigned, kMaxThreads> predicted_{};
    std::array<EpisodeState, kMaxThreads> state_{};
};

} // namespace rat::policy

#endif // RAT_POLICY_MLP_AWARE_HH
