#include "report/csv.hh"

#include "common/logging.hh"
#include "report/json.hh"

namespace rat::report {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out;
    out.reserve(cell.size() + 2);
    out += '"';
    for (const char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvTable::setHeader(std::vector<std::string> columns)
{
    RAT_ASSERT(rows_.empty(), "CSV header must be set before rows");
    header_ = std::move(columns);
}

void
CsvTable::addRow(std::vector<std::string> cells)
{
    RAT_ASSERT(header_.empty() || cells.size() == header_.size(),
               "CSV row width %zu != header width %zu", cells.size(),
               header_.size());
    rows_.push_back(std::move(cells));
}

CsvTable::Row &
CsvTable::Row::add(const std::string &cell)
{
    cells_.push_back(cell);
    return *this;
}

CsvTable::Row &
CsvTable::Row::add(std::uint64_t value)
{
    cells_.push_back(std::to_string(value));
    return *this;
}

CsvTable::Row &
CsvTable::Row::add(double value)
{
    cells_.push_back(formatDouble(value));
    return *this;
}

std::string
CsvTable::dump() const
{
    std::string out;
    const auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out += ',';
            out += csvEscape(cells[i]);
        }
        out += '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out;
}

} // namespace rat::report
