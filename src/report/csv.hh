/**
 * @file
 * Minimal CSV table writer (RFC 4180 quoting) for the report
 * subsystem. Deterministic: rows serialize in insertion order and
 * numeric cells use the same canonical formatting as the JSON writer.
 */

#ifndef RAT_REPORT_CSV_HH
#define RAT_REPORT_CSV_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rat::report {

/** Quote a cell when it contains a comma, quote or newline. */
std::string csvEscape(const std::string &cell);

/** A rectangular CSV document: one header row plus data rows. */
class CsvTable
{
  public:
    /** Set the header; column count checks every later addRow. */
    void setHeader(std::vector<std::string> columns);

    /** Append a row of preformatted cells (must match header width). */
    void addRow(std::vector<std::string> cells);

    /** Row builder helpers for mixed-type rows. */
    class Row
    {
      public:
        Row &add(const std::string &cell);
        Row &add(const char *cell) { return add(std::string(cell)); }
        Row &add(std::uint64_t value);
        Row &add(double value); ///< canonical shortest form
        std::vector<std::string> take() { return std::move(cells_); }

      private:
        std::vector<std::string> cells_;
    };

    std::size_t rows() const { return rows_.size(); }

    /** Serialize with "\n" line endings and a trailing newline. */
    std::string dump() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rat::report

#endif // RAT_REPORT_CSV_HH
