#include "report/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace rat::report {

Json::Json(std::int64_t value)
{
    // Canonicalize: non-negative integers always store as Uint so that
    // Json(int64_t{5}) == Json(uint64_t{5}) and both print "5".
    if (value >= 0) {
        type_ = Type::Uint;
        uint_ = static_cast<std::uint64_t>(value);
    } else {
        type_ = Type::Int;
        int_ = value;
    }
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::isU64() const
{
    switch (type_) {
      case Type::Uint:
        return true;
      case Type::Double:
        // Exact integral doubles below 2^64 qualify (a parser may only
        // see "1e3"-style spellings).
        return double_ >= 0.0 && double_ < 18446744073709551616.0 &&
               std::nearbyint(double_) == double_;
      default:
        return false;
    }
}

bool
Json::isI64() const
{
    switch (type_) {
      case Type::Int:
        return true;
      case Type::Uint:
        return uint_ <=
               static_cast<std::uint64_t>(
                   std::numeric_limits<std::int64_t>::max());
      case Type::Double:
        return double_ >= -9223372036854775808.0 &&
               double_ < 9223372036854775808.0 &&
               std::nearbyint(double_) == double_;
      default:
        return false;
    }
}

std::int64_t
Json::asI64() const
{
    RAT_ASSERT(isI64(), "JSON value is not an int64");
    switch (type_) {
      case Type::Int:
        return int_;
      case Type::Uint:
        return static_cast<std::int64_t>(uint_);
      default:
        return static_cast<std::int64_t>(double_);
    }
}

bool
Json::asBool() const
{
    RAT_ASSERT(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

std::uint64_t
Json::asU64() const
{
    RAT_ASSERT(isU64(), "JSON value is not a uint64");
    return type_ == Type::Uint ? uint_
                               : static_cast<std::uint64_t>(double_);
}

double
Json::asDouble() const
{
    switch (type_) {
      case Type::Uint:
        return static_cast<double>(uint_);
      case Type::Int:
        return static_cast<double>(int_);
      case Type::Double:
        return double_;
      default:
        panic("JSON value is not a number");
    }
}

const std::string &
Json::asString() const
{
    RAT_ASSERT(type_ == Type::String, "JSON value is not a string");
    return str_;
}

Json &
Json::push(Json element)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    RAT_ASSERT(type_ == Type::Array, "push() on a non-array JSON value");
    arr_.push_back(std::move(element));
    return *this;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

const Json &
Json::at(std::size_t index) const
{
    RAT_ASSERT(type_ == Type::Array && index < arr_.size(),
               "JSON array index out of range");
    return arr_[index];
}

const std::vector<Json> &
Json::elements() const
{
    RAT_ASSERT(type_ == Type::Array, "elements() on a non-array");
    return arr_;
}

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    RAT_ASSERT(type_ == Type::Object,
               "operator[] on a non-object JSON value");
    for (auto &member : obj_) {
        if (member.first == key)
            return member.second;
    }
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &member : obj_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *value = find(key);
    RAT_ASSERT(value, "JSON object has no member '%s'", key.c_str());
    return *value;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    RAT_ASSERT(type_ == Type::Object, "members() on a non-object");
    return obj_;
}

bool
Json::operator==(const Json &other) const
{
    if (isNumber() && other.isNumber()) {
        // Numbers compare by value across storage subtypes; exact
        // uint64s compare exactly (beyond double precision).
        if (type_ == Type::Uint && other.type_ == Type::Uint)
            return uint_ == other.uint_;
        if (type_ == Type::Int && other.type_ == Type::Int)
            return int_ == other.int_;
        return asDouble() == other.asDouble();
    }
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return bool_ == other.bool_;
      case Type::String:
        return str_ == other.str_;
      case Type::Array:
        return arr_ == other.arr_;
      case Type::Object:
        return obj_ == other.obj_;
      default:
        return false; // numbers handled above
    }
}

std::string
formatDouble(double value)
{
    if (!std::isfinite(value)) {
        // JSON has no Inf/NaN literal; null is the conventional stand-in.
        return "null";
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    RAT_ASSERT(res.ec == std::errc(), "to_chars failed for a double");
    std::string text(buf, res.ptr);
    // "1" would re-parse as an integer; keep the double type explicit.
    if (text.find_first_of(".eE") == std::string::npos)
        text += ".0";
    return text;
}

std::string
quoteJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
Json::dumpTo(std::string &out, unsigned indent, unsigned depth) const
{
    const auto newline = [&](unsigned level) {
        if (indent) {
            out += '\n';
            out.append(std::size_t{indent} * level, ' ');
        }
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Uint:
        out += std::to_string(uint_);
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Double:
        out += formatDouble(double_);
        break;
      case Type::String:
        out += quoteJson(str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += indent ? "," : ",";
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ",";
            newline(depth + 1);
            out += quoteJson(obj_[i].first);
            out += indent ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent)
        out += '\n';
    return out;
}

namespace {

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    std::optional<Json>
    run()
    {
        auto value = parseValue();
        if (!value)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
            return std::nullopt;
        }
        return value;
    }

  private:
    void
    fail(const char *message)
    {
        if (error_ && error_->empty()) {
            *error_ = message;
            *error_ += " (at offset " + std::to_string(pos_) + ")";
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"')) {
            fail("expected '\"'");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return std::nullopt;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad hex digit in \\u escape");
                            return std::nullopt;
                        }
                    }
                    // Encode the code point as UTF-8 (BMP only; the
                    // writer never emits surrogate pairs).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape sequence");
                    return std::nullopt;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<Json>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") {
            fail("malformed number");
            return std::nullopt;
        }
        const bool integral =
            token.find_first_of(".eE") == std::string::npos;
        if (integral && token[0] != '-') {
            std::uint64_t u = 0;
            const auto res = std::from_chars(
                token.data(), token.data() + token.size(), u);
            if (res.ec == std::errc() &&
                res.ptr == token.data() + token.size())
                return Json(u);
        } else if (integral) {
            std::int64_t i = 0;
            const auto res = std::from_chars(
                token.data(), token.data() + token.size(), i);
            if (res.ec == std::errc() &&
                res.ptr == token.data() + token.size())
                return Json(i);
        }
        double d = 0.0;
        const auto res =
            std::from_chars(token.data(), token.data() + token.size(), d);
        if (res.ec != std::errc() ||
            res.ptr != token.data() + token.size()) {
            fail("malformed number");
            return std::nullopt;
        }
        return Json(d);
    }

    std::optional<Json>
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            skipWs();
            if (consume('}'))
                return obj;
            for (;;) {
                skipWs();
                auto key = parseString();
                if (!key)
                    return std::nullopt;
                skipWs();
                if (!consume(':')) {
                    fail("expected ':' in object");
                    return std::nullopt;
                }
                auto value = parseValue();
                if (!value)
                    return std::nullopt;
                obj[*key] = std::move(*value);
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                fail("expected ',' or '}' in object");
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            skipWs();
            if (consume(']'))
                return arr;
            for (;;) {
                auto value = parseValue();
                if (!value)
                    return std::nullopt;
                arr.push(std::move(*value));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                fail("expected ',' or ']' in array");
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return Json(std::move(*s));
        }
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        return parseNumber();
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Json>
Json::parse(const std::string &text, std::string *error)
{
    return Parser(text, error).run();
}

} // namespace rat::report
