/**
 * @file
 * Dependency-free JSON document model, writer and parser for the
 * report subsystem. Design goals, in order:
 *
 *  1. **Deterministic output.** Objects keep insertion order, integers
 *     print as exact decimals, doubles print in shortest
 *     round-trippable form (std::to_chars). Serializing the same
 *     document twice — or serializing, parsing and serializing again —
 *     yields byte-identical text. The on-disk result cache relies on
 *     this (see DESIGN.md, "Result-cache keying").
 *  2. **Exact numeric round-trips.** uint64 counters and IEEE doubles
 *     survive dump -> parse -> dump without loss.
 *  3. No third-party dependencies (container constraint).
 */

#ifndef RAT_REPORT_JSON_HH
#define RAT_REPORT_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace rat::report {

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Type : std::uint8_t {
        Null,
        Bool,
        Uint,   ///< number stored as uint64 (exact)
        Int,    ///< negative integer stored as int64 (exact)
        Double, ///< any other number
        String,
        Array,
        Object,
    };

    Json() = default; ///< null
    Json(bool value) : type_(Type::Bool), bool_(value) {}
    Json(std::uint64_t value) : type_(Type::Uint), uint_(value) {}
    Json(std::uint32_t value) : Json(std::uint64_t{value}) {}
    Json(std::int64_t value);
    Json(int value) : Json(std::int64_t{value}) {}
    Json(double value) : type_(Type::Double), double_(value) {}
    Json(std::string value) : type_(Type::String), str_(std::move(value)) {}
    Json(const char *value) : Json(std::string(value)) {}

    /** An empty array (distinct from null). */
    static Json array();
    /** An empty object (distinct from null). */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const
    {
        return type_ == Type::Uint || type_ == Type::Int ||
               type_ == Type::Double;
    }
    /** True for a number exactly representable as uint64. */
    bool isU64() const;
    /** True for a number exactly representable as int64. */
    bool isI64() const;
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; panic on type mismatch (caller checks first). */
    bool asBool() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    double asDouble() const; ///< any number type
    const std::string &asString() const;

    // --- Array interface ---
    /** Append an element (value must be an array or null; null becomes
     * an array). Returns *this for chaining. */
    Json &push(Json element);
    /** Element count of an array or object (0 otherwise). */
    std::size_t size() const;
    /** Array element (panics when out of range / not an array). */
    const Json &at(std::size_t index) const;
    const std::vector<Json> &elements() const;

    // --- Object interface ---
    /**
     * Fetch-or-insert a member (value must be an object or null; null
     * becomes an object). New keys append at the end: insertion order
     * is serialization order.
     */
    Json &operator[](const std::string &key);
    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;
    /** Member access (panics when absent). */
    const Json &at(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &members() const;

    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 yields the canonical compact form used for cache keys.
     */
    std::string dump(unsigned indent = 0) const;

    /**
     * Parse a complete JSON document. Returns std::nullopt on malformed
     * input and, when @p error is non-null, stores a diagnostic.
     */
    static std::optional<Json> parse(const std::string &text,
                                     std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, unsigned indent, unsigned depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Canonical shortest-round-trip text for a double (std::to_chars). */
std::string formatDouble(double value);

/** JSON string escaping (quotes included). */
std::string quoteJson(const std::string &text);

} // namespace rat::report

#endif // RAT_REPORT_JSON_HH
