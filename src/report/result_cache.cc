#include "report/result_cache.hh"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "report/serialize.hh"

namespace rat::report {

namespace {

/**
 * Cache format version, folded into every key: bump it whenever the
 * serialization or simulation semantics change in a way the config
 * alone cannot express, and every stale cell turns into a miss.
 */
constexpr unsigned kCacheFormatVersion = 1;

} // namespace

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::keyFor(const sim::SimConfig &config,
                    const std::vector<std::string> &programs)
{
    Json key = Json::object();
    key["v"] = Json(std::uint64_t{kCacheFormatVersion});
    key["config"] = toJson(config);
    Json progs = Json::array();
    for (const std::string &p : programs)
        progs.push(Json(p));
    key["programs"] = std::move(progs);
    return key.dump();
}

std::string
ResultCache::fileNameFor(const std::string &key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return std::string(buf) + ".json";
}

std::optional<sim::SimResult>
ResultCache::load(const std::string &key) const
{
    if (!enabled())
        return std::nullopt;
    const std::filesystem::path path =
        std::filesystem::path(dir_) / fileNameFor(key);

    std::ifstream in(path);
    if (!in) {
        misses_.fetch_add(1);
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();

    const auto doc = Json::parse(text.str());
    if (!doc || !doc->isObject()) {
        warn("result cache: ignoring unparseable cell %s",
             path.c_str());
        misses_.fetch_add(1);
        return std::nullopt;
    }
    const Json *stored_key = doc->find("key");
    if (!stored_key || !stored_key->isString() ||
        stored_key->asString() != key) {
        // Hash collision or key-format drift: treat as a miss.
        misses_.fetch_add(1);
        return std::nullopt;
    }
    const Json *result_json = doc->find("result");
    sim::SimResult result;
    if (!result_json || !result_json->isObject() ||
        !fromJson(*result_json, result)) {
        warn("result cache: ignoring malformed result in %s",
             path.c_str());
        misses_.fetch_add(1);
        return std::nullopt;
    }
    hits_.fetch_add(1);
    return result;
}

void
ResultCache::store(const std::string &key,
                   const sim::SimResult &result) const
{
    if (!enabled())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("result cache: cannot create %s: %s", dir_.c_str(),
             ec.message().c_str());
        return;
    }

    Json cell = Json::object();
    cell["key"] = Json(key);
    cell["result"] = toJson(result);

    const std::filesystem::path path =
        std::filesystem::path(dir_) / fileNameFor(key);
    // Unique temp per process; rename() is atomic, so readers never see
    // a partially written cell.
    const std::filesystem::path tmp =
        path.string() + "." + std::to_string(::getpid()) + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("result cache: cannot write %s", tmp.c_str());
            return;
        }
        out << cell.dump(2);
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        warn("result cache: rename to %s failed: %s", path.c_str(),
             ec.message().c_str());
}

} // namespace rat::report
