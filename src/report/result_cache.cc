#include "report/result_cache.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault.hh"
#include "common/logging.hh"
#include "report/serialize.hh"

namespace rat::report {

namespace {

/**
 * Cache format version, folded into every key: bump it whenever the
 * serialization or simulation semantics change in a way the config
 * alone cannot express, and every stale cell turns into a miss.
 * v2 added the result-payload checksum; because the version lives in
 * the key string, v1 cells hash to different file names and simply
 * never match — they are plain misses, not quarantine candidates.
 */
constexpr unsigned kCacheFormatVersion = 2;

/**
 * A `*.tmp` file this old cannot belong to a live writer (one cell
 * writes in milliseconds); anything older was orphaned by a crash or
 * kill -9 and is safe to reap. The age gate keeps the open-time GC
 * from unlinking a temp another process is writing right now. The same
 * gate bounds how long a quarantined `*.bad` cell is kept for
 * post-mortem before the GC reclaims it.
 */
constexpr auto kStaleFileAge = std::chrono::minutes(10);

/**
 * Serializes cell renames (and the GC's unlinks) across every process
 * sharing the cache directory. Held only around metadata operations,
 * never around simulation or file streaming, so contention is
 * negligible even with dozens of farm workers.
 */
class DirLock
{
  public:
    explicit DirLock(const std::string &dir)
        : fd_(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC))
    {
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~DirLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }
    DirLock(const DirLock &) = delete;
    DirLock &operator=(const DirLock &) = delete;

  private:
    int fd_;
};

} // namespace

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (enabled())
        gcStaleFiles();
}

void
ResultCache::gcStaleFiles()
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec);
    if (ec)
        return; // directory does not exist yet — nothing to reap
    const auto now = std::filesystem::file_time_type::clock::now();
    const DirLock lock(dir_);
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        const auto ext = entry.path().extension();
        const bool tmp = ext == ".tmp";
        if (!tmp && ext != ".bad")
            continue;
        const auto mtime = entry.last_write_time(ec);
        if (ec || now - mtime < kStaleFileAge)
            continue;
        if (std::filesystem::remove(entry.path(), ec) && !ec)
            ++(tmp ? reapedTmp_ : reapedBad_);
    }
}

std::uint64_t
ResultCache::removeTmpFilesOfPid(long pid) const
{
    if (!enabled())
        return 0;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec);
    if (ec)
        return 0;
    // Temp names are <hash>.json.<pid>.<seq>.tmp (see store()); match
    // the pid field exactly so a seq number that happens to equal
    // another worker's pid cannot cause a cross-worker unlink.
    const std::string marker = ".json." + std::to_string(pid) + ".";
    std::uint64_t removed = 0;
    const DirLock lock(dir_);
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".tmp")
            continue;
        if (entry.path().filename().string().find(marker) ==
            std::string::npos)
            continue;
        if (std::filesystem::remove(entry.path(), ec) && !ec)
            ++removed;
    }
    return removed;
}

std::string
ResultCache::keyFor(const sim::SimConfig &config,
                    const std::vector<std::string> &programs)
{
    Json key = Json::object();
    key["v"] = Json(std::uint64_t{kCacheFormatVersion});
    key["config"] = toJson(config);
    Json progs = Json::array();
    for (const std::string &p : programs)
        progs.push(Json(p));
    key["programs"] = std::move(progs);
    return key.dump();
}

std::string
ResultCache::fileNameFor(const std::string &key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return std::string(buf) + ".json";
}

namespace {

/** Checksum of a result payload: FNV-1a over its *compact* dump.
 * The Json layer guarantees exact numeric round-trips (uint64s print
 * as decimals, doubles as shortest-round-trip), so re-dumping a
 * parsed cell's result reproduces the stored-time bytes exactly. */
std::string
checksumHex(const std::string &payload)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(payload)));
    return buf;
}

} // namespace

void
ResultCache::quarantineCell(const std::string &path,
                            const char *why) const
{
    // <name>.json -> <name>.json.bad, preserving the damaged bytes
    // for post-mortem while guaranteeing the next load is a clean
    // miss (and the next store heals the slot).
    std::error_code ec;
    const DirLock lock(dir_);
    std::filesystem::rename(path, path + ".bad", ec);
    if (ec) {
        // Racing quarantiners, or an unwritable directory: fall back
        // to unlinking so the damage cannot be re-read forever.
        std::error_code ec2;
        std::filesystem::remove(path, ec2);
    }
    quarantined_.fetch_add(1);
    warn("result cache: quarantined %s (%s)", path.c_str(), why);
}

std::optional<sim::SimResult>
ResultCache::load(const std::string &key) const
{
    if (!enabled())
        return std::nullopt;
    const std::filesystem::path path =
        std::filesystem::path(dir_) / fileNameFor(key);

    std::ifstream in(path);
    if (!in) {
        misses_.fetch_add(1);
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();

    const auto doc = Json::parse(text.str());
    if (!doc || !doc->isObject()) {
        // Torn write or bit-rot: the file exists under this key's
        // name but its bytes are not a cell. Quarantine so it costs
        // exactly one re-simulation.
        quarantineCell(path.string(), "unparseable");
        misses_.fetch_add(1);
        return std::nullopt;
    }
    const Json *stored_key = doc->find("key");
    if (!stored_key || !stored_key->isString()) {
        quarantineCell(path.string(), "key field missing");
        misses_.fetch_add(1);
        return std::nullopt;
    }
    if (stored_key->asString() != key) {
        // Hash collision or key-format drift: a *valid* cell for a
        // different key. Miss, never quarantine — it may be somebody
        // else's good data.
        misses_.fetch_add(1);
        return std::nullopt;
    }
    const Json *checksum = doc->find("checksum");
    const Json *result_json = doc->find("result");
    if (!checksum || !checksum->isString() || !result_json ||
        !result_json->isObject()) {
        quarantineCell(path.string(), "checksum or result missing");
        misses_.fetch_add(1);
        return std::nullopt;
    }
    if (checksum->asString() != checksumHex(result_json->dump())) {
        quarantineCell(path.string(), "checksum mismatch");
        misses_.fetch_add(1);
        return std::nullopt;
    }
    sim::SimResult result;
    if (!fromJson(*result_json, result)) {
        quarantineCell(path.string(), "malformed result");
        misses_.fetch_add(1);
        return std::nullopt;
    }
    hits_.fetch_add(1);
    return result;
}

bool
ResultCache::store(const std::string &key,
                   const sim::SimResult &result) const
{
    if (!enabled())
        return false;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("result cache: cannot create %s: %s", dir_.c_str(),
             ec.message().c_str());
        storeFailures_.fetch_add(1);
        return false;
    }

    Json result_json = toJson(result);
    Json cell = Json::object();
    cell["key"] = Json(key);
    cell["checksum"] = Json(checksumHex(result_json.dump()));
    cell["result"] = std::move(result_json);
    std::string payload = cell.dump(2);

    // Chaos injection: a torn store publishes a truncated cell *as if
    // it succeeded* — modelling a write torn by power loss or bit-rot
    // past the rename barrier, exactly the damage the load-time
    // checksum/quarantine path exists to absorb. Truncating to 2/3
    // guarantees the top-level object never closes, so the cell is
    // structurally unparseable, not just checksum-stale.
    if (FaultInjector::global().fire(FaultKind::TornStore))
        payload.resize(payload.size() * 2 / 3);

    const std::filesystem::path path =
        std::filesystem::path(dir_) / fileNameFor(key);
    // Temp name unique per (process, store call): two threads — or two
    // farm worker processes — storing the same key never interleave
    // bytes into one temp file. rename() is atomic, so readers only
    // ever see complete cells.
    static std::atomic<std::uint64_t> tmpSeq{0};
    const std::filesystem::path tmp =
        path.string() + "." + std::to_string(::getpid()) + "." +
        std::to_string(tmpSeq.fetch_add(1)) + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("result cache: cannot write %s", tmp.c_str());
            storeFailures_.fetch_add(1);
            return false;
        }
        out << payload;
        out.flush();
        // A short write (ENOSPC, closed fd) must never be renamed into
        // place as a "valid" cell: verify the stream, and drop the
        // temp on failure.
        if (!out.good()) {
            out.close();
            std::filesystem::remove(tmp, ec);
            warn("result cache: short write to %s, cell dropped",
                 tmp.c_str());
            storeFailures_.fetch_add(1);
            return false;
        }
        out.close();
        if (out.fail()) {
            std::filesystem::remove(tmp, ec);
            warn("result cache: close of %s failed, cell dropped",
                 tmp.c_str());
            storeFailures_.fetch_add(1);
            return false;
        }
    }
    // Publish under the directory lock: concurrent same-key writers
    // serialize here, so the winner's bytes are whole-file, never a
    // mix. (rename alone is atomic; the lock also covers filesystems
    // where rename-over-open-target semantics are weaker, and fences
    // the GC's unlink pass.)
    const DirLock lock(dir_);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: rename to %s failed: %s", path.c_str(),
             ec.message().c_str());
        std::error_code ec2;
        std::filesystem::remove(tmp, ec2);
        storeFailures_.fetch_add(1);
        return false;
    }
    return true;
}

} // namespace rat::report
