/**
 * @file
 * On-disk memoization of completed simulation cells.
 *
 * A cell is keyed by the canonical compact-JSON serialization of its
 * *effective* `SimConfig` (which already contains policy, RaT flags
 * and seed) plus the ordered program list — everything a run is a pure
 * function of (DESIGN.md, "Determinism and seeding"). The key string
 * is FNV-1a-hashed into the cell's file name; the file stores the full
 * key alongside the result, and a load only hits when the stored key
 * matches byte-for-byte, so hash collisions degrade to misses, never
 * to wrong results.
 *
 * Crash-safety contract (DESIGN.md, "Farm architecture"): a cell file
 * either holds a complete, verified write or does not exist. Writers
 * stream into a per-(pid, sequence) temp file, flush, verify stream
 * state, and only then rename into place under a directory-level
 * flock; any failure unlinks the temp instead of renaming garbage.
 * The cache is therefore safe for many processes (the farm's workers)
 * sharing one directory. Temp files orphaned by killed writers are
 * garbage-collected on open once they are old enough to be provably
 * dead.
 *
 * Self-healing contract (format v2): every cell carries an FNV-1a
 * checksum of its result payload, verified on load. A cell that fails
 * to parse, lacks its key, or fails verification is *quarantined* —
 * renamed to `<name>.bad` under the directory lock and counted in
 * CacheStats — so bit-rot and torn writes cost one re-simulation
 * instead of a warning on every open forever. v1 cells (no checksum)
 * have a different key string and therefore different file names;
 * they are plain misses, never quarantined.
 */

#ifndef RAT_REPORT_RESULT_CACHE_HH
#define RAT_REPORT_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace rat::report {

/** 64-bit FNV-1a over a byte string. */
std::uint64_t fnv1a64(const std::string &text);

/** Point-in-time counters of one cache instance. */
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t storeFailures = 0;
    std::uint64_t quarantined = 0; ///< cells renamed to *.bad
    std::uint64_t reapedTmpFiles = 0;
    std::uint64_t reapedBadFiles = 0;
};

class ResultCache
{
  public:
    /**
     * @param dir Cache directory; an empty string disables caching.
     * Opening an existing directory garbage-collects stale `*.tmp`
     * files left behind by killed writers and `*.bad` quarantine
     * files whose post-mortem window has passed (both age-gated, so
     * temps of concurrently live writers — and freshly quarantined
     * cells someone may still want to inspect — are never touched).
     */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Canonical key string of one cell (configuration + programs). */
    static std::string keyFor(const sim::SimConfig &config,
                              const std::vector<std::string> &programs);

    /** File name (inside dir) a key maps to: <fnv1a-hex>.json. */
    static std::string fileNameFor(const std::string &key);

    /**
     * Look up a cell. Returns std::nullopt when disabled, absent,
     * from a different format version, or when the stored key differs
     * from @p key (collision). A cell that is present under the right
     * name but damaged — unparseable, key field missing, checksum
     * absent or mismatched, result malformed — is quarantined (renamed
     * to `<name>.bad`) and reported as a miss, so the caller
     * re-simulates and the next store heals the slot. Thread-safe.
     */
    std::optional<sim::SimResult> load(const std::string &key) const;

    /**
     * Persist a cell. Returns true once the cell is durably renamed
     * into place; false when disabled or on any write failure (short
     * write, unwritable directory, failed rename) — in which case no
     * partial cell is left behind. Safe for concurrent stores of the
     * same key from multiple threads *and* processes: each writer uses
     * a unique temp file and the rename is flock-guarded, so the cell
     * file always holds one writer's complete bytes.
     */
    bool store(const std::string &key, const sim::SimResult &result) const;

    /** Cells served from disk since construction. */
    std::uint64_t hits() const { return hits_.load(); }
    /** Failed lookups since construction. */
    std::uint64_t misses() const { return misses_.load(); }
    /** store() calls that failed since construction. */
    std::uint64_t storeFailures() const { return storeFailures_.load(); }
    /** Damaged cells quarantined to *.bad since construction. */
    std::uint64_t quarantined() const { return quarantined_.load(); }
    /** Stale temp files removed by the open-time GC. */
    std::uint64_t reapedTmpFiles() const { return reapedTmp_; }
    /** Aged-out quarantine (*.bad) files removed by the open-time GC. */
    std::uint64_t reapedBadFiles() const { return reapedBad_; }
    /** All counters in one snapshot. */
    CacheStats stats() const
    {
        return {hits(), misses(), storeFailures(), quarantined(),
                reapedTmpFiles(), reapedBadFiles()};
    }

    /**
     * Unlink every temp file written by process @p pid, regardless of
     * age. Only safe once @p pid is known dead — the farm coordinator
     * calls this for workers it just killed and reaped on SIGINT, so
     * an interrupted campaign leaves no half-written cells behind.
     * Returns the number of files removed.
     */
    std::uint64_t removeTmpFilesOfPid(long pid) const;

  private:
    void gcStaleFiles();
    void quarantineCell(const std::string &path, const char *why) const;

    std::string dir_;
    std::uint64_t reapedTmp_ = 0;
    std::uint64_t reapedBad_ = 0;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> storeFailures_{0};
    mutable std::atomic<std::uint64_t> quarantined_{0};
};

} // namespace rat::report

#endif // RAT_REPORT_RESULT_CACHE_HH
