/**
 * @file
 * On-disk memoization of completed simulation cells.
 *
 * A cell is keyed by the canonical compact-JSON serialization of its
 * *effective* `SimConfig` (which already contains policy, RaT flags
 * and seed) plus the ordered program list — everything a run is a pure
 * function of (DESIGN.md, "Determinism and seeding"). The key string
 * is FNV-1a-hashed into the cell's file name; the file stores the full
 * key alongside the result, and a load only hits when the stored key
 * matches byte-for-byte, so hash collisions degrade to misses, never
 * to wrong results.
 */

#ifndef RAT_REPORT_RESULT_CACHE_HH
#define RAT_REPORT_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace rat::report {

/** 64-bit FNV-1a over a byte string. */
std::uint64_t fnv1a64(const std::string &text);

class ResultCache
{
  public:
    /** @param dir Cache directory; an empty string disables caching. */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Canonical key string of one cell (configuration + programs). */
    static std::string keyFor(const sim::SimConfig &config,
                              const std::vector<std::string> &programs);

    /** File name (inside dir) a key maps to: <fnv1a-hex>.json. */
    static std::string fileNameFor(const std::string &key);

    /**
     * Look up a cell. Returns std::nullopt when disabled, absent,
     * unparseable, from a different format version, or when the stored
     * key differs from @p key (collision). Thread-safe.
     */
    std::optional<sim::SimResult> load(const std::string &key) const;

    /**
     * Persist a cell (no-op when disabled). Writes to a temp file and
     * renames, so concurrent readers never observe partial JSON.
     * Thread-safe for distinct keys (campaign cells are distinct by
     * construction).
     */
    void store(const std::string &key, const sim::SimResult &result) const;

    /** Cells served from disk since construction. */
    std::uint64_t hits() const { return hits_.load(); }
    /** Failed lookups since construction. */
    std::uint64_t misses() const { return misses_.load(); }

  private:
    std::string dir_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

} // namespace rat::report

#endif // RAT_REPORT_RESULT_CACHE_HH
