#include "report/serialize.hh"

#include <limits>

#include "policy/factory.hh"
#include "runahead/variant.hh"
#include "sim/metrics.hh"
#include "sim/workloads.hh"

namespace rat::report {

namespace {

// Checked member extraction: each reader returns false when the member
// is absent or has the wrong type, leaving @p out untouched.

bool
getU64(const Json &obj, const char *key, std::uint64_t &out)
{
    const Json *v = obj.find(key);
    if (!v || !v->isU64())
        return false;
    out = v->asU64();
    return true;
}

bool
getUnsigned(const Json &obj, const char *key, unsigned &out)
{
    std::uint64_t wide = 0;
    if (!getU64(obj, key, wide) ||
        wide > std::numeric_limits<unsigned>::max())
        return false;
    out = static_cast<unsigned>(wide);
    return true;
}

bool
getInt(const Json &obj, const char *key, int &out)
{
    const Json *v = obj.find(key);
    if (!v || !v->isI64())
        return false;
    const std::int64_t wide = v->asI64();
    if (wide < std::numeric_limits<int>::min() ||
        wide > std::numeric_limits<int>::max())
        return false;
    out = static_cast<int>(wide);
    return true;
}

bool
getDouble(const Json &obj, const char *key, double &out)
{
    const Json *v = obj.find(key);
    if (!v || !v->isNumber())
        return false;
    out = v->asDouble();
    return true;
}

bool
getBool(const Json &obj, const char *key, bool &out)
{
    const Json *v = obj.find(key);
    if (!v || !v->isBool())
        return false;
    out = v->asBool();
    return true;
}

bool
getString(const Json &obj, const char *key, std::string &out)
{
    const Json *v = obj.find(key);
    if (!v || !v->isString())
        return false;
    out = v->asString();
    return true;
}

} // namespace

Json
toJson(const core::RatConfig &rat)
{
    Json j = Json::object();
    j["variant"] = Json(runahead::raVariantName(rat.variant));
    j["cappedMaxCycles"] = Json(std::uint64_t{rat.cappedMaxCycles});
    j["uselessFilterThreshold"] =
        Json(std::uint64_t{rat.uselessFilterThreshold});
    j["uselessFilterReprobe"] =
        Json(std::uint64_t{rat.uselessFilterReprobe});
    j["dropFpInRunahead"] = Json(rat.dropFpInRunahead);
    j["useRunaheadCache"] = Json(rat.useRunaheadCache);
    j["runaheadCacheLines"] = Json(std::uint64_t{rat.runaheadCacheLines});
    j["disablePrefetch"] = Json(rat.disablePrefetch);
    j["noFetchInRunahead"] = Json(rat.noFetchInRunahead);
    return j;
}

bool
fromJson(const Json &json, core::RatConfig &rat)
{
    std::string variant;
    if (!getString(json, "variant", variant))
        return false;
    const auto parsed = runahead::parseRaVariant(variant);
    if (!parsed)
        return false;
    rat.variant = *parsed;
    return getUnsigned(json, "cappedMaxCycles", rat.cappedMaxCycles) &&
           getUnsigned(json, "uselessFilterThreshold",
                       rat.uselessFilterThreshold) &&
           getUnsigned(json, "uselessFilterReprobe",
                       rat.uselessFilterReprobe) &&
           getBool(json, "dropFpInRunahead", rat.dropFpInRunahead) &&
           getBool(json, "useRunaheadCache", rat.useRunaheadCache) &&
           getUnsigned(json, "runaheadCacheLines",
                       rat.runaheadCacheLines) &&
           getBool(json, "disablePrefetch", rat.disablePrefetch) &&
           getBool(json, "noFetchInRunahead", rat.noFetchInRunahead);
}

Json
toJson(const core::CoreConfig &core)
{
    Json j = Json::object();
    j["numThreads"] = Json(std::uint64_t{core.numThreads});
    j["fetchWidth"] = Json(std::uint64_t{core.fetchWidth});
    j["fetchThreads"] = Json(std::uint64_t{core.fetchThreads});
    j["renameWidth"] = Json(std::uint64_t{core.renameWidth});
    j["issueWidth"] = Json(std::uint64_t{core.issueWidth});
    j["commitWidth"] = Json(std::uint64_t{core.commitWidth});
    j["frontendDelay"] = Json(std::uint64_t{core.frontendDelay});
    j["robEntries"] = Json(std::uint64_t{core.robEntries});
    j["intIqEntries"] = Json(std::uint64_t{core.intIqEntries});
    j["fpIqEntries"] = Json(std::uint64_t{core.fpIqEntries});
    j["lsIqEntries"] = Json(std::uint64_t{core.lsIqEntries});
    j["lsqEntries"] = Json(std::uint64_t{core.lsqEntries});
    j["intRegs"] = Json(std::uint64_t{core.intRegs});
    j["fpRegs"] = Json(std::uint64_t{core.fpRegs});
    j["intUnits"] = Json(std::uint64_t{core.intUnits});
    j["fpUnits"] = Json(std::uint64_t{core.fpUnits});
    j["memUnits"] = Json(std::uint64_t{core.memUnits});
    j["fetchQueueEntries"] = Json(std::uint64_t{core.fetchQueueEntries});
    j["btbMissPenalty"] = Json(std::uint64_t{core.btbMissPenalty});
    j["mispredictRedirect"] = Json(std::uint64_t{core.mispredictRedirect});
    j["ifetchPrefetchLines"] =
        Json(std::uint64_t{core.ifetchPrefetchLines});
    j["policy"] = Json(policy::policyKindName(core.policy));
    j["rat"] = toJson(core.rat);
    Json predictor = Json::object();
    predictor["tableEntries"] =
        Json(std::uint64_t{core.predictor.tableEntries});
    predictor["historyBits"] =
        Json(std::uint64_t{core.predictor.historyBits});
    predictor["weightLimit"] =
        Json(std::int64_t{core.predictor.weightLimit});
    j["predictor"] = std::move(predictor);
    return j;
}

bool
fromJson(const Json &json, core::CoreConfig &core)
{
    std::string policy;
    if (!getString(json, "policy", policy))
        return false;
    const auto kind = policy::parsePolicyKind(policy);
    if (!kind)
        return false;
    core.policy = *kind;

    const Json *rat = json.find("rat");
    if (!rat || !fromJson(*rat, core.rat))
        return false;

    const Json *predictor = json.find("predictor");
    if (!predictor || !predictor->isObject())
        return false;
    if (!getUnsigned(*predictor, "tableEntries",
                     core.predictor.tableEntries) ||
        !getUnsigned(*predictor, "historyBits",
                     core.predictor.historyBits) ||
        !getInt(*predictor, "weightLimit", core.predictor.weightLimit))
        return false;

    return getUnsigned(json, "numThreads", core.numThreads) &&
           getUnsigned(json, "fetchWidth", core.fetchWidth) &&
           getUnsigned(json, "fetchThreads", core.fetchThreads) &&
           getUnsigned(json, "renameWidth", core.renameWidth) &&
           getUnsigned(json, "issueWidth", core.issueWidth) &&
           getUnsigned(json, "commitWidth", core.commitWidth) &&
           getUnsigned(json, "frontendDelay", core.frontendDelay) &&
           getUnsigned(json, "robEntries", core.robEntries) &&
           getUnsigned(json, "intIqEntries", core.intIqEntries) &&
           getUnsigned(json, "fpIqEntries", core.fpIqEntries) &&
           getUnsigned(json, "lsIqEntries", core.lsIqEntries) &&
           getUnsigned(json, "lsqEntries", core.lsqEntries) &&
           getUnsigned(json, "intRegs", core.intRegs) &&
           getUnsigned(json, "fpRegs", core.fpRegs) &&
           getUnsigned(json, "intUnits", core.intUnits) &&
           getUnsigned(json, "fpUnits", core.fpUnits) &&
           getUnsigned(json, "memUnits", core.memUnits) &&
           getUnsigned(json, "fetchQueueEntries",
                       core.fetchQueueEntries) &&
           getUnsigned(json, "btbMissPenalty", core.btbMissPenalty) &&
           getUnsigned(json, "mispredictRedirect",
                       core.mispredictRedirect) &&
           getUnsigned(json, "ifetchPrefetchLines",
                       core.ifetchPrefetchLines);
}

Json
toJson(const mem::CacheConfig &cache)
{
    Json j = Json::object();
    j["name"] = Json(cache.name);
    j["sizeBytes"] = Json(cache.sizeBytes);
    j["ways"] = Json(std::uint64_t{cache.ways});
    j["lineBytes"] = Json(std::uint64_t{cache.lineBytes});
    j["latency"] = Json(std::uint64_t{cache.latency});
    j["mshrs"] = Json(std::uint64_t{cache.mshrs});
    return j;
}

bool
fromJson(const Json &json, mem::CacheConfig &cache)
{
    return getString(json, "name", cache.name) &&
           getU64(json, "sizeBytes", cache.sizeBytes) &&
           getUnsigned(json, "ways", cache.ways) &&
           getUnsigned(json, "lineBytes", cache.lineBytes) &&
           getUnsigned(json, "latency", cache.latency) &&
           getUnsigned(json, "mshrs", cache.mshrs);
}

Json
toJson(const mem::MemConfig &mem)
{
    Json j = Json::object();
    j["l1i"] = toJson(mem.l1i);
    j["l1d"] = toJson(mem.l1d);
    j["l2"] = toJson(mem.l2);
    j["memLatency"] = Json(std::uint64_t{mem.memLatency});
    return j;
}

bool
fromJson(const Json &json, mem::MemConfig &mem)
{
    const Json *l1i = json.find("l1i");
    const Json *l1d = json.find("l1d");
    const Json *l2 = json.find("l2");
    return l1i && fromJson(*l1i, mem.l1i) && l1d &&
           fromJson(*l1d, mem.l1d) && l2 && fromJson(*l2, mem.l2) &&
           getUnsigned(json, "memLatency", mem.memLatency);
}

Json
toJson(const sim::SimConfig &config)
{
    Json j = Json::object();
    j["core"] = toJson(config.core);
    j["mem"] = toJson(config.mem);
    j["prewarmInsts"] = Json(config.prewarmInsts);
    j["warmupCycles"] = Json(config.warmupCycles);
    j["measureCycles"] = Json(config.measureCycles);
    j["seed"] = Json(config.seed);
    // Telemetry sampling changes SimResult content, so it is part of
    // the cache key — but only when enabled, keeping every existing
    // default-config key (and golden file) byte-identical.
    if (config.sampleWindow)
        j["sampleWindow"] = Json(std::uint64_t{config.sampleWindow});
    // Same deal for state digests: part of the key only when enabled.
    if (config.digestWindow)
        j["digestWindow"] = Json(std::uint64_t{config.digestWindow});
    // Sampled simulation changes what a result *means* (estimate vs
    // exact), so all its parameters are key material — but, like the
    // windows above, only when enabled. sampleIndex makes every
    // per-sample campaign cell a distinct cache entry.
    if (config.sampled) {
        Json s = Json::object();
        s["phases"] = Json(std::uint64_t{config.samplePhases});
        s["phaseWindow"] = Json(config.phaseWindow);
        s["spanWindows"] = Json(std::uint64_t{config.phaseSpanWindows});
        s["warmupCycles"] = Json(config.sampleWarmupCycles);
        s["measureCycles"] = Json(config.sampleMeasureCycles);
        if (config.sampleIndex >= 0)
            s["sampleIndex"] =
                Json(std::int64_t{config.sampleIndex});
        j["sampled"] = std::move(s);
    }
    return j;
}

bool
fromJson(const Json &json, sim::SimConfig &config)
{
    const Json *core = json.find("core");
    const Json *mem = json.find("mem");
    // sampleWindow/digestWindow are optional (absent = off) — see
    // toJson above.
    config.sampleWindow = 0;
    getU64(json, "sampleWindow", config.sampleWindow);
    config.digestWindow = 0;
    getU64(json, "digestWindow", config.digestWindow);
    // Sampled block optional (absent = exact mode) — see toJson above.
    config.sampled = false;
    config.sampleIndex = -1;
    if (const Json *s = json.find("sampled")) {
        if (!s->isObject() ||
            !getUnsigned(*s, "phases", config.samplePhases) ||
            !getU64(*s, "phaseWindow", config.phaseWindow) ||
            !getUnsigned(*s, "spanWindows", config.phaseSpanWindows) ||
            !getU64(*s, "warmupCycles", config.sampleWarmupCycles) ||
            !getU64(*s, "measureCycles", config.sampleMeasureCycles))
            return false;
        getInt(*s, "sampleIndex", config.sampleIndex);
        config.sampled = true;
    }
    return core && fromJson(*core, config.core) && mem &&
           fromJson(*mem, config.mem) &&
           getU64(json, "prewarmInsts", config.prewarmInsts) &&
           getU64(json, "warmupCycles", config.warmupCycles) &&
           getU64(json, "measureCycles", config.measureCycles) &&
           getU64(json, "seed", config.seed);
}

Json
toJson(const core::ThreadStats &stats)
{
    Json j = Json::object();
    j["committedInsts"] = Json(stats.committedInsts);
    j["executedInsts"] = Json(stats.executedInsts);
    j["fetchedInsts"] = Json(stats.fetchedInsts);
    j["pseudoRetired"] = Json(stats.pseudoRetired);
    j["invalidInsts"] = Json(stats.invalidInsts);
    j["runaheadEntries"] = Json(stats.runaheadEntries);
    j["uselessRunaheadEpisodes"] = Json(stats.uselessRunaheadEpisodes);
    j["runaheadCycles"] = Json(stats.runaheadCycles);
    j["normalCycles"] = Json(stats.normalCycles);
    j["branches"] = Json(stats.branches);
    j["branchMispredicts"] = Json(stats.branchMispredicts);
    j["squashedInsts"] = Json(stats.squashedInsts);
    j["normalRegCycles"] = Json(stats.normalRegCycles);
    j["runaheadRegCycles"] = Json(stats.runaheadRegCycles);
    return j;
}

bool
fromJson(const Json &json, core::ThreadStats &stats)
{
    return getU64(json, "committedInsts", stats.committedInsts) &&
           getU64(json, "executedInsts", stats.executedInsts) &&
           getU64(json, "fetchedInsts", stats.fetchedInsts) &&
           getU64(json, "pseudoRetired", stats.pseudoRetired) &&
           getU64(json, "invalidInsts", stats.invalidInsts) &&
           getU64(json, "runaheadEntries", stats.runaheadEntries) &&
           getU64(json, "uselessRunaheadEpisodes",
                  stats.uselessRunaheadEpisodes) &&
           getU64(json, "runaheadCycles", stats.runaheadCycles) &&
           getU64(json, "normalCycles", stats.normalCycles) &&
           getU64(json, "branches", stats.branches) &&
           getU64(json, "branchMispredicts", stats.branchMispredicts) &&
           getU64(json, "squashedInsts", stats.squashedInsts) &&
           getU64(json, "normalRegCycles", stats.normalRegCycles) &&
           getU64(json, "runaheadRegCycles", stats.runaheadRegCycles);
}

Json
toJson(const mem::ThreadMemStats &stats)
{
    Json j = Json::object();
    j["loads"] = Json(stats.loads);
    j["stores"] = Json(stats.stores);
    j["l1dMisses"] = Json(stats.l1dMisses);
    j["l2DemandMisses"] = Json(stats.l2DemandMisses);
    j["ifetchL1Misses"] = Json(stats.ifetchL1Misses);
    j["ifetchL2Misses"] = Json(stats.ifetchL2Misses);
    j["ifetchPrefetches"] = Json(stats.ifetchPrefetches);
    j["raMemPrefetches"] = Json(stats.raMemPrefetches);
    j["raL2Prefetches"] = Json(stats.raL2Prefetches);
    return j;
}

bool
fromJson(const Json &json, mem::ThreadMemStats &stats)
{
    return getU64(json, "loads", stats.loads) &&
           getU64(json, "stores", stats.stores) &&
           getU64(json, "l1dMisses", stats.l1dMisses) &&
           getU64(json, "l2DemandMisses", stats.l2DemandMisses) &&
           getU64(json, "ifetchL1Misses", stats.ifetchL1Misses) &&
           getU64(json, "ifetchL2Misses", stats.ifetchL2Misses) &&
           getU64(json, "ifetchPrefetches", stats.ifetchPrefetches) &&
           getU64(json, "raMemPrefetches", stats.raMemPrefetches) &&
           getU64(json, "raL2Prefetches", stats.raL2Prefetches);
}

Json
toJson(const obs::Log2Histogram &hist)
{
    Json j = Json::object();
    j["total"] = Json(hist.total_);
    j["sum"] = Json(hist.sum_);
    // Trailing zero buckets are elided; the reader zero-fills.
    unsigned used = obs::Log2Histogram::kBuckets;
    while (used > 0 && hist.buckets_[used - 1] == 0)
        --used;
    Json buckets = Json::array();
    for (unsigned i = 0; i < used; ++i)
        buckets.push(Json(hist.buckets_[i]));
    j["buckets"] = std::move(buckets);
    return j;
}

bool
fromJson(const Json &json, obs::Log2Histogram &hist)
{
    hist = obs::Log2Histogram{};
    if (!getU64(json, "total", hist.total_) ||
        !getU64(json, "sum", hist.sum_))
        return false;
    const Json *buckets = json.find("buckets");
    if (!buckets || !buckets->isArray())
        return false;
    const auto &elems = buckets->elements();
    if (elems.size() > obs::Log2Histogram::kBuckets)
        return false;
    for (std::size_t i = 0; i < elems.size(); ++i) {
        if (!elems[i].isU64())
            return false;
        hist.buckets_[i] = elems[i].asU64();
    }
    return true;
}

Json
toJson(const obs::TelemetryResult &telemetry)
{
    Json j = Json::object();
    j["window"] = Json(std::uint64_t{telemetry.window});
    // Each sample is a fixed-shape 7-tuple
    // [cycle, committed, executed, raExecuted, rob, iq, lsq]; the array
    // form keeps long time-series compact in sweep caches.
    Json samples = Json::array();
    for (const obs::WindowSample &s : telemetry.samples) {
        Json row = Json::array();
        row.push(Json(std::uint64_t{s.cycle}))
            .push(Json(s.committed))
            .push(Json(s.executed))
            .push(Json(s.raExecuted))
            .push(Json(s.rob))
            .push(Json(s.iq))
            .push(Json(s.lsq));
        samples.push(std::move(row));
    }
    j["samples"] = std::move(samples);
    j["episodeCycles"] = toJson(telemetry.episodeCycles);
    j["missLatency"] = toJson(telemetry.missLatency);
    j["issueToRetire"] = toJson(telemetry.issueToRetire);
    return j;
}

bool
fromJson(const Json &json, obs::TelemetryResult &telemetry)
{
    telemetry = obs::TelemetryResult{};
    telemetry.enabled = true;
    std::uint64_t window = 0;
    if (!getU64(json, "window", window))
        return false;
    telemetry.window = window;
    const Json *samples = json.find("samples");
    if (!samples || !samples->isArray())
        return false;
    for (const Json &row : samples->elements()) {
        if (!row.isArray() || row.elements().size() != 7)
            return false;
        const auto &e = row.elements();
        for (const Json &v : e) {
            if (!v.isU64())
                return false;
        }
        obs::WindowSample s;
        s.cycle = e[0].asU64();
        s.committed = e[1].asU64();
        s.executed = e[2].asU64();
        s.raExecuted = e[3].asU64();
        s.rob = e[4].asU64();
        s.iq = e[5].asU64();
        s.lsq = e[6].asU64();
        telemetry.samples.push_back(s);
    }
    const Json *episode = json.find("episodeCycles");
    const Json *miss = json.find("missLatency");
    const Json *i2r = json.find("issueToRetire");
    return episode && fromJson(*episode, telemetry.episodeCycles) &&
           miss && fromJson(*miss, telemetry.missLatency) && i2r &&
           fromJson(*i2r, telemetry.issueToRetire);
}

Json
engineStatsJson(const runahead::EngineStats &stats)
{
    Json j = Json::object();
    j["episodes"] = Json(stats.episodes);
    j["uselessEpisodes"] = Json(stats.uselessEpisodes);
    j["suppressedEntries"] = Json(stats.suppressedEntries);
    j["drainEpisodes"] = Json(stats.drainEpisodes);
    j["cappedExits"] = Json(stats.cappedExits);
    j["executedInRunahead"] = Json(stats.executedInRunahead);
    return j;
}

Json
toJson(const sim::ThreadResult &thread)
{
    Json j = Json::object();
    j["program"] = Json(thread.program);
    j["ipc"] = Json(thread.ipc);
    j["l2Mpki"] = Json(thread.l2Mpki);
    j["core"] = toJson(thread.core);
    j["mem"] = toJson(thread.mem);
    return j;
}

bool
fromJson(const Json &json, sim::ThreadResult &thread)
{
    const Json *core = json.find("core");
    const Json *mem = json.find("mem");
    return getString(json, "program", thread.program) &&
           getDouble(json, "ipc", thread.ipc) &&
           getDouble(json, "l2Mpki", thread.l2Mpki) && core &&
           fromJson(*core, thread.core) && mem &&
           fromJson(*mem, thread.mem);
}

Json
toJson(const sim::SimResult &result)
{
    Json j = Json::object();
    j["cycles"] = Json(result.cycles);
    Json threads = Json::array();
    for (const sim::ThreadResult &t : result.threads)
        threads.push(toJson(t));
    j["threads"] = std::move(threads);
    // Emitted only for telemetry-enabled runs: default-config results
    // (goldens, existing cache cells) serialize exactly as before.
    if (result.telemetry.enabled)
        j["telemetry"] = toJson(result.telemetry);
    // Digest streams likewise appear only for digest-enabled runs.
    // Each sample is a [cycle, digest] pair.
    if (result.digest.enabled()) {
        Json digest = Json::object();
        digest["window"] = Json(std::uint64_t{result.digest.window});
        Json samples = Json::array();
        for (const obs::DigestSample &s : result.digest.samples) {
            Json row = Json::array();
            row.push(Json(std::uint64_t{s.cycle})).push(Json(s.digest));
            samples.push(std::move(row));
        }
        digest["samples"] = std::move(samples);
        j["digest"] = std::move(digest);
    }
    // Sampling metadata appears only on sampled results — exact-mode
    // serializations (goldens, existing cache cells) are unchanged.
    // Needed for the cache round-trip of per-sample cells: the merge
    // step reads each cell's weight back out of its cached result.
    if (result.sampled.enabled) {
        Json s = Json::object();
        s["merged"] = Json(result.sampled.merged);
        if (result.sampled.merged) {
            s["phases"] = Json(std::uint64_t{result.sampled.phases});
            s["totalWindows"] = Json(result.sampled.totalWindows);
            s["ipcError"] = Json(result.sampled.ipcError);
            s["hmeanError"] = Json(result.sampled.hmeanError);
        } else {
            s["sampleIndex"] =
                Json(std::int64_t{result.sampled.sampleIndex});
            s["windowIndex"] =
                Json(std::uint64_t{result.sampled.windowIndex});
            s["weight"] = Json(result.sampled.weight);
        }
        j["sampled"] = std::move(s);
    }
    return j;
}

bool
fromJson(const Json &json, sim::SimResult &result)
{
    if (!getU64(json, "cycles", result.cycles))
        return false;
    const Json *threads = json.find("threads");
    if (!threads || !threads->isArray())
        return false;
    result.threads.clear();
    for (const Json &t : threads->elements()) {
        sim::ThreadResult thread;
        if (!t.isObject() || !fromJson(t, thread))
            return false;
        result.threads.push_back(std::move(thread));
    }
    result.telemetry = obs::TelemetryResult{};
    const Json *telemetry = json.find("telemetry");
    if (telemetry &&
        (!telemetry->isObject() ||
         !fromJson(*telemetry, result.telemetry)))
        return false;
    result.digest = obs::DigestTrack{};
    if (const Json *digest = json.find("digest")) {
        if (!digest->isObject() ||
            !getU64(*digest, "window", result.digest.window) ||
            result.digest.window == 0)
            return false;
        const Json *samples = digest->find("samples");
        if (!samples || !samples->isArray())
            return false;
        for (const Json &row : samples->elements()) {
            if (!row.isArray() || row.elements().size() != 2 ||
                !row.elements()[0].isU64() || !row.elements()[1].isU64())
                return false;
            obs::DigestSample s;
            s.cycle = row.elements()[0].asU64();
            s.digest = row.elements()[1].asU64();
            result.digest.samples.push_back(s);
        }
    }
    result.sampled = sim::SampledMeta{};
    if (const Json *s = json.find("sampled")) {
        if (!s->isObject() ||
            !getBool(*s, "merged", result.sampled.merged))
            return false;
        if (result.sampled.merged) {
            if (!getUnsigned(*s, "phases", result.sampled.phases) ||
                !getU64(*s, "totalWindows",
                        result.sampled.totalWindows) ||
                !getDouble(*s, "ipcError", result.sampled.ipcError) ||
                !getDouble(*s, "hmeanError", result.sampled.hmeanError))
                return false;
        } else {
            if (!getInt(*s, "sampleIndex",
                        result.sampled.sampleIndex) ||
                !getUnsigned(*s, "windowIndex",
                             result.sampled.windowIndex) ||
                !getU64(*s, "weight", result.sampled.weight))
                return false;
        }
        result.sampled.enabled = true;
    }
    return true;
}

Json
toJson(const sim::GroupMetrics &metrics)
{
    Json j = Json::object();
    j["technique"] = Json(metrics.technique);
    j["group"] = Json(sim::groupName(metrics.group));
    j["meanThroughput"] = Json(metrics.meanThroughput);
    j["meanFairness"] = Json(metrics.meanFairness);
    j["meanEd2"] = Json(metrics.meanEd2);
    Json results = Json::array();
    for (const sim::SimResult &r : metrics.results)
        results.push(toJson(r));
    j["results"] = std::move(results);
    return j;
}

bool
fromJson(const Json &json, sim::GroupMetrics &metrics)
{
    std::string group;
    if (!getString(json, "group", group))
        return false;
    const auto parsed = sim::parseGroup(group);
    if (!parsed)
        return false;
    metrics.group = *parsed;
    if (!getString(json, "technique", metrics.technique) ||
        !getDouble(json, "meanThroughput", metrics.meanThroughput) ||
        !getDouble(json, "meanFairness", metrics.meanFairness) ||
        !getDouble(json, "meanEd2", metrics.meanEd2))
        return false;
    const Json *results = json.find("results");
    if (!results || !results->isArray())
        return false;
    metrics.results.clear();
    for (const Json &r : results->elements()) {
        sim::SimResult result;
        if (!r.isObject() || !fromJson(r, result))
            return false;
        metrics.results.push_back(std::move(result));
    }
    return true;
}

Json
resultMetricsJson(const sim::SimResult &result)
{
    Json j = Json::object();
    j["throughputEq1"] = Json(result.throughputEq1());
    j["totalIpc"] = Json(result.totalIpc());
    j["committedTotal"] = Json(result.committedTotal());
    j["executedTotal"] = Json(result.executedTotal());
    j["ed2"] = Json(sim::ed2(result));
    return j;
}

CsvTable
threadResultsCsv(const sim::SimResult &result)
{
    CsvTable csv;
    csv.setHeader({"thread", "program", "ipc", "committedInsts",
                   "l2Mpki", "branches", "branchMispredicts",
                   "runaheadEntries", "runaheadCycles",
                   "pseudoRetired"});
    for (std::size_t i = 0; i < result.threads.size(); ++i) {
        const sim::ThreadResult &t = result.threads[i];
        CsvTable::Row row;
        row.add(std::uint64_t{i})
            .add(t.program)
            .add(t.ipc)
            .add(t.core.committedInsts)
            .add(t.l2Mpki)
            .add(t.core.branches)
            .add(t.core.branchMispredicts)
            .add(t.core.runaheadEntries)
            .add(t.core.runaheadCycles)
            .add(t.core.pseudoRetired);
        csv.addRow(row.take());
    }
    return csv;
}

CsvTable
groupMetricsCsv(const sim::GroupMetrics &metrics)
{
    CsvTable csv;
    csv.setHeader({"group", "technique", "workload", "throughput",
                   "totalIpc", "cycles"});
    const auto &workloads = sim::workloadsOf(metrics.group);
    for (std::size_t i = 0; i < metrics.results.size(); ++i) {
        const sim::SimResult &r = metrics.results[i];
        CsvTable::Row row;
        row.add(sim::groupName(metrics.group))
            .add(metrics.technique)
            .add(i < workloads.size() ? workloads[i].name
                                      : std::to_string(i))
            .add(sim::throughput(r))
            .add(r.totalIpc())
            .add(r.cycles);
        csv.addRow(row.take());
    }
    CsvTable::Row mean;
    mean.add(sim::groupName(metrics.group))
        .add(metrics.technique)
        .add("MEAN")
        .add(metrics.meanThroughput)
        .add("")
        .add("");
    csv.addRow(mean.take());
    return csv;
}

} // namespace rat::report
