/**
 * @file
 * JSON/CSV serializers for the simulator's configuration and result
 * types. `toJson` emits every field that affects or describes a run;
 * the matching `fromJson` reads it back exactly (numeric fields
 * round-trip bit-for-bit, see report/json.hh), returning false on
 * missing or ill-typed members instead of guessing.
 *
 * The on-disk result cache (report/result_cache.hh) builds its content
 * hash from the canonical compact dump of `toJson(SimConfig)`, so the
 * serialization *is* the cache-key definition: adding a semantically
 * relevant config field here automatically invalidates stale cells.
 */

#ifndef RAT_REPORT_SERIALIZE_HH
#define RAT_REPORT_SERIALIZE_HH

#include "report/csv.hh"
#include "report/json.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace rat::report {

// --- Configuration ---
Json toJson(const core::RatConfig &rat);
Json toJson(const core::CoreConfig &core);
Json toJson(const mem::CacheConfig &cache);
Json toJson(const mem::MemConfig &mem);
Json toJson(const sim::SimConfig &config);

bool fromJson(const Json &json, core::RatConfig &rat);
bool fromJson(const Json &json, core::CoreConfig &core);
bool fromJson(const Json &json, mem::CacheConfig &cache);
bool fromJson(const Json &json, mem::MemConfig &mem);
bool fromJson(const Json &json, sim::SimConfig &config);

// --- Results ---
Json toJson(const core::ThreadStats &stats);
Json toJson(const mem::ThreadMemStats &stats);
Json toJson(const obs::Log2Histogram &hist);
Json toJson(const obs::TelemetryResult &telemetry);
Json toJson(const sim::ThreadResult &thread);
Json toJson(const sim::SimResult &result);
Json toJson(const sim::GroupMetrics &metrics);

bool fromJson(const Json &json, core::ThreadStats &stats);
bool fromJson(const Json &json, mem::ThreadMemStats &stats);
bool fromJson(const Json &json, obs::Log2Histogram &hist);
bool fromJson(const Json &json, obs::TelemetryResult &telemetry);
bool fromJson(const Json &json, sim::ThreadResult &thread);
bool fromJson(const Json &json, sim::SimResult &result);
bool fromJson(const Json &json, sim::GroupMetrics &metrics);

/**
 * Runahead-engine statistics as a JSON block. One-way: `SimResult` does
 * not serialize these (goldens and cache cells stay unchanged), but
 * always-fresh paths — `ratsim report` structured output — surface them
 * through this helper.
 */
Json engineStatsJson(const runahead::EngineStats &stats);

/** Derived headline metrics (Eq. 1/Eq. 2-less summary) of one run. */
Json resultMetricsJson(const sim::SimResult &result);

/** Per-thread result rows of one run as a CSV table. */
CsvTable threadResultsCsv(const sim::SimResult &result);

/** Per-workload rows + group means of one GroupMetrics as CSV. */
CsvTable groupMetricsCsv(const sim::GroupMetrics &metrics);

} // namespace rat::report

#endif // RAT_REPORT_SERIALIZE_HH
