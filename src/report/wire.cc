#include "report/wire.hh"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.hh"

namespace rat::report {

namespace {

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Read exactly @p size bytes; 1 = ok, 0 = clean EOF before any byte,
 * -1 = error or EOF mid-read. */
int
readAll(int fd, char *data, std::size_t size)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::read(fd, data + got, size - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            return got == 0 ? 0 : -1;
        got += static_cast<std::size_t>(n);
    }
    return 1;
}

} // namespace

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;

    // Chaos injection: replace the frame with an unframeable burst —
    // an oversize length prefix plus junk — and report success, as a
    // worker with corrupted buffers would. The oversize prefix
    // guarantees the receiving FrameBuffer latches corrupt()
    // immediately instead of waiting for bytes that never come.
    if (FaultInjector::global().fire(FaultKind::GarbageFrame)) {
        char junk[12];
        std::memset(junk, 0xff, sizeof(junk));
        writeAll(fd, junk, sizeof(junk));
        return true;
    }

    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    char header[4];
    header[0] = static_cast<char>(len & 0xff);
    header[1] = static_cast<char>((len >> 8) & 0xff);
    header[2] = static_cast<char>((len >> 16) & 0xff);
    header[3] = static_cast<char>((len >> 24) & 0xff);
    return writeAll(fd, header, sizeof(header)) &&
           writeAll(fd, payload.data(), payload.size());
}

std::optional<std::string>
FrameReader::next()
{
    char header[4];
    const int h = readAll(fd_, header, sizeof(header));
    if (h == 0)
        return std::nullopt; // clean EOF between frames
    if (h < 0) {
        truncated_ = true;
        return std::nullopt;
    }
    const std::uint32_t len =
        static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
         << 8) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]))
         << 24);
    if (len > kMaxFramePayload) {
        truncated_ = true;
        return std::nullopt;
    }
    std::string payload(len, '\0');
    if (len > 0 && readAll(fd_, payload.data(), len) != 1) {
        truncated_ = true;
        return std::nullopt;
    }
    return payload;
}

void
FrameBuffer::feed(const char *data, std::size_t size)
{
    // Reclaim the consumed prefix before it grows without bound.
    if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 64 * 1024)) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, size);
}

std::optional<std::string>
FrameBuffer::pop()
{
    if (corrupt_ || buf_.size() - pos_ < 4)
        return std::nullopt;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(buf_.data()) + pos_;
    const std::uint32_t len =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > kMaxFramePayload) {
        corrupt_ = true;
        return std::nullopt;
    }
    if (buf_.size() - pos_ - 4 < len)
        return std::nullopt;
    std::string payload = buf_.substr(pos_ + 4, len);
    pos_ += 4 + len;
    return payload;
}

} // namespace rat::report
