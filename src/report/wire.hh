/**
 * @file
 * Length-prefixed frame transport for streamed result cells.
 *
 * The farm coordinator and its worker processes exchange JSON
 * documents over pipes. A document is framed as a 4-byte little-endian
 * payload length followed by the payload bytes, so the reader never
 * has to scan for delimiters and a torn write is detected as a short
 * frame instead of being mis-parsed. Frames above kMaxFramePayload are
 * rejected as stream corruption.
 */

#ifndef RAT_REPORT_WIRE_HH
#define RAT_REPORT_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace rat::report {

/** Upper bound on one frame's payload (a cell is a few KiB). */
constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/**
 * Write one frame to @p fd, looping over partial writes and EINTR.
 * Returns false on any write error (e.g. EPIPE after the peer died)
 * or when @p payload exceeds kMaxFramePayload.
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Blocking reader for one end of a frame pipe (the worker's job
 * stream). next() returns the payload of the next complete frame,
 * std::nullopt on clean EOF at a frame boundary; a truncated frame or
 * an oversized length prefix is reported through truncated().
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd) : fd_(fd) {}

    std::optional<std::string> next();

    /** True when the stream ended mid-frame or with a bad length. */
    bool truncated() const { return truncated_; }

  private:
    int fd_;
    bool truncated_ = false;
};

/**
 * Incremental frame decoder for the coordinator's non-blocking reads:
 * feed() whatever bytes poll() delivered, then pop() complete frames.
 */
class FrameBuffer
{
  public:
    /** Append raw bytes from the pipe. */
    void feed(const char *data, std::size_t size);

    /**
     * Extract the next complete frame, if any. Returns std::nullopt
     * while the buffer holds less than one full frame.
     */
    std::optional<std::string> pop();

    /** True once a length prefix exceeded kMaxFramePayload. */
    bool corrupt() const { return corrupt_; }

    /** Bytes buffered but not yet popped (mid-frame after EOF means
     * the writer died inside a frame). */
    std::size_t pendingBytes() const { return buf_.size() - pos_; }

  private:
    std::string buf_;
    std::size_t pos_ = 0; ///< consumed prefix of buf_
    bool corrupt_ = false;
};

} // namespace rat::report

#endif // RAT_REPORT_WIRE_HH
