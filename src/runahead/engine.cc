#include "runahead/engine.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace rat::runahead {

namespace {

/**
 * Strong per-element mix (splitmix64 finalizer) summed commutatively:
 * the suppression sets live in unordered containers, so their view and
 * digest contribution must not depend on iteration order.
 */
std::uint64_t
mixSeq(std::uint64_t v)
{
    v += 0x9E3779B97F4A7C15ull;
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
    return v ^ (v >> 31);
}

} // namespace

RunaheadEngine::RunaheadEngine(const core::RatConfig &cfg)
    : policy_(makeRunaheadPolicy(cfg)), raCache_(cfg.runaheadCacheLines)
{
}

RunaheadEngine::~RunaheadEngine() = default;

bool
RunaheadEngine::mayEnter(ThreadId tid, const trace::MicroOp &load)
{
    ThreadEpisode &t = threads_[tid];
    // Fig. 4 no-prefetch ablation: loads observed to miss L2 during a
    // prefetch-less episode must not re-trigger runahead (keeps episode
    // lengths identical to the prefetching run).
    if (!t.suppressedLoads.empty() && t.suppressedLoads.count(load.seq))
        return false;
    const EntryDecision d = policy_->entryDecision(tid, load);
    if (d == EntryDecision::Veto) {
        if (t.lastVetoSeq != load.seq) {
            t.lastVetoSeq = load.seq;
            ++stats_.suppressedEntries;
        }
        return false;
    }
    t.pendingDrain = d == EntryDecision::DrainOnly;
    return true;
}

void
RunaheadEngine::enter(ThreadId tid, const trace::MicroOp &load, Cycle now,
                      Cycle fill_at, std::uint64_t hist_checkpoint,
                      std::uint64_t prefetch_count)
{
    ThreadEpisode &t = threads_[tid];
    RAT_ASSERT(!t.active, "nested runahead entry");
    RAT_ASSERT(fill_at != kNoCycle,
               "blocking load has no completion time");
    t.active = true;
    t.drainOnly = t.pendingDrain;
    t.pendingDrain = false;
    t.resumeSeq = load.seq;
    t.entryPc = load.pc;
    t.fillAt = fill_at;
    t.exitAt = policy_->exitHorizon(now, fill_at);
    t.histCheckpoint = hist_checkpoint;
    t.prefetchSnapshot = prefetch_count;
    ++stats_.episodes;
    if (t.drainOnly)
        ++stats_.drainEpisodes;
}

RunaheadEngine::ExitOutcome
RunaheadEngine::exit(ThreadId tid, std::uint64_t prefetch_count)
{
    ThreadEpisode &t = threads_[tid];
    RAT_ASSERT(t.active, "runahead exit without an episode");

    const std::uint64_t episode_prefetches =
        prefetch_count - t.prefetchSnapshot;
    ExitOutcome out;
    out.resumeSeq = t.resumeSeq;
    out.histCheckpoint = t.histCheckpoint;
    out.useless = episode_prefetches == 0;

    if (out.useless)
        ++stats_.uselessEpisodes;
    if (t.exitAt < t.fillAt)
        ++stats_.cappedExits;
    policy_->onEpisodeEnd(tid, t.entryPc, episode_prefetches,
                          /*full_episode=*/!t.drainOnly);

    raCache_.clear(tid);
    t.active = false;
    t.drainOnly = false;
    return out;
}

RunaheadEngine::EpisodeView
RunaheadEngine::episodeView(ThreadId tid) const
{
    const ThreadEpisode &t = threads_[tid];
    EpisodeView v;
    v.active = t.active;
    v.drainOnly = t.drainOnly;
    v.pendingDrain = t.pendingDrain;
    v.exitAt = t.exitAt;
    v.fillAt = t.fillAt;
    v.resumeSeq = t.resumeSeq;
    v.entryPc = t.entryPc;
    v.histCheckpoint = t.histCheckpoint;
    v.prefetchSnapshot = t.prefetchSnapshot;
    v.lastVetoSeq = t.lastVetoSeq;
    v.suppressedLoads = t.suppressedLoads.size();
    for (InstSeq seq : t.suppressedLoads)
        v.suppressedHash += mixSeq(seq);
    return v;
}

std::string
RunaheadEngine::encodeEpisodes() const
{
    std::ostringstream out;
    out << "ratck1 " << threads_.size() << "\n";
    for (const ThreadEpisode &t : threads_) {
        out << (t.active ? 1 : 0) << ' ' << (t.drainOnly ? 1 : 0) << ' '
            << (t.pendingDrain ? 1 : 0) << ' ' << t.exitAt << ' '
            << t.fillAt << ' ' << t.resumeSeq << ' ' << t.entryPc << ' '
            << t.histCheckpoint << ' ' << t.prefetchSnapshot << ' '
            << t.lastVetoSeq << ' ' << t.suppressedLoads.size();
        std::vector<InstSeq> sorted(t.suppressedLoads.begin(),
                                    t.suppressedLoads.end());
        std::sort(sorted.begin(), sorted.end());
        for (InstSeq seq : sorted)
            out << ' ' << seq;
        out << "\n";
    }
    return out.str();
}

bool
RunaheadEngine::decodeEpisodes(const std::string &blob)
{
    std::istringstream in(blob);
    std::string magic;
    std::size_t count = 0;
    if (!(in >> magic >> count) || magic != "ratck1" ||
        count != threads_.size())
        return false;

    std::array<ThreadEpisode, kMaxThreads> restored{};
    for (ThreadEpisode &t : restored) {
        int active = 0;
        int drain_only = 0;
        int pending_drain = 0;
        std::size_t suppressed = 0;
        if (!(in >> active >> drain_only >> pending_drain >> t.exitAt >>
              t.fillAt >> t.resumeSeq >> t.entryPc >> t.histCheckpoint >>
              t.prefetchSnapshot >> t.lastVetoSeq >> suppressed))
            return false;
        t.active = active != 0;
        t.drainOnly = drain_only != 0;
        t.pendingDrain = pending_drain != 0;
        for (std::size_t i = 0; i < suppressed; ++i) {
            InstSeq seq = 0;
            if (!(in >> seq))
                return false;
            t.suppressedLoads.insert(seq);
        }
    }
    threads_ = std::move(restored);
    return true;
}

const char *
RunaheadEngine::variantName() const
{
    return policy_->name();
}

} // namespace rat::runahead
