#include "runahead/engine.hh"

#include "common/logging.hh"

namespace rat::runahead {

RunaheadEngine::RunaheadEngine(const core::RatConfig &cfg)
    : policy_(makeRunaheadPolicy(cfg)), raCache_(cfg.runaheadCacheLines)
{
}

RunaheadEngine::~RunaheadEngine() = default;

bool
RunaheadEngine::mayEnter(ThreadId tid, const trace::MicroOp &load)
{
    ThreadEpisode &t = threads_[tid];
    // Fig. 4 no-prefetch ablation: loads observed to miss L2 during a
    // prefetch-less episode must not re-trigger runahead (keeps episode
    // lengths identical to the prefetching run).
    if (!t.suppressedLoads.empty() && t.suppressedLoads.count(load.seq))
        return false;
    const EntryDecision d = policy_->entryDecision(tid, load);
    if (d == EntryDecision::Veto) {
        if (t.lastVetoSeq != load.seq) {
            t.lastVetoSeq = load.seq;
            ++stats_.suppressedEntries;
        }
        return false;
    }
    t.pendingDrain = d == EntryDecision::DrainOnly;
    return true;
}

void
RunaheadEngine::enter(ThreadId tid, const trace::MicroOp &load, Cycle now,
                      Cycle fill_at, std::uint64_t hist_checkpoint,
                      std::uint64_t prefetch_count)
{
    ThreadEpisode &t = threads_[tid];
    RAT_ASSERT(!t.active, "nested runahead entry");
    RAT_ASSERT(fill_at != kNoCycle,
               "blocking load has no completion time");
    t.active = true;
    t.drainOnly = t.pendingDrain;
    t.pendingDrain = false;
    t.resumeSeq = load.seq;
    t.entryPc = load.pc;
    t.fillAt = fill_at;
    t.exitAt = policy_->exitHorizon(now, fill_at);
    t.histCheckpoint = hist_checkpoint;
    t.prefetchSnapshot = prefetch_count;
    ++stats_.episodes;
    if (t.drainOnly)
        ++stats_.drainEpisodes;
}

RunaheadEngine::ExitOutcome
RunaheadEngine::exit(ThreadId tid, std::uint64_t prefetch_count)
{
    ThreadEpisode &t = threads_[tid];
    RAT_ASSERT(t.active, "runahead exit without an episode");

    const std::uint64_t episode_prefetches =
        prefetch_count - t.prefetchSnapshot;
    ExitOutcome out;
    out.resumeSeq = t.resumeSeq;
    out.histCheckpoint = t.histCheckpoint;
    out.useless = episode_prefetches == 0;

    if (out.useless)
        ++stats_.uselessEpisodes;
    if (t.exitAt < t.fillAt)
        ++stats_.cappedExits;
    policy_->onEpisodeEnd(tid, t.entryPc, episode_prefetches,
                          /*full_episode=*/!t.drainOnly);

    raCache_.clear(tid);
    t.active = false;
    t.drainOnly = false;
    return out;
}

const char *
RunaheadEngine::variantName() const
{
    return policy_->name();
}

} // namespace rat::runahead
