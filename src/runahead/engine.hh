/**
 * @file
 * RunaheadEngine: the Runahead Threads mechanism (the paper's
 * contribution, Section 3) extracted from the SMT core into its own
 * subsystem.
 *
 * Ownership split with the core:
 *
 *  - The **engine** owns per-thread episode state (the architectural
 *    checkpoint data: resume sequence, predictor-history snapshot,
 *    prefetch snapshot), the exit horizon, the runahead cache, the
 *    Fig. 4 suppression set, the episode policy (the runtime-selected
 *    efficiency variant, see runahead/policy.hh) and engine-level
 *    statistics.
 *  - The **core** keeps the pipeline machinery episodes ride on — INV
 *    folding and its cascade, pseudo-retirement, the exit squash and
 *    rename-map reset — and drives the engine through the narrow
 *    interface below: the entry trigger when a long-latency load
 *    blocks a thread's ROB head, the exit horizon consumed by
 *    `SmtCore::nextEventCycle()` (the cycle-skipping clamp), and the
 *    fold/retire hooks (pseudo-retired store lines, runahead-load
 *    lookups, executed-in-runahead accounting).
 *
 * The serialized per-thread counters (`core::ThreadStats`) stay with
 * the core; `EngineStats` adds non-serialized efficiency counters the
 * variants and benches use.
 */

#ifndef RAT_RUNAHEAD_ENGINE_HH
#define RAT_RUNAHEAD_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/types.hh"
#include "core/config.hh"
#include "runahead/policy.hh"
#include "runahead/racache.hh"
#include "trace/microop.hh"

namespace rat::runahead {

/**
 * Engine-level counters (not part of the serialized results; reset
 * with the core's stats at the warmup -> measure boundary).
 */
struct EngineStats {
    /** Episodes entered. */
    std::uint64_t episodes = 0;
    /** Episodes that generated no prefetch at all (pure overhead). */
    std::uint64_t uselessEpisodes = 0;
    /** Distinct blocking loads the variant vetoed an episode for. */
    std::uint64_t suppressedEntries = 0;
    /** Episodes entered fetch-gated (EntryDecision::DrainOnly). */
    std::uint64_t drainEpisodes = 0;
    /** Exits forced by a variant horizon before the blocking fill. */
    std::uint64_t cappedExits = 0;
    /** Instructions executed (issued) while their thread ran ahead. */
    std::uint64_t executedInRunahead = 0;
};

/** The extracted Runahead Threads subsystem. */
class RunaheadEngine
{
  public:
    explicit RunaheadEngine(const core::RatConfig &cfg);
    ~RunaheadEngine();

    RunaheadEngine(const RunaheadEngine &) = delete;
    RunaheadEngine &operator=(const RunaheadEngine &) = delete;

    // --- hot-path queries -------------------------------------------------

    /** Is the thread running ahead? */
    bool inRunahead(ThreadId tid) const { return threads_[tid].active; }

    /**
     * Exit horizon of the thread's current episode: the episode ends at
     * the first cycle >= this value. Only meaningful while
     * inRunahead(tid); feeds `SmtCore::nextEventCycle()`.
     */
    Cycle exitAt(ThreadId tid) const { return threads_[tid].exitAt; }

    /**
     * Is the thread's current episode fetch-gated (DrainOnly)? The
     * core's fetch stage skips the thread while this holds, exactly
     * like the `noFetchInRunahead` ablation.
     */
    bool
    fetchSuppressed(ThreadId tid) const
    {
        return threads_[tid].active && threads_[tid].drainOnly;
    }

    // --- entry trigger ----------------------------------------------------

    /**
     * May an episode start for @p load (a long-latency load blocking
     * @p tid's ROB head)? Checks the Fig. 4 suppression set, then asks
     * the variant; a DrainOnly decision is remembered and applied by
     * the immediately following enter(). Called every cycle while the
     * load blocks commit.
     */
    bool mayEnter(ThreadId tid, const trace::MicroOp &load);

    /**
     * Begin an episode: record the checkpoint. @p fill_at is the
     * blocking load's fill-completion cycle, @p hist_checkpoint the
     * branch predictor's history register, @p prefetch_count the
     * thread's useful-prefetch total at entry.
     */
    void enter(ThreadId tid, const trace::MicroOp &load, Cycle now,
               Cycle fill_at, std::uint64_t hist_checkpoint,
               std::uint64_t prefetch_count);

    // --- exit -------------------------------------------------------------

    /** What the core must restore when an episode ends. */
    struct ExitOutcome {
        /** Trace position to resume fetching from (the blocking load). */
        InstSeq resumeSeq = 0;
        /** Predictor history captured at entry. */
        std::uint64_t histCheckpoint = 0;
        /** Episode generated zero prefetches (pure overhead). */
        bool useless = false;
    };

    /**
     * End the thread's episode: train the variant, clear the runahead
     * cache, and hand the checkpoint back. @p prefetch_count is the
     * thread's useful-prefetch total at exit.
     */
    ExitOutcome exit(ThreadId tid, std::uint64_t prefetch_count);

    // --- fold / retire hooks ----------------------------------------------

    /** A runahead store of @p tid pseudo-retired, writing @p line. */
    void
    notePseudoRetiredStore(ThreadId tid, Addr line, bool data_valid)
    {
        raCache_.write(tid, line, data_valid);
    }

    /** Runahead-cache lookup for a runahead load of @p tid. */
    bool
    lookupStoreLine(ThreadId tid, Addr line, bool &data_valid) const
    {
        return raCache_.lookup(tid, line, data_valid);
    }

    /** An instruction of a running-ahead thread started executing. */
    void noteExecutedInRunahead() { ++stats_.executedInRunahead; }

    /**
     * Bar @p seq from re-triggering runahead after recovery (the
     * Fig. 4 no-prefetch ablation's episode-length preservation).
     */
    void
    suppressLoad(ThreadId tid, InstSeq seq)
    {
        threads_[tid].suppressedLoads.insert(seq);
    }

    // --- introspection ----------------------------------------------------

    /**
     * Read-only snapshot of one thread's episode state for the
     * self-checking subsystem (src/check/): the auditor cross-checks it
     * against the pipeline, and the state digest folds it in. The
     * suppression set is summarized order-independently (size + a
     * commutative per-element hash) so the view is deterministic even
     * though the underlying container is unordered.
     */
    struct EpisodeView {
        bool active = false;
        bool drainOnly = false;
        bool pendingDrain = false;
        Cycle exitAt = 0;
        Cycle fillAt = 0;
        InstSeq resumeSeq = 0;
        Addr entryPc = 0;
        std::uint64_t histCheckpoint = 0;
        std::uint64_t prefetchSnapshot = 0;
        InstSeq lastVetoSeq = 0;
        std::uint64_t suppressedLoads = 0;
        /** Commutative FNV mix of the suppression set's elements. */
        std::uint64_t suppressedHash = 0;
    };

    EpisodeView episodeView(ThreadId tid) const;

    /**
     * Serialize every thread's episode state into a deterministic text
     * blob (the suppression sets are emitted sorted). Together with
     * decodeEpisodes() this is the engine half of ROADMAP item 1's
     * checkpoint/restore: `ratsim verify`'s save/restore leg round-trips
     * the blob mid-run and proves via digest identity that nothing was
     * lost.
     */
    std::string encodeEpisodes() const;

    /**
     * Restore episode state from an encodeEpisodes() blob. Returns
     * false (leaving the engine untouched) on a malformed blob.
     */
    bool decodeEpisodes(const std::string &blob);

    const EngineStats &stats() const { return stats_; }
    /** Reset engine counters (episode state is preserved). */
    void resetStats() { stats_ = {}; }
    /** The selected variant's canonical name. */
    const char *variantName() const;
    /** The runahead cache (tests). */
    const RunaheadCache &cache() const { return raCache_; }

  private:
    struct ThreadEpisode {
        bool active = false;
        bool drainOnly = false;
        /** Decision of the last mayEnter, consumed by enter(). */
        bool pendingDrain = false;
        Cycle exitAt = 0;
        Cycle fillAt = 0;
        InstSeq resumeSeq = 0;
        Addr entryPc = 0;
        std::uint64_t histCheckpoint = 0;
        std::uint64_t prefetchSnapshot = 0;
        /** Last load.seq a veto was counted for (dedup per instance). */
        InstSeq lastVetoSeq = ~InstSeq{0};
        /** Loads barred from re-triggering runahead (Fig. 4 ablation). */
        std::unordered_set<InstSeq> suppressedLoads;
    };

    std::unique_ptr<RunaheadPolicy> policy_;
    RunaheadCache raCache_;
    std::array<ThreadEpisode, kMaxThreads> threads_{};
    EngineStats stats_;
};

} // namespace rat::runahead

#endif // RAT_RUNAHEAD_ENGINE_HH
