/**
 * @file
 * The concrete runahead efficiency variants behind `--ra-variant`.
 * Each is a small pure-strategy object; the heavy lifting (checkpoint,
 * folding, recovery) lives in the engine and the core.
 */

#include "runahead/policy.hh"

#include <array>
#include <vector>

#include "common/logging.hh"

namespace rat::runahead {

namespace {

/** The paper's Runahead Threads: every L2-miss-blocked load enters,
 * every episode runs until its blocking fill returns. */
class ClassicPolicy : public RunaheadPolicy
{
  public:
    const char *name() const override { return "classic"; }
};

/** Classic entry with a max-episode-distance throttle: an episode may
 * run at most `cappedMaxCycles` cycles past its entry point. A capped
 * thread recovers early and, if the fill is still distant when the
 * refetched load re-issues, simply starts a fresh (re-capped)
 * episode. */
class CappedPolicy : public RunaheadPolicy
{
  public:
    explicit CappedPolicy(unsigned max_cycles)
        : maxCycles_(max_cycles ? max_cycles : 1)
    {
    }

    Cycle
    exitHorizon(Cycle now, Cycle fill_at) const override
    {
        const Cycle cap = now + maxCycles_;
        return fill_at < cap ? fill_at : cap;
    }

    const char *name() const override { return "capped"; }

  private:
    Cycle maxCycles_;
};

/**
 * Per-PC usefulness filter: a load whose recent episodes generated no
 * prefetches stops running full episodes — its episodes become
 * fetch-gated DrainOnly entries that release the thread's in-flight
 * resources but fetch and execute nothing new (full suppression would
 * revert the thread to ICOUNT's ROB-clogging stall and punish the
 * co-runners; see DESIGN.md). 2-bit saturating counters, indexed by a
 * multiplicative hash of the entry PC's 4 KB code region — region
 * granularity gives the predictor the spatial recurrence it needs to
 * train quickly (neighbouring static loads of one loop share pointer-
 * chasing behavior; the synthetic traces walk hot-loop PCs linearly,
 * so exact-PC entries would each be seen once per loop iteration). A
 * useful episode resets its region's counter, and every `reprobe`-th
 * suppressed (distinct) load of a filtered region runs a probe episode
 * so the filter can recover when the code becomes prefetchable again.
 */
class UselessFilterPolicy : public RunaheadPolicy
{
  public:
    UselessFilterPolicy(unsigned threshold, unsigned reprobe)
        // The counter saturates at kCounterMax, so a larger threshold
        // would silently disable the filter; clamp to [1, kCounterMax].
        : threshold_(threshold < 1 ? 1
                                   : threshold > kCounterMax
                                         ? unsigned{kCounterMax}
                                         : threshold),
          reprobe_(reprobe), table_(kTableEntries)
    {
        lastSeq_.fill(~InstSeq{0});
    }

    EntryDecision
    entryDecision(ThreadId tid, const trace::MicroOp &load) override
    {
        Entry &e = table_[index(load.pc)];
        if (e.uselessCount < threshold_)
            return EntryDecision::Enter;
        // Count each suppressed load instance once, even though the
        // core re-asks every cycle the load blocks commit. The answer
        // below depends only on denyCount, so repeated queries for the
        // same instance stay consistent.
        if (lastSeq_[tid] != load.seq) {
            lastSeq_[tid] = load.seq;
            ++e.denyCount;
        }
        if (reprobe_ && e.denyCount % reprobe_ == 0)
            return EntryDecision::Enter; // probe: a fresh full episode
        return EntryDecision::DrainOnly;
    }

    void
    onEpisodeEnd(ThreadId tid, Addr entry_pc, std::uint64_t prefetches,
                 bool full_episode) override
    {
        (void)tid;
        if (!full_episode)
            return; // drained windows carry no usefulness signal
        Entry &e = table_[index(entry_pc)];
        if (prefetches == 0) {
            if (e.uselessCount < kCounterMax)
                ++e.uselessCount;
        } else {
            e.uselessCount = 0;
        }
    }

    const char *name() const override { return "useless-filter"; }

  private:
    static constexpr unsigned kTableEntries = 1024; // power of two
    static constexpr std::uint8_t kCounterMax = 3;  // 2-bit counters
    static constexpr unsigned kRegionShift = 12;    // 4 KB code regions

    struct Entry {
        std::uint8_t uselessCount = 0;
        std::uint32_t denyCount = 0;
    };

    static std::size_t
    index(Addr pc)
    {
        std::uint64_t h = (pc >> kRegionShift) * 0x9E3779B97F4A7C15ull;
        h ^= h >> 32;
        return static_cast<std::size_t>(h & (kTableEntries - 1));
    }

    unsigned threshold_;
    unsigned reprobe_;
    std::vector<Entry> table_;
    std::array<InstSeq, kMaxThreads> lastSeq_{};
};

} // namespace

std::unique_ptr<RunaheadPolicy>
makeRunaheadPolicy(const core::RatConfig &cfg)
{
    switch (cfg.variant) {
      case RaVariant::Classic:
        return std::make_unique<ClassicPolicy>();
      case RaVariant::Capped:
        return std::make_unique<CappedPolicy>(cfg.cappedMaxCycles);
      case RaVariant::UselessFilter:
        return std::make_unique<UselessFilterPolicy>(
            cfg.uselessFilterThreshold, cfg.uselessFilterReprobe);
    }
    panic("unknown runahead variant");
}

} // namespace rat::runahead
