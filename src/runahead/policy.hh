/**
 * @file
 * Strategy interface between the RunaheadEngine and its efficiency
 * variants: a RunaheadPolicy decides which long-latency loads may
 * start an episode and how far an episode may run; the engine owns
 * everything else (checkpointing, the runahead cache, exit restore).
 *
 * Adding a variant is: add an RaVariant enumerator (runahead/variant.hh),
 * implement the three hooks here, and extend makeRunaheadPolicy — the
 * engine, the core, the CLI and the sweep grid pick it up unchanged
 * (see DESIGN.md, "RunaheadEngine extraction & variant interface").
 */

#ifndef RAT_RUNAHEAD_POLICY_HH
#define RAT_RUNAHEAD_POLICY_HH

#include <memory>

#include "common/types.hh"
#include "core/config.hh"
#include "trace/microop.hh"

namespace rat::runahead {

/**
 * Episode policy of one engine instance. Implementations must be
 * deterministic pure functions of their own trained state — the
 * simulator's bit-reproducibility (DESIGN.md, "Determinism and
 * seeding") extends through this interface.
 */
/** What a variant decides about a would-be episode. */
enum class EntryDecision : std::uint8_t {
    /** Run a full episode (fetch + execute past the miss). */
    Enter,
    /**
     * Enter runahead but gate fetch for the episode: the in-flight
     * window drains (still releasing its shared resources early — the
     * SMT half of the paper's benefit), and nothing new is fetched or
     * executed. This is how a variant suppresses predicted-useless
     * *work* without reverting the thread to ICOUNT's clog-the-ROB
     * behavior, which full suppression measurably inflicts on the
     * co-runners (see DESIGN.md).
     */
    DrainOnly,
    /** No episode at all: the thread stalls on the miss. */
    Veto,
};

class RunaheadPolicy
{
  public:
    virtual ~RunaheadPolicy() = default;

    /**
     * Decide the episode mode for this long-latency load (found
     * blocking its thread's ROB head). Called every cycle while the
     * load blocks commit; implementations must answer consistently for
     * one (tid, load.seq) instance, and may train suppression state on
     * the first query of an instance.
     */
    virtual EntryDecision
    entryDecision(ThreadId tid, const trace::MicroOp &load)
    {
        (void)tid;
        (void)load;
        return EntryDecision::Enter;
    }

    /**
     * Exit horizon of an episode entered at @p now whose blocking fill
     * completes at @p fill_at. The engine exits the episode at the
     * first cycle >= the returned value (it also feeds the core's
     * nextEventCycle() quiescence clamp, so it must not move once an
     * episode is running).
     */
    virtual Cycle
    exitHorizon(Cycle now, Cycle fill_at) const
    {
        (void)now;
        return fill_at;
    }

    /**
     * An episode of @p tid that entered on the load at @p entry_pc has
     * ended after generating @p prefetches useful line fills.
     * @p full_episode is false for DrainOnly episodes — their drained
     * window says nothing about what a full episode would have
     * prefetched, so usefulness predictors must not train on them.
     */
    virtual void
    onEpisodeEnd(ThreadId tid, Addr entry_pc, std::uint64_t prefetches,
                 bool full_episode)
    {
        (void)tid;
        (void)entry_pc;
        (void)prefetches;
        (void)full_episode;
    }

    /** Variant display name (canonical CLI spelling). */
    virtual const char *name() const = 0;
};

/** Create the episode policy selected by @p cfg.variant. */
std::unique_ptr<RunaheadPolicy> makeRunaheadPolicy(
    const core::RatConfig &cfg);

} // namespace rat::runahead

#endif // RAT_RUNAHEAD_POLICY_HH
