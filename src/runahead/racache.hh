/**
 * @file
 * The optional runahead cache (Mutlu et al. [11], discussed and
 * measured insignificant in the paper's Section 3.3): tracks, per
 * thread, the INV status of lines written by pseudo-retired runahead
 * stores so that later runahead loads can inherit it. Bounded,
 * FIFO-evicted, cleared at runahead exit.
 *
 * Implementation: per thread, a FIFO ring of entries plus an
 * open-addressed (linear-probe) line -> ring-slot map, so write and
 * lookup are O(1) instead of a deque scan. Semantics are identical to
 * the original FIFO deque: a rewrite updates an entry in place without
 * refreshing its eviction order.
 */

#ifndef RAT_RUNAHEAD_RACACHE_HH
#define RAT_RUNAHEAD_RACACHE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace rat::runahead {

/** Per-thread FIFO cache of lines written by pseudo-retired stores. */
class RunaheadCache
{
  public:
    explicit RunaheadCache(unsigned lines_per_thread)
        : capacity_(lines_per_thread ? lines_per_thread : 1)
    {
        // Power-of-two table at most half full keeps probe chains short.
        tableSize_ = 8;
        while (tableSize_ < 2 * capacity_)
            tableSize_ *= 2;
        for (Thread &t : threads_) {
            t.ring.resize(capacity_);
            t.table.assign(tableSize_, kEmptySlot);
        }
    }

    /** Record the status of a line written by a pseudo-retired store. */
    void
    write(ThreadId tid, Addr line, bool data_valid)
    {
        Thread &t = threads_[tid];
        const std::uint32_t slot = findSlot(t, line);
        if (t.table[slot] != kEmptySlot) {
            t.ring[t.table[slot]].valid = data_valid; // rewrite in place
            return;
        }
        if (t.count == capacity_) {
            eraseKey(t, t.ring[t.head].line); // FIFO-evict the oldest
            t.head = next(t.head);
            --t.count;
        }
        const std::uint32_t pos = wrap(t.head + t.count);
        t.ring[pos] = {line, data_valid};
        // The eviction above may have shifted table entries; re-probe.
        t.table[findSlot(t, line)] = pos;
        ++t.count;
    }

    /**
     * Look up a line. @return true if present, with the stored data
     * validity in @p data_valid.
     */
    bool
    lookup(ThreadId tid, Addr line, bool &data_valid) const
    {
        const Thread &t = threads_[tid];
        const std::uint32_t slot = findSlot(t, line);
        if (t.table[slot] == kEmptySlot)
            return false;
        data_valid = t.ring[t.table[slot]].valid;
        return true;
    }

    /** Drop a thread's entries (runahead exit). */
    void
    clear(ThreadId tid)
    {
        Thread &t = threads_[tid];
        if (t.count == 0)
            return;
        std::fill(t.table.begin(), t.table.end(), kEmptySlot);
        t.head = 0;
        t.count = 0;
    }

    /** Lines currently held by a thread (tests and introspection). */
    unsigned occupancy(ThreadId tid) const { return threads_[tid].count; }

    /** Line capacity per thread. */
    unsigned capacity() const { return capacity_; }

  private:
    struct Entry {
        Addr line = 0;
        bool valid = false;
    };

    struct Thread {
        std::vector<Entry> ring;          ///< FIFO payload storage
        std::vector<std::uint32_t> table; ///< line -> ring index
        std::uint32_t head = 0;           ///< ring index of the oldest
        std::uint32_t count = 0;
    };

    static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

    std::uint32_t next(std::uint32_t pos) const { return wrap(pos + 1); }
    std::uint32_t
    wrap(std::uint32_t pos) const
    {
        return pos >= capacity_ ? pos - capacity_ : pos;
    }

    std::uint32_t
    home(Addr line) const
    {
        std::uint64_t h = line * 0x9E3779B97F4A7C15ull;
        h ^= h >> 32;
        return static_cast<std::uint32_t>(h & (tableSize_ - 1));
    }

    /** Probe slot of @p line: its entry, or the empty slot to fill. */
    std::uint32_t
    findSlot(const Thread &t, Addr line) const
    {
        std::uint32_t i = home(line);
        while (t.table[i] != kEmptySlot && t.ring[t.table[i]].line != line)
            i = (i + 1) & (tableSize_ - 1);
        return i;
    }

    /** Open-addressing erase with backward shift (Knuth 6.4 R). */
    void
    eraseKey(Thread &t, Addr line)
    {
        std::uint32_t i = findSlot(t, line);
        RAT_ASSERT(t.table[i] != kEmptySlot, "evicting absent line");
        std::uint32_t j = i;
        while (true) {
            t.table[i] = kEmptySlot;
            while (true) {
                j = (j + 1) & (tableSize_ - 1);
                if (t.table[j] == kEmptySlot)
                    return;
                const std::uint32_t k = home(t.ring[t.table[j]].line);
                // If the home slot k lies cyclically in (i, j], the
                // entry is already reachable from its home; keep it.
                const bool reachable =
                    i <= j ? (i < k && k <= j) : (i < k || k <= j);
                if (!reachable)
                    break;
            }
            t.table[i] = t.table[j];
            i = j;
        }
    }

    std::uint32_t capacity_;
    std::uint32_t tableSize_ = 0;
    std::array<Thread, kMaxThreads> threads_{};
};

} // namespace rat::runahead

#endif // RAT_RUNAHEAD_RACACHE_HH
