/**
 * @file
 * Runtime-selectable runahead efficiency variants.
 *
 * A variant is the *episode policy* of the RunaheadEngine: it decides
 * which long-latency loads may start a runahead episode and how far an
 * episode may run. The mechanism itself (checkpoint, INV folding,
 * pseudo-retirement, recovery) is shared by all variants.
 */

#ifndef RAT_RUNAHEAD_VARIANT_HH
#define RAT_RUNAHEAD_VARIANT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rat::runahead {

/** Which runahead episode policy the engine runs. */
enum class RaVariant : std::uint8_t {
    /** The paper's Runahead Threads, unmodified (HPCA 2008). */
    Classic,
    /**
     * Classic entry, but an episode may run at most
     * `RatConfig::cappedMaxCycles` cycles past its entry point — a
     * max-episode-distance throttle in the spirit of bounding wasted
     * speculative work (cf. MLP-aware windows, R3-DLA distance caps).
     */
    Capped,
    /**
     * Classic episodes, gated by a per-PC usefulness predictor: a load
     * whose past episodes generated no prefetches is suppressed from
     * re-triggering runahead (the efficiency concern of Mutlu et
     * al.'s useless-runahead elimination).
     */
    UselessFilter,
};

/** Canonical CLI/JSON spelling of a variant. */
inline const char *
raVariantName(RaVariant variant)
{
    switch (variant) {
      case RaVariant::Classic:
        return "classic";
      case RaVariant::Capped:
        return "capped";
      case RaVariant::UselessFilter:
        return "useless-filter";
    }
    return "?";
}

/** Parse a variant name as accepted by `--ra-variant`. */
inline std::optional<RaVariant>
parseRaVariant(const std::string &name)
{
    if (name == "classic")
        return RaVariant::Classic;
    if (name == "capped")
        return RaVariant::Capped;
    if (name == "useless-filter" || name == "uselessfilter")
        return RaVariant::UselessFilter;
    return std::nullopt;
}

/** Canonical names of every variant, in declaration order. */
inline std::vector<std::string>
raVariantNames()
{
    return {raVariantName(RaVariant::Classic),
            raVariantName(RaVariant::Capped),
            raVariantName(RaVariant::UselessFilter)};
}

} // namespace rat::runahead

#endif // RAT_RUNAHEAD_VARIANT_HH
