#include "sim/campaign.hh"

#include <atomic>
#include <functional>
#include <map>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "report/result_cache.hh"
#include "report/serialize.hh"
#include "sim/metrics.hh"
#include "sim/sampled.hh"

namespace rat::sim {

namespace {

/** An axis with an empty spec collapses to the base config's value. */
template <typename T>
std::vector<T>
axisOrDefault(const std::vector<T> &axis, T base_value)
{
    return axis.empty() ? std::vector<T>{base_value} : axis;
}

} // namespace

std::vector<CampaignCell>
expandCampaign(const CampaignSpec &spec)
{
    RAT_ASSERT(!spec.techniques.empty(),
               "campaign needs at least one technique");

    // Workload list: group members first (Table 2 order), then the
    // explicit extras.
    std::vector<std::pair<std::string, const Workload *>> workloads;
    for (const WorkloadGroup g : spec.groups) {
        for (const Workload &w : workloadsOf(g))
            workloads.emplace_back(groupName(g), &w);
    }
    for (const Workload &w : spec.workloads)
        workloads.emplace_back("", &w);
    RAT_ASSERT(!workloads.empty(),
               "campaign needs at least one group or workload");

    const auto variants =
        axisOrDefault(spec.raVariantAxis, spec.base.core.rat.variant);
    const auto regs =
        axisOrDefault(spec.regsAxis, spec.base.core.intRegs);
    const auto robs = axisOrDefault(spec.robAxis, spec.base.core.robEntries);
    const auto measures =
        axisOrDefault(spec.measureAxis, spec.base.measureCycles);
    const auto seeds = axisOrDefault(spec.seedAxis, spec.base.seed);

    std::vector<CampaignCell> cells;
    cells.reserve(spec.techniques.size() * workloads.size() *
                  variants.size() * regs.size() * robs.size() *
                  measures.size() * seeds.size());
    for (const TechniqueSpec &tech : spec.techniques) {
        // The runahead engine is inert for non-runahead techniques, so
        // every variant cell would be a bit-identical re-simulation
        // under a distinct cache key; collapse them to one cell.
        const std::vector<runahead::RaVariant> inert{tech.rat.variant};
        const auto &tech_variants =
            core::runaheadEnabled(tech.policy) ? variants : inert;
        for (const auto &[group, workload] : workloads) {
            for (const runahead::RaVariant variant : tech_variants) {
                for (const unsigned r : regs) {
                    for (const unsigned rob : robs) {
                        for (const Cycle measure : measures) {
                            for (const std::uint64_t seed : seeds) {
                                CampaignCell cell;
                                cell.technique = tech.label;
                                cell.group = group;
                                cell.workload = workload->name;
                                cell.raVariant =
                                    runahead::raVariantName(variant);
                                cell.regs = r;
                                cell.rob = rob;
                                cell.measureCycles = measure;
                                cell.seed = seed;
                                cell.programs = workload->programs;

                                SimConfig cfg = spec.base;
                                cfg.core.numThreads =
                                    static_cast<unsigned>(
                                        workload->programs.size());
                                cfg.core.policy = tech.policy;
                                cfg.core.rat = tech.rat;
                                cfg.core.rat.variant = variant;
                                cfg.core.intRegs = r;
                                cfg.core.fpRegs = r;
                                cfg.core.robEntries = rob;
                                cfg.measureCycles = measure;
                                cfg.seed = seed;
                                if (cfg.sampled) {
                                    // One cell per representative
                                    // window (innermost implicit
                                    // axis); the memoized plan makes
                                    // this a pure lookup for every
                                    // technique after the first.
                                    const auto &plan = samplePlanFor(
                                        cfg, cell.programs);
                                    for (std::size_t s = 0;
                                         s < plan.samples.size(); ++s) {
                                        CampaignCell sc = cell;
                                        sc.sampleIndex =
                                            static_cast<int>(s);
                                        sc.config = cfg;
                                        sc.config.sampleIndex =
                                            static_cast<int>(s);
                                        sc.key = report::ResultCache::
                                            keyFor(sc.config,
                                                   sc.programs);
                                        cells.push_back(std::move(sc));
                                    }
                                    continue;
                                }
                                cell.config = cfg;
                                cell.key = report::ResultCache::keyFor(
                                    cfg, cell.programs);
                                cells.push_back(std::move(cell));
                            }
                        }
                    }
                }
            }
        }
    }
    return cells;
}

CampaignPlan
planCampaign(const CampaignSpec &spec, const report::ResultCache &cache)
{
    CampaignPlan plan;
    plan.outcome.cells = expandCampaign(spec);

    // Probe the cache and dedupe: identical keys (e.g. a workload both
    // in a group and listed explicitly) simulate exactly once.
    for (std::size_t i = 0; i < plan.outcome.cells.size(); ++i) {
        CampaignCell &cell = plan.outcome.cells[i];
        if (cache.enabled()) {
            if (auto hit = cache.load(cell.key)) {
                cell.result = std::move(*hit);
                cell.fromCache = true;
                continue;
            }
        }
        plan.pending[cell.key].push_back(i);
    }
    plan.outcome.cacheHits = cache.hits();
    plan.outcome.cacheMisses = cache.misses();
    plan.outcome.cacheQuarantined = cache.quarantined();

    plan.leads.reserve(plan.pending.size());
    for (const auto &[key, indices] : plan.pending)
        plan.leads.push_back(indices.front());
    return plan;
}

void
fanOutDuplicates(
    CampaignOutcome &outcome,
    const std::map<std::string, std::vector<std::size_t>> &pending)
{
    for (const auto &[key, indices] : pending) {
        for (std::size_t i = 1; i < indices.size(); ++i)
            outcome.cells[indices[i]].result =
                outcome.cells[indices.front()].result;
    }
}

CampaignOutcome
runCampaign(const CampaignSpec &spec)
{
    const report::ResultCache cache(spec.cacheDir);
    CampaignPlan plan = planCampaign(spec, cache);
    CampaignOutcome &outcome = plan.outcome;

    // Simulate the unique misses on the worker pool. Each job owns a
    // distinct lead cell, so no locking is needed; the completion
    // counters are atomics because jobs finish concurrently.
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failedStores{0};
    const std::string ckptDir = checkpointDirFor(spec.cacheDir);
    std::vector<std::function<void()>> jobs;
    jobs.reserve(plan.leads.size());
    for (const std::size_t lead : plan.leads) {
        jobs.emplace_back([&outcome, &cache, &completed, &failedStores,
                           &ckptDir, lead] {
            CampaignCell &cell = outcome.cells[lead];
            cell.result =
                simulateCell(cell.config, cell.programs, ckptDir);
            // Count completion only after the simulation finished: a
            // throwing cell must not inflate the simulated count.
            completed.fetch_add(1);
            if (cache.enabled() && !cache.store(cell.key, cell.result))
                failedStores.fetch_add(1);
        });
    }
    unsigned workers = spec.parallelism;
    if (!workers) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = hw ? hw : 4;
    }
    runParallel(jobs, workers);
    outcome.simulated = completed.load();
    outcome.failedStores = failedStores.load();

    fanOutDuplicates(outcome, plan.pending);
    return outcome;
}

CampaignOutcome
mergeSampledOutcome(const CampaignOutcome &outcome)
{
    CampaignOutcome merged;
    merged.cacheHits = outcome.cacheHits;
    merged.cacheMisses = outcome.cacheMisses;
    merged.simulated = outcome.simulated;
    merged.failedStores = outcome.failedStores;
    merged.cacheQuarantined = outcome.cacheQuarantined;

    // Per-sample cells of one workload coordinate are consecutive
    // (innermost implicit axis), so one forward scan groups them.
    const auto sameCoordinate = [](const CampaignCell &a,
                                   const CampaignCell &b) {
        return a.technique == b.technique && a.group == b.group &&
               a.workload == b.workload && a.raVariant == b.raVariant &&
               a.regs == b.regs && a.rob == b.rob &&
               a.measureCycles == b.measureCycles && a.seed == b.seed;
    };
    for (std::size_t i = 0; i < outcome.cells.size();) {
        const CampaignCell &cell = outcome.cells[i];
        if (cell.sampleIndex < 0) {
            merged.cells.push_back(cell);
            ++i;
            continue;
        }
        std::vector<SimResult> samples;
        bool allCached = true;
        std::size_t j = i;
        for (; j < outcome.cells.size() &&
               outcome.cells[j].sampleIndex >= 0 &&
               sameCoordinate(outcome.cells[j], cell);
             ++j) {
            samples.push_back(outcome.cells[j].result);
            allCached = allCached && outcome.cells[j].fromCache;
        }
        CampaignCell row = cell;
        row.sampleIndex = -1;
        row.config.sampleIndex = -1;
        row.key.clear(); // derived data; merged rows are never cached
        row.fromCache = allCached;
        row.result =
            mergeSampledResults(row.config, row.programs, samples);
        merged.cells.push_back(std::move(row));
        i = j;
    }
    return merged;
}

report::Json
campaignJson(const CampaignOutcome &outcome, const CampaignSpec &spec)
{
    report::Json j = report::Json::object();
    j["schema"] = report::Json("ratsim-campaign-v1");
    j["base"] = report::toJson(spec.base);

    report::Json cells = report::Json::array();
    for (const CampaignCell &cell : outcome.cells) {
        report::Json c = report::Json::object();
        c["technique"] = report::Json(cell.technique);
        if (!cell.group.empty())
            c["group"] = report::Json(cell.group);
        c["workload"] = report::Json(cell.workload);
        c["raVariant"] = report::Json(cell.raVariant);
        c["regs"] = report::Json(std::uint64_t{cell.regs});
        c["rob"] = report::Json(std::uint64_t{cell.rob});
        c["measureCycles"] = report::Json(cell.measureCycles);
        c["seed"] = report::Json(cell.seed);
        // Sampled coordinate / error metadata only on sampled cells —
        // exact campaigns serialize exactly as before.
        if (cell.sampleIndex >= 0)
            c["sampleIndex"] =
                report::Json(std::int64_t{cell.sampleIndex});
        if (cell.result.sampled.enabled && cell.result.sampled.merged) {
            c["sampled"] = report::Json(true);
            c["ipcError"] = report::Json(cell.result.sampled.ipcError);
            c["hmeanError"] =
                report::Json(cell.result.sampled.hmeanError);
        }
        c["metrics"] = report::resultMetricsJson(cell.result);
        c["result"] = report::toJson(cell.result);
        cells.push(std::move(c));
    }
    j["cells"] = std::move(cells);
    return j;
}

report::CsvTable
campaignCsv(const CampaignOutcome &outcome)
{
    // Error-bar columns appear only when the campaign has sampled
    // cells: exact-mode CSV stays byte-identical.
    bool anySampled = false;
    for (const CampaignCell &cell : outcome.cells)
        anySampled = anySampled || cell.result.sampled.enabled;

    report::CsvTable csv;
    std::vector<std::string> header{
        "technique", "group", "workload", "raVariant", "regs", "rob",
        "measureCycles", "seed", "throughput", "totalIpc", "ed2",
        "committedTotal", "cycles"};
    if (anySampled) {
        header.push_back("sampled");
        header.push_back("ipcError");
        header.push_back("hmeanError");
    }
    csv.setHeader(header);
    for (const CampaignCell &cell : outcome.cells) {
        report::CsvTable::Row row;
        row.add(cell.technique)
            .add(cell.group)
            .add(cell.workload)
            .add(cell.raVariant)
            .add(std::uint64_t{cell.regs})
            .add(std::uint64_t{cell.rob})
            .add(cell.measureCycles)
            .add(cell.seed)
            .add(throughput(cell.result))
            .add(cell.result.totalIpc())
            .add(ed2(cell.result))
            .add(cell.result.committedTotal())
            .add(cell.result.cycles);
        if (anySampled) {
            const SampledMeta &s = cell.result.sampled;
            row.add(std::uint64_t{s.enabled ? 1u : 0u})
                .add(s.enabled && s.merged ? s.ipcError : 0.0)
                .add(s.enabled && s.merged ? s.hmeanError : 0.0);
        }
        csv.addRow(row.take());
    }
    return csv;
}

} // namespace rat::sim
