/**
 * @file
 * Declarative experiment campaigns: a spec of techniques x workloads x
 * configuration axes (renaming registers, ROB size, measured window,
 * seeds) expands into a job grid, runs through the shared worker pool,
 * and memoizes completed cells in the on-disk result cache
 * (report/result_cache.hh) so re-runs and extended sweeps only
 * simulate cells they have not seen before.
 *
 * Because a simulation is a pure function of (SimConfig, programs)
 * (DESIGN.md), a cached cell is bit-identical to re-running it: cold,
 * warm-cache and serial campaign runs all produce the same results.
 */

#ifndef RAT_SIM_CAMPAIGN_HH
#define RAT_SIM_CAMPAIGN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "report/csv.hh"
#include "report/json.hh"
#include "report/result_cache.hh"
#include "runahead/variant.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "sim/workloads.hh"

namespace rat::sim {

/**
 * A declarative campaign. Empty axes mean "use the base config's
 * value"; the grid is the full cross product
 *   techniques x (group workloads + explicit workloads)
 *              x ra-variants x regs x rob x measure x seeds.
 */
struct CampaignSpec {
    SimConfig base{};
    std::vector<TechniqueSpec> techniques; ///< required, >= 1
    std::vector<WorkloadGroup> groups;     ///< whole Table 2 groups
    std::vector<Workload> workloads;       ///< explicit extra workloads
    /**
     * Runahead efficiency variants. Applies to runahead techniques
     * (RaT, RaT+DCRA); other techniques collapse to a single cell —
     * the engine is inert for them, so variant cells would only be
     * bit-identical re-simulations under distinct cache keys.
     */
    std::vector<runahead::RaVariant> raVariantAxis;
    std::vector<unsigned> regsAxis;        ///< INT+FP renaming registers
    std::vector<unsigned> robAxis;         ///< shared ROB entries
    std::vector<Cycle> measureAxis;        ///< measured-window cycles
    std::vector<std::uint64_t> seedAxis;   ///< workload seeds
    std::string cacheDir;                  ///< empty = no result cache
    unsigned parallelism = 0;              ///< 0 = hardware threads
};

/** One grid cell: coordinates, effective config, and (after running)
 * the simulation result. */
struct CampaignCell {
    std::string technique;
    std::string group;    ///< "" for an explicit workload
    std::string workload; ///< canonical comma-joined name
    std::string raVariant; ///< runahead variant of this cell
    unsigned regs = 0;
    unsigned rob = 0;
    Cycle measureCycles = 0;
    std::uint64_t seed = 0;
    /**
     * Sample coordinate of a sampled campaign (-1 = an exact cell or a
     * merged row). With `base.sampled` set, every workload cell expands
     * into one cell per representative window — the farm then
     * parallelizes *within* a workload, not just across the grid.
     */
    int sampleIndex = -1;
    SimConfig config; ///< fully resolved configuration of this cell
    std::vector<std::string> programs;
    std::string key;        ///< canonical cache-key string
    bool fromCache = false; ///< served from the on-disk cache
    SimResult result;
};

/** Everything a finished campaign produced. */
struct CampaignOutcome {
    std::vector<CampaignCell> cells; ///< deterministic grid order
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /**
     * Simulations that actually ran to completion — not merely
     * scheduled jobs, so a crashed or failed cell is never counted.
     */
    std::uint64_t simulated = 0;
    /** Completed cells whose cache store failed (cell re-simulates on
     * the next run instead of silently counting as cached). */
    std::uint64_t failedStores = 0;
    /** Damaged cache cells quarantined to *.bad while probing; each
     * cost this run exactly one re-simulation. */
    std::uint64_t cacheQuarantined = 0;
};

/**
 * A probed-but-not-executed campaign: cache hits are already filled
 * in, and `pending` maps each missing cache key to the grid indices
 * that need it (duplicates simulate once). This is the seam the farm
 * coordinator shares with the in-process runner.
 */
struct CampaignPlan {
    CampaignOutcome outcome;
    /** key -> cell indices, first index is the lead cell. */
    std::map<std::string, std::vector<std::size_t>> pending;
    /** Lead cell index of every pending key, in key order. */
    std::vector<std::size_t> leads;
};

/**
 * Expand the grid without running anything: every cell has its
 * coordinates, effective config and cache key, but no result. The
 * expansion order is deterministic (techniques, then workloads, then
 * axes) and defines the cell order of runCampaign.
 */
std::vector<CampaignCell> expandCampaign(const CampaignSpec &spec);

/**
 * Expand the grid and probe @p cache: hits land in their cells, misses
 * are grouped by key into the plan's pending map.
 */
CampaignPlan planCampaign(const CampaignSpec &spec,
                          const report::ResultCache &cache);

/**
 * Copy every pending lead cell's result to its duplicate cells (cells
 * that share the lead's cache key).
 */
void fanOutDuplicates(CampaignOutcome &outcome,
                      const std::map<std::string,
                                     std::vector<std::size_t>> &pending);

/**
 * Expand and run a campaign: probe the result cache, simulate the
 * misses on the worker pool (duplicate cells simulate once), store new
 * cells back, and return everything in grid order.
 */
CampaignOutcome runCampaign(const CampaignSpec &spec);

/**
 * Collapse the per-sample cells of a sampled campaign into one merged
 * (whole-run extrapolated) cell per workload coordinate, in place of
 * the sample runs. A no-op for exact campaigns — byte-identical
 * output. Reporting (campaignJson/Csv) is done on the merged outcome;
 * merged rows are derived data and never cached.
 */
CampaignOutcome mergeSampledOutcome(const CampaignOutcome &outcome);

/**
 * Structured report of a finished campaign. Deliberately excludes
 * cache/parallelism metadata so cold, warm-cache and serial runs of
 * the same spec serialize byte-identically.
 */
report::Json campaignJson(const CampaignOutcome &outcome,
                          const CampaignSpec &spec);

/** Flat per-cell metric rows of a finished campaign. */
report::CsvTable campaignCsv(const CampaignOutcome &outcome);

} // namespace rat::sim

#endif // RAT_SIM_CAMPAIGN_HH
