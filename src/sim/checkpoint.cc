/**
 * @file
 * "ratck2" checkpoint codec implementation. See checkpoint.hh for the
 * format and the drift-proofing contract.
 */

#include "sim/checkpoint.hh"

#include <cstddef>
#include <type_traits>
#include <utility>

#include "check/digest.hh"
#include "check/fnv.hh"
#include "core/smt_core.hh"
#include "mem/hierarchy.hh"
#include "sim/simulator.hh"

namespace rat::sim {
namespace {

constexpr char kMagic[] = "ratck2";
constexpr std::size_t kMagicLen = 6;

/**
 * Encode-side IO: appends every visited value as 8 little-endian bytes
 * (matching the digest subsystem's byte discipline — independent of
 * struct padding and host endianness).
 */
struct CkptWriter {
    std::string out;
    bool ok = true;

    void
    raw64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }

    void size(std::size_t n) { raw64(n); }

    template <typename T>
    void
    scalar(T &v)
    {
        if constexpr (std::is_same_v<T, bool>) {
            raw64(v ? 1 : 0);
        } else {
            // Cast through the unsigned counterpart so negative values
            // round-trip portably (no implementation-defined narrowing).
            using U = std::make_unsigned_t<T>;
            raw64(static_cast<std::uint64_t>(static_cast<U>(v)));
        }
    }

    void
    blob(const std::string &s)
    {
        raw64(s.size());
        out.append(s);
    }

    void fail() { ok = false; }
};

/**
 * Decode-side IO: the exact mirror of CkptWriter. Any structural
 * mismatch — truncation, a size() marker that disagrees with the
 * target's geometry, an explicit fail() — clears `ok`; subsequent
 * reads are no-ops so the caller checks once at the end.
 */
struct CkptReader {
    const std::string &in;
    std::size_t pos = 0;
    bool ok = true;

    bool
    raw64(std::uint64_t &v)
    {
        v = 0;
        if (!ok || pos + 8 > in.size()) {
            ok = false;
            return false;
        }
        for (unsigned i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(in[pos + i])) << (8 * i);
        pos += 8;
        return true;
    }

    void
    size(std::size_t n)
    {
        std::uint64_t v;
        if (raw64(v) && v != n)
            ok = false;
    }

    template <typename T>
    void
    scalar(T &v)
    {
        std::uint64_t raw;
        if (!raw64(raw))
            return;
        if constexpr (std::is_same_v<T, bool>) {
            v = raw != 0;
        } else {
            using U = std::make_unsigned_t<T>;
            v = static_cast<T>(static_cast<U>(raw));
        }
    }

    void
    blob(std::string &s)
    {
        std::uint64_t n;
        if (!raw64(n))
            return;
        if (pos + n > in.size()) {
            ok = false;
            return;
        }
        s.assign(in, pos, static_cast<std::size_t>(n));
        pos += static_cast<std::size_t>(n);
    }

    void fail() { ok = false; }
};

} // namespace

template <typename IO>
void
CheckpointCodec::visit(IO &io, core::SmtCore &core, mem::MemoryHierarchy &mem)
{
    io.scalar(core.cycle_);
    io.scalar(core.prewarmedInsts_);
    io.size(core.threads_.size());
    for (auto &t : core.threads_) {
        io.scalar(t.nextSeq);
        t.ras.ckptVisit(io);
    }
    core.predictor_.ckptVisit(io);
    core.btb_.ckptVisit(io);
    mem.l1i().ckptVisit(io);
    mem.l1d().ckptVisit(io);
    mem.l2().ckptVisit(io);
}

namespace {

/**
 * True when @p core / @p mem hold no transient pipeline state — the
 * precondition for a checkpoint to be restorable into a simulator with
 * a different policy / ROB / IQ configuration.
 */
bool
pipelineEmpty(const core::SmtCore &core, const mem::MemoryHierarchy &mem)
{
    for (ThreadId tid = 0; tid < core.numThreads(); ++tid) {
        if (core.icount(tid) != 0 || core.robOccupancy(tid) != 0 ||
            core.lsqOccupancy(tid) != 0 || core.inRunahead(tid)) {
            return false;
        }
    }
    const Cycle now = core.cycle();
    return mem.l1iMshrs().occupancy(now) == 0 &&
           mem.l1dMshrs().occupancy(now) == 0 &&
           mem.l2Mshrs().occupancy(now) == 0;
}

} // namespace

std::string
CheckpointCodec::encode(Simulator &sim)
{
    core::SmtCore &core = sim.smtCore();
    mem::MemoryHierarchy &mem = sim.memory();
    if (!pipelineEmpty(core, mem))
        return {};

    CkptWriter w;
    w.out.assign(kMagic, kMagicLen);
    visit(w, core, mem);
    w.blob(core.raEngine_.encodeEpisodes());
    w.raw64(check::StateHasher::digest(core));
    if (!w.ok)
        return {};
    return std::move(w.out);
}

bool
CheckpointCodec::restore(Simulator &sim, const std::string &blob,
                         std::string *error)
{
    const auto fail = [error](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    if (blob.size() < kMagicLen || blob.compare(0, kMagicLen, kMagic) != 0)
        return fail("not a ratck2 checkpoint");

    core::SmtCore &core = sim.smtCore();
    CkptReader r{blob, kMagicLen};
    visit(r, core, sim.memory());
    std::string episodes;
    r.blob(episodes);
    std::uint64_t want = 0;
    r.raw64(want);
    if (!r.ok)
        return fail("truncated or geometry-mismatched checkpoint");
    if (r.pos != blob.size())
        return fail("trailing bytes after checkpoint");
    if (!core.raEngine_.decodeEpisodes(episodes))
        return fail("malformed episode blob");

    // The drift guard: the restored target must hash to exactly the
    // digest the source hashed to at encode time. Any state the digest
    // covers but the checkpoint does not (or vice versa) fails here.
    if (check::StateHasher::digest(core) != want)
        return fail("state digest mismatch after restore");
    return true;
}

std::uint64_t
CheckpointCodec::fileKey(const SimConfig &cfg,
                         const std::vector<std::string> &programs,
                         InstSeq position)
{
    check::Fnv64 h;
    h.u64(0x726174636B32ULL); // "ratck2" discriminator
    h.u64(position);
    h.u64(cfg.seed);
    h.u64(programs.size());
    for (const std::string &p : programs) {
        h.u64(p.size());
        for (char c : p)
            h.u64(static_cast<unsigned char>(c));
    }
    h.u64(cfg.core.predictor.tableEntries);
    h.u64(cfg.core.predictor.historyBits);
    h.u64(static_cast<std::uint64_t>(cfg.core.predictor.weightLimit));
    // The restore-time digest covers register-file free counts, so a
    // checkpoint is only digest-compatible with its own file sizes.
    h.u64(cfg.core.intRegs);
    h.u64(cfg.core.fpRegs);
    const auto foldCache = [&h](const mem::CacheConfig &c) {
        h.u64(c.sizeBytes);
        h.u64(c.ways);
        h.u64(c.lineBytes);
        h.u64(c.latency);
        h.u64(c.mshrs);
    };
    foldCache(cfg.mem.l1i);
    foldCache(cfg.mem.l1d);
    foldCache(cfg.mem.l2);
    h.u64(cfg.mem.memLatency);
    return h.value();
}

} // namespace rat::sim
