/**
 * @file
 * Architectural checkpoint codec for sampled simulation ("ratck2").
 *
 * A checkpoint captures the *functional post-prewarm* state of one
 * simulation: trace positions, branch predictor, BTB, return-address
 * stacks and all three cache levels, plus the runahead engine's episode
 * blob (the "ratck1" codec from the verify subsystem, nested whole).
 * It deliberately captures nothing of the timing pipeline — encoding is
 * only legal when the pipeline is provably empty (no in-flight
 * instructions, no outstanding fills, no runahead episodes), which is
 * exactly the state `SmtCore::prewarm` leaves behind. That restriction
 * is what lets one checkpoint be restored into simulators with
 * *different* policy / ROB configurations: the walk that builds it
 * never touches the structures those knobs size.
 *
 * Drift-proofing: every component's state is enumerated by one
 * `ckptVisit(IO&)` member template that drives both encode and decode,
 * and the blob embeds the digest subsystem's `StateHasher` hash of the
 * source core. `restore()` recomputes that hash on the restored target
 * and refuses on mismatch — so the checkpointed state and the digested
 * state cannot silently drift apart, and a failed restore falls back
 * to a (bit-identical) fresh functional walk instead of corrupting a
 * run.
 *
 * Format (all integers u64 little-endian):
 *   "ratck2" magic | visit(core, mem) fields | engine episode blob
 *   (length-prefixed "ratck1" text) | StateHasher digest
 */

#ifndef RAT_SIM_CHECKPOINT_HH
#define RAT_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rat::core {
class SmtCore;
}
namespace rat::mem {
class MemoryHierarchy;
}

namespace rat::sim {

struct SimConfig;
class Simulator;

/**
 * Stateless encoder/decoder. A class (not free functions) so it can be
 * a friend of SmtCore, mirroring check::StateHasher.
 */
class CheckpointCodec
{
  public:
    /**
     * Serialize @p sim's functional state. Returns the empty string if
     * the pipeline is not empty (in-flight instructions, outstanding
     * fills or an active runahead episode) — checkpoints are only
     * defined at functional fast-forward points.
     */
    static std::string encode(Simulator &sim);

    /**
     * Restore @p blob into a freshly constructed @p sim (before its
     * first run()). Returns false — leaving no partial state the
     * caller may rely on; fall back to a fresh prewarm walk — on a
     * malformed blob, a geometry mismatch, or an embedded-digest
     * mismatch. @p error (optional) receives a diagnostic.
     */
    static bool restore(Simulator &sim, const std::string &blob,
                        std::string *error = nullptr);

    /**
     * Identity of the checkpoint a given configuration needs at trace
     * position @p position: a hash over everything the functional walk
     * (and the restore-time digest) depends on — programs, seed,
     * thread count, predictor and memory geometry, register-file sizes
     * and the position itself. Deliberately *excludes* the scheduling
     * policy, runahead variant and ROB size, so one walk serves a
     * whole policy sweep.
     */
    static std::uint64_t fileKey(const SimConfig &cfg,
                                 const std::vector<std::string> &programs,
                                 InstSeq position);

  private:
    /**
     * The single state enumeration encode and decode share (friendship
     * with SmtCore covers member templates). Instantiated only in
     * checkpoint.cc, once per IO type.
     */
    template <typename IO>
    static void visit(IO &io, core::SmtCore &core,
                      mem::MemoryHierarchy &mem);
};

} // namespace rat::sim

#endif // RAT_SIM_CHECKPOINT_HH
