#include "sim/experiment.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace rat::sim {

TechniqueSpec
icountSpec()
{
    return {"ICOUNT", core::PolicyKind::Icount, {}};
}

TechniqueSpec
stallSpec()
{
    return {"STALL", core::PolicyKind::Stall, {}};
}

TechniqueSpec
flushSpec()
{
    return {"FLUSH", core::PolicyKind::Flush, {}};
}

TechniqueSpec
dcraSpec()
{
    return {"DCRA", core::PolicyKind::Dcra, {}};
}

TechniqueSpec
hillClimbingSpec()
{
    return {"HillClimbing", core::PolicyKind::HillClimbing, {}};
}

TechniqueSpec
ratSpec()
{
    return {"RaT", core::PolicyKind::Rat, {}};
}

void
runParallel(const std::vector<std::function<void()>> &jobs,
            unsigned workers)
{
    if (jobs.empty())
        return;
    workers = std::min<unsigned>(workers ? workers : 1,
                                 static_cast<unsigned>(jobs.size()));
    if (workers <= 1) {
        for (const auto &job : jobs)
            job();
        return;
    }
    // An exception escaping a std::thread body calls std::terminate,
    // so a single throwing job would abort the whole process with the
    // other workers unjoined. Catch per job, stop handing out new
    // work, join everyone, then rethrow the first failure.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first;
    std::mutex firstMutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (;;) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                try {
                    jobs[i]();
                } catch (...) {
                    std::lock_guard<std::mutex> lock(firstMutex);
                    if (!first)
                        first = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    if (first)
        std::rethrow_exception(first);
}

ExperimentRunner::ExperimentRunner(SimConfig base) : base_(std::move(base))
{
    const unsigned hw = std::thread::hardware_concurrency();
    parallelism_ = hw ? hw : 4;
}

SimConfig
ExperimentRunner::configFor(const TechniqueSpec &tech,
                            unsigned num_threads) const
{
    SimConfig cfg = base_;
    cfg.core.numThreads = num_threads;
    cfg.core.policy = tech.policy;
    cfg.core.rat = tech.rat;
    return cfg;
}

SimResult
ExperimentRunner::runWorkload(const Workload &workload,
                              const TechniqueSpec &tech) const
{
    Simulator sim(configFor(tech,
                            static_cast<unsigned>(workload.programs.size())),
                  workload.programs);
    return sim.run();
}

double
ExperimentRunner::singleThreadIpc(const std::string &program)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = baselineCache_.find(program);
        if (it != baselineCache_.end())
            return it->second;
    }
    // Single-thread reference: plain ICOUNT processor, one context.
    Simulator sim(configFor(icountSpec(), 1), {program});
    const double ipc = sim.run().threads.at(0).ipc;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        baselineCache_.emplace(program, ipc);
    }
    return ipc;
}

BaselineIpcMap
ExperimentRunner::baselinesFor(const Workload &workload)
{
    BaselineIpcMap map;
    for (const std::string &p : workload.programs)
        map.emplace(p, singleThreadIpc(p));
    return map;
}

GroupMetrics
ExperimentRunner::runGroup(WorkloadGroup group, const TechniqueSpec &tech)
{
    const auto &workloads = workloadsOf(group);

    // Warm the baseline cache serially (deterministic, avoids duplicate
    // work in the parallel section).
    for (const Workload &w : workloads) {
        for (const std::string &p : w.programs)
            singleThreadIpc(p);
    }

    GroupMetrics gm;
    gm.technique = tech.label;
    gm.group = group;
    gm.results.resize(workloads.size());

    std::vector<std::function<void()>> jobs;
    jobs.reserve(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        jobs.emplace_back([this, &workloads, &gm, &tech, i] {
            gm.results[i] = runWorkload(workloads[i], tech);
        });
    }
    runParallel(jobs, parallelism_);

    std::vector<double> thr, fair, e;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const SimResult &r = gm.results[i];
        thr.push_back(throughput(r));
        fair.push_back(fairness(r, baselinesFor(workloads[i])));
        e.push_back(ed2(r));
    }
    gm.meanThroughput = mean(thr);
    gm.meanFairness = mean(fair);
    gm.meanEd2 = mean(e);
    return gm;
}

} // namespace rat::sim
