/**
 * @file
 * Experiment runner shared by the bench binaries: runs (technique x
 * workload) grids with cached single-thread baselines and parallel
 * execution of independent simulations.
 */

#ifndef RAT_SIM_EXPERIMENT_HH
#define RAT_SIM_EXPERIMENT_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"
#include "sim/workloads.hh"

namespace rat::sim {

/** One evaluated technique: a label plus the core-policy setting. */
struct TechniqueSpec {
    std::string label;
    core::PolicyKind policy = core::PolicyKind::Icount;
    core::RatConfig rat{};
};

/** The standard technique lineups used by the paper's figures. */
TechniqueSpec icountSpec();
TechniqueSpec stallSpec();
TechniqueSpec flushSpec();
TechniqueSpec dcraSpec();
TechniqueSpec hillClimbingSpec();
TechniqueSpec ratSpec();

/** Aggregated metrics of a technique over one workload group. */
struct GroupMetrics {
    std::string technique;
    WorkloadGroup group{};
    double meanThroughput = 0.0;
    double meanFairness = 0.0;
    double meanEd2 = 0.0;
    std::vector<SimResult> results; ///< one per workload in the group
};

/**
 * Shared runner. Thread-safe baseline cache; group runs farm the
 * independent simulations out to a pool of worker threads.
 */
class ExperimentRunner
{
  public:
    /**
     * @param base Baseline configuration. Policy/RaT fields are
     *             overridden per technique; numThreads per workload.
     */
    explicit ExperimentRunner(SimConfig base);

    /** Apply a technique to a config copy. */
    SimConfig configFor(const TechniqueSpec &tech,
                        unsigned num_threads) const;

    /** Run one workload under one technique. */
    SimResult runWorkload(const Workload &workload,
                          const TechniqueSpec &tech) const;

    /**
     * Single-thread reference IPC of a program (ICOUNT, one thread),
     * memoized across calls.
     */
    double singleThreadIpc(const std::string &program);

    /** Baselines for every program in @p workload. */
    BaselineIpcMap baselinesFor(const Workload &workload);

    /** Run a full group under a technique, in parallel. */
    GroupMetrics runGroup(WorkloadGroup group, const TechniqueSpec &tech);

    /** Worker threads used for parallel runs (>=1). */
    unsigned parallelism() const { return parallelism_; }
    /** Override worker count. */
    void setParallelism(unsigned n) { parallelism_ = n ? n : 1; }

    /** The base configuration. */
    const SimConfig &baseConfig() const { return base_; }
    /** Mutable base configuration (e.g. register-file sweeps). */
    SimConfig &baseConfig() { return base_; }

  private:
    SimConfig base_;
    unsigned parallelism_;
    std::mutex cacheMutex_;
    std::map<std::string, double> baselineCache_;
};

/**
 * Run @p jobs callables on up to @p workers threads (library-level
 * helper; each job must be independent).
 */
void runParallel(const std::vector<std::function<void()>> &jobs,
                 unsigned workers);

} // namespace rat::sim

#endif // RAT_SIM_EXPERIMENT_HH
