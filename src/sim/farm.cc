#include "sim/farm.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "report/result_cache.hh"
#include "report/serialize.hh"
#include "report/wire.hh"
#include "sim/sampled.hh"

namespace rat::sim {

namespace {

/** JSON frame sent coordinator -> worker for one grid cell. The
 * attempt number (how many workers already died holding this cell)
 * rides along so the worker's fault-injection draws are independent
 * per retry — a cell that drew "kill" on attempt 0 redraws on attempt
 * 1 instead of dying identically forever. */
std::string
jobFrame(const CampaignCell &cell, std::size_t index, unsigned attempt)
{
    report::Json job = report::Json::object();
    job["index"] = report::Json(static_cast<std::uint64_t>(index));
    job["attempt"] = report::Json(std::uint64_t{attempt});
    job["key"] = report::Json(cell.key);
    job["config"] = report::toJson(cell.config);
    report::Json progs = report::Json::array();
    for (const std::string &p : cell.programs)
        progs.push(report::Json(p));
    job["programs"] = std::move(progs);
    return job.dump();
}

/** Resolve the running executable (worker re-exec target). */
std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return buf;
}

/** Scoped SIGPIPE suppression: a worker dying between poll()s must
 * surface as a write error, not kill the coordinator. */
class IgnoreSigpipe
{
  public:
    IgnoreSigpipe()
    {
        struct sigaction ign = {};
        ign.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ign, &old_);
    }
    ~IgnoreSigpipe() { ::sigaction(SIGPIPE, &old_, nullptr); }

  private:
    struct sigaction old_ = {};
};

/** Set by the SIGINT/SIGTERM handler; the coordinator's run loop polls
 * it and winds the farm down instead of dying with live children. */
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void
farmInterruptHandler(int)
{
    g_interrupted = 1;
}

/** Scoped SIGINT/SIGTERM capture. Installed without SA_RESTART on
 * purpose: the signal must interrupt a blocking poll() (EINTR) so the
 * run loop notices the flag promptly. Restores the previous handlers
 * on destruction, so a farm embedded in a larger program (or the test
 * binary) does not permanently steal Ctrl-C. */
class InterruptGuard
{
  public:
    InterruptGuard()
    {
        g_interrupted = 0;
        struct sigaction sa = {};
        sa.sa_handler = farmInterruptHandler;
        ::sigaction(SIGINT, &sa, &oldInt_);
        ::sigaction(SIGTERM, &sa, &oldTerm_);
    }
    ~InterruptGuard()
    {
        ::sigaction(SIGINT, &oldInt_, nullptr);
        ::sigaction(SIGTERM, &oldTerm_, nullptr);
    }
    InterruptGuard(const InterruptGuard &) = delete;
    InterruptGuard &operator=(const InterruptGuard &) = delete;

  private:
    struct sigaction oldInt_ = {};
    struct sigaction oldTerm_ = {};
};

/** Log pre-line hook while the --progress live line is on screen:
 * erase the in-place line so warn()/inform() output starts on a clean
 * column instead of interleaving with a half-repainted progress line. */
void
eraseProgressLine()
{
    std::fprintf(stderr, "\r\033[K");
}

/** Scoped registration of eraseProgressLine for --progress runs. */
class ProgressLineGuard
{
  public:
    explicit ProgressLineGuard(bool active) : active_(active)
    {
        if (active_)
            setLogPreLineHook(eraseProgressLine);
    }
    ~ProgressLineGuard()
    {
        if (active_)
            setLogPreLineHook(nullptr);
    }
    ProgressLineGuard(const ProgressLineGuard &) = delete;
    ProgressLineGuard &operator=(const ProgressLineGuard &) = delete;

  private:
    bool active_;
};

/** One worker slot as the coordinator sees it. A slot outlives any
 * single worker process: when respawning is on, a dead slot is
 * refilled (after backoff) by a fresh process with the same slot id. */
struct WorkerProc {
    pid_t pid = -1;
    int jobFd = -1; ///< coordinator writes job frames here
    int resFd = -1; ///< coordinator reads result frames here (nonblock)
    report::FrameBuffer buf;
    std::optional<std::size_t> inflight; ///< lead cell index
    std::size_t shard = 0;               ///< shard currently drained
    unsigned slot = 0;                   ///< stable slot id
    unsigned respawnCount = 0; ///< processes this slot has consumed - 1
    bool alive = false;
    bool writable = false;
    /** Dead slot scheduled for a respawn attempt at respawnAt. */
    bool respawnPending = false;
    std::chrono::steady_clock::time_point respawnAt{};
    /** Liveness watermark: last job sent to — or frame seen from —
     * this worker. The --job-timeout watchdog measures from here. */
    std::chrono::steady_clock::time_point lastActivity{};
};

struct Coordinator {
    const CampaignSpec &spec;
    const FarmOptions &options;
    CampaignOutcome &outcome;
    const report::ResultCache &cache;

    std::vector<std::deque<std::size_t>> shards = {};
    std::vector<WorkerProc> workers = {};
    FarmOutcome *farm = nullptr;
    std::string binary = {}; ///< worker exec target (for respawns)

    std::uint64_t jobsDone = 0; ///< results + failures + quarantines
    std::uint64_t jobsTotal = 0;
    std::uint64_t simulated = 0;
    std::uint64_t failedStores = 0;

    /** Worker deaths per lead cell — the retry budget's ledger and
     * the attempt number sent with each job. */
    std::map<std::size_t, unsigned> attempts = {};
    /** Crash-loop breaker: respawns since the last completed job.
     * When every respawned worker dies without landing anything,
     * respawning stops and the farm fails over to the resume path. */
    std::uint64_t respawnsSinceProgress = 0;

    bool spawnWorker(unsigned slot, std::uint64_t kill_after);
    bool feedWorker(std::size_t w);
    void drainWorker(std::size_t w);
    void handleFrame(std::size_t w, const std::string &payload);
    void workerGone(std::size_t w);
    void checkLiveness();
    void maybeRespawn();
    bool workAvailable() const;
    bool respawnViable() const;
    std::uint64_t respawnBudget() const;
    int pollTimeoutMs() const;
    void noteJobDone();
    void printProgress();
    void run();

    /** Wall-clock start of the farm run (for the --progress ETA). */
    std::chrono::steady_clock::time_point startedAt{};
};

bool
Coordinator::spawnWorker(unsigned slot, std::uint64_t kill_after)
{
    // Chaos injection: a spawn failure at (slot, respawn count) —
    // models fork() failing under memory/pid pressure. The context is
    // scoped to this call so no other coordinator-side code path can
    // ever take a fault decision.
    auto &injector = FaultInjector::global();
    injector.setContext(slot, workers[slot].respawnCount);
    const bool spawn_fault = injector.fire(FaultKind::SpawnFail);
    injector.clearContext();
    if (spawn_fault) {
        warn("farm: injected spawn failure for worker slot %u", slot);
        return false;
    }

    int job_pipe[2], res_pipe[2];
    if (::pipe(job_pipe) != 0)
        return false;
    if (::pipe(res_pipe) != 0) {
        ::close(job_pipe[0]);
        ::close(job_pipe[1]);
        return false;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        for (const int fd : {job_pipe[0], job_pipe[1], res_pipe[0],
                             res_pipe[1]})
            ::close(fd);
        return false;
    }
    if (pid == 0) {
        // Child: jobs arrive on stdin, results leave on stdout.
        ::dup2(job_pipe[0], STDIN_FILENO);
        ::dup2(res_pipe[1], STDOUT_FILENO);
        for (const int fd : {job_pipe[0], job_pipe[1], res_pipe[0],
                             res_pipe[1]})
            ::close(fd);
        std::vector<const char *> argv = {binary.c_str(),
                                          "--farm-worker"};
        const std::string id_text = std::to_string(slot);
        argv.push_back("--worker-id");
        argv.push_back(id_text.c_str());
        if (!spec.cacheDir.empty()) {
            argv.push_back("--cache");
            argv.push_back(spec.cacheDir.c_str());
        }
        std::string kill_text;
        if (kill_after > 0) {
            kill_text = std::to_string(kill_after);
            argv.push_back("--test-kill-after");
            argv.push_back(kill_text.c_str());
        }
        argv.push_back(nullptr);
        ::execv(binary.c_str(),
                const_cast<char *const *>(argv.data()));
        ::_exit(127);
    }

    // Parent.
    ::close(job_pipe[0]);
    ::close(res_pipe[1]);
    ::fcntl(res_pipe[0], F_SETFL, O_NONBLOCK);
    // Keep farm pipes out of later-forked siblings.
    ::fcntl(job_pipe[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(res_pipe[0], F_SETFD, FD_CLOEXEC);

    // Fill the slot in place (the vector is pre-sized to the worker
    // count): a respawned process inherits the slot's shard and
    // respawn counter but starts with a fresh frame buffer and a
    // clean inflight state.
    WorkerProc w;
    w.pid = pid;
    w.jobFd = job_pipe[1];
    w.resFd = res_pipe[0];
    w.shard = workers[slot].shard;
    w.slot = slot;
    w.respawnCount = workers[slot].respawnCount;
    w.alive = true;
    w.writable = true;
    w.lastActivity = std::chrono::steady_clock::now();
    workers[slot] = std::move(w);
    return true;
}

bool
Coordinator::feedWorker(std::size_t wi)
{
    WorkerProc &w = workers[wi];
    if (!w.alive || !w.writable || w.inflight)
        return false;

    // Drain the worker's own shards first (round-robin ownership),
    // then steal from the largest remaining shard so stragglers drain
    // onto idle workers.
    const std::size_t nshards = shards.size();
    const std::size_t nworkers = workers.size();
    std::size_t pick = nshards;
    if (!shards[w.shard].empty()) {
        pick = w.shard;
    } else {
        for (std::size_t s = wi; s < nshards; s += nworkers) {
            if (!shards[s].empty()) {
                pick = s;
                break;
            }
        }
        if (pick == nshards) {
            std::size_t best_size = 0;
            for (std::size_t s = 0; s < nshards; ++s) {
                if (shards[s].size() > best_size) {
                    best_size = shards[s].size();
                    pick = s;
                }
            }
            if (pick < nshards)
                ++farm->jobsStolen;
        }
    }
    if (pick >= nshards)
        return false; // no work left anywhere

    const std::size_t lead = shards[pick].front();
    shards[pick].pop_front();
    w.shard = pick;

    const auto attempt_it = attempts.find(lead);
    const unsigned attempt =
        attempt_it == attempts.end() ? 0 : attempt_it->second;
    if (!report::writeFrame(
            w.jobFd, jobFrame(outcome.cells[lead], lead, attempt))) {
        // Peer is dead (EPIPE): put the job back; the EOF on the read
        // side will finish the bookkeeping.
        shards[pick].push_front(lead);
        w.writable = false;
        return false;
    }
    w.inflight = lead;
    // The watchdog clock starts at job handoff: a worker that never
    // even heartbeats is just as wedged as one that stops mid-cell.
    w.lastActivity = std::chrono::steady_clock::now();
    return true;
}

void
Coordinator::handleFrame(std::size_t wi, const std::string &payload)
{
    WorkerProc &w = workers[wi];
    w.lastActivity = std::chrono::steady_clock::now();
    const auto doc = report::Json::parse(payload);
    // Typed frames first: anything with a "type" member is telemetry,
    // never a result. Result/error frames stay untyped (legacy shape).
    if (const report::Json *type = doc ? doc->find("type") : nullptr) {
        if (type->isString() && type->asString() == "progress") {
            // Heartbeat: the worker just picked up a cell. The frame
            // itself is the liveness signal; refresh the live line so
            // long cells still show a moving display.
            if (options.progress)
                printProgress();
        } else {
            warn("farm: dropping unknown frame type from worker %d",
                 static_cast<int>(w.pid));
        }
        return;
    }
    const report::Json *index_json = doc ? doc->find("index") : nullptr;
    if (!doc || !index_json || !index_json->isU64()) {
        warn("farm: dropping malformed frame from worker %d",
             static_cast<int>(w.pid));
        return;
    }
    const std::size_t lead =
        static_cast<std::size_t>(index_json->asU64());
    if (lead >= outcome.cells.size()) {
        warn("farm: result index %zu out of range", lead);
        return;
    }
    if (w.inflight && *w.inflight == lead)
        w.inflight.reset();

    if (const report::Json *err = doc->find("error")) {
        ++farm->failedCells;
        if (farm->error.empty() && err->isString())
            farm->error = "cell '" + outcome.cells[lead].key +
                          "' failed: " + err->asString();
        noteJobDone();
        return;
    }
    const report::Json *result_json = doc->find("result");
    SimResult result;
    if (!result_json || !fromJson(*result_json, result)) {
        warn("farm: unparseable result for cell %zu", lead);
        ++farm->failedCells;
        noteJobDone();
        return;
    }
    outcome.cells[lead].result = std::move(result);
    ++simulated;
    const report::Json *stored = doc->find("stored");
    if (cache.enabled() && (!stored || !stored->isBool() ||
                            !stored->asBool()))
        ++failedStores;
    noteJobDone();
}

/** One grid job retired (result, failure or quarantine): advance the
 * campaign and re-arm the crash-loop breaker — the farm made
 * progress, so respawning is paying off again. */
void
Coordinator::noteJobDone()
{
    ++jobsDone;
    respawnsSinceProgress = 0;
    if (options.progress)
        printProgress();
}

void
Coordinator::printProgress()
{
    using namespace std::chrono;
    const double elapsed =
        duration_cast<duration<double>>(steady_clock::now() - startedAt)
            .count();
    char eta[32];
    if (jobsDone > 0 && jobsDone < jobsTotal) {
        // Guarded by jobsDone > 0: before the first cell lands there
        // is no rate to extrapolate from, and elapsed/0 would print
        // garbage (inf/nan) on the live line.
        const double remaining =
            elapsed * static_cast<double>(jobsTotal - jobsDone) /
            static_cast<double>(jobsDone);
        const auto whole = static_cast<unsigned long long>(remaining);
        std::snprintf(eta, sizeof(eta), "ETA %llu:%02llu", whole / 60,
                      whole % 60);
    } else {
        std::snprintf(eta, sizeof(eta), "ETA --:--");
    }
    // \r + no newline: the line repaints in place on a terminal.
    std::fprintf(stderr,
                 "\rfarm: %llu/%llu cells, %llu stolen, %llu deaths, "
                 "%s   ",
                 static_cast<unsigned long long>(jobsDone),
                 static_cast<unsigned long long>(jobsTotal),
                 static_cast<unsigned long long>(farm->jobsStolen),
                 static_cast<unsigned long long>(farm->workerDeaths),
                 eta);
    std::fflush(stderr);
}

/** Per-slot respawn backoff: 100ms doubling per consumed process,
 * capped at 3.2s — fast enough that a blip costs almost nothing, slow
 * enough that a crash-looping slot cannot fork-bomb the host. */
std::chrono::milliseconds
respawnBackoff(unsigned respawn_count)
{
    const unsigned shift = std::min(respawn_count, 5u);
    return std::chrono::milliseconds(100u << shift);
}

void
Coordinator::workerGone(std::size_t wi)
{
    WorkerProc &w = workers[wi];
    if (!w.alive)
        return;
    w.alive = false;
    w.writable = false;
    ::close(w.jobFd);
    ::close(w.resFd);
    w.jobFd = w.resFd = -1;

    // This path is reached for workers that are *gone* (EOF) but also
    // for workers that are very much alive — the corrupt-stream case
    // and the hung-worker watchdog. A plain blocking waitpid() would
    // deadlock the whole farm on a live child, so: SIGKILL first
    // (harmless to a zombie), then reap without blocking. SIGKILL
    // cannot be caught, so the WNOHANG loop converges in practice
    // immediately; the deadline only guards against a child stuck in
    // uninterruptible I/O, where leaking a zombie beats hanging the
    // coordinator.
    ::kill(w.pid, SIGKILL);
    int status = 0;
    bool reaped = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    for (;;) {
        const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
        if (got == w.pid || (got < 0 && errno != EINTR)) {
            reaped = got == w.pid;
            break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            warn("farm: worker %d unreapable after SIGKILL",
                 static_cast<int>(w.pid));
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const bool abnormal =
        !reaped || WIFSIGNALED(status) ||
        (WIFEXITED(status) && WEXITSTATUS(status) != 0);

    if (w.inflight) {
        // Mid-job death: the cell is lost from this worker but not
        // from the campaign. Requeue it while its retry budget lasts;
        // past the budget the cell has now killed maxRetries + 1
        // workers and is presumed poisoned — quarantine it so it
        // cannot murder the rest of the pool.
        const std::size_t lead = *w.inflight;
        w.inflight.reset();
        ++farm->workerDeaths;
        const unsigned attempt = ++attempts[lead];
        if (attempt > options.maxRetries) {
            farm->quarantinedCells.push_back(outcome.cells[lead].key);
            warn("farm: quarantining cell '%s' after %u worker deaths",
                 outcome.cells[lead].key.c_str(), attempt);
            noteJobDone();
        } else {
            shards[w.shard].push_front(lead);
            ++farm->jobsRequeued;
        }
    } else if (abnormal) {
        ++farm->workerDeaths;
    }

    if (options.respawn) {
        w.respawnPending = true;
        w.respawnAt = std::chrono::steady_clock::now() +
                      respawnBackoff(w.respawnCount);
    }
}

/** Undone work that a fresh worker could pick up. */
bool
Coordinator::workAvailable() const
{
    for (const auto &shard : shards)
        if (!shard.empty())
            return true;
    for (const WorkerProc &w : workers)
        if (w.alive && w.inflight)
            return true;
    return false;
}

std::uint64_t
Coordinator::respawnBudget() const
{
    // Crash-loop breaker: allow every slot a couple of fruitless
    // respawns, then conclude the failure is systemic (bad binary,
    // poisoned environment) and stop burning processes. Any completed
    // job resets the counter via noteJobDone().
    return 2 * workers.size() + 4;
}

bool
Coordinator::respawnViable() const
{
    if (!options.respawn || respawnsSinceProgress >= respawnBudget())
        return false;
    for (const WorkerProc &w : workers)
        if (!w.alive && w.respawnPending)
            return true;
    return false;
}

/** Refill dead slots whose backoff has elapsed, while there is still
 * work a fresh worker could do. */
void
Coordinator::maybeRespawn()
{
    if (!options.respawn || !workAvailable())
        return;
    const auto now = std::chrono::steady_clock::now();
    for (WorkerProc &w : workers) {
        if (w.alive || !w.respawnPending || now < w.respawnAt)
            continue;
        if (respawnsSinceProgress >= respawnBudget()) {
            warn("farm: %llu respawns without progress — "
                 "giving up on respawning",
                 static_cast<unsigned long long>(
                     respawnsSinceProgress));
            for (WorkerProc &dead : workers)
                if (!dead.alive)
                    dead.respawnPending = false;
            return;
        }
        w.respawnPending = false;
        ++w.respawnCount;
        ++respawnsSinceProgress;
        // Respawns never re-arm the kill_after test hook: it models a
        // single operator kill -9, not a crash loop.
        if (spawnWorker(w.slot, 0)) {
            ++farm->workersRespawned;
            inform("farm: respawned worker slot %u (respawn %u)",
                   w.slot, workers[w.slot].respawnCount);
        } else {
            w.respawnPending = true;
            w.respawnAt = now + respawnBackoff(w.respawnCount);
        }
    }
}

/** SIGKILL alive workers whose in-flight job has outlived the
 * --job-timeout watchdog; workerGone() then requeues or quarantines
 * the job and schedules the slot for respawn. */
void
Coordinator::checkLiveness()
{
    if (!options.jobTimeoutSec)
        return;
    const auto now = std::chrono::steady_clock::now();
    const auto timeout = std::chrono::seconds(options.jobTimeoutSec);
    for (std::size_t wi = 0; wi < workers.size(); ++wi) {
        WorkerProc &w = workers[wi];
        if (!w.alive || !w.inflight || now - w.lastActivity < timeout)
            continue;
        warn("farm: worker %d hung on cell %zu for over %us — killing",
             static_cast<int>(w.pid), *w.inflight,
             options.jobTimeoutSec);
        ++farm->workersTimedOut;
        workerGone(wi);
    }
}

/** Next poll() deadline: the earliest watchdog expiry or pending
 * respawn, clamped to [20ms, 10s]. The clamp floor keeps a just-
 * expired deadline from busy-spinning; the ceiling keeps the
 * coordinator responsive even with nothing scheduled (satellite fix:
 * a pure timeout tick now runs the liveness check instead of being a
 * no-op). */
int
Coordinator::pollTimeoutMs() const
{
    using namespace std::chrono;
    const auto now = steady_clock::now();
    milliseconds next{10000};
    if (options.jobTimeoutSec) {
        const auto timeout = seconds(options.jobTimeoutSec);
        for (const WorkerProc &w : workers) {
            if (!w.alive || !w.inflight)
                continue;
            const auto due =
                duration_cast<milliseconds>(w.lastActivity + timeout -
                                            now);
            next = std::min(next, due);
        }
    }
    for (const WorkerProc &w : workers) {
        if (w.alive || !w.respawnPending)
            continue;
        next = std::min(
            next, duration_cast<milliseconds>(w.respawnAt - now));
    }
    return static_cast<int>(
        std::clamp<long long>(next.count(), 20, 10000));
}

void
Coordinator::run()
{
    startedAt = std::chrono::steady_clock::now();
    if (options.progress)
        printProgress();
    while (jobsDone < jobsTotal) {
        if (g_interrupted)
            break; // runFarm() kills, reaps and cleans up after us
        maybeRespawn();
        bool any_alive = false;
        for (std::size_t wi = 0; wi < workers.size(); ++wi) {
            if (workers[wi].alive) {
                any_alive = true;
                feedWorker(wi);
            }
        }
        if (!any_alive) {
            // Every process is dead, but a pending respawn may still
            // save the campaign: wait out the earliest backoff rather
            // than aborting a recoverable situation.
            if (respawnViable()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        std::min(pollTimeoutMs(), 100)));
                continue;
            }
            break;
        }

        std::vector<struct pollfd> fds;
        std::vector<std::size_t> owner;
        for (std::size_t wi = 0; wi < workers.size(); ++wi) {
            if (!workers[wi].alive)
                continue;
            fds.push_back({workers[wi].resFd, POLLIN, 0});
            owner.push_back(wi);
        }
        const int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   pollTimeoutMs());
        if (ready < 0 && errno != EINTR)
            break;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                drainWorker(owner[i]);
        }
        // Runs on *every* wakeup — including a poll() that timed out
        // with no readable fds, which previously looped silently and
        // made the watchdog dead code.
        checkLiveness();
    }
    // Terminate the in-place line before normal stdout reporting.
    if (options.progress)
        std::fprintf(stderr, "\n");
}

void
Coordinator::drainWorker(std::size_t wi)
{
    WorkerProc &w = workers[wi];
    char chunk[65536];
    for (;;) {
        const ssize_t n = ::read(w.resFd, chunk, sizeof(chunk));
        if (n > 0) {
            w.buf.feed(chunk, static_cast<std::size_t>(n));
            while (auto frame = w.buf.pop())
                handleFrame(wi, *frame);
            if (w.buf.corrupt()) {
                warn("farm: corrupt result stream from worker %d",
                     static_cast<int>(w.pid));
                workerGone(wi);
                return;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or hard error: the worker is gone. Bytes of a torn
        // frame (pendingBytes) are simply dropped — the cell was
        // never landed, so the requeue/resume path re-simulates it.
        workerGone(wi);
        return;
    }
}

} // namespace

FarmOutcome
runFarm(const CampaignSpec &spec, const FarmOptions &options)
{
    FarmOutcome farm;
    const report::ResultCache cache(spec.cacheDir);
    CampaignPlan plan = planCampaign(spec, cache);
    farm.campaign = std::move(plan.outcome);

    const std::vector<std::size_t> &jobs = plan.leads;
    if (jobs.empty()) {
        // Everything was cached: nothing to spawn.
        fanOutDuplicates(farm.campaign, plan.pending);
        farm.completed = true;
        return farm;
    }

    std::string binary = options.workerBinary;
    if (binary.empty())
        binary = selfExePath();
    if (binary.empty()) {
        farm.error = "cannot resolve worker binary path";
        return farm;
    }

    unsigned nworkers = options.workers;
    if (!nworkers) {
        const unsigned hw = std::thread::hardware_concurrency();
        nworkers = hw ? hw : 4;
    }
    nworkers = std::min<unsigned>(
        nworkers, static_cast<unsigned>(jobs.size()));

    unsigned nshards = options.shards ? options.shards : nworkers * 4;
    nshards = std::min<unsigned>(
        std::max<unsigned>(nshards, 1),
        static_cast<unsigned>(jobs.size()));

    // Arm the fault injector in the coordinator too: only the spawn
    // path ever sets a context here, so the sole coordinator-side
    // fault is SpawnFail — workers arm independently after exec.
    FaultInjector::global().armFromEnv();

    IgnoreSigpipe sigpipe_guard;
    InterruptGuard interrupt_guard;
    ProgressLineGuard progress_guard(options.progress);
    Coordinator coord{spec, options, farm.campaign, cache};
    coord.farm = &farm;
    coord.binary = binary;
    coord.jobsTotal = jobs.size();

    // Contiguous shards over the deduped job list (grid order).
    coord.shards.assign(nshards, {});
    for (std::size_t i = 0; i < jobs.size(); ++i)
        coord.shards[i * nshards / jobs.size()].push_back(jobs[i]);
    farm.shardCount = nshards;

    // Test hook: deterministically SIGKILL the first worker after N
    // cells, standing in for an operator's kill -9 mid-campaign.
    std::uint64_t kill_after = 0;
    if (const char *env = std::getenv("RATSIM_FARM_TEST_KILL_AFTER"))
        kill_after = parseU64(env, "RATSIM_FARM_TEST_KILL_AFTER");

    // Pre-size the slot table so worker slot N is always workers[N],
    // even when some initial spawns fail; failed slots become respawn
    // candidates instead of silently shrinking the pool.
    coord.workers.resize(nworkers);
    for (unsigned w = 0; w < nworkers; ++w) {
        coord.workers[w].slot = w;
        coord.workers[w].shard = w % nshards;
    }
    unsigned spawned = 0;
    for (unsigned w = 0; w < nworkers; ++w) {
        if (coord.spawnWorker(w, w == 0 ? kill_after : 0)) {
            ++spawned;
        } else if (options.respawn) {
            coord.workers[w].respawnPending = true;
            coord.workers[w].respawnAt =
                std::chrono::steady_clock::now() + respawnBackoff(0);
        }
    }
    farm.workersSpawned = spawned;
    if (spawned == 0) {
        // Total spawn failure (fork exhaustion, unusable binary):
        // rather than giving up with zero results, degrade to the
        // in-process runner — slower, single-process, but it finishes
        // the campaign with the exact same bytes.
        warn("farm: could not spawn any worker — "
             "falling back to in-process execution");
        farm.inProcessFallback = true;
        farm.campaign = runCampaign(spec);
        farm.completed = true;
        return farm;
    }

    coord.run();

    const bool interrupted = g_interrupted != 0;
    if (interrupted) {
        // SIGINT/SIGTERM arrived mid-campaign: wind down instead of
        // dying with live children. Forward the termination to every
        // worker, reap each one (with escalation — an operator's
        // Ctrl-C must never hang behind a wedged child), and unlink
        // the temp cells the dead workers had in flight. Completed
        // cells are already durable in the cache, so a re-run resumes
        // from here; returning normally (rather than re-raising) lets
        // the cache DirLock and every other RAII guard release on the
        // way out.
        std::uint64_t tmps_removed = 0;
        unsigned terminated = 0;
        for (WorkerProc &w : coord.workers) {
            if (!w.alive)
                continue;
            ::close(w.jobFd);
            w.jobFd = -1;
            ::kill(w.pid, SIGTERM);
            ++terminated;
        }
        for (WorkerProc &w : coord.workers) {
            if (!w.alive)
                continue;
            int status = 0;
            bool escalated = false;
            const auto start = std::chrono::steady_clock::now();
            for (;;) {
                const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
                if (got == w.pid || (got < 0 && errno != EINTR))
                    break;
                const auto waited =
                    std::chrono::steady_clock::now() - start;
                if (waited > std::chrono::seconds(3)) {
                    warn("farm: worker %d unreapable on interrupt",
                         static_cast<int>(w.pid));
                    break;
                }
                if (!escalated && waited > std::chrono::seconds(1)) {
                    ::kill(w.pid, SIGKILL);
                    escalated = true;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
            ::close(w.resFd);
            w.resFd = -1;
            w.alive = false;
            ++farm.workerDeaths;
            if (cache.enabled())
                tmps_removed += cache.removeTmpFilesOfPid(w.pid);
        }
        farm.error = "interrupted; completed cells are in the result "
                     "cache — re-run to resume";
        inform("farm: interrupted — %u worker(s) terminated, "
               "%llu in-flight temp file(s) removed",
               terminated,
               static_cast<unsigned long long>(tmps_removed));
    } else {
        // Retire the pool: close job pipes (workers exit on EOF) and
        // reap.
        for (std::size_t wi = 0; wi < coord.workers.size(); ++wi) {
            WorkerProc &w = coord.workers[wi];
            if (!w.alive)
                continue;
            ::close(w.jobFd);
            w.jobFd = -1;
            // Collect any result frames still in flight before reaping.
            ::fcntl(w.resFd, F_SETFL, 0); // blocking for the tail
            report::FrameReader tail(w.resFd);
            while (auto frame = tail.next())
                coord.handleFrame(wi, *frame);
            ::close(w.resFd);
            w.resFd = -1;
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            w.alive = false;
            // A worker that died before its EOF was seen in the run
            // loop (e.g. the grid finished first) still counts as a
            // death.
            if (WIFSIGNALED(status) ||
                (WIFEXITED(status) && WEXITSTATUS(status) != 0))
                ++farm.workerDeaths;
        }
    }

    farm.campaign.simulated = coord.simulated;
    farm.campaign.failedStores = coord.failedStores;
    farm.completed = coord.jobsDone >= coord.jobsTotal &&
                     farm.failedCells == 0 &&
                     farm.quarantinedCells.empty();
    if (!farm.completed && farm.error.empty()) {
        if (!farm.quarantinedCells.empty())
            farm.error =
                std::to_string(farm.quarantinedCells.size()) +
                " cell(s) quarantined after exhausting their retry "
                "budget (first: '" +
                farm.quarantinedCells.front() +
                "'); every other cell is in the result cache";
        else
            farm.error = "all workers died before the grid finished; "
                         "completed cells are in the result cache — "
                         "re-run to resume";
    }
    fanOutDuplicates(farm.campaign, plan.pending);
    return farm;
}

int
farmWorkerMain(const std::string &cache_dir, unsigned worker_id,
               std::uint64_t kill_after)
{
    // Frames go to a private dup of stdout; stdout itself is pointed
    // at stderr so any stray printf cannot corrupt the frame stream.
    const int result_fd = ::dup(STDOUT_FILENO);
    if (result_fd < 0)
        return 1;
    ::dup2(STDERR_FILENO, STDOUT_FILENO);

    // Attribute interleaved worker stderr, and honour the verbosity
    // the operator set on the coordinator (env survives fork/exec).
    setLogPrefix("[w" + std::to_string(worker_id) + "] ");
    setLogLevelFromEnv();
    inform("worker %u up (pid %d)", worker_id,
           static_cast<int>(::getpid()));

    // Chaos harness: RATSIM_FAULT (inherited across fork/exec) arms
    // deterministic fault injection for this worker's job loop, its
    // frame writes and its cache stores.
    auto &injector = FaultInjector::global();
    if (injector.armFromEnv())
        inform("fault schedule armed: %s",
               injector.schedule().spec.c_str());

    const report::ResultCache cache(cache_dir);
    report::FrameReader job_stream(STDIN_FILENO);
    std::uint64_t completed = 0;

    while (auto frame = job_stream.next()) {
        // Test hook: die like kill -9 *between* receiving a job and
        // simulating it, so the coordinator observes a worker with an
        // in-flight job — the deterministic worst case for requeue.
        if (kill_after > 0 && completed >= kill_after)
            ::raise(SIGKILL);
        const auto doc = report::Json::parse(*frame);
        if (!doc || !doc->isObject()) {
            warn("farm worker: malformed job frame");
            return 1;
        }
        const report::Json *index = doc->find("index");
        const report::Json *key = doc->find("key");
        const report::Json *config_json = doc->find("config");
        const report::Json *programs_json = doc->find("programs");
        if (!index || !index->isU64() || !key || !key->isString() ||
            !config_json || !programs_json ||
            !programs_json->isArray()) {
            warn("farm worker: job frame missing fields");
            return 1;
        }
        const report::Json *attempt_json = doc->find("attempt");
        const std::uint64_t attempt =
            attempt_json && attempt_json->isU64() ? attempt_json->asU64()
                                                  : 0;

        // Fault context for this job: every injection decision below
        // (frame writes, the kill/hang/slow points, the cache store)
        // hashes against (cell index, attempt), so retries of a cell
        // redraw their faults instead of failing identically forever.
        injector.setContext(index->asU64(), attempt);

        // Typed progress frame before the (long) simulation: tells the
        // coordinator which cell this worker is busy on and doubles as
        // a liveness heartbeat. Older-style result frames carry no
        // "type" member, so the dispatch stays backward compatible.
        report::Json progress = report::Json::object();
        progress["type"] = report::Json("progress");
        progress["worker"] = report::Json(std::uint64_t{worker_id});
        progress["index"] = report::Json(index->asU64());
        if (!report::writeFrame(result_fd, progress.dump()))
            return 1; // coordinator went away

        // Lethal / latency faults, after the heartbeat so the
        // coordinator knows which cell is held. Kill models a crash
        // (the original kill_after semantics, made probabilistic);
        // hang models a wedge only the --job-timeout watchdog can
        // clear; slow models contention without being lethal.
        if (injector.fire(FaultKind::Kill))
            ::raise(SIGKILL);
        if (injector.fire(FaultKind::Hang))
            for (;;)
                ::pause();
        if (injector.fire(FaultKind::Slow))
            std::this_thread::sleep_for(injector.slowDelay());

        report::Json reply = report::Json::object();
        reply["index"] = report::Json(index->asU64());

        SimConfig config;
        std::vector<std::string> programs;
        bool ok = fromJson(*config_json, config);
        for (std::size_t i = 0; ok && i < programs_json->size(); ++i) {
            const report::Json &p = programs_json->at(i);
            ok = p.isString();
            if (ok)
                programs.push_back(p.asString());
        }
        if (!ok) {
            reply["error"] = report::Json("undecodable job config");
        } else {
            try {
                // Sampled cells restore their shared checkpoints from
                // the cache-adjacent directory; exact cells dispatch
                // straight to a Simulator run.
                const SimResult result = simulateCell(
                    config, programs, checkpointDirFor(cache_dir));
                if (cache.enabled())
                    reply["stored"] = report::Json(
                        cache.store(key->asString(), result));
                reply["result"] = report::toJson(result);
            } catch (const std::exception &e) {
                reply["error"] = report::Json(std::string(e.what()));
            }
        }
        if (!report::writeFrame(result_fd, reply.dump()))
            return 1; // coordinator went away
        injector.clearContext();
        ++completed;
    }
    return job_stream.truncated() ? 1 : 0;
}

} // namespace rat::sim
