/**
 * @file
 * Multi-process campaign farm: shards a campaign's pending grid cells
 * across worker *processes* (fork/exec of the ratsim binary in
 * `--farm-worker` mode) and streams completed cells back to the
 * coordinator over pipes as length-prefixed JSON (report/wire.hh).
 *
 * Execution model:
 *  - The coordinator expands the grid and probes the shared on-disk
 *    ResultCache; only missing cells become jobs (so a re-run after
 *    any crash — coordinator or worker, kill -9 included — resumes
 *    from whatever earlier runs already landed in the cache).
 *  - Jobs are partitioned into shards; every worker pulls jobs one at
 *    a time from its own shards and, once those drain, steals from the
 *    largest remaining shard, so straggler shards drain onto idle
 *    workers.
 *  - Each worker simulates a cell, lands it in the shared cache with
 *    a crash-safe atomic store, and streams the result frame back.
 *  - A worker death mid-job is detected as EOF on its pipe: the
 *    in-flight job is requeued onto the surviving workers. Only when
 *    every worker is gone does the farm give up — with all completed
 *    cells already durable in the cache.
 *
 * The merged report of a completed farm run is byte-identical to a
 * single-process `runCampaign` of the same spec: both produce the
 * same grid order and the result JSON round-trips exactly
 * (report/json.hh).
 */

#ifndef RAT_SIM_FARM_HH
#define RAT_SIM_FARM_HH

#include <cstdint>
#include <string>

#include "sim/campaign.hh"

namespace rat::sim {

/** Farm-specific knobs on top of a CampaignSpec. */
struct FarmOptions {
    /** Worker processes; 0 = hardware concurrency. Clamped to the
     * number of pending jobs. */
    unsigned workers = 0;
    /** Job shards; 0 = auto (4x workers). Clamped to [1, jobs]. */
    unsigned shards = 0;
    /**
     * Path of the binary to exec with `--farm-worker`. Empty = this
     * process's own executable (/proc/self/exe).
     */
    std::string workerBinary;
    /**
     * Live progress line on stderr: cells done/total, steals, deaths
     * and an ETA, refreshed as workers report in. Off by default so
     * scripted captures of stderr stay stable.
     */
    bool progress = false;
    /**
     * Hung-worker watchdog: a worker with a job in flight that has
     * produced no frame for this many seconds is presumed wedged,
     * SIGKILLed and reaped, and its job requeued (counted in
     * FarmOutcome::workersTimedOut). 0 disables the watchdog.
     */
    unsigned jobTimeoutSec = 0;
    /**
     * Per-cell retry budget: a cell whose worker dies while holding it
     * is requeued up to this many times; one more death quarantines
     * the cell (FarmOutcome::quarantinedCells) instead of letting a
     * poisoned job murder worker after worker until the farm starves.
     */
    unsigned maxRetries = 2;
    /**
     * Respawn dead workers (with exponential backoff per slot) while
     * undone work remains, so a crash is lost capacity for
     * milliseconds instead of the rest of the campaign. A crash-loop
     * breaker stops respawning when repeated respawns make no
     * progress.
     */
    bool respawn = true;
};

/** A finished (or aborted) farm run. */
struct FarmOutcome {
    CampaignOutcome campaign;
    unsigned workersSpawned = 0;
    unsigned shardCount = 0;
    /** Workers that died before draining their work (EOF mid-shard,
     * abnormal exit, or exit on a signal). */
    std::uint64_t workerDeaths = 0;
    /** Jobs requeued from dead workers onto survivors. */
    std::uint64_t jobsRequeued = 0;
    /** Jobs a worker pulled from another worker's shard. */
    std::uint64_t jobsStolen = 0;
    /** Cells whose simulation failed inside a worker (reported as an
     * error frame; not retried). */
    std::uint64_t failedCells = 0;
    /** Dead workers respawned into their slot. */
    std::uint64_t workersRespawned = 0;
    /** Workers SIGKILLed by the --job-timeout watchdog. */
    std::uint64_t workersTimedOut = 0;
    /** Cache keys of cells quarantined after exhausting their retry
     * budget (each killed its worker --max-retries + 1 times). */
    std::vector<std::string> quarantinedCells;
    /** True when no worker could be spawned and the campaign ran
     * in-process instead (degraded but complete). */
    bool inProcessFallback = false;
    /** True when every grid cell has a result. */
    bool completed = false;
    /** Diagnostic when !completed (or failedCells > 0). */
    std::string error;
};

/**
 * Run @p spec as a sharded multi-process farm. Requires fork/exec;
 * the campaign inside the returned outcome is in grid order, exactly
 * like runCampaign's.
 */
FarmOutcome runFarm(const CampaignSpec &spec, const FarmOptions &options);

/**
 * Worker-process entry point (`ratsim --farm-worker`): reads job
 * frames from stdin, simulates each cell, stores it into @p cache_dir
 * (when non-empty) and writes a result frame per cell, preceded by a
 * typed progress frame that doubles as a liveness heartbeat. Log lines
 * carry a `[w<worker_id>]` prefix so interleaved worker stderr stays
 * attributable; verbosity follows the RATSIM_LOG_LEVEL environment
 * variable (inherited across the coordinator's fork/exec). Returns the
 * process exit code. @p kill_after is a test hook: raise SIGKILL after
 * that many completed cells (0 = never), simulating a mid-campaign
 * kill -9 deterministically.
 */
int farmWorkerMain(const std::string &cache_dir, unsigned worker_id,
                   std::uint64_t kill_after);

} // namespace rat::sim

#endif // RAT_SIM_FARM_HH
