#include "sim/metrics.hh"

#include "common/logging.hh"

namespace rat::sim {

double
throughput(const SimResult &result)
{
    return result.throughputEq1();
}

double
fairness(const SimResult &result, const BaselineIpcMap &baseline)
{
    if (result.threads.empty())
        return 0.0;
    double denom = 0.0;
    for (const ThreadResult &t : result.threads) {
        const auto it = baseline.find(t.program);
        if (it == baseline.end())
            fatal("fairness: no single-thread baseline for '%s'",
                  t.program.c_str());
        if (t.ipc <= 0.0)
            return 0.0;
        denom += it->second / t.ipc;
    }
    return static_cast<double>(result.threads.size()) / denom;
}

double
ed2(const SimResult &result)
{
    const double thr = result.throughputEq1();
    if (thr <= 0.0)
        return 0.0;
    const double cpi = 1.0 / thr;
    return static_cast<double>(result.executedTotal()) * cpi * cpi;
}

double
hmeanIpc(const SimResult &result)
{
    if (result.threads.empty())
        return 0.0;
    double denom = 0.0;
    for (const ThreadResult &t : result.threads) {
        if (t.ipc <= 0.0)
            return 0.0;
        denom += 1.0 / t.ipc;
    }
    return static_cast<double>(result.threads.size()) / denom;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace rat::sim
