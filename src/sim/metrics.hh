/**
 * @file
 * Evaluation metrics from Section 5: throughput (Eq. 1), the
 * fairness/performance-balance harmonic mean (Eq. 2, from Luo et
 * al. [9]), and the Energy-Delay^2 proxy of Section 5.3.
 */

#ifndef RAT_SIM_METRICS_HH
#define RAT_SIM_METRICS_HH

#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace rat::sim {

/** Single-thread reference IPC per program (for Eq. 2). */
using BaselineIpcMap = std::map<std::string, double>;

/** Paper Eq. 1: average per-thread IPC of the multithreaded run. */
double throughput(const SimResult &result);

/**
 * Paper Eq. 2: n / sum_i(IPC_ST,i / IPC_MT,i) — the harmonic mean of
 * per-thread speedups relative to their single-thread runs.
 * Returns 0 if any thread committed nothing.
 */
double fairness(const SimResult &result, const BaselineIpcMap &baseline);

/**
 * Section 5.3 efficiency proxy: executed instructions x CPI^2, with CPI
 * the reciprocal of Eq. 1 throughput. Report normalized to a baseline
 * technique's value on the same workload.
 */
double ed2(const SimResult &result);

/** Arithmetic mean over a vector; 0 when empty. */
double mean(const std::vector<double> &values);

/**
 * Harmonic mean of the per-thread IPCs — the throughput/fairness
 * balance metric the sampled-simulation error budget is pinned on
 * (hmean is the most dispersion-sensitive of the summary metrics, so
 * bounding its error bounds the others in practice). Returns 0 when
 * any thread's IPC is not positive.
 */
double hmeanIpc(const SimResult &result);

} // namespace rat::sim

#endif // RAT_SIM_METRICS_HH
