/**
 * @file
 * Sampled-simulation driver implementation. See sampled.hh for the
 * pipeline overview.
 */

#include "sim/sampled.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "check/fnv.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/checkpoint.hh"
#include "sim/metrics.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace rat::sim {
namespace {

/**
 * Trace streams for phase profiling — the exact recipe the Simulator
 * constructor uses (same profile lookup, per-instance seed and address
 * base), so the profiler sees the same dynamic stream the core will.
 */
std::vector<std::unique_ptr<trace::TraceGenerator>>
makeStreams(const SimConfig &cfg, const std::vector<std::string> &programs)
{
    std::vector<std::unique_ptr<trace::TraceGenerator>> gens;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        const auto &profile = trace::spec2000(programs[i]);
        const std::uint64_t seed =
            hashCombine(cfg.seed, hashCombine(i + 1, 0x7261747321ULL));
        const Addr base = (static_cast<Addr>(i) + 1) << 40;
        gens.push_back(
            std::make_unique<trace::TraceGenerator>(profile, seed, base));
    }
    return gens;
}

/**
 * Identity of a phase plan: everything profilePhases' result depends
 * on. Canonical over policy / structure sizes, so a whole technique
 * sweep shares one profiling pass.
 */
std::uint64_t
planKey(const SimConfig &cfg, const std::vector<std::string> &programs)
{
    check::Fnv64 h;
    h.u64(0x706C616E31ULL); // "plan1"
    h.u64(cfg.seed);
    h.u64(cfg.prewarmInsts);
    h.u64(cfg.phaseWindow);
    h.u64(cfg.phaseSpanWindows);
    h.u64(cfg.samplePhases);
    h.u64(programs.size());
    for (const std::string &p : programs) {
        h.u64(p.size());
        for (char c : p)
            h.u64(static_cast<unsigned char>(c));
    }
    return h.value();
}

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

/** Per-thread trace position of sample @p s of @p cfg's plan. */
InstSeq
samplePosition(const SimConfig &cfg, const trace::PhaseSample &s)
{
    return cfg.prewarmInsts + InstSeq{s.windowIndex} * cfg.phaseWindow;
}

std::string
checkpointPath(const std::string &dir, std::uint64_t key)
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.ratck2",
                  static_cast<unsigned long long>(key));
    return (std::filesystem::path(dir) / name).string();
}

bool
readFileBlob(const std::string &path, std::string &blob)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    return in.good() || in.eof();
}

/** Atomic (write-temp-then-rename) checkpoint persistence. */
void
writeFileBlob(const std::string &dir, const std::string &path,
              const std::string &blob)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        if (!out.good()) {
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

/**
 * Ensure checkpoints for every sample of @p plan exist in the
 * process-wide registry (and @p ckptDir when given), building missing
 * ones with one incremental functional walk. Returns the blob for
 * @p wantKey ("" if encoding was refused — callers fall back to a
 * fresh walk).
 *
 * Serialized by the registry mutex: within one process the walk
 * happens once per workload identity and every later sample is a
 * registry hit. prewarm() is incremental (bit-identical to one-shot),
 * so one walker visits all representatives in ascending order.
 */
std::string
ensureCheckpoints(const SimConfig &cfg,
                  const std::vector<std::string> &programs,
                  const trace::PhaseProfile &plan,
                  const std::string &ckptDir, std::uint64_t wantKey)
{
    static std::map<std::uint64_t, std::string> blobs;

    std::lock_guard<std::mutex> lock(registryMutex());
    const auto hit = blobs.find(wantKey);
    if (hit != blobs.end())
        return hit->second;

    // Collect the samples still missing (memory, then files).
    std::vector<std::pair<InstSeq, std::uint64_t>> missing;
    for (const trace::PhaseSample &s : plan.samples) {
        const InstSeq pos = samplePosition(cfg, s);
        const std::uint64_t key =
            CheckpointCodec::fileKey(cfg, programs, pos);
        if (blobs.count(key))
            continue;
        std::string blob;
        if (!ckptDir.empty() &&
            readFileBlob(checkpointPath(ckptDir, key), blob)) {
            blobs.emplace(key, std::move(blob));
            continue;
        }
        missing.emplace_back(pos, key);
    }

    if (!missing.empty()) {
        // One walker simulator, positions ascending; the policy and
        // pipeline configuration are irrelevant (only prewarm runs).
        std::sort(missing.begin(), missing.end());
        Simulator walker(cfg, programs);
        InstSeq walked = 0;
        for (const auto &[pos, key] : missing) {
            walker.smtCore().prewarm(pos - walked);
            walked = pos;
            std::string blob = CheckpointCodec::encode(walker);
            if (blob.empty()) {
                warn("checkpoint encode refused at position %llu",
                     (unsigned long long)pos);
                continue;
            }
            if (!ckptDir.empty())
                writeFileBlob(ckptDir, checkpointPath(ckptDir, key),
                              blob);
            blobs.emplace(key, std::move(blob));
        }
    }

    const auto it = blobs.find(wantKey);
    return it == blobs.end() ? std::string{} : it->second;
}

/** Exact-semantics execution config for one sample at @p position. */
SimConfig
sampleExecConfig(const SimConfig &cfg, InstSeq position)
{
    SimConfig exec = cfg;
    exec.sampled = false;
    exec.sampleIndex = -1;
    exec.prewarmInsts = position;
    exec.warmupCycles = cfg.sampleWarmupCycles;
    exec.measureCycles = cfg.sampleMeasureCycles;
    // Host-side hooks are validated off in sampled mode; keep the
    // execution config clean regardless.
    exec.sampleWindow = 0;
    exec.digestWindow = 0;
    exec.mutateAtCycle = 0;
    exec.engineCheckpointEvery = 0;
    exec.captureStateAtCycle = 0;
    exec.traceOut.clear();
    return exec;
}

/** Run sample @p index of @p cfg's plan, attaching its metadata. */
SimResult
runOneSample(const SimConfig &cfg, const std::vector<std::string> &programs,
             const trace::PhaseProfile &plan, unsigned index,
             const std::string &ckptDir)
{
    const trace::PhaseSample &s = plan.samples[index];
    const InstSeq position = samplePosition(cfg, s);
    const SimConfig exec = sampleExecConfig(cfg, position);
    const std::uint64_t key =
        CheckpointCodec::fileKey(cfg, programs, position);

    SimResult result;
    bool ran = false;
    const std::string blob =
        ensureCheckpoints(cfg, programs, plan, ckptDir, key);
    if (!blob.empty()) {
        SimConfig restored = exec;
        restored.prewarmInsts = 0; // state comes from the checkpoint
        Simulator sim(restored, programs);
        std::string error;
        if (CheckpointCodec::restore(sim, blob, &error)) {
            result = sim.run();
            ran = true;
        } else {
            warn("checkpoint restore failed (%s); falling back to a "
                 "fresh functional walk",
                 error.c_str());
        }
    }
    if (!ran) {
        // Bit-identical fallback: a fresh walk to the same position.
        Simulator sim(exec, programs);
        result = sim.run();
    }

    result.sampled.enabled = true;
    result.sampled.merged = false;
    result.sampled.sampleIndex = static_cast<int>(index);
    result.sampled.windowIndex = s.windowIndex;
    result.sampled.weight = s.weight;
    return result;
}

/** Weighted relative dispersion sqrt(sum w (x - mean)^2 / W) / mean. */
double
weightedDispersion(const std::vector<double> &x,
                   const std::vector<double> &w)
{
    double totalW = 0.0, mean = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        totalW += w[i];
        mean += w[i] * x[i];
    }
    if (totalW <= 0.0)
        return 0.0;
    mean /= totalW;
    if (mean == 0.0)
        return 0.0;
    double var = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - mean;
        var += w[i] * d * d;
    }
    return std::sqrt(var / totalW) / std::abs(mean);
}

/** The counters extrapolation scales (every ThreadStats field). */
constexpr std::uint64_t core::ThreadStats::*kCoreCounters[] = {
    &core::ThreadStats::committedInsts,
    &core::ThreadStats::executedInsts,
    &core::ThreadStats::fetchedInsts,
    &core::ThreadStats::pseudoRetired,
    &core::ThreadStats::invalidInsts,
    &core::ThreadStats::runaheadEntries,
    &core::ThreadStats::uselessRunaheadEpisodes,
    &core::ThreadStats::runaheadCycles,
    &core::ThreadStats::normalCycles,
    &core::ThreadStats::branches,
    &core::ThreadStats::branchMispredicts,
    &core::ThreadStats::squashedInsts,
    &core::ThreadStats::normalRegCycles,
    &core::ThreadStats::runaheadRegCycles,
};

/** Every ThreadMemStats field. */
constexpr std::uint64_t mem::ThreadMemStats::*kMemCounters[] = {
    &mem::ThreadMemStats::loads,
    &mem::ThreadMemStats::stores,
    &mem::ThreadMemStats::l1dMisses,
    &mem::ThreadMemStats::l2DemandMisses,
    &mem::ThreadMemStats::ifetchL1Misses,
    &mem::ThreadMemStats::ifetchL2Misses,
    &mem::ThreadMemStats::ifetchPrefetches,
    &mem::ThreadMemStats::raMemPrefetches,
    &mem::ThreadMemStats::raL2Prefetches,
};

/** Every EngineStats field. */
constexpr std::uint64_t runahead::EngineStats::*kEngineCounters[] = {
    &runahead::EngineStats::episodes,
    &runahead::EngineStats::uselessEpisodes,
    &runahead::EngineStats::suppressedEntries,
    &runahead::EngineStats::drainEpisodes,
    &runahead::EngineStats::cappedExits,
    &runahead::EngineStats::executedInRunahead,
};

} // namespace

const trace::PhaseProfile &
samplePlanFor(const SimConfig &cfg, const std::vector<std::string> &programs)
{
    static std::map<std::uint64_t, trace::PhaseProfile> plans;
    static std::mutex m;

    const std::uint64_t key = planKey(cfg, programs);
    std::lock_guard<std::mutex> lock(m);
    const auto hit = plans.find(key);
    if (hit != plans.end())
        return hit->second;

    const auto gens = makeStreams(cfg, programs);
    std::vector<const trace::TraceSource *> streams;
    for (const auto &g : gens)
        streams.push_back(g.get());
    trace::PhaseConfig pc;
    pc.window = cfg.phaseWindow;
    pc.spanWindows = cfg.phaseSpanWindows;
    pc.phases = cfg.samplePhases;
    return plans.emplace(key, trace::profilePhases(streams,
                                                   cfg.prewarmInsts, pc))
        .first->second;
}

std::string
checkpointDirFor(const std::string &cacheDir)
{
    if (cacheDir.empty())
        return {};
    return (std::filesystem::path(cacheDir) / "ckpt").string();
}

SimResult
mergeSampledResults(const SimConfig &cfg,
                    const std::vector<std::string> &programs,
                    const std::vector<SimResult> &samples)
{
    if (samples.empty())
        fatal("mergeSampledResults: no samples");

    const trace::PhaseProfile &plan = samplePlanFor(cfg, programs);
    std::vector<const SimResult *> byIndex(plan.samples.size(), nullptr);
    for (const SimResult &s : samples) {
        const int idx = s.sampled.sampleIndex;
        if (idx < 0 ||
            static_cast<std::size_t>(idx) >= byIndex.size())
            fatal("mergeSampledResults: sample index %d out of range "
                  "(plan has %u samples)",
                  idx, static_cast<unsigned>(byIndex.size()));
        byIndex[static_cast<std::size_t>(idx)] = &s;
    }
    for (const SimResult *s : byIndex) {
        if (!s)
            fatal("mergeSampledResults: plan sample missing from the "
                  "sample set");
    }

    const double target = static_cast<double>(cfg.measureCycles);

    // Trajectory reconstruction: traverse the profiled windows in
    // order, charging each an estimated cycle cost of
    // threads * window / aggIpc(its phase) — a slow phase takes more
    // cycles to traverse its instructions. Burn the detailed warmup
    // first, then account measured cycles to each phase until the full
    // window is consumed. cw[j] is then the cycles the reconstructed
    // run spends measuring phase j: the weight that makes per-cycle
    // rate averaging match the real run's time allocation (a plain
    // instruction-weighted mean would overweight fast phases — the
    // classic arithmetic-vs-harmonic-mean IPC error) and that clips
    // the span to what the run actually executes under this policy.
    const double threads =
        static_cast<double>(samples.front().threads.size());
    const double window = static_cast<double>(cfg.phaseWindow);
    std::vector<double> cw(byIndex.size(), 0.0);
    double warmLeft = static_cast<double>(cfg.warmupCycles);
    double measLeft = target;
    for (unsigned w = 0; w < plan.spanWindows; ++w) {
        const unsigned j = plan.assignment[w];
        const double aggIpc = byIndex[j]->totalIpc();
        // No forward progress: the trajectory never leaves this phase.
        double cost = aggIpc > 0.0
                          ? threads * window / aggIpc
                          : warmLeft + measLeft;
        if (warmLeft > 0.0) {
            const double burn = std::min(cost, warmLeft);
            warmLeft -= burn;
            cost -= burn;
        }
        if (cost <= 0.0)
            continue;
        const double take = std::min(cost, measLeft);
        cw[j] += take;
        measLeft -= take;
        if (measLeft <= 0.0)
            break;
    }
    if (measLeft > 0.0) {
        // The profiled span is shorter than the run's appetite: the
        // tail re-uses the span's phase mix (scale covered weights up;
        // with no coverage at all, fall back to cluster populations).
        const double have = target - measLeft;
        if (have > 0.0) {
            for (double &x : cw)
                x *= target / have;
        } else {
            for (std::size_t j = 0; j < byIndex.size(); ++j)
                cw[j] = static_cast<double>(
                    byIndex[j]->sampled.weight);
        }
    }
    double totalCw = 0.0;
    for (const double x : cw)
        totalCw += x;
    if (totalCw <= 0.0)
        fatal("mergeSampledResults: zero total weight");
    SimResult merged;
    merged.cycles = cfg.measureCycles;
    merged.threads.resize(samples.front().threads.size());

    // Cycle-weighted per-cycle rate of one counter across samples,
    // scaled to the full measured window.
    const auto extrapolate = [&](auto counterOf) {
        double rate = 0.0;
        for (std::size_t j = 0; j < byIndex.size(); ++j) {
            const SimResult &s = *byIndex[j];
            const double cyc = static_cast<double>(s.cycles);
            if (cyc <= 0.0)
                continue;
            rate += cw[j] * (static_cast<double>(counterOf(s)) / cyc);
        }
        return static_cast<std::uint64_t>(
            std::llround(rate / totalCw * target));
    };

    for (std::size_t t = 0; t < merged.threads.size(); ++t) {
        ThreadResult &tr = merged.threads[t];
        tr.program = samples.front().threads[t].program;
        for (auto member : kCoreCounters) {
            tr.core.*member = extrapolate([t, member](const SimResult &s) {
                return s.threads[t].core.*member;
            });
        }
        for (auto member : kMemCounters) {
            tr.mem.*member = extrapolate([t, member](const SimResult &s) {
                return s.threads[t].mem.*member;
            });
        }
        // IPC is the cycle-weighted mean of the per-sample IPCs
        // (identical to rate-extrapolated committed / cycles up to
        // rounding; computed directly so the headline number carries no
        // rounding error).
        double ipc = 0.0;
        for (std::size_t j = 0; j < byIndex.size(); ++j)
            ipc += cw[j] * byIndex[j]->threads[t].ipc;
        tr.ipc = ipc / totalCw;
        tr.l2Mpki = tr.core.committedInsts
                        ? 1000.0 *
                              static_cast<double>(tr.mem.l2DemandMisses) /
                              static_cast<double>(tr.core.committedInsts)
                        : 0.0;
    }
    for (auto member : kEngineCounters) {
        merged.engine.*member = extrapolate([member](const SimResult &s) {
            return s.engine.*member;
        });
    }

    // Error estimate: weighted relative dispersion of the per-sample
    // summary metrics. A single-phase workload has one sample and
    // reports zero dispersion — the degenerate case is exact.
    std::vector<double> ipcs, hmeans;
    for (const SimResult *s : byIndex) {
        ipcs.push_back(s->totalIpc());
        hmeans.push_back(hmeanIpc(*s));
    }
    merged.sampled.enabled = true;
    merged.sampled.merged = true;
    merged.sampled.sampleIndex = -1;
    merged.sampled.phases = static_cast<unsigned>(samples.size());
    merged.sampled.totalWindows = plan.totalWeight();
    merged.sampled.ipcError = weightedDispersion(ipcs, cw);
    merged.sampled.hmeanError = weightedDispersion(hmeans, cw);
    return merged;
}

SimResult
simulateCell(const SimConfig &cfg, const std::vector<std::string> &programs,
             const std::string &ckptDir)
{
    if (!cfg.sampled) {
        Simulator sim(cfg, programs);
        return sim.run();
    }

    const trace::PhaseProfile &plan = samplePlanFor(cfg, programs);
    if (plan.samples.empty())
        fatal("sampled simulation: empty phase plan");

    if (cfg.sampleIndex >= 0) {
        if (static_cast<std::size_t>(cfg.sampleIndex) >=
            plan.samples.size()) {
            fatal("sampled simulation: sample index %d out of range "
                  "(plan has %u samples)",
                  cfg.sampleIndex,
                  static_cast<unsigned>(plan.samples.size()));
        }
        return runOneSample(cfg, programs, plan,
                            static_cast<unsigned>(cfg.sampleIndex),
                            ckptDir);
    }

    std::vector<SimResult> samples;
    for (unsigned i = 0; i < plan.samples.size(); ++i)
        samples.push_back(
            runOneSample(cfg, programs, plan, i, ckptDir));
    return mergeSampledResults(cfg, programs, samples);
}

} // namespace rat::sim
