/**
 * @file
 * Sampled simulation driver: phase plans, checkpoint reuse, per-sample
 * execution and weighted whole-run extrapolation.
 *
 * `--sampled` replaces one long measured window with a handful of short
 * detailed samples, one per program phase. The pipeline is:
 *
 *   1. `samplePlanFor` profiles the post-prewarm span of the workload
 *      with the BBV phase profiler (trace/phase.hh) and memoizes the
 *      result per workload identity — the plan is a pure function of
 *      (programs, seed, prewarm position, phase parameters), so the 9
 *      techniques of a policy sweep share one profiling pass.
 *   2. For every representative window, the post-prewarm architectural
 *      state is materialized once by an incremental functional walk and
 *      captured with the "ratck2" codec (sim/checkpoint.hh). Blobs are
 *      kept in a process-wide registry and, when a checkpoint directory
 *      is given (derived from the result-cache directory), persisted so
 *      farm workers and later invocations skip the walk entirely.
 *   3. Each sample restores its checkpoint (falling back to a fresh
 *      walk — bit-identical by construction — if the blob is missing or
 *      refused), runs `sampleWarmupCycles` of detailed warmup, then
 *      measures `sampleMeasureCycles`.
 *   4. Extrapolation: every counter is converted to a per-cycle rate,
 *      averaged across samples weighted by cluster population, and
 *      scaled back to the configured full measured window. The weighted
 *      relative dispersion of the per-sample IPC metrics is reported as
 *      the error estimate.
 *
 * Determinism: every step is a pure function of the configuration, so
 * sampled results are cacheable under the same key discipline as exact
 * ones (the sampled fields are part of the serialized SimConfig).
 */

#ifndef RAT_SIM_SAMPLED_HH
#define RAT_SIM_SAMPLED_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/phase.hh"

namespace rat::sim {

/**
 * The (memoized) phase plan a sampled configuration runs. Valid until
 * process exit; the reference is to an immutable registry entry.
 */
const trace::PhaseProfile &
samplePlanFor(const SimConfig &cfg, const std::vector<std::string> &programs);

/**
 * Checkpoint directory derived from a result-cache directory ("" when
 * caching is off — checkpoints then live only in process memory).
 */
std::string checkpointDirFor(const std::string &cacheDir);

/**
 * Run one simulation cell: exact mode dispatches straight to
 * Simulator::run; sampled mode runs one sample (cfg.sampleIndex >= 0)
 * or all samples merged into a whole-run extrapolation (-1).
 */
SimResult simulateCell(const SimConfig &cfg,
                       const std::vector<std::string> &programs,
                       const std::string &ckptDir = "");

/**
 * Merge per-sample results (each carrying its sample index and weight
 * in `result.sampled`) into one extrapolated whole-run result for
 * @p cfg by trajectory reconstruction: the profiled windows are
 * traversed in order, each charged an estimated cycle cost of
 * numThreads * phaseWindow / (its phase's measured aggregate IPC),
 * until the configured warmup + measured window is consumed. Each
 * phase's rates are then scaled by the cycles the trajectory spent in
 * it — so the effective span automatically matches what the full run
 * would actually execute, per policy. Used by simulateCell and by
 * campaign/farm, which schedule the samples of one workload as
 * independent cells and merge afterwards.
 */
SimResult mergeSampledResults(const SimConfig &cfg,
                              const std::vector<std::string> &programs,
                              const std::vector<SimResult> &samples);

} // namespace rat::sim

#endif // RAT_SIM_SAMPLED_HH
