#include "sim/simulator.hh"

#include <chrono>

#include "check/digest.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "policy/factory.hh"
#include "trace/profile.hh"

namespace rat::sim {

double
SimResult::totalIpc() const
{
    double sum = 0.0;
    for (const ThreadResult &t : threads)
        sum += t.ipc;
    return sum;
}

double
SimResult::throughputEq1() const
{
    return threads.empty() ? 0.0 : totalIpc() / threads.size();
}

std::uint64_t
SimResult::committedTotal() const
{
    std::uint64_t sum = 0;
    for (const ThreadResult &t : threads)
        sum += t.core.committedInsts;
    return sum;
}

std::uint64_t
SimResult::executedTotal() const
{
    std::uint64_t sum = 0;
    for (const ThreadResult &t : threads)
        sum += t.core.executedInsts;
    return sum;
}

Simulator::Simulator(SimConfig config, std::vector<std::string> programs)
    : config_(std::move(config)), programs_(std::move(programs))
{
    if (programs_.empty())
        fatal("simulator needs at least one program");
    config_.core.numThreads = static_cast<unsigned>(programs_.size());

    mem_ = std::make_unique<mem::MemoryHierarchy>(config_.mem);

    // Each program instance gets a private, widely separated address
    // space (separate ASIDs) and a distinct seed.
    std::vector<const trace::TraceSource *> streams;
    for (std::size_t i = 0; i < programs_.size(); ++i) {
        const auto &profile = trace::spec2000(programs_[i]);
        const std::uint64_t seed =
            hashCombine(config_.seed, hashCombine(i + 1, 0x7261747321ULL));
        const Addr base = (static_cast<Addr>(i) + 1) << 40; // 1 TiB apart
        gens_.push_back(std::make_unique<trace::TraceGenerator>(
            profile, seed, base));
        streams.push_back(gens_.back().get());
    }

    policy_ = policy::makePolicy(config_.core.policy);
    core_ = std::make_unique<core::SmtCore>(config_.core, *mem_, *policy_,
                                            std::move(streams));
}

Simulator::~Simulator() = default;

SimResult
Simulator::run(PhaseTiming *timing)
{
    using Clock = std::chrono::steady_clock;
    const auto seconds_since = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };

    // Observation only: the tracer and sampler receive copies of core
    // state but never feed anything back, so attaching them cannot
    // change the simulation (pinned by the TraceSmoke identity test).
    std::unique_ptr<obs::Tracer> tracer;
    if (!config_.traceOut.empty()) {
        tracer = std::make_unique<obs::Tracer>(
            config_.traceCategories,
            static_cast<unsigned>(programs_.size()),
            config_.traceBufferCapacity);
        core_->setTracer(tracer.get());
        mem_->setTracer(tracer.get());
    }

    auto t0 = Clock::now();
    core_->prewarm(config_.prewarmInsts);
    if (timing)
        timing->prewarmSeconds = seconds_since(t0);

    t0 = Clock::now();
    core_->run(config_.warmupCycles);
    if (timing) {
        timing->warmupSeconds = seconds_since(t0);
        timing->warmupSkippedCycles = core_->skipStats().skippedCycles;
    }
    // resetStats also clears the skip counters, so the measured window
    // accounts its fast-forwards separately; run() never skips past the
    // requested cycle count, so this boundary lands exactly.
    core_->resetStats();
    mem_->resetStats();
    // The trace covers exactly the measured window, like the stats.
    if (tracer)
        tracer->clear();
    obs::WindowSampler sampler(config_.sampleWindow);
    if (config_.sampleWindow) {
        sampler.reset(core_->cycle());
        core_->setSampler(&sampler);
    }
    check::DigestCollector digests(config_.digestWindow);
    if (config_.digestWindow) {
        digests.reset(core_->cycle());
        if (config_.captureStateAtCycle)
            digests.setCaptureAt(config_.captureStateAtCycle);
        core_->setDigestCollector(&digests);
    }
    // Verify-only hooks; both default off and cannot fire otherwise.
    if (config_.mutateAtCycle)
        core_->armMutationAt(core_->cycle() + config_.mutateAtCycle);
    if (config_.engineCheckpointEvery)
        core_->setEngineCheckpointInterval(config_.engineCheckpointEvery);

    t0 = Clock::now();
    const Cycle start = core_->cycle();
    core_->run(config_.measureCycles);
    const Cycle elapsed = core_->cycle() - start;
    if (timing) {
        timing->measureSeconds = seconds_since(t0);
        timing->measureSkippedCycles = core_->skipStats().skippedCycles;
        timing->measureSkipSpans = core_->skipStats().skipSpans;
    }
    core_->setSampler(nullptr);
    core_->setDigestCollector(nullptr);

    SimResult result;
    result.cycles = elapsed;
    result.engine = core_->runaheadEngine().stats();
    if (config_.sampleWindow)
        result.telemetry = sampler.result();
    if (config_.digestWindow) {
        result.digest = digests.track();
        result.stateDump = digests.capturedDump();
    }
    for (std::size_t i = 0; i < programs_.size(); ++i) {
        const auto tid = static_cast<ThreadId>(i);
        ThreadResult tr;
        tr.program = programs_[i];
        tr.core = core_->threadStats(tid);
        tr.mem = mem_->threadStats(tid);
        tr.ipc = elapsed ? static_cast<double>(tr.core.committedInsts) /
                               static_cast<double>(elapsed)
                         : 0.0;
        tr.l2Mpki =
            tr.core.committedInsts
                ? 1000.0 * static_cast<double>(tr.mem.l2DemandMisses) /
                      static_cast<double>(tr.core.committedInsts)
                : 0.0;
        result.threads.push_back(std::move(tr));
    }

    if (tracer) {
        core_->setTracer(nullptr);
        mem_->setTracer(nullptr);
        std::string error;
        if (!tracer->writeTo(config_.traceOut, &error))
            warn("trace export failed: %s", error.c_str());
        else
            inform("wrote trace %s (%llu events, %llu dropped)",
                   config_.traceOut.c_str(),
                   (unsigned long long)tracer->retainedEvents(),
                   (unsigned long long)tracer->droppedEvents());
    }
    return result;
}

} // namespace rat::sim
