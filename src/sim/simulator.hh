/**
 * @file
 * Top-level simulator: wires trace generators, the memory hierarchy, a
 * scheduling policy and the SMT core together, runs warm-up plus a
 * measured window, and reports per-thread results.
 *
 * Measurement methodology: all threads execute continuously for the
 * entire measured window (synthetic traces never run dry), so every
 * thread is fully represented in the measurement — the property the
 * FAME methodology [19] establishes for finite traces (see DESIGN.md).
 */

#ifndef RAT_SIM_SIMULATOR_HH
#define RAT_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/policy_iface.hh"
#include "core/smt_core.hh"
#include "core/stats.hh"
#include "mem/hierarchy.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "runahead/engine.hh"
#include "trace/generator.hh"

namespace rat::sim {

/** Full simulation configuration. */
struct SimConfig {
    core::CoreConfig core{};
    mem::MemConfig mem{};
    /**
     * Functional warm-up instructions per thread (zero-latency cache /
     * predictor training before timing starts; see SmtCore::prewarm).
     */
    InstSeq prewarmInsts = 1000000;
    /** Timed cycles simulated before statistics are reset. */
    Cycle warmupCycles = 20000;
    /** Cycles of the measured window. */
    Cycle measureCycles = 100000;
    /** Workload seed (varies trace instances). */
    std::uint64_t seed = 1;
    /**
     * Telemetry sampling window in cycles; 0 = off. Non-zero windows
     * add a `telemetry` block to the SimResult, so this field *is*
     * serialized (only when non-zero — default configs keep their
     * cache keys and golden serializations unchanged).
     */
    Cycle sampleWindow = 0;
    /**
     * State-digest window in cycles; 0 = off. Non-zero windows add a
     * `digest` block to the SimResult, so — exactly like sampleWindow —
     * this field is serialized only when non-zero (default configs keep
     * their cache keys and golden serializations unchanged). This is
     * what `ratsim verify` compares across the host-side mode grid.
     */
    Cycle digestWindow = 0;

    // ---- sampled simulation (SimPoint-style; sim/sampled.hh) -------
    // Sampled runs produce *estimates*, not the exact-mode numbers, so
    // every field below is part of the serialized configuration — but
    // (like sampleWindow/digestWindow) only when `sampled` is set, so
    // exact-mode cache keys and golden serializations are unchanged.
    /** Enable phase-sampled simulation (exact mode when false). */
    bool sampled = false;
    /** Phases (k-means clusters / representative windows) requested. */
    unsigned samplePhases = 4;
    /** Phase-profiling window, instructions per thread. */
    InstSeq phaseWindow = 2048;
    /** Windows profiled from the post-prewarm point. */
    unsigned phaseSpanWindows = 64;
    /** Timed warmup cycles per sample (pipeline/MSHR fill-in). */
    Cycle sampleWarmupCycles = 1000;
    /** Measured cycles per sample. */
    Cycle sampleMeasureCycles = 4000;
    /**
     * Which representative to simulate: -1 = all samples merged into
     * one extrapolated result (the CLI meaning of `--sampled`); >= 0 =
     * exactly one sample cell (how campaign/farm schedule the samples
     * of one workload as independent, independently cached cells).
     */
    int sampleIndex = -1;

    // ---- host-side observability; cannot affect results ------------
    // Like CoreConfig::broadcastScheduler and cycleSkipping, the
    // tracer settings are deliberately NOT part of the serialized
    // configuration: tracing only observes the simulation (pinned by
    // the TraceSmoke byte-identity test), so it must not change
    // result-cache keys.
    /** Chrome trace-event JSON output path ("" = tracing off). */
    std::string traceOut;
    /** obs::Category mask of event classes to record. */
    unsigned traceCategories = obs::kCatAll;
    /** Events retained per trace track (ring capacity). */
    std::size_t traceBufferCapacity = obs::Tracer::kDefaultRingCapacity;

    // ---- host-side verify hooks; NOT serialized --------------------
    /**
     * Fault injection for `ratsim verify --mutate-at`: flip one bit of
     * serialized state at the first measured-window tick at or after
     * this cycle offset (relative to measurement start). 0 = off.
     */
    Cycle mutateAtCycle = 0;
    /**
     * Save/restore leg: round-trip the runahead engine's episode
     * checkpoints every N measured cycles (must be digest-invisible;
     * see SmtCore::setEngineCheckpointInterval). 0 = off.
     */
    Cycle engineCheckpointEvery = 0;
    /**
     * Capture a full state dump at this absolute digest boundary
     * (the verify bisector's final pass). 0 = off.
     */
    Cycle captureStateAtCycle = 0;
};

/** Measured results for one hardware thread. */
struct ThreadResult {
    std::string program;
    core::ThreadStats core;
    mem::ThreadMemStats mem;
    double ipc = 0.0;
    /** Demand L2 misses per kilo committed instruction. */
    double l2Mpki = 0.0;
};

/**
 * Sampling metadata carried by a SimResult (sim/sampled.hh). For a
 * merged result, `ipcError`/`hmeanError` are the weighted relative
 * dispersions of the per-sample metrics — the error-bar estimate the
 * report layer surfaces next to every extrapolated number.
 */
struct SampledMeta {
    /** True when the result came from sampled (not exact) simulation. */
    bool enabled = false;
    /** True for a whole-run extrapolation; false for one sample cell. */
    bool merged = false;
    /** Sample index of a single-sample cell (-1 when merged). */
    int sampleIndex = -1;
    /** Representative window of a single-sample cell. */
    unsigned windowIndex = 0;
    /** Cluster weight (windows represented) of a single-sample cell. */
    std::uint64_t weight = 0;
    /** Phases actually found (merged results). */
    unsigned phases = 0;
    /** Windows profiled (merged results; == sum of sample weights). */
    std::uint64_t totalWindows = 0;
    /** Weighted relative dispersion of per-sample total IPC. */
    double ipcError = 0.0;
    /** Weighted relative dispersion of per-sample hmean IPC. */
    double hmeanError = 0.0;
};

/** Results of one simulation run. */
struct SimResult {
    Cycle cycles = 0;
    std::vector<ThreadResult> threads;
    /**
     * Windowed time-series + latency histograms, populated when
     * SimConfig::sampleWindow is non-zero. Serialized (and cached)
     * only when enabled, so default results are byte-identical to
     * pre-telemetry ones.
     */
    obs::TelemetryResult telemetry;
    /**
     * Engine-level runahead counters over the measured window.
     * Deliberately NOT serialized in toJson(SimResult) — goldens and
     * cache cells stay unchanged; `ratsim report` surfaces it as a
     * separate `engine` block on always-fresh runs.
     */
    runahead::EngineStats engine;
    /**
     * Per-window state digests, populated when SimConfig::digestWindow
     * is non-zero. Serialized only when enabled (window != 0).
     */
    obs::DigestTrack digest;
    /**
     * Full state dump captured at SimConfig::captureStateAtCycle (the
     * verify bisector's final pass). Host-side; never serialized.
     */
    std::string stateDump;
    /**
     * Sampling metadata, populated when SimConfig::sampled is set.
     * Serialized only when enabled — exact-mode results stay
     * byte-identical to pre-sampling ones.
     */
    SampledMeta sampled;

    /** Sum of per-thread IPC. */
    double totalIpc() const;
    /** Paper Eq. 1: average of per-thread IPC. */
    double throughputEq1() const;
    /** Total committed instructions. */
    std::uint64_t committedTotal() const;
    /** Total executed (renamed) instructions — the ED^2 energy proxy. */
    std::uint64_t executedTotal() const;
};

/**
 * Wall-clock seconds spent in each phase of one Simulator::run (filled
 * on request; the perf_simspeed bench separates the cycle-accurate
 * phases from the functional prewarm walk), plus the per-phase
 * quiescence fast-forward counters (zero with cycle skipping off).
 * Skipped cycles are counted inside their phase: `SmtCore::run` clamps
 * every fast-forward to the end of the requested window, so a skip can
 * never cross the warmup→measure resetStats() boundary.
 */
struct PhaseTiming {
    double prewarmSeconds = 0.0;
    double warmupSeconds = 0.0;
    double measureSeconds = 0.0;
    /** Warmup-phase cycles elided by cycle skipping. */
    std::uint64_t warmupSkippedCycles = 0;
    /** Measure-phase cycles elided by cycle skipping. */
    std::uint64_t measureSkippedCycles = 0;
    /** Fast-forward spans taken in the measured window. */
    std::uint64_t measureSkipSpans = 0;
};

/**
 * One simulation instance: owns every component. Instances are fully
 * independent, so parameter sweeps may run many in parallel threads.
 */
class Simulator
{
  public:
    /**
     * @param config   Simulation configuration. core.numThreads is set
     *                 from programs.size().
     * @param programs SPEC2000 profile names, one per hardware thread.
     */
    Simulator(SimConfig config, std::vector<std::string> programs);
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Run warm-up + measured window and return the results. When
     * @p timing is non-null, per-phase wall-clock seconds are recorded.
     */
    SimResult run(PhaseTiming *timing = nullptr);

    /** The core (tests and detailed inspection). */
    core::SmtCore &smtCore() { return *core_; }
    /** The memory hierarchy. */
    mem::MemoryHierarchy &memory() { return *mem_; }
    /** Effective configuration. */
    const SimConfig &config() const { return config_; }

  private:
    SimConfig config_;
    std::vector<std::string> programs_;
    std::unique_ptr<mem::MemoryHierarchy> mem_;
    std::vector<std::unique_ptr<trace::TraceGenerator>> gens_;
    std::unique_ptr<core::SchedulingPolicy> policy_;
    std::unique_ptr<core::SmtCore> core_;
};

} // namespace rat::sim

#endif // RAT_SIM_SIMULATOR_HH
