#include "sim/workloads.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "trace/profile.hh"

namespace rat::sim {

Workload
Workload::fromPrograms(std::vector<std::string> programs)
{
    Workload w;
    std::ostringstream name;
    bool first = true;
    for (const std::string &p : programs) {
        if (!first)
            name << ",";
        name << p;
        first = false;
    }
    w.name = name.str();
    w.programs = std::move(programs);
    return w;
}

namespace {

Workload
make(std::initializer_list<const char *> programs)
{
    std::vector<std::string> names;
    names.reserve(programs.size());
    for (const char *p : programs) {
        RAT_ASSERT(trace::isSpec2000(p), "unknown program '%s'", p);
        names.emplace_back(p);
    }
    return Workload::fromPrograms(std::move(names));
}

// Table 2, verbatim.
const std::vector<Workload> kIlp2 = {
    make({"apsi", "eon"}),      make({"apsi", "gcc"}),
    make({"bzip2", "vortex"}),  make({"fma3d", "gcc"}),
    make({"fma3d", "mesa"}),    make({"gcc", "mgrid"}),
    make({"gzip", "bzip2"}),    make({"gzip", "vortex"}),
    make({"mgrid", "galgel"}),  make({"wupwise", "gcc"}),
};

const std::vector<Workload> kMix2 = {
    make({"applu", "vortex"}),  make({"art", "gzip"}),
    make({"bzip2", "mcf"}),     make({"equake", "bzip2"}),
    make({"galgel", "equake"}), make({"lucas", "crafty"}),
    make({"mcf", "eon"}),       make({"swim", "mgrid"}),
    make({"twolf", "apsi"}),    make({"wupwise", "twolf"}),
};

const std::vector<Workload> kMem2 = {
    make({"applu", "art"}),   make({"art", "mcf"}),
    make({"art", "twolf"}),   make({"art", "vpr"}),
    make({"equake", "swim"}), make({"mcf", "twolf"}),
    make({"parser", "mcf"}),  make({"swim", "mcf"}),
    make({"swim", "vpr"}),    make({"twolf", "swim"}),
};

const std::vector<Workload> kIlp4 = {
    make({"apsi", "eon", "fma3d", "gcc"}),
    make({"apsi", "eon", "gzip", "vortex"}),
    make({"apsi", "gap", "wupwise", "perl"}),
    make({"crafty", "fma3d", "apsi", "vortex"}),
    make({"fma3d", "gcc", "gzip", "vortex"}),
    make({"gzip", "bzip2", "eon", "gcc"}),
    make({"mesa", "gzip", "fma3d", "bzip2"}),
    make({"wupwise", "gcc", "mgrid", "galgel"}),
};

const std::vector<Workload> kMix4 = {
    make({"ammp", "applu", "apsi", "eon"}),
    make({"art", "gap", "twolf", "crafty"}),
    make({"art", "mcf", "fma3d", "gcc"}),
    make({"gzip", "twolf", "bzip2", "mcf"}),
    make({"lucas", "crafty", "equake", "bzip2"}),
    make({"mcf", "mesa", "lucas", "gzip"}),
    make({"swim", "fma3d", "vpr", "bzip2"}),
    make({"swim", "twolf", "gzip", "vortex"}),
};

const std::vector<Workload> kMem4 = {
    make({"art", "mcf", "swim", "twolf"}),
    make({"art", "mcf", "vpr", "swim"}),
    make({"art", "twolf", "equake", "mcf"}),
    make({"equake", "parser", "mcf", "lucas"}),
    make({"equake", "vpr", "applu", "twolf"}),
    make({"mcf", "twolf", "vpr", "parser"}),
    make({"parser", "applu", "swim", "twolf"}),
    make({"swim", "applu", "art", "mcf"}),
};

} // namespace

const std::vector<WorkloadGroup> &
allGroups()
{
    static const std::vector<WorkloadGroup> groups = {
        WorkloadGroup::ILP2, WorkloadGroup::MIX2, WorkloadGroup::MEM2,
        WorkloadGroup::ILP4, WorkloadGroup::MIX4, WorkloadGroup::MEM4,
    };
    return groups;
}

const char *
groupName(WorkloadGroup group)
{
    switch (group) {
      case WorkloadGroup::ILP2:
        return "ILP2";
      case WorkloadGroup::MIX2:
        return "MIX2";
      case WorkloadGroup::MEM2:
        return "MEM2";
      case WorkloadGroup::ILP4:
        return "ILP4";
      case WorkloadGroup::MIX4:
        return "MIX4";
      case WorkloadGroup::MEM4:
        return "MEM4";
    }
    return "?";
}

std::optional<WorkloadGroup>
parseGroup(const std::string &name)
{
    for (const WorkloadGroup g : allGroups()) {
        if (name == groupName(g))
            return g;
    }
    return std::nullopt;
}

unsigned
groupThreads(WorkloadGroup group)
{
    switch (group) {
      case WorkloadGroup::ILP2:
      case WorkloadGroup::MIX2:
      case WorkloadGroup::MEM2:
        return 2;
      default:
        return 4;
    }
}

const std::vector<Workload> &
workloadsOf(WorkloadGroup group)
{
    switch (group) {
      case WorkloadGroup::ILP2:
        return kIlp2;
      case WorkloadGroup::MIX2:
        return kMix2;
      case WorkloadGroup::MEM2:
        return kMem2;
      case WorkloadGroup::ILP4:
        return kIlp4;
      case WorkloadGroup::MIX4:
        return kMix4;
      case WorkloadGroup::MEM4:
        return kMem4;
    }
    panic("bad workload group");
}

const std::vector<std::string> &
allPrograms()
{
    static const std::vector<std::string> programs = [] {
        std::set<std::string> set;
        for (const WorkloadGroup g : allGroups()) {
            for (const Workload &w : workloadsOf(g))
                set.insert(w.programs.begin(), w.programs.end());
        }
        return std::vector<std::string>(set.begin(), set.end());
    }();
    return programs;
}

} // namespace rat::sim
