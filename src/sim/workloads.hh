/**
 * @file
 * The paper's Table 2 multiprogrammed workloads: 2- and 4-thread
 * combinations of SPEC CPU2000 programs, grouped by the L2-miss-rate
 * characterization into ILP, MIX and MEM classes.
 */

#ifndef RAT_SIM_WORKLOADS_HH
#define RAT_SIM_WORKLOADS_HH

#include <optional>
#include <string>
#include <vector>

namespace rat::sim {

/** One multiprogrammed workload: an ordered set of program names. */
struct Workload {
    std::string name;                  ///< e.g. "art,mcf"
    std::vector<std::string> programs; ///< profile names

    /** Build a workload from program names; the display name is the
     * canonical comma-joined list. */
    static Workload fromPrograms(std::vector<std::string> programs);
};

/** Table 2 column identifiers. */
enum class WorkloadGroup { ILP2, MIX2, MEM2, ILP4, MIX4, MEM4 };

/** All six groups in Table 2 order. */
const std::vector<WorkloadGroup> &allGroups();

/** Group display name ("ILP2", ...). */
const char *groupName(WorkloadGroup group);

/** Inverse of groupName; std::nullopt for unknown names. */
std::optional<WorkloadGroup> parseGroup(const std::string &name);

/** Number of threads in the group's workloads (2 or 4). */
unsigned groupThreads(WorkloadGroup group);

/** The workloads of one group, exactly as listed in Table 2. */
const std::vector<Workload> &workloadsOf(WorkloadGroup group);

/** Union of every program name used by any workload. */
const std::vector<std::string> &allPrograms();

} // namespace rat::sim

#endif // RAT_SIM_WORKLOADS_HH
