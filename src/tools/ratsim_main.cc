/**
 * @file
 * ratsim — command-line driver for the Runahead Threads SMT simulator.
 *
 * Subcommands:
 *   ratsim run    [options]   single workload or group, human output
 *   ratsim report [options]   same run, structured JSON/CSV output
 *   ratsim sweep  [options]   declarative campaign over a config grid
 *                             with an optional on-disk result cache
 *   ratsim farm   [options]   the same campaign grid, sharded across
 *                             worker processes with a shared cache;
 *                             crash-safe and resumable
 *   ratsim verify [options]   determinism audit: one config across the
 *                             host-mode grid + save/restore leg, digest
 *                             streams compared, divergences bisected
 *
 * `ratsim --farm-worker` is the internal worker-process entry point
 * the farm coordinator fork/execs; it speaks length-prefixed JSON on
 * stdin/stdout and is not meant for interactive use.
 *
 * Bare `ratsim [options]` is kept as an alias of `ratsim run` for
 * backward compatibility.
 *
 * Examples:
 *   ratsim run --workload art,mcf --policy RaT
 *   ratsim run --group MEM2 --policy RaT --fairness
 *   ratsim report --workload art,mcf --policy RaT --json run.json
 *   ratsim sweep --policies ICOUNT,RaT --groups MEM2 --regs 128,320 \
 *                --cache .ratsim-cache --json sweep.json
 *   ratsim --list-programs
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/verify.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "obs/trace.hh"
#include "policy/factory.hh"
#include "report/serialize.hh"
#include "runahead/variant.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "sim/farm.hh"
#include "sim/metrics.hh"
#include "sim/sampled.hh"
#include "sim/simulator.hh"
#include "sim/workloads.hh"
#include "trace/profile.hh"

namespace {

using namespace rat;

void
usage()
{
    std::printf(
        "ratsim — Runahead Threads SMT simulator (HPCA 2008 reproduction)\n"
        "\n"
        "usage: ratsim [run|report|sweep|farm|verify] [options]\n"
        "\n"
        "run/report options:\n"
        "  --workload P1,P2[,P3,P4]  programs to co-run (default art,mcf)\n"
        "  --group NAME              run a whole Table 2 group instead\n"
        "                            (ILP2 MIX2 MEM2 ILP4 MIX4 MEM4)\n"
        "  --policy NAME             ICOUNT STALL FLUSH DCRA HillClimbing\n"
        "                            RaT RaT+DCRA MLP RR (default RaT)\n"
        "  --measure N               measured cycles (default 100000)\n"
        "  --warmup N                timed warm-up cycles (default 20000)\n"
        "  --prewarm N               functional warm-up insts (default 1M)\n"
        "  --seed N                  workload seed (default 1)\n"
        "  --regs N                  INT and FP renaming registers\n"
        "  --rob N                   shared reorder-buffer entries\n"
        "  --fairness                also compute Eq. 2 fairness\n"
        "  --ra-variant NAME         runahead variant: classic capped\n"
        "                            useless-filter (default classic)\n"
        "  --ra-cap N                capped variant: max episode cycles\n"
        "  --ra-filter-threshold N   useless-filter: useless episodes of\n"
        "                            a PC before it stops entering\n"
        "  --ra-filter-reprobe N     useless-filter: probe every Nth\n"
        "                            suppressed load (0 = never)\n"
        "  --no-fp-drop              execute FP work in runahead\n"
        "  --runahead-cache          enable the runahead cache\n"
        "  --ra-cache-lines N        runahead-cache lines per thread\n"
        "  --no-prefetch             Fig. 4 ablation: no runahead prefetch\n"
        "  --no-ra-fetch             Fig. 4 ablation: no fetch in runahead\n"
        "  --no-cycle-skip           tick every cycle (disable the\n"
        "                            bit-identical quiescence fast-forward)\n"
        "  --trace-out PATH          write a Chrome trace-event JSON of\n"
        "                            the measured window ('-' = stdout);\n"
        "                            load it in Perfetto / chrome://tracing\n"
        "  --trace-categories LIST   comma list of fetch,sched,mem,\n"
        "                            runahead,all (default all)\n"
        "  --sample-window N         record windowed telemetry every N\n"
        "                            cycles into the result (default off)\n"
        "  --digest-window N         record a deterministic state digest\n"
        "                            every N cycles into the result\n"
        "                            (default off; what verify compares)\n"
        "  --check-level LEVEL       runtime invariant audits: off\n"
        "                            sampled full (default off)\n"
        "  --check-interval N        cycles between sampled audits\n"
        "                            (default 64)\n"
        "  --sampled                 phase-sampled simulation: profile\n"
        "                            the instruction stream into phases,\n"
        "                            run one checkpointed sample per\n"
        "                            phase, extrapolate whole-run\n"
        "                            metrics (statistical; verify and\n"
        "                            the digest/trace flags refuse it)\n"
        "  --sample-phases N         phases / representative samples\n"
        "                            (default 4)\n"
        "  --phase-window N          instructions per profile window\n"
        "                            (default 2048)\n"
        "  --phase-span N            profiled windows past prewarm\n"
        "                            (default 64)\n"
        "  --sample-warmup N         detailed warm-up cycles per sample\n"
        "                            (default 1000)\n"
        "  --sample-measure N        measured cycles per sample\n"
        "                            (default 4000)\n"
        "  --json PATH               (report) write JSON ('-' = stdout)\n"
        "  --csv PATH                (report) write CSV ('-' = stdout)\n"
        "\n"
        "verify options (all run options, plus):\n"
        "  --mutate-at N             seed a single-bit state corruption\n"
        "                            N cycles into the measured window;\n"
        "                            verify must detect and bisect it\n"
        "                            (exit 1 on detection, 2 if missed)\n"
        "  --checkpoint-every N      save/restore leg: round-trip the\n"
        "                            engine episode checkpoints every N\n"
        "                            cycles (default 61)\n"
        "\n"
        "sweep options (comma-separated axes):\n"
        "  --policies A,B,...        techniques (default ICOUNT,RaT)\n"
        "  --groups G1,G2,...        Table 2 groups to sweep\n"
        "  --workloads W1;W2;...     explicit workloads, ';'-separated\n"
        "                            (default art,mcf when no --groups)\n"
        "  --ra-variant V1,V2,...    runahead-variant axis\n"
        "  --regs N1,N2,...          renaming-register axis\n"
        "  --rob N1,N2,...           ROB-size axis\n"
        "  --measure N1,N2,...       measured-window axis\n"
        "  --seeds N1,N2,...         seed axis\n"
        "  --warmup/--prewarm N      scalar warm-up settings\n"
        "  --cache DIR               on-disk result cache directory\n"
        "  --jobs N                  worker threads (default: hardware)\n"
        "  --json PATH / --csv PATH  structured output ('-' = stdout)\n"
        "  --no-cycle-skip           tick every cycle in all cells\n"
        "  --sample-window N         windowed telemetry in every cell\n"
        "  --sampled [...]           phase-sampled cells (all run-side\n"
        "                            sampling flags apply; each sample\n"
        "                            is its own schedulable cell and\n"
        "                            reports collapse to merged rows)\n"
        "\n"
        "farm options (all sweep options, plus):\n"
        "  --workers N               worker processes (default: hardware)\n"
        "  --shards N                job shards (default: 4x workers);\n"
        "                            idle workers steal straggler shards\n"
        "                            (use --cache to make the campaign\n"
        "                            resumable after a crash or kill -9)\n"
        "  --progress                live progress line on stderr (cells\n"
        "                            done/total, steals, deaths, ETA)\n"
        "  --job-timeout N           SIGKILL + requeue a worker whose\n"
        "                            cell produced no frame for N s\n"
        "                            (default 0 = watchdog off)\n"
        "  --max-retries N           requeue budget per cell; one more\n"
        "                            worker death quarantines the cell\n"
        "                            (default 2)\n"
        "  --no-respawn              do not refill dead worker slots\n"
        "                            (respawn with backoff is on by\n"
        "                            default)\n"
        "\n"
        "discovery:\n"
        "  --list-programs           print modelled SPEC2000 programs\n"
        "  --list-groups             print Table 2 workloads\n"
        "  --help                    this text\n");
}

/**
 * Handle a discovery/help flag in an option position (prints and
 * exits). Never called for option *values*: those are consumed by
 * next() before the parse loop sees them, so
 * `--workload --list-programs` still fails as a bad workload.
 */
void
handleDiscovery(const std::string &arg)
{
    if (arg == "--help" || arg == "-h") {
        usage();
        std::exit(0);
    }
    if (arg == "--list-programs") {
        for (const auto &name : trace::spec2000Names())
            std::printf("%s\n", name.c_str());
        std::exit(0);
    }
    if (arg == "--list-groups") {
        for (const sim::WorkloadGroup g : sim::allGroups()) {
            std::printf("%s:\n", sim::groupName(g));
            for (const sim::Workload &w : sim::workloadsOf(g))
                std::printf("  %s\n", w.name.c_str());
        }
        std::exit(0);
    }
}

core::PolicyKind
parsePolicy(const std::string &name)
{
    if (const auto kind = policy::parsePolicyKind(name))
        return *kind;
    fatal("unknown policy '%s' (try --help)", name.c_str());
}

runahead::RaVariant
parseVariant(const std::string &name)
{
    if (const auto variant = runahead::parseRaVariant(name))
        return *variant;
    fatal("unknown runahead variant '%s' (classic, capped, "
          "useless-filter)",
          name.c_str());
}

std::vector<std::string>
splitPrograms(const std::string &list)
{
    const std::vector<std::string> programs = splitList(list, ',');
    for (const std::string &name : programs) {
        if (!trace::isSpec2000(name))
            fatal("unknown program '%s' (try --list-programs)",
                  name.c_str());
    }
    if (programs.empty() || programs.size() > 4)
        fatal("workload needs 1..4 programs");
    return programs;
}

/** Split a ';'-separated list of comma-joined workloads. */
std::vector<sim::Workload>
splitWorkloads(const std::string &list)
{
    std::vector<sim::Workload> workloads;
    for (const std::string &item : splitList(list, ';'))
        workloads.push_back(
            sim::Workload::fromPrograms(splitPrograms(item)));
    return workloads;
}

/** Write @p text to @p path, with "-" meaning stdout. */
void
writeOutput(const std::string &path, const std::string &text,
            const char *what)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot write %s file '%s'", what, path.c_str());
    out << text;
    std::printf("wrote %s %s\n", what, path.c_str());
}

void
printRun(const sim::SimResult &r, bool with_fairness,
         sim::ExperimentRunner *runner,
         const sim::Workload *workload)
{
    std::printf("%-10s %8s %12s %9s %9s %10s %10s\n", "thread", "IPC",
                "committed", "L2 MPKI", "mispred%", "RA epis.",
                "RA cycles");
    for (const sim::ThreadResult &t : r.threads) {
        const double mp =
            t.core.branches
                ? 100.0 * static_cast<double>(t.core.branchMispredicts) /
                      static_cast<double>(t.core.branches)
                : 0.0;
        std::printf("%-10s %8.3f %12llu %9.2f %9.1f %10llu %10llu\n",
                    t.program.c_str(), t.ipc,
                    static_cast<unsigned long long>(t.core.committedInsts),
                    t.l2Mpki, mp,
                    static_cast<unsigned long long>(
                        t.core.runaheadEntries),
                    static_cast<unsigned long long>(
                        t.core.runaheadCycles));
    }
    std::printf("\nthroughput (Eq.1): %.3f   total IPC: %.3f   ED^2: %.3g\n",
                r.throughputEq1(), r.totalIpc(), sim::ed2(r));
    if (with_fairness && runner && workload) {
        const auto base = runner->baselinesFor(*workload);
        std::printf("fairness (Eq.2):   %.3f\n", sim::fairness(r, base));
    }
}

/** Options shared by the run and report subcommands. */
struct RunOptions {
    std::string workloadList = "art,mcf";
    std::string groupName;
    std::string policyName = "RaT";
    sim::SimConfig cfg;
    bool withFairness = false;
    /** A --sample-* / --phase-* tuning flag was given (they require
     * --sampled; validateSampled diagnoses the orphan case). */
    bool sampledParams = false;
    std::string jsonPath; ///< report only
    std::string csvPath;  ///< report only
};

/**
 * The one home for cross-flag coherence of sampled simulation: every
 * subcommand (run, report, verify, sweep, farm) funnels its parsed
 * config through here, so an incoherent combination fails the same
 * way everywhere instead of half-working in one command and crashing
 * in another.
 */
void
validateSampled(const sim::SimConfig &cfg, bool sampled_params_given,
                bool group_or_fairness, bool verify_mode)
{
    if (!cfg.sampled) {
        if (sampled_params_given)
            fatal("--sample-phases/--phase-window/--phase-span/"
                  "--sample-warmup/--sample-measure tune sampled "
                  "simulation and need --sampled");
        return;
    }
    if (verify_mode)
        fatal("verify audits exact, replayable simulation; --sampled "
              "is a statistical estimate and cannot be "
              "digest-verified (drop --sampled)");
    if (group_or_fairness)
        fatal("--sampled runs a single workload; --group/--fairness "
              "need whole-run baselines (drop them or drop "
              "--sampled)");
    if (cfg.digestWindow)
        fatal("--digest-window streams exact-run state digests; they "
              "are meaningless across sampled fast-forwards (drop it "
              "or drop --sampled)");
    if (cfg.sampleWindow)
        fatal("--sample-window telemetry covers one contiguous "
              "measured window; sampled runs have none (drop it or "
              "drop --sampled)");
    if (!cfg.traceOut.empty())
        fatal("--trace-out traces one contiguous measured window; "
              "sampled runs have none (drop it or drop --sampled)");
    if (!cfg.samplePhases)
        fatal("--sample-phases needs at least one phase");
    if (!cfg.phaseWindow)
        fatal("--phase-window needs a non-zero instruction window");
    if (!cfg.phaseSpanWindows)
        fatal("--phase-span needs at least one profiled window");
    if (!cfg.sampleMeasureCycles)
        fatal("--sample-measure needs a non-zero measured window");
}

/**
 * Parse one run/report/common option at @p args[i]; returns false when
 * the option is unknown. @p i advances past consumed values.
 */
bool
parseRunOption(const std::vector<std::string> &args, std::size_t &i,
               RunOptions &opt, bool structured)
{
    const std::string &arg = args[i];
    auto next = [&]() -> const char * {
        if (i + 1 >= args.size())
            fatal("option %s needs a value", arg.c_str());
        return args[++i].c_str();
    };
    handleDiscovery(arg); // exits on --help / --list-*
    if (arg == "--workload") {
        opt.workloadList = next();
    } else if (arg == "--group") {
        opt.groupName = next();
    } else if (arg == "--policy") {
        opt.policyName = next();
    } else if (arg == "--measure") {
        opt.cfg.measureCycles = parseU64(next(), "--measure");
    } else if (arg == "--warmup") {
        opt.cfg.warmupCycles = parseU64(next(), "--warmup");
    } else if (arg == "--prewarm") {
        opt.cfg.prewarmInsts = parseU64(next(), "--prewarm");
    } else if (arg == "--seed") {
        opt.cfg.seed = parseU64(next(), "--seed");
    } else if (arg == "--regs") {
        const unsigned regs = parseUnsigned(next(), "--regs");
        opt.cfg.core.intRegs = regs;
        opt.cfg.core.fpRegs = regs;
    } else if (arg == "--rob") {
        opt.cfg.core.robEntries = parseUnsigned(next(), "--rob");
    } else if (arg == "--fairness") {
        opt.withFairness = true;
    } else if (arg == "--ra-variant") {
        opt.cfg.core.rat.variant = parseVariant(next());
    } else if (arg == "--ra-cap") {
        opt.cfg.core.rat.cappedMaxCycles =
            parseUnsigned(next(), "--ra-cap");
    } else if (arg == "--ra-filter-threshold") {
        opt.cfg.core.rat.uselessFilterThreshold =
            parseUnsigned(next(), "--ra-filter-threshold");
    } else if (arg == "--ra-filter-reprobe") {
        opt.cfg.core.rat.uselessFilterReprobe =
            parseUnsigned(next(), "--ra-filter-reprobe");
    } else if (arg == "--ra-cache-lines") {
        opt.cfg.core.rat.runaheadCacheLines =
            parseUnsigned(next(), "--ra-cache-lines");
    } else if (arg == "--no-fp-drop") {
        opt.cfg.core.rat.dropFpInRunahead = false;
    } else if (arg == "--runahead-cache") {
        opt.cfg.core.rat.useRunaheadCache = true;
    } else if (arg == "--no-prefetch") {
        opt.cfg.core.rat.disablePrefetch = true;
    } else if (arg == "--no-ra-fetch") {
        opt.cfg.core.rat.noFetchInRunahead = true;
    } else if (arg == "--no-cycle-skip") {
        opt.cfg.core.cycleSkipping = false;
    } else if (arg == "--trace-out") {
        opt.cfg.traceOut = next();
    } else if (arg == "--trace-categories") {
        const char *list = next();
        if (!obs::parseTraceCategories(list, opt.cfg.traceCategories))
            fatal("--trace-categories: unknown category in '%s' "
                  "(expected %s)",
                  list, obs::traceCategoryNames());
    } else if (arg == "--sample-window") {
        opt.cfg.sampleWindow = parseU64(next(), "--sample-window");
    } else if (arg == "--digest-window") {
        opt.cfg.digestWindow = parseU64(next(), "--digest-window");
    } else if (arg == "--check-level") {
        const std::string level = next();
        if (level == "off")
            opt.cfg.core.checkLevel = core::CheckLevel::Off;
        else if (level == "sampled")
            opt.cfg.core.checkLevel = core::CheckLevel::Sampled;
        else if (level == "full")
            opt.cfg.core.checkLevel = core::CheckLevel::Full;
        else
            fatal("--check-level: unknown level '%s' (off, sampled, "
                  "full)",
                  level.c_str());
    } else if (arg == "--check-interval") {
        opt.cfg.core.checkInterval =
            parseUnsigned(next(), "--check-interval");
    } else if (arg == "--sampled") {
        opt.cfg.sampled = true;
    } else if (arg == "--sample-phases") {
        opt.cfg.samplePhases = parseUnsigned(next(), "--sample-phases");
        opt.sampledParams = true;
    } else if (arg == "--phase-window") {
        opt.cfg.phaseWindow = parseU64(next(), "--phase-window");
        opt.sampledParams = true;
    } else if (arg == "--phase-span") {
        opt.cfg.phaseSpanWindows =
            parseUnsigned(next(), "--phase-span");
        opt.sampledParams = true;
    } else if (arg == "--sample-warmup") {
        opt.cfg.sampleWarmupCycles =
            parseU64(next(), "--sample-warmup");
        opt.sampledParams = true;
    } else if (arg == "--sample-measure") {
        opt.cfg.sampleMeasureCycles =
            parseU64(next(), "--sample-measure");
        opt.sampledParams = true;
    } else if (structured && arg == "--json") {
        opt.jsonPath = next();
    } else if (structured && arg == "--csv") {
        opt.csvPath = next();
    } else {
        return false;
    }
    return true;
}

/** `ratsim run` / legacy bare invocation / `ratsim report`. */
int
runCommand(const std::vector<std::string> &args, bool structured)
{
    RunOptions opt;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (!parseRunOption(args, i, opt, structured)) {
            usage();
            fatal("unknown option '%s'", args[i].c_str());
        }
    }
    opt.cfg.core.policy = parsePolicy(opt.policyName);
    validateSampled(opt.cfg, opt.sampledParams,
                    !opt.groupName.empty() || opt.withFairness,
                    /*verify_mode=*/false);
    // Structured output defaults to JSON on stdout.
    if (structured && opt.jsonPath.empty() && opt.csvPath.empty())
        opt.jsonPath = "-";

    if (!opt.groupName.empty()) {
        const auto group = sim::parseGroup(opt.groupName);
        if (!group)
            fatal("unknown group '%s'", opt.groupName.c_str());
        sim::ExperimentRunner runner(opt.cfg);
        const sim::TechniqueSpec tech{opt.policyName,
                                      opt.cfg.core.policy,
                                      opt.cfg.core.rat};
        const sim::GroupMetrics gm = runner.runGroup(*group, tech);
        if (structured) {
            if (!opt.jsonPath.empty()) {
                report::Json j = report::Json::object();
                j["schema"] = report::Json("ratsim-group-v1");
                // Effective config: every run in the group uses the
                // group's thread count, not the base default.
                j["config"] = report::toJson(
                    runner.configFor(tech, sim::groupThreads(*group)));
                j["groupMetrics"] = report::toJson(gm);
                writeOutput(opt.jsonPath, j.dump(2), "JSON");
            }
            if (!opt.csvPath.empty())
                writeOutput(opt.csvPath,
                            report::groupMetricsCsv(gm).dump(), "CSV");
            return 0;
        }
        std::printf("%s under %s:\n", opt.groupName.c_str(),
                    opt.policyName.c_str());
        const auto &workloads = sim::workloadsOf(*group);
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            std::printf("  %-28s throughput %.3f\n",
                        workloads[i].name.c_str(),
                        sim::throughput(gm.results[i]));
        }
        std::printf("group mean: throughput %.3f  fairness %.3f  "
                    "ED^2 %.3g\n",
                    gm.meanThroughput, gm.meanFairness, gm.meanEd2);
        return 0;
    }

    const sim::Workload w =
        sim::Workload::fromPrograms(splitPrograms(opt.workloadList));
    sim::ExperimentRunner runner(opt.cfg);
    const sim::TechniqueSpec tech{opt.policyName, opt.cfg.core.policy,
                                  opt.cfg.core.rat};
    // Sampled runs dispatch through the same cell runner the
    // campaign/farm use: profile, checkpoint, per-phase samples,
    // merged extrapolation. Exact runs keep the existing path
    // bit-for-bit.
    const sim::SimResult r =
        opt.cfg.sampled
            ? sim::simulateCell(
                  runner.configFor(tech, static_cast<unsigned>(
                                             w.programs.size())),
                  w.programs)
            : runner.runWorkload(w, tech);

    if (structured) {
        if (!opt.jsonPath.empty()) {
            report::Json j = report::Json::object();
            j["schema"] = report::Json("ratsim-run-v1");
            j["workload"] = report::Json(w.name);
            j["technique"] = report::Json(opt.policyName);
            j["config"] = report::toJson(
                runner.configFor(tech,
                                 static_cast<unsigned>(
                                     w.programs.size())));
            j["metrics"] = report::resultMetricsJson(r);
            // Engine stats ride only on this always-fresh path; they
            // are not part of toJson(SimResult) (see serialize.hh).
            j["engine"] = report::engineStatsJson(r.engine);
            if (opt.withFairness) {
                j["fairness"] = report::Json(
                    sim::fairness(r, runner.baselinesFor(w)));
            }
            j["result"] = report::toJson(r);
            writeOutput(opt.jsonPath, j.dump(2), "JSON");
        }
        if (!opt.csvPath.empty())
            writeOutput(opt.csvPath, report::threadResultsCsv(r).dump(),
                        "CSV");
        return 0;
    }

    std::printf("workload %s under %s (%llu measured cycles%s)\n\n",
                w.name.c_str(), opt.policyName.c_str(),
                static_cast<unsigned long long>(opt.cfg.measureCycles),
                opt.cfg.sampled ? ", sampled" : "");
    printRun(r, opt.withFairness, &runner, &w);
    if (r.sampled.enabled && r.sampled.merged)
        std::printf("sampled: %u phases over %llu profiled windows "
                    "(est. ipc error %.2f%%, hmean error %.2f%%)\n",
                    r.sampled.phases,
                    static_cast<unsigned long long>(
                        r.sampled.totalWindows),
                    100.0 * r.sampled.ipcError,
                    100.0 * r.sampled.hmeanError);
    return 0;
}

/**
 * `ratsim verify`: run one configuration across the host-side mode
 * grid (cycle-skip x scheduler x ra-variant) plus a save/restore leg
 * and compare state-digest streams; bisect any divergence to the
 * first differing cycle. Exit 0 = consistent; 1 = divergence found
 * (including a deliberately seeded one); 2 = a seeded mutation went
 * undetected (the digest itself is broken).
 */
int
verifyCommand(const std::vector<std::string> &args)
{
    RunOptions opt;
    check::VerifyOptions vopt;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= args.size())
                fatal("option %s needs a value", arg.c_str());
            return args[++i].c_str();
        };
        if (arg == "--mutate-at") {
            vopt.mutateAt = parseU64(next(), "--mutate-at");
        } else if (arg == "--checkpoint-every") {
            vopt.checkpointEvery =
                parseU64(next(), "--checkpoint-every");
            if (!vopt.checkpointEvery)
                fatal("--checkpoint-every needs a non-zero interval");
        } else if (!parseRunOption(args, i, opt, false)) {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (!opt.groupName.empty())
        fatal("verify audits one workload (--workload), not a group");
    validateSampled(opt.cfg, opt.sampledParams,
                    /*group_or_fairness=*/false, /*verify_mode=*/true);
    opt.cfg.core.policy = parsePolicy(opt.policyName);
    vopt.base = opt.cfg;
    vopt.programs = splitPrograms(opt.workloadList);
    if (opt.cfg.digestWindow)
        vopt.digestWindow = opt.cfg.digestWindow;
    vopt.base.digestWindow = 0; // per-leg windows are set by the driver

    std::printf("verify: workload %s under %s (%llu measured cycles, "
                "digest window %llu%s)\n",
                opt.workloadList.c_str(), opt.policyName.c_str(),
                static_cast<unsigned long long>(
                    vopt.base.measureCycles),
                static_cast<unsigned long long>(vopt.digestWindow),
                vopt.mutateAt ? ", seeded mutation" : "");
    const check::VerifyOutcome outcome = check::runVerify(vopt);

    int exit_code = 0;
    if (!outcome.gridConsistent) {
        for (const check::Divergence &d : outcome.divergences)
            std::printf("%s", check::formatDivergence(d).c_str());
        std::printf("verify: FAILED — %zu of %u legs diverged from "
                    "the reference\n",
                    outcome.divergences.size(), outcome.legsCompared);
        exit_code = 1;
    } else {
        std::printf("verify: mode grid consistent (%u legs, identical "
                    "digest streams)\n",
                    outcome.legsCompared);
    }
    if (vopt.mutateAt) {
        if (outcome.mutationDetected) {
            std::printf("%s",
                        check::formatDivergence(outcome.mutation)
                            .c_str());
            std::printf("verify: seeded mutation detected and "
                        "bisected to cycle %llu\n",
                        static_cast<unsigned long long>(
                            outcome.mutation.cycle));
            exit_code = exit_code ? exit_code : 1;
        } else {
            std::printf("verify: FAILED — seeded mutation at cycle "
                        "%llu was NOT detected\n",
                        static_cast<unsigned long long>(
                            vopt.mutateAt));
            exit_code = 2;
        }
    }
    return exit_code;
}

/**
 * `ratsim sweep` (in-process worker threads) and `ratsim farm`
 * (sharded worker processes): the same declarative campaign grid; a
 * completed farm produces byte-identical JSON/CSV to the sweep.
 */
int
sweepCommand(const std::vector<std::string> &args, bool farm_mode)
{
    sim::CampaignSpec spec;
    sim::FarmOptions farm_options;
    std::string policies = "ICOUNT,RaT";
    std::string groups;
    std::string workloads;
    bool groups_given = false;
    bool workloads_given = false;
    std::string json_path, csv_path;
    core::RatConfig rat_flags;
    bool sampled_params = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= args.size())
                fatal("option %s needs a value", arg.c_str());
            return args[++i].c_str();
        };
        auto unsignedAxis = [](const char *text, const char *what) {
            std::vector<unsigned> values;
            for (const std::string &item : splitList(text, ','))
                values.push_back(parseUnsigned(item.c_str(), what));
            if (values.empty())
                fatal("%s: expected a comma-separated list of unsigned "
                      "integers, got '%s'",
                      what, text);
            return values;
        };
        handleDiscovery(arg); // exits on --help / --list-*
        if (arg == "--policies") {
            policies = next();
        } else if (arg == "--groups") {
            groups = next();
            groups_given = true;
        } else if (arg == "--workloads") {
            workloads = next();
            workloads_given = true;
        } else if (arg == "--regs") {
            spec.regsAxis = unsignedAxis(next(), "--regs");
        } else if (arg == "--rob") {
            spec.robAxis = unsignedAxis(next(), "--rob");
        } else if (arg == "--measure") {
            spec.measureAxis = parseU64List(next(), "--measure");
        } else if (arg == "--seeds") {
            spec.seedAxis = parseU64List(next(), "--seeds");
        } else if (arg == "--warmup") {
            spec.base.warmupCycles = parseU64(next(), "--warmup");
        } else if (arg == "--prewarm") {
            spec.base.prewarmInsts = parseU64(next(), "--prewarm");
        } else if (arg == "--ra-variant") {
            for (const std::string &name : splitList(next(), ','))
                spec.raVariantAxis.push_back(parseVariant(name));
            if (spec.raVariantAxis.empty())
                fatal("--ra-variant: expected a comma-separated list of "
                      "variants");
        } else if (arg == "--ra-cap") {
            rat_flags.cappedMaxCycles = parseUnsigned(next(), "--ra-cap");
        } else if (arg == "--ra-filter-threshold") {
            rat_flags.uselessFilterThreshold =
                parseUnsigned(next(), "--ra-filter-threshold");
        } else if (arg == "--ra-filter-reprobe") {
            rat_flags.uselessFilterReprobe =
                parseUnsigned(next(), "--ra-filter-reprobe");
        } else if (arg == "--ra-cache-lines") {
            rat_flags.runaheadCacheLines =
                parseUnsigned(next(), "--ra-cache-lines");
        } else if (arg == "--cache") {
            spec.cacheDir = next();
        } else if (arg == "--jobs") {
            spec.parallelism = parseUnsigned(next(), "--jobs");
        } else if (farm_mode && arg == "--workers") {
            farm_options.workers = parseUnsigned(next(), "--workers");
        } else if (farm_mode && arg == "--shards") {
            farm_options.shards = parseUnsigned(next(), "--shards");
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--no-fp-drop") {
            rat_flags.dropFpInRunahead = false;
        } else if (arg == "--runahead-cache") {
            rat_flags.useRunaheadCache = true;
        } else if (arg == "--no-prefetch") {
            rat_flags.disablePrefetch = true;
        } else if (arg == "--no-ra-fetch") {
            rat_flags.noFetchInRunahead = true;
        } else if (arg == "--no-cycle-skip") {
            spec.base.core.cycleSkipping = false;
        } else if (arg == "--sample-window") {
            spec.base.sampleWindow =
                parseU64(next(), "--sample-window");
        } else if (arg == "--sampled") {
            spec.base.sampled = true;
        } else if (arg == "--sample-phases") {
            spec.base.samplePhases =
                parseUnsigned(next(), "--sample-phases");
            sampled_params = true;
        } else if (arg == "--phase-window") {
            spec.base.phaseWindow = parseU64(next(), "--phase-window");
            sampled_params = true;
        } else if (arg == "--phase-span") {
            spec.base.phaseSpanWindows =
                parseUnsigned(next(), "--phase-span");
            sampled_params = true;
        } else if (arg == "--sample-warmup") {
            spec.base.sampleWarmupCycles =
                parseU64(next(), "--sample-warmup");
            sampled_params = true;
        } else if (arg == "--sample-measure") {
            spec.base.sampleMeasureCycles =
                parseU64(next(), "--sample-measure");
            sampled_params = true;
        } else if (farm_mode && arg == "--progress") {
            farm_options.progress = true;
        } else if (farm_mode && arg == "--job-timeout") {
            farm_options.jobTimeoutSec =
                parseUnsigned(next(), "--job-timeout");
        } else if (farm_mode && arg == "--max-retries") {
            farm_options.maxRetries =
                parseUnsigned(next(), "--max-retries");
        } else if (farm_mode && arg == "--no-respawn") {
            farm_options.respawn = false;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    validateSampled(spec.base, sampled_params,
                    /*group_or_fairness=*/false, /*verify_mode=*/false);

    spec.base.core.rat = rat_flags;
    for (const std::string &name : splitList(policies, ','))
        spec.techniques.push_back({name, parsePolicy(name), rat_flags});
    if (spec.techniques.empty())
        fatal("--policies needs at least one technique");

    for (const std::string &name : splitList(groups, ',')) {
        const auto group = sim::parseGroup(name);
        if (!group)
            fatal("unknown group '%s'", name.c_str());
        spec.groups.push_back(*group);
    }
    if (groups_given && spec.groups.empty())
        fatal("--groups: expected at least one group name, got '%s'",
              groups.c_str());
    if (workloads_given) {
        spec.workloads = splitWorkloads(workloads);
        if (spec.workloads.empty())
            fatal("--workloads: expected at least one workload, "
                  "got '%s'",
                  workloads.c_str());
    }
    // No explicit grid: default to the paper's headline pair.
    if (spec.groups.empty() && spec.workloads.empty())
        spec.workloads = splitWorkloads("art,mcf");

    sim::CampaignOutcome outcome;
    if (farm_mode) {
        const sim::FarmOutcome farm = sim::runFarm(spec, farm_options);
        outcome = std::move(farm.campaign);
        std::printf("farm: %zu cells (%llu simulated, %llu from cache, "
                    "%llu failed stores)\n",
                    outcome.cells.size(),
                    static_cast<unsigned long long>(outcome.simulated),
                    static_cast<unsigned long long>(outcome.cacheHits),
                    static_cast<unsigned long long>(
                        outcome.failedStores));
        std::printf("farm: %u workers, %u shards, %llu worker deaths, "
                    "%llu requeued, %llu stolen\n",
                    farm.workersSpawned, farm.shardCount,
                    static_cast<unsigned long long>(farm.workerDeaths),
                    static_cast<unsigned long long>(farm.jobsRequeued),
                    static_cast<unsigned long long>(farm.jobsStolen));
        if (farm.workersRespawned || farm.workersTimedOut ||
            !farm.quarantinedCells.empty() ||
            outcome.cacheQuarantined || farm.inProcessFallback)
            std::printf("farm: %llu respawned, %llu timed out, "
                        "%zu quarantined cells, %llu quarantined "
                        "cache files%s\n",
                        static_cast<unsigned long long>(
                            farm.workersRespawned),
                        static_cast<unsigned long long>(
                            farm.workersTimedOut),
                        farm.quarantinedCells.size(),
                        static_cast<unsigned long long>(
                            outcome.cacheQuarantined),
                        farm.inProcessFallback
                            ? ", in-process fallback"
                            : "");
        for (const std::string &key : farm.quarantinedCells)
            warn("farm: quarantined cell %s", key.c_str());
        if (!farm.completed) {
            warn("farm did not complete: %s", farm.error.c_str());
            // Completed cells are durable in the cache; a re-run of
            // the same command resumes from them. No report files:
            // partial grids must never masquerade as finished ones.
            return 1;
        }
    } else {
        outcome = sim::runCampaign(spec);
        std::printf("sweep: %zu cells (%llu simulated, %llu from "
                    "cache, %llu failed stores)\n",
                    outcome.cells.size(),
                    static_cast<unsigned long long>(outcome.simulated),
                    static_cast<unsigned long long>(outcome.cacheHits),
                    static_cast<unsigned long long>(
                        outcome.failedStores));
    }
    // Sampled campaigns schedule one cell per representative sample;
    // reporting collapses them back into one extrapolated row per
    // workload coordinate. Exact campaigns pass through unchanged.
    const sim::CampaignOutcome report_outcome =
        sim::mergeSampledOutcome(outcome);
    std::printf("%-14s %-6s %-28s %-14s %5s %5s %10s %8s\n",
                "technique", "group", "workload", "ra-variant", "regs",
                "rob", "seed", "thrpt");
    for (const sim::CampaignCell &cell : report_outcome.cells) {
        std::printf("%-14s %-6s %-28s %-14s %5u %5u %10llu %8.3f\n",
                    cell.technique.c_str(), cell.group.c_str(),
                    cell.workload.c_str(), cell.raVariant.c_str(),
                    cell.regs, cell.rob,
                    static_cast<unsigned long long>(cell.seed),
                    sim::throughput(cell.result));
    }

    if (!json_path.empty())
        writeOutput(json_path,
                    sim::campaignJson(report_outcome, spec).dump(2),
                    "JSON");
    if (!csv_path.empty())
        writeOutput(csv_path, sim::campaignCsv(report_outcome).dump(),
                    "CSV");
    return 0;
}

/**
 * `ratsim --farm-worker [--cache DIR] [--worker-id N]
 * [--test-kill-after N]`: the exec target of the farm coordinator.
 */
int
farmWorkerCommand(const std::vector<std::string> &args)
{
    std::string cache_dir;
    std::uint64_t kill_after = 0;
    unsigned worker_id = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= args.size())
                fatal("option %s needs a value", arg.c_str());
            return args[++i].c_str();
        };
        if (arg == "--cache")
            cache_dir = next();
        else if (arg == "--worker-id")
            worker_id = parseUnsigned(next(), "--worker-id");
        else if (arg == "--test-kill-after")
            kill_after = parseU64(next(), "--test-kill-after");
        else
            fatal("farm worker: unknown option '%s'", arg.c_str());
    }
    return sim::farmWorkerMain(cache_dir, worker_id, kill_after);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);

    if (!args.empty() && args[0] == "run")
        return runCommand({args.begin() + 1, args.end()}, false);
    if (!args.empty() && args[0] == "report")
        return runCommand({args.begin() + 1, args.end()}, true);
    if (!args.empty() && args[0] == "sweep")
        return sweepCommand({args.begin() + 1, args.end()}, false);
    if (!args.empty() && args[0] == "farm")
        return sweepCommand({args.begin() + 1, args.end()}, true);
    if (!args.empty() && args[0] == "verify")
        return verifyCommand({args.begin() + 1, args.end()});
    if (!args.empty() && args[0] == "--farm-worker")
        return farmWorkerCommand({args.begin() + 1, args.end()});
    if (!args.empty() && !args[0].empty() && args[0][0] != '-') {
        usage();
        fatal("unknown subcommand '%s'", args[0].c_str());
    }
    // Legacy: bare options behave like `ratsim run`.
    return runCommand(args, false);
}
