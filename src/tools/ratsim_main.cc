/**
 * @file
 * ratsim — command-line driver for the Runahead Threads SMT simulator.
 *
 * Examples:
 *   ratsim --workload art,mcf --policy RaT
 *   ratsim --workload art,gzip --policy FLUSH --measure 200000
 *   ratsim --group MEM2 --policy RaT --fairness
 *   ratsim --workload swim,mcf --policy RaT --regs 64 --runahead-cache
 *   ratsim --list-programs
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "policy/factory.hh"
#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"
#include "sim/workloads.hh"
#include "trace/profile.hh"

namespace {

using namespace rat;

void
usage()
{
    std::printf(
        "ratsim — Runahead Threads SMT simulator (HPCA 2008 reproduction)\n"
        "\n"
        "usage: ratsim [options]\n"
        "  --workload P1,P2[,P3,P4]  programs to co-run (default art,mcf)\n"
        "  --group NAME              run a whole Table 2 group instead\n"
        "                            (ILP2 MIX2 MEM2 ILP4 MIX4 MEM4)\n"
        "  --policy NAME             ICOUNT STALL FLUSH DCRA HillClimbing\n"
        "                            RaT RaT+DCRA MLP RR (default RaT)\n"
        "  --measure N               measured cycles (default 100000)\n"
        "  --warmup N                timed warm-up cycles (default 20000)\n"
        "  --prewarm N               functional warm-up insts (default 1M)\n"
        "  --seed N                  workload seed (default 1)\n"
        "  --regs N                  INT and FP renaming registers\n"
        "  --rob N                   shared reorder-buffer entries\n"
        "  --fairness                also compute Eq. 2 fairness\n"
        "  --no-fp-drop              execute FP work in runahead\n"
        "  --runahead-cache          enable the runahead cache\n"
        "  --no-prefetch             Fig. 4 ablation: no runahead prefetch\n"
        "  --no-ra-fetch             Fig. 4 ablation: no fetch in runahead\n"
        "  --list-programs           print modelled SPEC2000 programs\n"
        "  --list-groups             print Table 2 workloads\n"
        "  --help                    this text\n");
}

core::PolicyKind
parsePolicy(const std::string &name)
{
    if (const auto kind = policy::parsePolicyKind(name))
        return *kind;
    fatal("unknown policy '%s' (try --help)", name.c_str());
}

std::vector<std::string>
splitPrograms(const std::string &list)
{
    std::vector<std::string> programs;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!name.empty()) {
            if (!trace::isSpec2000(name))
                fatal("unknown program '%s' (try --list-programs)",
                      name.c_str());
            programs.push_back(name);
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (programs.empty() || programs.size() > 4)
        fatal("workload needs 1..4 programs");
    return programs;
}

void
printRun(const sim::SimResult &r, bool with_fairness,
         sim::ExperimentRunner *runner,
         const sim::Workload *workload)
{
    std::printf("%-10s %8s %12s %9s %9s %10s %10s\n", "thread", "IPC",
                "committed", "L2 MPKI", "mispred%", "RA epis.",
                "RA cycles");
    for (const sim::ThreadResult &t : r.threads) {
        const double mp =
            t.core.branches
                ? 100.0 * static_cast<double>(t.core.branchMispredicts) /
                      static_cast<double>(t.core.branches)
                : 0.0;
        std::printf("%-10s %8.3f %12llu %9.2f %9.1f %10llu %10llu\n",
                    t.program.c_str(), t.ipc,
                    static_cast<unsigned long long>(t.core.committedInsts),
                    t.l2Mpki, mp,
                    static_cast<unsigned long long>(
                        t.core.runaheadEntries),
                    static_cast<unsigned long long>(
                        t.core.runaheadCycles));
    }
    std::printf("\nthroughput (Eq.1): %.3f   total IPC: %.3f   ED^2: %.3g\n",
                r.throughputEq1(), r.totalIpc(), sim::ed2(r));
    if (with_fairness && runner && workload) {
        const auto base = runner->baselinesFor(*workload);
        std::printf("fairness (Eq.2):   %.3f\n", sim::fairness(r, base));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_list = "art,mcf";
    std::string group_name;
    std::string policy_name = "RaT";
    sim::SimConfig cfg;
    bool with_fairness = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-programs") {
            for (const auto &name : trace::spec2000Names())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--list-groups") {
            for (const sim::WorkloadGroup g : sim::allGroups()) {
                std::printf("%s:\n", sim::groupName(g));
                for (const sim::Workload &w : sim::workloadsOf(g))
                    std::printf("  %s\n", w.name.c_str());
            }
            return 0;
        } else if (arg == "--workload") {
            workload_list = next();
        } else if (arg == "--group") {
            group_name = next();
        } else if (arg == "--policy") {
            policy_name = next();
        } else if (arg == "--measure") {
            cfg.measureCycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            cfg.warmupCycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--prewarm") {
            cfg.prewarmInsts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--regs") {
            const unsigned regs =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
            cfg.core.intRegs = regs;
            cfg.core.fpRegs = regs;
        } else if (arg == "--rob") {
            cfg.core.robEntries =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--fairness") {
            with_fairness = true;
        } else if (arg == "--no-fp-drop") {
            cfg.core.rat.dropFpInRunahead = false;
        } else if (arg == "--runahead-cache") {
            cfg.core.rat.useRunaheadCache = true;
        } else if (arg == "--no-prefetch") {
            cfg.core.rat.disablePrefetch = true;
        } else if (arg == "--no-ra-fetch") {
            cfg.core.rat.noFetchInRunahead = true;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    cfg.core.policy = parsePolicy(policy_name);

    if (!group_name.empty()) {
        const sim::WorkloadGroup *found = nullptr;
        for (const sim::WorkloadGroup &g : sim::allGroups()) {
            if (group_name == sim::groupName(g))
                found = &g;
        }
        if (!found)
            fatal("unknown group '%s'", group_name.c_str());
        sim::ExperimentRunner runner(cfg);
        const sim::TechniqueSpec tech{policy_name, cfg.core.policy,
                                      cfg.core.rat};
        const sim::GroupMetrics gm = runner.runGroup(*found, tech);
        std::printf("%s under %s:\n", group_name.c_str(),
                    policy_name.c_str());
        const auto &workloads = sim::workloadsOf(*found);
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            std::printf("  %-28s throughput %.3f\n",
                        workloads[i].name.c_str(),
                        sim::throughput(gm.results[i]));
        }
        std::printf("group mean: throughput %.3f  fairness %.3f  "
                    "ED^2 %.3g\n",
                    gm.meanThroughput, gm.meanFairness, gm.meanEd2);
        return 0;
    }

    const auto programs = splitPrograms(workload_list);
    sim::Workload w;
    w.programs = programs;
    for (const auto &p : programs)
        w.name += (w.name.empty() ? "" : ",") + p;

    std::printf("workload %s under %s (%llu measured cycles)\n\n",
                w.name.c_str(), policy_name.c_str(),
                static_cast<unsigned long long>(cfg.measureCycles));
    sim::ExperimentRunner runner(cfg);
    const sim::TechniqueSpec tech{policy_name, cfg.core.policy,
                                  cfg.core.rat};
    const sim::SimResult r = runner.runWorkload(w, tech);
    printRun(r, with_fairness, &runner, &w);
    return 0;
}
