#include "trace/generator.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rat::trace {

namespace {

/** Convert a 64-bit hash to a uniform double in [0, 1). */
double
toUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Bounded hash draw in [0, bound). */
std::uint64_t
bounded(std::uint64_t h, std::uint64_t bound)
{
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(h) * bound) >> 64);
}

/** Domain-separated per-index hash. */
std::uint64_t
draw(std::uint64_t seed, InstSeq idx, std::uint64_t salt)
{
    return splitmix64(seed ^ splitmix64(idx * 0x9e3779b97f4a7c15ULL + salt));
}

// Salt constants for the independent random draws of one instruction.
enum Salt : std::uint64_t {
    kSaltOp = 0x01,
    kSaltAddrMix = 0x02,
    kSaltAddrOff = 0x03,
    kSaltDep1 = 0x04,
    kSaltDep2 = 0x05,
    kSaltBranch = 0x06,
    kSaltFpMem = 0x07,
    kSaltSyncKind = 0x08,
    kSaltChase = 0x09,
    kSaltPhase = 0x0A,
};

} // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               std::uint64_t seed, Addr base)
    : profile_(&profile), seed_(splitmix64(seed ^ 0xabcdef12345ULL)),
      base_(base)
{
    const auto &p = profile;
    RAT_ASSERT(p.codeBytes >= 4096, "code footprint too small");

    // Lay out the private address space: disjoint, page-aligned regions.
    Addr cursor = base_;
    auto carve = [&cursor](std::uint64_t bytes) {
        const Addr r = cursor;
        cursor += (bytes + 0xfff) & ~Addr{0xfff};
        cursor += 0x10000; // guard gap
        return r;
    };
    codeBase_ = carve(p.codeBytes);
    hotBase_ = carve(p.hotBytes);
    warmBase_ = carve(p.warmBytes);
    streamBase_ = carve(p.coldBytes);
    coldBase_ = carve(p.coldBytes);
    chaseBase_ = carve(p.chaseBytes);

    // Op-class CDF. Anything left over is integer ALU work.
    double c = 0.0;
    cLoad_ = (c += p.fLoad);
    cStore_ = (c += p.fStore);
    cBranch_ = (c += p.fBranch);
    cCall_ = (c += p.fCall);
    cReturn_ = (c += p.fReturn);
    cFpAdd_ = (c += p.fFpAdd);
    cFpMul_ = (c += p.fFpMul);
    cFpDiv_ = (c += p.fFpDiv);
    cIntMul_ = (c += p.fIntMul);
    cIntDiv_ = (c += p.fIntDiv);
    cSync_ = (c += p.fSync);
    if (c > 1.0)
        fatal("profile '%s': instruction mix fractions sum to %.3f > 1",
              p.name.c_str(), c);

    codeWords_ = p.codeBytes / 4;
    depSpread_ = std::max(
        1u, static_cast<unsigned>(2.0 * (p.meanDepDistance - 1.0) + 0.5));
}

OpClass
TraceGenerator::sampleOpClass(double u) const
{
    if (u < cLoad_)
        return OpClass::Load; // FP-vs-INT data reg decided by caller
    if (u < cStore_)
        return OpClass::Store;
    if (u < cBranch_)
        return OpClass::Branch;
    if (u < cCall_)
        return OpClass::Call;
    if (u < cReturn_)
        return OpClass::Return;
    if (u < cFpAdd_)
        return OpClass::FpAdd;
    if (u < cFpMul_)
        return OpClass::FpMul;
    if (u < cFpDiv_)
        return OpClass::FpDiv;
    if (u < cIntMul_)
        return OpClass::IntMul;
    if (u < cIntDiv_)
        return OpClass::IntDiv;
    if (u < cSync_)
        return OpClass::Lock; // caller rehashes Lock vs Unlock
    return OpClass::IntAlu;
}

unsigned
TraceGenerator::depDistance(std::uint64_t h) const
{
    const unsigned d = 1 + static_cast<unsigned>(bounded(h, depSpread_));
    return std::min(d, 24u);
}

Addr
TraceGenerator::dataAddress(InstSeq idx, std::uint64_t h) const
{
    const auto &p = *profile_;
    const double u = toUnit(draw(seed_, idx, kSaltAddrMix));
    const std::uint64_t off_draw = draw(seed_, idx, kSaltAddrOff);

    const double c_hot = p.pHot;
    const double c_warm = c_hot + p.pWarm;
    const double c_stream = c_warm + p.pStream;

    Addr addr;
    if (u < c_hot) {
        addr = hotBase_ + bounded(off_draw, p.hotBytes);
    } else if (u < c_warm) {
        addr = warmBase_ + bounded(off_draw, p.warmBytes);
    } else if (u < c_stream) {
        // The stream cursor advances with the instruction index itself,
        // giving spatial locality and steady compulsory misses.
        const auto advance =
            static_cast<std::uint64_t>(p.streamBytesPerInst *
                                       static_cast<double>(idx));
        addr = streamBase_ + advance % p.coldBytes;
    } else {
        addr = coldBase_ + bounded(off_draw, p.coldBytes);
    }
    (void)h;
    return addr & ~Addr{7}; // 8-byte aligned accesses
}

MicroOp
TraceGenerator::at(InstSeq idx) const
{
    const auto &p = *profile_;
    MicroOp op;
    op.seq = idx;
    // Phase-based PC stream: iterate a hot inner loop for phaseInsts
    // instructions, then jump to a different region of the footprint.
    {
        const std::uint64_t phase = idx / p.phaseInsts;
        const std::uint32_t loop_words =
            std::max<std::uint32_t>(16, p.innerLoopBytes / 4);
        const std::uint64_t phase_word =
            bounded(draw(seed_, phase, kSaltPhase), codeWords_) &
            ~std::uint64_t{15}; // line-aligned phase entry point
        const std::uint64_t word =
            (phase_word + idx % loop_words) % codeWords_;
        op.pc = codeBase_ + 4 * word;
    }
    op.memSize = 8;

    // Pointer-chase loads occur on a fixed period so that the previous
    // chase load's index (and thus its destination register) is computable
    // without generator state.
    const bool is_chase = p.chasePeriod != 0 && idx % p.chasePeriod == 0 &&
                          idx >= p.chasePeriod;
    if (is_chase) {
        op.op = OpClass::Load;
        op.hasDst = true;
        op.dstIsFp = false;
        op.dst = rotReg(idx);
        op.srcInt[0] = rotReg(idx - p.chasePeriod);
        op.numSrcInt = 1;
        const std::uint64_t chain = draw(seed_, idx / p.chasePeriod,
                                         kSaltChase);
        op.effAddr = (chaseBase_ + bounded(chain, p.chaseBytes)) & ~Addr{7};
        return op;
    }

    // Static instruction identity: the op class of a code slot is a
    // pure function of its PC, like real code — the same slot is always
    // a branch (or load, ...) on every loop iteration. This is what
    // gives the branch predictor and BTB stable static branches.
    const std::uint64_t slot = (op.pc - codeBase_) / 4;
    const double u_op = toUnit(draw(seed_, slot, kSaltOp));
    OpClass cls = sampleOpClass(u_op);

    // Decide the data-register class of memory ops (also static).
    if (cls == OpClass::Load || cls == OpClass::Store) {
        const bool fp_data =
            toUnit(draw(seed_, slot, kSaltFpMem)) < p.fpMemShare;
        if (fp_data)
            cls = (cls == OpClass::Load) ? OpClass::FpLoad
                                         : OpClass::FpStore;
    } else if (cls == OpClass::Lock) {
        if (draw(seed_, slot, kSaltSyncKind) & 1)
            cls = OpClass::Unlock;
    }
    op.op = cls;

    const std::uint64_t h1 = draw(seed_, idx, kSaltDep1);
    const std::uint64_t h2 = draw(seed_, idx, kSaltDep2);
    const unsigned d1 = depDistance(h1);
    const unsigned d2 = depDistance(h2);
    const auto int_src = [&](unsigned d) {
        return idx >= d ? rotReg(idx - d) : ArchReg{1};
    };

    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
        op.srcInt[0] = int_src(d1);
        op.srcInt[1] = int_src(d2);
        op.numSrcInt = 2;
        op.hasDst = true;
        op.dstIsFp = false;
        op.dst = rotReg(idx);
        break;

      case OpClass::FpAdd:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        op.srcFp[0] = int_src(d1); // same rotation in the FP space
        op.srcFp[1] = int_src(d2);
        op.numSrcFp = 2;
        op.hasDst = true;
        op.dstIsFp = true;
        op.dst = rotReg(idx);
        break;

      case OpClass::Load:
        op.srcInt[0] = int_src(d1); // address base register
        op.numSrcInt = 1;
        op.hasDst = true;
        op.dstIsFp = false;
        op.dst = rotReg(idx);
        op.effAddr = dataAddress(idx, h2);
        break;

      case OpClass::FpLoad:
        op.srcInt[0] = int_src(d1);
        op.numSrcInt = 1;
        op.hasDst = true;
        op.dstIsFp = true;
        op.dst = rotReg(idx);
        op.effAddr = dataAddress(idx, h2);
        break;

      case OpClass::Store:
        op.srcInt[0] = int_src(d1); // address base
        op.srcInt[1] = int_src(d2); // data
        op.numSrcInt = 2;
        op.effAddr = dataAddress(idx, h2);
        break;

      case OpClass::FpStore:
        op.srcInt[0] = int_src(d1); // address base
        op.numSrcInt = 1;
        op.srcFp[0] = int_src(d2); // data
        op.numSrcFp = 1;
        op.effAddr = dataAddress(idx, h2);
        break;

      case OpClass::Branch: {
        op.srcInt[0] = int_src(d1); // condition register
        op.numSrcInt = 1;
        // Static-branch behaviour class is a pure function of the PC.
        const std::uint64_t pc_hash = splitmix64(op.pc ^ seed_);
        const double u_cls = toUnit(pc_hash);
        const std::uint64_t h_dir = draw(seed_, idx, kSaltBranch);
        if (u_cls < p.pEasyBranch) {
            const double bias =
                (pc_hash >> 8) & 1 ? p.easyBias : 1.0 - p.easyBias;
            op.taken = toUnit(h_dir) < bias;
        } else if (u_cls < p.pEasyBranch + p.pPatternBranch) {
            const unsigned period = 2 + static_cast<unsigned>(
                                            (pc_hash >> 16) % 5);
            op.taken = (idx % period) * 2 < period;
        } else {
            op.taken = h_dir & 1;
        }
        op.target = codeBase_ + 4 * ((pc_hash >> 24) % codeWords_);
        break;
      }

      case OpClass::Call: {
        op.srcInt[0] = int_src(d1);
        op.numSrcInt = 1;
        op.hasDst = true; // link register write
        op.dstIsFp = false;
        op.dst = rotReg(idx);
        const std::uint64_t pc_hash = splitmix64(op.pc ^ seed_);
        op.taken = true;
        op.target = codeBase_ + 4 * ((pc_hash >> 24) % codeWords_);
        break;
      }

      case OpClass::Return:
        op.srcInt[0] = int_src(d1);
        op.numSrcInt = 1;
        op.taken = true;
        // Model: return to the point after some earlier call site; the
        // RAS supplies this in hardware, so the trace target matches the
        // RAS prediction whenever the stack is balanced.
        op.target = codeBase_ + 4 * ((idx * 7 + 3) % codeWords_);
        break;

      case OpClass::Lock:
      case OpClass::Unlock:
        op.srcInt[0] = int_src(d1);
        op.numSrcInt = 1;
        break;

      case OpClass::NumClasses:
        panic("sampled invalid op class");
    }
    return op;
}

} // namespace rat::trace
