/**
 * @file
 * Deterministic synthetic instruction-stream generator.
 *
 * Every micro-op is a *pure function* of (profile, seed, instruction
 * index): `at(i)` always returns the same op for the same generator. This
 * is the property that makes runahead rollback work in a trace-driven
 * model — rewinding the trace cursor and replaying regenerates the exact
 * same instructions and addresses, so cache lines fetched during runahead
 * are hit again on replay, which is precisely the prefetching benefit the
 * paper's mechanism exploits (Sections 3.1 and 6.1).
 *
 * Dependence structure is encoded through rotating architectural register
 * assignment: instruction i writes register 1 + (i mod 30) of its class,
 * and consumers read the registers written a sampled small distance
 * earlier. Pointer-chase loads read the register written by the previous
 * chase load, making their addresses *data-dependent on a prior miss* —
 * the serialization that limits runahead prefetching on mcf-like codes.
 */

#ifndef RAT_TRACE_GENERATOR_HH
#define RAT_TRACE_GENERATOR_HH

#include <cstdint>

#include "common/types.hh"
#include "trace/microop.hh"
#include "trace/profile.hh"
#include "trace/source.hh"

namespace rat::trace {

/**
 * Synthesizes the dynamic micro-op stream of one program instance.
 *
 * Thread-safe for concurrent `at()` calls (const, no mutable state).
 */
class TraceGenerator : public TraceSource
{
  public:
    /**
     * @param profile Statistical program description (must outlive this).
     * @param seed    Stream seed; two instances of the same program in one
     *                workload should use different seeds.
     * @param base    Base of this program's private address space. Callers
     *                must give distinct, widely separated bases to distinct
     *                program instances (they model separate ASIDs).
     */
    TraceGenerator(const BenchmarkProfile &profile, std::uint64_t seed,
                   Addr base);

    /** Generate the micro-op at dynamic index @p idx. Pure. */
    MicroOp at(InstSeq idx) const override;

    /** The profile this stream was built from. */
    const BenchmarkProfile &profile() const { return *profile_; }

    /** Base address of this instance's address space. */
    Addr base() const { return base_; }

    /** Seed of this instance. */
    std::uint64_t seed() const { return seed_; }

  private:
    /** Map a uniform draw to an op class via the precomputed CDF. */
    OpClass sampleOpClass(double u) const;

    /** Sampled RAW dependence distance in [1, 24]. */
    unsigned depDistance(std::uint64_t h) const;

    /** Rotating arch register written by instruction @p idx. */
    static ArchReg rotReg(InstSeq idx)
    {
        return static_cast<ArchReg>(1 + idx % 30);
    }

    /** Effective address for a non-chase memory access. */
    Addr dataAddress(InstSeq idx, std::uint64_t h) const;

    const BenchmarkProfile *profile_;
    std::uint64_t seed_;
    Addr base_;

    // Precomputed region bases within the private address space.
    Addr codeBase_;
    Addr hotBase_;
    Addr warmBase_;
    Addr streamBase_;
    Addr coldBase_;
    Addr chaseBase_;

    // Precomputed op-class CDF thresholds (cumulative fractions).
    double cLoad_, cStore_, cBranch_, cCall_, cReturn_;
    double cFpAdd_, cFpMul_, cFpDiv_, cIntMul_, cIntDiv_, cSync_;

    std::uint32_t codeWords_;
    unsigned depSpread_;
};

} // namespace rat::trace

#endif // RAT_TRACE_GENERATOR_HH
