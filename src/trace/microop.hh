/**
 * @file
 * Dynamic micro-operation record produced by the trace substrate and
 * consumed by the SMT core pipeline.
 *
 * The abstract ISA is RISC-like with 32 INT and 32 FP architectural
 * registers per thread (Alpha-like, matching the paper's register-file
 * arithmetic in Section 6.2). Each micro-op carries its full dynamic
 * information: operand registers, effective address for memory ops, and
 * the resolved branch outcome for control ops.
 */

#ifndef RAT_TRACE_MICROOP_HH
#define RAT_TRACE_MICROOP_HH

#include <cstdint>

#include "common/types.hh"

namespace rat::trace {

/**
 * Operation class. Determines the functional unit, latency, and the
 * register classes of operands.
 */
enum class OpClass : std::uint8_t {
    IntAlu,     ///< 1-cycle integer ALU op
    IntMul,     ///< pipelined integer multiply
    IntDiv,     ///< unpipelined integer divide
    FpAdd,      ///< pipelined FP add/sub
    FpMul,      ///< pipelined FP multiply
    FpDiv,      ///< unpipelined FP divide
    Load,       ///< integer load
    Store,      ///< integer store
    FpLoad,     ///< FP load (address computed in INT pipeline)
    FpStore,    ///< FP store (address computed in INT pipeline)
    Branch,     ///< conditional branch
    Call,       ///< direct call (pushes return address)
    Return,     ///< return (pops return address)
    Lock,       ///< synchronization acquire marker (Section 3.3)
    Unlock,     ///< synchronization release marker (Section 3.3)
    NumClasses
};

/** Number of distinct op classes. */
inline constexpr unsigned kNumOpClasses =
    static_cast<unsigned>(OpClass::NumClasses);

/** True for loads and stores of either register class. */
constexpr bool
isMemOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store ||
           op == OpClass::FpLoad || op == OpClass::FpStore;
}

/** True for loads of either register class. */
constexpr bool
isLoadOp(OpClass op)
{
    return op == OpClass::Load || op == OpClass::FpLoad;
}

/** True for stores of either register class. */
constexpr bool
isStoreOp(OpClass op)
{
    return op == OpClass::Store || op == OpClass::FpStore;
}

/** True for control-flow ops that consult the branch predictor. */
constexpr bool
isControlOp(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::Call ||
           op == OpClass::Return;
}

/**
 * True for ops that occupy floating-point resources (FP issue queue, FP
 * registers, FP functional units). FP loads/stores are *not* FP-resource
 * ops for issue purposes: their address generation happens in the integer
 * pipeline (Section 3.3, "Floating-point resources"), though their
 * destination/source data register is an FP register.
 */
constexpr bool
isFpComputeOp(OpClass op)
{
    return op == OpClass::FpAdd || op == OpClass::FpMul ||
           op == OpClass::FpDiv;
}

/** One dynamic micro-operation. */
struct MicroOp {
    /** Per-thread dynamic sequence number (trace index). */
    InstSeq seq = 0;
    /** Instruction address (for I-cache and branch predictor). */
    Addr pc = 0;
    /** Operation class. */
    OpClass op = OpClass::IntAlu;

    /** Integer source registers; count in numSrcInt (0..2). */
    ArchReg srcInt[2] = {0, 0};
    std::uint8_t numSrcInt = 0;
    /** FP source registers; count in numSrcFp (0..2). */
    ArchReg srcFp[2] = {0, 0};
    std::uint8_t numSrcFp = 0;

    /** Destination register (class given by dstIsFp); valid iff hasDst. */
    ArchReg dst = 0;
    bool hasDst = false;
    bool dstIsFp = false;

    /** Effective byte address for memory ops. */
    Addr effAddr = 0;
    /** Access size in bytes for memory ops. */
    std::uint8_t memSize = 8;

    /** Resolved direction for control ops. */
    bool taken = false;
    /** Resolved target for control ops. */
    Addr target = 0;
};

} // namespace rat::trace

#endif // RAT_TRACE_MICROOP_HH
