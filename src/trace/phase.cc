/**
 * @file
 * Deterministic BBV phase profiler: windowed PC-region signatures plus
 * farthest-first-seeded Lloyd k-means. See phase.hh for the contract.
 */

#include "trace/phase.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rat::trace {
namespace {

/** Histogram buckets per thread in a window signature. */
constexpr unsigned kBucketsPerThread = 32;

/** Fibonacci-hash a PC line into a signature bucket. */
unsigned
bucketOf(Addr pc)
{
    const std::uint64_t h = (pc >> 6) * 0x9E3779B97F4A7C15ULL;
    return static_cast<unsigned>(h >> 59); // top 5 bits -> 0..31
}

/** Squared Euclidean distance between two signatures. */
double
dist2(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double x = a[i] - b[i];
        d += x * x;
    }
    return d;
}

} // namespace

std::uint64_t
PhaseProfile::totalWeight() const
{
    std::uint64_t w = 0;
    for (const PhaseSample &s : samples)
        w += s.weight;
    return w;
}

PhaseProfile
profilePhases(const std::vector<const TraceSource *> &streams, InstSeq start,
              const PhaseConfig &cfg)
{
    PhaseProfile out;
    out.window = cfg.window;
    out.spanWindows = cfg.spanWindows;
    if (streams.empty() || cfg.window == 0 || cfg.spanWindows == 0)
        return out;

    // --- build one L1-normalized signature per window --------------------
    // Concatenated per-thread histograms, normalized per thread block so a
    // fast thread cannot drown out a slow one in the distance metric.
    const std::size_t dims = streams.size() * kBucketsPerThread;
    std::vector<std::vector<double>> sig(cfg.spanWindows,
                                         std::vector<double>(dims, 0.0));
    for (unsigned w = 0; w < cfg.spanWindows; ++w) {
        const InstSeq lo = start + InstSeq{w} * cfg.window;
        for (std::size_t t = 0; t < streams.size(); ++t) {
            double *block = sig[w].data() + t * kBucketsPerThread;
            for (InstSeq i = 0; i < cfg.window; ++i)
                block[bucketOf(streams[t]->at(lo + i).pc)] += 1.0;
            for (unsigned b = 0; b < kBucketsPerThread; ++b)
                block[b] /= static_cast<double>(cfg.window);
        }
    }

    // --- farthest-first seeding ------------------------------------------
    const unsigned k =
        std::min(cfg.phases == 0 ? 1u : cfg.phases, cfg.spanWindows);
    std::vector<unsigned> seeds;
    seeds.push_back(0);
    std::vector<double> minD(cfg.spanWindows,
                             std::numeric_limits<double>::infinity());
    while (seeds.size() < k) {
        for (unsigned w = 0; w < cfg.spanWindows; ++w)
            minD[w] = std::min(minD[w], dist2(sig[w], sig[seeds.back()]));
        unsigned best = 0;
        double bestD = -1.0;
        for (unsigned w = 0; w < cfg.spanWindows; ++w) {
            if (minD[w] > bestD) { // strict: ties keep the lowest index
                bestD = minD[w];
                best = w;
            }
        }
        if (bestD <= 0.0)
            break; // fewer distinct signatures than clusters requested
        seeds.push_back(best);
    }

    std::vector<std::vector<double>> centroid;
    centroid.reserve(seeds.size());
    for (unsigned s : seeds)
        centroid.push_back(sig[s]);

    // --- Lloyd iterations -------------------------------------------------
    std::vector<unsigned> assign(cfg.spanWindows, 0);
    for (unsigned iter = 0; iter < 25; ++iter) {
        bool changed = false;
        for (unsigned w = 0; w < cfg.spanWindows; ++w) {
            unsigned best = 0;
            double bestD = std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < centroid.size(); ++c) {
                const double d = dist2(sig[w], centroid[c]);
                if (d < bestD) { // strict: ties keep the lowest cluster
                    bestD = d;
                    best = static_cast<unsigned>(c);
                }
            }
            if (assign[w] != best) {
                assign[w] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;
        for (std::size_t c = 0; c < centroid.size(); ++c) {
            std::fill(centroid[c].begin(), centroid[c].end(), 0.0);
            std::uint64_t n = 0;
            for (unsigned w = 0; w < cfg.spanWindows; ++w) {
                if (assign[w] != c)
                    continue;
                ++n;
                for (std::size_t i = 0; i < dims; ++i)
                    centroid[c][i] += sig[w][i];
            }
            if (n == 0)
                continue; // keep the stale centroid; cluster dropped below
            for (std::size_t i = 0; i < dims; ++i)
                centroid[c][i] /= static_cast<double>(n);
        }
    }

    // --- representatives: closest window to each non-empty centroid ------
    std::vector<PhaseSample> samples;
    std::vector<unsigned> repOf(centroid.size(),
                                std::numeric_limits<unsigned>::max());
    for (std::size_t c = 0; c < centroid.size(); ++c) {
        std::uint64_t weight = 0;
        unsigned rep = 0;
        double repD = std::numeric_limits<double>::infinity();
        for (unsigned w = 0; w < cfg.spanWindows; ++w) {
            if (assign[w] != c)
                continue;
            ++weight;
            const double d = dist2(sig[w], centroid[c]);
            if (d < repD) { // strict: ties keep the lowest window
                repD = d;
                rep = w;
            }
        }
        if (weight == 0)
            continue;
        repOf[c] = rep;
        samples.push_back(PhaseSample{rep, weight});
    }
    std::sort(samples.begin(), samples.end(),
              [](const PhaseSample &a, const PhaseSample &b) {
                  return a.windowIndex < b.windowIndex;
              });

    // Renumber assignments to match the (sorted, empty-dropped) samples so
    // assignment[w] indexes out.samples directly.
    std::vector<unsigned> newId(centroid.size(), 0);
    for (std::size_t c = 0; c < centroid.size(); ++c) {
        if (repOf[c] == std::numeric_limits<unsigned>::max())
            continue;
        for (std::size_t s = 0; s < samples.size(); ++s) {
            if (samples[s].windowIndex == repOf[c])
                newId[c] = static_cast<unsigned>(s);
        }
    }
    for (unsigned &a : assign)
        a = newId[a];

    out.samples = std::move(samples);
    out.assignment = std::move(assign);
    return out;
}

} // namespace rat::trace
