/**
 * @file
 * BBV-style phase profiling over the deterministic trace substrate.
 *
 * Sampled simulation (SimPoint-flavoured) needs to know where a
 * workload's dynamic stream changes behaviour. The profiler slices the
 * stream into fixed-size instruction windows, summarizes each window as
 * a basic-block-vector-like signature (a hashed histogram of executed
 * PC regions across all threads of the workload), and clusters the
 * signatures into phases with deterministic k-means. One representative
 * window per phase, weighted by cluster population, then stands in for
 * the whole span during detailed simulation.
 *
 * Everything here is a pure function of (streams, start, config): the
 * profiler only calls the pure `TraceSource::at()` interface, k-means
 * seeding is farthest-first from window 0 with lowest-index
 * tie-breaking, and no host randomness or clock is consulted. The same
 * inputs always produce the same phases — the property that keeps
 * sampled runs cacheable and farm-distributable.
 */

#ifndef RAT_TRACE_PHASE_HH
#define RAT_TRACE_PHASE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/source.hh"

namespace rat::trace {

/** Parameters of one phase-profiling pass. */
struct PhaseConfig {
    /** Instructions per profiling window (per thread). */
    InstSeq window = 2048;
    /** Number of consecutive windows profiled from the start point. */
    unsigned spanWindows = 64;
    /** Number of phases (k-means clusters) requested; >= 1. */
    unsigned phases = 4;
};

/** One representative window chosen for detailed simulation. */
struct PhaseSample {
    /** Window index (relative to the profiled span start). */
    unsigned windowIndex = 0;
    /** Cluster population: how many windows this sample stands for. */
    std::uint64_t weight = 0;
};

/** Result of profiling one workload span. */
struct PhaseProfile {
    /** Window size the profile was built with (per thread). */
    InstSeq window = 0;
    /** Number of windows profiled. */
    unsigned spanWindows = 0;
    /** Representative samples, ascending by windowIndex. */
    std::vector<PhaseSample> samples;
    /** Cluster id of every profiled window (size == spanWindows). */
    std::vector<unsigned> assignment;

    /** Sum of all sample weights (== spanWindows). */
    std::uint64_t totalWeight() const;
};

/**
 * Profile @p cfg.spanWindows windows of the workload formed by
 * @p streams, starting at per-thread instruction index @p start.
 *
 * Window w covers per-thread indices [start + w*window,
 * start + (w+1)*window) of *every* stream — the unit of sampling is a
 * workload slice, not a single thread, because the SMT core co-runs
 * all threads and the checkpoint walker fast-forwards them in
 * lockstep.
 *
 * Empty clusters are dropped, so the result can have fewer samples
 * than cfg.phases (a single-phase program yields one sample carrying
 * all the weight). cfg.phases is clamped to the number of windows.
 */
PhaseProfile profilePhases(const std::vector<const TraceSource *> &streams,
                           InstSeq start, const PhaseConfig &cfg);

} // namespace rat::trace

#endif // RAT_TRACE_PHASE_HH
