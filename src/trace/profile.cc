#include "trace/profile.hh"

#include <map>

#include "common/logging.hh"

namespace rat::trace {

namespace {

/** Named-parameter builder so the table below stays readable. */
struct Build {
    BenchmarkProfile p;

    explicit Build(std::string name) { p.name = std::move(name); }

    Build &mix(double ld, double st, double br)
    {
        p.fLoad = ld;
        p.fStore = st;
        p.fBranch = br;
        return *this;
    }
    Build &fp(double add, double mul, double div, double mem_share)
    {
        p.fFpAdd = add;
        p.fFpMul = mul;
        p.fFpDiv = div;
        p.fpMemShare = mem_share;
        return *this;
    }
    Build &code(std::uint32_t bytes)
    {
        p.codeBytes = bytes;
        return *this;
    }
    Build &addr(double hot, double warm, double stream)
    {
        p.pHot = hot;
        p.pWarm = warm;
        p.pStream = stream;
        return *this;
    }
    Build &regions(std::uint32_t hot_b, std::uint32_t warm_b,
                   std::uint64_t cold_b)
    {
        p.hotBytes = hot_b;
        p.warmBytes = warm_b;
        p.coldBytes = cold_b;
        return *this;
    }
    Build &stream(double bytes_per_inst)
    {
        p.streamBytesPerInst = bytes_per_inst;
        return *this;
    }
    Build &chase(std::uint32_t period,
                 std::uint64_t bytes = 128ULL * 1024 * 1024)
    {
        p.chasePeriod = period;
        p.chaseBytes = bytes;
        return *this;
    }
    Build &branches(double easy, double pattern, double bias = 0.97)
    {
        p.pEasyBranch = easy;
        p.pPatternBranch = pattern;
        p.easyBias = bias;
        return *this;
    }
    Build &deps(double mean_dist)
    {
        p.meanDepDistance = mean_dist;
        return *this;
    }
};

/**
 * The profile table. Calibration targets (single-threaded, Table 1
 * baseline): ILP-class programs land below ~2 L2 misses per kilo-inst,
 * MEM-class programs well above ~6 MPKI, with mcf/art as the extremes,
 * mirroring the paper's characterization methodology (Section 4).
 */
std::map<std::string, BenchmarkProfile, std::less<>>
makeTable()
{
    std::map<std::string, BenchmarkProfile, std::less<>> t;
    auto add = [&t](const Build &b) { t.emplace(b.p.name, b.p); };

    // ---- Integer, ILP class ---------------------------------------------
    add(Build("gzip").mix(0.26, 0.11, 0.17)
            .code(24 * 1024).addr(0.9785, 0.020, 0.0)
            .branches(0.86, 0.08).deps(3.0));
    add(Build("bzip2").mix(0.28, 0.12, 0.15)
            .code(40 * 1024).addr(0.976, 0.022, 0.0)
            .branches(0.87, 0.08).deps(3.2));
    add(Build("gcc").mix(0.25, 0.14, 0.18)
            .code(320 * 1024).addr(0.975, 0.023, 0.0)
            .branches(0.84, 0.09).deps(3.5));
    add(Build("crafty").mix(0.27, 0.10, 0.16)
            .code(128 * 1024).addr(0.979, 0.019, 0.0)
            .branches(0.80, 0.10).deps(3.0));
    add(Build("eon").mix(0.26, 0.15, 0.13)
            .fp(0.06, 0.05, 0.004, 0.25)
            .code(96 * 1024).addr(0.981, 0.018, 0.0)
            .branches(0.90, 0.06).deps(3.4));
    add(Build("gap").mix(0.25, 0.12, 0.14)
            .code(64 * 1024).addr(0.978, 0.020, 0.0)
            .branches(0.88, 0.07).deps(3.3));
    add(Build("perl").mix(0.27, 0.14, 0.16)
            .code(192 * 1024).addr(0.9765, 0.0215, 0.0)
            .branches(0.85, 0.09).deps(3.4));
    add(Build("vortex").mix(0.28, 0.16, 0.14)
            .code(256 * 1024).addr(0.974, 0.023, 0.0)
            .branches(0.89, 0.07).deps(3.6));

    // ---- Floating point, ILP class --------------------------------------
    add(Build("mesa").mix(0.24, 0.12, 0.09)
            .fp(0.13, 0.11, 0.01, 0.55)
            .code(96 * 1024).addr(0.979, 0.020, 0.0)
            .branches(0.93, 0.05).deps(3.8));
    add(Build("fma3d").mix(0.26, 0.13, 0.07)
            .fp(0.15, 0.13, 0.012, 0.70)
            .code(160 * 1024).addr(0.9755, 0.022, 0.0)
            .branches(0.94, 0.04).deps(4.0));
    add(Build("apsi").mix(0.25, 0.12, 0.06)
            .fp(0.16, 0.14, 0.015, 0.72)
            .code(128 * 1024).addr(0.975, 0.023, 0.0)
            .branches(0.95, 0.03).deps(4.2));
    add(Build("wupwise").mix(0.24, 0.10, 0.05)
            .fp(0.18, 0.16, 0.010, 0.78)
            .code(48 * 1024).addr(0.9745, 0.023, 0.0)
            .branches(0.96, 0.03).deps(4.5));
    add(Build("mgrid").mix(0.30, 0.08, 0.03)
            .fp(0.20, 0.18, 0.004, 0.85)
            .code(24 * 1024).addr(0.972, 0.026, 0.0)
            .branches(0.97, 0.02).deps(4.8));
    add(Build("galgel").mix(0.28, 0.09, 0.05)
            .fp(0.19, 0.17, 0.006, 0.80)
            .code(40 * 1024).addr(0.973, 0.025, 0.0)
            .branches(0.96, 0.03).deps(4.4));

    // ---- MEM class: streaming FP ----------------------------------------
    add(Build("swim").mix(0.30, 0.09, 0.02)
            .fp(0.21, 0.19, 0.004, 0.90)
            .code(16 * 1024).addr(0.42, 0.06, 0.50)
            .stream(3.2).regions(16 * 1024, 256 * 1024, 96ULL << 20)
            .branches(0.97, 0.02).deps(5.0));
    add(Build("applu").mix(0.29, 0.10, 0.03)
            .fp(0.20, 0.18, 0.010, 0.88)
            .code(56 * 1024).addr(0.47, 0.08, 0.42)
            .stream(2.6).regions(16 * 1024, 256 * 1024, 80ULL << 20)
            .branches(0.96, 0.02).deps(4.8));
    add(Build("art").mix(0.32, 0.07, 0.10)
            .fp(0.18, 0.16, 0.002, 0.82)
            .code(12 * 1024).addr(0.33, 0.04, 0.55)
            .stream(3.6).regions(12 * 1024, 192 * 1024, 64ULL << 20)
            .branches(0.93, 0.04).deps(3.8));
    add(Build("lucas").mix(0.27, 0.09, 0.02)
            .fp(0.22, 0.20, 0.002, 0.92)
            .code(16 * 1024).addr(0.50, 0.09, 0.36)
            .stream(2.2).regions(16 * 1024, 256 * 1024, 72ULL << 20)
            .branches(0.97, 0.02).deps(5.2));
    add(Build("equake").mix(0.30, 0.10, 0.07)
            .fp(0.16, 0.14, 0.010, 0.78)
            .code(32 * 1024).addr(0.85, 0.12, 0.0)
            .regions(16 * 1024, 288 * 1024, 48ULL << 20)
            .chase(52, 4ULL << 20).branches(0.92, 0.05).deps(4.0));
    add(Build("ammp").mix(0.28, 0.11, 0.08)
            .fp(0.15, 0.13, 0.012, 0.72)
            .code(48 * 1024).addr(0.85, 0.13, 0.0)
            .regions(16 * 1024, 288 * 1024, 40ULL << 20)
            .chase(64, 4ULL << 20).branches(0.91, 0.05).deps(3.9));

    // ---- MEM class: pointer-chasing integer ------------------------------
    add(Build("mcf").mix(0.31, 0.09, 0.18)
            .code(12 * 1024).addr(0.84, 0.12, 0.0)
            .regions(12 * 1024, 256 * 1024, 160ULL << 20)
            .chase(24, 96ULL << 20)
            .branches(0.82, 0.08).deps(2.8));
    add(Build("twolf").mix(0.27, 0.10, 0.15)
            .code(40 * 1024).addr(0.838, 0.15, 0.0)
            .regions(16 * 1024, 288 * 1024, 48ULL << 20)
            .chase(56, 5ULL << 19).branches(0.83, 0.09).deps(3.1));
    add(Build("vpr").mix(0.28, 0.11, 0.14)
            .code(48 * 1024).addr(0.85, 0.14, 0.0)
            .regions(16 * 1024, 288 * 1024, 40ULL << 20)
            .chase(64, 2ULL << 20).branches(0.85, 0.08).deps(3.2));
    add(Build("parser").mix(0.26, 0.12, 0.17)
            .code(80 * 1024).addr(0.845, 0.145, 0.0)
            .regions(16 * 1024, 288 * 1024, 44ULL << 20)
            .chase(72, 3ULL << 20).branches(0.81, 0.09).deps(3.0));

    return t;
}

const std::map<std::string, BenchmarkProfile, std::less<>> &
table()
{
    static const auto t = makeTable();
    return t;
}

} // namespace

const BenchmarkProfile &
spec2000(std::string_view name)
{
    const auto &t = table();
    auto it = t.find(name);
    if (it == t.end())
        fatal("unknown SPEC2000 profile '%.*s'",
              static_cast<int>(name.size()), name.data());
    return it->second;
}

const std::vector<std::string> &
spec2000Names()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &[k, _] : table())
            v.push_back(k);
        return v;
    }();
    return names;
}

bool
isSpec2000(std::string_view name)
{
    return table().count(name) > 0;
}

} // namespace rat::trace
