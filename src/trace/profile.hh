/**
 * @file
 * Statistical benchmark profiles for the synthetic SPEC CPU2000 workload
 * substrate.
 *
 * The paper evaluates on SPEC CPU2000 Alpha binaries with SimPoint-selected
 * 300M-instruction traces. Those artifacts are proprietary, so each program
 * used in Table 2 is modelled as a *statistical profile*: an instruction
 * mix, a code footprint, a data-address-stream mixture (L1-resident,
 * L2-resident, streaming, random-cold, pointer-chasing), and a branch
 * behaviour mixture. Profiles are calibrated so each program's
 * single-threaded L2 miss rate and IPC land in the paper's ILP / MEM
 * classification (Table 2), which is what the studied mechanisms actually
 * depend on.
 */

#ifndef RAT_TRACE_PROFILE_HH
#define RAT_TRACE_PROFILE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rat::trace {

/**
 * Statistical description of one benchmark program.
 *
 * All `f*` fields are fractions of the dynamic instruction stream; the
 * remainder after loads/stores/branches/FP/mul/div is integer ALU work.
 * Address-mixture fields `p*` are fractions of non-chase memory accesses.
 */
struct BenchmarkProfile {
    std::string name;

    // --- Instruction mix -------------------------------------------------
    double fLoad = 0.25;     ///< loads (both INT and FP data)
    double fStore = 0.12;    ///< stores (both INT and FP data)
    double fBranch = 0.15;   ///< conditional branches
    double fCall = 0.01;     ///< calls (always-taken control)
    double fReturn = 0.01;   ///< returns (always-taken control)
    double fFpAdd = 0.0;     ///< FP add/sub
    double fFpMul = 0.0;     ///< FP multiply
    double fFpDiv = 0.0;     ///< FP divide
    double fIntMul = 0.01;   ///< integer multiply
    double fIntDiv = 0.002;  ///< integer divide
    /** Fraction of loads/stores whose data register is FP. */
    double fpMemShare = 0.0;

    // --- Code footprint --------------------------------------------------
    /** Static code bytes (total footprint the phases jump around in). */
    std::uint32_t codeBytes = 32 * 1024;
    /**
     * Size of the hot inner loop the PC iterates within one phase.
     * Real programs execute small loops repeatedly rather than walking
     * their whole text; this keeps the L1I hit rate realistic.
     */
    std::uint32_t innerLoopBytes = 4 * 1024;
    /** Instructions per phase before jumping to another code region. */
    std::uint32_t phaseInsts = 16384;

    // --- Data address stream (non-chase accesses) ------------------------
    double pHot = 0.95;      ///< L1-resident set
    double pWarm = 0.04;     ///< L2-resident set
    double pStream = 0.0;    ///< sequential streaming (compulsory misses)
    // remainder: uniform-random within `coldBytes` (practically always
    // missing in L2 when coldBytes >> L2 capacity)
    std::uint32_t hotBytes = 16 * 1024;
    std::uint32_t warmBytes = 128 * 1024;
    std::uint64_t coldBytes = 64ULL * 1024 * 1024;
    /** Bytes of stream advance per dynamic instruction. */
    double streamBytesPerInst = 2.0;

    // --- Pointer chasing -------------------------------------------------
    /**
     * Every `chasePeriod`-th dynamic instruction is a load whose address
     * register depends on the previous chase load (serialized misses, the
     * mcf pattern). 0 disables chasing.
     */
    std::uint32_t chasePeriod = 0;
    /** Region the chase pointers land in (>> L2 means always-miss). */
    std::uint64_t chaseBytes = 128ULL * 1024 * 1024;

    // --- Branch behaviour -------------------------------------------------
    double pEasyBranch = 0.88;    ///< strongly biased static branches
    double pPatternBranch = 0.08; ///< short-period patterned branches
    // remainder: 50/50 unpredictable
    double easyBias = 0.97;       ///< taken-probability of biased branches

    // --- Dependence structure --------------------------------------------
    /** Mean RAW dependence distance (geometric-ish, capped at 24). */
    double meanDepDistance = 3.5;

    // --- Synchronization (parallel-program modelling, Section 3.3) -------
    /** Fraction of instructions that are lock/unlock markers (0 = none). */
    double fSync = 0.0;
};

/**
 * Look up the profile for a SPEC CPU2000 program by name (e.g. "mcf").
 * Fatal error if the name is unknown.
 */
const BenchmarkProfile &spec2000(std::string_view name);

/** Names of all modelled SPEC CPU2000 programs (Table 2 union). */
const std::vector<std::string> &spec2000Names();

/** True if a profile with this name exists. */
bool isSpec2000(std::string_view name);

} // namespace rat::trace

#endif // RAT_TRACE_PROFILE_HH
