/**
 * @file
 * Abstract instruction-stream source consumed by the SMT core.
 *
 * The production implementation is TraceGenerator (synthetic SPEC2000
 * models); tests inject hand-written sequences through ScriptedSource to
 * exercise exact microarchitectural scenarios (forwarding, INV chains,
 * squash points) deterministically.
 */

#ifndef RAT_TRACE_SOURCE_HH
#define RAT_TRACE_SOURCE_HH

#include "common/types.hh"
#include "trace/microop.hh"

namespace rat::trace {

/**
 * A replayable, random-access instruction stream. Implementations must
 * be pure: at(i) always returns the same micro-op (this is what makes
 * runahead rollback and FLUSH re-fetch work in a trace-driven model).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Micro-op at dynamic index @p idx. Must be pure. */
    virtual MicroOp at(InstSeq idx) const = 0;
};

} // namespace rat::trace

#endif // RAT_TRACE_SOURCE_HH
