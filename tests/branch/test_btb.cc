/** @file Unit tests for the branch target buffer. */

#include <gtest/gtest.h>

#include "branch/btb.hh"

namespace rat::branch {
namespace {

TEST(Btb, MissThenHit)
{
    Btb btb;
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x1000, target));
    btb.update(0x1000, 0x2000);
    EXPECT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb;
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    Addr target = 0;
    EXPECT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x3000u);
}

TEST(Btb, LruEvictionWithinSet)
{
    BtbConfig cfg;
    cfg.sets = 1;
    cfg.ways = 2;
    Btb btb(cfg);
    btb.update(0x1000, 0xA);
    btb.update(0x2000, 0xB);
    Addr t = 0;
    EXPECT_TRUE(btb.lookup(0x1000, t)); // refresh 0x1000
    btb.update(0x3000, 0xC);            // evicts 0x2000
    EXPECT_TRUE(btb.lookup(0x1000, t));
    EXPECT_FALSE(btb.lookup(0x2000, t));
    EXPECT_TRUE(btb.lookup(0x3000, t));
}

TEST(Btb, Stats)
{
    Btb btb;
    Addr t = 0;
    btb.lookup(0x1, t);
    btb.update(0x1, 0x2);
    btb.lookup(0x1, t);
    EXPECT_EQ(btb.lookups(), 2u);
    EXPECT_EQ(btb.misses(), 1u);
    btb.resetStats();
    EXPECT_EQ(btb.lookups(), 0u);
}

TEST(BtbDeathTest, ZeroGeometryIsFatal)
{
    BtbConfig cfg;
    cfg.sets = 0;
    EXPECT_EXIT(Btb{cfg}, ::testing::ExitedWithCode(1), "non-zero");
}

} // namespace
} // namespace rat::branch
