/** @file Unit tests for the perceptron branch predictor. */

#include <gtest/gtest.h>

#include "branch/perceptron.hh"

namespace rat::branch {
namespace {

TEST(Perceptron, ThetaFollowsJimenezLin)
{
    PerceptronConfig cfg;
    cfg.historyBits = 28;
    PerceptronPredictor p(cfg);
    EXPECT_EQ(p.theta(), static_cast<int>(1.93 * 28 + 14));
}

TEST(Perceptron, LearnsAlwaysTakenBranch)
{
    PerceptronPredictor p;
    const Addr pc = 0x1000;
    // Train on an always-taken branch.
    for (int i = 0; i < 200; ++i) {
        const auto out = p.predict(0, pc);
        p.update(0, pc, true, out);
    }
    const auto out = p.predict(0, pc);
    EXPECT_TRUE(out.taken);
}

TEST(Perceptron, LearnsAlternatingPattern)
{
    PerceptronPredictor p;
    const Addr pc = 0x2000;
    // Alternating T/N is linearly separable on the last history bit.
    bool dir = false;
    for (int i = 0; i < 2000; ++i) {
        const auto out = p.predict(0, pc);
        p.update(0, pc, dir, out);
        dir = !dir;
    }
    unsigned correct = 0;
    for (int i = 0; i < 200; ++i) {
        const auto out = p.predict(0, pc);
        correct += (out.taken == dir);
        p.update(0, pc, dir, out);
        dir = !dir;
    }
    EXPECT_GT(correct, 190u);
}

TEST(Perceptron, PerThreadHistoriesAreIndependent)
{
    PerceptronPredictor p;
    const std::uint64_t h0 = p.history(0);
    p.predict(1, 0x3000);
    EXPECT_EQ(p.history(0), h0); // thread 0 history untouched
}

TEST(Perceptron, MispredictRepairsHistory)
{
    PerceptronPredictor p;
    const auto out = p.predict(0, 0x4000);
    // Force the opposite outcome; history must be rewritten with it.
    const bool actual = !out.taken;
    p.update(0, 0x4000, actual, out);
    EXPECT_EQ(p.history(0) & 1, actual ? 1u : 0u);
    EXPECT_EQ(p.mispredicts(), 1u);
}

TEST(Perceptron, RestoreHistory)
{
    PerceptronPredictor p;
    const std::uint64_t checkpoint = p.history(0);
    for (int i = 0; i < 10; ++i)
        p.predict(0, 0x5000 + 4 * i);
    EXPECT_NE(p.history(0), checkpoint + 12345); // sanity
    p.restoreHistory(0, checkpoint);
    EXPECT_EQ(p.history(0), checkpoint);
}

TEST(Perceptron, StatsCount)
{
    PerceptronPredictor p;
    const auto out = p.predict(0, 0x6000);
    p.update(0, 0x6000, !out.taken, out);
    EXPECT_EQ(p.lookups(), 1u);
    EXPECT_EQ(p.mispredicts(), 1u);
    p.resetStats();
    EXPECT_EQ(p.lookups(), 0u);
}

TEST(PerceptronDeathTest, BadHistoryLengthIsFatal)
{
    PerceptronConfig cfg;
    cfg.historyBits = 64;
    EXPECT_EXIT(PerceptronPredictor{cfg}, ::testing::ExitedWithCode(1),
                "history length");
}

/** Biased branches at different rates must be learned to high accuracy. */
class PerceptronBias : public ::testing::TestWithParam<double> {};

TEST_P(PerceptronBias, TracksBiasedBranch)
{
    PerceptronPredictor p;
    const Addr pc = 0x7000;
    const double bias = GetParam();
    std::uint64_t x = 987654321;
    auto rnd = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return static_cast<double>(x >> 11) * 0x1.0p-53;
    };
    unsigned correct = 0, total = 0;
    for (int i = 0; i < 5000; ++i) {
        const bool dir = rnd() < bias;
        const auto out = p.predict(0, pc);
        if (i > 1000) {
            ++total;
            correct += (out.taken == dir);
        }
        p.update(0, pc, dir, out);
    }
    const double acc = static_cast<double>(correct) / total;
    const double expected = std::max(bias, 1.0 - bias);
    EXPECT_GT(acc, expected - 0.06);
}

INSTANTIATE_TEST_SUITE_P(Biases, PerceptronBias,
                         ::testing::Values(0.95, 0.9, 0.8, 0.2, 0.05));

} // namespace
} // namespace rat::branch
