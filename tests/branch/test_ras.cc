/** @file Unit tests for the return address stack. */

#include <gtest/gtest.h>

#include "branch/btb.hh"

namespace rat::branch {
namespace {

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(4);
    ras.push(0x100);
    ras.push(0x200);
    Addr t = 0;
    EXPECT_TRUE(ras.pop(t));
    EXPECT_EQ(t, 0x200u);
    EXPECT_TRUE(ras.pop(t));
    EXPECT_EQ(t, 0x100u);
    EXPECT_FALSE(ras.pop(t));
}

TEST(Ras, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3); // drops 0x1
    Addr t = 0;
    EXPECT_TRUE(ras.pop(t));
    EXPECT_EQ(t, 0x3u);
    EXPECT_TRUE(ras.pop(t));
    EXPECT_EQ(t, 0x2u);
    EXPECT_FALSE(ras.pop(t));
}

TEST(Ras, ClearEmpties)
{
    ReturnAddressStack ras(4);
    ras.push(0x1);
    ras.clear();
    Addr t = 0;
    EXPECT_FALSE(ras.pop(t));
    EXPECT_EQ(ras.size(), 0u);
}

} // namespace
} // namespace rat::branch
