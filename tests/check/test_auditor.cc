/**
 * @file
 * The auditor's own test suite, in two halves:
 *
 *  - MutationCheck — seeded fault injection: every Mutator::Kind
 *    corrupts one redundant encoding on a warmed-up RaT core, and the
 *    auditor must report a failure tagged with exactly that structure
 *    (no false negatives, and a correctly localized diagnostic).
 *  - CleanCheck — the converse: full simulations of every scheduling
 *    policy on the MIX2 pair at `--check-level full` must finish with
 *    zero audit failures (no false positives). This runs through the
 *    production Simulator path, so it also pins that checked runs are
 *    bit-identical to unchecked runs.
 */

#include <string>

#include <gtest/gtest.h>

#include "check/auditor.hh"
#include "check/mutate.hh"
#include "core/config.hh"
#include "policy/factory.hh"
#include "report/serialize.hh"
#include "sim/simulator.hh"
#include "tests/core/test_helpers.hh"

namespace rat::check {
namespace {

using test::CoreHarness;

/** All nine techniques, in PolicyKind order. */
const std::vector<core::PolicyKind> kAllPolicies = {
    core::PolicyKind::RoundRobin, core::PolicyKind::Icount,
    core::PolicyKind::Stall,      core::PolicyKind::Flush,
    core::PolicyKind::Dcra,       core::PolicyKind::HillClimbing,
    core::PolicyKind::Rat,        core::PolicyKind::RatDcra,
    core::PolicyKind::MlpAware,
};

class MutationCheck : public ::testing::TestWithParam<Mutator::Kind>
{
};

TEST_P(MutationCheck, EveryMutationIsCaughtWithTheRightTag)
{
    const Mutator::Kind kind = GetParam();
    // A memory-bound + ILP pair under RaT populates every structure a
    // mutation needs: full ROB and LSQ, outstanding MSHRs, runahead
    // episodes.
    CoreHarness h({"art", "gzip"}, core::PolicyKind::Rat,
                  core::RatConfig{});

    // Before any corruption the audit must be clean — otherwise the
    // "caught it" assertion below would prove nothing.
    ASSERT_TRUE(Auditor::audit(*h.core).ok())
        << Auditor::audit(*h.core).format();

    // Tick until the state this mutation needs exists (e.g. MshrMin
    // needs a miss in flight, RunaheadFlag needs no active episode).
    bool applied = false;
    for (int i = 0; i < 200000 && !applied; ++i) {
        h.core->tick();
        applied = Mutator::apply(*h.core, kind);
    }
    ASSERT_TRUE(applied) << "state for " << Mutator::kindName(kind)
                         << " never materialized";

    const AuditReport report = Auditor::audit(*h.core);
    ASSERT_FALSE(report.ok())
        << "false negative: auditor missed " << Mutator::kindName(kind);
    bool tagged = false;
    for (const AuditFailure &f : report.failures)
        tagged = tagged || f.structure == Mutator::structureOf(kind);
    EXPECT_TRUE(tagged)
        << "expected a '" << Mutator::structureOf(kind)
        << "' failure for " << Mutator::kindName(kind)
        << ", got:\n"
        << report.format();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MutationCheck,
    ::testing::Values(
        Mutator::Kind::RobOrder, Mutator::Kind::Icount,
        Mutator::Kind::RegsHeld, Mutator::Kind::MapFreeReg,
        Mutator::Kind::LsqChain, Mutator::Kind::IqPos,
        Mutator::Kind::MshrMin, Mutator::Kind::RunaheadFlag,
        Mutator::Kind::PoolLeak),
    [](const auto &param_info) {
        std::string name = Mutator::kindName(param_info.param);
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(CleanCheck, AllPoliciesPassFullAuditsWithoutPerturbingResults)
{
    for (const core::PolicyKind kind : kAllPolicies) {
        SCOPED_TRACE(policy::policyKindName(kind));
        sim::SimConfig cfg;
        cfg.prewarmInsts = 100000;
        cfg.warmupCycles = 5000;
        cfg.measureCycles = 10000;
        cfg.core.policy = kind;

        // Unchecked reference, then the same run at max check level:
        // an audit failure aborts (runAudit is fatal), and the audit
        // being read-only means the results must stay byte-identical.
        sim::Simulator plain(cfg, {"art", "gzip"});
        const std::string ref = report::toJson(plain.run()).dump(2);

        cfg.core.checkLevel = core::CheckLevel::Full;
        sim::Simulator checked(cfg, {"art", "gzip"});
        const std::string audited =
            report::toJson(checked.run()).dump(2);
        EXPECT_EQ(ref, audited);
    }
}

} // namespace
} // namespace rat::check
