/**
 * @file
 * State-digest pins (DESIGN.md, "Self-checking & determinism audit"):
 *
 *  - mode invariance: the digest stream of one configuration is
 *    byte-identical across the full host-side mode grid (cycle-skip
 *    on/off x event/broadcast scheduler) — the property `ratsim
 *    verify` bisects violations of;
 *  - boundary semantics: digests land exactly every `digestWindow`
 *    cycles from measurement start, and run-to-run reproduction is
 *    exact;
 *  - serialization: a digest-bearing SimResult round-trips through
 *    the report JSON with the stream intact, and a digest-bearing
 *    SimConfig serializes its window (so cached cells can never mix
 *    digested and undigested payloads under one key);
 *  - sensitivity: the verify hook's single-flip mutation changes every
 *    digest from the first post-mutation boundary on, and only those.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "report/serialize.hh"
#include "sim/simulator.hh"

namespace rat::check {
namespace {

sim::SimConfig
digestConfig(bool skip, bool broadcast)
{
    sim::SimConfig cfg;
    cfg.prewarmInsts = 100000;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 10000;
    cfg.digestWindow = 256;
    cfg.core.policy = core::PolicyKind::Rat;
    cfg.core.cycleSkipping = skip;
    cfg.core.broadcastScheduler = broadcast;
    return cfg;
}

obs::DigestTrack
runTrack(const sim::SimConfig &cfg)
{
    sim::Simulator sim(cfg, {"art", "gzip"});
    return sim.run().digest;
}

TEST(DigestCheck, StreamIsIdenticalAcrossTheModeGrid)
{
    const obs::DigestTrack ref = runTrack(digestConfig(true, false));
    ASSERT_TRUE(ref.enabled());
    EXPECT_EQ(ref.samples.size(), 10000u / 256u);

    const struct {
        const char *name;
        bool skip;
        bool broadcast;
    } legs[] = {
        {"noskip+event", false, false},
        {"skip+broadcast", true, true},
        {"noskip+broadcast", false, true},
    };
    for (const auto &leg : legs) {
        SCOPED_TRACE(leg.name);
        const obs::DigestTrack other =
            runTrack(digestConfig(leg.skip, leg.broadcast));
        EXPECT_TRUE(ref == other);
    }
}

TEST(DigestCheck, BoundariesAreWindowExactAndReproducible)
{
    const sim::SimConfig cfg = digestConfig(true, false);
    const obs::DigestTrack first = runTrack(cfg);
    ASSERT_FALSE(first.samples.empty());

    // Boundaries march in window steps from the first sample.
    for (std::size_t i = 1; i < first.samples.size(); ++i)
        EXPECT_EQ(first.samples[i].cycle,
                  first.samples[i - 1].cycle + cfg.digestWindow);

    const obs::DigestTrack second = runTrack(cfg);
    EXPECT_TRUE(first == second);
}

TEST(DigestCheck, ResultAndConfigRoundTripThroughJson)
{
    const sim::SimConfig cfg = digestConfig(true, false);
    sim::Simulator sim(cfg, {"art", "gzip"});
    const sim::SimResult result = sim.run();
    ASSERT_TRUE(result.digest.enabled());

    sim::SimResult back;
    ASSERT_TRUE(report::fromJson(report::toJson(result), back));
    EXPECT_TRUE(result.digest == back.digest);

    sim::SimConfig cfg_back;
    ASSERT_TRUE(report::fromJson(report::toJson(cfg), cfg_back));
    EXPECT_EQ(cfg_back.digestWindow, cfg.digestWindow);

    // A windowless config must stay windowless after a round trip.
    sim::SimConfig plain;
    ASSERT_TRUE(report::fromJson(report::toJson(plain), cfg_back));
    EXPECT_EQ(cfg_back.digestWindow, 0u);
}

TEST(DigestCheck, SingleFlipMutationDivergesFromItsBoundaryOn)
{
    const sim::SimConfig clean = digestConfig(true, false);
    const obs::DigestTrack ref = runTrack(clean);

    sim::SimConfig mutated = clean;
    mutated.mutateAtCycle = 1500; // relative to measurement start
    const obs::DigestTrack mut = runTrack(mutated);
    ASSERT_EQ(ref.samples.size(), mut.samples.size());

    // The flip lands at measure-start + 1500; every boundary after it
    // must differ (the flipped committed-counter stays flipped), and
    // every boundary before it must match.
    for (std::size_t i = 0; i < ref.samples.size(); ++i) {
        const Cycle offset =
            static_cast<Cycle>(i + 1) * clean.digestWindow;
        ASSERT_EQ(ref.samples[i].cycle, mut.samples[i].cycle);
        if (offset <= 1500) {
            EXPECT_EQ(ref.samples[i].digest, mut.samples[i].digest)
                << "pre-mutation boundary " << i << " diverged";
        } else {
            EXPECT_NE(ref.samples[i].digest, mut.samples[i].digest)
                << "post-mutation boundary " << i << " agreed";
        }
    }
}

} // namespace
} // namespace rat::check
