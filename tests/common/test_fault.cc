/**
 * @file
 * Fault-injection layer tests: schedule parsing, determinism of the
 * pure firing predicate, context gating, and the per-kind decision
 * forms. Determinism is the load-bearing property — the chaos suite
 * (tests/sim/test_chaos.cc) predicts the farm's exact retry and
 * quarantine accounting from FaultSchedule::wouldFire, which only
 * works if the predicate is a pure function of its coordinates.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/fault.hh"

namespace rat {
namespace {

TEST(Fault, ParsesAFullSchedule)
{
    std::string error;
    const auto sched = FaultSchedule::parse(
        "seed=7:kill@p0.02,hang@p0.01,garbage-frame@p0.005,"
        "torn-store@p0.01,slow@p0.05,spawn@c3",
        &error);
    ASSERT_TRUE(sched) << error;
    EXPECT_EQ(sched->seed, 7u);
    EXPECT_TRUE(sched->scheduled(FaultKind::Kill));
    EXPECT_TRUE(sched->scheduled(FaultKind::Hang));
    EXPECT_TRUE(sched->scheduled(FaultKind::GarbageFrame));
    EXPECT_TRUE(sched->scheduled(FaultKind::TornStore));
    EXPECT_TRUE(sched->scheduled(FaultKind::Slow));
    EXPECT_TRUE(sched->scheduled(FaultKind::SpawnFail));
    const FaultRule &kill =
        sched->rules[static_cast<unsigned>(FaultKind::Kill)];
    EXPECT_EQ(kill.form, FaultRule::Form::Probability);
    EXPECT_DOUBLE_EQ(kill.probability, 0.02);
    const FaultRule &spawn =
        sched->rules[static_cast<unsigned>(FaultKind::SpawnFail)];
    EXPECT_EQ(spawn.form, FaultRule::Form::Nth);
    EXPECT_EQ(spawn.n, 3u);
}

TEST(Fault, SeedAloneIsAValidNoOpSchedule)
{
    const auto sched = FaultSchedule::parse("seed=42");
    ASSERT_TRUE(sched);
    EXPECT_EQ(sched->seed, 42u);
    for (std::size_t k = 0; k < kFaultKindCount; ++k)
        EXPECT_FALSE(sched->scheduled(static_cast<FaultKind>(k)));
}

TEST(Fault, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "",                        // no seed
        "kill@p0.5",               // seed missing
        "seed=x",                  // non-numeric seed
        "seed=1:kill",             // no form
        "seed=1:kill@",            // empty form
        "seed=1:kill@q0.5",        // unknown form letter
        "seed=1:kill@p1.5",        // probability out of range
        "seed=1:kill@p-0.1",       // negative probability
        "seed=1:frobnicate@p0.5",  // unknown kind
        "seed=1:kill@p0.1,kill@p0.2", // kind scheduled twice
        "seed=1:kill@c0",          // Nth is 1-based
        "seed=1:kill@pzebra",      // garbage probability
    };
    for (const char *spec : bad) {
        std::string error;
        EXPECT_FALSE(FaultSchedule::parse(spec, &error))
            << "accepted: " << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

TEST(Fault, WouldFireIsDeterministicAndSeedSensitive)
{
    const auto a = FaultSchedule::parse("seed=7:kill@p0.5");
    const auto b = FaultSchedule::parse("seed=8:kill@p0.5");
    ASSERT_TRUE(a && b);

    unsigned fired = 0, differs = 0;
    for (std::uint64_t cell = 0; cell < 256; ++cell) {
        const bool fa = a->wouldFire(FaultKind::Kill, cell, 0, 0);
        EXPECT_EQ(fa, a->wouldFire(FaultKind::Kill, cell, 0, 0));
        fired += fa;
        differs += fa != b->wouldFire(FaultKind::Kill, cell, 0, 0);
    }
    // p=0.5 over 256 cells: statistically impossible to miss by this
    // much unless the hash is broken.
    EXPECT_GT(fired, 64u);
    EXPECT_LT(fired, 192u);
    EXPECT_GT(differs, 0u); // different seeds, different pattern
}

TEST(Fault, AttemptAndSubsequenceAreIndependentDraws)
{
    const auto sched = FaultSchedule::parse("seed=3:kill@p0.5");
    ASSERT_TRUE(sched);
    // A cell that fires on attempt 0 must be able to not-fire on
    // attempt 1 (this is what keeps retries from dying identically
    // forever). Scan for a witness of each combination.
    bool saw_fire_then_clear = false, saw_clear_then_fire = false;
    for (std::uint64_t cell = 0; cell < 256; ++cell) {
        const bool a0 = sched->wouldFire(FaultKind::Kill, cell, 0, 0);
        const bool a1 = sched->wouldFire(FaultKind::Kill, cell, 1, 0);
        saw_fire_then_clear |= a0 && !a1;
        saw_clear_then_fire |= !a0 && a1;
    }
    EXPECT_TRUE(saw_fire_then_clear);
    EXPECT_TRUE(saw_clear_then_fire);
}

TEST(Fault, ProbabilityEdgesAlwaysAndNeverFire)
{
    const auto always = FaultSchedule::parse("seed=1:kill@p1");
    const auto never = FaultSchedule::parse("seed=1:kill@p0");
    ASSERT_TRUE(always && never);
    for (std::uint64_t cell = 0; cell < 64; ++cell) {
        EXPECT_TRUE(always->wouldFire(FaultKind::Kill, cell, 0, 0));
        EXPECT_FALSE(never->wouldFire(FaultKind::Kill, cell, 0, 0));
    }
}

TEST(Fault, CellFormTargetsExactlyOneCell)
{
    const auto sched = FaultSchedule::parse("seed=1:kill@x5");
    ASSERT_TRUE(sched);
    for (std::uint64_t cell = 0; cell < 32; ++cell)
        for (std::uint64_t attempt = 0; attempt < 3; ++attempt)
            EXPECT_EQ(sched->wouldFire(FaultKind::Kill, cell, attempt, 0),
                      cell == 5);
}

TEST(Fault, InjectorRequiresArmAndContext)
{
    FaultInjector inj;
    const auto sched = FaultSchedule::parse("seed=1:kill@p1");
    ASSERT_TRUE(sched);

    // Disarmed: never fires even with a context.
    inj.setContext(0, 0);
    EXPECT_FALSE(inj.fire(FaultKind::Kill));

    inj.arm(*sched);
    // Armed but no context (arm clears it): still inert — this is the
    // guard that keeps coordinator-side frame writes fault-free.
    EXPECT_FALSE(inj.hasContext());
    EXPECT_FALSE(inj.fire(FaultKind::Kill));

    inj.setContext(0, 0);
    EXPECT_TRUE(inj.fire(FaultKind::Kill));
    inj.clearContext();
    EXPECT_FALSE(inj.fire(FaultKind::Kill));
}

TEST(Fault, NthFormFiresOnceOnTheNthDecision)
{
    FaultInjector inj;
    const auto sched = FaultSchedule::parse("seed=1:kill@c3");
    ASSERT_TRUE(sched);
    inj.arm(*sched);
    inj.setContext(0, 0);
    EXPECT_FALSE(inj.fire(FaultKind::Kill)); // 1st
    EXPECT_FALSE(inj.fire(FaultKind::Kill)); // 2nd
    EXPECT_TRUE(inj.fire(FaultKind::Kill));  // 3rd
    EXPECT_FALSE(inj.fire(FaultKind::Kill)); // once only
    inj.setContext(1, 0); // counter is per-process, not per-context
    EXPECT_FALSE(inj.fire(FaultKind::Kill));
}

TEST(Fault, InjectorSubsequenceMatchesWouldFire)
{
    // The injector's Nth fire() call within one context must agree
    // with wouldFire(..., subseq = N): this equivalence is exactly
    // what the chaos suite's accounting predictor relies on.
    FaultInjector inj;
    const auto sched =
        FaultSchedule::parse("seed=11:garbage-frame@p0.5");
    ASSERT_TRUE(sched);
    inj.arm(*sched);
    for (std::uint64_t cell = 0; cell < 64; ++cell) {
        inj.setContext(cell, 2);
        for (std::uint64_t sub = 0; sub < 4; ++sub)
            EXPECT_EQ(inj.fire(FaultKind::GarbageFrame),
                      sched->wouldFire(FaultKind::GarbageFrame, cell, 2,
                                       sub))
                << "cell " << cell << " subseq " << sub;
    }
}

TEST(Fault, SlowDelayIsDeterministicAndBounded)
{
    FaultInjector inj;
    const auto sched = FaultSchedule::parse("seed=5:slow@p1");
    ASSERT_TRUE(sched);
    inj.arm(*sched);
    inj.setContext(9, 1);
    const auto first = inj.slowDelay();
    EXPECT_GE(first.count(), 1);
    EXPECT_LE(first.count(), 50);
    EXPECT_EQ(first, inj.slowDelay());
    inj.setContext(10, 1);
    // Not asserting inequality for every pair — just that the delay
    // is context-keyed, which one differing neighbour demonstrates
    // over a small scan.
    bool differs = false;
    for (std::uint64_t cell = 10; cell < 30 && !differs; ++cell) {
        inj.setContext(cell, 1);
        differs = inj.slowDelay() != first;
    }
    EXPECT_TRUE(differs);
}

TEST(Fault, ArmFromEnvArmsAndDisarms)
{
    FaultInjector inj;
    setenv("RATSIM_FAULT", "seed=9:kill@p1", 1);
    EXPECT_TRUE(inj.armFromEnv());
    EXPECT_TRUE(inj.armed());
    EXPECT_EQ(inj.schedule().seed, 9u);

    unsetenv("RATSIM_FAULT");
    EXPECT_FALSE(inj.armFromEnv());
    EXPECT_FALSE(inj.armed());
}

} // namespace
} // namespace rat
