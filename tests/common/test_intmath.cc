/** @file Unit tests for integer-math helpers. */

#include <gtest/gtest.h>

#include "common/intmath.hh"

namespace rat {
namespace {

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(floorLog2(1ULL << 40), 40u);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(8, 4), 2u);
}

class PowerOf2Param : public ::testing::TestWithParam<unsigned> {};

TEST_P(PowerOf2Param, RoundTripsThroughLog2)
{
    const std::uint64_t v = std::uint64_t{1} << GetParam();
    EXPECT_TRUE(isPowerOf2(v));
    EXPECT_EQ(floorLog2(v), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllShifts, PowerOf2Param,
                         ::testing::Values(0u, 1u, 6u, 12u, 20u, 31u, 40u,
                                           63u));

} // namespace
} // namespace rat
