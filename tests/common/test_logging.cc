/** @file Unit tests for error-reporting helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace rat {
namespace {

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(RAT_ASSERT(1 == 2, "math broke: %d", 7),
                 "assertion '1 == 2' failed.*math broke: 7");
}

TEST(LoggingDeathTest, AssertWithoutMessage)
{
    EXPECT_DEATH(RAT_ASSERT(false), "assertion 'false' failed");
}

TEST(Logging, AssertPassesOnTrue)
{
    RAT_ASSERT(2 + 2 == 4, "never fires");
    SUCCEED();
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning %d", 1);
    inform("just info %d", 2);
    SUCCEED();
}

} // namespace
} // namespace rat
