/** @file Unit and statistical tests for the deterministic RNG helpers. */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace rat {
namespace {

TEST(SplitMix, Deterministic)
{
    EXPECT_EQ(splitmix64(42), splitmix64(42));
    EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(SplitMix, MixesNearbyInputs)
{
    // Hamming distance between outputs for adjacent inputs should be
    // large (avalanche); require > 16 differing bits.
    const std::uint64_t a = splitmix64(1000);
    const std::uint64_t b = splitmix64(1001);
    EXPECT_GT(__builtin_popcountll(a ^ b), 16);
}

TEST(HashCombine, OrderMatters)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Xoshiro, ReproducibleFromSeed)
{
    Xoshiro256 a(7);
    Xoshiro256 b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge)
{
    Xoshiro256 a(7);
    Xoshiro256 b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Xoshiro, BoundedStaysInRange)
{
    Xoshiro256 rng(11);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextBounded(37);
        EXPECT_LT(v, 37u);
    }
}

TEST(Xoshiro, DoubleInUnitInterval)
{
    Xoshiro256 rng(13);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Xoshiro, BernoulliMatchesProbability)
{
    Xoshiro256 rng(17);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    const double p = static_cast<double>(hits) / n;
    EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(Xoshiro, BoundedIsRoughlyUniform)
{
    Xoshiro256 rng(19);
    constexpr unsigned buckets = 16;
    unsigned counts[buckets] = {};
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(buckets)];
    for (unsigned b = 0; b < buckets; ++b) {
        EXPECT_NEAR(static_cast<double>(counts[b]), n / buckets,
                    0.05 * n / buckets);
    }
}

} // namespace
} // namespace rat
