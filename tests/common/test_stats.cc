/** @file Unit tests for statistics primitives. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace rat {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, TracksMeanMinMax)
{
    RunningStat s;
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.sample(-5.0);
    s.sample(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10, 4); // buckets [0,10) [10,20) [20,30) [30,40) + ovf
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);
    h.sample(1000);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
    EXPECT_EQ(h.totalCount(), 6u);
    h.reset();
    EXPECT_EQ(h.totalCount(), 0u);
}

TEST(Histogram, MeanIsExact)
{
    Histogram h(10, 2);
    h.sample(5);
    h.sample(15);
    h.sample(100);
    EXPECT_DOUBLE_EQ(h.mean(), 40.0);
}

TEST(HistogramDeathTest, ZeroWidthRejected)
{
    EXPECT_DEATH(Histogram(0, 4), "bucket width");
}

TEST(HarmonicMean, BasicValues)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, -2.0}), 0.0);
}

TEST(HarmonicMean, DominatedBySmallest)
{
    const double hm = harmonicMean({0.1, 10.0, 10.0});
    EXPECT_LT(hm, 0.3 * 3);
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

} // namespace
} // namespace rat
