/** @file Hand-scripted instruction streams for directed core tests. */

#ifndef RAT_TESTS_CORE_SCRIPTED_SOURCE_HH
#define RAT_TESTS_CORE_SCRIPTED_SOURCE_HH

#include <vector>

#include "trace/source.hh"

namespace rat::test {

/**
 * A TraceSource that plays filler ALU work, then a hand-written script,
 * then filler forever. The filler warms the I-cache lines the script
 * will use (two full passes before the script starts), so directed
 * tests observe the scripted behaviour, not cold-start noise.
 *
 * Layout: indices [0, kScriptStart) are filler; [kScriptStart,
 * kScriptStart + script.size()) are the scripted ops; everything after
 * is filler again. All PCs cycle through one 2 KB code region.
 */
class ScriptedSource : public trace::TraceSource
{
  public:
    /** First dynamic index of the scripted region. */
    static constexpr InstSeq kScriptStart = 1024;
    /** Base of the private data address space. */
    static constexpr Addr kDataBase = Addr{1} << 40;
    /** Base of the code region. */
    static constexpr Addr kCodeBase = Addr{1} << 30;

    explicit ScriptedSource(std::vector<trace::MicroOp> script)
        : script_(std::move(script))
    {
    }

    trace::MicroOp
    at(InstSeq idx) const override
    {
        trace::MicroOp op;
        if (idx >= kScriptStart && idx - kScriptStart < script_.size())
            op = script_[idx - kScriptStart];
        else
            op = filler();
        op.seq = idx;
        op.pc = kCodeBase + 4 * (idx % 512);
        return op;
    }

    // --- script-building helpers ------------------------------------------

    /** Independent 1-cycle ALU op (reads the never-written register 31). */
    static trace::MicroOp
    filler()
    {
        trace::MicroOp op;
        op.op = trace::OpClass::IntAlu;
        op.srcInt[0] = 31;
        op.srcInt[1] = 31;
        op.numSrcInt = 2;
        op.hasDst = true;
        op.dst = 30;
        return op;
    }

    static trace::MicroOp
    alu(ArchReg dst, ArchReg src1, ArchReg src2 = 31)
    {
        trace::MicroOp op;
        op.op = trace::OpClass::IntAlu;
        op.srcInt[0] = src1;
        op.srcInt[1] = src2;
        op.numSrcInt = 2;
        op.hasDst = true;
        op.dst = dst;
        return op;
    }

    static trace::MicroOp
    load(ArchReg dst, ArchReg addr_src, Addr addr)
    {
        trace::MicroOp op;
        op.op = trace::OpClass::Load;
        op.srcInt[0] = addr_src;
        op.numSrcInt = 1;
        op.hasDst = true;
        op.dst = dst;
        op.effAddr = addr;
        return op;
    }

    static trace::MicroOp
    store(ArchReg addr_src, ArchReg data_src, Addr addr)
    {
        trace::MicroOp op;
        op.op = trace::OpClass::Store;
        op.srcInt[0] = addr_src;
        op.srcInt[1] = data_src;
        op.numSrcInt = 2;
        op.effAddr = addr;
        return op;
    }

    static trace::MicroOp
    branch(ArchReg cond_src, bool taken, Addr target)
    {
        trace::MicroOp op;
        op.op = trace::OpClass::Branch;
        op.srcInt[0] = cond_src;
        op.numSrcInt = 1;
        op.taken = taken;
        op.target = target;
        return op;
    }

    static trace::MicroOp
    sync(bool is_lock)
    {
        trace::MicroOp op;
        op.op = is_lock ? trace::OpClass::Lock : trace::OpClass::Unlock;
        op.srcInt[0] = 31;
        op.numSrcInt = 1;
        return op;
    }

  private:
    std::vector<trace::MicroOp> script_;
};

} // namespace rat::test

#endif // RAT_TESTS_CORE_SCRIPTED_SOURCE_HH
