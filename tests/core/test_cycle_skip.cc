/**
 * @file
 * Quiescence-aware cycle skipping vs per-cycle ticking (DESIGN.md,
 * "Cycle skipping & quiescence invariants").
 *
 * Fast-forwarding over provably idle cycles must be *bit-identical* to
 * ticking through them — the same contract the event-driven scheduler
 * refactor established. Pinned here:
 *
 *  - full serialized SimResult equality, skip vs ticked, across every
 *    scheduling policy (the MIX2 pair exercises runahead, flush and
 *    resource-control paths);
 *  - the full 2x2 mode grid (scheduler mode x skip mode) on a
 *    memory-bound pair under RaT, including the SchedCounters work
 *    accounting (the broadcast reference's per-cycle rescan visits are
 *    integrated analytically over skipped spans);
 *  - skipped-span occupancy integration: the sampleCycle() accumulators
 *    (mode cycles and register-occupancy products) match the ticked
 *    values exactly while a large fraction of cycles is skipped;
 *  - a skip never crosses a HillClimbing epoch boundary (the policy
 *    horizon clamp) nor the simulator's warmup -> measure stats-reset
 *    boundary (the run-window clamp).
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "policy/factory.hh"
#include "policy/hill_climbing.hh"
#include "report/serialize.hh"
#include "sim/simulator.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace rat::sim {
namespace {

SimConfig
skipConfig(core::PolicyKind kind, bool skip, bool broadcast = false)
{
    SimConfig cfg;
    cfg.prewarmInsts = 100000;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 10000;
    cfg.core.policy = kind;
    cfg.core.cycleSkipping = skip;
    cfg.core.broadcastScheduler = broadcast;
    return cfg;
}

std::string
resultJson(const SimConfig &cfg, const std::vector<std::string> &programs)
{
    Simulator sim(cfg, programs);
    return report::toJson(sim.run()).dump(2);
}

TEST(CycleSkip, SkipMatchesTickedAcrossPolicies)
{
    const std::vector<std::string> programs = {"art", "gzip"};
    for (const std::string &name : policy::policyKindNames()) {
        SCOPED_TRACE(name);
        const auto kind = policy::parsePolicyKind(name);
        ASSERT_TRUE(kind.has_value());
        const std::string skipped =
            resultJson(skipConfig(*kind, true), programs);
        const std::string ticked =
            resultJson(skipConfig(*kind, false), programs);
        EXPECT_EQ(skipped, ticked);
    }
}

TEST(CycleSkip, TwoByTwoModeGridIdentical)
{
    // Scheduler mode x skip mode on a memory-bound RaT pair: all four
    // cells must serialize identically, and within each scheduler mode
    // the hot-path work counters must match ticked execution exactly
    // (skipped spans integrate the broadcast rescan analytically).
    const std::vector<std::string> programs = {"art", "mcf"};
    std::string reference;
    for (const bool broadcast : {false, true}) {
        core::SmtCore::SchedCounters counters[2];
        for (const bool skip : {false, true}) {
            SCOPED_TRACE(std::string(broadcast ? "bcast" : "event") +
                         (skip ? "+skip" : "+tick"));
            Simulator sim(skipConfig(core::PolicyKind::Rat, skip,
                                     broadcast),
                          programs);
            const std::string json = report::toJson(sim.run()).dump(2);
            counters[skip] = sim.smtCore().schedCounters();
            if (reference.empty())
                reference = json;
            else
                EXPECT_EQ(json, reference);
        }
        EXPECT_EQ(counters[0].regWakeVisits, counters[1].regWakeVisits);
        EXPECT_EQ(counters[0].storeWakeVisits,
                  counters[1].storeWakeVisits);
        EXPECT_EQ(counters[0].readySelectVisits,
                  counters[1].readySelectVisits);
    }
}

TEST(CycleSkip, OccupancyIntegrationMatchesTicked)
{
    // STALL on a memory-bound pair spends most cycles fully idle, so
    // the mode-cycle and register-occupancy accumulators are mostly
    // produced by skipped-span integration — they must equal the
    // per-cycle sampled values bit for bit.
    const std::vector<std::string> programs = {"art", "mcf"};

    PhaseTiming skip_timing;
    Simulator skip_sim(skipConfig(core::PolicyKind::Stall, true),
                       programs);
    const SimResult skipped = skip_sim.run(&skip_timing);

    Simulator tick_sim(skipConfig(core::PolicyKind::Stall, false),
                       programs);
    const SimResult ticked = tick_sim.run();

    // The integration must actually have run (vacuous equality would
    // pin nothing).
    ASSERT_GT(skip_timing.measureSkippedCycles, 0u);
    ASSERT_GT(skip_timing.measureSkipSpans, 0u);

    ASSERT_EQ(skipped.threads.size(), ticked.threads.size());
    for (std::size_t t = 0; t < skipped.threads.size(); ++t) {
        SCOPED_TRACE(skipped.threads[t].program);
        const core::ThreadStats &s = skipped.threads[t].core;
        const core::ThreadStats &r = ticked.threads[t].core;
        EXPECT_EQ(s.normalCycles, r.normalCycles);
        EXPECT_EQ(s.runaheadCycles, r.runaheadCycles);
        EXPECT_EQ(s.normalRegCycles, r.normalRegCycles);
        EXPECT_EQ(s.runaheadRegCycles, r.runaheadRegCycles);
        // Every thread is sampled on every simulated cycle, ticked or
        // skipped.
        EXPECT_EQ(s.normalCycles + s.runaheadCycles, skipped.cycles);
    }
}

TEST(CycleSkip, NeverCrossesWarmupMeasureBoundary)
{
    // SmtCore::run clamps every fast-forward to the requested window,
    // so the warmup -> measure resetStats boundary lands on the exact
    // cycle and the measured window is exactly measureCycles long.
    const SimConfig cfg = skipConfig(core::PolicyKind::Stall, true);
    Simulator sim(cfg, {"art", "mcf"});
    PhaseTiming timing;
    const SimResult r = sim.run(&timing);

    EXPECT_EQ(r.cycles, cfg.measureCycles);
    EXPECT_GT(timing.measureSkippedCycles, 0u);
    EXPECT_LT(timing.measureSkippedCycles, cfg.measureCycles);
    EXPECT_LE(timing.warmupSkippedCycles, cfg.warmupCycles);
}

/**
 * HillClimbing with the epoch state machine mirrored externally: the
 * base policy rebases epochStart_ to the cycle a boundary fires on, so
 * if a fast-forward ever overshot a boundary the fire cycle would be
 * late and every later epoch would shift — exactly the divergence the
 * quiescentUntil clamp exists to prevent.
 */
class EpochPinPolicy : public policy::HillClimbingPolicy
{
  public:
    explicit EpochPinPolicy(const policy::HillClimbingConfig &config)
        : HillClimbingPolicy(config), epochLength_(config.epochLength)
    {
    }

    void
    beginCycle(core::SmtCore &core) override
    {
        const Cycle now = core.cycle();
        if (!primed_) {
            // The first call fires a boundary immediately (epochStart
            // is 0 and the clock is already past the prewarm window).
            primed_ = true;
            nextBoundary_ = now + epochLength_;
        } else if (now >= nextBoundary_) {
            EXPECT_EQ(now, nextBoundary_)
                << "cycle skip crossed a HillClimbing epoch boundary";
            nextBoundary_ = now + epochLength_;
            ++boundaries_;
        }
        HillClimbingPolicy::beginCycle(core);
    }

    int boundaries() const { return boundaries_; }

  private:
    Cycle epochLength_;
    bool primed_ = false;
    Cycle nextBoundary_ = 0;
    int boundaries_ = 0;
};

TEST(CycleSkip, NeverCrossesHillClimbingEpochBoundary)
{
    // Short epochs on an idle-heavy pair: boundaries land inside
    // would-be quiescent spans, so the policy horizon must clamp them.
    core::CoreConfig cfg;
    cfg.numThreads = 2;
    cfg.policy = core::PolicyKind::HillClimbing;
    cfg.cycleSkipping = true;

    mem::MemoryHierarchy mem{mem::MemConfig{}};
    std::vector<std::unique_ptr<trace::TraceGenerator>> gens;
    std::vector<const trace::TraceSource *> streams;
    const std::vector<std::string> programs = {"art", "mcf"};
    for (std::size_t i = 0; i < programs.size(); ++i) {
        gens.push_back(std::make_unique<trace::TraceGenerator>(
            trace::spec2000(programs[i]), 1 + i * 7919,
            (static_cast<Addr>(i) + 1) << 40));
        streams.push_back(gens.back().get());
    }

    policy::HillClimbingConfig hc;
    hc.epochLength = 256;
    EpochPinPolicy policy(hc);
    core::SmtCore core(cfg, mem, policy, std::move(streams));
    core.prewarm(200000);
    core.run(30000);

    // The pin is only meaningful if skipping engaged and boundaries
    // actually fired while it was active.
    EXPECT_GT(core.skipStats().skippedCycles, 0u);
    EXPECT_GT(core.skipStats().skipSpans, 0u);
    EXPECT_GT(policy.boundaries(), 10);
}

} // namespace
} // namespace rat::sim
