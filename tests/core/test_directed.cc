/** @file Directed microarchitecture tests using hand-scripted streams. */

#include <memory>

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "mem/hierarchy.hh"
#include "policy/factory.hh"
#include "tests/core/scripted_source.hh"

namespace rat::core {
namespace {

using test::ScriptedSource;
using trace::MicroOp;

/** A cold address, distinct per call site. */
constexpr Addr
coldAddr(unsigned i)
{
    return ScriptedSource::kDataBase + 0x100000 + i * 0x10000;
}

struct DirectedHarness {
    std::unique_ptr<ScriptedSource> source;
    std::unique_ptr<mem::MemoryHierarchy> mem;
    std::unique_ptr<SchedulingPolicy> policy;
    std::unique_ptr<SmtCore> core;

    explicit DirectedHarness(std::vector<MicroOp> script,
                             PolicyKind kind = PolicyKind::Icount)
    {
        source = std::make_unique<ScriptedSource>(std::move(script));
        mem = std::make_unique<mem::MemoryHierarchy>(mem::MemConfig{});
        policy = policy::makePolicy(kind);
        CoreConfig cfg;
        cfg.numThreads = 1;
        cfg.policy = kind;
        std::vector<const trace::TraceSource *> streams = {source.get()};
        core = std::make_unique<SmtCore>(cfg, *mem, *policy,
                                         std::move(streams));
    }

    /** Run until the scripted region has fully committed (bounded). */
    void
    runPastScript(std::size_t script_len, Cycle max_cycles = 60000)
    {
        const std::uint64_t target =
            ScriptedSource::kScriptStart + script_len + 64;
        for (Cycle c = 0; c < max_cycles; c += 100) {
            core->run(100);
            if (core->threadStats(0).committedInsts >= target)
                return;
        }
    }
};

TEST(Directed, StoreToLoadForwardingSkipsTheCache)
{
    const Addr a = coldAddr(0);
    std::vector<MicroOp> script = {
        // An older cold load blocks commit so the store/load pair stays
        // in flight together — the precondition for forwarding.
        ScriptedSource::load(4, 31, coldAddr(14)),
        ScriptedSource::alu(5, 31),       // produce store data in r5
        ScriptedSource::store(31, 5, a),  // store r5 to A
        ScriptedSource::load(6, 31, a),   // load A: must forward from LSQ
        ScriptedSource::alu(7, 6),        // consume the loaded value
    };
    DirectedHarness h(script);
    h.runPastScript(script.size());

    const auto &m = h.mem->threadStats(0);
    // Only the blocking load reached the cache; the A-load forwarded.
    EXPECT_EQ(m.loads, 1u);
    // The store wrote through at commit.
    EXPECT_EQ(m.stores, 1u);
    EXPECT_GT(h.core->threadStats(0).committedInsts,
              ScriptedSource::kScriptStart + script.size());
}

TEST(Directed, IndependentLoadDoesNotForward)
{
    const Addr a = coldAddr(1);
    const Addr b = coldAddr(2);
    std::vector<MicroOp> script = {
        ScriptedSource::alu(5, 31),
        ScriptedSource::store(31, 5, a),
        ScriptedSource::load(6, 31, b), // different line: real access
    };
    DirectedHarness h(script);
    h.runPastScript(script.size());
    EXPECT_EQ(h.mem->threadStats(0).loads, 1u);
}

TEST(Directed, ColdLoadBlocksCommitUnderIcount)
{
    std::vector<MicroOp> script = {
        ScriptedSource::load(6, 31, coldAddr(3)),
    };
    DirectedHarness h(script);

    // Run until the scripted load is the next commit candidate, then
    // confirm commit progress halts for roughly the memory latency.
    Cycle stall_start = 0;
    std::uint64_t committed_at_stall = 0;
    for (Cycle c = 0; c < 20000; ++c) {
        h.core->tick();
        const auto committed = h.core->threadStats(0).committedInsts;
        if (committed >= ScriptedSource::kScriptStart &&
            committed < ScriptedSource::kScriptStart + 1) {
            stall_start = h.core->cycle();
            committed_at_stall = committed;
            break;
        }
    }
    ASSERT_GT(stall_start, 0u);
    // 100 cycles later the load (400-cycle miss) still has not committed.
    h.core->run(100);
    EXPECT_EQ(h.core->threadStats(0).committedInsts, committed_at_stall);
    EXPECT_EQ(h.core->threadStats(0).runaheadEntries, 0u); // ICOUNT
}

TEST(Directed, RunaheadEntersOnBlockingLoadAndPrefetches)
{
    std::vector<MicroOp> script;
    script.push_back(ScriptedSource::load(6, 31, coldAddr(4)));
    for (int i = 0; i < 40; ++i)
        script.push_back(ScriptedSource::filler());
    // A second, independent cold load well behind the first: runahead
    // must reach it and prefetch it.
    script.push_back(ScriptedSource::load(7, 31, coldAddr(5)));
    for (int i = 0; i < 40; ++i)
        script.push_back(ScriptedSource::filler());

    DirectedHarness h(script, PolicyKind::Rat);
    h.runPastScript(script.size());

    const auto &s = h.core->threadStats(0);
    const auto &m = h.mem->threadStats(0);
    EXPECT_GE(s.runaheadEntries, 1u);
    EXPECT_GE(m.raMemPrefetches, 1u); // the second load, prefetched
    // The second load then hit the prefetched line on replay: only the
    // first load was a demand L2 miss.
    EXPECT_EQ(m.l2DemandMisses, 1u);
}

TEST(Directed, InvPropagatesThroughDependenceChain)
{
    std::vector<MicroOp> script;
    script.push_back(ScriptedSource::load(6, 31, coldAddr(6)));
    // Dependent chain: each reads the previous result.
    script.push_back(ScriptedSource::alu(7, 6));
    script.push_back(ScriptedSource::alu(8, 7));
    script.push_back(ScriptedSource::alu(9, 8));
    for (int i = 0; i < 30; ++i)
        script.push_back(ScriptedSource::filler());

    DirectedHarness h(script, PolicyKind::Rat);
    h.runPastScript(script.size());

    const auto &s = h.core->threadStats(0);
    ASSERT_GE(s.runaheadEntries, 1u);
    // The chain folded as INV during runahead (plus the load itself).
    EXPECT_GE(s.invalidInsts, 4u);
}

TEST(Directed, InvStoreFoldsDependentLoad)
{
    const Addr b = coldAddr(8);
    std::vector<MicroOp> script;
    script.push_back(ScriptedSource::load(6, 31, coldAddr(7)));
    // Store whose *data* is the INV load result, then a load from the
    // stored-to address: the INV status must flow through the LSQ.
    script.push_back(ScriptedSource::store(31, 6, b));
    script.push_back(ScriptedSource::load(9, 31, b));
    for (int i = 0; i < 30; ++i)
        script.push_back(ScriptedSource::filler());

    DirectedHarness h(script, PolicyKind::Rat);
    h.runPastScript(script.size());

    const auto &m = h.mem->threadStats(0);
    // During runahead, the B-load folded instead of prefetching B: the
    // only runahead memory traffic would be unrelated. B itself is
    // touched for the first time by the *replay* (demand), so demand
    // misses include A and B but runahead prefetches stay 0.
    EXPECT_EQ(m.raMemPrefetches, 0u);
}

TEST(Directed, SyncOpsExecuteNormallyButFoldInRunahead)
{
    // Normal mode: lock/unlock commit like cheap ALU ops.
    std::vector<MicroOp> normal_script = {
        ScriptedSource::sync(true),
        ScriptedSource::alu(5, 31),
        ScriptedSource::sync(false),
    };
    DirectedHarness normal(normal_script);
    normal.runPastScript(normal_script.size());
    EXPECT_GT(normal.core->threadStats(0).committedInsts,
              ScriptedSource::kScriptStart + normal_script.size());
    EXPECT_EQ(normal.core->threadStats(0).invalidInsts, 0u);

    // Runahead: sync ops *fetched during* a runahead episode are
    // ignored (Section 3.3, Synchronization). Distance them from the
    // triggering load so they are fetched after entry, not before.
    std::vector<MicroOp> ra_script;
    ra_script.push_back(ScriptedSource::load(6, 31, coldAddr(9)));
    for (int i = 0; i < 64; ++i)
        ra_script.push_back(ScriptedSource::filler());
    ra_script.push_back(ScriptedSource::sync(true));
    ra_script.push_back(ScriptedSource::alu(5, 31));
    ra_script.push_back(ScriptedSource::sync(false));
    for (int i = 0; i < 30; ++i)
        ra_script.push_back(ScriptedSource::filler());
    DirectedHarness ra(ra_script, PolicyKind::Rat);
    ra.runPastScript(ra_script.size());
    ASSERT_GE(ra.core->threadStats(0).runaheadEntries, 1u);
    EXPECT_GE(ra.core->threadStats(0).invalidInsts, 3u); // load + 2 sync
}

TEST(Directed, MispredictedBranchStallsFetchUntilResolution)
{
    std::vector<MicroOp> script;
    // Branch condition depends on a cold load: resolution takes the
    // full miss latency, freezing fetch (bubble model).
    script.push_back(ScriptedSource::load(6, 31, coldAddr(10)));
    // Cold perceptron predicts taken (y = 0); actual = not-taken.
    script.push_back(
        ScriptedSource::branch(6, false, ScriptedSource::kCodeBase));
    for (int i = 0; i < 64; ++i)
        script.push_back(ScriptedSource::filler());

    DirectedHarness h(script);
    // Run until the branch has been fetched.
    const auto branch_seq = ScriptedSource::kScriptStart + 1;
    for (Cycle c = 0; c < 20000; ++c) {
        h.core->tick();
        if (h.core->nextFetchSeq(0) > branch_seq)
            break;
    }
    const auto fetched_now = h.core->threadStats(0).fetchedInsts;
    // Fetch must stay frozen while the load (and thus the branch) waits.
    h.core->run(150);
    EXPECT_EQ(h.core->threadStats(0).fetchedInsts, fetched_now);
    // After the miss returns, fetch resumes and the branch commits.
    h.core->run(600);
    EXPECT_GT(h.core->threadStats(0).fetchedInsts, fetched_now);
    EXPECT_GE(h.core->threadStats(0).branchMispredicts, 1u);
}

TEST(Directed, FlushSquashesExactlyTheYoungerInstructions)
{
    std::vector<MicroOp> script;
    script.push_back(ScriptedSource::load(6, 31, coldAddr(11)));
    for (int i = 0; i < 40; ++i)
        script.push_back(ScriptedSource::filler());

    DirectedHarness h(script, PolicyKind::Flush);
    h.runPastScript(script.size());

    const auto &s = h.core->threadStats(0);
    // The younger fillers were squashed once and re-fetched.
    EXPECT_GT(s.squashedInsts, 0u);
    // Every scripted instruction still committed exactly once overall:
    // total committed covers the script plus surrounding filler.
    EXPECT_GT(s.committedInsts,
              ScriptedSource::kScriptStart + script.size());
    EXPECT_EQ(s.runaheadEntries, 0u);
}

TEST(Directed, RunaheadExitRestoresCleanState)
{
    std::vector<MicroOp> script;
    script.push_back(ScriptedSource::load(6, 31, coldAddr(12)));
    for (int i = 0; i < 100; ++i)
        script.push_back(ScriptedSource::filler());

    DirectedHarness h(script, PolicyKind::Rat);
    h.runPastScript(script.size());

    // After episodes completed, the register accounting must balance.
    unsigned held = h.core->regsHeld(0, false) + h.core->regsHeld(0, true);
    EXPECT_EQ(held, h.core->allocatedRegs(false) +
                        h.core->allocatedRegs(true));
    EXPECT_FALSE(h.core->inRunahead(0));
    EXPECT_GE(h.core->threadStats(0).runaheadEntries, 1u);
    // Forward progress proves the checkpoint resumed at the right seq.
    EXPECT_GT(h.core->threadStats(0).committedInsts,
              ScriptedSource::kScriptStart + script.size());
}

TEST(Directed, DeterministicAcrossIdenticalRuns)
{
    std::vector<MicroOp> script;
    script.push_back(ScriptedSource::load(6, 31, coldAddr(13)));
    for (int i = 0; i < 20; ++i)
        script.push_back(ScriptedSource::filler());

    DirectedHarness a(script, PolicyKind::Rat);
    DirectedHarness b(script, PolicyKind::Rat);
    a.core->run(5000);
    b.core->run(5000);
    EXPECT_EQ(a.core->threadStats(0).committedInsts,
              b.core->threadStats(0).committedInsts);
    EXPECT_EQ(a.core->threadStats(0).runaheadEntries,
              b.core->threadStats(0).runaheadEntries);
    EXPECT_EQ(a.mem->threadStats(0).raMemPrefetches,
              b.mem->threadStats(0).raMemPrefetches);
}

} // namespace
} // namespace rat::core
