/** @file Unit tests for the DynInst pool and handle validation. */

#include <gtest/gtest.h>

#include "core/dyninst.hh"

namespace rat::core {
namespace {

TEST(InstPool, AllocAssignsIdentity)
{
    InstPool pool(8);
    DynInst *a = pool.alloc(0);
    DynInst *b = pool.alloc(1);
    EXPECT_NE(a->uid, b->uid);
    EXPECT_LT(a->uid, b->uid); // uids are age-ordered
    EXPECT_EQ(a->tid, 0);
    EXPECT_EQ(b->tid, 1);
    EXPECT_EQ(pool.liveCount(), 2u);
}

TEST(InstPool, HandleResolvesWhileLive)
{
    InstPool pool(8);
    DynInst *a = pool.alloc(0);
    const InstHandle h = a->handle();
    EXPECT_EQ(pool.get(h), a);
}

TEST(InstPool, HandleGoesStaleAfterRelease)
{
    InstPool pool(8);
    DynInst *a = pool.alloc(0);
    const InstHandle h = a->handle();
    pool.release(a);
    EXPECT_EQ(pool.get(h), nullptr);
}

TEST(InstPool, SlotReuseInvalidatesOldHandles)
{
    InstPool pool(1);
    DynInst *a = pool.alloc(0);
    const InstHandle old = a->handle();
    pool.release(a);
    DynInst *b = pool.alloc(0);
    EXPECT_EQ(b->slot, old.slot); // same slot reused
    EXPECT_EQ(pool.get(old), nullptr);
    EXPECT_EQ(pool.get(b->handle()), b);
}

TEST(InstPoolDeathTest, ExhaustionPanics)
{
    InstPool pool(2);
    pool.alloc(0);
    pool.alloc(0);
    EXPECT_DEATH(pool.alloc(0), "exhausted");
}

TEST(InstPool, BadSlotIsNull)
{
    InstPool pool(2);
    EXPECT_EQ(pool.get(InstHandle{99, 1}), nullptr);
}

TEST(DynInst, SrcReadiness)
{
    DynInst inst;
    inst.numSrcs = 2;
    inst.srcState[0] = SrcState::Ready;
    inst.srcState[1] = SrcState::Waiting;
    EXPECT_FALSE(inst.allSrcsReady());
    inst.srcState[1] = SrcState::Ready;
    EXPECT_TRUE(inst.allSrcsReady());
    inst.depStoreUid = 5;
    EXPECT_FALSE(inst.allSrcsReady()); // store dependence blocks
    inst.depStoreUid = 0;
    inst.srcState[0] = SrcState::Invalid;
    EXPECT_TRUE(inst.anySrcInvalid());
}

TEST(MapEntryEncoding, SentinelsAreNotPhys)
{
    EXPECT_FALSE(isPhysEntry(kMapArch));
    EXPECT_FALSE(isPhysEntry(kMapInv));
    EXPECT_TRUE(isPhysEntry(0));
    EXPECT_TRUE(isPhysEntry(319));
}

} // namespace
} // namespace rat::core
