/** @file Shared fixtures for core-level tests. */

#ifndef RAT_TESTS_CORE_TEST_HELPERS_HH
#define RAT_TESTS_CORE_TEST_HELPERS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/smt_core.hh"
#include "mem/hierarchy.hh"
#include "policy/factory.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace rat::test {

/** Owns everything an SmtCore needs; builds from program names. */
struct CoreHarness {
    core::CoreConfig cfg;
    std::unique_ptr<mem::MemoryHierarchy> mem;
    std::vector<std::unique_ptr<trace::TraceGenerator>> gens;
    std::unique_ptr<core::SchedulingPolicy> policy;
    std::unique_ptr<core::SmtCore> core;

    explicit CoreHarness(const std::vector<std::string> &programs,
                         core::PolicyKind kind = core::PolicyKind::Icount,
                         core::RatConfig rat = {},
                         std::uint64_t seed = 1,
                         InstSeq prewarm_insts = 500000)
    {
        cfg.numThreads = static_cast<unsigned>(programs.size());
        cfg.policy = kind;
        cfg.rat = rat;
        mem = std::make_unique<mem::MemoryHierarchy>(mem::MemConfig{});
        std::vector<const trace::TraceSource *> streams;
        for (std::size_t i = 0; i < programs.size(); ++i) {
            gens.push_back(std::make_unique<trace::TraceGenerator>(
                trace::spec2000(programs[i]), seed + i * 7919,
                (static_cast<Addr>(i) + 1) << 40));
            streams.push_back(gens.back().get());
        }
        policy = policy::makePolicy(kind);
        core = std::make_unique<core::SmtCore>(cfg, *mem, *policy,
                                               std::move(streams));
        if (prewarm_insts > 0)
            core->prewarm(prewarm_insts);
    }
};

} // namespace rat::test

#endif // RAT_TESTS_CORE_TEST_HELPERS_HH
