/** @file End-to-end pipeline tests on the SMT core (no runahead). */

#include <gtest/gtest.h>

#include "tests/core/test_helpers.hh"

namespace rat::core {
namespace {

using test::CoreHarness;

TEST(Pipeline, SingleIlpThreadMakesProgress)
{
    CoreHarness h({"gzip"});
    const Cycle start = h.core->cycle(); // prewarm fast-forwards the clock
    h.core->run(30000);
    const Cycle elapsed = h.core->cycle() - start;
    const ThreadStats &s = h.core->threadStats(0);
    EXPECT_GT(s.committedInsts, 10000u);
    const double ipc = static_cast<double>(s.committedInsts) /
                       static_cast<double>(elapsed);
    EXPECT_GT(ipc, 0.5);
    EXPECT_LE(ipc, 8.0);
}

TEST(Pipeline, CommitNeverExceedsFetch)
{
    CoreHarness h({"gcc"});
    h.core->run(20000);
    const ThreadStats &s = h.core->threadStats(0);
    EXPECT_LE(s.committedInsts, s.fetchedInsts);
    EXPECT_LE(s.committedInsts, s.executedInsts);
}

TEST(Pipeline, MemThreadIsSlowerThanIlpThread)
{
    CoreHarness ilp({"gzip"});
    CoreHarness mem_bound({"mcf"});
    ilp.core->run(30000);
    mem_bound.core->run(30000);
    EXPECT_GT(ilp.core->threadStats(0).committedInsts,
              3 * mem_bound.core->threadStats(0).committedInsts);
}

TEST(Pipeline, TwoThreadsBothProgress)
{
    CoreHarness h({"gzip", "bzip2"});
    h.core->run(30000);
    const auto &s0 = h.core->threadStats(0);
    const auto &s1 = h.core->threadStats(1);
    EXPECT_GT(s0.committedInsts, 5000u);
    EXPECT_GT(s1.committedInsts, 5000u);
    // Similar programs under ICOUNT should share roughly evenly.
    const double ratio = static_cast<double>(s0.committedInsts) /
                         static_cast<double>(s1.committedInsts);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Pipeline, BranchesAreResolvedAndMostlyPredicted)
{
    CoreHarness h({"crafty"});
    h.core->run(30000);
    const ThreadStats &s = h.core->threadStats(0);
    ASSERT_GT(s.branches, 1000u);
    const double mispredict_rate =
        static_cast<double>(s.branchMispredicts) /
        static_cast<double>(s.branches);
    EXPECT_GT(mispredict_rate, 0.005);
    EXPECT_LT(mispredict_rate, 0.30);
}

TEST(Pipeline, MemoryBoundThreadAccumulatesPendingMisses)
{
    CoreHarness h({"art"});
    bool saw_pending = false;
    for (int i = 0; i < 10000 && !saw_pending; ++i) {
        h.core->tick();
        saw_pending = h.core->hasPendingL2Miss(0);
    }
    EXPECT_TRUE(saw_pending);
}

TEST(Pipeline, ResourceAccountingConsistent)
{
    CoreHarness h({"art", "gzip"});
    for (int chunk = 0; chunk < 20; ++chunk) {
        h.core->run(1000);
        unsigned held_int = 0;
        unsigned held_fp = 0;
        unsigned rob = 0;
        for (ThreadId t = 0; t < 2; ++t) {
            held_int += h.core->regsHeld(t, false);
            held_fp += h.core->regsHeld(t, true);
            rob += h.core->robOccupancy(t);
        }
        EXPECT_EQ(held_int, h.core->allocatedRegs(false));
        EXPECT_EQ(held_fp, h.core->allocatedRegs(true));
        EXPECT_EQ(rob + h.core->robFree(),
                  h.core->config().robEntries);
    }
}

TEST(Pipeline, NoRunaheadUnderIcount)
{
    CoreHarness h({"art", "mcf"});
    h.core->run(20000);
    EXPECT_EQ(h.core->threadStats(0).runaheadEntries, 0u);
    EXPECT_EQ(h.core->threadStats(1).runaheadEntries, 0u);
    EXPECT_FALSE(h.core->inRunahead(0));
}

TEST(Pipeline, SharedRobContentionHurtsCoRunner)
{
    // gzip alone vs gzip next to a clogging memory thread under plain
    // ICOUNT (no long-latency handling): the co-runner must slow down.
    CoreHarness alone({"gzip"});
    alone.core->run(40000);
    const auto committed_alone = alone.core->threadStats(0).committedInsts;

    CoreHarness paired({"gzip", "mcf"});
    paired.core->run(40000);
    const auto committed_paired =
        paired.core->threadStats(0).committedInsts;

    EXPECT_LT(committed_paired, committed_alone);
}

TEST(Pipeline, FourThreadsSupported)
{
    CoreHarness h({"gzip", "bzip2", "gcc", "eon"});
    h.core->run(20000);
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_GT(h.core->threadStats(t).committedInsts, 1000u) << int(t);
}

TEST(Pipeline, StatsResetClearsCounters)
{
    CoreHarness h({"gzip"});
    h.core->run(5000);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
    h.core->resetStats();
    EXPECT_EQ(h.core->threadStats(0).committedInsts, 0u);
    h.core->run(5000);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
}

TEST(PipelineDeathTest, WrongStreamCountIsFatal)
{
    CoreConfig cfg;
    cfg.numThreads = 2;
    mem::MemoryHierarchy mem{mem::MemConfig{}};
    auto policy = policy::makePolicy(PolicyKind::Icount);
    trace::TraceGenerator gen(trace::spec2000("gzip"), 1, Addr{1} << 40);
    EXPECT_EXIT(SmtCore(cfg, mem, *policy, {&gen}),
                ::testing::ExitedWithCode(1), "trace streams");
}

} // namespace
} // namespace rat::core
