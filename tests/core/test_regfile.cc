/** @file Unit tests for the physical register file and rename map. */

#include <gtest/gtest.h>

#include "core/regfile.hh"

namespace rat::core {
namespace {

TEST(PhysRegFile, AllocateConsumesFreeList)
{
    PhysRegFile f(4);
    EXPECT_EQ(f.freeCount(), 4u);
    const PhysReg r = f.allocate();
    EXPECT_EQ(f.freeCount(), 3u);
    EXPECT_EQ(f.allocatedCount(), 1u);
    EXPECT_FALSE(f.isReady(r));
}

TEST(PhysRegFile, ReadyLifecycle)
{
    PhysRegFile f(4);
    const PhysReg r = f.allocate();
    f.setReady(r);
    EXPECT_TRUE(f.isReady(r));
    f.release(r);
    EXPECT_EQ(f.freeCount(), 4u);
}

TEST(PhysRegFile, ReallocatedRegisterStartsNotReady)
{
    PhysRegFile f(1);
    const PhysReg r = f.allocate();
    f.setReady(r);
    f.release(r);
    const PhysReg r2 = f.allocate();
    EXPECT_EQ(r, r2);
    EXPECT_FALSE(f.isReady(r2));
}

TEST(PhysRegFileDeathTest, DoubleReleasePanics)
{
    PhysRegFile f(2);
    const PhysReg r = f.allocate();
    f.release(r);
    EXPECT_DEATH(f.release(r), "releasing free register");
}

TEST(PhysRegFileDeathTest, UnderflowPanics)
{
    PhysRegFile f(1);
    f.allocate();
    EXPECT_DEATH(f.allocate(), "underflow");
}

TEST(RenameMap, StartsArchBacked)
{
    RenameMap m;
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(m.get(static_cast<ArchReg>(r)), kMapArch);
    EXPECT_EQ(m.livePhysCount(), 0u);
}

TEST(RenameMap, SetReturnsPrevious)
{
    RenameMap m;
    EXPECT_EQ(m.set(3, 17), kMapArch);
    EXPECT_EQ(m.set(3, 18), 17);
    EXPECT_EQ(m.get(3), 18);
    EXPECT_EQ(m.livePhysCount(), 1u);
}

TEST(RenameMap, InvEntriesAreNotLive)
{
    RenameMap m;
    m.set(1, 5);
    m.set(2, kMapInv);
    EXPECT_EQ(m.livePhysCount(), 1u);
    m.reset();
    EXPECT_EQ(m.get(2), kMapArch);
    EXPECT_EQ(m.livePhysCount(), 0u);
}

} // namespace
} // namespace rat::core
