/** @file Tests of the Runahead Threads mechanism (the paper's core). */

#include <gtest/gtest.h>

#include "tests/core/test_helpers.hh"

namespace rat::core {
namespace {

using test::CoreHarness;

RatConfig
ratDefaults()
{
    return RatConfig{};
}

TEST(Runahead, MemThreadEntersRunahead)
{
    CoreHarness h({"art"}, PolicyKind::Rat, ratDefaults());
    h.core->run(30000);
    const ThreadStats &s = h.core->threadStats(0);
    EXPECT_GT(s.runaheadEntries, 10u);
    EXPECT_GT(s.runaheadCycles, 1000u);
    EXPECT_GT(s.pseudoRetired, 0u);
    EXPECT_GT(s.invalidInsts, 0u);
}

TEST(Runahead, IlpThreadRarelyEnters)
{
    CoreHarness h({"eon"}, PolicyKind::Rat, ratDefaults());
    h.core->run(30000);
    const ThreadStats &s = h.core->threadStats(0);
    // Cache-friendly code has few L2 misses; runahead should be rare.
    EXPECT_LT(s.runaheadCycles, h.core->cycle() / 10);
}

TEST(Runahead, PrefetchingImprovesStreamingThread)
{
    CoreHarness base({"art"}, PolicyKind::Icount);
    CoreHarness rat({"art"}, PolicyKind::Rat, ratDefaults());
    base.core->run(60000);
    rat.core->run(60000);
    const auto committed_base = base.core->threadStats(0).committedInsts;
    const auto committed_rat = rat.core->threadStats(0).committedInsts;
    // Runahead prefetching must speed up a streaming memory-bound
    // thread substantially (Section 6.1: prefetch is the main source).
    EXPECT_GT(committed_rat, committed_base + committed_base / 10);
}

TEST(Runahead, IssuesMemoryPrefetches)
{
    CoreHarness h({"swim"}, PolicyKind::Rat, ratDefaults());
    h.core->run(30000);
    EXPECT_GT(h.mem->threadStats(0).raMemPrefetches, 50u);
}

TEST(Runahead, ExitsRestoreNormalMode)
{
    CoreHarness h({"art"}, PolicyKind::Rat, ratDefaults());
    h.core->run(60000);
    // Runahead episodes are bounded by the blocking miss latency, so
    // with 400-cycle misses the thread must have exited many times.
    const ThreadStats &s = h.core->threadStats(0);
    EXPECT_GT(s.runaheadEntries, 20u);
    EXPECT_GT(s.normalCycles, 0u);
    EXPECT_GT(s.committedInsts, 0u);
}

TEST(Runahead, CommittedProgressContinuesAcrossEpisodes)
{
    CoreHarness h({"mcf"}, PolicyKind::Rat, ratDefaults());
    std::uint64_t last = 0;
    for (int i = 0; i < 6; ++i) {
        h.core->run(10000);
        const std::uint64_t now = h.core->threadStats(0).committedInsts;
        EXPECT_GE(now, last);
        last = now;
    }
    EXPECT_GT(last, 100u);
}

TEST(Runahead, UsesFewerRegistersThanNormalMode)
{
    CoreHarness h({"art", "mcf"}, PolicyKind::Rat, ratDefaults());
    h.core->run(60000);
    for (ThreadId t = 0; t < 2; ++t) {
        const ThreadStats &s = h.core->threadStats(t);
        if (s.runaheadCycles > 2000 && s.normalCycles > 2000) {
            // Fig. 5 property: runahead mode holds fewer registers.
            EXPECT_LT(s.avgRegsRunahead(), s.avgRegsNormal()) << int(t);
        }
    }
}

TEST(Runahead, ChaseThreadBenefitsLessThanStreamer)
{
    // Pointer chasing (mcf) serializes misses: runahead cannot prefetch
    // a dependent chain. Streaming (swim) prefetches almost everything.
    CoreHarness mcf_base({"mcf"}, PolicyKind::Icount);
    CoreHarness mcf_rat({"mcf"}, PolicyKind::Rat, ratDefaults());
    CoreHarness swim_base({"swim"}, PolicyKind::Icount);
    CoreHarness swim_rat({"swim"}, PolicyKind::Rat, ratDefaults());
    mcf_base.core->run(60000);
    mcf_rat.core->run(60000);
    swim_base.core->run(60000);
    swim_rat.core->run(60000);

    const double mcf_gain =
        static_cast<double>(mcf_rat.core->threadStats(0).committedInsts) /
        static_cast<double>(
            mcf_base.core->threadStats(0).committedInsts);
    const double swim_gain =
        static_cast<double>(
            swim_rat.core->threadStats(0).committedInsts) /
        static_cast<double>(
            swim_base.core->threadStats(0).committedInsts);
    EXPECT_GT(swim_gain, mcf_gain);
}

TEST(Runahead, NoPrefetchAblationIsSlower)
{
    RatConfig no_pf = ratDefaults();
    no_pf.disablePrefetch = true;
    CoreHarness rat({"art"}, PolicyKind::Rat, ratDefaults());
    CoreHarness nopf({"art"}, PolicyKind::Rat, no_pf);
    rat.core->run(60000);
    nopf.core->run(60000);
    EXPECT_GT(rat.core->threadStats(0).committedInsts,
              nopf.core->threadStats(0).committedInsts);
    // The ablation still enters runahead (episodes preserved).
    EXPECT_GT(nopf.core->threadStats(0).runaheadEntries, 5u);
}

TEST(Runahead, NoFetchAblationStillRuns)
{
    RatConfig no_fetch = ratDefaults();
    no_fetch.noFetchInRunahead = true;
    CoreHarness h({"art", "gzip"}, PolicyKind::Rat, no_fetch);
    h.core->run(30000);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
    EXPECT_GT(h.core->threadStats(1).committedInsts, 0u);
}

TEST(Runahead, RunaheadCacheVariantRuns)
{
    RatConfig with_rc = ratDefaults();
    with_rc.useRunaheadCache = true;
    CoreHarness h({"mcf", "twolf"}, PolicyKind::Rat, with_rc);
    h.core->run(30000);
    EXPECT_GT(h.core->threadStats(0).runaheadEntries, 0u);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
}

TEST(Runahead, FpDropVariantsBothWork)
{
    RatConfig no_drop = ratDefaults();
    no_drop.dropFpInRunahead = false;
    CoreHarness drop({"swim"}, PolicyKind::Rat, ratDefaults());
    CoreHarness keep({"swim"}, PolicyKind::Rat, no_drop);
    drop.core->run(30000);
    keep.core->run(30000);
    EXPECT_GT(drop.core->threadStats(0).committedInsts, 1000u);
    EXPECT_GT(keep.core->threadStats(0).committedInsts, 1000u);
    // Dropping FP work must not devastate performance (addresses are
    // integer work; Section 3.3).
    const double ratio =
        static_cast<double>(drop.core->threadStats(0).committedInsts) /
        static_cast<double>(keep.core->threadStats(0).committedInsts);
    EXPECT_GT(ratio, 0.7);
}

TEST(Runahead, RegisterAccountingSurvivesEpisodes)
{
    CoreHarness h({"art", "swim"}, PolicyKind::Rat, ratDefaults());
    for (int chunk = 0; chunk < 30; ++chunk) {
        h.core->run(2000);
        unsigned held_int = 0, held_fp = 0;
        for (ThreadId t = 0; t < 2; ++t) {
            held_int += h.core->regsHeld(t, false);
            held_fp += h.core->regsHeld(t, true);
        }
        ASSERT_EQ(held_int, h.core->allocatedRegs(false));
        ASSERT_EQ(held_fp, h.core->allocatedRegs(true));
    }
}

TEST(Runahead, ChaserEpisodesAreMostlyUseless)
{
    // The efficiency property behind Mutlu et al. [10]: a pointer
    // chaser cannot prefetch its dependent chain, so most of its
    // episodes issue nothing; a streamer's episodes are productive.
    CoreHarness chaser({"mcf"}, PolicyKind::Rat, ratDefaults());
    CoreHarness streamer({"swim"}, PolicyKind::Rat, ratDefaults());
    chaser.core->run(60000);
    streamer.core->run(60000);

    const auto &sc = chaser.core->threadStats(0);
    const auto &ss = streamer.core->threadStats(0);
    ASSERT_GT(sc.runaheadEntries, 10u);
    ASSERT_GT(ss.runaheadEntries, 10u);
    const double chaser_useless =
        static_cast<double>(sc.uselessRunaheadEpisodes) /
        static_cast<double>(sc.runaheadEntries);
    const double streamer_useless =
        static_cast<double>(ss.uselessRunaheadEpisodes) /
        static_cast<double>(ss.runaheadEntries);
    EXPECT_GT(chaser_useless, streamer_useless);
    EXPECT_LT(streamer_useless, 0.5);
}

TEST(Runahead, UselessEpisodesNeverExceedEntries)
{
    CoreHarness h({"art", "mcf"}, PolicyKind::Rat, ratDefaults());
    h.core->run(40000);
    for (ThreadId t = 0; t < 2; ++t) {
        const auto &s = h.core->threadStats(t);
        EXPECT_LE(s.uselessRunaheadEpisodes, s.runaheadEntries)
            << int(t);
    }
}

TEST(Runahead, CoRunnerNotHurtByRunaheadThread)
{
    // Paper Section 6.1 (overhead): an ILP thread next to a runahead
    // thread should do at least as well as next to an ICOUNT-clogging
    // memory thread.
    CoreHarness icount({"gzip", "art"}, PolicyKind::Icount);
    CoreHarness rat({"gzip", "art"}, PolicyKind::Rat, ratDefaults());
    icount.core->run(60000);
    rat.core->run(60000);
    EXPECT_GE(rat.core->threadStats(0).committedInsts,
              icount.core->threadStats(0).committedInsts);
}

} // namespace
} // namespace rat::core
