/**
 * @file
 * Event-driven scheduler vs broadcast reference (DESIGN.md,
 * "Event-driven wakeup").
 *
 * The event-driven waiter lists, store-dependent chains and the
 * incremental ready queue must be *bit-identical* in results to the
 * original broadcast scans they replaced — and do asymptotically less
 * work. Both properties are pinned here:
 *
 *  - full serialized SimResult equality across every scheduling policy,
 *    including the squash-heavy FLUSH policy (constant flush-and-rewind
 *    exercises the unlink-before-release invariant of every intrusive
 *    list) and RaT with the runahead cache enabled (INV fold cascades
 *    through registers, stores and the runahead cache);
 *  - SchedCounters visit bounds: event-mode wakeups touch only actual
 *    dependence edges (<= kMaxSrcs per renamed instruction), while the
 *    broadcast mode pays a full issue-queue scan per event.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dyninst.hh"
#include "policy/factory.hh"
#include "report/serialize.hh"
#include "sim/simulator.hh"

namespace rat::sim {
namespace {

SimConfig
smallConfig(core::PolicyKind kind, bool broadcast)
{
    SimConfig cfg;
    cfg.prewarmInsts = 100000;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 10000;
    cfg.core.policy = kind;
    cfg.core.broadcastScheduler = broadcast;
    return cfg;
}

std::string
resultJson(const SimConfig &cfg, const std::vector<std::string> &programs)
{
    Simulator sim(cfg, programs);
    return report::toJson(sim.run()).dump(2);
}

TEST(SchedEquivalence, EventMatchesBroadcastAcrossPolicies)
{
    const std::vector<std::string> programs = {"art", "gzip"};
    for (const std::string &name : policy::policyKindNames()) {
        SCOPED_TRACE(name);
        const auto kind = policy::parsePolicyKind(name);
        ASSERT_TRUE(kind.has_value());
        const std::string event =
            resultJson(smallConfig(*kind, false), programs);
        const std::string broadcast =
            resultJson(smallConfig(*kind, true), programs);
        EXPECT_EQ(event, broadcast);
    }
}

TEST(SchedEquivalence, FlushSquashHeavyFourThreadsMatch)
{
    // FLUSH squashes a thread's whole in-flight window on every
    // detected L2 miss; four memory-bound threads make that constant.
    // This is the waiter-list stress: every squash must unlink cleanly.
    const std::vector<std::string> programs = {"art", "mcf", "swim",
                                               "twolf"};
    const std::string event =
        resultJson(smallConfig(core::PolicyKind::Flush, false), programs);
    const std::string broadcast =
        resultJson(smallConfig(core::PolicyKind::Flush, true), programs);
    EXPECT_EQ(event, broadcast);
}

TEST(SchedEquivalence, RunaheadCacheFoldCascadesMatch)
{
    // RaT with the runahead cache enabled: INV propagates through
    // registers, store-dependent chains and pseudo-retired stores.
    const std::vector<std::string> programs = {"art", "mcf"};
    SimConfig event_cfg = smallConfig(core::PolicyKind::Rat, false);
    event_cfg.core.rat.useRunaheadCache = true;
    SimConfig bcast_cfg = smallConfig(core::PolicyKind::Rat, true);
    bcast_cfg.core.rat.useRunaheadCache = true;
    EXPECT_EQ(resultJson(event_cfg, programs),
              resultJson(bcast_cfg, programs));
}

TEST(SchedEquivalence, WakeupVisitsBoundedByActualDependents)
{
    const std::vector<std::string> programs = {"art", "mcf"};

    Simulator event_sim(smallConfig(core::PolicyKind::Rat, false),
                        programs);
    const SimResult event_res = event_sim.run();
    const auto &ec = event_sim.smtCore().schedCounters();

    Simulator bcast_sim(smallConfig(core::PolicyKind::Rat, true),
                        programs);
    const SimResult bcast_res = bcast_sim.run();
    const auto &bc = bcast_sim.smtCore().schedCounters();

    ASSERT_EQ(report::toJson(event_res).dump(), report::toJson(bcast_res).dump());

    // Every instruction entering an issue queue registers at most
    // kMaxSrcs waiter nodes and one store dependence, and each node is
    // visited at most once by a wakeup. Fetched instructions bound the
    // dispatched count from above (measured window only; the counters
    // reset together with the stats).
    std::uint64_t fetched = 0;
    for (const ThreadResult &t : event_res.threads)
        fetched += t.core.fetchedInsts;
    ASSERT_GT(fetched, 0u);
    EXPECT_LE(ec.regWakeVisits, fetched * core::DynInst::kMaxSrcs);
    EXPECT_LE(ec.storeWakeVisits, fetched);

    // The broadcast scans pay the full issue-queue width per event;
    // with 64-entry queues the event scheduler must be far below it.
    // (No fixed ratio for readySelect: that one is O(ready) vs O(IQ).)
    EXPECT_LT(ec.regWakeVisits * 10, bc.regWakeVisits);
    EXPECT_LT(ec.storeWakeVisits * 10, bc.storeWakeVisits);
    EXPECT_LT(ec.readySelectVisits, bc.readySelectVisits);
}

} // namespace
} // namespace rat::sim
