/**
 * @file
 * SMT resource-sharing invariants: shared-structure occupancies stay
 * within capacity under every policy, and accounting balances across
 * long mixed runs with squashes and runahead episodes.
 */

#include <cctype>

#include <gtest/gtest.h>

#include "tests/core/test_helpers.hh"

namespace rat::core {
namespace {

using test::CoreHarness;

class SharingUnderPolicy
    : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(SharingUnderPolicy, OccupanciesNeverExceedCapacity)
{
    CoreHarness h({"art", "gzip", "mcf", "swim"}, GetParam(), {}, 3,
                  200000);
    const auto &cfg = h.core->config();
    for (int chunk = 0; chunk < 60; ++chunk) {
        h.core->run(250);
        unsigned rob = 0, lsq = 0;
        unsigned iq[kNumIqClasses] = {};
        for (ThreadId t = 0; t < 4; ++t) {
            rob += h.core->robOccupancy(t);
            lsq += h.core->lsqOccupancy(t);
            for (unsigned c = 0; c < kNumIqClasses; ++c) {
                iq[c] += h.core->iqOccupancy(
                    static_cast<IqClass>(c), t);
            }
        }
        ASSERT_LE(rob, cfg.robEntries);
        ASSERT_LE(lsq, cfg.lsqEntries);
        ASSERT_LE(iq[0], cfg.intIqEntries);
        ASSERT_LE(iq[1], cfg.lsIqEntries);
        ASSERT_LE(iq[2], cfg.fpIqEntries);
        ASSERT_LE(h.core->allocatedRegs(false), cfg.intRegs);
        ASSERT_LE(h.core->allocatedRegs(true), cfg.fpRegs);
        ASSERT_EQ(rob + h.core->robFree(), cfg.robEntries);
    }
}

TEST_P(SharingUnderPolicy, RegisterAccountingBalances)
{
    CoreHarness h({"art", "mcf"}, GetParam(), {}, 5, 200000);
    for (int chunk = 0; chunk < 50; ++chunk) {
        h.core->run(400);
        unsigned held_int = 0, held_fp = 0;
        for (ThreadId t = 0; t < 2; ++t) {
            held_int += h.core->regsHeld(t, false);
            held_fp += h.core->regsHeld(t, true);
        }
        ASSERT_EQ(held_int, h.core->allocatedRegs(false));
        ASSERT_EQ(held_fp, h.core->allocatedRegs(true));
    }
}

TEST_P(SharingUnderPolicy, AllThreadsEventuallyProgress)
{
    CoreHarness h({"swim", "gzip", "twolf", "eon"}, GetParam(), {}, 7,
                  200000);
    h.core->run(40000);
    for (ThreadId t = 0; t < 4; ++t) {
        EXPECT_GT(h.core->threadStats(t).committedInsts, 50u)
            << "thread " << int(t) << " starved under "
            << policyName(GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SharingUnderPolicy,
    ::testing::Values(PolicyKind::RoundRobin, PolicyKind::Icount,
                      PolicyKind::Stall, PolicyKind::Flush,
                      PolicyKind::Dcra, PolicyKind::HillClimbing,
                      PolicyKind::Rat, PolicyKind::RatDcra),
    [](const auto &param_info) {
        std::string name = policyName(param_info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(SmtSharing, RunaheadPairDoesNotDeadlock)
{
    CoreHarness h({"art", "gzip"}, PolicyKind::Rat, {}, 1, 100000);
    h.core->run(20000);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
    EXPECT_GT(h.core->threadStats(1).committedInsts, 0u);
}

TEST(SmtSharing, EightThreadConfigurationRuns)
{
    CoreHarness h({"gzip", "bzip2", "gcc", "eon", "art", "mcf", "swim",
                   "twolf"},
                  PolicyKind::Rat, {}, 11, 100000);
    h.core->run(15000);
    std::uint64_t total = 0;
    for (ThreadId t = 0; t < 8; ++t)
        total += h.core->threadStats(t).committedInsts;
    EXPECT_GT(total, 1000u);
}

TEST(SmtSharing, ModeCyclesPartitionWallClock)
{
    CoreHarness h({"art", "swim"}, PolicyKind::Rat, {}, 13, 200000);
    const Cycle start = h.core->cycle();
    h.core->resetStats();
    h.core->run(20000);
    const Cycle elapsed = h.core->cycle() - start;
    for (ThreadId t = 0; t < 2; ++t) {
        const auto &s = h.core->threadStats(t);
        EXPECT_EQ(s.normalCycles + s.runaheadCycles, elapsed)
            << int(t);
        EXPECT_GT(s.runaheadCycles, 0u) << int(t);
    }
}

} // namespace
} // namespace rat::core
