/** @file Unit tests for ROB / IQ / LSQ / FU pool / runahead cache. */

#include <gtest/gtest.h>

#include "core/structures.hh"

namespace rat::core {
namespace {

TEST(IssueQueue, InsertRemove)
{
    IssueQueue iq("testIQ", 2);
    InstHandle a{1, 1}, b{2, 1};
    iq.insert(a);
    iq.insert(b);
    EXPECT_TRUE(iq.full());
    iq.remove(a);
    EXPECT_EQ(iq.size(), 1u);
    EXPECT_EQ(iq.entries()[0], b);
    iq.remove(b);
    EXPECT_EQ(iq.size(), 0u);
}

TEST(IssueQueue, RemoveMissingIsNoop)
{
    IssueQueue iq("testIQ", 2);
    iq.insert({1, 1});
    iq.remove({9, 9});
    EXPECT_EQ(iq.size(), 1u);
}

TEST(IqClassMapping, OpsRouteToExpectedQueues)
{
    using trace::OpClass;
    EXPECT_EQ(iqClassOf(OpClass::IntAlu), IqClass::Int);
    EXPECT_EQ(iqClassOf(OpClass::Branch), IqClass::Int);
    EXPECT_EQ(iqClassOf(OpClass::Load), IqClass::Mem);
    EXPECT_EQ(iqClassOf(OpClass::FpStore), IqClass::Mem);
    EXPECT_EQ(iqClassOf(OpClass::FpMul), IqClass::Fp);
    EXPECT_EQ(iqClassOf(OpClass::Lock), IqClass::Int);
}

TEST(Rob, SharedPoolPerThreadLists)
{
    Rob rob(4);
    DynInst a, b;
    a.slot = 1;
    a.gen = 1;
    a.tid = 0;
    b.slot = 2;
    b.gen = 1;
    b.tid = 1;
    rob.push(a);
    rob.push(b);
    EXPECT_EQ(rob.used(), 2u);
    EXPECT_EQ(rob.threadCount(0), 1u);
    EXPECT_EQ(rob.threadCount(1), 1u);
    EXPECT_EQ(rob.head(0), a.handle());
    rob.popHead(0);
    EXPECT_EQ(rob.used(), 1u);
    EXPECT_TRUE(rob.empty(0));
    EXPECT_FALSE(rob.empty(1));
}

TEST(Rob, TailOperations)
{
    Rob rob(4);
    DynInst a, b;
    a.slot = 1;
    a.gen = 1;
    a.tid = 0;
    b.slot = 2;
    b.gen = 1;
    b.tid = 0;
    rob.push(a);
    rob.push(b);
    EXPECT_EQ(rob.tail(0), b.handle());
    rob.popTail(0);
    EXPECT_EQ(rob.tail(0), a.handle());
}

TEST(Lsq, ProgramOrderPerThread)
{
    Lsq lsq(4);
    DynInst a, b;
    a.slot = 1;
    a.gen = 1;
    a.tid = 0;
    b.slot = 2;
    b.gen = 1;
    b.tid = 0;
    lsq.insert(a);
    lsq.insert(b);
    EXPECT_EQ(lsq.used(), 2u);
    EXPECT_EQ(lsq.threadList(0).front(), a.handle());
    EXPECT_EQ(lsq.threadList(0).back(), b.handle());
    lsq.remove(a);
    EXPECT_EQ(lsq.threadList(0).front(), b.handle());
    EXPECT_EQ(lsq.threadCount(0), 1u);
}

TEST(FuncUnitPool, LimitsConcurrentIssue)
{
    FuncUnitPool pool("fu", 2);
    EXPECT_TRUE(pool.tryIssue(10, 1));
    EXPECT_TRUE(pool.tryIssue(10, 1));
    EXPECT_FALSE(pool.tryIssue(10, 1)); // both busy this cycle
    EXPECT_TRUE(pool.tryIssue(11, 1));  // pipelined: free next cycle
}

TEST(FuncUnitPool, UnpipelinedOccupancy)
{
    FuncUnitPool pool("div", 1);
    EXPECT_TRUE(pool.tryIssue(0, 20));
    EXPECT_FALSE(pool.tryIssue(10, 1));
    EXPECT_TRUE(pool.tryIssue(20, 1));
    EXPECT_EQ(pool.freeUnits(20), 0u); // claimed again at 20
}

TEST(RunaheadCache, WriteLookupClear)
{
    RunaheadCache rc(4);
    rc.write(0, 0x100, true);
    rc.write(0, 0x200, false);
    bool valid = false;
    EXPECT_TRUE(rc.lookup(0, 0x100, valid));
    EXPECT_TRUE(valid);
    EXPECT_TRUE(rc.lookup(0, 0x200, valid));
    EXPECT_FALSE(valid);
    EXPECT_FALSE(rc.lookup(0, 0x300, valid));
    EXPECT_FALSE(rc.lookup(1, 0x100, valid)); // per-thread tags
    rc.clear(0);
    EXPECT_FALSE(rc.lookup(0, 0x100, valid));
}

TEST(RunaheadCache, RewriteUpdatesStatus)
{
    RunaheadCache rc(4);
    rc.write(0, 0x100, true);
    rc.write(0, 0x100, false);
    bool valid = true;
    EXPECT_TRUE(rc.lookup(0, 0x100, valid));
    EXPECT_FALSE(valid);
}

TEST(RunaheadCache, BoundedFifoEviction)
{
    RunaheadCache rc(2);
    rc.write(0, 0x100, true);
    rc.write(0, 0x200, true);
    rc.write(0, 0x300, true); // evicts 0x100
    bool valid = false;
    EXPECT_FALSE(rc.lookup(0, 0x100, valid));
    EXPECT_TRUE(rc.lookup(0, 0x300, valid));
}

} // namespace
} // namespace rat::core
