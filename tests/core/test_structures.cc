/** @file Unit tests for ROB / IQ / LSQ / FU pool structures. */

#include <gtest/gtest.h>

#include "core/structures.hh"

namespace rat::core {
namespace {

TEST(IssueQueue, InsertRemove)
{
    IssueQueue iq("testIQ", 2);
    DynInst a, b;
    iq.insert(a);
    iq.insert(b);
    EXPECT_TRUE(iq.full());
    iq.remove(a);
    EXPECT_EQ(iq.size(), 1u);
    EXPECT_EQ(iq.entries()[0], &b);
    iq.remove(b);
    EXPECT_EQ(iq.size(), 0u);
}

TEST(IssueQueue, MiddleRemovalKeepsPositionsConsistent)
{
    // O(1) swap-with-back removal must keep every member's iqPos index
    // pointing at its own slot.
    IssueQueue iq("testIQ", 4);
    DynInst a, b, c, d;
    iq.insert(a);
    iq.insert(b);
    iq.insert(c);
    iq.insert(d);
    iq.remove(b); // d swaps into b's slot
    EXPECT_EQ(iq.size(), 3u);
    for (std::uint32_t i = 0; i < iq.entries().size(); ++i)
        EXPECT_EQ(iq.entries()[i]->iqPos, i);
    iq.remove(d);
    iq.remove(a);
    ASSERT_EQ(iq.size(), 1u);
    EXPECT_EQ(iq.entries()[0], &c);
    EXPECT_EQ(c.iqPos, 0u);
}

TEST(IqClassMapping, OpsRouteToExpectedQueues)
{
    using trace::OpClass;
    EXPECT_EQ(iqClassOf(OpClass::IntAlu), IqClass::Int);
    EXPECT_EQ(iqClassOf(OpClass::Branch), IqClass::Int);
    EXPECT_EQ(iqClassOf(OpClass::Load), IqClass::Mem);
    EXPECT_EQ(iqClassOf(OpClass::FpStore), IqClass::Mem);
    EXPECT_EQ(iqClassOf(OpClass::FpMul), IqClass::Fp);
    EXPECT_EQ(iqClassOf(OpClass::Lock), IqClass::Int);
}

TEST(Rob, SharedPoolPerThreadLists)
{
    Rob rob(4);
    DynInst a, b;
    a.tid = 0;
    b.tid = 1;
    rob.push(a);
    rob.push(b);
    EXPECT_EQ(rob.used(), 2u);
    EXPECT_EQ(rob.threadCount(0), 1u);
    EXPECT_EQ(rob.threadCount(1), 1u);
    EXPECT_EQ(rob.head(0), &a);
    rob.popHead(0);
    EXPECT_EQ(rob.used(), 1u);
    EXPECT_TRUE(rob.empty(0));
    EXPECT_FALSE(rob.empty(1));
}

TEST(Rob, TailOperations)
{
    Rob rob(4);
    DynInst a, b;
    a.tid = 0;
    b.tid = 0;
    rob.push(a);
    rob.push(b);
    EXPECT_EQ(rob.tail(0), &b);
    rob.popTail(0);
    EXPECT_EQ(rob.tail(0), &a);
    EXPECT_EQ(rob.head(0), &a);
}

TEST(InstListOps, PushPopMaintainsLinks)
{
    InstList list;
    DynInst a, b, c;
    list.push_back(a);
    list.push_back(b);
    list.push_back(c);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.head(), &a);
    EXPECT_EQ(list.tail(), &c);
    list.pop_front();
    EXPECT_EQ(list.head(), &b);
    EXPECT_EQ(b.seqPrev, nullptr);
    list.pop_back();
    EXPECT_EQ(list.head(), &b);
    EXPECT_EQ(list.tail(), &b);
    list.pop_back();
    EXPECT_TRUE(list.empty());
}

TEST(Lsq, ProgramOrderPerThread)
{
    Lsq lsq(4);
    DynInst a, b;
    a.tid = 0;
    b.tid = 0;
    lsq.insert(a);
    lsq.insert(b);
    EXPECT_EQ(lsq.used(), 2u);
    EXPECT_EQ(lsq.head(0), &a);
    EXPECT_EQ(a.lsqNext, &b);
    EXPECT_EQ(b.lsqNext, nullptr);
    lsq.remove(a);
    EXPECT_EQ(lsq.head(0), &b);
    EXPECT_EQ(lsq.threadCount(0), 1u);
    EXPECT_FALSE(a.inLsq);
}

TEST(Lsq, MiddleRemovalIsConstantTimeUnlink)
{
    Lsq lsq(8);
    DynInst a, b, c;
    a.tid = 1;
    b.tid = 1;
    c.tid = 1;
    lsq.insert(a);
    lsq.insert(b);
    lsq.insert(c);
    lsq.remove(b); // middle unlink
    EXPECT_EQ(lsq.head(1), &a);
    EXPECT_EQ(a.lsqNext, &c);
    EXPECT_EQ(c.lsqPrev, &a);
    EXPECT_EQ(lsq.threadCount(1), 2u);
    EXPECT_EQ(lsq.used(), 2u);
    // Removing an op that never entered (folded at rename) is a no-op.
    lsq.remove(b);
    EXPECT_EQ(lsq.used(), 2u);
}

TEST(Lsq, StoreChainTracksOnlyStores)
{
    Lsq lsq(8);
    DynInst ld1, st1, ld2, st2;
    ld1.tid = st1.tid = ld2.tid = st2.tid = 0;
    ld1.op.op = trace::OpClass::Load;
    st1.op.op = trace::OpClass::Store;
    ld2.op.op = trace::OpClass::FpLoad;
    st2.op.op = trace::OpClass::FpStore;
    lsq.insert(ld1);
    lsq.insert(st1);
    lsq.insert(ld2);
    lsq.insert(st2);
    EXPECT_EQ(lsq.storeCount(0), 2u);
    EXPECT_EQ(lsq.storeHead(0), &st1);
    EXPECT_EQ(st1.lsqStoreNext, &st2);
    lsq.remove(st1);
    EXPECT_EQ(lsq.storeHead(0), &st2);
    EXPECT_EQ(st2.lsqStorePrev, nullptr);
    EXPECT_EQ(lsq.storeCount(0), 1u);
    EXPECT_EQ(lsq.threadCount(0), 3u);
}

TEST(Lsq, LegacyMirrorTracksSeedDeque)
{
    Lsq lsq(8, /*legacy=*/true);
    DynInst a, b;
    a.tid = 0;
    b.tid = 0;
    lsq.insert(a);
    lsq.insert(b);
    ASSERT_EQ(lsq.legacyThreadList(0).size(), 2u);
    EXPECT_EQ(lsq.legacyThreadList(0).front(), a.handle());
    lsq.remove(a);
    ASSERT_EQ(lsq.legacyThreadList(0).size(), 1u);
    EXPECT_EQ(lsq.legacyThreadList(0).front(), b.handle());
}

TEST(FuncUnitPool, LimitsConcurrentIssue)
{
    FuncUnitPool pool("fu", 2);
    EXPECT_TRUE(pool.tryIssue(10, 1));
    EXPECT_TRUE(pool.tryIssue(10, 1));
    EXPECT_FALSE(pool.tryIssue(10, 1)); // both busy this cycle
    EXPECT_TRUE(pool.tryIssue(11, 1));  // pipelined: free next cycle
}

TEST(FuncUnitPool, UnpipelinedOccupancy)
{
    FuncUnitPool pool("div", 1);
    EXPECT_TRUE(pool.tryIssue(0, 20));
    EXPECT_FALSE(pool.tryIssue(10, 1));
    EXPECT_TRUE(pool.tryIssue(20, 1));
    EXPECT_EQ(pool.freeUnits(20), 0u); // claimed again at 20
}

} // namespace
} // namespace rat::core
