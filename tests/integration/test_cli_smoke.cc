/**
 * @file
 * End-to-end smoke tests of the `ratsim` CLI binary: run the real
 * executable (path injected by CMake as RATSIM_CLI_PATH), and check
 * exit status plus the key output lines a user relies on.
 */

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#ifndef RATSIM_CLI_PATH
#error "RATSIM_CLI_PATH must point at the ratsim binary"
#endif

namespace {

struct CliResult {
    int exitCode = -1;
    std::string output; ///< stdout + stderr, interleaved
};

CliResult
runCli(const std::string &args)
{
    // Quote the binary path; merge stderr so fatal() text is captured.
    const std::string cmd =
        "\"" RATSIM_CLI_PATH "\" " + args + " 2>&1";
    CliResult r;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        r.output.append(buf, n);
    const int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

TEST(CliSmoke, ListProgramsPrintsSpec2000Names)
{
    const CliResult r = runCli("--list-programs");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("art\n"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("mcf\n"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("gzip\n"), std::string::npos) << r.output;
}

TEST(CliSmoke, RatWorkloadRunReportsPerThreadAndThroughputLines)
{
    const CliResult r =
        runCli("--workload art,mcf --policy RaT --measure 20000");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("workload art,mcf under RaT"),
              std::string::npos)
        << r.output;
    // Per-thread stats table header and both thread rows.
    EXPECT_NE(r.output.find("RA epis."), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("art"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("mcf"), std::string::npos) << r.output;
    // Headline metrics line.
    EXPECT_NE(r.output.find("throughput (Eq.1):"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("total IPC:"), std::string::npos) << r.output;
}

TEST(CliSmoke, HelpExitsZero)
{
    const CliResult r = runCli("--help");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("usage: ratsim"), std::string::npos)
        << r.output;
}

TEST(CliSmoke, UnknownPolicyFailsWithDiagnostic)
{
    const CliResult r = runCli("--workload art,mcf --policy BOGUS");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("unknown policy"), std::string::npos)
        << r.output;
}

TEST(CliSmoke, UnknownProgramFailsWithDiagnostic)
{
    const CliResult r = runCli("--workload art,notaprogram");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("unknown program"), std::string::npos)
        << r.output;
}

TEST(CliSmoke, GarbageNumericOptionFailsWithDiagnostic)
{
    // strtoull would silently turn "abc" into 0 measured cycles; the
    // checked parser must reject it instead.
    const CliResult r = runCli("--workload art,mcf --measure abc");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("expected an unsigned integer"),
              std::string::npos)
        << r.output;

    const CliResult trailing = runCli("--workload art,mcf --seed 12x");
    EXPECT_NE(trailing.exitCode, 0);
    EXPECT_NE(trailing.output.find("expected an unsigned integer"),
              std::string::npos)
        << trailing.output;
}

TEST(CliSmoke, RunSubcommandMatchesLegacyInvocation)
{
    const char *args =
        "--workload art,mcf --policy RaT --measure 2000 --warmup 500 "
        "--prewarm 20000";
    const CliResult legacy = runCli(args);
    const CliResult sub = runCli(std::string("run ") + args);
    ASSERT_EQ(legacy.exitCode, 0) << legacy.output;
    ASSERT_EQ(sub.exitCode, 0) << sub.output;
    EXPECT_EQ(legacy.output, sub.output);
}

TEST(CliSmoke, NoCycleSkipFlagIsAcceptedAndBitIdentical)
{
    // STALL on a memory-bound pair skips most cycles, so identical
    // output across the toggle is an end-to-end pin of the
    // quiescence fast-forward's bit-identical contract.
    const char *args =
        "report --workload art,mcf --policy STALL --measure 2000 "
        "--warmup 500 --prewarm 20000 --json -";
    const CliResult skip = runCli(args);
    const CliResult tick = runCli(std::string(args) + " --no-cycle-skip");
    ASSERT_EQ(skip.exitCode, 0) << skip.output;
    ASSERT_EQ(tick.exitCode, 0) << tick.output;
    EXPECT_EQ(skip.output, tick.output);
}

TEST(CliSmoke, ReportSubcommandEmitsJsonToStdout)
{
    const CliResult r = runCli(
        "report --workload art,mcf --policy RaT --measure 2000 "
        "--warmup 500 --prewarm 20000 --json -");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("\"schema\": \"ratsim-run-v1\""),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"workload\": \"art,mcf\""),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"committedInsts\""), std::string::npos)
        << r.output;
}

TEST(CliSmoke, ReportSubcommandEmitsCsvToStdout)
{
    const CliResult r = runCli(
        "report --workload art,mcf --policy ICOUNT --measure 2000 "
        "--warmup 500 --prewarm 20000 --csv -");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("thread,program,ipc"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("art"), std::string::npos) << r.output;
}

TEST(CliSmoke, SweepSubcommandRunsGrid)
{
    const CliResult r = runCli(
        "sweep --policies ICOUNT --workloads art,mcf --measure 1000 "
        "--warmup 200 --prewarm 5000");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("sweep: 1 cells"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("ICOUNT"), std::string::npos) << r.output;
}

TEST(CliSmoke, DiscoveryFlagInValuePositionIsNotHijacked)
{
    // "--list-programs" here is the (missing) value of --workload; it
    // must parse as a bad program name, not short-circuit into the
    // program listing with exit 0.
    const CliResult r = runCli("run --workload --list-programs");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("unknown program"), std::string::npos)
        << r.output;
}

TEST(CliSmoke, EmptySweepListsFailWithDiagnostic)
{
    const CliResult w = runCli("sweep --workloads \";\"");
    EXPECT_NE(w.exitCode, 0);
    EXPECT_NE(w.output.find("--workloads"), std::string::npos)
        << w.output;

    const CliResult g = runCli("sweep --groups \"\"");
    EXPECT_NE(g.exitCode, 0);
    EXPECT_NE(g.output.find("--groups"), std::string::npos) << g.output;
}

TEST(CliSmoke, RaVariantFlagReachesReportedConfig)
{
    const CliResult r = runCli(
        "report --workload art,mcf --policy RaT --measure 2000 "
        "--warmup 500 --prewarm 20000 --ra-variant capped --ra-cap 64 "
        "--json -");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("\"variant\": \"capped\""), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"cappedMaxCycles\": 64"), std::string::npos)
        << r.output;
}

TEST(CliSmoke, UnknownRaVariantFailsWithDiagnostic)
{
    const CliResult r =
        runCli("run --workload art,mcf --ra-variant bogus");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("unknown runahead variant"),
              std::string::npos)
        << r.output;
}

TEST(CliSmoke, RaCacheLinesFlagIsAccepted)
{
    const CliResult r = runCli(
        "run --workload art,mcf --policy RaT --measure 1000 "
        "--warmup 200 --prewarm 5000 --runahead-cache "
        "--ra-cache-lines 16");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("throughput (Eq.1):"), std::string::npos)
        << r.output;
}

TEST(CliSmoke, SweepGridsOverRaVariants)
{
    // Three variants expand to three cells; all must be listed.
    const CliResult r = runCli(
        "sweep --policies RaT --workloads art,mcf "
        "--ra-variant classic,capped,useless-filter --measure 1000 "
        "--warmup 200 --prewarm 5000");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("sweep: 3 cells"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("classic"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("capped"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("useless-filter"), std::string::npos)
        << r.output;
}

TEST(CliSmoke, FarmSubcommandRunsGridAcrossWorkerProcesses)
{
    const CliResult r = runCli(
        "farm --policies ICOUNT,RaT --workloads art,mcf --seeds 1,2 "
        "--measure 1000 --warmup 200 --prewarm 5000 --workers 2");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("farm: 4 cells"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("workers"), std::string::npos) << r.output;
}

TEST(CliSmoke, FarmWorkersFlagRejectedOutsideFarmMode)
{
    const CliResult r = runCli("sweep --workloads art,mcf --workers 2");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("--workers"), std::string::npos) << r.output;
}

TEST(CliSmoke, FarmWorkerModeRequiresItsPrivateProtocol)
{
    // The worker entry point speaks length-prefixed frames on stdin;
    // invoked from a terminal-style empty stdin it must exit cleanly
    // without simulating anything.
    const CliResult r = runCli("--farm-worker < /dev/null");
    EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(CliSmoke, UnknownSubcommandFailsWithDiagnostic)
{
    const CliResult r = runCli("frobnicate");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("unknown subcommand"), std::string::npos)
        << r.output;
}

} // namespace
