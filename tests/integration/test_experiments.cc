/** @file Integration tests asserting the paper's qualitative results. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace rat::sim {
namespace {

SimConfig
mediumConfig()
{
    SimConfig cfg;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 30000;
    return cfg;
}

TEST(PaperShape, RatBeatsStaticPoliciesOnMemWorkload)
{
    ExperimentRunner runner(mediumConfig());
    const Workload w{"art,mcf", {"art", "mcf"}};
    const double icount = throughput(runner.runWorkload(w, icountSpec()));
    const double stall = throughput(runner.runWorkload(w, stallSpec()));
    const double flush = throughput(runner.runWorkload(w, flushSpec()));
    const double rat = throughput(runner.runWorkload(w, ratSpec()));

    // Fig. 1 ordering on MEM workloads: RaT ahead of FLUSH/STALL/ICOUNT.
    EXPECT_GT(rat, flush);
    EXPECT_GT(rat, stall);
    EXPECT_GT(rat, icount);
}

TEST(PaperShape, RatBeatsDynamicPoliciesOnMemWorkload)
{
    ExperimentRunner runner(mediumConfig());
    const Workload w{"swim,mcf", {"swim", "mcf"}};
    const double dcra = throughput(runner.runWorkload(w, dcraSpec()));
    const double hc =
        throughput(runner.runWorkload(w, hillClimbingSpec()));
    const double rat = throughput(runner.runWorkload(w, ratSpec()));

    // Fig. 2 ordering on MEM workloads.
    EXPECT_GT(rat, dcra);
    EXPECT_GT(rat, hc);
}

TEST(PaperShape, RatFairnessBeatsIcountOnMem)
{
    ExperimentRunner runner(mediumConfig());
    const Workload w{"art,mcf", {"art", "mcf"}};
    const auto base = runner.baselinesFor(w);
    const double f_icount =
        fairness(runner.runWorkload(w, icountSpec()), base);
    const double f_rat = fairness(runner.runWorkload(w, ratSpec()), base);
    EXPECT_GT(f_rat, f_icount);
}

TEST(PaperShape, IlpWorkloadsLargelyUnaffectedByRat)
{
    ExperimentRunner runner(mediumConfig());
    const Workload w{"gzip,bzip2", {"gzip", "bzip2"}};
    const double icount = throughput(runner.runWorkload(w, icountSpec()));
    const double rat = throughput(runner.runWorkload(w, ratSpec()));
    // Within ~15% on ILP pairs (paper: moderate effect on ILP).
    EXPECT_GT(rat, 0.85 * icount);
}

TEST(PaperShape, RatRegisterPressureDropsInRunahead)
{
    ExperimentRunner runner(mediumConfig());
    const Workload w{"art,swim", {"art", "swim"}};
    const SimResult r = runner.runWorkload(w, ratSpec());
    for (const ThreadResult &t : r.threads) {
        if (t.core.runaheadCycles > 3000) {
            EXPECT_LT(t.core.avgRegsRunahead(),
                      t.core.avgRegsNormal())
                << t.program;
        }
    }
}

TEST(PaperShape, SmallRegisterFileHurtsFlushMoreThanRat)
{
    SimConfig small = mediumConfig();
    small.core.intRegs = 64;
    small.core.fpRegs = 64;
    SimConfig big = mediumConfig();
    big.core.intRegs = 320;
    big.core.fpRegs = 320;

    ExperimentRunner r_small(small);
    ExperimentRunner r_big(big);
    const Workload w{"art,mcf", {"art", "mcf"}};

    const double flush_small =
        throughput(r_small.runWorkload(w, flushSpec()));
    const double flush_big = throughput(r_big.runWorkload(w, flushSpec()));
    const double rat_small = throughput(r_small.runWorkload(w, ratSpec()));
    const double rat_big = throughput(r_big.runWorkload(w, ratSpec()));

    const double flush_slowdown = 1.0 - flush_small / flush_big;
    const double rat_slowdown = 1.0 - rat_small / rat_big;
    // Fig. 6: RaT is less sensitive to register-file size.
    EXPECT_LT(rat_slowdown, flush_slowdown + 0.05);
    // RaT with 64 regs should stay competitive with FLUSH at 320 on MEM.
    EXPECT_GT(rat_small, 0.8 * flush_big);
}

TEST(PaperShape, PrefetchAblationLosesMostOfTheGain)
{
    ExperimentRunner runner(mediumConfig());
    const Workload w{"swim,art", {"swim", "art"}};

    TechniqueSpec no_pf = ratSpec();
    no_pf.label = "RaT-noPF";
    no_pf.rat.disablePrefetch = true;

    const double rat = throughput(runner.runWorkload(w, ratSpec()));
    const double nopf = throughput(runner.runWorkload(w, no_pf));
    EXPECT_GT(rat, nopf); // Fig. 4: prefetching dominates the benefit
}

} // namespace
} // namespace rat::sim
