/** @file Cross-policy invariant checks over full simulations. */

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace rat::sim {
namespace {

/**
 * Every (technique x workload class) combination must run to completion
 * with consistent accounting. This is the broad safety net for the
 * pipeline's squash/fold/retire machinery.
 */
class PolicyWorkloadMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
  protected:
    static TechniqueSpec
    techniqueByName(const std::string &name)
    {
        if (name == "ICOUNT")
            return icountSpec();
        if (name == "STALL")
            return stallSpec();
        if (name == "FLUSH")
            return flushSpec();
        if (name == "DCRA")
            return dcraSpec();
        if (name == "HillClimbing")
            return hillClimbingSpec();
        return ratSpec();
    }

    static Workload
    workloadByName(const std::string &name)
    {
        if (name == "ilp2")
            return {"gzip,bzip2", {"gzip", "bzip2"}};
        if (name == "mix2")
            return {"art,gzip", {"art", "gzip"}};
        if (name == "mem2")
            return {"art,mcf", {"art", "mcf"}};
        return {"mem4", {"art", "mcf", "swim", "twolf"}};
    }
};

TEST_P(PolicyWorkloadMatrix, RunsCleanWithSaneNumbers)
{
    const auto &[tech_name, wl_name] = GetParam();
    SimConfig cfg;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 8000;
    ExperimentRunner runner(cfg);

    const Workload w = workloadByName(wl_name);
    const SimResult r =
        runner.runWorkload(w, techniqueByName(tech_name));

    ASSERT_EQ(r.threads.size(), w.programs.size());
    for (const ThreadResult &t : r.threads) {
        EXPECT_GE(t.ipc, 0.0) << t.program;
        EXPECT_LE(t.ipc, 8.0) << t.program;
        // Stats are windowed: instructions fetched before the window can
        // commit inside it, so allow in-flight slack (ROB + front end).
        EXPECT_LE(t.core.committedInsts, t.core.fetchedInsts + 600)
            << t.program;
        // Mode cycle accounting covers the whole window.
        EXPECT_EQ(t.core.normalCycles + t.core.runaheadCycles, r.cycles)
            << t.program;
    }
    EXPECT_GT(r.committedTotal(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PolicyWorkloadMatrix,
    ::testing::Combine(::testing::Values("ICOUNT", "STALL", "FLUSH",
                                         "DCRA", "HillClimbing", "RaT"),
                       ::testing::Values("ilp2", "mix2", "mem2", "mem4")),
    [](const auto &param_info) {
        return std::get<0>(param_info.param) + "_" +
               std::get<1>(param_info.param);
    });

TEST(Invariants, RunaheadOnlyUnderRat)
{
    SimConfig cfg;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 8000;
    ExperimentRunner runner(cfg);
    const Workload w{"art,mcf", {"art", "mcf"}};

    for (const auto &tech :
         {icountSpec(), stallSpec(), flushSpec(), dcraSpec(),
          hillClimbingSpec()}) {
        const SimResult r = runner.runWorkload(w, tech);
        for (const ThreadResult &t : r.threads) {
            EXPECT_EQ(t.core.runaheadEntries, 0u)
                << tech.label << " " << t.program;
        }
    }
    const SimResult rat = runner.runWorkload(w, ratSpec());
    std::uint64_t entries = 0;
    for (const ThreadResult &t : rat.threads)
        entries += t.core.runaheadEntries;
    EXPECT_GT(entries, 0u);
}

TEST(Invariants, OnlyFlushAndRatReexecute)
{
    SimConfig cfg;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 8000;
    ExperimentRunner runner(cfg);
    const Workload w{"art,gzip", {"art", "gzip"}};

    // STALL never squashes; executed ~ committed (+ in-flight slack).
    const SimResult stall = runner.runWorkload(w, stallSpec());
    for (const ThreadResult &t : stall.threads)
        EXPECT_EQ(t.core.squashedInsts, 0u) << t.program;

    // FLUSH squashes the memory thread.
    const SimResult flush = runner.runWorkload(w, flushSpec());
    EXPECT_GT(flush.threads[0].core.squashedInsts, 0u);
}

} // namespace
} // namespace rat::sim
