/**
 * @file
 * End-to-end trace/telemetry smoke tests through the real `ratsim`
 * binary: with `--trace-out` enabled the simulation result must stay
 * byte-identical to an untraced run (observation only), and the
 * emitted file must be valid Chrome trace-event JSON carrying fetch,
 * memory and runahead-episode spans for a RaT workload.
 */

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "report/json.hh"

#ifndef RATSIM_CLI_PATH
#error "RATSIM_CLI_PATH must point at the ratsim binary"
#endif

namespace {

struct CliResult {
    int exitCode = -1;
    std::string output; ///< stdout + stderr, interleaved
};

CliResult
runCli(const std::string &args)
{
    const std::string cmd =
        "\"" RATSIM_CLI_PATH "\" " + args + " 2>&1";
    CliResult r;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        r.output.append(buf, n);
    const int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** A per-test temp path under the ctest working directory. */
std::string
tempPath(const std::string &name)
{
    return "trace-smoke-" + name;
}

TEST(TraceSmoke, TracingLeavesResultByteIdentical)
{
    // Compare the written JSON files, not the merged process output:
    // the traced run additionally logs "wrote trace ..." on stderr.
    const std::string plain = tempPath("plain.json");
    const std::string traced = tempPath("traced.json");
    const std::string trace = tempPath("run.trace.json");
    const std::string base =
        "report --workload art,mcf --policy RaT --measure 20000 "
        "--warmup 5000 --prewarm 100000 --json ";
    const CliResult off = runCli(base + plain);
    ASSERT_EQ(off.exitCode, 0) << off.output;
    const CliResult on =
        runCli(base + traced + " --trace-out " + trace);
    ASSERT_EQ(on.exitCode, 0) << on.output;

    const std::string plain_text = slurp(plain);
    ASSERT_FALSE(plain_text.empty());
    EXPECT_EQ(plain_text, slurp(traced))
        << "tracing perturbed the simulation result";
}

TEST(TraceSmoke, TraceFileIsChromeJsonWithExpectedSpans)
{
    const std::string trace = tempPath("spans.trace.json");
    const CliResult r = runCli(
        "report --workload art,mcf --policy RaT --measure 20000 "
        "--warmup 5000 --prewarm 100000 --json - --trace-out " + trace);
    ASSERT_EQ(r.exitCode, 0) << r.output;

    const auto doc = rat::report::Json::parse(slurp(trace));
    ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
    const rat::report::Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->elements().size(), 0u);

    unsigned fetch = 0, miss = 0, episodes = 0;
    for (const rat::report::Json &e : events->elements()) {
        const rat::report::Json *name = e.find("name");
        if (!name || !name->isString())
            continue;
        if (name->asString() == "fetch")
            ++fetch;
        else if (name->asString() == "miss")
            ++miss;
        else if (name->asString() == "runahead episode")
            ++episodes;
    }
    EXPECT_GT(fetch, 0u);
    EXPECT_GT(miss, 0u);
    EXPECT_GE(episodes, 1u)
        << "a MIX2 RaT run must record at least one runahead episode";
}

TEST(TraceSmoke, CategoryFilterKeepsOnlyRequestedTracks)
{
    const std::string trace = tempPath("filtered.trace.json");
    const CliResult r = runCli(
        "report --workload art,mcf --policy RaT --measure 20000 "
        "--warmup 5000 --prewarm 100000 --json - "
        "--trace-categories runahead --trace-out " + trace);
    ASSERT_EQ(r.exitCode, 0) << r.output;

    const auto doc = rat::report::Json::parse(slurp(trace));
    ASSERT_TRUE(doc.has_value());
    const rat::report::Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    unsigned episodes = 0;
    for (const rat::report::Json &e : events->elements()) {
        const rat::report::Json *name = e.find("name");
        if (!name || !name->isString())
            continue;
        EXPECT_NE(name->asString(), "fetch") << "category filter leaked";
        EXPECT_NE(name->asString(), "issue") << "category filter leaked";
        EXPECT_NE(name->asString(), "miss") << "category filter leaked";
        if (name->asString() == "runahead episode")
            ++episodes;
    }
    EXPECT_GE(episodes, 1u);
}

TEST(TraceSmoke, UnknownCategoryFailsWithDiagnostic)
{
    const CliResult r = runCli(
        "report --workload art,mcf --trace-categories bogus "
        "--trace-out x.json");
    EXPECT_NE(r.exitCode, 0);
    EXPECT_NE(r.output.find("unknown category"), std::string::npos)
        << r.output;
}

TEST(TraceSmoke, FarmProgressLineAndPrefixedWorkerLogs)
{
    // A tiny farm with --progress: the live line lands on stderr
    // (merged here), the run completes, and worker log lines carry
    // their [w<N>] prefix when verbosity allows them through.
    const CliResult r = runCli(
        "farm --policies ICOUNT --workloads art,mcf --measure 2000 "
        "--warmup 500 --prewarm 20000 --workers 2 --progress");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("cells"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("ETA"), std::string::npos) << r.output;
}

TEST(TraceSmoke, SampleWindowEmitsTelemetryTimeSeries)
{
    const std::string path = tempPath("telemetry.json");
    const CliResult r = runCli(
        "report --workload art,mcf --policy RaT --measure 20000 "
        "--warmup 5000 --prewarm 100000 --sample-window 2000 --json " +
        path);
    ASSERT_EQ(r.exitCode, 0) << r.output;

    const auto doc = rat::report::Json::parse(slurp(path));
    ASSERT_TRUE(doc.has_value());
    const rat::report::Json *result = doc->find("result");
    ASSERT_NE(result, nullptr);
    const rat::report::Json *telemetry = result->find("telemetry");
    ASSERT_NE(telemetry, nullptr) << "telemetry block missing";
    const rat::report::Json *samples = telemetry->find("samples");
    ASSERT_NE(samples, nullptr);
    ASSERT_TRUE(samples->isArray());
    // 20000 measured cycles at a 2000-cycle window = 10 samples
    // (quiescence skips must not lose boundary samples).
    EXPECT_EQ(samples->elements().size(), 10u);
    // Engine stats ride along on report runs.
    const rat::report::Json *engine = doc->find("engine");
    ASSERT_NE(engine, nullptr);
    EXPECT_NE(engine->find("episodes"), nullptr);
}

} // namespace
