/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace rat::mem {
namespace {

CacheConfig
smallCache()
{
    CacheConfig c;
    c.name = "test";
    c.sizeBytes = 1024; // 16 lines
    c.ways = 2;         // 8 sets
    c.lineBytes = 64;
    c.latency = 3;
    return c;
}

TEST(Cache, Geometry)
{
    Cache c(smallCache());
    EXPECT_EQ(c.numSets(), 8u);
    EXPECT_EQ(c.numWays(), 2u);
    EXPECT_EQ(c.lineAlign(0x12345), 0x12340u);
}

TEST(Cache, MissThenHitAfterInstall)
{
    Cache c(smallCache());
    Cycle ready = 0;
    EXPECT_EQ(c.access(0x1000, 10, ready), LookupResult::Miss);
    Addr evicted = 0;
    EXPECT_FALSE(c.install(0x1000, 10, 10, evicted));
    EXPECT_EQ(c.access(0x1000, 11, ready), LookupResult::Hit);
    EXPECT_EQ(ready, 11u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, PendingFillMerges)
{
    Cache c(smallCache());
    Addr evicted = 0;
    c.install(0x2000, 5, 100, evicted); // fill completes at cycle 100
    Cycle ready = 0;
    EXPECT_EQ(c.access(0x2000, 10, ready), LookupResult::HitPending);
    EXPECT_EQ(ready, 100u);
    // After the fill completes it is a plain hit.
    EXPECT_EQ(c.access(0x2000, 200, ready), LookupResult::Hit);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache()); // 2 ways: third line in a set evicts LRU
    Addr evicted = 0;
    const Addr set_stride = 8 * 64; // same set every 512 bytes

    c.install(0x0000, 1, 1, evicted);
    c.install(set_stride, 2, 2, evicted);
    // Touch the first line to make the second LRU.
    Cycle ready = 0;
    EXPECT_EQ(c.access(0x0000, 3, ready), LookupResult::Hit);
    EXPECT_TRUE(c.install(2 * set_stride, 4, 4, evicted));
    EXPECT_EQ(evicted, set_stride);
    // First line must still be present.
    EXPECT_EQ(c.access(0x0000, 5, ready), LookupResult::Hit);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(smallCache());
    Addr evicted = 0;
    c.install(0x3000, 1, 1, evicted);
    c.invalidate(0x3000);
    Cycle ready = 0;
    EXPECT_EQ(c.access(0x3000, 2, ready), LookupResult::Miss);
}

TEST(Cache, FlushAllEmptiesCache)
{
    Cache c(smallCache());
    Addr evicted = 0;
    for (Addr a = 0; a < 1024; a += 64)
        c.install(a, 1, 1, evicted);
    c.flushAll();
    Cycle ready = 0;
    for (Addr a = 0; a < 1024; a += 64)
        EXPECT_EQ(c.access(a, 2, ready), LookupResult::Miss);
}

TEST(Cache, ReinstallKeepsEarliestReadyTime)
{
    Cache c(smallCache());
    Addr evicted = 0;
    c.install(0x4000, 1, 50, evicted);
    c.install(0x4000, 2, 200, evicted); // later fill must not delay
    Cycle ready = 0;
    EXPECT_EQ(c.access(0x4000, 3, ready), LookupResult::HitPending);
    EXPECT_EQ(ready, 50u);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c(smallCache());
    Addr evicted = 0;
    // 16 lines with distinct sets/ways: all must fit.
    for (Addr a = 0; a < 16 * 64; a += 64)
        c.install(a, 1, 1, evicted);
    Cycle ready = 0;
    unsigned hits = 0;
    for (Addr a = 0; a < 16 * 64; a += 64)
        hits += (c.access(a, 2, ready) == LookupResult::Hit);
    EXPECT_EQ(hits, 16u);
}

TEST(CacheDeathTest, BadGeometryIsFatal)
{
    CacheConfig c = smallCache();
    c.lineBytes = 48; // not a power of two
    EXPECT_EXIT(Cache{c}, ::testing::ExitedWithCode(1), "not a power");
}

TEST(Cache, StatsReset)
{
    Cache c(smallCache());
    Cycle ready = 0;
    c.access(0x1000, 1, ready);
    EXPECT_EQ(c.misses(), 1u);
    c.resetStats();
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.hits(), 0u);
}

} // namespace
} // namespace rat::mem
