/** @file Parameterized property tests over cache geometries. */

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace rat::mem {
namespace {

/** (sizeBytes, ways) sweep. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
  protected:
    CacheConfig
    config() const
    {
        CacheConfig c;
        c.sizeBytes = std::get<0>(GetParam());
        c.ways = std::get<1>(GetParam());
        c.lineBytes = 64;
        return c;
    }
};

TEST_P(CacheGeometry, CapacityHoldsExactlyItsLines)
{
    Cache cache(config());
    const unsigned lines = config().sizeBytes / 64;
    Addr evicted = 0;
    // Fill with a contiguous region that maps uniformly across sets.
    for (unsigned i = 0; i < lines; ++i)
        cache.install(static_cast<Addr>(i) * 64, i, i, evicted);
    EXPECT_EQ(cache.evictions(), 0u);
    // Every line hits.
    Cycle ready = 0;
    for (unsigned i = 0; i < lines; ++i) {
        EXPECT_EQ(cache.access(static_cast<Addr>(i) * 64, lines + i,
                               ready),
                  LookupResult::Hit);
    }
    // One more distinct line must evict.
    cache.install(static_cast<Addr>(lines) * 64, 2 * lines, 2 * lines,
                  evicted);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST_P(CacheGeometry, LruVictimIsLeastRecentlyUsed)
{
    Cache cache(config());
    const unsigned ways = config().ways;
    const Addr set_stride = static_cast<Addr>(cache.numSets()) * 64;
    Addr evicted = 0;

    if (ways < 2) {
        // Direct-mapped: the resident line is by definition the LRU
        // victim for any conflicting install.
        cache.install(0, 0, 0, evicted);
        ASSERT_TRUE(cache.install(set_stride, 1, 1, evicted));
        EXPECT_EQ(evicted, 0u);
        return;
    }

    // Fill one set, touching in order 0..ways-1.
    for (unsigned w = 0; w < ways; ++w)
        cache.install(w * set_stride, w, w, evicted);
    // Refresh all but way 1 (victim-to-be).
    Cycle ready = 0;
    for (unsigned w = 0; w < ways; ++w) {
        if (w != 1)
            cache.access(w * set_stride, 100 + w, ready);
    }
    ASSERT_TRUE(
        cache.install(ways * set_stride, 200, 200, evicted));
    EXPECT_EQ(evicted, 1 * set_stride);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1024u, 1u),
                      std::make_tuple(1024u, 2u),
                      std::make_tuple(4096u, 4u),
                      std::make_tuple(65536u, 4u),
                      std::make_tuple(65536u, 8u),
                      std::make_tuple(1048576u, 8u)));

TEST(CacheProperty, ProbeNeverChangesHitMissOutcome)
{
    CacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.ways = 2;
    Cache cache(cfg);
    Addr evicted = 0;
    // Pseudo-random access pattern; probe twice before each access and
    // confirm the probe matches what access() then sees.
    std::uint64_t x = 12345;
    for (int i = 0; i < 5000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = (x % 256) * 64;
        const LookupResult p1 = cache.probe(addr, i);
        const LookupResult p2 = cache.probe(addr, i);
        EXPECT_EQ(p1, p2);
        Cycle ready = 0;
        const LookupResult a = cache.access(addr, i, ready);
        EXPECT_EQ(p1 == LookupResult::Miss, a == LookupResult::Miss);
        if (a == LookupResult::Miss)
            cache.install(addr, i, i, evicted);
    }
}

TEST(CacheProperty, HitsPlusMissesEqualsAccesses)
{
    CacheConfig cfg;
    cfg.sizeBytes = 2048;
    cfg.ways = 2;
    Cache cache(cfg);
    Addr evicted = 0;
    std::uint64_t x = 999;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = (x % 128) * 64;
        Cycle ready = 0;
        if (cache.access(addr, i, ready) == LookupResult::Miss)
            cache.install(addr, i, i, evicted);
    }
    EXPECT_EQ(cache.hits() + cache.misses(), static_cast<std::uint64_t>(n));
}

} // namespace
} // namespace rat::mem
