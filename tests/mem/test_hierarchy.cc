/** @file Unit tests for the three-level memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace rat::mem {
namespace {

MemConfig
defaultConfig()
{
    return MemConfig{}; // Table 1 values
}

TEST(Hierarchy, ColdReadGoesToMemory)
{
    MemoryHierarchy h(defaultConfig());
    const auto res = h.readData(0, 0x10000, 100);
    EXPECT_FALSE(res.rejected);
    EXPECT_EQ(res.level, HitLevel::Memory);
    EXPECT_EQ(res.completeAt, 100u + 400u);
    EXPECT_EQ(h.threadStats(0).l2DemandMisses, 1u);
    EXPECT_EQ(h.threadStats(0).loads, 1u);
}

TEST(Hierarchy, SecondReadHitsL1AfterFill)
{
    MemoryHierarchy h(defaultConfig());
    h.readData(0, 0x10000, 100);
    const auto res = h.readData(0, 0x10000, 600); // after fill at 500
    EXPECT_EQ(res.level, HitLevel::L1);
    EXPECT_EQ(res.completeAt, 600u + 3u);
}

TEST(Hierarchy, ConcurrentReadMergesWithFill)
{
    MemoryHierarchy h(defaultConfig());
    h.readData(0, 0x10000, 100);
    const auto res = h.readData(1, 0x10000, 150); // fill in flight
    EXPECT_EQ(res.level, HitLevel::L1);           // found (pending) in L1
    EXPECT_EQ(res.completeAt, 500u);              // merged completion
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemConfig cfg = defaultConfig();
    cfg.l1d.sizeBytes = 1024; // tiny L1: 16 lines, easy to evict
    cfg.l1d.ways = 2;
    MemoryHierarchy h(cfg);

    h.readData(0, 0x0, 0);
    // Walk far enough to evict line 0 from the tiny L1 (same set every
    // 8 lines): addresses 0, 512, 1024 share set 0 in a 2-way L1.
    h.readData(0, 512, 1000);
    h.readData(0, 1024, 2000);
    const auto res = h.readData(0, 0x0, 3000);
    EXPECT_EQ(res.level, HitLevel::L2);
    EXPECT_EQ(res.completeAt, 3000u + 20u);
}

TEST(Hierarchy, InstructionFetchUsesSeparateL1)
{
    MemoryHierarchy h(defaultConfig());
    const auto r1 = h.fetchInst(0, 0x40000, 10);
    EXPECT_EQ(r1.level, HitLevel::Memory);
    EXPECT_EQ(h.threadStats(0).ifetchL2Misses, 1u);
    // A data read to the same address misses its own L1 but merges with
    // the fill the ifetch already started in the shared L2.
    const auto r2 = h.readData(0, 0x40000, 10);
    EXPECT_EQ(r2.level, HitLevel::L2);
    EXPECT_EQ(r2.completeAt, r1.completeAt);
}

TEST(Hierarchy, SpeculativeAccessCountsAsPrefetch)
{
    MemoryHierarchy h(defaultConfig());
    const auto res = h.readData(0, 0x20000, 10, /*speculative=*/true);
    EXPECT_EQ(res.level, HitLevel::Memory);
    EXPECT_EQ(h.threadStats(0).raMemPrefetches, 1u);
    EXPECT_EQ(h.threadStats(0).loads, 0u); // not a demand load
    // The prefetch still installed the line: a later demand hit.
    const auto res2 = h.readData(0, 0x20000, 1000);
    EXPECT_EQ(res2.level, HitLevel::L1);
    EXPECT_EQ(h.threadStats(0).loads, 1u);
    EXPECT_EQ(h.threadStats(0).l2DemandMisses, 0u);
}

TEST(Hierarchy, ProbeDoesNotModifyState)
{
    MemoryHierarchy h(defaultConfig());
    EXPECT_EQ(h.probe(0x30000, 10), HitLevel::Memory);
    EXPECT_EQ(h.probe(0x30000, 10), HitLevel::Memory); // unchanged
    h.readData(0, 0x30000, 10);
    EXPECT_EQ(h.probe(0x30000, 600), HitLevel::L1);
}

TEST(Hierarchy, WriteAllocates)
{
    MemoryHierarchy h(defaultConfig());
    const auto res = h.writeData(0, 0x50000, 10);
    EXPECT_EQ(res.level, HitLevel::Memory);
    EXPECT_EQ(h.threadStats(0).stores, 1u);
    const auto res2 = h.readData(0, 0x50000, 600);
    EXPECT_EQ(res2.level, HitLevel::L1);
}

TEST(Hierarchy, MshrExhaustionRejects)
{
    MemConfig cfg = defaultConfig();
    cfg.l1d.mshrs = 2;
    MemoryHierarchy h(cfg);
    EXPECT_FALSE(h.readData(0, 0x1000000, 10).rejected);
    EXPECT_FALSE(h.readData(0, 0x2000000, 10).rejected);
    const auto res = h.readData(0, 0x3000000, 10);
    EXPECT_TRUE(res.rejected);
    // After the fills retire the MSHRs, new misses are accepted.
    EXPECT_FALSE(h.readData(0, 0x3000000, 1000).rejected);
}

TEST(Hierarchy, PerThreadStatsAreSeparate)
{
    MemoryHierarchy h(defaultConfig());
    h.readData(0, 0x60000, 10);
    h.readData(1, 0x70000, 10);
    EXPECT_EQ(h.threadStats(0).loads, 1u);
    EXPECT_EQ(h.threadStats(1).loads, 1u);
    EXPECT_EQ(h.threadStats(2).loads, 0u);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    MemoryHierarchy h(defaultConfig());
    h.readData(0, 0x80000, 10);
    h.resetStats();
    EXPECT_EQ(h.threadStats(0).loads, 0u);
    const auto res = h.readData(0, 0x80000, 600);
    EXPECT_EQ(res.level, HitLevel::L1); // line survived the reset
}

} // namespace
} // namespace rat::mem
