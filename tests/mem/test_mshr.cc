/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace rat::mem {
namespace {

TEST(Mshr, AllocateAndExpire)
{
    MshrFile m(2);
    EXPECT_TRUE(m.canAllocate(0));
    m.allocate(0x100, 0, 50);
    m.allocate(0x200, 0, 60);
    EXPECT_FALSE(m.canAllocate(10));
    EXPECT_EQ(m.occupancy(10), 2u);
    // At cycle 50 the first fill completed.
    EXPECT_TRUE(m.canAllocate(50));
    EXPECT_EQ(m.occupancy(50), 1u);
    EXPECT_EQ(m.occupancy(60), 0u);
}

TEST(Mshr, TracksOutstandingLines)
{
    MshrFile m(4);
    m.allocate(0x100, 0, 50);
    EXPECT_TRUE(m.isOutstanding(0x100, 10));
    EXPECT_FALSE(m.isOutstanding(0x200, 10));
    EXPECT_EQ(m.completionOf(0x100, 10), 50u);
    EXPECT_EQ(m.completionOf(0x100, 50), kNoCycle);
}

TEST(MshrDeathTest, OverflowPanics)
{
    MshrFile m(1);
    m.allocate(0x100, 0, 100);
    EXPECT_DEATH(m.allocate(0x200, 0, 100), "MSHR overflow");
}

} // namespace
} // namespace rat::mem
