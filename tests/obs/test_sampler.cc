/** @file Tests for the windowed sampler and log2 histograms. */

#include <gtest/gtest.h>

#include "obs/sampler.hh"

namespace rat::obs {
namespace {

TEST(Log2Histogram, BucketsByPowerOfTwo)
{
    Log2Histogram h;
    h.sample(0); // 0 lands in bucket 0
    h.sample(1); // [1,2) -> bucket 0
    h.sample(2); // [2,4) -> bucket 1
    h.sample(3);
    h.sample(4); // [4,8) -> bucket 2
    h.sample(1023); // [512,1024) -> bucket 9
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.totalCount(), 6u);
    EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 1023);
    EXPECT_DOUBLE_EQ(h.mean(), 1033.0 / 6.0);
}

TEST(Log2Histogram, HugeValuesClampIntoLastBucket)
{
    Log2Histogram h;
    h.sample(~std::uint64_t{0});
    EXPECT_EQ(h.bucketCount(Log2Histogram::kBuckets - 1), 1u);
}

TEST(Log2Histogram, EmptyMeanIsZero)
{
    EXPECT_DOUBLE_EQ(Log2Histogram{}.mean(), 0.0);
}

TEST(WindowSampler, TurnsCumulativeCountersIntoDeltas)
{
    WindowSampler s(100);
    s.reset(1000);
    EXPECT_TRUE(s.result().enabled);
    EXPECT_EQ(s.nextAt(), 1100u);

    s.sampleAt(/*committed=*/50, /*executed=*/80, /*ra=*/10,
               /*rob=*/32, /*iq=*/12, /*lsq=*/8);
    EXPECT_EQ(s.nextAt(), 1200u);
    s.sampleAt(/*committed=*/120, /*executed=*/200, /*ra=*/10,
               /*rob=*/16, /*iq=*/4, /*lsq=*/2);

    const TelemetryResult &r = s.result();
    ASSERT_EQ(r.samples.size(), 2u);
    EXPECT_EQ(r.samples[0].cycle, 1100u);
    EXPECT_EQ(r.samples[0].committed, 50u);
    EXPECT_EQ(r.samples[0].executed, 80u);
    EXPECT_EQ(r.samples[0].raExecuted, 10u);
    EXPECT_EQ(r.samples[0].rob, 32u);
    // Second window: deltas, not cumulative values.
    EXPECT_EQ(r.samples[1].cycle, 1200u);
    EXPECT_EQ(r.samples[1].committed, 70u);
    EXPECT_EQ(r.samples[1].executed, 120u);
    EXPECT_EQ(r.samples[1].raExecuted, 0u);
    // Occupancies stay instantaneous.
    EXPECT_EQ(r.samples[1].rob, 16u);
}

TEST(WindowSampler, ZeroWindowStaysDisarmed)
{
    WindowSampler s(0);
    s.reset(500);
    EXPECT_FALSE(s.result().enabled);
    EXPECT_EQ(s.nextAt(), kNoCycle);
}

TEST(WindowSampler, ResetDropsPriorState)
{
    WindowSampler s(10);
    s.reset(0);
    s.sampleAt(5, 5, 0, 1, 1, 1);
    s.noteEpisode(100);
    s.reset(50); // warmup -> measure boundary
    EXPECT_TRUE(s.result().samples.empty());
    EXPECT_EQ(s.result().episodeCycles.totalCount(), 0u);
    EXPECT_EQ(s.nextAt(), 60u);
    // Cumulative baselines were rearmed: a post-reset sample must not
    // subtract pre-reset counters.
    s.sampleAt(3, 4, 0, 0, 0, 0);
    EXPECT_EQ(s.result().samples[0].committed, 3u);
}

} // namespace
} // namespace rat::obs
