/** @file Tests for the event tracer: rings, categories, Chrome JSON. */

#include <gtest/gtest.h>

#include "obs/trace.hh"
#include "report/json.hh"

namespace rat::obs {
namespace {

TEST(EventRing, FillsThenOverwritesOldest)
{
    EventRing ring(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        ring.push(TraceEvent{i, i, EventKind::Rename, 0, i, 0, 0});
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.at(0).a, 0u);
    EXPECT_EQ(ring.at(3).a, 3u);

    // Two more pushes evict the two oldest events.
    for (std::uint64_t i = 4; i < 6; ++i)
        ring.push(TraceEvent{i, i, EventKind::Rename, 0, i, 0, 0});
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 6u);
    EXPECT_EQ(ring.dropped(), 2u);
    // Oldest surviving is event 2; order is preserved.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).a, i + 2);
}

TEST(EventRing, ClearResetsEverything)
{
    EventRing ring(2);
    ring.push(TraceEvent{});
    ring.push(TraceEvent{});
    ring.push(TraceEvent{});
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.pushed(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceCategories, ParsesNamesAndAll)
{
    unsigned mask = 0;
    EXPECT_TRUE(parseTraceCategories("fetch", mask));
    EXPECT_EQ(mask, kCatFetch);
    EXPECT_TRUE(parseTraceCategories("mem,runahead", mask));
    EXPECT_EQ(mask, kCatMem | kCatRunahead);
    EXPECT_TRUE(parseTraceCategories("all", mask));
    EXPECT_EQ(mask, kCatAll);
    EXPECT_TRUE(parseTraceCategories("sched,fetch", mask));
    EXPECT_EQ(mask, kCatSched | kCatFetch);
}

TEST(TraceCategories, RejectsUnknownNameLeavingMask)
{
    unsigned mask = kCatMem;
    EXPECT_FALSE(parseTraceCategories("fetch,bogus", mask));
    EXPECT_EQ(mask, kCatMem);
    EXPECT_FALSE(parseTraceCategories("", mask));
}

TEST(Tracer, RoutesToPerThreadAndCoreRings)
{
    Tracer tracer(kCatAll, 2, 8);
    tracer.record(0, EventKind::Issue, 10, 15, 0x400);
    tracer.record(1, EventKind::Retire, 20, 20, 0x404);
    tracer.recordCore(EventKind::MshrOccupancy, 12, 12, 1, 2, 3);
    EXPECT_EQ(tracer.threadRing(0).size(), 1u);
    EXPECT_EQ(tracer.threadRing(1).size(), 1u);
    EXPECT_EQ(tracer.coreRing().size(), 1u);
    EXPECT_EQ(tracer.retainedEvents(), 3u);
    EXPECT_EQ(tracer.droppedEvents(), 0u);
    tracer.clear();
    EXPECT_EQ(tracer.retainedEvents(), 0u);
}

TEST(Tracer, ChromeJsonIsValidAndCarriesEvents)
{
    Tracer tracer(kCatAll, 2, 8);
    tracer.record(0, EventKind::FetchGroup, 5, 5, 0x1000, 4);
    tracer.record(0, EventKind::Issue, 10, 42, 0x1004);
    tracer.record(1, EventKind::MemMiss, 7, 407, 0x2000, 2);
    tracer.record(1, EventKind::RunaheadEpisode, 50, 450, 0x1010, 33, 1);
    tracer.recordCore(EventKind::MshrOccupancy, 7, 7, 0, 1, 1);
    tracer.recordCore(EventKind::CycleSkip, 500, 900);

    const std::string text = tracer.toChromeJson();
    const auto doc = report::Json::parse(text);
    ASSERT_TRUE(doc.has_value());
    const report::Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    unsigned spans = 0, counters = 0, metadata = 0;
    bool saw_episode = false, saw_miss = false;
    for (const report::Json &e : events->elements()) {
        const report::Json *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        const std::string phase = ph->asString();
        if (phase == "X")
            ++spans;
        else if (phase == "C")
            ++counters;
        else if (phase == "M")
            ++metadata;
        const report::Json *name = e.find("name");
        ASSERT_NE(name, nullptr);
        if (name->asString() == "runahead episode") {
            saw_episode = true;
            const report::Json *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_NE(args->find("pseudoRetired"), nullptr);
            EXPECT_NE(args->find("useless"), nullptr);
        }
        if (name->asString() == "miss")
            saw_miss = true;
    }
    EXPECT_TRUE(saw_episode);
    EXPECT_TRUE(saw_miss);
    EXPECT_GE(spans, 4u);    // fetch, issue, miss, episode, skip
    EXPECT_EQ(counters, 1u); // MSHR occupancy
    EXPECT_GE(metadata, 4u); // two threads + mshr + skip track names
}

TEST(Tracer, ZeroLengthSpansGetMinimumDuration)
{
    // Perfetto drops zero-duration "X" events; the exporter widens
    // them to 1 µs.
    Tracer tracer(kCatAll, 1, 4);
    tracer.record(0, EventKind::Issue, 10, 10, 0x1);
    const std::string text = tracer.toChromeJson();
    EXPECT_NE(text.find("\"dur\":1"), std::string::npos);
}

} // namespace
} // namespace rat::obs
