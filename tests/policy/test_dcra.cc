/** @file Tests for the DCRA resource-control policy. */

#include <gtest/gtest.h>

#include "policy/dcra.hh"
#include "tests/core/test_helpers.hh"

namespace rat::policy {
namespace {

using test::CoreHarness;

TEST(Dcra, CapsSumToResourceTotals)
{
    CoreHarness h({"gzip", "bzip2"}, core::PolicyKind::Dcra);
    DcraPolicy pol;
    pol.beginCycle(*h.core);
    const auto &cfg = h.core->config();
    double int_iq = 0.0, int_regs = 0.0;
    for (ThreadId t = 0; t < 2; ++t) {
        int_iq += pol.capOf(t, DcraPolicy::kIntIq);
        int_regs += pol.capOf(t, DcraPolicy::kIntRegs);
    }
    EXPECT_NEAR(int_iq, cfg.intIqEntries, 1e-9);
    EXPECT_NEAR(int_regs, cfg.intRegs, 1e-9);
}

TEST(Dcra, SlowThreadGetsBoostedShare)
{
    CoreHarness h({"art", "gzip"}, core::PolicyKind::Dcra);
    // Run until art has a pending L2 miss (slow classification).
    for (int i = 0; i < 20000 && !h.core->hasPendingL2Miss(0); ++i)
        h.core->tick();
    ASSERT_TRUE(h.core->hasPendingL2Miss(0));
    DcraPolicy pol;
    pol.beginCycle(*h.core);
    EXPECT_GT(pol.capOf(0, DcraPolicy::kIntRegs),
              pol.capOf(1, DcraPolicy::kIntRegs));
}

TEST(Dcra, FpInactiveThreadCedesFpShare)
{
    // gzip is INT-only, swim is FP-heavy: after running, swim should be
    // FP-active and gzip not, so swim's FP cap must dominate.
    CoreHarness h({"gzip", "swim"}, core::PolicyKind::Dcra);
    h.core->run(10000);
    DcraPolicy pol;
    pol.beginCycle(*h.core);
    EXPECT_GT(pol.capOf(1, DcraPolicy::kFpRegs),
              pol.capOf(0, DcraPolicy::kFpRegs));
}

TEST(Dcra, EndToEndBothThreadsProgress)
{
    CoreHarness h({"art", "gzip"}, core::PolicyKind::Dcra);
    h.core->run(40000);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
    EXPECT_GT(h.core->threadStats(1).committedInsts, 0u);
}

TEST(Dcra, ProtectsIlpThreadVersusIcount)
{
    CoreHarness icount({"gzip", "mcf"}, core::PolicyKind::Icount);
    CoreHarness dcra({"gzip", "mcf"}, core::PolicyKind::Dcra);
    icount.core->run(60000);
    dcra.core->run(60000);
    EXPECT_GT(dcra.core->threadStats(0).committedInsts,
              icount.core->threadStats(0).committedInsts);
}

} // namespace
} // namespace rat::policy
