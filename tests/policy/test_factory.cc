/**
 * @file
 * Round-trip tests of the policy factory: every technique name the
 * `ratsim --policy` flag documents must parse to the right PolicyKind,
 * construct the right policy object, and survive the
 * kind -> canonical name -> kind round trip. Unknown names must be
 * rejected rather than mapped to a default.
 */

#include <gtest/gtest.h>

#include "policy/factory.hh"

namespace rat::policy {
namespace {

using core::PolicyKind;

struct NameCase {
    const char *cliName;       ///< spelling accepted by --policy
    PolicyKind kind;           ///< expected parse result
    const char *objectName;    ///< SchedulingPolicy::name() of makePolicy()
};

const NameCase kDocumentedNames[] = {
    {"ICOUNT", PolicyKind::Icount, "ICOUNT"},
    {"STALL", PolicyKind::Stall, "STALL"},
    {"FLUSH", PolicyKind::Flush, "FLUSH"},
    {"DCRA", PolicyKind::Dcra, "DCRA"},
    {"HillClimbing", PolicyKind::HillClimbing, "HillClimbing"},
    // RaT is not itself a fetch policy: the core does the mode
    // switching on top of plain ICOUNT priority (paper Section 3).
    {"RaT", PolicyKind::Rat, "ICOUNT"},
    {"RaT+DCRA", PolicyKind::RatDcra, "DCRA"},
    {"MLP", PolicyKind::MlpAware, "MLP"},
    {"RR", PolicyKind::RoundRobin, "RR"},
    // Shell-friendly aliases the CLI also accepts.
    {"RAT", PolicyKind::Rat, "ICOUNT"},
    {"RATDCRA", PolicyKind::RatDcra, "DCRA"},
    {"HC", PolicyKind::HillClimbing, "HillClimbing"},
};

TEST(PolicyFactory, EveryDocumentedNameParsesToItsKind)
{
    for (const NameCase &c : kDocumentedNames) {
        const auto kind = parsePolicyKind(c.cliName);
        ASSERT_TRUE(kind.has_value()) << c.cliName;
        EXPECT_EQ(*kind, c.kind) << c.cliName;
    }
}

TEST(PolicyFactory, EveryDocumentedNameConstructsTheRightPolicy)
{
    for (const NameCase &c : kDocumentedNames) {
        const auto policy = makePolicy(c.kind);
        ASSERT_NE(policy, nullptr) << c.cliName;
        EXPECT_STREQ(policy->name(), c.objectName) << c.cliName;
    }
}

TEST(PolicyFactory, CanonicalNameRoundTripsThroughParse)
{
    for (const PolicyKind kind :
         {PolicyKind::RoundRobin, PolicyKind::Icount, PolicyKind::Stall,
          PolicyKind::Flush, PolicyKind::Dcra, PolicyKind::HillClimbing,
          PolicyKind::Rat, PolicyKind::RatDcra, PolicyKind::MlpAware}) {
        const std::string name = policyKindName(kind);
        const auto parsed = parsePolicyKind(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, kind) << name;
    }
}

TEST(PolicyFactory, PolicyKindNamesCoversEveryKindOnce)
{
    const auto names = policyKindNames();
    EXPECT_EQ(names.size(), 9u);
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
        EXPECT_TRUE(parsePolicyKind(names[i]).has_value()) << names[i];
    }
}

TEST(PolicyFactory, UnknownNamesAreRejected)
{
    for (const char *bad :
         {"", "icount", "rat", "Rat", "ICOUNT ", " ICOUNT", "ICOUNTX",
          "RaT-DCRA", "DCRA+RaT", "MLP2", "RoundRobin", "bogus"})
        EXPECT_FALSE(parsePolicyKind(bad).has_value()) << '"' << bad << '"';
}

} // namespace
} // namespace rat::policy
