/** @file Tests for RR / ICOUNT / STALL / FLUSH fetch policies. */

#include <algorithm>

#include <gtest/gtest.h>

#include "policy/fetch_policies.hh"
#include "tests/core/test_helpers.hh"

namespace rat::policy {
namespace {

using test::CoreHarness;

bool
isPermutation(const std::vector<ThreadId> &order, unsigned n)
{
    if (order.size() != n)
        return false;
    std::vector<ThreadId> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (unsigned i = 0; i < n; ++i) {
        if (sorted[i] != static_cast<ThreadId>(i))
            return false;
    }
    return true;
}

TEST(RoundRobin, RotatesPriority)
{
    CoreHarness h({"gzip", "bzip2", "gcc"});
    RoundRobinPolicy rr;
    std::vector<ThreadId> o1, o2, o3;
    rr.fetchOrder(*h.core, o1);
    rr.fetchOrder(*h.core, o2);
    rr.fetchOrder(*h.core, o3);
    EXPECT_TRUE(isPermutation(o1, 3));
    EXPECT_TRUE(isPermutation(o2, 3));
    EXPECT_NE(o1.front(), o2.front());
    EXPECT_NE(o2.front(), o3.front());
}

TEST(Icount, PrefersLowOccupancyThread)
{
    // Let the memory thread clog its front end, then check priority.
    CoreHarness h({"mcf", "gzip"});
    h.core->run(10000);
    IcountPolicy pol;
    std::vector<ThreadId> order;
    pol.fetchOrder(*h.core, order);
    ASSERT_TRUE(isPermutation(order, 2));
    EXPECT_LE(h.core->icount(order[0]), h.core->icount(order[1]));
}

TEST(Stall, GatesThreadWithPendingMiss)
{
    CoreHarness h({"art"}, core::PolicyKind::Stall);
    StallPolicy pol;
    // Advance until the core records a pending L2 miss.
    bool gated = false;
    for (int i = 0; i < 20000 && !gated; ++i) {
        h.core->tick();
        if (h.core->hasPendingL2Miss(0))
            gated = !pol.mayFetch(*h.core, 0);
    }
    EXPECT_TRUE(gated);
}

TEST(Stall, EndToEndStillProgresses)
{
    CoreHarness h({"art", "gzip"}, core::PolicyKind::Stall);
    h.core->run(40000);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
    EXPECT_GT(h.core->threadStats(1).committedInsts, 0u);
    EXPECT_EQ(h.core->threadStats(0).squashedInsts, 0u); // stall, no flush
}

TEST(Flush, SquashesOnDetectedMiss)
{
    CoreHarness h({"art", "gzip"}, core::PolicyKind::Flush);
    h.core->run(40000);
    // The memory thread must have been flushed at least once.
    EXPECT_GT(h.core->threadStats(0).squashedInsts, 0u);
    // Flushed work is re-fetched: executed > committed for that thread.
    EXPECT_GT(h.core->threadStats(0).executedInsts,
              h.core->threadStats(0).committedInsts);
    EXPECT_GT(h.core->threadStats(1).committedInsts, 0u);
}

TEST(Flush, HelpsCoRunnerVersusIcount)
{
    CoreHarness icount({"gzip", "art"}, core::PolicyKind::Icount);
    CoreHarness flush({"gzip", "art"}, core::PolicyKind::Flush);
    icount.core->run(60000);
    flush.core->run(60000);
    // Releasing the memory thread's resources must help the ILP thread.
    EXPECT_GT(flush.core->threadStats(0).committedInsts,
              icount.core->threadStats(0).committedInsts);
}

} // namespace
} // namespace rat::policy
