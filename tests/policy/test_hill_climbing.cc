/** @file Tests for the Hill Climbing resource-distribution policy. */

#include <gtest/gtest.h>

#include "policy/hill_climbing.hh"
#include "tests/core/test_helpers.hh"

namespace rat::policy {
namespace {

using test::CoreHarness;

TEST(HillClimbing, SharesStartEven)
{
    CoreHarness h({"gzip", "bzip2"}, core::PolicyKind::HillClimbing);
    HillClimbingPolicy pol;
    pol.reset(*h.core);
    EXPECT_DOUBLE_EQ(pol.share(0), 0.5);
    EXPECT_DOUBLE_EQ(pol.share(1), 0.5);
}

TEST(HillClimbing, SharesStayNormalizedWhileLearning)
{
    CoreHarness h({"gzip", "art"}, core::PolicyKind::HillClimbing);
    HillClimbingPolicy pol;
    pol.reset(*h.core);
    for (int i = 0; i < 60000; ++i) {
        pol.beginCycle(*h.core);
        h.core->tick();
    }
    const double sum = pol.share(0) + pol.share(1);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GE(pol.share(0), 0.05);
    EXPECT_GE(pol.share(1), 0.05);
}

TEST(HillClimbing, SingleThreadIsUngated)
{
    CoreHarness h({"gzip"}, core::PolicyKind::HillClimbing);
    HillClimbingPolicy pol;
    pol.reset(*h.core);
    EXPECT_TRUE(pol.mayFetch(*h.core, 0));
}

TEST(HillClimbing, EndToEndProgress)
{
    CoreHarness h({"art", "gzip"}, core::PolicyKind::HillClimbing);
    h.core->run(50000);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
    EXPECT_GT(h.core->threadStats(1).committedInsts, 0u);
}

TEST(HillClimbing, ImprovesOverIcountForMixedLoad)
{
    CoreHarness icount({"gzip", "mcf"}, core::PolicyKind::Icount);
    CoreHarness hc({"gzip", "mcf"}, core::PolicyKind::HillClimbing);
    icount.core->run(80000);
    hc.core->run(80000);
    const auto total = [](const CoreHarness &h) {
        return h.core->threadStats(0).committedInsts +
               h.core->threadStats(1).committedInsts;
    };
    EXPECT_GT(total(hc), total(icount));
}

} // namespace
} // namespace rat::policy
