/** @file Tests for the MLP-aware fetch policy (related work [15]). */

#include <gtest/gtest.h>

#include "policy/mlp_aware.hh"
#include "tests/core/test_helpers.hh"

namespace rat::policy {
namespace {

using test::CoreHarness;

TEST(MlpAware, StartsWithMinimumWindow)
{
    MlpAwarePolicy pol;
    EXPECT_EQ(pol.predictedWindow(0), MlpConfig{}.minWindow);
}

TEST(MlpAware, EpisodeBoundsFetchAfterMiss)
{
    CoreHarness h({"art"}, core::PolicyKind::MlpAware);
    auto *pol = dynamic_cast<MlpAwarePolicy *>(h.policy.get());
    ASSERT_NE(pol, nullptr);

    // Run until an episode starts; the thread must eventually be gated.
    bool gated = false;
    for (int i = 0; i < 30000 && !gated; ++i) {
        h.core->tick();
        if (pol->inEpisode(0))
            gated = !pol->mayFetch(*h.core, 0);
    }
    EXPECT_TRUE(gated);
}

TEST(MlpAware, PredictorAdaptsWithinHardwareBound)
{
    CoreHarness h({"art"}, core::PolicyKind::MlpAware);
    auto *pol = dynamic_cast<MlpAwarePolicy *>(h.policy.get());
    ASSERT_NE(pol, nullptr);
    h.core->run(40000);
    const unsigned window = pol->predictedWindow(0);
    EXPECT_GE(window, MlpConfig{}.minWindow);
    EXPECT_LE(window, MlpConfig{}.maxWindow);
    // A streamer has dense MLP: the predictor should grow the window.
    EXPECT_GT(window, MlpConfig{}.minWindow);
}

TEST(MlpAware, BeatsStallOnStreamingWorkload)
{
    // Exposing a window of MLP must beat stopping at the first miss.
    CoreHarness stall({"art", "gzip"}, core::PolicyKind::Stall);
    CoreHarness mlp({"art", "gzip"}, core::PolicyKind::MlpAware);
    stall.core->run(50000);
    mlp.core->run(50000);
    EXPECT_GT(mlp.core->threadStats(0).committedInsts,
              stall.core->threadStats(0).committedInsts);
}

TEST(MlpAware, RatBeatsBoundedMlpOnMemWorkload)
{
    // The paper's Section 2 argument: the hardware bound on the MLP
    // window leaves distant MLP unexploited; unbounded runahead wins.
    CoreHarness mlp({"art", "swim"}, core::PolicyKind::MlpAware);
    CoreHarness rat({"art", "swim"}, core::PolicyKind::Rat);
    mlp.core->run(60000);
    rat.core->run(60000);
    const auto total = [](const CoreHarness &h) {
        return h.core->threadStats(0).committedInsts +
               h.core->threadStats(1).committedInsts;
    };
    EXPECT_GT(total(rat), total(mlp));
}

TEST(MlpAware, NoRunaheadEntriesUnderMlp)
{
    CoreHarness h({"art", "mcf"}, core::PolicyKind::MlpAware);
    h.core->run(20000);
    EXPECT_EQ(h.core->threadStats(0).runaheadEntries, 0u);
    EXPECT_EQ(h.core->threadStats(1).runaheadEntries, 0u);
}

} // namespace
} // namespace rat::policy
