/** @file Tests for the RaT+DCRA hybrid (Section 5.2 future work). */

#include <gtest/gtest.h>

#include "tests/core/test_helpers.hh"

namespace rat::policy {
namespace {

using test::CoreHarness;

TEST(RatDcra, RunsRunaheadUnderDcraCaps)
{
    CoreHarness h({"art", "gzip"}, core::PolicyKind::RatDcra);
    h.core->run(30000);
    // Runahead must still trigger (the hybrid keeps the mechanism)...
    EXPECT_GT(h.core->threadStats(0).runaheadEntries, 0u);
    // ...and both threads progress.
    EXPECT_GT(h.core->threadStats(0).committedInsts, 0u);
    EXPECT_GT(h.core->threadStats(1).committedInsts, 0u);
}

TEST(RatDcra, TracksPlainRatClosely)
{
    CoreHarness rat({"art", "mcf"}, core::PolicyKind::Rat);
    CoreHarness hybrid({"art", "mcf"}, core::PolicyKind::RatDcra);
    rat.core->run(40000);
    hybrid.core->run(40000);
    const auto total = [](const CoreHarness &h) {
        return h.core->threadStats(0).committedInsts +
               h.core->threadStats(1).committedInsts;
    };
    // Orthogonal mechanisms: within 25% of each other.
    EXPECT_GT(total(hybrid), 0.75 * total(rat));
    EXPECT_LT(total(hybrid), 1.34 * total(rat));
}

TEST(RatDcra, BeatsPlainDcraOnMemWorkload)
{
    CoreHarness dcra({"swim", "art"}, core::PolicyKind::Dcra);
    CoreHarness hybrid({"swim", "art"}, core::PolicyKind::RatDcra);
    dcra.core->run(40000);
    hybrid.core->run(40000);
    const auto total = [](const CoreHarness &h) {
        return h.core->threadStats(0).committedInsts +
               h.core->threadStats(1).committedInsts;
    };
    EXPECT_GT(total(hybrid), total(dcra));
}

TEST(RatDcra, PolicyNameRoundTrips)
{
    EXPECT_STREQ(core::policyName(core::PolicyKind::RatDcra),
                 "RaT+DCRA");
    EXPECT_TRUE(core::runaheadEnabled(core::PolicyKind::RatDcra));
    EXPECT_TRUE(core::runaheadEnabled(core::PolicyKind::Rat));
    EXPECT_FALSE(core::runaheadEnabled(core::PolicyKind::Dcra));
    EXPECT_FALSE(core::runaheadEnabled(core::PolicyKind::Icount));
}

} // namespace
} // namespace rat::policy
