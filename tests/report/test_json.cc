/**
 * @file
 * Unit tests of the dependency-free JSON document model and the CSV
 * writer: deterministic output, exact numeric round-trips, escaping,
 * and parse-error reporting.
 */

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "report/csv.hh"
#include "report/json.hh"

namespace rat::report {
namespace {

TEST(Json, PrimitivesDumpCanonically)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(std::uint64_t{42}).dump(), "42");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json::array().dump(), "[]");
    EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(Json, NonNegativeIntegersCanonicalizeToUint)
{
    // Signed and unsigned spellings of the same value are one value.
    EXPECT_EQ(Json(std::int64_t{5}), Json(std::uint64_t{5}));
    EXPECT_EQ(Json(std::int64_t{5}).dump(), "5");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(Json(std::string("ctrl\x01")).dump(), "\"ctrl\\u0001\"");
}

TEST(Json, Uint64MaxRoundTripsExactly)
{
    const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
    const std::string text = Json(max).dump();
    EXPECT_EQ(text, "18446744073709551615");
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed);
    EXPECT_TRUE(parsed->isU64());
    EXPECT_EQ(parsed->asU64(), max);
}

TEST(Json, DoublesRoundTripExactly)
{
    for (const double v : {0.1, -3.5, 1e-9, 12345.6789, 2.5e300}) {
        const auto parsed = Json::parse(Json(v).dump());
        ASSERT_TRUE(parsed) << v;
        EXPECT_EQ(parsed->asDouble(), v);
        // Dump -> parse -> dump is byte-stable (cache determinism).
        EXPECT_EQ(parsed->dump(), Json(v).dump());
    }
}

TEST(Json, IntegralDoubleKeepsDoubleSpelling)
{
    // 2.0 must not re-parse as the integer 2 and change its dump.
    EXPECT_EQ(Json(2.0).dump(), "2.0");
    const auto parsed = Json::parse("2.0");
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->dump(), "2.0");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json j = Json::object();
    j["zebra"] = Json(std::uint64_t{1});
    j["alpha"] = Json(std::uint64_t{2});
    j["mid"] = Json(std::uint64_t{3});
    EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
    // Re-assignment updates in place, no reordering.
    j["zebra"] = Json(std::uint64_t{9});
    EXPECT_EQ(j.dump(), "{\"zebra\":9,\"alpha\":2,\"mid\":3}");
}

TEST(Json, NestedDocumentRoundTripIsByteIdentical)
{
    Json doc = Json::object();
    doc["name"] = Json("sweep");
    doc["count"] = Json(std::uint64_t{3});
    doc["ratio"] = Json(0.375);
    Json arr = Json::array();
    arr.push(Json(std::uint64_t{1}))
        .push(Json("two"))
        .push(Json())
        .push(Json(true));
    doc["items"] = std::move(arr);
    Json inner = Json::object();
    inner["deep"] = Json(-42);
    doc["nested"] = std::move(inner);

    for (const unsigned indent : {0u, 2u}) {
        const std::string text = doc.dump(indent);
        const auto parsed = Json::parse(text);
        ASSERT_TRUE(parsed);
        EXPECT_EQ(*parsed, doc);
        EXPECT_EQ(parsed->dump(indent), text);
    }
}

TEST(Json, ParseHandlesWhitespaceAndEscapes)
{
    const auto parsed =
        Json::parse(" { \"a\" : [ 1 , 2.5 ] , \"b\\n\" : \"\\u0041\" } ");
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->at("a").at(0).asU64(), 1u);
    EXPECT_EQ(parsed->at("a").at(1).asDouble(), 2.5);
    EXPECT_EQ(parsed->at("b\n").asString(), "A");
}

TEST(Json, ParseRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(Json::parse("", &error));
    EXPECT_FALSE(Json::parse("{", &error));
    EXPECT_FALSE(Json::parse("[1,]", &error));
    EXPECT_FALSE(Json::parse("{\"a\":}", &error));
    EXPECT_FALSE(Json::parse("nul", &error));
    EXPECT_FALSE(Json::parse("1 2", &error));
    EXPECT_FALSE(Json::parse("\"unterminated", &error));
    EXPECT_FALSE(error.empty());
}

TEST(Json, FindAndTypePredicates)
{
    Json j = Json::object();
    j["x"] = Json(std::uint64_t{1});
    EXPECT_NE(j.find("x"), nullptr);
    EXPECT_EQ(j.find("y"), nullptr);
    EXPECT_TRUE(j.at("x").isNumber());
    EXPECT_FALSE(Json("1").isNumber());
    EXPECT_FALSE(Json(-1).isU64());
    EXPECT_TRUE(Json(2.0).isU64()); // integral double qualifies
    EXPECT_FALSE(Json(2.5).isU64());
}

TEST(Csv, EscapesOnlyWhenNeeded)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, TableDumpsHeaderAndRows)
{
    CsvTable csv;
    csv.setHeader({"name", "count", "ratio"});
    CsvTable::Row row;
    row.add("art,mcf").add(std::uint64_t{12}).add(0.5);
    csv.addRow(row.take());
    EXPECT_EQ(csv.rows(), 1u);
    EXPECT_EQ(csv.dump(), "name,count,ratio\n\"art,mcf\",12,0.5\n");
}

} // namespace
} // namespace rat::report
