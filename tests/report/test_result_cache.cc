/**
 * @file
 * ResultCache crash-safety tests: the failure paths a multi-process
 * farm hits in steady state. A cell file must either hold a complete,
 * key-verified write or not exist; nothing here may ever surface a
 * torn cell as a valid result.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "report/result_cache.hh"
#include "report/serialize.hh"

namespace rat::report {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;

    explicit TempDir(const char *name)
        : path(fs::path(testing::TempDir()) / name)
    {
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

sim::SimResult
sampleResult(const char *program, double ipc)
{
    sim::SimResult r;
    r.cycles = 4242;
    sim::ThreadResult t;
    t.program = program;
    t.ipc = ipc;
    r.threads.push_back(t);
    return r;
}

std::string
sampleKey(std::uint64_t seed)
{
    sim::SimConfig cfg;
    cfg.seed = seed;
    return ResultCache::keyFor(cfg, {"art", "mcf"});
}

TEST(ResultCacheFailure, SuccessfulStoreReturnsTrueAndLeavesNoTmp)
{
    TempDir dir("rc_store_ok");
    const ResultCache cache(dir.path.string());
    EXPECT_TRUE(cache.store(sampleKey(1), sampleResult("art", 0.5)));
    EXPECT_EQ(cache.storeFailures(), 0u);

    std::size_t cells = 0, tmps = 0;
    for (const auto &e : fs::directory_iterator(dir.path)) {
        if (e.path().extension() == ".tmp")
            ++tmps;
        else
            ++cells;
    }
    EXPECT_EQ(cells, 1u);
    EXPECT_EQ(tmps, 0u); // renamed, not lingering
}

TEST(ResultCacheFailure, TruncatedCellFileIsQuarantinedNotACrash)
{
    TempDir dir("rc_truncated");
    const ResultCache cache(dir.path.string());
    const std::string key = sampleKey(2);
    ASSERT_TRUE(cache.store(key, sampleResult("art", 0.5)));
    ASSERT_TRUE(cache.load(key));

    // Chop the tail off the stored cell — the short-write shape a
    // crashed writer without stream checking used to publish. The
    // load must miss AND move the damage aside (quarantine) so it is
    // paid for exactly once.
    const fs::path cell = dir.path / ResultCache::fileNameFor(key);
    const auto size = fs::file_size(cell);
    fs::resize_file(cell, size / 2);
    EXPECT_FALSE(cache.load(key));
    EXPECT_EQ(cache.quarantined(), 1u);
    EXPECT_FALSE(fs::exists(cell));
    EXPECT_TRUE(fs::exists(cell.string() + ".bad"));

    // Zero-byte cell (open() succeeded, nothing was flushed).
    std::ofstream(cell).flush();
    EXPECT_FALSE(cache.load(key));
    EXPECT_EQ(cache.quarantined(), 2u);
}

TEST(ResultCacheFailure, KeyCollisionMismatchIsAMiss)
{
    TempDir dir("rc_collision");
    const ResultCache cache(dir.path.string());
    const std::string key_a = sampleKey(3);
    const std::string key_b = sampleKey(4);
    ASSERT_TRUE(cache.store(key_a, sampleResult("art", 0.5)));

    // Simulate FNV collision: key_b's file name holds key_a's cell.
    // A *valid* cell for the wrong key is a miss, never a quarantine
    // candidate — it may be somebody else's good data.
    fs::copy_file(dir.path / ResultCache::fileNameFor(key_a),
                  dir.path / ResultCache::fileNameFor(key_b));
    EXPECT_FALSE(cache.load(key_b));
    EXPECT_TRUE(cache.load(key_a)); // the real cell still hits
    EXPECT_EQ(cache.quarantined(), 0u);
    EXPECT_TRUE(fs::exists(dir.path / ResultCache::fileNameFor(key_b)));
}

TEST(ResultCacheFailure, UnwritableCacheDirFailsStoreWithoutGarbage)
{
    // Parent path is a regular *file*, so the cache directory can
    // never be created: every store must fail cleanly.
    TempDir dir("rc_unwritable");
    fs::create_directories(dir.path);
    std::ofstream(dir.path / "blocker") << "x";
    const ResultCache cache((dir.path / "blocker" / "cache").string());

    EXPECT_FALSE(cache.store(sampleKey(5), sampleResult("art", 0.5)));
    EXPECT_EQ(cache.storeFailures(), 1u);
    EXPECT_FALSE(cache.load(sampleKey(5)));
}

TEST(ResultCacheFailure, ConcurrentSameKeyStoresFromThreadsStayWhole)
{
    // Two same-pid threads storing the same key used to share one tmp
    // path and interleave writes; the sequence-unique tmp names make
    // every published cell one writer's complete bytes.
    TempDir dir("rc_threads");
    const ResultCache cache(dir.path.string());
    const std::string key = sampleKey(6);
    const sim::SimResult a = sampleResult("art", 0.25);
    const sim::SimResult b = sampleResult("art", 0.75);

    for (int round = 0; round < 16; ++round) {
        std::thread ta([&] { cache.store(key, a); });
        std::thread tb([&] { cache.store(key, b); });
        ta.join();
        tb.join();
        const auto hit = cache.load(key);
        ASSERT_TRUE(hit) << "round " << round
                         << ": published cell unreadable";
        const double ipc = hit->threads.at(0).ipc;
        EXPECT_TRUE(ipc == 0.25 || ipc == 0.75) << ipc;
    }
    EXPECT_EQ(cache.storeFailures(), 0u);
}

TEST(ResultCacheFailure, ConcurrentTwoProcessStoreOnSameKey)
{
    // The farm's steady state: two worker *processes* land the same
    // key in one shared directory. Whatever the interleaving, the
    // published cell must parse and carry one of the two payloads.
    TempDir dir("rc_processes");
    const std::string cache_dir = dir.path.string();
    const std::string key = sampleKey(7);

    std::vector<pid_t> kids;
    for (int child = 0; child < 2; ++child) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            const ResultCache mine(cache_dir);
            const auto payload =
                sampleResult("art", child == 0 ? 0.25 : 0.75);
            bool ok = true;
            for (int i = 0; i < 32; ++i)
                ok = mine.store(key, payload) && ok;
            _exit(ok ? 0 : 1);
        }
        kids.push_back(pid);
    }
    for (const pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    const ResultCache cache(cache_dir);
    const auto hit = cache.load(key);
    ASSERT_TRUE(hit);
    const double ipc = hit->threads.at(0).ipc;
    EXPECT_TRUE(ipc == 0.25 || ipc == 0.75) << ipc;

    // No temp litter once both writers exited cleanly.
    for (const auto &e : fs::directory_iterator(dir.path))
        EXPECT_NE(e.path().extension(), ".tmp") << e.path();
}

TEST(ResultCacheFailure, StaleTmpFilesAreReapedOnOpenFreshOnesKept)
{
    TempDir dir("rc_gc");
    fs::create_directories(dir.path);

    // A tmp orphaned by a kill -9 long ago...
    const fs::path stale = dir.path / "deadbeef.json.999.0.tmp";
    std::ofstream(stale) << "{ torn";
    fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                   std::chrono::hours(2));
    // ...and one a live writer created moments ago.
    const fs::path fresh = dir.path / "cafef00d.json.998.0.tmp";
    std::ofstream(fresh) << "{ in-flight";

    const ResultCache cache(dir.path.string());
    EXPECT_EQ(cache.reapedTmpFiles(), 1u);
    EXPECT_FALSE(fs::exists(stale));
    EXPECT_TRUE(fs::exists(fresh)); // age-gated: never reap the living

    // Real cells are never GC candidates.
    const std::string key = sampleKey(8);
    ASSERT_TRUE(cache.store(key, sampleResult("art", 0.5)));
    const ResultCache reopened(dir.path.string());
    EXPECT_TRUE(reopened.load(key));
}

TEST(ResultCacheFailure, AgedOutBadFilesAreReapedFreshOnesKept)
{
    TempDir dir("rc_gc_bad");
    fs::create_directories(dir.path);

    // A quarantined cell whose post-mortem window has long passed...
    const fs::path stale = dir.path / "deadbeef.json.bad";
    std::ofstream(stale) << "{ rotted";
    fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                   std::chrono::hours(2));
    // ...and one quarantined moments ago, still worth inspecting.
    const fs::path fresh = dir.path / "cafef00d.json.bad";
    std::ofstream(fresh) << "{ rotted";

    const ResultCache cache(dir.path.string());
    EXPECT_EQ(cache.reapedBadFiles(), 1u);
    EXPECT_EQ(cache.reapedTmpFiles(), 0u);
    EXPECT_EQ(cache.stats().reapedBadFiles, 1u);
    EXPECT_FALSE(fs::exists(stale));
    EXPECT_TRUE(fs::exists(fresh));
}

TEST(ResultCacheFailure, TmpFilesOfADeadPidAreRemovedRegardlessOfAge)
{
    TempDir dir("rc_pid_tmp");
    fs::create_directories(dir.path);

    // Fresh temps of the dead worker (pid 999)...
    const fs::path mine1 = dir.path / "deadbeef.json.999.0.tmp";
    const fs::path mine2 = dir.path / "cafef00d.json.999.7.tmp";
    // ...a live sibling's temp, and a seq field that happens to equal
    // the dead pid (must NOT match: the pid field is position-exact).
    const fs::path other = dir.path / "deadbeef.json.998.1.tmp";
    const fs::path decoy = dir.path / "deadbeef.json.998.999.tmp";
    for (const fs::path &p : {mine1, mine2, other, decoy})
        std::ofstream(p) << "{ in-flight";

    const ResultCache cache(dir.path.string());
    EXPECT_EQ(cache.removeTmpFilesOfPid(999), 2u);
    EXPECT_FALSE(fs::exists(mine1));
    EXPECT_FALSE(fs::exists(mine2));
    EXPECT_TRUE(fs::exists(other));
    EXPECT_TRUE(fs::exists(decoy));
}

TEST(ResultCacheChecksum, BitRotInsideTheResultIsCaughtAndQuarantined)
{
    // Flip one digit of a numeric field inside the stored result:
    // the cell still parses, the key still matches — only the FNV-1a
    // payload checksum can catch it.
    TempDir dir("rc_bitrot");
    const ResultCache cache(dir.path.string());
    const std::string key = sampleKey(20);
    ASSERT_TRUE(cache.store(key, sampleResult("art", 0.5)));

    const fs::path cell = dir.path / ResultCache::fileNameFor(key);
    std::string text;
    {
        std::ifstream in(cell);
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    // The sample result has cycles = 4242; rot it to 4243 in place.
    const auto pos = text.rfind("4242");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 4, "4243");
    std::ofstream(cell, std::ios::trunc) << text;

    EXPECT_FALSE(cache.load(key));
    EXPECT_EQ(cache.quarantined(), 1u);
    EXPECT_TRUE(fs::exists(cell.string() + ".bad"));
    EXPECT_FALSE(fs::exists(cell));
}

TEST(ResultCacheChecksum, MissingChecksumFieldIsQuarantined)
{
    // A hand-built cell with a valid key and result but no checksum
    // member (the v1 shape smuggled under a v2 name) must not load.
    TempDir dir("rc_nochecksum");
    const ResultCache cache(dir.path.string());
    const std::string key = sampleKey(21);

    Json cell = Json::object();
    cell["key"] = Json(key);
    cell["result"] = toJson(sampleResult("art", 0.5));
    fs::create_directories(dir.path);
    std::ofstream(dir.path / ResultCache::fileNameFor(key))
        << cell.dump(2);

    EXPECT_FALSE(cache.load(key));
    EXPECT_EQ(cache.quarantined(), 1u);
}

TEST(ResultCacheChecksum, QuarantinedCellHealsOnTheNextStore)
{
    // The self-healing cycle: damage -> quarantined miss -> caller
    // re-simulates -> store -> clean hit; the .bad corpse stays for
    // post-mortem but is invisible to lookups.
    TempDir dir("rc_heal");
    const ResultCache cache(dir.path.string());
    const std::string key = sampleKey(22);
    ASSERT_TRUE(cache.store(key, sampleResult("art", 0.5)));

    const fs::path cell = dir.path / ResultCache::fileNameFor(key);
    std::ofstream(cell, std::ios::trunc) << "not even json";
    EXPECT_FALSE(cache.load(key));
    EXPECT_EQ(cache.quarantined(), 1u);

    ASSERT_TRUE(cache.store(key, sampleResult("art", 0.5)));
    const auto healed = cache.load(key);
    ASSERT_TRUE(healed);
    EXPECT_EQ(healed->threads.at(0).ipc, 0.5);
    EXPECT_EQ(cache.quarantined(), 1u); // no new quarantine
    EXPECT_TRUE(fs::exists(cell.string() + ".bad"));
}

TEST(ResultCacheChecksum, StoredCellsRoundTripThroughTheChecksum)
{
    // The checksum is computed over the compact re-dump of the parsed
    // result, so it only works if dump(parse(dump(x))) is stable —
    // exercised here across integer and floating payload fields.
    TempDir dir("rc_roundtrip");
    const ResultCache cache(dir.path.string());
    for (std::uint64_t i = 0; i < 16; ++i) {
        const std::string key = sampleKey(100 + i);
        ASSERT_TRUE(cache.store(
            key, sampleResult("art", 0.1 + 0.037 * static_cast<double>(i))));
        EXPECT_TRUE(cache.load(key)) << "cell " << i;
    }
    EXPECT_EQ(cache.quarantined(), 0u);
    EXPECT_EQ(cache.stats().hits, 16u);
    EXPECT_EQ(cache.stats().quarantined, 0u);
}

} // namespace
} // namespace rat::report
