/**
 * @file
 * Round-trip tests of the config/result serializers: every field
 * survives toJson -> dump -> parse -> fromJson exactly, and malformed
 * documents are rejected instead of half-read.
 */

#include <gtest/gtest.h>

#include "report/serialize.hh"
#include "sim/workloads.hh"

namespace rat::report {
namespace {

/** A config with every field moved off its default value. */
sim::SimConfig
nonDefaultConfig()
{
    sim::SimConfig cfg;
    cfg.core.numThreads = 4;
    cfg.core.fetchWidth = 4;
    cfg.core.fetchThreads = 1;
    cfg.core.renameWidth = 6;
    cfg.core.issueWidth = 7;
    cfg.core.commitWidth = 5;
    cfg.core.frontendDelay = 9;
    cfg.core.robEntries = 256;
    cfg.core.intIqEntries = 48;
    cfg.core.fpIqEntries = 32;
    cfg.core.lsIqEntries = 24;
    cfg.core.lsqEntries = 40;
    cfg.core.intRegs = 128;
    cfg.core.fpRegs = 96;
    cfg.core.intUnits = 2;
    cfg.core.fpUnits = 1;
    cfg.core.memUnits = 3;
    cfg.core.fetchQueueEntries = 16;
    cfg.core.btbMissPenalty = 3;
    cfg.core.mispredictRedirect = 4;
    cfg.core.ifetchPrefetchLines = 2;
    cfg.core.policy = core::PolicyKind::RatDcra;
    cfg.core.rat.variant = runahead::RaVariant::UselessFilter;
    cfg.core.rat.cappedMaxCycles = 96;
    cfg.core.rat.uselessFilterThreshold = 3;
    cfg.core.rat.uselessFilterReprobe = 17;
    cfg.core.rat.dropFpInRunahead = false;
    cfg.core.rat.useRunaheadCache = true;
    cfg.core.rat.runaheadCacheLines = 128;
    cfg.core.rat.disablePrefetch = true;
    cfg.core.rat.noFetchInRunahead = true;
    cfg.core.predictor.tableEntries = 1024;
    cfg.core.predictor.historyBits = 12;
    cfg.core.predictor.weightLimit = 63;
    cfg.mem.l1i.name = "I1";
    cfg.mem.l1i.sizeBytes = 32 * 1024;
    cfg.mem.l1d.ways = 8;
    cfg.mem.l2.latency = 15;
    cfg.mem.l2.mshrs = 64;
    cfg.mem.memLatency = 250;
    cfg.prewarmInsts = 12345;
    cfg.warmupCycles = 777;
    cfg.measureCycles = 4242;
    cfg.seed = 99;
    return cfg;
}

/** A fabricated two-thread result with distinctive counters. */
sim::SimResult
sampleResult()
{
    sim::SimResult r;
    r.cycles = 20000;
    sim::ThreadResult t0;
    t0.program = "art";
    t0.ipc = 0.7023;
    t0.l2Mpki = 15.885022692889562;
    t0.core.committedInsts = 14046;
    t0.core.executedInsts = 20011;
    t0.core.fetchedInsts = 30123;
    t0.core.pseudoRetired = 800;
    t0.core.invalidInsts = 55;
    t0.core.runaheadEntries = 39;
    t0.core.uselessRunaheadEpisodes = 3;
    t0.core.runaheadCycles = 15216;
    t0.core.normalCycles = 4784;
    t0.core.branches = 3000;
    t0.core.branchMispredicts = 120;
    t0.core.squashedInsts = 42;
    t0.core.normalRegCycles = 123456;
    t0.core.runaheadRegCycles = 654321;
    t0.mem.loads = 4000;
    t0.mem.stores = 1500;
    t0.mem.l1dMisses = 900;
    t0.mem.l2DemandMisses = 223;
    t0.mem.ifetchL1Misses = 17;
    t0.mem.ifetchL2Misses = 5;
    t0.mem.ifetchPrefetches = 340;
    t0.mem.raMemPrefetches = 88;
    t0.mem.raL2Prefetches = 21;
    r.threads.push_back(t0);
    sim::ThreadResult t1;
    t1.program = "mcf";
    t1.ipc = 0.05445;
    t1.l2Mpki = 47.2;
    t1.core.committedInsts = 1089;
    t1.mem.loads = 777;
    r.threads.push_back(t1);
    return r;
}

TEST(Serialize, SimConfigRoundTripsExactly)
{
    const sim::SimConfig cfg = nonDefaultConfig();
    const std::string text = toJson(cfg).dump(2);

    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed);
    sim::SimConfig back; // defaults, all overwritten by fromJson
    ASSERT_TRUE(fromJson(*parsed, back));

    // Field-exact equality via the canonical serialization.
    EXPECT_EQ(toJson(back).dump(), toJson(cfg).dump());
    EXPECT_EQ(back.core.policy, core::PolicyKind::RatDcra);
    EXPECT_EQ(back.core.predictor.weightLimit, 63);
    EXPECT_EQ(back.mem.l1i.name, "I1");
    EXPECT_EQ(back.seed, 99u);
}

TEST(Serialize, DefaultConfigRoundTripsExactly)
{
    const sim::SimConfig cfg;
    const auto parsed = Json::parse(toJson(cfg).dump());
    ASSERT_TRUE(parsed);
    sim::SimConfig back;
    back.seed = 1234; // ensure fromJson actually writes it
    ASSERT_TRUE(fromJson(*parsed, back));
    EXPECT_EQ(toJson(back).dump(), toJson(cfg).dump());
}

TEST(Serialize, SimResultRoundTripsExactly)
{
    const sim::SimResult r = sampleResult();
    const auto parsed = Json::parse(toJson(r).dump(2));
    ASSERT_TRUE(parsed);
    sim::SimResult back;
    ASSERT_TRUE(fromJson(*parsed, back));

    EXPECT_EQ(toJson(back).dump(), toJson(r).dump());
    ASSERT_EQ(back.threads.size(), 2u);
    EXPECT_EQ(back.threads[0].core.runaheadCycles, 15216u);
    EXPECT_EQ(back.threads[0].mem.raMemPrefetches, 88u);
    // Doubles round-trip bit-for-bit, not approximately.
    EXPECT_EQ(back.threads[0].l2Mpki, 15.885022692889562);
    EXPECT_EQ(back.threads[1].ipc, 0.05445);
}

TEST(Serialize, GroupMetricsRoundTripsExactly)
{
    sim::GroupMetrics gm;
    gm.technique = "RaT";
    gm.group = sim::WorkloadGroup::MEM4;
    gm.meanThroughput = 0.3625;
    gm.meanFairness = 0.41;
    gm.meanEd2 = 4.19e5;
    gm.results.push_back(sampleResult());

    const auto parsed = Json::parse(toJson(gm).dump(2));
    ASSERT_TRUE(parsed);
    sim::GroupMetrics back;
    ASSERT_TRUE(fromJson(*parsed, back));
    EXPECT_EQ(back.group, sim::WorkloadGroup::MEM4);
    EXPECT_EQ(back.technique, "RaT");
    EXPECT_EQ(toJson(back).dump(), toJson(gm).dump());
}

TEST(Serialize, NegativeWeightLimitRoundTrips)
{
    // weightLimit is the one signed config field; the reader must
    // accept the negative values the writer can produce.
    sim::SimConfig cfg;
    cfg.core.predictor.weightLimit = -63;
    const auto parsed = Json::parse(toJson(cfg).dump());
    ASSERT_TRUE(parsed);
    sim::SimConfig back;
    ASSERT_TRUE(fromJson(*parsed, back));
    EXPECT_EQ(back.core.predictor.weightLimit, -63);
}

TEST(Serialize, FromJsonRejectsMissingAndIllTypedFields)
{
    Json cfg = toJson(sim::SimConfig{});
    sim::SimConfig out;
    ASSERT_TRUE(fromJson(cfg, out));

    Json no_seed = cfg;
    // Rebuild without the seed member (operator[] would re-add it).
    Json pruned = Json::object();
    for (const auto &[key, value] : no_seed.members()) {
        if (key != "seed")
            pruned[key] = value;
    }
    EXPECT_FALSE(fromJson(pruned, out));

    Json bad_type = cfg;
    bad_type["seed"] = Json("one");
    EXPECT_FALSE(fromJson(bad_type, out));

    Json bad_policy = cfg;
    bad_policy["core"]["policy"] = Json("NOT_A_POLICY");
    EXPECT_FALSE(fromJson(bad_policy, out));
}

TEST(Serialize, ResultMetricsAndCsvShapes)
{
    const sim::SimResult r = sampleResult();
    const Json metrics = resultMetricsJson(r);
    EXPECT_EQ(metrics.at("committedTotal").asU64(),
              r.committedTotal());
    EXPECT_EQ(metrics.at("throughputEq1").asDouble(),
              r.throughputEq1());

    const std::string csv = threadResultsCsv(r).dump();
    EXPECT_NE(csv.find("thread,program,ipc"), std::string::npos);
    EXPECT_NE(csv.find("art"), std::string::npos);
    EXPECT_NE(csv.find("mcf"), std::string::npos);
}

} // namespace
} // namespace rat::report
