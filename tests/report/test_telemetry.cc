/** @file Serialization tests for telemetry and engine-stat blocks. */

#include <gtest/gtest.h>

#include "report/serialize.hh"

namespace rat::report {
namespace {

obs::TelemetryResult
makeTelemetry()
{
    obs::TelemetryResult t;
    t.enabled = true;
    t.window = 5000;
    obs::WindowSample s;
    s.cycle = 25000;
    s.committed = 4200;
    s.executed = 5100;
    s.raExecuted = 300;
    s.rob = 96;
    s.iq = 20;
    s.lsq = 14;
    t.samples.push_back(s);
    s.cycle = 30000;
    s.committed = 3900;
    t.samples.push_back(s);
    t.episodeCycles.sample(410);
    t.episodeCycles.sample(388);
    t.missLatency.sample(423);
    t.issueToRetire.sample(1);
    t.issueToRetire.sample(7);
    return t;
}

TEST(TelemetrySerialize, DisabledResultHasNoTelemetryKey)
{
    sim::SimResult r;
    r.cycles = 1000;
    const Json j = toJson(r);
    EXPECT_EQ(j.find("telemetry"), nullptr);

    // And the default config serializes without a sampleWindow member,
    // keeping existing cache keys and goldens byte-identical.
    const Json cfg = toJson(sim::SimConfig{});
    EXPECT_EQ(cfg.find("sampleWindow"), nullptr);
}

TEST(TelemetrySerialize, EnabledTelemetryRoundTripsExactly)
{
    sim::SimResult r;
    r.cycles = 30000;
    r.telemetry = makeTelemetry();

    const std::string text = toJson(r).dump(2);
    const auto doc = Json::parse(text);
    ASSERT_TRUE(doc.has_value());
    sim::SimResult back;
    ASSERT_TRUE(fromJson(*doc, back));
    EXPECT_TRUE(back.telemetry == r.telemetry);
    // Serialization is also a fixed point (cache replay produces the
    // same bytes a fresh run would).
    EXPECT_EQ(toJson(back).dump(2), text);
}

TEST(TelemetrySerialize, HistogramRoundTripElidesTrailingZeros)
{
    obs::Log2Histogram h;
    h.sample(5);
    const Json j = toJson(h);
    const Json *buckets = j.find("buckets");
    ASSERT_NE(buckets, nullptr);
    EXPECT_EQ(buckets->elements().size(), 3u); // buckets 0..2
    obs::Log2Histogram back;
    ASSERT_TRUE(fromJson(j, back));
    EXPECT_TRUE(back == h);
}

TEST(TelemetrySerialize, SampleWindowRoundTripsInConfig)
{
    sim::SimConfig cfg;
    cfg.sampleWindow = 2500;
    const Json j = toJson(cfg);
    const Json *window = j.find("sampleWindow");
    ASSERT_NE(window, nullptr);
    EXPECT_EQ(window->asU64(), 2500u);
    sim::SimConfig back;
    ASSERT_TRUE(fromJson(j, back));
    EXPECT_EQ(back.sampleWindow, 2500u);

    // Absent member reads back as disabled.
    cfg.sampleWindow = 0;
    sim::SimConfig off;
    off.sampleWindow = 99; // must be overwritten
    ASSERT_TRUE(fromJson(toJson(cfg), off));
    EXPECT_EQ(off.sampleWindow, 0u);
}

TEST(TelemetrySerialize, EngineStatsJsonCarriesAllCounters)
{
    runahead::EngineStats stats;
    stats.episodes = 12;
    stats.uselessEpisodes = 3;
    stats.suppressedEntries = 7;
    stats.drainEpisodes = 2;
    stats.cappedExits = 5;
    stats.executedInRunahead = 991;
    const Json j = engineStatsJson(stats);
    EXPECT_EQ(j.find("episodes")->asU64(), 12u);
    EXPECT_EQ(j.find("uselessEpisodes")->asU64(), 3u);
    EXPECT_EQ(j.find("suppressedEntries")->asU64(), 7u);
    EXPECT_EQ(j.find("drainEpisodes")->asU64(), 2u);
    EXPECT_EQ(j.find("cappedExits")->asU64(), 5u);
    EXPECT_EQ(j.find("executedInRunahead")->asU64(), 991u);
}

TEST(TelemetrySerialize, MalformedTelemetryRejected)
{
    const auto doc = Json::parse(
        R"({"cycles":10,"threads":[],"telemetry":{"window":5,)"
        R"("samples":[[1,2,3]],"episodeCycles":{"total":0,"sum":0,)"
        R"("buckets":[]},"missLatency":{"total":0,"sum":0,"buckets":[]},)"
        R"("issueToRetire":{"total":0,"sum":0,"buckets":[]}}})");
    ASSERT_TRUE(doc.has_value());
    sim::SimResult r;
    EXPECT_FALSE(fromJson(*doc, r)); // samples rows must be 7-tuples
}

} // namespace
} // namespace rat::report
