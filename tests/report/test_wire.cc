/**
 * @file
 * Frame-transport tests: the length-prefixed JSON protocol between
 * the farm coordinator and its workers must round-trip arbitrary
 * payloads, survive byte-at-a-time delivery, and detect truncation
 * and corruption instead of mis-framing.
 */

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "report/wire.hh"

namespace rat::report {
namespace {

struct Pipe {
    int rd = -1;
    int wr = -1;

    Pipe()
    {
        int fds[2];
        EXPECT_EQ(::pipe(fds), 0);
        rd = fds[0];
        wr = fds[1];
    }
    ~Pipe()
    {
        closeWrite();
        if (rd >= 0)
            ::close(rd);
    }
    void closeWrite()
    {
        if (wr >= 0)
            ::close(wr);
        wr = -1;
    }
};

TEST(Wire, FramesRoundTripInOrderAcrossAPipe)
{
    Pipe pipe;
    // Total stays under the 64 KiB pipe capacity: the writer must not
    // block, because nothing drains the pipe until all frames are sent.
    const std::string msgs[] = {"", "a", std::string(50000, 'x'),
                                "{\"index\":7}"};
    for (const std::string &m : msgs)
        ASSERT_TRUE(writeFrame(pipe.wr, m));
    pipe.closeWrite();

    FrameReader reader(pipe.rd);
    for (const std::string &m : msgs) {
        const auto got = reader.next();
        ASSERT_TRUE(got);
        EXPECT_EQ(*got, m);
    }
    EXPECT_FALSE(reader.next()); // clean EOF at a frame boundary
    EXPECT_FALSE(reader.truncated());
}

TEST(Wire, ReaderFlagsEofInsideAFrameAsTruncation)
{
    Pipe pipe;
    // A length prefix promising 100 bytes, but the writer died after 3.
    const char torn[] = {100, 0, 0, 0, 'a', 'b', 'c'};
    ASSERT_EQ(::write(pipe.wr, torn, sizeof(torn)),
              static_cast<ssize_t>(sizeof(torn)));
    pipe.closeWrite();

    FrameReader reader(pipe.rd);
    EXPECT_FALSE(reader.next());
    EXPECT_TRUE(reader.truncated());
}

TEST(Wire, WriteFrameRejectsOversizedPayloadAndDeadPeer)
{
    Pipe pipe;
    std::string huge;
    huge.resize(kMaxFramePayload + 1);
    EXPECT_FALSE(writeFrame(pipe.wr, huge));

    // Closing the read side makes further writes fail (EPIPE) instead
    // of crashing the writer — the coordinator ignores SIGPIPE.
    ::close(pipe.rd);
    pipe.rd = -1;
    signal(SIGPIPE, SIG_IGN);
    EXPECT_FALSE(writeFrame(pipe.wr, "late"));
    signal(SIGPIPE, SIG_DFL);
}

TEST(Wire, BufferReassemblesFramesFromSingleByteFeeds)
{
    std::string stream;
    Pipe pipe;
    ASSERT_TRUE(writeFrame(pipe.wr, "first"));
    ASSERT_TRUE(writeFrame(pipe.wr, "second frame"));
    pipe.closeWrite();
    char c;
    while (::read(pipe.rd, &c, 1) == 1)
        stream.push_back(c);

    FrameBuffer buf;
    std::vector<std::string> got;
    for (const char byte : stream) {
        buf.feed(&byte, 1);
        while (auto frame = buf.pop())
            got.push_back(*frame);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], "first");
    EXPECT_EQ(got[1], "second frame");
    EXPECT_EQ(buf.pendingBytes(), 0u);
    EXPECT_FALSE(buf.corrupt());
}

TEST(Wire, BufferReportsPendingBytesOfATornFrame)
{
    FrameBuffer buf;
    const char torn[] = {50, 0, 0, 0, 'p', 'a', 'r', 't'};
    buf.feed(torn, sizeof(torn));
    EXPECT_FALSE(buf.pop());
    EXPECT_EQ(buf.pendingBytes(), sizeof(torn));
}

TEST(Wire, BufferFlagsInsaneLengthPrefixAsCorrupt)
{
    FrameBuffer buf;
    const char bad[] = {'\xff', '\xff', '\xff', '\xff', 'x'};
    buf.feed(bad, sizeof(bad));
    EXPECT_FALSE(buf.pop());
    EXPECT_TRUE(buf.corrupt());
    // Corruption is sticky: later valid bytes cannot resync a framed
    // stream, so pop() must keep refusing.
    const char more[] = {1, 0, 0, 0, 'y'};
    buf.feed(more, sizeof(more));
    EXPECT_FALSE(buf.pop());
}

/**
 * Seeded adversarial fuzz over the frame decoders. Deterministic
 * (fixed seeds, stateless splitmix64 draws): any failure replays
 * exactly. Three properties must hold for every input, however
 * mangled: no crash, every delivered frame is one that was actually
 * written (no mis-framing, no duplicates), and corruption beyond
 * repair latches corrupt()/truncated() instead of resyncing.
 */

std::uint64_t
fuzzDraw(std::uint64_t seed, std::uint64_t n)
{
    return splitmix64(hashCombine(seed, n));
}

/** A well-formed multi-frame stream plus the payloads it encodes. */
std::string
buildStream(std::uint64_t seed, std::vector<std::string> *payloads)
{
    std::string stream;
    const std::size_t nframes = 1 + fuzzDraw(seed, 0) % 8;
    for (std::size_t f = 0; f < nframes; ++f) {
        const std::size_t len = fuzzDraw(seed, 100 + f) % 2000;
        std::string payload(len, '\0');
        for (std::size_t i = 0; i < len; ++i)
            payload[i] = static_cast<char>(
                fuzzDraw(seed, (f << 16) ^ i) & 0xff);
        const std::uint32_t n = static_cast<std::uint32_t>(len);
        stream.push_back(static_cast<char>(n & 0xff));
        stream.push_back(static_cast<char>((n >> 8) & 0xff));
        stream.push_back(static_cast<char>((n >> 16) & 0xff));
        stream.push_back(static_cast<char>((n >> 24) & 0xff));
        stream += payload;
        payloads->push_back(std::move(payload));
    }
    return stream;
}

/** Feed @p stream to a FrameBuffer in random chunk sizes; collect
 * every popped frame. */
std::vector<std::string>
decodeChunked(const std::string &stream, std::uint64_t seed,
              FrameBuffer *buf)
{
    std::vector<std::string> got;
    std::size_t pos = 0, step = 0;
    while (pos < stream.size()) {
        const std::size_t chunk = std::min(
            stream.size() - pos,
            static_cast<std::size_t>(1 +
                                     fuzzDraw(seed, 5000 + step) % 97));
        buf->feed(stream.data() + pos, chunk);
        pos += chunk;
        ++step;
        while (auto frame = buf->pop())
            got.push_back(std::move(*frame));
    }
    return got;
}

TEST(WireFuzz, RandomChunkSplitsNeverDuplicateOrDropFrames)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        std::vector<std::string> sent;
        const std::string stream = buildStream(seed, &sent);
        FrameBuffer buf;
        const auto got = decodeChunked(stream, seed, &buf);
        EXPECT_FALSE(buf.corrupt()) << "seed " << seed;
        EXPECT_EQ(buf.pendingBytes(), 0u) << "seed " << seed;
        ASSERT_EQ(got.size(), sent.size()) << "seed " << seed;
        for (std::size_t i = 0; i < sent.size(); ++i)
            EXPECT_EQ(got[i], sent[i]) << "seed " << seed;
    }
}

TEST(WireFuzz, CorruptedLengthPrefixesLatchNotCrash)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        std::vector<std::string> sent;
        std::string stream = buildStream(seed, &sent);
        // Smash one byte of the first frame's length prefix with a
        // high byte: the decoded length either balloons past the
        // 64 MiB bound (corrupt must latch) or mis-frames the rest of
        // the stream (decoder must never deliver more frames than
        // were sent, and must never crash).
        stream[fuzzDraw(seed, 7) % 4] = '\xff';
        FrameBuffer buf;
        const auto got = decodeChunked(stream, seed, &buf);
        // The protocol does not checksum payloads, so an in-bounds
        // mangled length mis-frames (the farm's JSON layer rejects
        // those frames). What the decoder must guarantee: every
        // delivered byte is consumed exactly once (no duplication —
        // total delivered + overhead never exceeds the stream), and
        // an out-of-bounds length latches corrupt() permanently.
        std::size_t bytes = 0;
        for (const auto &f : got)
            bytes += 4 + f.size();
        EXPECT_LE(bytes, stream.size()) << "seed " << seed;
        if (buf.corrupt()) {
            const char more[] = {1, 0, 0, 0, 'z'};
            buf.feed(more, sizeof(more));
            EXPECT_FALSE(buf.pop()) << "seed " << seed;
        }
    }
}

TEST(WireFuzz, OversizeFrameIsRejectedByEveryDecoder)
{
    // 64 MiB + 1 length prefix, no payload behind it.
    const std::uint32_t len = kMaxFramePayload + 1;
    const char prefix[4] = {
        static_cast<char>(len & 0xff),
        static_cast<char>((len >> 8) & 0xff),
        static_cast<char>((len >> 16) & 0xff),
        static_cast<char>((len >> 24) & 0xff),
    };
    FrameBuffer buf;
    buf.feed(prefix, sizeof(prefix));
    EXPECT_FALSE(buf.pop());
    EXPECT_TRUE(buf.corrupt());

    Pipe pipe;
    ASSERT_EQ(::write(pipe.wr, prefix, sizeof(prefix)),
              static_cast<ssize_t>(sizeof(prefix)));
    pipe.closeWrite();
    FrameReader reader(pipe.rd);
    EXPECT_FALSE(reader.next());
    EXPECT_TRUE(reader.truncated());
}

TEST(WireFuzz, MidFrameTruncationIsDetectedAtEveryCutPoint)
{
    for (std::uint64_t seed = 60; seed <= 80; ++seed) {
        std::vector<std::string> sent;
        const std::string stream = buildStream(seed, &sent);
        // Cut the stream mid-way; everything up to the cut decodes,
        // the torn tail is reported as pending bytes, and a
        // FrameReader over the same bytes flags truncation unless the
        // cut landed exactly on a frame boundary.
        const std::size_t cut = 1 + fuzzDraw(seed, 9) % (stream.size() - 1);
        const std::string torn = stream.substr(0, cut);

        FrameBuffer buf;
        const auto got = decodeChunked(torn, seed, &buf);
        EXPECT_FALSE(buf.corrupt()) << "seed " << seed;
        EXPECT_LE(got.size(), sent.size()) << "seed " << seed;
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], sent[i]) << "seed " << seed;
        std::size_t decoded = 0;
        for (const auto &f : got)
            decoded += 4 + f.size();
        EXPECT_EQ(buf.pendingBytes(), torn.size() - decoded)
            << "seed " << seed;

        Pipe pipe;
        ASSERT_EQ(::write(pipe.wr, torn.data(), torn.size()),
                  static_cast<ssize_t>(torn.size()));
        pipe.closeWrite();
        FrameReader reader(pipe.rd);
        std::size_t read_frames = 0;
        while (reader.next())
            ++read_frames;
        EXPECT_EQ(read_frames, got.size()) << "seed " << seed;
        EXPECT_EQ(reader.truncated(), decoded != torn.size())
            << "seed " << seed;
    }
}

TEST(WireFuzz, GarbageBurstFromInjectedFaultLatchesCorrupt)
{
    // The exact burst the garbage-frame fault writes (0xff * 12) must
    // deterministically latch the receiving buffer as corrupt — the
    // farm's recovery path depends on detection being immediate.
    FrameBuffer buf;
    const std::string junk(12, '\xff');
    buf.feed(junk.data(), junk.size());
    EXPECT_FALSE(buf.pop());
    EXPECT_TRUE(buf.corrupt());
}

} // namespace
} // namespace rat::report
