/**
 * @file
 * Frame-transport tests: the length-prefixed JSON protocol between
 * the farm coordinator and its workers must round-trip arbitrary
 * payloads, survive byte-at-a-time delivery, and detect truncation
 * and corruption instead of mis-framing.
 */

#include <unistd.h>

#include <csignal>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "report/wire.hh"

namespace rat::report {
namespace {

struct Pipe {
    int rd = -1;
    int wr = -1;

    Pipe()
    {
        int fds[2];
        EXPECT_EQ(::pipe(fds), 0);
        rd = fds[0];
        wr = fds[1];
    }
    ~Pipe()
    {
        closeWrite();
        if (rd >= 0)
            ::close(rd);
    }
    void closeWrite()
    {
        if (wr >= 0)
            ::close(wr);
        wr = -1;
    }
};

TEST(Wire, FramesRoundTripInOrderAcrossAPipe)
{
    Pipe pipe;
    // Total stays under the 64 KiB pipe capacity: the writer must not
    // block, because nothing drains the pipe until all frames are sent.
    const std::string msgs[] = {"", "a", std::string(50000, 'x'),
                                "{\"index\":7}"};
    for (const std::string &m : msgs)
        ASSERT_TRUE(writeFrame(pipe.wr, m));
    pipe.closeWrite();

    FrameReader reader(pipe.rd);
    for (const std::string &m : msgs) {
        const auto got = reader.next();
        ASSERT_TRUE(got);
        EXPECT_EQ(*got, m);
    }
    EXPECT_FALSE(reader.next()); // clean EOF at a frame boundary
    EXPECT_FALSE(reader.truncated());
}

TEST(Wire, ReaderFlagsEofInsideAFrameAsTruncation)
{
    Pipe pipe;
    // A length prefix promising 100 bytes, but the writer died after 3.
    const char torn[] = {100, 0, 0, 0, 'a', 'b', 'c'};
    ASSERT_EQ(::write(pipe.wr, torn, sizeof(torn)),
              static_cast<ssize_t>(sizeof(torn)));
    pipe.closeWrite();

    FrameReader reader(pipe.rd);
    EXPECT_FALSE(reader.next());
    EXPECT_TRUE(reader.truncated());
}

TEST(Wire, WriteFrameRejectsOversizedPayloadAndDeadPeer)
{
    Pipe pipe;
    std::string huge;
    huge.resize(kMaxFramePayload + 1);
    EXPECT_FALSE(writeFrame(pipe.wr, huge));

    // Closing the read side makes further writes fail (EPIPE) instead
    // of crashing the writer — the coordinator ignores SIGPIPE.
    ::close(pipe.rd);
    pipe.rd = -1;
    signal(SIGPIPE, SIG_IGN);
    EXPECT_FALSE(writeFrame(pipe.wr, "late"));
    signal(SIGPIPE, SIG_DFL);
}

TEST(Wire, BufferReassemblesFramesFromSingleByteFeeds)
{
    std::string stream;
    Pipe pipe;
    ASSERT_TRUE(writeFrame(pipe.wr, "first"));
    ASSERT_TRUE(writeFrame(pipe.wr, "second frame"));
    pipe.closeWrite();
    char c;
    while (::read(pipe.rd, &c, 1) == 1)
        stream.push_back(c);

    FrameBuffer buf;
    std::vector<std::string> got;
    for (const char byte : stream) {
        buf.feed(&byte, 1);
        while (auto frame = buf.pop())
            got.push_back(*frame);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], "first");
    EXPECT_EQ(got[1], "second frame");
    EXPECT_EQ(buf.pendingBytes(), 0u);
    EXPECT_FALSE(buf.corrupt());
}

TEST(Wire, BufferReportsPendingBytesOfATornFrame)
{
    FrameBuffer buf;
    const char torn[] = {50, 0, 0, 0, 'p', 'a', 'r', 't'};
    buf.feed(torn, sizeof(torn));
    EXPECT_FALSE(buf.pop());
    EXPECT_EQ(buf.pendingBytes(), sizeof(torn));
}

TEST(Wire, BufferFlagsInsaneLengthPrefixAsCorrupt)
{
    FrameBuffer buf;
    const char bad[] = {'\xff', '\xff', '\xff', '\xff', 'x'};
    buf.feed(bad, sizeof(bad));
    EXPECT_FALSE(buf.pop());
    EXPECT_TRUE(buf.corrupt());
    // Corruption is sticky: later valid bytes cannot resync a framed
    // stream, so pop() must keep refusing.
    const char more[] = {1, 0, 0, 0, 'y'};
    buf.feed(more, sizeof(more));
    EXPECT_FALSE(buf.pop());
}

} // namespace
} // namespace rat::report
