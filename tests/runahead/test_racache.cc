/**
 * @file
 * Standalone unit tests of the runahead cache (runahead/racache.hh):
 * FIFO-ring eviction order, duplicate-line (rewrite-in-place)
 * semantics, open-addressing collision handling under load and across
 * backward-shift erases, and per-thread isolation.
 */

#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "runahead/racache.hh"

namespace rat::runahead {
namespace {

TEST(RaCache, WriteLookupClear)
{
    RunaheadCache rc(4);
    rc.write(0, 0x100, true);
    rc.write(0, 0x200, false);
    bool valid = false;
    EXPECT_TRUE(rc.lookup(0, 0x100, valid));
    EXPECT_TRUE(valid);
    EXPECT_TRUE(rc.lookup(0, 0x200, valid));
    EXPECT_FALSE(valid);
    EXPECT_FALSE(rc.lookup(0, 0x300, valid));
    EXPECT_FALSE(rc.lookup(1, 0x100, valid)); // per-thread tags
    rc.clear(0);
    EXPECT_FALSE(rc.lookup(0, 0x100, valid));
}

TEST(RaCache, RewriteUpdatesStatus)
{
    RunaheadCache rc(4);
    rc.write(0, 0x100, true);
    rc.write(0, 0x100, false);
    bool valid = true;
    EXPECT_TRUE(rc.lookup(0, 0x100, valid));
    EXPECT_FALSE(valid);
    EXPECT_EQ(rc.occupancy(0), 1u); // duplicate line: one entry
}

TEST(RaCache, BoundedFifoEviction)
{
    RunaheadCache rc(2);
    rc.write(0, 0x100, true);
    rc.write(0, 0x200, true);
    rc.write(0, 0x300, true); // evicts 0x100
    bool valid = false;
    EXPECT_FALSE(rc.lookup(0, 0x100, valid));
    EXPECT_TRUE(rc.lookup(0, 0x300, valid));
    EXPECT_EQ(rc.occupancy(0), rc.capacity());
}

TEST(RaCache, RewriteDoesNotRefreshFifoOrder)
{
    // An in-place status update must not move the entry to the back of
    // the FIFO (matching the original deque semantics).
    RunaheadCache rc(2);
    rc.write(0, 0x100, true);
    rc.write(0, 0x200, true);
    rc.write(0, 0x100, false); // rewrite: still the oldest
    rc.write(0, 0x300, true);  // evicts 0x100, not 0x200
    bool valid = false;
    EXPECT_FALSE(rc.lookup(0, 0x100, valid));
    EXPECT_TRUE(rc.lookup(0, 0x200, valid));
    EXPECT_TRUE(rc.lookup(0, 0x300, valid));
}

TEST(RaCache, CollidingLinesAllRetrievableAtFullOccupancy)
{
    // Fill to capacity: the probe table is only twice the capacity, so
    // at full occupancy probe chains (open-addressing collisions) are
    // statistically certain. Every resident line must still resolve to
    // its own entry, and every long-evicted line must miss.
    const unsigned capacity = 64;
    RunaheadCache rc(capacity);
    const unsigned total = 4 * capacity;
    for (unsigned i = 0; i < total; ++i)
        rc.write(0, 0x1000 + static_cast<Addr>(i) * 64, (i & 1) != 0);
    EXPECT_EQ(rc.occupancy(0), capacity);
    for (unsigned i = 0; i < total; ++i) {
        bool valid = false;
        const bool hit =
            rc.lookup(0, 0x1000 + static_cast<Addr>(i) * 64, valid);
        if (i < total - capacity) {
            EXPECT_FALSE(hit) << "line " << i << " should have evicted";
        } else {
            ASSERT_TRUE(hit) << "line " << i << " lost";
            EXPECT_EQ(valid, (i & 1) != 0) << "line " << i;
        }
    }
}

TEST(RaCache, PerThreadIsolation)
{
    // The same line written by different threads carries independent
    // status, eviction state and clear() scope.
    RunaheadCache rc(2);
    rc.write(0, 0x100, true);
    rc.write(1, 0x100, false);
    rc.write(2, 0x100, true);

    bool valid = false;
    EXPECT_TRUE(rc.lookup(0, 0x100, valid));
    EXPECT_TRUE(valid);
    EXPECT_TRUE(rc.lookup(1, 0x100, valid));
    EXPECT_FALSE(valid);

    // Evictions on thread 0 must not disturb thread 1's entry.
    rc.write(0, 0x200, true);
    rc.write(0, 0x300, true); // evicts thread 0's 0x100
    EXPECT_FALSE(rc.lookup(0, 0x100, valid));
    EXPECT_TRUE(rc.lookup(1, 0x100, valid));

    // clear() is per-thread.
    rc.clear(1);
    EXPECT_FALSE(rc.lookup(1, 0x100, valid));
    EXPECT_TRUE(rc.lookup(2, 0x100, valid));
    EXPECT_EQ(rc.occupancy(1), 0u);
    EXPECT_EQ(rc.occupancy(2), 1u);
}

TEST(RaCache, MatchesFifoReferenceModel)
{
    // Randomized equivalence against the straightforward deque model
    // the open-addressed implementation replaced.
    struct RefEntry {
        Addr line;
        bool valid;
    };
    std::deque<RefEntry> ref;
    const unsigned capacity = 8;
    RunaheadCache rc(capacity);

    std::uint64_t rng = 0x243F6A8885A308D3ull;
    auto next_rand = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    for (int op = 0; op < 2000; ++op) {
        const Addr line = (next_rand() % 24) * 64; // collisions likely
        const std::uint64_t r = next_rand();
        if (r % 8 == 0 && op % 500 == 499) {
            rc.clear(0);
            ref.clear();
            continue;
        }
        if (r % 2 == 0) {
            const bool valid = (r & 4) != 0;
            rc.write(0, line, valid);
            bool found = false;
            for (auto &e : ref) {
                if (e.line == line) {
                    e.valid = valid;
                    found = true;
                    break;
                }
            }
            if (!found) {
                if (ref.size() >= capacity)
                    ref.pop_front();
                ref.push_back({line, valid});
            }
        } else {
            bool got_valid = false;
            const bool hit = rc.lookup(0, line, got_valid);
            const RefEntry *want = nullptr;
            for (const auto &e : ref) {
                if (e.line == line)
                    want = &e;
            }
            ASSERT_EQ(hit, want != nullptr) << "op " << op;
            if (want) {
                ASSERT_EQ(got_valid, want->valid) << "op " << op;
            }
        }
    }
}

} // namespace
} // namespace rat::runahead
