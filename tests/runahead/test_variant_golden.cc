/**
 * @file
 * Determinism pin for a non-classic runahead variant: the `capped`
 * variant on the MIX2 pair (art,gzip — the same workload and windows
 * as tests/sim/test_determinism.cc) must serialize byte-identically
 * run-to-run and byte-identically to the committed golden capture
 * under tests/data/golden_mix2/RaT_capped.json, with cycle skipping
 * both on and off. This pins non-classic variants to their day-one
 * behavior exactly like the nine classic-policy goldens.
 *
 * Re-capture (only for an *intentional* semantic change; explain it in
 * the same commit):
 *   RATSIM_CAPTURE_GOLDEN_DIR=tests/data/golden_mix2 \
 *     ./build/tests/ratsim_tests --gtest_filter='RaVariantGolden.*'
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "report/serialize.hh"
#include "runahead/variant.hh"
#include "sim/experiment.hh"
#include "sim/workloads.hh"

namespace rat::sim {
namespace {

/** Same windows as the classic golden_mix2 determinism captures. */
SimConfig
cappedMix2Config(bool cycle_skipping)
{
    SimConfig cfg;
    cfg.prewarmInsts = 100000;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 10000;
    cfg.core.cycleSkipping = cycle_skipping;
    cfg.core.rat.variant = runahead::RaVariant::Capped;
    return cfg;
}

std::string
runCappedMix2Json(bool cycle_skipping)
{
    ExperimentRunner runner(cappedMix2Config(cycle_skipping));
    const Workload w = Workload::fromPrograms({"art", "gzip"});
    TechniqueSpec tech;
    tech.label = "RaT";
    tech.policy = core::PolicyKind::Rat;
    tech.rat = runner.baseConfig().core.rat;
    const SimResult r = runner.runWorkload(w, tech);
    return report::toJson(r).dump(2) + "\n";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(RaVariantGolden, CappedMix2ByteIdenticalToGolden)
{
    const std::string first = runCappedMix2Json(true);

    if (const char *capture = std::getenv("RATSIM_CAPTURE_GOLDEN_DIR")) {
        const std::string path =
            std::string(capture) + "/RaT_capped.json";
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.is_open()) << "cannot write " << path;
        out << first;
        return;
    }

    // Run-to-run determinism.
    EXPECT_EQ(first, runCappedMix2Json(true));

    // Cycle skipping must be bit-identical for the capped horizon too
    // (the engine's exitAt feeds the quiescence clamp).
    EXPECT_EQ(first, runCappedMix2Json(false));

    // Committed day-one capture.
    const std::string path =
        RATSIM_TEST_DATA_DIR "/golden_mix2/RaT_capped.json";
    const std::string golden = slurp(path);
    ASSERT_FALSE(golden.empty()) << "missing golden " << path;
    EXPECT_EQ(first, golden) << "drift against " << path;
}

} // namespace
} // namespace rat::sim
