/**
 * @file
 * Behavioral tests of the runahead efficiency variants
 * (runahead/policy.hh): classic is the default and matches the
 * RatConfig default, capped bounds episode length, and the
 * useless-filter suppresses loads whose episodes prefetch nothing
 * while leaving productive streamers alone.
 */

#include <gtest/gtest.h>

#include "runahead/engine.hh"
#include "runahead/variant.hh"
#include "tests/core/test_helpers.hh"

namespace rat::runahead {
namespace {

using test::CoreHarness;

core::RatConfig
variantConfig(RaVariant variant)
{
    core::RatConfig rat;
    rat.variant = variant;
    return rat;
}

TEST(RaVariant, NamesRoundTripThroughParse)
{
    for (const std::string &name : raVariantNames()) {
        const auto parsed = parseRaVariant(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(raVariantName(*parsed), name);
    }
    EXPECT_FALSE(parseRaVariant("bogus").has_value());
}

TEST(RaVariant, DefaultConfigIsClassic)
{
    const core::RatConfig rat;
    EXPECT_EQ(rat.variant, RaVariant::Classic);
    const RunaheadEngine engine(rat);
    EXPECT_STREQ(engine.variantName(), "classic");
}

TEST(RaVariant, EngineReportsSelectedVariant)
{
    EXPECT_STREQ(RunaheadEngine(variantConfig(RaVariant::Capped))
                     .variantName(),
                 "capped");
    EXPECT_STREQ(RunaheadEngine(variantConfig(RaVariant::UselessFilter))
                     .variantName(),
                 "useless-filter");
}

TEST(RaVariant, CappedBoundsEveryEpisodeLength)
{
    // With a 400-cycle memory, classic episodes on a streamer run for
    // hundreds of cycles. A 32-cycle cap must bound the *mean* episode
    // well below that (exit processing adds only a constant).
    core::RatConfig capped = variantConfig(RaVariant::Capped);
    capped.cappedMaxCycles = 32;

    CoreHarness classic({"art"}, core::PolicyKind::Rat,
                        variantConfig(RaVariant::Classic));
    CoreHarness bounded({"art"}, core::PolicyKind::Rat, capped);
    classic.core->run(30000);
    bounded.core->run(30000);

    const core::ThreadStats &sc = classic.core->threadStats(0);
    const core::ThreadStats &sb = bounded.core->threadStats(0);
    ASSERT_GT(sc.runaheadEntries, 10u);
    ASSERT_GT(sb.runaheadEntries, 10u);
    const double classic_len = static_cast<double>(sc.runaheadCycles) /
                               static_cast<double>(sc.runaheadEntries);
    const double capped_len = static_cast<double>(sb.runaheadCycles) /
                              static_cast<double>(sb.runaheadEntries);
    EXPECT_GT(classic_len, 100.0);
    EXPECT_LE(capped_len, 40.0);
    // The engine attributes the early exits to the cap.
    EXPECT_GT(bounded.core->runaheadEngine().stats().cappedExits, 10u);
    EXPECT_EQ(classic.core->runaheadEngine().stats().cappedExits, 0u);
}

TEST(RaVariant, CappedStillMakesForwardProgress)
{
    core::RatConfig capped = variantConfig(RaVariant::Capped);
    capped.cappedMaxCycles = 64;
    CoreHarness h({"art", "mcf"}, core::PolicyKind::Rat, capped);
    h.core->run(30000);
    EXPECT_GT(h.core->threadStats(0).committedInsts, 100u);
    EXPECT_GT(h.core->threadStats(1).committedInsts, 100u);
}

TEST(RaVariant, UselessFilterDrainsChaserEpisodes)
{
    // mcf's pointer-chasing episodes prefetch nothing (the property
    // behind ThreadStats::uselessRunaheadEpisodes), so the filter must
    // learn to run most of them fetch-gated (DrainOnly), slashing the
    // runahead work without giving up the episodes' resource release.
    // Aggressive knobs (sticky suppression, no re-probing) pin the
    // mechanism; the conservative defaults trade less work for less
    // IPC risk and are exercised by the golden + bench paths.
    core::RatConfig aggressive = variantConfig(RaVariant::UselessFilter);
    aggressive.uselessFilterThreshold = 2;
    aggressive.uselessFilterReprobe = 0;
    CoreHarness classic({"mcf"}, core::PolicyKind::Rat,
                        variantConfig(RaVariant::Classic));
    CoreHarness filtered({"mcf"}, core::PolicyKind::Rat, aggressive);
    classic.core->run(60000);
    filtered.core->run(60000);

    const auto &sc = classic.core->threadStats(0);
    const auto &sf = filtered.core->threadStats(0);
    const EngineStats &ec = classic.core->runaheadEngine().stats();
    const EngineStats &ef = filtered.core->runaheadEngine().stats();
    ASSERT_GT(sc.runaheadEntries, 20u);
    EXPECT_EQ(ec.drainEpisodes, 0u);
    EXPECT_GT(ef.drainEpisodes, ef.episodes / 2);
    // The wasted speculative work collapses (drained windows still
    // execute their in-flight slice, so execution falls less steeply
    // than pseudo-retirement)...
    EXPECT_LT(ef.executedInRunahead, ec.executedInRunahead / 2);
    EXPECT_LT(sf.pseudoRetired, sc.pseudoRetired / 4);
    // ...while the chaser's own progress is preserved (its episodes
    // were pure overhead).
    EXPECT_GE(sf.committedInsts, sc.committedInsts * 9 / 10);
}

TEST(RaVariant, UselessFilterKeepsStreamerEpisodes)
{
    // swim's streaming episodes prefetch productively: the filter must
    // leave them (and the committed-instruction win) essentially
    // intact.
    CoreHarness classic({"swim"}, core::PolicyKind::Rat,
                        variantConfig(RaVariant::Classic));
    CoreHarness filtered({"swim"}, core::PolicyKind::Rat,
                         variantConfig(RaVariant::UselessFilter));
    classic.core->run(60000);
    filtered.core->run(60000);

    const auto &sc = classic.core->threadStats(0);
    const auto &sf = filtered.core->threadStats(0);
    ASSERT_GT(sc.runaheadEntries, 10u);
    EXPECT_GT(sf.runaheadEntries, sc.runaheadEntries / 2);
    EXPECT_GE(sf.committedInsts, sc.committedInsts * 95 / 100);
}

TEST(RaVariant, UselessFilterThresholdClampsToCounterRange)
{
    // The 2-bit counters saturate at 3, so an out-of-range threshold
    // must clamp rather than silently disable the filter.
    core::RatConfig rat = variantConfig(RaVariant::UselessFilter);
    rat.uselessFilterThreshold = 10;
    rat.uselessFilterReprobe = 0;
    CoreHarness h({"mcf"}, core::PolicyKind::Rat, rat);
    h.core->run(60000);
    EXPECT_GT(h.core->runaheadEngine().stats().drainEpisodes, 0u);
}

TEST(RaVariant, ClassicEngineCountsEpisodesAndExecution)
{
    CoreHarness h({"art"}, core::PolicyKind::Rat,
                  variantConfig(RaVariant::Classic));
    h.core->run(30000);
    const EngineStats &es = h.core->runaheadEngine().stats();
    EXPECT_EQ(es.episodes, h.core->threadStats(0).runaheadEntries);
    EXPECT_GT(es.executedInRunahead, 0u);
    EXPECT_EQ(es.suppressedEntries, 0u);
}

} // namespace
} // namespace rat::runahead
