#!/usr/bin/env bash
# Chaos smoke test: the >=100-cell farm campaign from farm_smoke.sh,
# re-run under several deterministic RATSIM_FAULT schedules (worker
# kills, hangs, garbage frames, torn cache stores, latency). Every
# chaotic run must finish with JSON and CSV reports byte-identical to
# the fault-free single-process sweep; a poisoned cell must be
# quarantined with a non-zero exit instead of stalling the farm; and a
# clean re-run must heal the cache and complete.
#
# On failure the offending fault schedule is printed — rerunning with
# that exact RATSIM_FAULT value reproduces the run bit-for-bit.
#
# Usage: chaos_smoke.sh /path/to/ratsim
set -u

RATSIM=${1:?usage: chaos_smoke.sh /path/to/ratsim}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/ratsim_chaos_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "FAIL: fault schedule was RATSIM_FAULT='${RATSIM_FAULT:-}'" >&2
    exit 1
}

# 2 policies x 2 workloads x 26 seeds = 104 cells.
SEEDS=$(seq -s, 1 26)
GRID=(--policies ICOUNT,RaT --workloads "art,mcf;swim,twolf"
      --seeds "$SEEDS" --measure 400 --warmup 100 --prewarm 2000)
FARM=(--workers 3 --job-timeout 2 --max-retries 5)

echo "== reference sweep (single process, fault-free) =="
"$RATSIM" sweep "${GRID[@]}" \
    --json "$WORK/ref.json" --csv "$WORK/ref.csv" \
    > "$WORK/sweep.log" 2>&1 || fail "reference sweep failed"
grep -q "sweep: 104 cells" "$WORK/sweep.log" \
    || fail "expected a 104-cell grid, got: $(cat "$WORK/sweep.log")"

# Every fault class at once, at rates that kill a handful of workers
# per run on a 104-cell grid. Several seeds so the schedule shape —
# not one lucky draw — is what passes.
FAULTS="kill@p0.02,hang@p0.01,garbage-frame@p0.005,torn-store@p0.01,slow@p0.05"
for seed in 3 7 11; do
    export RATSIM_FAULT="seed=${seed}:${FAULTS}"
    echo "== chaotic farm, RATSIM_FAULT=$RATSIM_FAULT =="
    rm -rf "$WORK/cache"
    "$RATSIM" farm "${GRID[@]}" "${FARM[@]}" --cache "$WORK/cache" \
        --json "$WORK/chaos.json" --csv "$WORK/chaos.csv" \
        > "$WORK/chaos_${seed}.log" 2>&1 \
        || fail "chaotic farm failed: $(cat "$WORK/chaos_${seed}.log")"
    cmp "$WORK/chaos.json" "$WORK/ref.json" \
        || fail "JSON differs from fault-free sweep"
    cmp "$WORK/chaos.csv" "$WORK/ref.csv" \
        || fail "CSV differs from fault-free sweep"
    rm -f "$WORK/chaos.json" "$WORK/chaos.csv"
done
unset RATSIM_FAULT

echo "== poisoned cell: quarantined, not fatal to the campaign =="
# Cell 5 kills its worker on every attempt: after --max-retries 2 the
# farm must quarantine it, keep going, and exit non-zero (no reports).
export RATSIM_FAULT="seed=1:kill@x5"
rm -rf "$WORK/cache"
if "$RATSIM" farm "${GRID[@]}" \
    --workers 3 --max-retries 2 --cache "$WORK/cache" \
    --json "$WORK/poison.json" --csv "$WORK/poison.csv" \
    > "$WORK/poison.log" 2>&1; then
    fail "farm must exit non-zero when a cell is quarantined"
fi
grep -q "quarantin" "$WORK/poison.log" \
    || fail "quarantine not reported: $(cat "$WORK/poison.log")"
grep -q "103 simulated" "$WORK/poison.log" \
    || fail "other cells must still land: $(cat "$WORK/poison.log")"
[ ! -e "$WORK/poison.json" ] || fail "quarantined farm must not write reports"
unset RATSIM_FAULT

echo "== clean re-run heals the poisoned campaign from cache =="
"$RATSIM" farm "${GRID[@]}" --workers 3 --cache "$WORK/cache" \
    --json "$WORK/healed.json" --csv "$WORK/healed.csv" \
    > "$WORK/heal.log" 2>&1 || fail "heal run failed: $(cat "$WORK/heal.log")"
grep -q "farm: 104 cells (1 simulated, 103 from cache, 0 failed stores)" \
    "$WORK/heal.log" \
    || fail "heal accounting wrong: $(cat "$WORK/heal.log")"
cmp "$WORK/healed.json" "$WORK/ref.json" || fail "healed JSON differs"
cmp "$WORK/healed.csv" "$WORK/ref.csv" || fail "healed CSV differs"

echo "PASS: chaos runs matched the fault-free sweep byte-for-byte"
