#!/usr/bin/env bash
# Farm smoke test: a >=100-cell campaign run through `ratsim farm` must
# survive a mid-campaign kill -9 of a worker, resume from the shared
# on-disk cache simulating only the missing cells, and produce JSON and
# CSV reports byte-identical to a single-process `ratsim sweep`.
#
# Usage: farm_smoke.sh /path/to/ratsim
set -u

RATSIM=${1:?usage: farm_smoke.sh /path/to/ratsim}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/ratsim_farm_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# 2 policies x 2 workloads x 26 seeds = 104 cells.
SEEDS=$(seq -s, 1 26)
GRID=(--policies ICOUNT,RaT --workloads "art,mcf;swim,twolf"
      --seeds "$SEEDS" --measure 400 --warmup 100 --prewarm 2000)

echo "== reference sweep (single process) =="
"$RATSIM" sweep "${GRID[@]}" \
    --json "$WORK/ref.json" --csv "$WORK/ref.csv" \
    > "$WORK/sweep.log" 2>&1 || fail "reference sweep failed"
grep -q "sweep: 104 cells" "$WORK/sweep.log" \
    || fail "expected a 104-cell grid, got: $(cat "$WORK/sweep.log")"

echo "== farm run 1: sole worker killed after 30 cells =="
# --no-respawn: this leg's premise is the abort-then-resume path; with
# respawning (the default) the farm would just heal and finish.
if RATSIM_FARM_TEST_KILL_AFTER=30 "$RATSIM" farm "${GRID[@]}" \
    --workers 1 --no-respawn --cache "$WORK/cache" \
    --json "$WORK/dead.json" --csv "$WORK/dead.csv" \
    > "$WORK/farm1.log" 2>&1; then
    fail "farm must exit non-zero when its only worker is killed"
fi
grep -q "30 simulated" "$WORK/farm1.log" \
    || fail "killed run should land exactly 30 cells: $(cat "$WORK/farm1.log")"
[ ! -e "$WORK/dead.json" ] || fail "aborted farm must not write reports"

echo "== farm run 2: resume on 3 workers =="
"$RATSIM" farm "${GRID[@]}" \
    --workers 3 --cache "$WORK/cache" \
    --json "$WORK/farm.json" --csv "$WORK/farm.csv" \
    > "$WORK/farm2.log" 2>&1 || fail "resume failed: $(cat "$WORK/farm2.log")"
# The resume must reuse every cell the killed run landed and simulate
# only the remainder.
grep -q "farm: 104 cells (74 simulated, 30 from cache, 0 failed stores)" \
    "$WORK/farm2.log" \
    || fail "resume accounting wrong: $(cat "$WORK/farm2.log")"

echo "== byte-identity against the reference sweep =="
cmp "$WORK/farm.json" "$WORK/ref.json" || fail "JSON reports differ"
cmp "$WORK/farm.csv" "$WORK/ref.csv" || fail "CSV reports differ"

echo "PASS: farm resumed after kill -9 and matched sweep byte-for-byte"
